module soidomino

go 1.22
