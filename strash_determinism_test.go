package soidomino

import (
	"bytes"
	"context"
	"testing"

	"soidomino/internal/cluster"
	"soidomino/internal/mapper"
	"soidomino/internal/report"
	"soidomino/internal/service"
	"soidomino/internal/strash"
	"soidomino/internal/verify"
)

// TestStrashDeterminismGate is the `make strash-determinism` gate: over
// every committed testdata circuit, the strash front-end must be
// byte-stable across repeated runs and idempotent, and — because the
// mapping pipeline consumes its output — the strash-on mapping must stay
// byte-identical across Workers settings (the par-determinism contract
// extended through the new front-end). Any instability here would split
// the cluster's cache and break the routing-key golden.
func TestStrashDeterminismGate(t *testing.T) {
	for name, src := range testdataCircuits(t) {
		r1 := strash.Run(src)
		if err := r1.Network.Check(); err != nil {
			t.Fatalf("%s: strash output invalid: %v", name, err)
		}
		d1 := r1.Network.Dump()
		for run := 0; run < 3; run++ {
			if d2 := strash.Run(src).Network.Dump(); d2 != d1 {
				t.Fatalf("%s: run %d differs from run 0:\n%s\nvs\n%s", name, run+1, d1, d2)
			}
		}
		again := strash.Run(r1.Network)
		if d2 := again.Network.Dump(); d2 != d1 {
			t.Fatalf("%s: strash is not idempotent:\n%s\nvs\n%s", name, d1, d2)
		}
		if again.Counters.Merged != 0 || again.Counters.Dead != 0 {
			t.Fatalf("%s: re-strash still reduced: %+v", name, again.Counters)
		}

		// Byte-identical strash-on mapping across worker counts, via the
		// shared service encoding (the par-determinism gate's comparison
		// surface). PrepareNetwork runs strash by default.
		pipe, err := report.PrepareNetwork(src)
		if err != nil {
			t.Fatalf("%s: prepare: %v", name, err)
		}
		var want []byte
		for _, workers := range []int{1, 4} {
			opt := mapper.DefaultOptions()
			opt.Workers = workers
			res, err := mapByAlgo("soi", pipe.Unate, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			got, err := service.EncodeJSON(service.NewMapResult(name, pipe, res))
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: strash-on mapping differs between workers=1 and workers=%d", name, workers)
			}
		}
	}
}

// TestStrashOnOffEquivalent pins the correctness half of the tentpole
// contract on real circuits: for every committed testdata circuit and
// every mapper, the strash-on and strash-off pipelines both produce
// mappings functionally equivalent to the submitted network (and so to
// each other).
func TestStrashOnOffEquivalent(t *testing.T) {
	for name, src := range testdataCircuits(t) {
		for _, strashOff := range []bool{false, true} {
			pipe, err := report.PrepareNetworkMode(context.Background(), src, strashOff)
			if err != nil {
				t.Fatalf("%s strashOff=%t: prepare: %v", name, strashOff, err)
			}
			for _, algo := range []string{"domino", "soi"} {
				res, err := mapByAlgo(algo, pipe.Unate, mapper.DefaultOptions())
				if err != nil {
					t.Fatalf("%s/%s strashOff=%t: %v", name, algo, strashOff, err)
				}
				if err := verify.MustBeEquivalent(src, res, verify.DefaultOptions()); err != nil {
					t.Fatalf("%s/%s strashOff=%t: %v", name, algo, strashOff, err)
				}
			}
		}
	}
}

// TestStrashSharesRouterShard closes the cluster loop of the tentpole:
// two structurally identical but textually different submissions resolve
// to one routing key and therefore one shard preference list on the
// router's consistent-hash ring — one replica maps, everyone else hits
// its cache.
func TestStrashSharesRouterShard(t *testing.T) {
	tidy := `.model shardme
.inputs a b c
.outputs y
.names a b t0
11 1
.names t0 c y
1- 1
-1 1
.end
`
	// Same circuit: t0 renamed, operands flipped, plus a dead gate.
	scrambled := `.model shardme
.inputs a b c
.outputs y
.names b a q7
11 1
.names a c junk
11 1
.names q7 c y
1- 1
-1 1
.end
`
	k1, err := service.RequestKey(context.Background(), &service.MapRequest{BLIF: tidy})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := service.RequestKey(context.Background(), &service.MapRequest{BLIF: scrambled})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("routing keys differ:\n  %s\n  %s", k1, k2)
	}
	ring := cluster.NewRing([]string{"http://r0", "http://r1", "http://r2", "http://r3"}, 64)
	p1, p2 := ring.Prefer(k1, 2), ring.Prefer(k2, 2)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("shard preference diverged: %v vs %v", p1, p2)
		}
	}
}
