// Command pbesim demonstrates the Parasitic Bipolar Effect on the
// switch-level SOI simulator. By default it replays the paper's §III-B
// failure sequence on the (A+B+C)*D example gate three ways: the
// bulk-style mapping with its discharge device disconnected (fails), the
// same mapping protected (survives), and the SOI mapping, which needs no
// discharge device at all (survives).
//
// With -circuit/-cycles it instead stress-tests a full benchmark under
// randomized holding input patterns and reports PBE statistics.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"soidomino/internal/bench"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/report"
	"soidomino/internal/soisim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbesim:", err)
		os.Exit(1)
	}
}

func run() error {
	circuit := flag.String("circuit", "", "stress-test a benchmark instead of the fig. 2 demo")
	cycles := flag.Int("cycles", 500, "stress cycles")
	seed := flag.Int64("seed", 1, "stress pattern seed")
	vcd := flag.String("vcd", "", "write a VCD waveform trace of the fig. 2 demo to this file")
	flag.Parse()

	if *circuit != "" {
		return stress(*circuit, *cycles, *seed)
	}
	return figure2Demo(*vcd)
}

// fig2 builds the paper's running example (A+B+C)*D.
func fig2() *logic.Network {
	n := logic.New("fig2")
	a := n.AddInput("A")
	b := n.AddInput("B")
	c := n.AddInput("C")
	d := n.AddInput("D")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	n.AddOutput("f", n.AddGate(logic.And, or3, d))
	return n
}

func figure2Demo(vcdPath string) error {
	seq := []map[string]bool{
		{"A": true, "B": false, "C": false, "D": false},
		{"A": true, "B": false, "C": false, "D": false},
		{"A": true, "B": false, "C": false, "D": false},
		{"A": false, "B": false, "C": false, "D": true},
	}
	fmt.Println("Paper §III-B sequence on (A+B+C)*D: hold A=1,B=C=D=0 for three")
	fmt.Println("cycles (bodies of B and C charge), then drop A and raise D.")
	fmt.Println("Correct output every cycle: f=0.")
	fmt.Println()

	cases := []struct {
		label   string
		algo    report.Algorithm
		disable bool
	}{
		{"Domino_Map, discharge device DISCONNECTED", report.Domino, true},
		{"Domino_Map, discharge device active      ", report.Domino, false},
		{"SOI_Domino_Map (no discharge needed)     ", report.SOI, false},
	}
	for _, tc := range cases {
		p, err := report.PrepareNetwork(fig2())
		if err != nil {
			return err
		}
		res, err := p.Map(tc.algo, mapper.DefaultOptions(), true)
		if err != nil {
			return err
		}
		c, err := netlist.Build(res)
		if err != nil {
			return err
		}
		cfg := soisim.DefaultConfig()
		cfg.DisableDischarge = tc.disable
		sim := soisim.New(c, cfg)
		if vcdPath != "" && tc.disable {
			sim.EnableTrace(soisim.TraceAll)
		}
		fmt.Printf("%s  [%s, gate: %s]\n", tc.label, res.Stats, res.Gates[len(res.Gates)-1].Tree)
		for i, vec := range seq {
			out, events, err := sim.Cycle(vec)
			if err != nil {
				return err
			}
			status := "ok"
			for _, e := range events {
				status = e.String()
			}
			fmt.Printf("  cycle %d: A=%v B=%v C=%v D=%v -> f=%v  %s\n",
				i, vec["A"], vec["B"], vec["C"], vec["D"], out["f"], status)
		}
		if vcdPath != "" && tc.disable {
			f, err := os.Create(vcdPath)
			if err != nil {
				return err
			}
			if err := sim.WriteVCD(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  (waveform trace written to %s)\n", vcdPath)
		}
		fmt.Println()
	}
	return nil
}

func stress(name string, cycles int, seed int64) error {
	if _, ok := bench.Get(name); !ok {
		return fmt.Errorf("unknown benchmark %q", name)
	}
	p, err := report.Prepare(name)
	if err != nil {
		return err
	}
	for _, tc := range []struct {
		label   string
		algo    report.Algorithm
		disable bool
	}{
		{"Domino_Map unprotected", report.Domino, true},
		{"Domino_Map protected  ", report.Domino, false},
		{"SOI_Domino_Map        ", report.SOI, false},
	} {
		res, err := p.Map(tc.algo, mapper.DefaultOptions(), false)
		if err != nil {
			return err
		}
		c, err := netlist.Build(res)
		if err != nil {
			return err
		}
		cfg := soisim.DefaultConfig()
		cfg.DisableDischarge = tc.disable
		sim := soisim.New(c, cfg)
		rng := rand.New(rand.NewSource(seed))
		corrupted, triggers := 0, 0
		cur := map[string]bool{}
		for _, in := range c.Inputs {
			cur[in] = rng.Intn(2) == 1
		}
		for cyc := 0; cyc < cycles; cyc++ {
			if cyc%3 == 2 { // hold inputs for a few cycles, then flip some
				for _, in := range c.Inputs {
					if rng.Intn(3) == 0 {
						cur[in] = !cur[in]
					}
				}
			}
			_, events, err := sim.Cycle(cur)
			if err != nil {
				return err
			}
			for _, e := range events {
				triggers++
				if e.Corrupted {
					corrupted++
				}
			}
		}
		fmt.Printf("%s  %s: %d bipolar episodes, %d corrupted evaluations over %d cycles\n",
			tc.label, name, triggers, corrupted, cycles)
	}
	return nil
}
