// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark baseline. The JSON carries both parsed per-benchmark
// records (name, iterations, ns/op, B/op, allocs/op) and the raw
// benchmark lines, so the file stays consumable by benchstat:
//
//	go test -bench=. -benchmem -count=5 -run='^$' | benchjson > BENCH_2026-08-05.json
//	jq -r .raw BENCH_2026-08-05.json | benchstat old.txt -
//
// `make bench-baseline` wraps the first command; see the Observability
// section of README.md.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Baseline is the file format: metadata, parsed records, and the raw
// benchmark text (goos/goarch/pkg headers plus result lines) for
// benchstat.
type Baseline struct {
	Date    string   `json:"date"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Records []Record `json:"records"`
	Raw     string   `json:"raw"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	base := Baseline{Date: time.Now().UTC().Format("2006-01-02")}
	var raw strings.Builder
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			base.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		if keepRaw(line) {
			raw.WriteString(line)
			raw.WriteByte('\n')
		}
		if rec, ok := parseLine(line); ok {
			base.Records = append(base.Records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(base.Records) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin (expected `go test -bench` output)")
	}
	base.Raw = raw.String()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// keepRaw selects the lines benchstat needs: the environment header and
// the Benchmark result lines (PASS/ok trailers and -v noise are dropped).
func keepRaw(line string) bool {
	return strings.HasPrefix(line, "goos: ") ||
		strings.HasPrefix(line, "goarch: ") ||
		strings.HasPrefix(line, "pkg: ") ||
		strings.HasPrefix(line, "cpu: ") ||
		strings.HasPrefix(line, "Benchmark")
}

// parseLine parses one result line of the standard form
//
//	BenchmarkName-8   120   9876543 ns/op   1234 B/op   56 allocs/op
//
// Returns ok=false for anything else.
func parseLine(line string) (Record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Record{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Record{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Record{}, false
	}
	rec := Record{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		}
	}
	return rec, true
}
