package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: soidomino
cpu: Example CPU @ 2.00GHz
BenchmarkMapDes-8   	     120	   9876543 ns/op	 1234567 B/op	    8901 allocs/op
BenchmarkTableI-8   	    5000	    250000 ns/op
--- BENCH: noise line
PASS
ok  	soidomino	3.210s
`

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(out.Bytes(), &base); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if base.Goos != "linux" || base.Goarch != "amd64" || base.Pkg != "soidomino" {
		t.Errorf("header wrong: %+v", base)
	}
	if len(base.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(base.Records))
	}
	r := base.Records[0]
	if r.Name != "BenchmarkMapDes-8" || r.Iterations != 120 || r.NsPerOp != 9876543 ||
		r.BytesPerOp != 1234567 || r.AllocsPerOp != 8901 {
		t.Errorf("record 0 wrong: %+v", r)
	}
	if base.Records[1].BytesPerOp != 0 {
		t.Errorf("record 1 picked up phantom B/op: %+v", base.Records[1])
	}
	// Raw must keep exactly what benchstat consumes.
	if strings.Contains(base.Raw, "PASS") || strings.Contains(base.Raw, "noise") {
		t.Errorf("raw kept non-benchmark lines:\n%s", base.Raw)
	}
	for _, want := range []string{"goos: linux", "cpu: Example", "BenchmarkTableI-8"} {
		if !strings.Contains(base.Raw, want) {
			t.Errorf("raw missing %q", want)
		}
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("expected an error on input without benchmark lines")
	}
}
