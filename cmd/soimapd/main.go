// Command soimapd serves the SOI domino technology mapper over HTTP: a
// bounded worker pool maps submitted circuits (built-in benchmark names
// or inline BLIF/.bench text) and a canonical-network LRU answers
// repeated submissions from cache. See internal/service for the API.
//
// Usage:
//
//	soimapd [-addr :8347] [-workers N] [-queue 64] [-cache 256]
//	        [-timeout 30s] [-max-timeout 5m] [-retention 10m]
//	        [-max-body 16777216] [-max-nodes 200000] [-strash-off]
//	        [-peers http://h1:8347,http://h2:8347] [-peer-timeout 200ms]
//	        [-state-dir /var/lib/soimapd] [-journal-fsync interval]
//	        [-log text|json|off] [-debug-addr 127.0.0.1:8348]
//
// Endpoints:
//
//	POST /v1/map       {"circuit": "c880"} or {"blif": "..."} / {"bench": "..."}
//	GET  /v1/jobs/{id} job status and result
//	GET  /v1/jobs/{id}/explain
//	                   per-request cost attribution: cache tier, queue
//	                   wait, per-phase wall time, replica identity
//	GET  /v1/traces/{id}
//	                   one distributed trace as Perfetto-loadable JSON
//	                   (?raw=1: this process's spans for router stitching)
//	GET  /healthz      liveness, uptime and build info
//	GET  /readyz       readiness: 200 while accepting traffic, 503 once a
//	                   drain begins (routers use this to stop routing here)
//	GET  /v1/cache     shared-cache-tier lookup: a peer replica's cached
//	                   result for ?key=, 404 on miss (never computes)
//	GET  /debug/vars   job/cache counters and latency histograms (expvar)
//	GET  /metrics      Prometheus text format: the expvar surface plus
//	                   aggregated DP-engine statistics per algorithm
//
// With -state-dir, results and the job journal persist on disk: a
// restarted replica re-serves finished jobs under their original ids,
// re-admits the jobs a crash cut down mid-flight, and answers repeat
// submissions from the durable store instead of remapping. Corrupt or
// torn records found at boot are quarantined and counted, never served
// and never fatal. -journal-fsync picks the journal's durability point:
// "interval" (default, ~100ms batches), "always" (fsync per record) or
// "off" (the OS decides, results skip fsync too).
//
// With -log, every request is logged through slog with a request id that
// is echoed in X-Request-ID and follows the job through the worker pool
// into the mapper's context. With -debug-addr, a second listener serves
// net/http/pprof (profiles stay off the public API surface). With -peers,
// a job that misses the local result cache consults the listed replicas'
// caches before mapping (see the README "Cluster" section).
//
// SIGINT/SIGTERM trigger a graceful shutdown: /readyz flips to 503, the
// -drain-grace window lets routers take the replica out of rotation while
// it still accepts work, then intake stops and queued and running jobs
// finish (up to the drain timeout) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"soidomino/internal/service"
	"soidomino/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "soimapd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "mapping workers (0 = GOMAXPROCS)")
	mapWorkers := flag.Int("map-workers", 0, "default per-job DP worker goroutines for requests without options.workers (0 = default 1; results are identical at any count)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = default)")
	cacheN := flag.Int("cache", 0, "result-cache entries (0 = default)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = default 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on requested deadlines (0 = default 5m)")
	maxBody := flag.Int64("max-body", 0, "request-body byte cap, rejected with 413 (0 = default 16MiB)")
	maxNodes := flag.Int("max-nodes", 0, "submitted-network node cap, rejected with 413 (0 = default 200000)")
	retention := flag.Duration("retention", 0, "how long finished jobs stay pollable before eviction (0 = default 10m)")
	strashOff := flag.Bool("strash-off", false, "disable the structural-hashing front-end for every job (must be uniform across a fleet and its router)")
	name := flag.String("name", "", "replica identity reported in trace spans and attribution records (empty: \"soimapd\")")
	traceSample := flag.Int("trace-sample", 0, "start a sampled distributed trace on every Nth submission without a traceparent header (0: off; incoming sampled headers are always honored)")
	traceMax := flag.Int("trace-max", 0, "distinct traces retained by the in-memory hub, FIFO (0 = default 64)")
	peers := flag.String("peers", "", "comma-separated base URLs of sibling replicas whose result caches are consulted before mapping (empty: disabled)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-peer cache lookup timeout (0 = default 200ms)")
	peerMaxBody := flag.Int64("peer-max-body", 0, "peer cache-response byte cap, oversized replies rejected (0 = default: the -max-body value)")
	stateDir := flag.String("state-dir", "", "durable state directory: on-disk result store + job journal, recovered on restart (empty: memory only)")
	journalFsync := flag.String("journal-fsync", "", "journal durability: always, interval or off (empty = interval)")
	storeEntries := flag.Int("store-entries", 0, "on-disk result-store entry cap, janitor-evicted oldest-first (0 = default 4x -cache)")
	drain := flag.Duration("drain", 15*time.Second, "shutdown drain budget before canceling jobs")
	drainGrace := flag.Duration("drain-grace", 0, "time between flipping /readyz to 503 and stopping intake, so routers can drain this replica first")
	logMode := flag.String("log", "text", "structured request/job logging: text, json or off")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this extra listener (empty: disabled)")
	flag.Parse()

	// Validate the persistence flags up front: a daemon asked to be
	// durable should fail fast on an unusable state dir or a typo'd
	// policy, not boot memory-only and discover it at the first write.
	if _, err := store.ParseSyncPolicy(*journalFsync); err != nil {
		return fmt.Errorf("-journal-fsync: %w", err)
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			return fmt.Errorf("-state-dir: %w", err)
		}
		probe := filepath.Join(*stateDir, ".probe")
		if err := os.WriteFile(probe, []byte("ok"), 0o644); err != nil {
			return fmt.Errorf("-state-dir not writable: %w", err)
		}
		os.Remove(probe)
	}

	var logger *slog.Logger
	switch *logMode {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
	default:
		return fmt.Errorf("unknown -log mode %q (want text, json or off)", *logMode)
	}

	svc := service.New(service.Config{
		Workers:          *workers,
		MapWorkers:       *mapWorkers,
		QueueDepth:       *queue,
		CacheEntries:     *cacheN,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		MaxBodyBytes:     *maxBody,
		MaxNetworkNodes:  *maxNodes,
		JobRetention:     *retention,
		StrashOff:        *strashOff,
		ReplicaName:      *name,
		TraceSample:      *traceSample,
		TraceMax:         *traceMax,
		Peers:            splitPeers(*peers),
		PeerTimeout:      *peerTimeout,
		PeerMaxBodyBytes: *peerMaxBody,
		StateDir:         *stateDir,
		JournalFsync:     *journalFsync,
		StoreEntries:     *storeEntries,
		Logger:           logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	// The profiling surface gets its own listener (typically loopback):
	// heap/cpu/goroutine profiles should not be reachable through the
	// public API address.
	var debugSrv *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: mux}
		go func() {
			log.Printf("soimapd pprof listening on %s", *debugAddr)
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("soimapd: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("soimapd listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip /readyz first: a router probing the replica stops sending new
	// work during the grace window while the listener still accepts it,
	// so nothing is routed into a closing socket.
	svc.BeginDrain()
	if *drainGrace > 0 {
		log.Printf("soimapd: signal received, /readyz now 503, grace %s before stopping intake", *drainGrace)
		time.Sleep(*drainGrace)
	}
	log.Printf("soimapd: draining (budget %s)", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil {
			log.Printf("soimapd: pprof shutdown: %v", err)
		}
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("soimapd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("soimapd: drain budget exhausted, in-flight jobs canceled: %v", err)
	}
	log.Printf("soimapd: stopped")
	return nil
}

// splitPeers parses the -peers flag, dropping empty entries so a
// trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}
