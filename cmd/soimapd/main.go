// Command soimapd serves the SOI domino technology mapper over HTTP: a
// bounded worker pool maps submitted circuits (built-in benchmark names
// or inline BLIF/.bench text) and a canonical-network LRU answers
// repeated submissions from cache. See internal/service for the API.
//
// Usage:
//
//	soimapd [-addr :8347] [-workers N] [-queue 64] [-cache 256]
//	        [-timeout 30s] [-max-timeout 5m]
//	        [-max-body 16777216] [-max-nodes 200000]
//
// Endpoints:
//
//	POST /v1/map       {"circuit": "c880"} or {"blif": "..."} / {"bench": "..."}
//	GET  /v1/jobs/{id} job status and result
//	GET  /healthz      liveness
//	GET  /debug/vars   job/cache counters and latency histograms
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, queued and
// running jobs finish (up to the drain timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"soidomino/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "soimapd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "mapping workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = default)")
	cacheN := flag.Int("cache", 0, "result-cache entries (0 = default)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = default 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on requested deadlines (0 = default 5m)")
	maxBody := flag.Int64("max-body", 0, "request-body byte cap, rejected with 413 (0 = default 16MiB)")
	maxNodes := flag.Int("max-nodes", 0, "submitted-network node cap, rejected with 413 (0 = default 200000)")
	drain := flag.Duration("drain", 15*time.Second, "shutdown drain budget before canceling jobs")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheN,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxBodyBytes:    *maxBody,
		MaxNetworkNodes: *maxNodes,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("soimapd listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("soimapd: signal received, draining (budget %s)", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("soimapd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("soimapd: drain budget exhausted, in-flight jobs canceled: %v", err)
	}
	log.Printf("soimapd: stopped")
	return nil
}
