// Command soifuzz runs the differential fuzzing campaign over the mapping
// pipeline: seeded adversarial random networks, the full mapper/option
// variant grid, and the oracle set of internal/fuzz. Violations are
// shrunk to minimal BLIF repros and written (with JSON manifests) into
// the corpus directory, where `go test ./internal/fuzz` replays them.
//
// Typical runs:
//
//	soifuzz -n 2000 -seed 1                # campaign, no corpus writes
//	soifuzz -n 500 -corpus testdata/fuzz/corpus
//
// The exit status is 0 only when every case passed every oracle.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"time"

	"soidomino/internal/fuzz"
)

func main() {
	cfg := fuzz.DefaultConfig()
	n := flag.Int("n", 500, "number of random cases to generate")
	seed := flag.Int64("seed", 1, "campaign seed (derives every per-case seed)")
	workers := flag.Int("workers", cfg.Workers, "concurrent cases")
	minInputs := flag.Int("min-inputs", cfg.MinInputs, "minimum primary inputs per case")
	maxInputs := flag.Int("max-inputs", cfg.MaxInputs, "maximum primary inputs per case")
	minGates := flag.Int("min-gates", cfg.MinGates, "minimum gates per case")
	maxGates := flag.Int("max-gates", cfg.MaxGates, "maximum gates per case")
	caseTimeout := flag.Duration("case-timeout", cfg.CaseTimeout, "per-case deadline (exceeding it is a violation)")
	simCycles := flag.Int("sim-cycles", cfg.SimCycles, "switch-level simulation cycles per variant (0 disables)")
	totalEps := flag.Int("total-eps", cfg.TotalEps, "slack in T_total(SOI) <= T_total(Domino)+eps")
	dischEps := flag.Int("disch-eps", cfg.DischEps, "slack in T_disch(SOI) <= T_disch(RS)+eps")
	strashEps := flag.Int("strash-eps", cfg.StrashEps, "additive slack in cost(strash-on) <= 2*cost(strash-off)+eps (Ttotal and levels)")
	corpus := flag.String("corpus", "", "directory for shrunk failing repros (empty: don't persist)")
	shrink := flag.Bool("shrink", true, "delta-debug failing cases before persisting")
	maxEntries := flag.Int("max-corpus-entries", cfg.MaxCorpusEntries, "cap on persisted failing cases per run")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	cfg.Cases = *n
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.MinInputs, cfg.MaxInputs = *minInputs, *maxInputs
	cfg.MinGates, cfg.MaxGates = *minGates, *maxGates
	cfg.CaseTimeout = *caseTimeout
	cfg.SimCycles = *simCycles
	cfg.TotalEps, cfg.DischEps = *totalEps, *dischEps
	cfg.StrashEps = *strashEps
	cfg.CorpusDir = *corpus
	cfg.Shrink = *shrink
	cfg.MaxCorpusEntries = *maxEntries
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if cfg.MinInputs < 2 || cfg.MaxInputs < cfg.MinInputs || cfg.MinGates < 1 || cfg.MaxGates < cfg.MinGates {
		fmt.Fprintln(os.Stderr, "soifuzz: bad size bounds")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	sum, err := fuzz.New(cfg).Run(ctx)
	elapsed := time.Since(start).Round(time.Millisecond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soifuzz: %v (after %d cases, %v)\n", err, sum.Cases, elapsed)
		os.Exit(1)
	}
	fmt.Printf("soifuzz: %d cases, %d mapper runs, %d violations in %v (seed %d, %d workers)\n",
		sum.Cases, sum.MapperRuns, len(sum.Violations), elapsed, cfg.Seed, cfg.Workers)
	printCampaignBreakdown(os.Stdout, sum, elapsed)
	for _, v := range sum.Violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}
	for _, name := range sum.Corpus {
		fmt.Printf("  corpus: %s\n", name)
	}
	if len(sum.Violations) > 0 {
		os.Exit(1)
	}
}

// printCampaignBreakdown reports throughput and where the campaign spent
// its time: the mappers themselves plus each oracle, sorted by cost.
// Stage times are summed across workers, so they can exceed the elapsed
// wall time.
func printCampaignBreakdown(w io.Writer, sum *fuzz.Summary, elapsed time.Duration) {
	if elapsed > 0 {
		fmt.Fprintf(w, "  throughput: %.1f cases/s\n", float64(sum.Cases)/elapsed.Seconds())
	}
	type stage struct {
		name string
		d    time.Duration
	}
	stages := []stage{{"map", sum.MapTime}, {"strash", sum.StrashTime}}
	for name, d := range sum.OracleTime {
		stages = append(stages, stage{name, d})
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].d != stages[j].d {
			return stages[i].d > stages[j].d
		}
		return stages[i].name < stages[j].name
	})
	fmt.Fprintf(w, "  time breakdown (summed across workers):")
	for i, s := range stages {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, " %s %v", s.name, s.d.Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}
