package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestListGolden pins the sorted, column-aligned -list format.
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeBenchmarkList(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "list.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-list output changed; run `go test ./cmd/soimap -update` if intended\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

func TestListSortedAndAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := writeBenchmarkList(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("only %d lines", len(lines))
	}
	kindCol := bytes.Index(lines[0], []byte("KIND"))
	descCol := bytes.Index(lines[0], []byte("DESCRIPTION"))
	if kindCol < 0 || descCol < 0 {
		t.Fatalf("header %q lacks KIND/DESCRIPTION", lines[0])
	}
	prev := ""
	for _, line := range lines[1:] {
		name := string(bytes.Fields(line)[0])
		if name <= prev {
			t.Errorf("benchmark %q out of order after %q", name, prev)
		}
		prev = name
		// Column alignment: every row is wide enough and has a field
		// boundary exactly at each header column.
		if len(line) <= descCol {
			t.Errorf("row %q shorter than the description column", line)
			continue
		}
		if line[kindCol-1] != ' ' || line[kindCol] == ' ' {
			t.Errorf("row %q: kind column misaligned", line)
		}
		if line[descCol-1] != ' ' || line[descCol] == ' ' {
			t.Errorf("row %q: description column misaligned", line)
		}
	}
}
