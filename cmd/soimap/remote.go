package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"soidomino/internal/client"
	"soidomino/internal/obs"
	"soidomino/internal/service"
)

// remoteFlags is the subset of soimap's flags a remote submission can
// express. Local-only outputs (-dump, -netlist, -spice, -dot, -verify,
// -compound, -stats) are not carried: the daemon returns the MapResult
// encoding only. -explain fetches the daemon's attribution record and
// -trace starts a sampled distributed trace, writing the stitched
// Perfetto JSON the server (replica or router) assembled.
type remoteFlags struct {
	circuit, blifPath, benchPath string
	algo, objective              string
	k, maxW, maxH                int
	pareto                       bool
	tupleBudget                  int
	seqAware                     bool
	strashOff                    bool
	workers                      int
	jsonOut                      bool
	explain                      bool
	tracePath                    string
}

// runRemote maps through a soimapd instance using the retrying client:
// transient failures (connection refused during a rolling restart, 429
// under load) are retried with jittered backoff before soimap gives up.
func runRemote(baseURL string, timeout time.Duration, f remoteFlags) error {
	req := &service.MapRequest{Algorithm: f.algo}
	switch {
	case f.blifPath != "":
		b, err := os.ReadFile(f.blifPath)
		if err != nil {
			return err
		}
		req.BLIF = string(b)
	case f.benchPath != "":
		b, err := os.ReadFile(f.benchPath)
		if err != nil {
			return err
		}
		req.Bench = string(b)
	case f.circuit != "":
		req.Circuit = f.circuit
	default:
		return fmt.Errorf("one of -circuit, -blif or -bench is required")
	}
	req.Options = &service.RequestOptions{
		MaxWidth:      f.maxW,
		MaxHeight:     f.maxH,
		Objective:     f.objective,
		ClockWeight:   f.k,
		Pareto:        f.pareto,
		TupleBudget:   f.tupleBudget,
		SequenceAware: f.seqAware,
		StrashOff:     f.strashOff,
		Workers:       f.workers,
	}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}

	// Ctrl-C aborts the submission and the poll loop promptly instead of
	// leaving soimap asleep between polls.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// -trace mints a sampled trace context; the client propagates it as a
	// traceparent header, so the server records spans under our trace id.
	var tc obs.TraceContext
	if f.tracePath != "" {
		tc = obs.NewTraceContext()
		ctx = obs.WithTraceContext(ctx, tc)
	}

	c := client.New(client.Config{BaseURL: baseURL})
	v, err := c.Map(ctx, req)
	if err != nil {
		return err
	}
	// A synchronous submission can still come back non-terminal when the
	// HTTP round trip outlives the handler's patience; poll to the end.
	poll := time.NewTicker(50 * time.Millisecond)
	defer poll.Stop()
	for v.State == service.JobQueued || v.State == service.JobRunning {
		select {
		case <-ctx.Done():
			return fmt.Errorf("interrupted while polling remote job %s: %w", v.ID, ctx.Err())
		case <-poll.C:
		}
		if v, err = c.Job(ctx, v.ID); err != nil {
			return err
		}
	}
	switch v.State {
	case service.JobDone:
	case service.JobCanceled:
		return fmt.Errorf("remote job %s canceled: %s", v.ID, v.Error)
	default:
		return fmt.Errorf("remote job %s failed: %s", v.ID, v.Error)
	}

	if f.jsonOut {
		b, err := service.EncodeJSON(v.Result)
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(b); err != nil {
			return err
		}
	} else {
		r := v.Result
		fmt.Printf("%s via %s (job %s, cached=%t)\n", r.Circuit, baseURL, v.ID, v.Cached)
		fmt.Printf("%s: Tlogic=%d Tdisch=%d Ttotal=%d gates=%d Tclock=%d levels=%d\n",
			r.Algorithm, r.Stats.TLogic, r.Stats.TDisch, r.Stats.TTotal,
			r.Stats.Gates, r.Stats.TClock, r.Stats.Levels)
		if r.Degraded {
			fmt.Println("note: tuple budget overflowed; result degraded to the per-shape heuristic")
		}
	}
	if f.explain {
		ev, err := c.Explain(ctx, v.ID)
		if err != nil {
			return fmt.Errorf("explain job %s: %w", v.ID, err)
		}
		out := io.Writer(os.Stdout)
		if f.jsonOut {
			out = os.Stderr
		}
		fmt.Fprintln(out, ev.Attribution.Table())
	}
	if f.tracePath != "" {
		b, err := fetchTrace(ctx, c, tc.TraceID)
		if err != nil {
			return fmt.Errorf("fetch trace %s: %w", tc.TraceID, err)
		}
		if err := os.WriteFile(f.tracePath, b, 0o644); err != nil {
			return err
		}
		if !f.jsonOut {
			fmt.Printf("distributed trace %s written to %s; load it at ui.perfetto.dev\n",
				tc.TraceID, f.tracePath)
		}
	}
	return nil
}

// fetchTrace retries briefly on 404: a replica exports a job's spans as
// its worker unwinds, which can land a beat after the job turns terminal
// and the poll loop stops.
func fetchTrace(ctx context.Context, c *client.Client, traceID string) ([]byte, error) {
	var lastErr error
	for i := 0; i < 20; i++ {
		b, err := c.Trace(ctx, traceID)
		if err == nil {
			return b, nil
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
			return nil, err
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return nil, lastErr
}
