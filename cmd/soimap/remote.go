package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"soidomino/internal/client"
	"soidomino/internal/service"
)

// remoteFlags is the subset of soimap's flags a remote submission can
// express. Local-only outputs (-dump, -netlist, -spice, -dot, -verify,
// -compound, -stats, -trace) are not carried: the daemon returns the
// MapResult encoding only.
type remoteFlags struct {
	circuit, blifPath, benchPath string
	algo, objective              string
	k, maxW, maxH                int
	pareto                       bool
	tupleBudget                  int
	seqAware                     bool
	strashOff                    bool
	workers                      int
	jsonOut                      bool
}

// runRemote maps through a soimapd instance using the retrying client:
// transient failures (connection refused during a rolling restart, 429
// under load) are retried with jittered backoff before soimap gives up.
func runRemote(baseURL string, timeout time.Duration, f remoteFlags) error {
	req := &service.MapRequest{Algorithm: f.algo}
	switch {
	case f.blifPath != "":
		b, err := os.ReadFile(f.blifPath)
		if err != nil {
			return err
		}
		req.BLIF = string(b)
	case f.benchPath != "":
		b, err := os.ReadFile(f.benchPath)
		if err != nil {
			return err
		}
		req.Bench = string(b)
	case f.circuit != "":
		req.Circuit = f.circuit
	default:
		return fmt.Errorf("one of -circuit, -blif or -bench is required")
	}
	req.Options = &service.RequestOptions{
		MaxWidth:      f.maxW,
		MaxHeight:     f.maxH,
		Objective:     f.objective,
		ClockWeight:   f.k,
		Pareto:        f.pareto,
		TupleBudget:   f.tupleBudget,
		SequenceAware: f.seqAware,
		StrashOff:     f.strashOff,
		Workers:       f.workers,
	}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}

	// Ctrl-C aborts the submission and the poll loop promptly instead of
	// leaving soimap asleep between polls.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	c := client.New(client.Config{BaseURL: baseURL})
	v, err := c.Map(ctx, req)
	if err != nil {
		return err
	}
	// A synchronous submission can still come back non-terminal when the
	// HTTP round trip outlives the handler's patience; poll to the end.
	poll := time.NewTicker(50 * time.Millisecond)
	defer poll.Stop()
	for v.State == service.JobQueued || v.State == service.JobRunning {
		select {
		case <-ctx.Done():
			return fmt.Errorf("interrupted while polling remote job %s: %w", v.ID, ctx.Err())
		case <-poll.C:
		}
		if v, err = c.Job(ctx, v.ID); err != nil {
			return err
		}
	}
	switch v.State {
	case service.JobDone:
	case service.JobCanceled:
		return fmt.Errorf("remote job %s canceled: %s", v.ID, v.Error)
	default:
		return fmt.Errorf("remote job %s failed: %s", v.ID, v.Error)
	}

	if f.jsonOut {
		b, err := service.EncodeJSON(v.Result)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	r := v.Result
	fmt.Printf("%s via %s (job %s, cached=%t)\n", r.Circuit, baseURL, v.ID, v.Cached)
	fmt.Printf("%s: Tlogic=%d Tdisch=%d Ttotal=%d gates=%d Tclock=%d levels=%d\n",
		r.Algorithm, r.Stats.TLogic, r.Stats.TDisch, r.Stats.TTotal,
		r.Stats.Gates, r.Stats.TClock, r.Stats.Levels)
	if r.Degraded {
		fmt.Println("note: tuple budget overflowed; result degraded to the per-shape heuristic")
	}
	return nil
}
