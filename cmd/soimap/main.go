// Command soimap maps one circuit to SOI domino logic and reports the
// paper's statistics (T_logic, T_disch, T_total, gate count, clock load,
// levels). Circuits come from the built-in benchmark suite or from a BLIF
// file.
//
// Usage:
//
//	soimap -circuit c880 [-algo soi|rs|rsdeep|domino] [-objective area|depth]
//	       [-k 1] [-w 5] [-h 8] [-pareto] [-seq] [-compound] [-strash-off] [-json]
//	       [-verify] [-dump] [-netlist] [-spice out.sp] [-dot out.dot]
//	       [-stats] [-explain] [-trace out.json] [-trace-sample N]
//	soimap -blif path/to/circuit.blif
//	soimap -bench path/to/circuit.bench
//	soimap -list
//	soimap -version
//
// With -json the mapping is printed as the service's MapResult encoding
// (internal/service): for the same circuit, algorithm and options the
// output is byte-identical to what soimapd returns in a job's result.
//
// With -stats the run's DP instrumentation (tuples generated/pruned/kept,
// combine calls by kind, discharge charges, phase timings) is printed
// after the mapping; -explain prints the cost attribution table (wall
// time per pipeline phase with its share, strash reduction, DP tuples) —
// against -server it is fetched from the daemon's
// GET /v1/jobs/{id}/explain instead; -trace writes the run as Chrome
// trace-event JSON, loadable at ui.perfetto.dev (see the Observability
// section of README.md). Against -server, -trace starts a sampled
// distributed trace and writes the fleet-stitched Perfetto JSON fetched
// from GET /v1/traces/{id}.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"soidomino/internal/bench"
	"soidomino/internal/benchfmt"
	"soidomino/internal/blif"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/obs"
	"soidomino/internal/report"
	"soidomino/internal/service"
	"soidomino/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "soimap:", err)
		os.Exit(1)
	}
}

func run() error {
	circuit := flag.String("circuit", "", "built-in benchmark name (see -list)")
	blifPath := flag.String("blif", "", "map a circuit from a BLIF file instead")
	benchPath := flag.String("bench", "", "map a circuit from an ISCAS-89 .bench file instead")
	algo := flag.String("algo", "soi", "mapper: domino, rs, rsdeep or soi")
	objective := flag.String("objective", "area", "cost objective: area or depth")
	k := flag.Int("k", 1, "clock-transistor weight (paper table III)")
	maxW := flag.Int("w", 5, "maximum pulldown width")
	maxH := flag.Int("h", 8, "maximum pulldown height")
	pareto := flag.Bool("pareto", false, "enable the Pareto-frontier DP extension (soi only)")
	tupleBudget := flag.Int("tuple-budget", 0, "Pareto tuple budget; overflow degrades to the paper's heuristic (0 = unlimited)")
	workers := flag.Int("workers", 0, "DP worker goroutines: 0 = auto (GOMAXPROCS on large nets), 1 = sequential; results are identical at any count")
	compound := flag.Bool("compound", false, "apply the compound-domino post-pass (paper solution 7)")
	seqAware := flag.Bool("seq", false, "prune provably-unexcitable discharge points (paper §VII)")
	strashOff := flag.Bool("strash-off", false, "skip the structural-hashing + DCE front-end (see the Canonicalization section of README.md)")
	doVerify := flag.Bool("verify", false, "check functional equivalence against the source")
	dump := flag.Bool("dump", false, "print the mapped gates")
	devices := flag.Bool("netlist", false, "print the transistor-level netlist")
	spicePath := flag.String("spice", "", "write the transistor-level SPICE deck to this file")
	dotPath := flag.String("dot", "", "write a Graphviz view of the mapping to this file")
	jsonOut := flag.Bool("json", false, "print the result as the mapping service's JSON encoding")
	list := flag.Bool("list", false, "list built-in benchmarks")
	statsOut := flag.Bool("stats", false, "print the run's DP instrumentation (to stderr with -json)")
	explain := flag.Bool("explain", false, "print the run's cost attribution table (per-phase wall time, strash reduction, DP tuples); with -server, fetched from the daemon")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	traceSample := flag.Int("trace-sample", 1, "record every Nth per-node DP trace event")
	version := flag.Bool("version", false, "print build information and exit")
	server := flag.String("server", "", "map remotely via a soimapd at this base URL (e.g. http://127.0.0.1:8347)")
	timeout := flag.Duration("server-timeout", 0, "remote job deadline (0 = server default)")
	flag.Parse()

	if *version {
		fmt.Println(obs.Build())
		return nil
	}
	if *list {
		return writeBenchmarkList(os.Stdout)
	}
	if *server != "" {
		return runRemote(*server, *timeout, remoteFlags{
			circuit: *circuit, blifPath: *blifPath, benchPath: *benchPath,
			algo: *algo, objective: *objective, k: *k, maxW: *maxW, maxH: *maxH,
			pareto: *pareto, tupleBudget: *tupleBudget, seqAware: *seqAware,
			strashOff: *strashOff, workers: *workers, jsonOut: *jsonOut,
			explain: *explain, tracePath: *tracePath,
		})
	}

	var src *logic.Network
	switch {
	case *blifPath != "":
		f, err := os.Open(*blifPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src, err = blif.Parse(f)
		if err != nil {
			return err
		}
	case *benchPath != "":
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src, err = benchfmt.Parse(*benchPath, f)
		if err != nil {
			return err
		}
	case *circuit != "":
		b, ok := bench.Get(*circuit)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", *circuit)
		}
		src = b.Build()
	default:
		return fmt.Errorf("one of -circuit, -blif or -bench is required")
	}

	opt := mapper.DefaultOptions()
	opt.MaxWidth = *maxW
	opt.MaxHeight = *maxH
	opt.ClockWeight = *k
	opt.Pareto = *pareto
	opt.TupleBudget = *tupleBudget
	opt.Workers = *workers
	opt.SequenceAware = *seqAware
	opt.StrashOff = *strashOff
	switch *objective {
	case "area":
	case "depth":
		opt.Objective = mapper.Depth
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	label := src.Name
	if *circuit != "" {
		label = *circuit
	}

	// Observability opt-ins: a per-run stats collector and/or a span
	// tracer ride through the context into the pipeline and the DP.
	ctx := context.Background()
	var st *obs.Stats
	if *statsOut || *explain {
		st = &obs.Stats{}
		ctx = obs.WithStats(ctx, st)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(*traceSample)
		ctx = obs.WithTracer(ctx, tracer)
	}

	wallStart := time.Now()
	p, err := report.PrepareNetworkMode(ctx, src, opt.StrashOff)
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Printf("source: %s\n", src)
		if p.Strash != nil {
			c := p.Strash.Counters
			fmt.Printf("strash: %d -> %d nodes (%d merged, %d folded, %d dead removed)\n",
				c.NodesIn, c.NodesOut, c.Merged, c.Folded, c.Dead)
		}
		fmt.Printf("unate:  %s (%d duplicated gates)\n", p.Unate, p.Duplicated)
	}

	var res *mapper.Result
	switch *algo {
	case "domino":
		res, err = mapper.DominoMapContext(ctx, p.Unate, opt)
	case "rs":
		res, err = mapper.RSMapContext(ctx, p.Unate, opt)
	case "rsdeep":
		res, err = mapper.RSMapDeepContext(ctx, p.Unate, opt)
	case "soi":
		res, err = mapper.SOIDominoMapContext(ctx, p.Unate, opt)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	if err := obs.Timed(st, obs.PhaseAudit, res.Audit); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	wall := time.Since(wallStart)
	if !*jsonOut {
		fmt.Printf("%s: %s\n", res.Algorithm, res.Stats)
	}
	if *compound {
		cs, err := mapper.CompoundTransform(res, mapper.DefaultCompoundOptions())
		if err != nil {
			return err
		}
		if err := res.Audit(); err != nil {
			return fmt.Errorf("compound audit: %w", err)
		}
		if !*jsonOut {
			fmt.Printf("compound: %d gates converted, %d transistors saved -> %s\n",
				cs.Converted, cs.Saved, res.Stats)
		}
	}
	if *jsonOut {
		b, err := service.EncodeJSON(service.NewMapResult(label, p, res))
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(b); err != nil {
			return err
		}
	}
	if st != nil && *statsOut {
		// With -json the stats go to stderr so stdout stays byte-identical
		// to the daemon's result encoding.
		out := io.Writer(os.Stdout)
		if *jsonOut {
			out = os.Stderr
		}
		fmt.Fprintln(out, st)
	}
	if *explain {
		// The same attribution record a replica attaches to a job, built
		// from this process's run: a local mapping is always a cache miss.
		a := service.NewAttribution("", "", service.TierMiss, 0, wall, st)
		out := io.Writer(os.Stdout)
		if *jsonOut {
			out = os.Stderr
		}
		fmt.Fprintln(out, a.Table())
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if _, err := tracer.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("trace written to %s (%d events); load it at ui.perfetto.dev\n",
				*tracePath, tracer.Len())
		}
	}

	if *doVerify {
		rep, err := verify.Equivalent(src, res, verify.DefaultOptions())
		if err != nil {
			return err
		}
		if !rep.OK() {
			return fmt.Errorf("NOT equivalent: %s", rep.Mismatches[0])
		}
		if !*jsonOut {
			mode := "randomized+corners"
			if rep.Exhaustive {
				mode = "exhaustive"
			}
			fmt.Printf("verified equivalent (%s, %d vectors)\n", mode, rep.Vectors)
		}
	}
	if *dump {
		fmt.Print(res.Dump())
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := res.WriteDot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("Graphviz view written to %s\n", *dotPath)
	}
	if *devices || *spicePath != "" {
		c, err := netlist.Build(res)
		if err != nil {
			return err
		}
		if err := c.Audit(); err != nil {
			return fmt.Errorf("netlist audit: %w", err)
		}
		if *devices {
			fmt.Print(c.Dump())
		}
		if *spicePath != "" {
			f, err := os.Create(*spicePath)
			if err != nil {
				return err
			}
			if err := c.WriteSpice(f, netlist.DefaultSpiceOptions()); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("SPICE deck written to %s (%d devices)\n", *spicePath, len(c.Devices))
		}
	}
	return nil
}

// writeBenchmarkList prints the built-in suite sorted by name with
// aligned columns. Golden-tested; keep the format stable.
func writeBenchmarkList(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tKIND\tDESCRIPTION")
	for _, name := range bench.Names() { // Names is already sorted
		b, _ := bench.Get(name)
		fmt.Fprintf(tw, "%s\t%s\t%s\n", name, b.Kind, b.Description)
	}
	return tw.Flush()
}
