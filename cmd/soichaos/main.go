// Command soichaos runs a seeded chaos campaign against an in-process
// soimapd: every fault point is armed with a random fault kind, a stream
// of mapping requests is pushed through the retrying client, and every
// response the service claims succeeded is re-derived locally and checked
// against the full oracle suite (audit, functional equivalence, discharge
// prediction, netlist, soisim). Any response that survives injected
// faults but is wrong — a silent corruption — is a violation and a
// non-zero exit.
//
// Campaigns are replayable: the seed fixes the fault schedule and the
// request stream, so a finding can be reproduced with -seed alone.
//
// With -cluster, the campaign runs multi-node instead: an in-process
// soirouter fronts -replicas soimapd instances wired into the shared
// result-cache tier, one replica is killed a third of the way through
// the campaign and restarted at two thirds, and identical-submission
// bursts exercise both singleflight layers. The same verification
// applies: every completed response must be byte-identical to a clean
// local re-derivation, whichever replica — or whichever cache — it came
// from.
//
// With -persist, the campaign targets the durability layer instead: a
// single soimapd with a state dir takes load while torn-write, partial
// journal-append and fsync faults are armed against its durable tier,
// crashes mid-batch without any graceful shutdown, and restarts over
// the same dir. The restart must come back warm, re-admit the cut-down
// jobs under their original ids, quarantine every injected tear, and
// answer every replayed request byte-identically.
//
// Usage:
//
//	soichaos [-seed 1] [-requests 40] [-duration 30s] [-p 0.1]
//	         [-workers 2] [-queue 8] [-sim 3] [-v]
//	         [-cluster] [-replicas 3] [-rf 2]
//	         [-persist] [-torn-p 0.25]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"soidomino/internal/chaostest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "soichaos:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "campaign seed; fixes the fault schedule and request stream")
	requests := flag.Int("requests", 40, "number of mapping requests to push through the service")
	duration := flag.Duration("duration", 30*time.Second, "wall-clock bound on the campaign (0 = none)")
	prob := flag.Float64("p", 0.1, "per-roll fault probability at each fault point")
	workers := flag.Int("workers", 2, "service worker goroutines")
	queue := flag.Int("queue", 8, "service queue depth")
	sim := flag.Int("sim", 3, "soisim oracle cycles per verified response (negative skips simulation)")
	verbose := flag.Bool("v", false, "print the per-point fault census")
	clusterMode := flag.Bool("cluster", false, "run the multi-node campaign: router + replicas with a mid-flight kill and restart")
	replicas := flag.Int("replicas", 3, "cluster mode: replica count")
	rf := flag.Int("rf", 2, "cluster mode: router replication factor")
	persistMode := flag.Bool("persist", false, "run the crash-persistence campaign: state-dir server, torn-write faults, crash mid-load, warm restart")
	tornProb := flag.Float64("torn-p", 0.25, "persist mode: per-write torn-record probability")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *persistMode {
		rep, err := chaostest.RunPersist(ctx, chaostest.PersistConfig{
			Seed:       *seed,
			Requests:   *requests,
			Workers:    *workers,
			QueueDepth: *queue,
			TornProb:   *tornProb,
			SimCycles:  *sim,
		})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
		}
		if len(rep.Violations) > 0 {
			return fmt.Errorf("%d durability violation(s); replay with -persist -seed %d", len(rep.Violations), *seed)
		}
		return nil
	}

	if *clusterMode {
		rep, err := chaostest.RunCluster(ctx, chaostest.ClusterConfig{
			Seed:              *seed,
			Requests:          *requests,
			Deadline:          *duration,
			Replicas:          *replicas,
			ReplicationFactor: *rf,
			Workers:           *workers,
			QueueDepth:        *queue,
			FaultProb:         *prob,
			SimCycles:         *sim,
		})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
		}
		if len(rep.Violations) > 0 {
			return fmt.Errorf("%d silent corruption(s); replay with -cluster -seed %d", len(rep.Violations), *seed)
		}
		return nil
	}

	rep, err := chaostest.Run(ctx, chaostest.Config{
		Seed:       *seed,
		Requests:   *requests,
		Deadline:   *duration,
		Workers:    *workers,
		QueueDepth: *queue,
		FaultProb:  *prob,
		SimCycles:  *sim,
	})
	if err != nil {
		return err
	}

	fmt.Println(rep)
	if *verbose {
		names := make([]string, 0, len(rep.FaultsFired))
		for name := range rep.FaultsFired {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-24s fired %d\n", name, rep.FaultsFired[name])
		}
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("%d silent corruption(s); replay with -seed %d", len(rep.Violations), *seed)
	}
	return nil
}
