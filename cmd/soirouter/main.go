// Command soirouter fronts a fleet of soimapd replicas as one logical
// mapping service. Submissions are consistent-hash-routed by their
// canonical request key (the canonical network hash keyed jointly with
// the options encoding — the same key replicas cache results under), so
// identical circuits always land on the same replicas; concurrent
// identical synchronous submissions coalesce into one upstream call.
//
// Usage:
//
//	soirouter -replicas http://h1:8347,http://h2:8347,http://h3:8347
//	          [-addr :8346] [-rf 2] [-probe 2s] [-max-body 16777216]
//	          [-attempts 4] [-strash-off] [-log text|json|off]
//
// Endpoints mirror soimapd:
//
//	POST /v1/map       routed submission; job ids come back namespaced
//	                   "<replica>.<id>"
//	GET  /v1/jobs/{id} polls the replica that owns the job
//	GET  /v1/jobs/{id}/explain
//	                   per-request cost attribution from the owning replica
//	GET  /v1/traces/{id}
//	                   the stitched fleet-wide distributed trace: router
//	                   spans plus every replica's spans for one trace id,
//	                   rendered as Perfetto-loadable JSON
//	GET  /healthz      liveness plus replica readiness counts
//	GET  /readyz       200 while at least one replica is ready
//	GET  /metrics      Prometheus text format (soirouter_* series)
//
// A background prober watches each replica's /readyz on the -probe
// cadence: draining replicas leave rotation before their listeners
// close, and transport failures take a replica out of rotation
// immediately without waiting for the next probe. Mapping is
// deterministic and byte-identical across replicas (DESIGN.md §12), so
// failover never changes an answer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soidomino/internal/client"
	"soidomino/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "soirouter:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8346", "listen address")
	replicas := flag.String("replicas", "", "comma-separated soimapd base URLs (required)")
	rf := flag.Int("rf", 0, "replication factor: preferred replicas per key before last-resort failover (0 = default 2)")
	probe := flag.Duration("probe", 0, "replica /readyz probe interval (0 = default 2s, negative disables)")
	maxBody := flag.Int64("max-body", 0, "request-body byte cap (0 = default 16MiB)")
	strashOff := flag.Bool("strash-off", false, "force options.strash_off on every routed submission (must match the replicas' -strash-off)")
	attempts := flag.Int("attempts", 0, "per-replica retry attempts before failing over (0 = client default 4)")
	traceSample := flag.Int("trace-sample", 0, "start a sampled distributed trace on every Nth submission without a traceparent header (0: off; incoming sampled headers are always honored)")
	traceMax := flag.Int("trace-max", 0, "distinct traces retained by the in-memory hub, FIFO (0 = default 64)")
	logMode := flag.String("log", "text", "structured logging: text, json or off")
	flag.Parse()

	var logger *slog.Logger
	switch *logMode {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
	default:
		return fmt.Errorf("unknown -log mode %q (want text, json or off)", *logMode)
	}

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return errors.New("-replicas is required (comma-separated soimapd base URLs)")
	}

	rt, err := cluster.New(cluster.Config{
		Replicas:          urls,
		ReplicationFactor: *rf,
		ProbeInterval:     *probe,
		MaxBodyBytes:      *maxBody,
		StrashOff:         *strashOff,
		TraceSample:       *traceSample,
		TraceMax:          *traceMax,
		Client:            client.Config{MaxAttempts: *attempts},
		Logger:            logger,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("soirouter listening on %s, fronting %d replicas (rf=%d)", *addr, len(urls), *rf)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("soirouter: signal received, shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("soirouter: http shutdown: %v", err)
	}
	log.Printf("soirouter: stopped")
	return nil
}
