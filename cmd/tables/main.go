// Command tables regenerates the evaluation tables of Karandikar &
// Sapatnekar, "Technology Mapping for SOI Domino Logic Incorporating
// Solutions for the Parasitic Bipolar Effect" (DAC 2001), printing the
// measured numbers next to the paper's published ones.
//
// Usage:
//
//	tables [-table 1|2|3|4|ablation|compound|delay|sequence|power|area|hysteresis|all] [-circuits cm150,mux] [-check] [-w 5] [-h 8] [-dw 8]
//
// -check additionally verifies every mapped circuit against its source
// network (exhaustive up to 12 inputs, randomized + corner vectors above).
// -circuits restricts tables 1 and 2 to a comma-separated subset of their
// rows, for quick looks at a couple of circuits.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"soidomino/internal/mapper"
	"soidomino/internal/report"
)

// writeCompare renders a regenerated Table I/II plus its summary footer.
func writeCompare(w io.Writer, t *report.CompareTable) error {
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w, report.Summary("T_disch reduction", t.AvgDischReduction(), t.PaperAvg[0]))
	fmt.Fprintln(w, report.Summary("T_total reduction", t.AvgTotalReduction(), t.PaperAvg[1]))
	return nil
}

// splitCircuits parses the -circuits flag; empty means no restriction.
func splitCircuits(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3, 4, ablation, compound, delay, sequence, power, area, hysteresis or all")
	circuits := flag.String("circuits", "", "restrict tables 1 and 2 to these comma-separated circuits")
	check := flag.Bool("check", false, "verify functional equivalence of every mapping")
	maxW := flag.Int("w", 5, "maximum pulldown width (paper: 5)")
	maxH := flag.Int("h", 8, "maximum pulldown height (paper: 8)")
	depthWeight := flag.Int("dw", 8, "depth-objective weight of one level vs one discharge transistor")
	flag.Parse()
	only := splitCircuits(*circuits)

	opt := mapper.DefaultOptions()
	opt.MaxWidth = *maxW
	opt.MaxHeight = *maxH
	opt.DepthWeight = *depthWeight

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s regenerated in %.2fs]\n\n", name, time.Since(start).Seconds())
	}

	all := *table == "all"
	if all || *table == "1" {
		run("table I", func() error {
			t, err := report.RunTableIOn(only, opt, *check)
			if err != nil {
				return err
			}
			return writeCompare(os.Stdout, t)
		})
	}
	if all || *table == "2" {
		run("table II", func() error {
			t, err := report.RunTableIIOn(only, opt, *check)
			if err != nil {
				return err
			}
			return writeCompare(os.Stdout, t)
		})
	}
	if all || *table == "3" {
		run("table III", func() error {
			t, err := report.RunTableIII(opt, *check)
			if err != nil {
				return err
			}
			if err := t.Write(os.Stdout); err != nil {
				return err
			}
			fmt.Println(report.Summary("T_clock reduction", t.AvgClockReduction(), t.PaperAvg))
			return nil
		})
	}
	if all || *table == "4" {
		run("table IV", func() error {
			t, err := report.RunTableIV(opt, *check)
			if err != nil {
				return err
			}
			if err := t.Write(os.Stdout); err != nil {
				return err
			}
			fmt.Println(report.Summary("T_disch reduction", t.AvgDischReduction(), t.PaperAvg[0]))
			fmt.Println(report.Summary("level reduction", t.AvgLevelReduction(), t.PaperAvg[1]))
			return nil
		})
	}
	if all || *table == "ablation" {
		run("ablation", func() error {
			t, err := report.RunAblation(opt, *check)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout)
		})
	}
	if all || *table == "compound" {
		run("compound", func() error {
			t, err := report.RunCompound(opt, *check)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout)
		})
	}
	if all || *table == "delay" {
		run("delay", func() error {
			t, err := report.RunDelay(opt, *check)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout)
		})
	}
	if all || *table == "sequence" {
		run("sequence", func() error {
			t, err := report.RunSequence(opt, *check)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout)
		})
	}
	if all || *table == "power" {
		run("power", func() error {
			t, err := report.RunPower(opt, *check)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout)
		})
	}
	if all || *table == "area" {
		run("area", func() error {
			t, err := report.RunArea(opt, *check)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout)
		})
	}
	if all || *table == "hysteresis" {
		run("hysteresis", func() error {
			t, err := report.RunHysteresis(opt, 300)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout)
		})
	}
}
