package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"soidomino/internal/mapper"
	"soidomino/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTableIIGolden pins the rendered Table II output — column layout,
// paper reference numbers and summary footer — on two small circuits, so
// format or stats drift shows up as a readable diff without mapping the
// whole 21-circuit table.
func TestTableIIGolden(t *testing.T) {
	tab, err := report.RunTableIIOn([]string{"cm150", "mux"}, mapper.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeCompare(&buf, tab); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "table2.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("table II output changed; run `go test ./cmd/tables -update` if intended\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

func TestSplitCircuits(t *testing.T) {
	for in, want := range map[string][]string{
		"":           nil,
		"cm150":      {"cm150"},
		"cm150, mux": {"cm150", "mux"},
		" a ,, b , ": {"a", "b"},
		"des,c432":   {"des", "c432"},
	} {
		if got := splitCircuits(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitCircuits(%q) = %v, want %v", in, got, want)
		}
	}
}

// A circuit outside the table must error, not silently vanish.
func TestRunTableOnUnknownCircuit(t *testing.T) {
	if _, err := report.RunTableIIOn([]string{"nope"}, mapper.DefaultOptions(), false); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}
