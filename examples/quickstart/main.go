// Quickstart: build a small logic network with the public API, run it
// through the full SOI domino mapping pipeline (decompose -> unate ->
// map), and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/unate"
	"soidomino/internal/verify"
)

func main() {
	// 1. Describe the logic: f = (a XOR b) AND (c OR !d), g = NAND(a, c).
	n := logic.New("quickstart")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddGate(logic.Xor, a, b)
	or := n.AddGate(logic.Or, c, n.AddGate(logic.Not, d))
	n.AddOutput("f", n.AddGate(logic.And, x, or))
	n.AddOutput("g", n.AddGate(logic.Nand, a, c))
	fmt.Println("source: ", n)

	// 2. Decompose to 2-input AND/OR + inverters, then make it unate
	//    (inverters pushed to the primary inputs, the form domino needs).
	dec, err := decompose.Decompose(n)
	if err != nil {
		log.Fatal(err)
	}
	u, err := unate.Convert(dec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unate:  ", u.Network)

	// 3. Map to SOI domino logic: the DP minimizes total transistors
	//    including the p-discharge devices that prevent the Parasitic
	//    Bipolar Effect.
	res, err := mapper.SOIDominoMap(u.Network, mapper.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapped: ", res.Stats)
	fmt.Print(res.Dump())

	// 4. Verify the mapping computes the same functions.
	if err := verify.MustBeEquivalent(n, res, verify.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalence verified")

	// 5. Realize at the transistor level.
	circ, err := netlist.Build(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist: %d devices (%d clock-connected)\n",
		len(circ.Devices), circ.Stats.TClock())
}
