// mux16 maps the cm150 benchmark (a 16:1 multiplexer, one of the paper's
// evaluation circuits) with all three algorithms and compares the
// discharge-transistor demands — the paper's Table I/II comparison on one
// circuit, with functional verification and a transistor-level audit.
//
//	go run ./examples/mux16
package main

import (
	"fmt"
	"log"

	"soidomino/internal/bench"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/report"
)

func main() {
	src := bench.MustBuild("cm150")
	fmt.Println("circuit:", src)

	p, err := report.PrepareNetwork(src)
	if err != nil {
		log.Fatal(err)
	}

	opt := mapper.DefaultOptions()
	// The harness convention: the PBE-blind mappers order stacks
	// pseudorandomly, like a bulk-CMOS flow that never thinks about
	// discharge points.
	opt.BaselineStackOrder = mapper.OrderHashed

	for _, algo := range []report.Algorithm{report.Domino, report.RS, report.SOI} {
		res, err := p.Map(algo, opt, true) // true: verify equivalence
		if err != nil {
			log.Fatal(err)
		}
		circ, err := netlist.Build(res)
		if err != nil {
			log.Fatal(err)
		}
		if err := circ.Audit(); err != nil {
			log.Fatal(err)
		}
		if err := circ.CrossCheck(res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %s  (%d devices at transistor level)\n",
			res.Algorithm, res.Stats, len(circ.Devices))
	}

	fmt.Println()
	fmt.Println("The SOI mapper grounds every parallel stack it can, so the")
	fmt.Println("multiplexer tree needs no pre-discharge transistors at all;")
	fmt.Println("the PBE-blind baseline pays for its arbitrary stack orders.")
}
