// fileflow demonstrates the interchange surface: read circuits from the
// two classic benchmark formats (ISCAS-89 .bench and BLIF), map them to
// SOI domino, verify, and export every downstream artifact — a Graphviz
// view of the mapping, a transistor-level SPICE deck, and a VCD waveform
// of a short simulation.
//
//	go run ./examples/fileflow [outdir]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"soidomino/internal/benchfmt"
	"soidomino/internal/blif"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/report"
	"soidomino/internal/soisim"
)

func main() {
	outdir := "/tmp/soidomino-fileflow"
	if len(os.Args) > 1 {
		outdir = os.Args[1]
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	bench, err := os.Open("testdata/c17.bench")
	if err != nil {
		log.Fatal(err)
	}
	c17, err := benchfmt.Parse("c17", bench)
	bench.Close()
	if err != nil {
		log.Fatal(err)
	}

	blifFile, err := os.Open("testdata/maj.blif")
	if err != nil {
		log.Fatal(err)
	}
	maj, err := blif.Parse(blifFile)
	blifFile.Close()
	if err != nil {
		log.Fatal(err)
	}

	for _, src := range []*logic.Network{c17, maj} {
		if err := flow(src, outdir); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("artifacts written to", outdir)
}

func flow(src *logic.Network, outdir string) error {
	p, err := report.PrepareNetwork(src)
	if err != nil {
		return err
	}
	res, err := p.Map(report.SOI, mapper.DefaultOptions(), true) // verified
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %s -> %s\n", src.Name, src, res.Stats)

	// Graphviz view of the mapping.
	dot, err := os.Create(filepath.Join(outdir, src.Name+".dot"))
	if err != nil {
		return err
	}
	if err := res.WriteDot(dot); err != nil {
		dot.Close()
		return err
	}
	dot.Close()

	// Transistor-level realization and SPICE deck.
	circ, err := netlist.Build(res)
	if err != nil {
		return err
	}
	if err := circ.Audit(); err != nil {
		return err
	}
	sp, err := os.Create(filepath.Join(outdir, src.Name+".sp"))
	if err != nil {
		return err
	}
	if err := circ.WriteSpice(sp, netlist.DefaultSpiceOptions()); err != nil {
		sp.Close()
		return err
	}
	sp.Close()

	// Short switch-level simulation with a waveform trace.
	sim := soisim.New(circ, soisim.DefaultConfig())
	sim.EnableTrace(soisim.TraceGates)
	for _, vec := range soisim.RandomVectors(circ, rand.New(rand.NewSource(5)), 12) {
		if _, _, err := sim.Cycle(vec); err != nil {
			return err
		}
	}
	vcd, err := os.Create(filepath.Join(outdir, src.Name+".vcd"))
	if err != nil {
		return err
	}
	if err := sim.WriteVCD(vcd); err != nil {
		vcd.Close()
		return err
	}
	return vcd.Close()
}
