// pbedemo walks through the physics of the Parasitic Bipolar Effect on
// the switch-level SOI simulator, reproducing the paper's fig. 2 failure
// narrative (§III-B) and then stress-testing a larger circuit to show that
// mapped-and-protected implementations never mis-evaluate while the
// unprotected bulk-style netlist does.
//
//	go run ./examples/pbedemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/report"
	"soidomino/internal/soisim"
)

func main() {
	fmt.Println("== Part 1: the paper's fig. 2 scenario ==")
	figure2()
	fmt.Println()
	fmt.Println("== Part 2: stress test on a PBE-prone circuit ==")
	stress()
}

func figure2() {
	// (A+B+C)*D, mapped the bulk way: the parallel stack sits above D.
	n := logic.New("fig2")
	a := n.AddInput("A")
	b := n.AddInput("B")
	c := n.AddInput("C")
	d := n.AddInput("D")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	n.AddOutput("f", n.AddGate(logic.And, or3, d))

	p, err := report.PrepareNetwork(n)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Map(report.Domino, mapper.DefaultOptions(), true)
	if err != nil {
		log.Fatal(err)
	}
	circ, err := netlist.Build(res)
	if err != nil {
		log.Fatal(err)
	}

	cfg := soisim.DefaultConfig()
	cfg.DisableDischarge = true // bulk-style: no pre-discharge device
	sim := soisim.New(circ, cfg)

	fmt.Printf("gate %s, simulated WITHOUT its discharge device:\n", res.Gates[0].Tree)
	seq := []map[string]bool{
		{"A": true, "B": false, "C": false, "D": false}, // node 1 charges high
		{"A": true, "B": false, "C": false, "D": false}, // bodies of B and C charge
		{"A": true, "B": false, "C": false, "D": false}, //
		{"A": false, "B": false, "C": false, "D": true}, // D pulls node 1 low: PBE
		{"A": false, "B": false, "C": false, "D": true}, // keeper recovered at precharge
	}
	for i, vec := range seq {
		out, events, err := sim.Cycle(vec)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		for _, e := range events {
			note = "  <-- " + e.String()
		}
		fmt.Printf("  cycle %d: f=%v (should be false)%s\n", i, out["f"], note)
	}
}

func stress() {
	// Many (A+B+C)*D-shaped cones: each is a PBE hazard when mapped blind.
	n := logic.New("prone")
	for k := 0; k < 8; k++ {
		a := n.AddInput(fmt.Sprintf("a%d", k))
		b := n.AddInput(fmt.Sprintf("b%d", k))
		c := n.AddInput(fmt.Sprintf("c%d", k))
		d := n.AddInput(fmt.Sprintf("d%d", k))
		or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
		n.AddOutput(fmt.Sprintf("f%d", k), n.AddGate(logic.And, or3, d))
	}
	p, err := report.PrepareNetwork(n)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		label   string
		algo    report.Algorithm
		disable bool
	}{
		{"bulk mapping, unprotected", report.Domino, true},
		{"bulk mapping, discharges inserted", report.Domino, false},
		{"SOI mapping (zero discharges)", report.SOI, false},
	} {
		res, err := p.Map(tc.algo, mapper.DefaultOptions(), false)
		if err != nil {
			log.Fatal(err)
		}
		circ, err := netlist.Build(res)
		if err != nil {
			log.Fatal(err)
		}
		cfg := soisim.DefaultConfig()
		cfg.DisableDischarge = tc.disable
		sim := soisim.New(circ, cfg)

		rng := rand.New(rand.NewSource(99))
		cur := map[string]bool{}
		for _, in := range circ.Inputs {
			cur[in] = rng.Intn(2) == 1
		}
		corrupted := 0
		const cycles = 400
		for cyc := 0; cyc < cycles; cyc++ {
			if cyc%4 == 3 {
				for _, in := range circ.Inputs {
					if rng.Intn(3) == 0 {
						cur[in] = !cur[in]
					}
				}
			}
			_, events, err := sim.Cycle(cur)
			if err != nil {
				log.Fatal(err)
			}
			for _, e := range events {
				if e.Corrupted {
					corrupted++
				}
			}
		}
		fmt.Printf("  %-36s Tdisch=%d, corrupted evaluations: %d / %d cycles\n",
			tc.label, res.Stats.TDisch, corrupted, cycles)
	}
}
