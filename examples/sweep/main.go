// sweep extends the paper's Table III: it sweeps the clock-transistor
// weight k from 1 to 4 on a few circuits and shows how the mapper trades
// total transistors for clock-network load (fewer clocked feet and
// discharge devices, larger pulldown networks).
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"soidomino/internal/mapper"
	"soidomino/internal/report"
)

func main() {
	circuits := []string{"9symml", "c880", "dalu", "des"}
	ks := []int{1, 2, 3, 4}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "circuit\tk\tTlogic\tTdisch\tTtotal\tgates\tTclock\tlevels")
	for _, name := range circuits {
		p, err := report.Prepare(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range ks {
			opt := mapper.DefaultOptions()
			opt.ClockWeight = k
			res, err := p.Map(report.SOI, opt, k == 1) // verify once per circuit
			if err != nil {
				log.Fatal(err)
			}
			s := res.Stats
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				name, k, s.TLogic, s.TDisch, s.TTotal, s.Gates, s.TClock, s.Levels)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Raising k penalizes clock-connected devices (p-clock, n-clock,")
	fmt.Println("p-discharge): the mapper forms fewer gates and keeps fewer")
	fmt.Println("discharge devices, reducing clock load at some transistor cost —")
	fmt.Println("the paper's Table III trend.")
}
