// Package soidomino reproduces "Technology Mapping for SOI Domino Logic
// Incorporating Solutions for the Parasitic Bipolar Effect" (Karandikar &
// Sapatnekar, DAC 2001): a library-free dynamic-programming technology
// mapper that turns random logic into domino gates for
// Silicon-on-Insulator, minimizing total transistor count including the
// clocked pre-discharge devices that keep the parasitic bipolar effect
// from corrupting dynamic nodes.
//
// The implementation lives under internal/:
//
//	logic      Boolean network substrate
//	blif       BLIF-subset reader/writer
//	decompose  2-input AND/OR + inverter decomposition
//	unate      bubble-pushing unate conversion
//	sp         series-parallel pulldown trees
//	pbe        discharge-point analysis and stack rearrangement
//	tuple      DP sub-solution records ({W,H,cost,p_dis,par_b} tuples)
//	mapper     Domino_Map, RS_Map, SOI_Domino_Map
//	netlist    transistor-level realization
//	soisim     switch-level SOI simulator with a floating-body PBE model
//	verify     functional equivalence checking
//	bench      benchmark circuit suite (ISCAS/MCNC substitutes)
//	report     experiment harness regenerating the paper's tables
//
// Entry points: cmd/soimap (map one circuit), cmd/tables (regenerate the
// paper's Tables I-IV), cmd/pbesim (switch-level PBE demonstrations), and
// the runnable walkthroughs under examples/. The benchmarks in
// bench_test.go regenerate one paper table or figure each; see DESIGN.md
// for the experiment index and EXPERIMENTS.md for paper-vs-measured
// results.
package soidomino
