package soidomino

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"soidomino/internal/bench"
	"soidomino/internal/service"
)

var updateKeys = flag.Bool("update", false, "rewrite testdata/routing_keys.golden")

// keyVariants are the option spellings the golden file pins, one per
// line. Every distinct cache entry a replica can hold — and every
// routing decision soirouter can make — derives from these keys, so a
// drift here silently splits the cluster's cache (the same circuit
// routed and cached under two names). The workers4 variant must NOT
// appear as a distinct key: the parallel engine is byte-identical, so
// Workers is excluded from the canonical options encoding by design.
var keyVariants = []struct {
	name string
	opts *service.RequestOptions
}{
	{"default", nil},
	{"depth", &service.RequestOptions{Objective: "depth"}},
	{"footed", &service.RequestOptions{AlwaysFooted: true}},
	{"k2", &service.RequestOptions{ClockWeight: 2}},
	{"pareto", &service.RequestOptions{Pareto: true}},
	{"pareto-b8", &service.RequestOptions{Pareto: true, TupleBudget: 8}},
	{"seq", &service.RequestOptions{SequenceAware: true}},
	{"strash-off", &service.RequestOptions{StrashOff: true}},
	{"workers4", &service.RequestOptions{Workers: 4}},
}

// routingKeyLines renders the full golden vector set: every builtin
// benchmark plus the committed testdata circuits, across all option
// variants and algorithms' default ("soi").
func routingKeyLines(t *testing.T) []string {
	t.Helper()
	type source struct {
		label string
		req   service.MapRequest
	}
	var sources []source
	for _, name := range bench.Names() {
		sources = append(sources, source{label: name, req: service.MapRequest{Circuit: name}})
	}
	for _, f := range []struct{ label, path, kind string }{
		{"testdata/maj.blif", "testdata/maj.blif", "blif"},
		{"testdata/c17.bench", "testdata/c17.bench", "bench"},
	} {
		b, err := os.ReadFile(f.path)
		if err != nil {
			t.Fatal(err)
		}
		req := service.MapRequest{}
		if f.kind == "blif" {
			req.BLIF = string(b)
		} else {
			req.Bench = string(b)
		}
		sources = append(sources, source{label: f.label, req: req})
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].label < sources[j].label })

	var lines []string
	for _, src := range sources {
		for _, v := range keyVariants {
			req := src.req
			req.Options = v.opts
			key, err := service.RequestKey(context.Background(), &req)
			if err != nil {
				t.Fatalf("%s/%s: %v", src.label, v.name, err)
			}
			lines = append(lines, fmt.Sprintf("%s %s %s", src.label, v.name, key))
		}
	}
	return lines
}

// TestRoutingKeyGolden pins the cluster's routing and cache keys: the
// canonical network hash keyed jointly with the options encoding, for
// every seed circuit × option variant. If this test fails without a
// deliberate canon or options change, routing keys have drifted — a
// rolling upgrade would split the shared cache tier across versions.
// After a deliberate change, regenerate with:
//
//	go test -run TestRoutingKeyGolden -update .
func TestRoutingKeyGolden(t *testing.T) {
	lines := routingKeyLines(t)
	got := strings.Join(lines, "\n") + "\n"

	const golden = "testdata/routing_keys.golden"
	if *updateKeys {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("routing key drift at line %d:\n  got:  %s\n  want: %s\n(regenerate with -update only if canon/options changed deliberately)", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("routing key vectors differ in length: %d vs %d lines", len(gl), len(wl))
	}
}

// TestRoutingKeyWorkersExcluded pins the consistency contract's key
// clause directly: a request differing only in Workers must produce the
// SAME routing key, because the parallel DP engine is byte-identical
// and splitting the cache by worker count would only lose hits.
func TestRoutingKeyWorkersExcluded(t *testing.T) {
	base, err := service.RequestKey(context.Background(), &service.MapRequest{Circuit: "mux"})
	if err != nil {
		t.Fatal(err)
	}
	w4, err := service.RequestKey(context.Background(), &service.MapRequest{
		Circuit: "mux", Options: &service.RequestOptions{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base != w4 {
		t.Fatalf("Workers leaked into the routing key:\n  default:  %s\n  workers4: %s", base, w4)
	}

	// And an option that IS semantic must change the key.
	footed, err := service.RequestKey(context.Background(), &service.MapRequest{
		Circuit: "mux", Options: &service.RequestOptions{AlwaysFooted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base == footed {
		t.Fatal("AlwaysFooted did not change the routing key")
	}
}
