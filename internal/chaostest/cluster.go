package chaostest

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"soidomino/internal/client"
	"soidomino/internal/cluster"
	"soidomino/internal/service"
)

// ClusterConfig shapes a multi-node campaign: an in-process router
// fronting several soimapd replicas wired into a shared result-cache
// tier, with replica kills and restarts injected mid-flight. Zero fields
// select defaults.
type ClusterConfig struct {
	// Seed drives the request stream, fault schedules, burst timing and
	// the choice of kill victim.
	Seed int64
	// Requests is the number of submissions to issue (default 120).
	// The victim replica is killed a third of the way in and restarted
	// at two thirds.
	Requests int
	// Replicas is the fleet size (default 3).
	Replicas int
	// ReplicationFactor is the router's preferred-replica count per key
	// (default 2).
	ReplicationFactor int
	// Workers and QueueDepth size each replica (defaults 2, 8).
	Workers, QueueDepth int
	// FaultProb arms every replica's fault points with this per-call
	// firing probability (default 0.02 — the multi-node campaign's main
	// fault is the kill/restart cycle, so point faults stay sparse).
	FaultProb float64
	// Latency is the magnitude of injected Latency faults (default 2ms).
	Latency time.Duration
	// SimCycles is the soisim oracle depth per verified response
	// (default 3; negative skips simulation).
	SimCycles int
	// Deadline optionally bounds the campaign's wall clock.
	Deadline time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Requests <= 0 {
		c.Requests = 120
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.FaultProb <= 0 {
		c.FaultProb = 0.02
	}
	if c.Latency <= 0 {
		c.Latency = 2 * time.Millisecond
	}
	if c.SimCycles == 0 {
		c.SimCycles = 3
	}
	return c
}

// ClusterReport is one multi-node campaign's outcome. As with Report,
// Violations is the only field that can fail a campaign.
type ClusterReport struct {
	Seed     int64
	Requests int
	Done     int
	Degraded int
	// FailedInjected counts jobs failed or canceled by an injected fault
	// point — attributable, designed outcomes.
	FailedInjected int
	// Rejected counts submissions that errored at the client (shed,
	// queue-full, a poll cut off by a kill, retry budget exhausted).
	Rejected int
	// Kills and Restarts count the replica lifecycle events injected.
	Kills, Restarts int
	// Coalesced sums router-level and replica-level singleflight
	// attachments observed by the end of the campaign.
	Coalesced int64
	// PeerHits counts jobs a replica answered from a sibling's result
	// cache instead of mapping (the shared cache tier working).
	PeerHits int64
	// Failovers counts router submissions that had to move past the
	// preferred replica.
	Failovers int64
	// Recovered and Readmitted count jobs the restarted victim rebuilt
	// from its journal: terminal jobs re-created in place and unfinished
	// jobs re-enqueued under their original ids.
	Recovered, Readmitted int64
	// WarmHits is the victim's durable-store hit count right after the
	// restart: > 0 means the replica came back warm from disk instead of
	// cold.
	WarmHits int64
	// StoreCorrupt sums torn or corrupt durable-store records the fleet
	// detected and quarantined (fault-injected tears land here).
	StoreCorrupt int64
	// Violations are silent-corruption findings: a done response whose
	// bytes differ from a clean local re-derivation, an oracle failure,
	// or an unexplained job failure. Empty means the campaign passed.
	Violations []string
}

func (r *ClusterReport) String() string {
	return fmt.Sprintf("cluster chaos seed=%d: %d requests over %d kills/%d restarts, %d done (%d degraded), %d failed-by-fault, %d rejected, %d coalesced, %d peer-cache hits, %d failovers, %d recovered, %d readmitted, %d warm hits, %d corrupt quarantined, %d violations",
		r.Seed, r.Requests, r.Kills, r.Restarts, r.Done, r.Degraded,
		r.FailedInjected, r.Rejected, r.Coalesced, r.PeerHits, r.Failovers,
		r.Recovered, r.Readmitted, r.WarmHits, r.StoreCorrupt, len(r.Violations))
}

// clusterNode is one replica's lifecycle handle: service, listener and
// HTTP server, restartable on a fixed address so the router's replica
// set stays valid across the kill.
type clusterNode struct {
	idx      int
	addr     string // fixed after the first bind
	url      string
	peers    []string
	stateDir string // fixed across restarts: the replica's durable state
	svc      *service.Server
	httpSrv  *http.Server
	alive    bool
}

// start (re)creates the node's service on the node's address. The state
// dir survives the kill, so a restarted replica recovers its journal
// and durable result store — warm cache, re-admitted jobs — exactly as
// a production restart with -state-dir would.
func (n *clusterNode) start(cfg ClusterConfig, rng *rand.Rand) error {
	reg := armFaults(cfg.Seed^int64(n.idx), rng, cfg.FaultProb, cfg.Latency)
	n.svc = service.New(service.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		JobRetention: time.Minute,
		Faults:       reg,
		Peers:        n.peers,
		PeerTimeout:  100 * time.Millisecond,
		StateDir:     n.stateDir,
	})
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		return fmt.Errorf("replica %d rebind %s: %w", n.idx, n.addr, err)
	}
	n.httpSrv = &http.Server{Handler: n.svc.Handler()}
	go n.httpSrv.Serve(ln)
	n.alive = true
	return nil
}

// kill drops the node crash-style: the listener and every open
// connection close, then Abort stops the service without journal
// flushes or graceful drain — in-flight jobs die with only their
// accepted/running records on disk. In-flight requests see transport
// errors; the journal, not the shutdown path, is what makes the later
// restart correct.
func (n *clusterNode) kill() {
	n.httpSrv.Close()
	n.svc.Abort()
	n.alive = false
}

// RunCluster executes one multi-node campaign: router + replicas in
// process, a seeded request stream with identical-submission bursts (the
// coalescing workload), one replica killed mid-campaign and restarted
// later. Every JobDone response — whether mapped, cache-served,
// peer-cache-served, coalesced or failed over — is re-derived locally
// fault-free and byte-compared. The returned error covers harness
// failures; verification findings go to ClusterReport.Violations.
func RunCluster(ctx context.Context, cfg ClusterConfig) (*ClusterReport, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &ClusterReport{Seed: cfg.Seed}

	// Every replica gets a state dir under one campaign-scoped root; the
	// dirs outlive kills so restarts are warm.
	stateRoot, err := os.MkdirTemp("", "soichaos-cluster-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stateRoot)

	// Bind every replica's listener first so each service can be created
	// knowing its siblings' URLs (the shared cache tier's peer list).
	listeners := make([]net.Listener, cfg.Replicas)
	nodes := make([]*clusterNode, cfg.Replicas)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		nodes[i] = &clusterNode{
			idx:      i,
			addr:     ln.Addr().String(),
			url:      "http://" + ln.Addr().String(),
			stateDir: filepath.Join(stateRoot, fmt.Sprintf("replica%d", i)),
		}
	}
	urls := make([]string, cfg.Replicas)
	for i, n := range nodes {
		urls[i] = n.url
	}
	for i, n := range nodes {
		for j, u := range urls {
			if j != i {
				n.peers = append(n.peers, u)
			}
		}
		reg := armFaults(cfg.Seed^int64(n.idx), rng, cfg.FaultProb, cfg.Latency)
		n.svc = service.New(service.Config{
			Workers:      cfg.Workers,
			QueueDepth:   cfg.QueueDepth,
			JobRetention: time.Minute,
			Faults:       reg,
			Peers:        n.peers,
			PeerTimeout:  100 * time.Millisecond,
			StateDir:     n.stateDir,
		})
		n.httpSrv = &http.Server{Handler: n.svc.Handler()}
		go n.httpSrv.Serve(listeners[i])
		n.alive = true
	}
	defer func() {
		for _, n := range nodes {
			if n.alive {
				n.kill()
			}
		}
	}()

	rt, err := cluster.New(cluster.Config{
		Replicas:          urls,
		ReplicationFactor: cfg.ReplicationFactor,
		ProbeInterval:     20 * time.Millisecond,
		Client: client.Config{
			MaxAttempts: 3,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Budget:      2 * time.Second,
		},
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	routerSrv := &http.Server{Handler: rt.Handler()}
	go routerSrv.Serve(rln)
	routerURL := "http://" + rln.Addr().String()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		routerSrv.Shutdown(sctx)
	}()

	cli := client.New(client.Config{
		BaseURL:   routerURL,
		BaseDelay: 2 * time.Millisecond,
		MaxDelay:  50 * time.Millisecond,
		Budget:    2 * time.Second,
	})

	victim := nodes[rng.Intn(len(nodes))]
	killAt, restartAt := cfg.Requests/3, 2*cfg.Requests/3
	pool := workloads()
	start := time.Now()

	// classify folds one submission outcome into the report. Job
	// failures must be attributable to an injected fault or to the kill
	// (a canceled job on the dying replica); anything else is organic.
	var mu sync.Mutex
	classify := func(i int, wl workload, req *service.MapRequest, v *service.JobView, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			rep.Rejected++
			return
		}
		switch v.State {
		case service.JobDone:
			if msg := verifyDone(req, wl, v, cfg.SimCycles, cfg.Seed^int64(i)); msg != "" {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("request %d (%s/%s): %s", i, wl.label, v.Algorithm, msg))
				return
			}
			rep.Done++
			if v.Result.Degraded {
				rep.Degraded++
			}
		case service.JobFailed, service.JobCanceled:
			if !injectedFailure(v.Error) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("request %d (%s/%s): organic failure %q", i, wl.label, v.Algorithm, v.Error))
				return
			}
			rep.FailedInjected++
		default:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("request %d: non-terminal state %s from a synchronous call", i, v.State))
		}
	}

	// sweep issues one fixed default-options submission per workload ×
	// algorithm. Run once while the victim is down and once after its
	// restart, it exercises the shared cache tier deterministically: keys
	// whose ring primary is the victim are computed by a sibling during
	// the outage, so the restarted (cold) victim must answer the repeat
	// from the sibling's cache — a peer hit — instead of remapping.
	sweep := func(tag int) {
		for wi, wl := range pool {
			for ai, algo := range algos {
				req := wl.req
				req.Algorithm = algo
				rep.Requests++
				v, err := cli.Map(ctx, &req)
				classify(tag+wi*len(algos)+ai, wl, &req, v, err)
			}
		}
	}

	for i := 0; i < cfg.Requests; i++ {
		if ctx.Err() != nil {
			break
		}
		if cfg.Deadline > 0 && time.Since(start) > cfg.Deadline {
			break
		}
		// >= not ==: a burst can jump the loop index past the exact mark.
		if rep.Kills == 0 && i >= killAt {
			victim.kill()
			rep.Kills++
			sweep(-1000)
		}
		if rep.Restarts == 0 && i >= restartAt {
			if err := victim.start(cfg, rng); err != nil {
				return nil, err
			}
			rep.Restarts++
			// Wait for the prober to readmit the restarted replica:
			// until then the router prefers its warm siblings and the
			// sweep would never reach the restarted victim.
			readmit := time.Now().Add(5 * time.Second)
			for rt.ReadyReplicas() < len(nodes) && time.Now().Before(readmit) {
				time.Sleep(5 * time.Millisecond)
			}
			// The victim restarted over its surviving state dir, so it
			// must come back warm: journal recovery re-serves terminal
			// jobs from the durable store (counted as store hits) and
			// re-admits the jobs the crash cut down mid-flight.
			rep.Recovered = victim.svc.Counter("jobs_recovered")
			rep.Readmitted = victim.svc.Counter("jobs_readmitted")
			rep.WarmHits = victim.svc.Counter("store_hits")
			if rep.WarmHits == 0 {
				rep.Violations = append(rep.Violations,
					"restarted replica came back cold: no durable-store hits during journal recovery")
			}
			verifyReadmitted(ctx, victim, rep, cfg)
			sweep(-2000)
		}

		wl, req := randRequest(rng, pool)
		if rng.Intn(8) == 0 {
			// Identical-submission burst: the coalescing workload. All
			// riders are synchronous so the router's singleflight (and the
			// replicas' job-table layer under it) can collapse them.
			burst := 2 + rng.Intn(3)
			if rem := cfg.Requests - i; burst > rem {
				burst = rem
			}
			var wg sync.WaitGroup
			for b := 0; b < burst; b++ {
				rep.Requests++
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					v, err := cli.Map(ctx, &req)
					classify(i, wl, &req, v, err)
				}(i + b)
			}
			i += burst - 1 // the loop's own increment covers the last rider
			wg.Wait()
			continue
		}
		rep.Requests++
		var v *service.JobView
		if rng.Intn(4) == 0 {
			v, err = cli.MapWait(ctx, &req, 5*time.Millisecond)
		} else {
			v, err = cli.Map(ctx, &req)
		}
		if err != nil && ctx.Err() != nil {
			break
		}
		classify(i, wl, &req, v, err)
	}

	// The router and every live replica must have survived the campaign.
	checkHealth := func(url, who string) {
		resp, err := http.Get(url + "/healthz")
		if err != nil || resp.StatusCode != http.StatusOK {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s healthz after campaign: %v (err %v)", who, resp, err))
		}
		if resp != nil {
			resp.Body.Close()
		}
	}
	checkHealth(routerURL, "router")
	rep.Coalesced = rt.Counter("jobs_coalesced")
	rep.Failovers = rt.Counter("routed_failovers")
	for _, n := range nodes {
		if !n.alive {
			continue
		}
		checkHealth(n.url, fmt.Sprintf("replica %d", n.idx))
		rep.Coalesced += n.svc.Counter("jobs_coalesced")
		rep.PeerHits += n.svc.Counter("cluster_cache_peer_hits")
		rep.StoreCorrupt += n.svc.Counter("store_corrupt")
	}
	return rep, nil
}

// verifyReadmitted checks every job the restarted victim re-admitted
// from its journal: each must reach a terminal state under its original
// id (a restart must never 404 a poller), and a completed re-admission
// must byte-compare against a clean sequential re-derivation exactly
// like any live response. Failures are legitimate only when an injected
// fault or the re-admission path itself (queue full on boot) explains
// them.
func verifyReadmitted(ctx context.Context, victim *clusterNode, rep *ClusterReport, cfg ClusterConfig) {
	for id, req := range victim.svc.RecoveredJobs() {
		wl, ok := workloadFromRequest(req)
		if !ok {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("readmitted %s: journaled request matches no campaign workload", id))
			continue
		}
		v, err := pollJob(ctx, victim.url, id, 10*time.Second)
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("readmitted %s (%s/%s): %v", id, wl.label, req.Algorithm, err))
			continue
		}
		switch v.State {
		case service.JobDone:
			if msg := verifyDone(req, wl, v, cfg.SimCycles, cfg.Seed); msg != "" {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("readmitted %s (%s/%s): %s", id, wl.label, req.Algorithm, msg))
			}
		case service.JobFailed, service.JobCanceled:
			if !injectedFailure(v.Error) && !strings.Contains(v.Error, "not re-admitted") {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("readmitted %s (%s/%s): organic failure %q", id, wl.label, req.Algorithm, v.Error))
			}
		default:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("readmitted %s: still %s after the poll deadline", id, v.State))
		}
	}
}

// pollJob polls one job id directly at a replica until it reaches a
// terminal state. Any non-200 answer is an error: a recovered job must
// stay addressable under its original id.
func pollJob(ctx context.Context, baseURL, id string, timeout time.Duration) (*service.JobView, error) {
	deadline := time.Now().Add(timeout)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			return nil, fmt.Errorf("poll: %w", err)
		}
		var v service.JobView
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("poll: status %d (a restart must re-serve journaled jobs, not 404 them)", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			resp.Body.Close()
			return nil, fmt.Errorf("poll decode: %w", err)
		}
		resp.Body.Close()
		switch v.State {
		case service.JobDone, service.JobFailed, service.JobCanceled:
			return &v, nil
		}
		if time.Now().After(deadline) {
			return &v, nil // caller reports the non-terminal state
		}
		time.Sleep(5 * time.Millisecond)
	}
}
