package chaostest

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"soidomino/internal/client"
	"soidomino/internal/faultpoint"
	"soidomino/internal/service"
	"soidomino/internal/store"
)

// PersistConfig shapes a single-node crash-persistence campaign: one
// soimapd with a state dir, torn-write and fsync faults armed against
// the durable tier only, a crash mid-load, then a restart over the same
// dir. Zero fields select defaults.
type PersistConfig struct {
	// Seed drives the request stream and the tear schedule.
	Seed int64
	// Requests is the number of synchronous phase-1 submissions whose
	// response bytes are saved for the post-restart compare (default 12).
	Requests int
	// Pending is the number of asynchronous submissions left in flight
	// when the crash lands, so the journal has unfinished work to
	// re-admit (default 6).
	Pending int
	// Workers and QueueDepth size the server (defaults 2, 8).
	Workers, QueueDepth int
	// TornProb is the per-write probability of a torn result record
	// (default 0.25); journal tears and fsync failures fire at half of it.
	TornProb float64
	// SimCycles is the soisim oracle depth per verified response
	// (default 3; negative skips simulation).
	SimCycles int
	// StateDir overrides the campaign's scratch state dir (default: a
	// fresh temp dir, removed when the campaign ends).
	StateDir string
}

func (c PersistConfig) withDefaults() PersistConfig {
	if c.Requests <= 0 {
		c.Requests = 12
	}
	if c.Pending <= 0 {
		c.Pending = 6
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.TornProb <= 0 {
		c.TornProb = 0.25
	}
	if c.SimCycles == 0 {
		c.SimCycles = 3
	}
	return c
}

// PersistReport is one crash-persistence campaign's outcome. As
// everywhere in this package, Violations is the only field that can
// fail a campaign.
type PersistReport struct {
	Seed     int64
	Requests int
	// Done counts phase-1 responses that completed and were saved.
	Done int
	// TornInjected counts store tears and fsync failures the schedule
	// actually fired before the crash.
	TornInjected int64
	// Corrupt counts torn records the restarted server detected and
	// quarantined (boot fsck plus read-path checksum failures).
	Corrupt int64
	// WarmHits, Recovered and Readmitted are the restarted server's
	// recovery counters: durable-store hits, journal-recreated terminal
	// jobs and re-enqueued unfinished jobs.
	WarmHits, Recovered, Readmitted int64
	// Replayed counts phase-2 resubmissions whose bytes matched the
	// saved phase-1 response exactly.
	Replayed int
	// Violations are the campaign's findings: a resubmission whose bytes
	// drifted across the crash, a re-admitted job that failed organically
	// or vanished, or a cold restart. Empty means the campaign passed.
	Violations []string
}

func (r *PersistReport) String() string {
	return fmt.Sprintf("persist chaos seed=%d: %d requests, %d done, %d tears injected, %d quarantined, %d warm hits, %d recovered, %d readmitted, %d byte-stable replays, %d violations",
		r.Seed, r.Requests, r.Done, r.TornInjected, r.Corrupt,
		r.WarmHits, r.Recovered, r.Readmitted, r.Replayed, len(r.Violations))
}

// savedResponse pairs a phase-1 request with the exact bytes served for
// it, the oracle for the post-restart replay.
type savedResponse struct {
	wl    workload
	req   service.MapRequest
	bytes string
}

// RunPersist executes one crash-persistence campaign. Phase 1 boots a
// server with a state dir and only the durable tier's fault points
// armed (tears and fsync failures — faults that corrupt disk, never
// served bytes), completes a stream of submissions, launches a batch of
// async submissions, and crashes the server mid-load without any
// graceful shutdown. Phase 2 restarts over the same dir with no faults
// and checks the durability contract: the boot quarantines every torn
// record instead of refusing to start, journal recovery re-serves
// terminal jobs and re-admits unfinished ones under their original
// ids, and every phase-1 request resubmitted returns byte-identical
// results. The returned error covers harness failures; findings go to
// PersistReport.Violations.
func RunPersist(ctx context.Context, cfg PersistConfig) (*PersistReport, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &PersistReport{Seed: cfg.Seed}

	stateDir := cfg.StateDir
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "soichaos-persist-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}

	// Phase 1: only the durable tier's points are armed. Mapping-path
	// faults are the other campaigns' job; here every submission must
	// complete so its bytes can anchor the replay compare.
	reg := faultpoint.New(cfg.Seed ^ 0x7e47)
	reg.Arm(store.PointWriteTorn, faultpoint.Fault{Kind: faultpoint.Flip, Prob: cfg.TornProb})
	reg.Arm(store.PointJournalPartial, faultpoint.Fault{Kind: faultpoint.Flip, Prob: cfg.TornProb / 2})
	reg.Arm(store.PointFsyncFail, faultpoint.Fault{Kind: faultpoint.Error, Prob: cfg.TornProb / 2})

	srv := service.New(service.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		JobRetention: time.Minute,
		Faults:       reg,
		StateDir:     stateDir,
		JournalFsync: "always", // exercise the fsync path and its fault
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	baseURL := "http://" + addr

	cli := client.New(client.Config{
		BaseURL:   baseURL,
		BaseDelay: 2 * time.Millisecond,
		MaxDelay:  50 * time.Millisecond,
		Budget:    2 * time.Second,
	})

	pool := workloads()
	var saved []savedResponse
	for i := 0; i < cfg.Requests; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wl, req := randRequest(rng, pool)
		rep.Requests++
		v, err := cli.Map(ctx, &req)
		if err != nil {
			// The armed faults never touch the mapping path, so phase 1
			// has no designed request failures.
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("phase-1 request %d (%s/%s): %v", i, wl.label, req.Algorithm, err))
			continue
		}
		if v.State != service.JobDone {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("phase-1 request %d (%s/%s): state %s (%s)", i, wl.label, req.Algorithm, v.State, v.Error))
			continue
		}
		b, err := service.EncodeJSON(v.Result)
		if err != nil {
			return nil, err
		}
		rep.Done++
		saved = append(saved, savedResponse{wl: wl, req: req, bytes: string(b)})
	}

	// Launch the pending batch and crash while it is in flight: these
	// jobs reach the journal as accepted/running but (mostly) never
	// terminal, which is exactly what recovery must re-admit.
	pendingDone := make(chan struct{})
	for i := 0; i < cfg.Pending; i++ {
		_, req := randRequest(rng, pool)
		go func(req service.MapRequest) {
			defer func() { pendingDone <- struct{}{} }()
			cli.Map(ctx, &req) // outcome irrelevant: the crash cuts it down
		}(req)
	}
	time.Sleep(10 * time.Millisecond) // let the batch reach the queue
	httpSrv.Close()
	srv.Abort()
	for i := 0; i < cfg.Pending; i++ {
		<-pendingDone
	}
	fired := reg.Fired()
	rep.TornInjected = fired[store.PointWriteTorn] + fired[store.PointJournalPartial] + fired[store.PointFsyncFail]

	// Phase 2: restart over the same dir, faults disarmed. The boot must
	// absorb whatever the tears left behind.
	srv2 := service.New(service.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		JobRetention: time.Minute,
		StateDir:     stateDir,
	})
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		srv2.Abort()
		return nil, fmt.Errorf("rebind %s: %w", addr, err)
	}
	httpSrv2 := &http.Server{Handler: srv2.Handler()}
	go httpSrv2.Serve(ln2)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv2.Shutdown(sctx)
		srv2.Shutdown(sctx)
	}()

	rep.Corrupt = srv2.Counter("store_corrupt")
	rep.WarmHits = srv2.Counter("store_hits")
	rep.Recovered = srv2.Counter("jobs_recovered")
	rep.Readmitted = srv2.Counter("jobs_readmitted")
	if rep.Done > 0 && rep.WarmHits == 0 {
		rep.Violations = append(rep.Violations,
			"restart came back cold: no durable-store hits during journal recovery")
	}

	// Every re-admitted job must finish under its original id and, when
	// done, byte-match a clean sequential re-derivation.
	for id, req := range srv2.RecoveredJobs() {
		wl, ok := workloadFromRequest(req)
		if !ok {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("readmitted %s: journaled request matches no campaign workload", id))
			continue
		}
		v, err := pollJob(ctx, baseURL, id, 10*time.Second)
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("readmitted %s (%s/%s): %v", id, wl.label, req.Algorithm, err))
			continue
		}
		switch v.State {
		case service.JobDone:
			if msg := verifyDone(req, wl, v, cfg.SimCycles, cfg.Seed); msg != "" {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("readmitted %s (%s/%s): %s", id, wl.label, req.Algorithm, msg))
			}
		case service.JobFailed, service.JobCanceled:
			if !strings.Contains(v.Error, "not re-admitted") {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("readmitted %s (%s/%s): organic failure %q", id, wl.label, req.Algorithm, v.Error))
			}
		default:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("readmitted %s: still %s after the poll deadline", id, v.State))
		}
	}

	// Replay every saved phase-1 request: whether the answer comes from
	// the recovered store, the warmed memory cache or a fresh mapping
	// run, the bytes must be identical — quarantined tears may cost a
	// recompute, never a different answer.
	cli2 := client.New(client.Config{
		BaseURL:   baseURL,
		BaseDelay: 2 * time.Millisecond,
		MaxDelay:  50 * time.Millisecond,
		Budget:    2 * time.Second,
	})
	for i, s := range saved {
		v, err := cli2.Map(ctx, &s.req)
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("replay %d (%s/%s): %v", i, s.wl.label, s.req.Algorithm, err))
			continue
		}
		if v.State != service.JobDone {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("replay %d (%s/%s): state %s (%s)", i, s.wl.label, s.req.Algorithm, v.State, v.Error))
			continue
		}
		b, err := service.EncodeJSON(v.Result)
		if err != nil {
			return nil, err
		}
		if string(b) != s.bytes {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("replay %d (%s/%s): bytes drifted across the crash (silent corruption)", i, s.wl.label, s.req.Algorithm))
			continue
		}
		rep.Replayed++
	}
	return rep, nil
}
