package chaostest

import (
	"context"
	"testing"
	"time"
)

// TestCampaignFindsNoCorruption is the in-tree chaos smoke: a short
// seeded campaign must fire faults, complete some jobs, and find zero
// silent corruptions.
func TestCampaignFindsNoCorruption(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Seed:      1,
		Requests:  30,
		SimCycles: 2,
		FaultProb: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Done == 0 {
		t.Error("campaign completed zero jobs — nothing was verified")
	}
	if totalFired(rep.FaultsFired) == 0 {
		t.Error("campaign fired zero faults — nothing was disturbed")
	}
	if rep.Done+rep.FailedInjected+rep.Rejected != rep.Requests {
		t.Errorf("outcomes %d+%d+%d do not account for %d requests",
			rep.Done, rep.FailedInjected, rep.Rejected, rep.Requests)
	}
}

// TestCampaignReplayable: with one worker and a fixed seed the whole
// campaign — fault schedule, request stream, firing decisions — is
// deterministic, so two runs agree outcome for outcome. This is what
// makes a chaos finding debuggable from its seed alone.
func TestCampaignReplayable(t *testing.T) {
	run := func() *Report {
		rep, err := Run(context.Background(), Config{
			Seed:      7,
			Requests:  20,
			Workers:   1,
			SimCycles: 1,
			FaultProb: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Done != b.Done || a.FailedInjected != b.FailedInjected || a.Rejected != b.Rejected {
		t.Errorf("replay diverged: %s vs %s", a, b)
	}
	for name, n := range a.FaultsFired {
		if b.FaultsFired[name] != n {
			t.Errorf("point %s fired %d then %d", name, n, b.FaultsFired[name])
		}
	}
}

// TestCampaignHonorsDeadline: the wall-clock bound stops the request
// loop without failing the campaign.
func TestCampaignHonorsDeadline(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Seed:      3,
		Requests:  100000,
		Deadline:  300 * time.Millisecond,
		SimCycles: -1, // pure throughput; oracles are covered above
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests >= 100000 {
		t.Errorf("deadline did not bound the campaign (%d requests)", rep.Requests)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}
