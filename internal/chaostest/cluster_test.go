package chaostest

import (
	"context"
	"testing"
)

// TestClusterCampaignSurvivesKillRestart is the in-tree multi-node chaos
// smoke: router + replicas in process, one replica killed a third of the
// way in and restarted at two thirds. Every completed response must
// byte-match a clean local re-derivation — through failover, the shared
// cache tier and both coalescing layers — with zero non-injected
// failures.
func TestClusterCampaignSurvivesKillRestart(t *testing.T) {
	rep, err := RunCluster(context.Background(), ClusterConfig{
		Seed:      11,
		Requests:  60,
		SimCycles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Kills != 1 || rep.Restarts != 1 {
		t.Errorf("kills=%d restarts=%d, want 1 and 1", rep.Kills, rep.Restarts)
	}
	if rep.Done == 0 {
		t.Error("campaign completed zero jobs — nothing was verified")
	}
	if rep.PeerHits == 0 {
		t.Error("the shared cache tier never engaged: the restarted replica should have answered outage-period sweep repeats from a sibling's cache")
	}
	if rep.WarmHits == 0 || rep.Recovered == 0 {
		t.Errorf("warm-hits=%d recovered=%d: the victim restarted over its state dir and must come back warm from its journal and durable store",
			rep.WarmHits, rep.Recovered)
	}
	if rep.Done+rep.FailedInjected+rep.Rejected != rep.Requests {
		t.Errorf("outcomes %d+%d+%d do not account for %d requests",
			rep.Done, rep.FailedInjected, rep.Rejected, rep.Requests)
	}
}

// TestClusterCampaignCoalesces: with point faults disabled (probability
// effectively zero cannot be expressed — zero selects the default — so
// a vanishingly small one) and a burst-heavy stream, the two
// singleflight layers must observably collapse identical submissions.
func TestClusterCampaignCoalesces(t *testing.T) {
	rep, err := RunCluster(context.Background(), ClusterConfig{
		Seed:      5,
		Requests:  80,
		FaultProb: 1e-9,
		SimCycles: -1, // oracles are covered by the kill/restart campaign
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Coalesced == 0 {
		t.Error("no submissions coalesced despite identical-submission bursts")
	}
}
