package chaostest

import (
	"context"
	"testing"
)

// TestPersistSmoke is the in-tree crash-persistence smoke (also run as
// `make persist-smoke`): a server with a state dir takes load with torn
// writes and fsync failures armed against its durable tier, crashes
// mid-batch without any graceful shutdown, and restarts over the same
// dir. The restart must be warm, re-admitted jobs must converge under
// their original ids, injected tears must be quarantined, and every
// replayed request must return byte-identical results.
func TestPersistSmoke(t *testing.T) {
	rep, err := RunPersist(context.Background(), PersistConfig{
		Seed:      1,
		SimCycles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Done == 0 || rep.Replayed != rep.Done {
		t.Errorf("done=%d replayed=%d: every completed request must replay byte-identically", rep.Done, rep.Replayed)
	}
	if rep.TornInjected == 0 {
		t.Error("the tear schedule never fired — the campaign verified nothing about torn writes")
	}
	if rep.WarmHits == 0 {
		t.Error("no durable-store hits after the restart: the state dir did not make the restart warm")
	}
	if rep.Recovered+rep.Readmitted == 0 {
		t.Error("journal recovery neither re-served nor re-admitted any job")
	}
}
