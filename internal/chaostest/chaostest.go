// Package chaostest runs the mapping service in-process under a seeded
// randomized fault schedule and checks the resilience layer's core
// promise: whatever faults fire, every non-error response the service
// returns is a correct, audit-clean, PBE-safe mapping, byte-identical to
// a clean fault-free run.
//
// A campaign is replayable: the same seed arms the same fault schedule
// and issues the same request stream, so a violating run can be handed
// to a debugger as one integer.
package chaostest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	builtin "soidomino/internal/bench"
	"soidomino/internal/blif"
	"soidomino/internal/client"
	"soidomino/internal/faultpoint"
	"soidomino/internal/fuzz"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/report"
	"soidomino/internal/service"
	"soidomino/internal/store"
)

// Config shapes one chaos campaign. Zero fields select defaults.
type Config struct {
	// Seed drives the whole campaign: fault schedule, request stream and
	// firing decisions.
	Seed int64
	// Requests is the number of submissions to issue (default 40).
	Requests int
	// Deadline optionally bounds the campaign's wall clock; reaching it
	// stops issuing new requests (it is a smoke-budget, not an error).
	Deadline time.Duration
	// Workers and QueueDepth size the in-process server (defaults 2, 8).
	Workers, QueueDepth int
	// FaultProb arms every defined fault point with this per-call firing
	// probability (default 0.1).
	FaultProb float64
	// Latency is the magnitude of injected Latency faults (default 2ms).
	Latency time.Duration
	// SimCycles is the soisim oracle depth per verified response
	// (default 3; negative skips simulation).
	SimCycles int
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 40
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.FaultProb <= 0 {
		c.FaultProb = 0.1
	}
	if c.Latency <= 0 {
		c.Latency = 2 * time.Millisecond
	}
	if c.SimCycles == 0 {
		c.SimCycles = 3
	}
	return c
}

// Report is one campaign's outcome. Violations is the only field that
// may fail a campaign: everything else is bookkeeping.
type Report struct {
	Seed     int64
	Requests int
	// Done counts responses that reached JobDone and passed verification.
	Done int
	// Degraded counts done responses flagged degraded (a subset of Done).
	Degraded int
	// FailedInjected counts jobs failed/canceled by an injected fault —
	// the designed outcome of a fired Error/Panic/Cancel fault.
	FailedInjected int
	// Rejected counts 4xx/5xx submissions (shed, queue-full, retry
	// budget exhausted) — load shedding doing its job.
	Rejected int
	// FaultsFired is the per-point firing census of the campaign.
	FaultsFired map[string]int64
	// Violations are silent-corruption findings: a done response that
	// failed an oracle, differed from the clean run, or a job that failed
	// with an error no fault explains. Empty means the campaign passed.
	Violations []string
}

func (r *Report) String() string {
	return fmt.Sprintf("chaos seed=%d: %d requests, %d done (%d degraded), %d failed-by-fault, %d rejected, %d faults fired, %d violations",
		r.Seed, r.Requests, r.Done, r.Degraded, r.FailedInjected, r.Rejected, totalFired(r.FaultsFired), len(r.Violations))
}

func totalFired(m map[string]int64) int64 {
	var n int64
	for _, v := range m {
		n += v
	}
	return n
}

// inlineBLIF is the campaign's non-builtin workload: a small two-output
// cover that exercises the BLIF decode path (and its fault point).
const inlineBLIF = `.model chaosblif
.inputs a b c d
.outputs f g
.names a b c f
111 1
.names c d g
1- 1
-1 1
.end
`

// workload is one submission recipe plus how to rebuild its network for
// the clean re-run.
type workload struct {
	req   service.MapRequest
	label string
	build func() (*logic.Network, error)
}

// workloads returns the campaign's circuit pool.
func workloads() []workload {
	names := []string{"mux", "z4ml", "cordic"}
	var out []workload
	for _, name := range names {
		name := name
		out = append(out, workload{
			req:   service.MapRequest{Circuit: name},
			label: name,
			build: func() (*logic.Network, error) {
				b, ok := builtin.Get(name)
				if !ok {
					return nil, fmt.Errorf("unknown builtin %q", name)
				}
				return b.Build(), nil
			},
		})
	}
	out = append(out, workload{
		req:   service.MapRequest{BLIF: inlineBLIF},
		label: "chaosblif",
		build: func() (*logic.Network, error) { return blif.ParseString(inlineBLIF) },
	})
	return out
}

var algos = []string{"domino", "rs", "rsdeep", "soi"}

// Run executes one campaign and returns its report. The returned error
// covers harness failures (listen, shutdown); verification findings go
// to Report.Violations.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Seed: cfg.Seed}

	reg := armFaults(cfg.Seed, rng, cfg.FaultProb, cfg.Latency)

	srv := service.New(service.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		JobRetention: time.Minute,
		Faults:       reg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	baseURL := "http://" + ln.Addr().String()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx)
		srv.Shutdown(sctx)
	}()

	cli := client.New(client.Config{
		BaseURL:   baseURL,
		BaseDelay: 2 * time.Millisecond,
		MaxDelay:  50 * time.Millisecond,
		Budget:    2 * time.Second,
	})

	pool := workloads()
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		if ctx.Err() != nil {
			break
		}
		if cfg.Deadline > 0 && time.Since(start) > cfg.Deadline {
			break
		}
		wl, req := randRequest(rng, pool)
		rep.Requests++

		var v *service.JobView
		if rng.Intn(4) == 0 {
			v, err = cli.MapWait(ctx, &req, 5*time.Millisecond)
		} else {
			v, err = cli.Map(ctx, &req)
		}
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			// Rejections (429/503, exhausted retries, injected decode
			// errors surfacing as 400s) are designed outcomes.
			rep.Rejected++
			continue
		}
		switch v.State {
		case service.JobDone:
			if msg := verifyDone(&req, wl, v, cfg.SimCycles, cfg.Seed^int64(i)); msg != "" {
				rep.Violations = append(rep.Violations, fmt.Sprintf("request %d (%s/%s): %s", i, wl.label, req.Algorithm, msg))
				continue
			}
			// Periodically cross-check the explain endpoint against the
			// attribution already delivered on the view. Gated on the loop
			// index, not the rng, so the request stream's draw positions
			// stay identical for a given seed.
			if i%7 == 3 {
				if msg := checkExplain(ctx, cli, v); msg != "" {
					rep.Violations = append(rep.Violations, fmt.Sprintf("request %d (%s/%s): %s", i, wl.label, req.Algorithm, msg))
					continue
				}
			}
			rep.Done++
			if v.Result.Degraded {
				rep.Degraded++
			}
		case service.JobFailed, service.JobCanceled:
			// Every failure must be explained by an injected fault: the
			// workload circuits and options are all valid.
			if !injectedFailure(v.Error) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("request %d (%s/%s): organic failure %q", i, wl.label, req.Algorithm, v.Error))
				continue
			}
			rep.FailedInjected++
		default:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("request %d: non-terminal state %s from a synchronous call", i, v.State))
		}
	}

	// The daemon must have survived the whole campaign.
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		rep.Violations = append(rep.Violations, fmt.Sprintf("healthz after campaign: %v (err %v)", resp, err))
	}
	if resp != nil {
		resp.Body.Close()
	}
	rep.FaultsFired = reg.Fired()
	return rep, nil
}

// armFaults builds a registry with every defined fault point armed.
// Kinds rotate pseudo-randomly over the non-Flip behaviours: Flip faults
// would silently change mapping results, which is exactly what the
// byte-compare oracle forbids (Flip has its own targeted tests in
// internal/mapper). Shared by the single-node and multi-node campaigns.
func armFaults(seed int64, rng *rand.Rand, faultProb float64, latency time.Duration) *faultpoint.Registry {
	reg := faultpoint.New(seed ^ 0x5eed)
	kinds := []faultpoint.Kind{faultpoint.Error, faultpoint.Panic, faultpoint.Latency, faultpoint.Cancel}
	for _, pt := range faultpoint.Points() {
		prob := faultProb
		if pt.Name == mapper.PointCombine {
			// The combine point rolls once per DP node — hundreds of
			// rolls per job — so an unscaled probability would fail
			// essentially every job and verify nothing. Scale it so a
			// whole job's survival odds stay comparable to the
			// once-per-job points.
			prob /= 50
		}
		reg.Arm(pt.Name, faultpoint.Fault{
			Kind:    kinds[rng.Intn(len(kinds))],
			Prob:    prob,
			Latency: latency,
		})
	}
	// The durable store's tear points are the exception to the no-Flip
	// rule: a fired flip corrupts only the on-disk copy, never the bytes
	// already served, so the byte-compare oracle stays sound while the
	// boot fsck and read path are forced to detect and quarantine real
	// torn records. They are consulted with Flip(), so the rotating
	// non-Flip kinds armed above would leave them inert. On a server
	// without a state dir (the single-node campaign) they stay inert.
	reg.Arm(store.PointWriteTorn, faultpoint.Fault{Kind: faultpoint.Flip, Prob: 4 * faultProb})
	reg.Arm(store.PointJournalPartial, faultpoint.Fault{Kind: faultpoint.Flip, Prob: 2 * faultProb})
	return reg
}

// workloadFromRequest resolves a journaled request back to its campaign
// workload so a re-admitted job's response can be re-derived and
// byte-compared like any other. Every campaign request is drawn from
// workloads(), so the lookup is total for journal records we wrote.
func workloadFromRequest(req *service.MapRequest) (workload, bool) {
	for _, wl := range workloads() {
		if wl.req.Circuit == req.Circuit && wl.req.BLIF == req.BLIF {
			return wl, true
		}
	}
	return workload{}, false
}

// randRequest draws one submission from the workload pool with
// randomized algorithm and options. The per-job DP worker count is
// randomized too: the clean re-run in verifyDone always maps
// sequentially, so the byte-compare doubles as a parallel-engine
// determinism oracle.
func randRequest(rng *rand.Rand, pool []workload) (workload, service.MapRequest) {
	wl := pool[rng.Intn(len(pool))]
	req := wl.req
	req.Algorithm = algos[rng.Intn(len(algos))]
	opts := service.RequestOptions{ClockWeight: 1 + rng.Intn(2)}
	if rng.Intn(3) == 0 {
		opts.Pareto = true
		if rng.Intn(2) == 0 {
			opts.TupleBudget = 8 // tiny: forces the degradation path
		}
	}
	if rng.Intn(4) == 0 {
		opts.AlwaysFooted = true
	}
	if rng.Intn(4) == 0 {
		opts.SequenceAware = true
	}
	if w := rng.Intn(4); w > 1 {
		opts.Workers = w
	}
	// Strash-off submissions exercise the opt-out path and key split
	// under chaos. Drawn last so earlier option draws keep their stream
	// positions within a request.
	if rng.Intn(4) == 0 {
		opts.StrashOff = true
	}
	req.Options = &opts
	return wl, req
}

// checkExplain cross-checks GET /v1/jobs/{id}/explain against the
// attribution already delivered on the job view: both read the same
// record, so any disagreement is a bookkeeping bug.
func checkExplain(ctx context.Context, cli *client.Client, v *service.JobView) string {
	ev, err := cli.Explain(ctx, v.ID)
	if err != nil {
		return "explain fetch failed: " + err.Error()
	}
	if ev.ID != v.ID || ev.State != v.State {
		return fmt.Sprintf("explain identity mismatch: got %s/%s, want %s/%s",
			ev.ID, ev.State, v.ID, v.State)
	}
	a, b := v.Attribution, ev.Attribution
	if b == nil {
		return "explain response without an attribution record"
	}
	if a.CacheTier != b.CacheTier || a.WallMS != b.WallMS || a.QueueWaitMS != b.QueueWaitMS {
		return fmt.Sprintf("explain disagrees with the job view: tier %s/%.3f/%.3f vs %s/%.3f/%.3f",
			b.CacheTier, b.QueueWaitMS, b.WallMS, a.CacheTier, a.QueueWaitMS, a.WallMS)
	}
	return ""
}

// injectedFailure reports whether a job error message is attributable to
// the fault schedule: injected errors and panics name their fault point;
// cancellations and deadlines can be caused by Cancel and Latency kinds.
func injectedFailure(msg string) bool {
	for _, marker := range []string{"faultpoint", "injected panic", "injected fault",
		context.Canceled.Error(), context.DeadlineExceeded.Error()} {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

// verifyAttribution checks the attribution record attached to a done
// response for internal consistency with the job view it rides on: the
// claimed cache tier must agree with the view's cached/coalesced flags,
// times must be non-negative, and a mapped run's per-phase times must be
// present and nest inside its wall time. Attribution is an observability
// surface — it must never disagree with the job's actual outcome.
func verifyAttribution(v *service.JobView) string {
	a := v.Attribution
	if a == nil {
		return "done response without an attribution record"
	}
	switch {
	case v.Coalesced:
		if a.CacheTier != service.TierCoalesced {
			return fmt.Sprintf("coalesced response attributed to tier %q", a.CacheTier)
		}
	case v.Cached:
		if a.CacheTier != service.TierLocal && a.CacheTier != service.TierPeer &&
			a.CacheTier != service.TierStore {
			return fmt.Sprintf("cached response attributed to tier %q", a.CacheTier)
		}
	default:
		if a.CacheTier != service.TierMiss {
			return fmt.Sprintf("mapped response attributed to tier %q", a.CacheTier)
		}
	}
	if a.QueueWaitMS < 0 || a.WallMS < 0 {
		return fmt.Sprintf("negative attribution times (queue %.3fms, wall %.3fms)",
			a.QueueWaitMS, a.WallMS)
	}
	if a.CacheTier == service.TierMiss {
		if len(a.PhasesMS) == 0 {
			return "mapped response without per-phase times"
		}
		var sum float64
		for name, phaseMS := range a.PhasesMS {
			if phaseMS < 0 {
				return fmt.Sprintf("negative phase time for %s", name)
			}
			sum += phaseMS
		}
		// Phases are nested inside the run wall; both are measured with
		// separate clock reads, so allow scheduling-jitter headroom.
		if sum > a.WallMS*1.1+1 {
			return fmt.Sprintf("phase times sum to %.3fms, exceeding run wall %.3fms", sum, a.WallMS)
		}
	}
	return ""
}

// verifyDone checks one JobDone response against a clean local re-run:
// the service's bytes must match the fault-free computation exactly, and
// the clean result must pass the full fuzz oracle battery (audit,
// equivalence, discharge prediction, netlist audit + cross-check, soisim
// with no PBE corruption). Mapping is deterministic, so any divergence
// is a silent corruption. Returns "" on success.
func verifyDone(req *service.MapRequest, wl workload, v *service.JobView, simCycles int, seed int64) string {
	if v.Result == nil {
		return "done response without a result"
	}
	if msg := verifyAttribution(v); msg != "" {
		return msg
	}
	opt, err := service.OptionsFromRequest(req.Options)
	if err != nil {
		return "options did not resolve: " + err.Error()
	}
	// Re-derive sequentially regardless of the request's worker count:
	// if the service's (possibly parallel) run diverges from this, the
	// byte-compare below reports it as the corruption it would be.
	opt.Workers = 1
	src, err := wl.build()
	if err != nil {
		return "workload rebuild failed: " + err.Error()
	}
	ctx := context.Background()
	// The clean pipeline must mirror the request's strash mode: a
	// strash-off submission byte-compared against a strash-on re-run
	// would flag a designed difference as corruption.
	pipe, err := report.PrepareNetworkMode(ctx, src, opt.StrashOff)
	if err != nil {
		return "clean pipeline failed: " + err.Error()
	}
	var res *mapper.Result
	switch req.Algorithm {
	case "domino":
		res, err = mapper.DominoMapContext(ctx, pipe.Unate, opt)
	case "rs":
		res, err = mapper.RSMapContext(ctx, pipe.Unate, opt)
	case "rsdeep":
		res, err = mapper.RSMapDeepContext(ctx, pipe.Unate, opt)
	default:
		res, err = mapper.SOIDominoMapContext(ctx, pipe.Unate, opt)
	}
	if err != nil {
		return "clean mapping failed: " + err.Error()
	}
	if err := res.Audit(); err != nil {
		return "clean result failed audit: " + err.Error()
	}

	// Byte-compare: the served result against the clean computation.
	want, err := service.EncodeJSON(service.NewMapResult(wl.label, pipe, res))
	if err != nil {
		return "encode clean: " + err.Error()
	}
	got, err := service.EncodeJSON(v.Result)
	if err != nil {
		return "encode served: " + err.Error()
	}
	if string(want) != string(got) {
		return "served result differs from the clean fault-free run (silent corruption)"
	}

	// Full oracle battery over the clean (byte-identical) result.
	fcfg := fuzz.DefaultConfig()
	fcfg.SimCycles = simCycles
	algoEnum := report.SOI
	switch req.Algorithm {
	case "domino":
		algoEnum = report.Domino
	case "rs", "rsdeep":
		algoEnum = report.RS
	}
	c := &fuzz.Case{Seed: seed, Cfg: &fcfg, Net: src, Pipe: pipe}
	vr := &fuzz.VariantResult{
		Variant: fuzz.Variant{Name: req.Algorithm, Algo: algoEnum, Opt: opt},
		Res:     res,
	}
	c.Variants = []*fuzz.VariantResult{vr}
	for _, o := range fuzz.DefaultOracles() {
		if err := o.Check(c, vr); err != nil && !errors.Is(err, context.Canceled) {
			return fmt.Sprintf("oracle %s: %v", o.Name, err)
		}
	}
	return ""
}
