package bench

import (
	"fmt"

	"soidomino/internal/logic"
)

// This file adds structural generators beyond the paper's evaluation
// suite: classic datapath blocks useful to library users and to the wider
// test matrix. They register under a "x-" prefix so the paper tables stay
// exactly the paper's circuit lists.

// Decoder builds an n-to-2^n one-hot decoder with an enable input.
func Decoder(sel int) *logic.Network {
	b := newBuilder(fmt.Sprintf("dec%d", sel))
	s := make([]int, sel)
	for i := range s {
		s[i] = b.in(fmt.Sprintf("s%d", i))
	}
	en := b.in("en")
	for v := 0; v < 1<<sel; v++ {
		term := en
		for i := 0; i < sel; i++ {
			lit := s[i]
			if v>>i&1 == 0 {
				lit = b.not(s[i])
			}
			term = b.and(term, lit)
		}
		b.out(fmt.Sprintf("y%d", v), term)
	}
	return b.n
}

// Comparator builds an n-bit equality and magnitude comparator:
// outputs eq (a == b) and gt (a > b).
func Comparator(bits int) *logic.Network {
	b := newBuilder(fmt.Sprintf("cmp%d", bits))
	as := make([]int, bits)
	bs := make([]int, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.in(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = b.in(fmt.Sprintf("b%d", i))
	}
	// eq = AND of per-bit XNORs; gt by ripple from the MSB.
	eq := b.konst(true)
	gt := b.konst(false)
	for i := bits - 1; i >= 0; i-- {
		bitEq := b.xor(as[i], bs[i])
		bitEq = b.not(bitEq)
		bitGt := b.and(as[i], b.not(bs[i]))
		gt = b.or(gt, b.and(eq, bitGt))
		eq = b.and(eq, bitEq)
	}
	b.out("eq", eq)
	b.out("gt", gt)
	return b.n
}

// ParityTree builds a balanced n-input parity checker.
func ParityTree(n int) *logic.Network {
	b := newBuilder(fmt.Sprintf("par%d", n))
	xs := make([]int, n)
	for i := range xs {
		xs[i] = b.in(fmt.Sprintf("x%d", i))
	}
	for len(xs) > 1 {
		var next []int
		for i := 0; i+1 < len(xs); i += 2 {
			next = append(next, b.xor(xs[i], xs[i+1]))
		}
		if len(xs)%2 == 1 {
			next = append(next, xs[len(xs)-1])
		}
		xs = next
	}
	b.out("p", xs[0])
	return b.n
}

// GrayEncoder converts an n-bit binary value to Gray code.
func GrayEncoder(bits int) *logic.Network {
	b := newBuilder(fmt.Sprintf("gray%d", bits))
	xs := make([]int, bits)
	for i := range xs {
		xs[i] = b.in(fmt.Sprintf("x%d", i))
	}
	for i := 0; i < bits; i++ {
		if i == bits-1 {
			b.out(fmt.Sprintf("g%d", i), b.n.AddGate(logic.Buf, xs[i]))
		} else {
			b.out(fmt.Sprintf("g%d", i), b.xor(xs[i], xs[i+1]))
		}
	}
	return b.n
}

// CarrySelectAdder builds an n-bit adder from two k-bit ripple halves with
// a selected upper half: a structure with heavy multi-fanout, exercising
// the gate-root decomposition.
func CarrySelectAdder(bits int) *logic.Network {
	if bits%2 != 0 {
		panic("bench: CarrySelectAdder needs an even width")
	}
	b := newBuilder(fmt.Sprintf("csa%d", bits))
	half := bits / 2
	as := make([]int, bits)
	bs := make([]int, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.in(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = b.in(fmt.Sprintf("b%d", i))
	}
	cin := b.in("cin")

	ripple := func(lo int, c int) ([]int, int) {
		sums := make([]int, half)
		for i := 0; i < half; i++ {
			sums[i], c = b.fullAdder(as[lo+i], bs[lo+i], c)
		}
		return sums, c
	}
	lowSum, lowCarry := ripple(0, cin)
	hi0Sum, hi0Carry := ripple(half, b.konst(false))
	hi1Sum, hi1Carry := ripple(half, b.konst(true))
	for i := 0; i < half; i++ {
		b.out(fmt.Sprintf("s%d", i), lowSum[i])
	}
	for i := 0; i < half; i++ {
		b.out(fmt.Sprintf("s%d", half+i), b.mux(lowCarry, hi0Sum[i], hi1Sum[i]))
	}
	b.out("cout", b.mux(lowCarry, hi0Carry, hi1Carry))
	return b.n
}

func init() {
	structural("x-dec4", "4-to-16 one-hot decoder with enable (extra)", func() *logic.Network {
		n := Decoder(4)
		n.Name = "x-dec4"
		return n
	})
	structural("x-cmp8", "8-bit equality/magnitude comparator (extra)", func() *logic.Network {
		n := Comparator(8)
		n.Name = "x-cmp8"
		return n
	})
	structural("x-par16", "16-input parity tree (extra)", func() *logic.Network {
		n := ParityTree(16)
		n.Name = "x-par16"
		return n
	})
	structural("x-gray8", "8-bit binary-to-Gray encoder (extra)", func() *logic.Network {
		n := GrayEncoder(8)
		n.Name = "x-gray8"
		return n
	})
	structural("x-csa16", "16-bit carry-select adder (extra)", func() *logic.Network {
		n := CarrySelectAdder(16)
		n.Name = "x-csa16"
		return n
	})
}
