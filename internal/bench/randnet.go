package bench

import (
	"fmt"
	"math/rand"

	"soidomino/internal/logic"
)

// RandParams tunes the adversarial random-network generator used by the
// differential fuzzing subsystem (internal/fuzz). Unlike Synthetic, which
// is calibrated to reproduce the published benchmark profiles, Random is
// built to reach shapes the registry never produces: extreme fanout
// hubs, heavy reconvergence, degenerate outputs sitting directly on
// primary inputs, constants feeding gates, and wide gates that stress the
// decompose stage.
type RandParams struct {
	Name string
	Seed int64
	// Inputs, Outputs and Gates size the DAG. Inputs >= 2, Outputs >= 1,
	// Gates >= 1.
	Inputs, Outputs, Gates int

	// Locality in [0,1] is the probability that a fanin is drawn from the
	// most recent quarter of the node pool instead of uniformly. Higher
	// values develop deeper circuits; 0 yields wide, shallow ones.
	Locality float64
	// FanoutSkew in [0,1] is the probability that a fanin is drawn from a
	// small set of hub nodes, concentrating fanout on a few signals the
	// way clock-enable and select lines do in real netlists.
	FanoutSkew float64
	// Reconvergence in [0,1] is the probability that a gate's second
	// fanin is drawn from the transitive fanin of its first, creating the
	// reconvergent paths that exercise multi-fanout gate formation and
	// unate-phase duplication.
	Reconvergence float64
	// WideFrac in [0,1] is the fraction of gates generated with 3-4
	// fanins (decomposed into balanced trees downstream).
	WideFrac float64
	// ConstFrac in [0,1] is the probability that a generated gate takes a
	// constant node as one fanin, exercising the decompose stage's
	// constant folding.
	ConstFrac float64
	// PIOutputs allows primary outputs to land directly on primary
	// inputs or constants, the degenerate cones that force buffer gates.
	PIOutputs bool
}

// DefaultRandParams returns a mid-sized profile with every knob engaged,
// the fuzzer's baseline before per-case jitter.
func DefaultRandParams(seed int64) RandParams {
	return RandParams{
		Name: fmt.Sprintf("rand%d", seed), Seed: seed,
		Inputs: 6, Outputs: 3, Gates: 20,
		Locality: 0.5, FanoutSkew: 0.2, Reconvergence: 0.3,
		WideFrac: 0.2, ConstFrac: 0.05, PIOutputs: true,
	}
}

// Random builds a deterministic random multi-level circuit from the given
// profile. The result always passes logic.Network.Check and uses every
// primary input in at least one gate.
func Random(p RandParams) *logic.Network {
	if p.Inputs < 2 || p.Outputs < 1 || p.Gates < 1 {
		panic(fmt.Sprintf("bench: bad random params %+v", p))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := logic.New(p.Name)
	pool := make([]int, 0, p.Inputs+p.Gates)
	for i := 0; i < p.Inputs; i++ {
		pool = append(pool, n.AddInput(fmt.Sprintf("i%d", i)))
	}
	var hubs []int // fanout concentration targets
	promoteHub := func(id int) {
		if len(hubs) < 4 {
			hubs = append(hubs, id)
		} else if rng.Intn(8) == 0 {
			hubs[rng.Intn(len(hubs))] = id
		}
	}
	for _, id := range pool {
		promoteHub(id)
	}
	pick := func() int {
		if p.FanoutSkew > 0 && len(hubs) > 0 && rng.Float64() < p.FanoutSkew {
			return hubs[rng.Intn(len(hubs))]
		}
		if rng.Float64() < p.Locality {
			q := len(pool) / 4
			if q < 1 {
				q = 1
			}
			return pool[len(pool)-1-rng.Intn(q)]
		}
		return pool[rng.Intn(len(pool))]
	}
	// reconverge draws a node from the transitive fanin of id (depth-
	// bounded random walk), falling back to id itself at a source.
	reconverge := func(id int) int {
		for hop := 0; hop < 3; hop++ {
			fi := n.Nodes[id].Fanin
			if len(fi) == 0 {
				break
			}
			id = fi[rng.Intn(len(fi))]
			if rng.Intn(2) == 0 {
				break
			}
		}
		return id
	}
	var c0, c1 int = -1, -1
	konst := func() int {
		if rng.Intn(2) == 0 {
			if c0 < 0 {
				c0 = n.AddConst(false)
			}
			return c0
		}
		if c1 < 0 {
			c1 = n.AddConst(true)
		}
		return c1
	}
	for g := 0; g < p.Gates; g++ {
		var a int
		if g < p.Inputs {
			a = pool[g] // guarantee every input feeds a gate
		} else {
			a = pick()
		}
		// Unary gates.
		if r := rng.Intn(100); r < 8 {
			op := logic.Not
			if r < 2 {
				op = logic.Buf
			}
			id := n.AddGate(op, a)
			pool = append(pool, id)
			promoteHub(id)
			continue
		}
		fanin := []int{a}
		want := 2
		if rng.Float64() < p.WideFrac {
			want = 3 + rng.Intn(2)
		}
		for len(fanin) < want {
			var b int
			switch {
			case rng.Float64() < p.ConstFrac:
				b = konst()
			case rng.Float64() < p.Reconvergence:
				b = reconverge(a)
			default:
				b = pick()
			}
			fanin = append(fanin, b)
		}
		var id int
		switch r := rng.Intn(100); {
		case r < 30:
			id = n.AddGate(logic.And, fanin...)
		case r < 55:
			id = n.AddGate(logic.Or, fanin...)
		case r < 70:
			id = n.AddGate(logic.Nand, fanin...)
		case r < 80:
			id = n.AddGate(logic.Nor, fanin...)
		case r < 92:
			id = n.AddGate(logic.Xor, fanin...)
		default:
			id = n.AddGate(logic.Xnor, fanin...)
		}
		pool = append(pool, id)
		promoteHub(id)
	}
	// Outputs: drawn from the newest half of the pool (deep cones), with
	// occasional degenerate outputs on inputs or constants.
	for o := 0; o < p.Outputs; o++ {
		var node int
		if p.PIOutputs && rng.Intn(12) == 0 {
			if rng.Intn(6) == 0 {
				node = konst()
			} else {
				node = pool[rng.Intn(p.Inputs)]
			}
		} else {
			span := (len(pool) + 1) / 2
			node = pool[len(pool)-1-rng.Intn(span)]
		}
		n.AddOutput(fmt.Sprintf("o%d", o), node)
	}
	return n
}
