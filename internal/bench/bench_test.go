package bench

import (
	"testing"

	"soidomino/internal/logic"
)

func TestRegistryCoversAllTables(t *testing.T) {
	for _, tab := range [][]string{TableI, TableII, TableIII, TableIV} {
		for _, name := range tab {
			if _, ok := Get(name); !ok {
				t.Errorf("table circuit %q not registered", name)
			}
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d of %d", len(names), len(registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestAllBenchmarksBuildAndCheck(t *testing.T) {
	for _, name := range Names() {
		n := MustBuild(name)
		if err := n.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		s := n.Stats()
		if s.Inputs < 2 || s.Outputs < 1 || s.Gates < 5 {
			t.Errorf("%s: degenerate circuit %+v", name, s)
		}
		if n.Name != name {
			t.Errorf("%s: network named %q", name, n.Name)
		}
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, name := range []string{"c880", "des", "k2"} {
		a := MustBuild(name).Dump()
		b := MustBuild(name).Dump()
		if a != b {
			t.Errorf("%s: non-deterministic build", name)
		}
	}
}

func TestMustBuildUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown benchmark")
		}
	}()
	MustBuild("nonexistent")
}

func TestMux16Function(t *testing.T) {
	n := Mux16()
	in := make([]bool, 20)
	for sel := 0; sel < 16; sel++ {
		for d := 0; d < 16; d++ {
			for i := range in {
				in[i] = false
			}
			in[d] = true // one-hot data
			for s := 0; s < 4; s++ {
				in[16+s] = sel>>s&1 == 1
			}
			out, err := n.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != (d == sel) {
				t.Fatalf("mux16(sel=%d, hot=%d) = %v", sel, d, out[0])
			}
		}
	}
}

func TestRippleAdderFunction(t *testing.T) {
	n := RippleAdder(3)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			for c := 0; c < 2; c++ {
				in := make([]bool, 7)
				for i := 0; i < 3; i++ {
					in[i] = a>>i&1 == 1
					in[3+i] = b>>i&1 == 1
				}
				in[6] = c == 1
				out, err := n.Eval(in)
				if err != nil {
					t.Fatal(err)
				}
				sum := a + b + c
				for i := 0; i < 4; i++ {
					if out[i] != (sum>>i&1 == 1) {
						t.Fatalf("add(%d,%d,%d) bit %d wrong", a, b, c, i)
					}
				}
			}
		}
	}
}

func TestSymmetricFunction(t *testing.T) {
	n := Symmetric(9, 3, 6)
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tt {
		ones := 0
		for j := 0; j < 9; j++ {
			if i>>j&1 == 1 {
				ones++
			}
		}
		want := ones >= 3 && ones <= 6
		if row[0] != want {
			t.Fatalf("9symml with %d ones: got %v, want %v", ones, row[0], want)
		}
	}
}

func TestIncrementerFunction(t *testing.T) {
	n := Incrementer(4) // small instance of the same generator
	for x := 0; x < 16; x++ {
		for en := 0; en < 2; en++ {
			in := make([]bool, 5)
			for i := 0; i < 4; i++ {
				in[i] = x>>i&1 == 1
			}
			in[4] = en == 1
			out, err := n.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			want := x + en
			for i := 0; i < 5; i++ {
				if out[i] != (want>>i&1 == 1) {
					t.Fatalf("inc(%d,en=%d) bit %d wrong", x, en, i)
				}
			}
		}
	}
}

func TestMultiplierFunction(t *testing.T) {
	n := Multiplier(4)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = a>>i&1 == 1
				in[4+i] = b>>i&1 == 1
			}
			out, err := n.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			p := a * b
			for i := 0; i < 8; i++ {
				if out[i] != (p>>i&1 == 1) {
					t.Fatalf("%d*%d bit %d wrong", a, b, i)
				}
			}
		}
	}
}

func TestALUFunction(t *testing.T) {
	n := ALU(4)
	eval := func(a, b, op, cin int) (int, bool, bool) {
		in := make([]bool, 11)
		for i := 0; i < 4; i++ {
			in[i] = a>>i&1 == 1
			in[4+i] = b>>i&1 == 1
		}
		in[8] = op&1 == 1
		in[9] = op>>1&1 == 1
		in[10] = cin == 1
		out, err := n.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		y := 0
		for i := 0; i < 4; i++ {
			if out[i] {
				y |= 1 << i
			}
		}
		return y, out[4], out[5] // y, cout, zero
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			// Encoding: 00 add, 01 subtract, 10 and, 11 or.
			if y, _, _ := eval(a, b, 0, 0); y != (a+b)&15 {
				t.Fatalf("add %d+%d = %d", a, b, y)
			}
			if y, _, _ := eval(a, b, 1, 0); y != (a-b)&15 {
				t.Fatalf("sub %d-%d = %d", a, b, y)
			}
			if y, _, _ := eval(a, b, 2, 0); y != a&b {
				t.Fatalf("and %d&%d = %d", a, b, y)
			}
			if y, _, _ := eval(a, b, 3, 0); y != a|b {
				t.Fatalf("or %d|%d = %d", a, b, y)
			}
			// Add with carry-in.
			if y, _, _ := eval(a, b, 0, 1); y != (a+b+1)&15 {
				t.Fatalf("adc %d+%d+1 = %d", a, b, y)
			}
		}
	}
	if _, _, zero := eval(0, 0, 2, 0); !zero {
		t.Error("zero flag not set for 0&0")
	}
	if _, _, zero := eval(3, 0, 3, 0); zero {
		t.Error("zero flag set for 3|0")
	}
}

func TestRotatorFunction(t *testing.T) {
	n := Rotator(8)
	for x := 0; x < 256; x += 37 {
		for sh := 0; sh < 8; sh++ {
			in := make([]bool, 11)
			for i := 0; i < 8; i++ {
				in[i] = x>>i&1 == 1
			}
			for s := 0; s < 3; s++ {
				in[8+s] = sh>>s&1 == 1
			}
			out, err := n.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				want := x>>((i+sh)%8)&1 == 1
				if out[i] != want {
					t.Fatalf("rot(%02x, %d) bit %d wrong", x, sh, i)
				}
			}
		}
	}
}

func TestPriorityInterruptFunction(t *testing.T) {
	n := PriorityInterrupt()
	eval := func(en uint, req uint32) (idx int, valid bool, conflict bool) {
		in := make([]bool, 36)
		for g := 0; g < 4; g++ {
			in[g] = en>>g&1 == 1
		}
		for i := 0; i < 32; i++ {
			in[4+i] = req>>i&1 == 1
		}
		out, err := n.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 5; b++ {
			if out[b] {
				idx |= 1 << b
			}
		}
		return idx, out[5], out[6]
	}
	// All enabled, single request.
	for i := 0; i < 32; i++ {
		idx, valid, _ := eval(0xF, 1<<i)
		if !valid || idx != i {
			t.Fatalf("single request %d: idx=%d valid=%v", i, idx, valid)
		}
	}
	// Priority: lowest index wins.
	if idx, _, _ := eval(0xF, 1<<5|1<<20); idx != 5 {
		t.Errorf("priority pick = %d, want 5", idx)
	}
	// Disabled group masks its requests.
	if _, valid, _ := eval(0xE, 1<<3); valid {
		t.Error("masked request should not be valid")
	}
	// Conflict across groups.
	if _, _, conflict := eval(0xF, 1<<3|1<<20); !conflict {
		t.Error("cross-group conflict not flagged")
	}
	if _, _, conflict := eval(0xF, 1<<3|1<<5); conflict {
		t.Error("same-group requests flagged as conflict")
	}
}

func TestXorEccParity(t *testing.T) {
	n := XorEcc("ecc", 16, 8, 5)
	// Flipping a single input flips only the outputs it feeds, and the
	// all-zero input yields all-zero parity.
	zero := make([]bool, 16)
	out0, err := n.Eval(zero)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out0 {
		if v {
			t.Fatalf("zero input, parity %d high", i)
		}
	}
	for j := 0; j < 16; j++ {
		in := make([]bool, 16)
		in[j] = true
		out, _ := n.Eval(in)
		diff := 0
		for i := range out {
			if out[i] != out0[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Errorf("input %d feeds no output", j)
		}
	}
}

func TestDesRoundStructure(t *testing.T) {
	n := DesRound(1)
	s := n.Stats()
	if s.Inputs != 64+48 || s.Outputs != 64 {
		t.Fatalf("des1 profile: %d in / %d out", s.Inputs, s.Outputs)
	}
	// Feistel: output left half equals the input right half.
	in := make([]bool, 112)
	for i := range in {
		in[i] = i%3 == 0
	}
	out, err := n.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if out[i] != in[32+i] {
			t.Fatalf("feistel swap broken at bit %d", i)
		}
	}
	// Key dependence: flipping a key bit changes some output.
	in[64+10] = !in[64+10]
	out2, _ := n.Eval(in)
	changed := false
	for i := 32; i < 64; i++ {
		if out2[i] != out[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("key bit has no effect")
	}
}

func TestSyntheticProfile(t *testing.T) {
	p := SynthParams{Name: "s", Seed: 7, Inputs: 20, Outputs: 10, Gates: 200}
	n := Synthetic(p)
	s := n.Stats()
	if s.Inputs != 20 || s.Outputs != 10 {
		t.Fatalf("profile %+v", s)
	}
	if s.Depth < 4 {
		t.Errorf("synthetic depth %d too shallow for realistic logic", s.Depth)
	}
	// Every input must feed something.
	fanout := n.ComputeFanout()
	for _, id := range n.Inputs {
		if fanout[id] == 0 {
			t.Errorf("input %d unused", id)
		}
	}
	// Outputs are distinct.
	seen := map[int]bool{}
	for _, o := range n.Outputs {
		if seen[o.Node] {
			t.Errorf("duplicate output node %d", o.Node)
		}
		seen[o.Node] = true
	}
}

func TestSyntheticBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Synthetic(SynthParams{Name: "bad", Inputs: 1, Outputs: 1, Gates: 1})
}

func TestLUTBuilder(t *testing.T) {
	b := newBuilder("lut")
	vars := []int{b.in("a"), b.in("b"), b.in("c")}
	// tt for f = a XOR b XOR c
	tt := make([]bool, 8)
	for i := range tt {
		ones := 0
		for j := 0; j < 3; j++ {
			if i>>j&1 == 1 {
				ones++
			}
		}
		tt[i] = ones%2 == 1
	}
	memo := map[string]int{}
	b.out("f", b.lut(vars, tt, memo))
	rows, err := b.n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if row[0] != tt[i] {
			t.Fatalf("lut row %d wrong", i)
		}
	}
	// Constant tables fold.
	b2 := newBuilder("lut2")
	v2 := []int{b2.in("a"), b2.in("b")}
	id := b2.lut(v2, []bool{true, true, true, true}, map[string]int{})
	b2.out("one", id)
	if s := b2.n.Stats(); s.Gates != 0 {
		t.Errorf("constant LUT produced %d gates", s.Gates)
	}
}

var _ = logic.New // keep the import when tests are trimmed
