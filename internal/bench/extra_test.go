package bench

import "testing"

func TestDecoderFunction(t *testing.T) {
	n := Decoder(3)
	for v := 0; v < 8; v++ {
		for en := 0; en < 2; en++ {
			in := make([]bool, 4)
			for i := 0; i < 3; i++ {
				in[i] = v>>i&1 == 1
			}
			in[3] = en == 1
			out, err := n.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for y := 0; y < 8; y++ {
				want := en == 1 && y == v
				if out[y] != want {
					t.Fatalf("dec(%d,en=%d) y%d = %v", v, en, y, out[y])
				}
			}
		}
	}
}

func TestComparatorFunction(t *testing.T) {
	n := Comparator(4)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = a>>i&1 == 1
				in[4+i] = b>>i&1 == 1
			}
			out, err := n.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != (a == b) || out[1] != (a > b) {
				t.Fatalf("cmp(%d,%d) = eq:%v gt:%v", a, b, out[0], out[1])
			}
		}
	}
}

func TestParityTreeFunction(t *testing.T) {
	n := ParityTree(7)
	for v := 0; v < 128; v++ {
		in := make([]bool, 7)
		ones := 0
		for i := range in {
			in[i] = v>>i&1 == 1
			if in[i] {
				ones++
			}
		}
		out, err := n.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != (ones%2 == 1) {
			t.Fatalf("parity(%07b) = %v", v, out[0])
		}
	}
}

func TestGrayEncoderFunction(t *testing.T) {
	n := GrayEncoder(5)
	for v := 0; v < 32; v++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = v>>i&1 == 1
		}
		out, err := n.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		gray := v ^ (v >> 1)
		for i := 0; i < 5; i++ {
			if out[i] != (gray>>i&1 == 1) {
				t.Fatalf("gray(%d) bit %d wrong", v, i)
			}
		}
	}
}

func TestCarrySelectAdderFunction(t *testing.T) {
	n := CarrySelectAdder(6)
	for a := 0; a < 64; a += 3 {
		for b := 0; b < 64; b += 5 {
			for c := 0; c < 2; c++ {
				in := make([]bool, 13)
				for i := 0; i < 6; i++ {
					in[i] = a>>i&1 == 1
					in[6+i] = b>>i&1 == 1
				}
				in[12] = c == 1
				out, err := n.Eval(in)
				if err != nil {
					t.Fatal(err)
				}
				sum := a + b + c
				for i := 0; i < 7; i++ {
					if out[i] != (sum>>i&1 == 1) {
						t.Fatalf("csa(%d,%d,%d) bit %d wrong", a, b, c, i)
					}
				}
			}
		}
	}
}

func TestCarrySelectAdderOddWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CarrySelectAdder(5)
}

func TestExtraBenchmarksRegistered(t *testing.T) {
	for _, name := range []string{"x-dec4", "x-cmp8", "x-par16", "x-gray8", "x-csa16"} {
		b, ok := Get(name)
		if !ok {
			t.Errorf("%s not registered", name)
			continue
		}
		n := b.Build()
		if err := n.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// The paper tables must not contain the extras.
	for _, tab := range [][]string{TableI, TableII, TableIII, TableIV} {
		for _, name := range tab {
			if len(name) > 2 && name[:2] == "x-" {
				t.Errorf("extra circuit %q leaked into a paper table", name)
			}
		}
	}
}
