package bench

import (
	"testing"

	"soidomino/internal/logic"
)

// TestRandomValidAndDeterministic checks that Random yields structurally
// valid networks, reproducibly for a fixed seed, across the knob space.
func TestRandomValidAndDeterministic(t *testing.T) {
	profiles := []RandParams{
		DefaultRandParams(1),
		{Name: "shallow", Seed: 2, Inputs: 8, Outputs: 4, Gates: 30},
		{Name: "deep", Seed: 3, Inputs: 4, Outputs: 2, Gates: 40, Locality: 0.95},
		{Name: "hubs", Seed: 4, Inputs: 6, Outputs: 3, Gates: 35, FanoutSkew: 0.8},
		{Name: "reconv", Seed: 5, Inputs: 5, Outputs: 2, Gates: 30, Reconvergence: 0.9},
		{Name: "wide", Seed: 6, Inputs: 7, Outputs: 3, Gates: 25, WideFrac: 0.8, ConstFrac: 0.3},
		{Name: "degenerate", Seed: 7, Inputs: 2, Outputs: 5, Gates: 1, PIOutputs: true},
	}
	for _, p := range profiles {
		n := Random(p)
		if err := n.Check(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if got, want := len(n.Inputs), p.Inputs; got != want {
			t.Errorf("%s: %d inputs, want %d", p.Name, got, want)
		}
		if got, want := len(n.Outputs), p.Outputs; got != want {
			t.Errorf("%s: %d outputs, want %d", p.Name, got, want)
		}
		again := Random(p)
		if n.Dump() != again.Dump() {
			t.Errorf("%s: not deterministic for seed %d", p.Name, p.Seed)
		}
	}
}

// TestRandomKnobsShapeTheDAG spot-checks that the depth and fanout knobs
// actually move the generated structure.
func TestRandomKnobsShapeTheDAG(t *testing.T) {
	base := RandParams{Name: "a", Seed: 11, Inputs: 8, Outputs: 4, Gates: 120}
	deep := base
	deep.Name, deep.Locality = "b", 0.95

	if dl, dd := Random(base).Depth(), Random(deep).Depth(); dd <= dl {
		t.Errorf("locality knob did not deepen the DAG: depth %d (loc 0) vs %d (loc 0.95)", dl, dd)
	}

	skewed := base
	skewed.Name, skewed.FanoutSkew = "c", 0.9
	maxFanout := func(n *logic.Network) int {
		m := 0
		for _, f := range n.FanoutCounts() {
			if f > m {
				m = f
			}
		}
		return m
	}
	if mu, ms := maxFanout(Random(base)), maxFanout(Random(skewed)); ms <= mu {
		t.Errorf("fanout skew knob did not concentrate fanout: max %d (skew 0) vs %d (skew 0.9)", mu, ms)
	}
}
