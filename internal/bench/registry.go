package bench

import (
	"fmt"
	"sort"

	"soidomino/internal/logic"
)

// Benchmark names one circuit of the suite.
type Benchmark struct {
	Name string
	// Kind is "structural" for exact generators or "synthetic" for seeded
	// random circuits with the published I/O profile.
	Kind string
	// Description explains what the generator builds and what it stands
	// in for.
	Description string
	Build       func() *logic.Network
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("bench: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

func structural(name, desc string, build func() *logic.Network) {
	register(Benchmark{Name: name, Kind: "structural", Description: desc, Build: build})
}

func synthetic(name string, seed int64, in, out, gates int, desc string) {
	register(Benchmark{
		Name: name, Kind: "synthetic",
		Description: fmt.Sprintf("%s (seeded synthetic, %d in / %d out / %d gates)", desc, in, out, gates),
		Build: func() *logic.Network {
			return Synthetic(SynthParams{Name: name, Seed: seed, Inputs: in, Outputs: out, Gates: gates})
		},
	})
}

func init() {
	// Structural generators: the benchmark's function is public knowledge.
	structural("cm150", "16:1 multiplexer (21 in / 1 out)", func() *logic.Network {
		n := Mux16()
		n.Name = "cm150"
		return n
	})
	structural("mux", "16:1 multiplexer (21 in / 1 out)", func() *logic.Network {
		n := Mux16()
		n.Name = "mux"
		return n
	})
	structural("z4ml", "3-bit ripple-carry adder with carry-in (7 in / 4 out)", func() *logic.Network {
		n := RippleAdder(3)
		n.Name = "z4ml"
		return n
	})
	structural("9symml", "9-input symmetric function, 1 when 3..6 inputs high", func() *logic.Network {
		n := Symmetric(9, 3, 6)
		n.Name = "9symml"
		return n
	})
	structural("t481", "16-input symmetric function (t481 profile: 16 in / 1 out)", func() *logic.Network {
		n := Symmetric(16, 5, 11)
		n.Name = "t481"
		return n
	})
	structural("count", "16-bit conditional incrementer (count profile)", func() *logic.Network {
		n := Incrementer(16)
		n.Name = "count"
		return n
	})
	structural("c499", "32-output ECC parity network (41 in, SEC profile)", func() *logic.Network {
		return XorEcc("c499", 41, 32, 8)
	})
	structural("c1355", "c499's function with expanded XOR structure (41 in / 32 out)", func() *logic.Network {
		return XorEcc("c1355", 41, 32, 8)
	})
	structural("c1908", "25-output ECC parity/check network (33 in, SEC/DED profile)", func() *logic.Network {
		return XorEcc("c1908", 33, 25, 12)
	})
	structural("c432", "32-line priority interrupt controller (36 in / 7 out)", func() *logic.Network {
		n := PriorityInterrupt()
		n.Name = "c432"
		return n
	})
	structural("f51m", "4x4 array multiplier (8 in / 8 out, arithmetic profile)", func() *logic.Network {
		n := Multiplier(4)
		n.Name = "f51m"
		return n
	})
	structural("dalu", "16-bit 4-op ALU with flags (dedicated ALU profile)", func() *logic.Network {
		n := ALU(16)
		n.Name = "dalu"
		return n
	})
	structural("rot", "96-bit logarithmic barrel rotator (rot profile)", func() *logic.Network {
		n := Rotator(96)
		n.Name = "rot"
		return n
	})
	structural("des", "2-round DES-style Feistel network: expansion, key XOR, 8 S-boxes, permutation", func() *logic.Network {
		n := DesRound(2)
		n.Name = "des"
		return n
	})

	// Synthetic circuits sized to the published ISCAS-85 / MCNC profiles.
	// Gate counts are calibrated so the mapped T_logic lands near the
	// paper's scale (see EXPERIMENTS.md).
	synthetic("cordic", 101, 23, 2, 90, "cordic rotation logic")
	synthetic("frg1", 102, 28, 3, 110, "frg1 random control logic")
	synthetic("b9", 103, 41, 21, 160, "b9 random control logic")
	synthetic("c8", 104, 28, 18, 150, "c8 random control logic")
	synthetic("apex7", 105, 49, 37, 300, "apex7 random logic")
	synthetic("x1", 106, 51, 35, 380, "x1 random logic")
	synthetic("c880", 107, 60, 26, 520, "c880 ALU and control profile")
	synthetic("i6", 108, 138, 67, 520, "i6 wide random logic")
	synthetic("k2", 109, 45, 45, 1100, "k2 PLA-derived logic")
	synthetic("apex6", 110, 135, 99, 850, "apex6 random logic")
	synthetic("c2670", 111, 233, 140, 1100, "c2670 ALU and control profile")
	synthetic("c3540", 112, 50, 22, 2600, "c3540 ALU profile")
	synthetic("c5315", 113, 178, 123, 2400, "c5315 ALU selector profile")
	synthetic("c7552", 114, 207, 108, 3500, "c7552 adder/comparator profile")
}

// Get returns the named benchmark.
func Get(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// MustBuild builds the named benchmark's network, panicking on unknown
// names (a programming error in the harness).
func MustBuild(name string) *logic.Network {
	b, ok := registry[name]
	if !ok {
		panic("bench: unknown benchmark " + name)
	}
	return b.Build()
}

// Names lists every registered benchmark in alphabetical order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// The circuit lists of the paper's tables, in the paper's row order.
var (
	// TableI compares Domino_Map and RS_Map (18 circuits).
	TableI = []string{
		"cm150", "mux", "z4ml", "cordic", "frg1", "b9", "apex7", "c432",
		"c880", "t481", "c1355", "apex6", "c1908", "k2", "c2670", "c5315",
		"c7552", "des",
	}
	// TableII compares Domino_Map and SOI_Domino_Map (21 circuits).
	TableII = []string{
		"cm150", "mux", "z4ml", "cordic", "frg1", "f51m", "count", "b9",
		"9symml", "apex7", "c432", "c880", "t481", "c1355", "apex6",
		"c1908", "k2", "c2670", "c5315", "c7552", "des",
	}
	// TableIII sweeps the clock-transistor weight k (27 circuits).
	TableIII = []string{
		"cm150", "mux", "z4ml", "cordic", "frg1", "count", "b9", "c8",
		"f51m", "9symml", "apex7", "x1", "c432", "i6", "c1908", "t481",
		"c499", "c1355", "dalu", "k2", "apex6", "rot", "c2670", "c5315",
		"c3540", "des", "c7552",
	}
	// TableIV runs the depth objective (26 circuits).
	TableIV = []string{
		"z4ml", "cm150", "mux", "cordic", "f51m", "c8", "frg1", "b9",
		"count", "c432", "apex7", "9symml", "c1908", "x1", "i6", "c1355",
		"t481", "rot", "apex6", "k2", "c2670", "dalu", "c3540", "c5315",
		"c7552", "des",
	}
)
