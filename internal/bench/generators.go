// Package bench provides the benchmark circuit suite for the experiment
// harness. The original ISCAS-85 / MCNC netlists the paper evaluates are
// not redistributable here, so each benchmark name is bound to a
// generator: an exact structural circuit where the benchmark's function is
// public knowledge (16:1 multiplexer, adders, parity/ECC trees, symmetric
// functions, rotators, DES-style rounds, ...), or a seeded synthetic DAG
// with the published input/output profile and a calibrated gate count.
// Either way the generators are deterministic, so every experiment is
// reproducible bit for bit. See DESIGN.md §4 for the substitution
// rationale.
package bench

import (
	"fmt"
	"math/rand"

	"soidomino/internal/logic"
)

// builder wraps a network with expression helpers shared by the
// structural generators. Inverters are shared per node; constants are
// allowed freely (the decompose stage folds them).
type builder struct {
	n    *logic.Network
	nots map[int]int
	c0   int
	c1   int
}

func newBuilder(name string) *builder {
	return &builder{n: logic.New(name), nots: make(map[int]int), c0: -1, c1: -1}
}

func (b *builder) in(name string) int      { return b.n.AddInput(name) }
func (b *builder) out(name string, id int) { b.n.AddOutput(name, id) }

func (b *builder) konst(v bool) int {
	if v {
		if b.c1 < 0 {
			b.c1 = b.n.AddConst(true)
		}
		return b.c1
	}
	if b.c0 < 0 {
		b.c0 = b.n.AddConst(false)
	}
	return b.c0
}

func (b *builder) not(x int) int {
	if id, ok := b.nots[x]; ok {
		return id
	}
	id := b.n.AddGate(logic.Not, x)
	b.nots[x] = id
	return id
}

func (b *builder) and(xs ...int) int  { return b.n.AddGate(logic.And, xs...) }
func (b *builder) or(xs ...int) int   { return b.n.AddGate(logic.Or, xs...) }
func (b *builder) xor(xs ...int) int  { return b.n.AddGate(logic.Xor, xs...) }
func (b *builder) nand(xs ...int) int { return b.n.AddGate(logic.Nand, xs...) }

// mux returns s ? d1 : d0.
func (b *builder) mux(s, d0, d1 int) int {
	return b.or(b.and(b.not(s), d0), b.and(s, d1))
}

// halfAdder returns (sum, carry).
func (b *builder) halfAdder(x, y int) (int, int) {
	return b.xor(x, y), b.and(x, y)
}

// fullAdder returns (sum, carry).
func (b *builder) fullAdder(x, y, cin int) (int, int) {
	s1, c1 := b.halfAdder(x, y)
	s, c2 := b.halfAdder(s1, cin)
	return s, b.or(c1, c2)
}

// Mux16 builds a 16:1 multiplexer (the cm150/mux MCNC benchmarks:
// 21 inputs, 1 output).
func Mux16() *logic.Network {
	b := newBuilder("mux16")
	var data [16]int
	for i := range data {
		data[i] = b.in(fmt.Sprintf("d%d", i))
	}
	var sel [4]int
	for i := range sel {
		sel[i] = b.in(fmt.Sprintf("s%d", i))
	}
	level := data[:]
	for s := 0; s < 4; s++ {
		next := make([]int, len(level)/2)
		for i := range next {
			next[i] = b.mux(sel[s], level[2*i], level[2*i+1])
		}
		level = next
	}
	b.out("y", level[0])
	return b.n
}

// RippleAdder builds an n-bit ripple-carry adder with carry-in: the z4ml
// benchmark profile is the 3-bit instance (7 inputs, 4 outputs).
func RippleAdder(bits int) *logic.Network {
	b := newBuilder(fmt.Sprintf("add%d", bits))
	as := make([]int, bits)
	bs := make([]int, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.in(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = b.in(fmt.Sprintf("b%d", i))
	}
	c := b.in("cin")
	for i := 0; i < bits; i++ {
		var s int
		s, c = b.fullAdder(as[i], bs[i], c)
		b.out(fmt.Sprintf("s%d", i), s)
	}
	b.out("cout", c)
	return b.n
}

// popcount returns nodes for the binary count of ones over xs.
func (b *builder) popcount(xs []int) []int {
	// Reduce by full adders: maintain a list of columns of equal weight.
	cols := [][]int{append([]int(nil), xs...)}
	for w := 0; w < len(cols); w++ {
		for len(cols[w]) > 1 {
			col := cols[w]
			switch {
			case len(col) >= 3:
				s, c := b.fullAdder(col[0], col[1], col[2])
				cols[w] = append(col[3:], s)
				cols = ensureCol(cols, w+1)
				cols[w+1] = append(cols[w+1], c)
			default:
				s, c := b.halfAdder(col[0], col[1])
				cols[w] = append(col[2:], s)
				cols = ensureCol(cols, w+1)
				cols[w+1] = append(cols[w+1], c)
			}
		}
	}
	out := make([]int, len(cols))
	for w, col := range cols {
		if len(col) == 1 {
			out[w] = col[0]
		} else {
			out[w] = b.konst(false)
		}
	}
	return out
}

func ensureCol(cols [][]int, w int) [][]int {
	for len(cols) <= w {
		cols = append(cols, nil)
	}
	return cols
}

// geq returns value(bits) >= k for a constant k.
func (b *builder) geq(bits []int, k int) int {
	// value >= k  <=>  NOT (value < k); compute borrow of value - k.
	borrow := b.konst(false)
	for i, bit := range bits {
		kb := (k>>i)&1 == 1
		// borrow' = (!bit & kbit) | (!bit & borrow) | (kbit & borrow)
		nb := b.not(bit)
		var t1 int
		if kb {
			t1 = nb
		} else {
			t1 = b.konst(false)
		}
		t2 := b.and(nb, borrow)
		var t3 int
		if kb {
			t3 = borrow
		} else {
			t3 = b.konst(false)
		}
		borrow = b.or(b.or(t1, t2), t3)
	}
	if k>>len(bits) != 0 {
		return b.konst(false) // k exceeds representable range
	}
	return b.not(borrow)
}

// Symmetric builds the n-input symmetric function that is 1 when the
// number of high inputs lies in [lo, hi]. 9symml is Symmetric(9, 3, 6);
// t481's profile is approximated by Symmetric(16, 5, 11).
func Symmetric(n, lo, hi int) *logic.Network {
	b := newBuilder(fmt.Sprintf("sym%d_%d_%d", n, lo, hi))
	xs := make([]int, n)
	for i := range xs {
		xs[i] = b.in(fmt.Sprintf("x%d", i))
	}
	count := b.popcount(xs)
	ge := b.geq(count, lo)
	gt := b.geq(count, hi+1)
	b.out("f", b.and(ge, b.not(gt)))
	return b.n
}

// Incrementer builds an n-bit conditional incrementer (the count
// benchmark profile): out = en ? x+1 : x, plus the carry out.
func Incrementer(bits int) *logic.Network {
	b := newBuilder(fmt.Sprintf("count%d", bits))
	xs := make([]int, bits)
	for i := range xs {
		xs[i] = b.in(fmt.Sprintf("x%d", i))
	}
	c := b.in("en")
	for i := 0; i < bits; i++ {
		b.out(fmt.Sprintf("y%d", i), b.xor(xs[i], c))
		c = b.and(xs[i], c)
	}
	b.out("cout", c)
	return b.n
}

// XorEcc builds an error-correcting-code style XOR network: each of the
// nOut outputs is the parity of a deterministic subset of the nIn inputs
// (the c499/c1355 single-error-correcting circuit profile, and c1908's).
func XorEcc(name string, nIn, nOut, taps int) *logic.Network {
	b := newBuilder(name)
	xs := make([]int, nIn)
	for i := range xs {
		xs[i] = b.in(fmt.Sprintf("x%d", i))
	}
	// Each output takes a window of `taps` consecutive inputs; windows are
	// strided so that together they cover every input, like the
	// overlapping parity groups of a Hamming-style code.
	stride := 1
	if nOut > 1 {
		stride = (nIn-taps)/(nOut-1) + 1
		if stride < 1 {
			stride = 1
		}
		if stride > taps {
			stride = taps
		}
	}
	for o := 0; o < nOut; o++ {
		sel := make([]int, 0, taps)
		for t := 0; t < taps; t++ {
			sel = append(sel, xs[(o*stride+t)%nIn])
		}
		b.out(fmt.Sprintf("p%d", o), b.xor(sel...))
	}
	return b.n
}

// PriorityInterrupt builds an interrupt-controller-like circuit (the c432
// profile: 36 inputs, 7 outputs): 32 request lines in four groups of
// eight, each group gated by an enable; outputs are the 5-bit index of the
// highest-priority active request, a valid flag, and a group-conflict
// flag.
func PriorityInterrupt() *logic.Network {
	b := newBuilder("priority32")
	req := make([]int, 32)
	en := make([]int, 4)
	for g := 0; g < 4; g++ {
		en[g] = b.in(fmt.Sprintf("en%d", g))
	}
	for i := range req {
		req[i] = b.in(fmt.Sprintf("r%d", i))
	}
	// Gate requests by their group enable.
	act := make([]int, 32)
	for i := range req {
		act[i] = b.and(req[i], en[i/8])
	}
	// Priority: line 0 is highest. blocked[i] = any act[j], j<i.
	valid := act[0]
	higher := act[0]
	grant := make([]int, 32)
	grant[0] = act[0]
	for i := 1; i < 32; i++ {
		grant[i] = b.and(act[i], b.not(higher))
		higher = b.or(higher, act[i])
		valid = higher
	}
	// Encode the granted line.
	for bit := 0; bit < 5; bit++ {
		var terms []int
		for i := 0; i < 32; i++ {
			if i>>bit&1 == 1 {
				terms = append(terms, grant[i])
			}
		}
		b.out(fmt.Sprintf("idx%d", bit), b.or(terms...))
	}
	b.out("valid", valid)
	// Conflict: more than one group has an active request.
	groupAny := make([]int, 4)
	for g := 0; g < 4; g++ {
		groupAny[g] = b.or(act[8*g], act[8*g+1], act[8*g+2], act[8*g+3],
			act[8*g+4], act[8*g+5], act[8*g+6], act[8*g+7])
	}
	pairs := []int{
		b.and(groupAny[0], groupAny[1]), b.and(groupAny[0], groupAny[2]),
		b.and(groupAny[0], groupAny[3]), b.and(groupAny[1], groupAny[2]),
		b.and(groupAny[1], groupAny[3]), b.and(groupAny[2], groupAny[3]),
	}
	b.out("conflict", b.or(pairs...))
	return b.n
}

// Multiplier builds an n x n array multiplier (the f51m arithmetic
// profile is the 4x4 instance: 8 inputs, 8 outputs).
func Multiplier(bits int) *logic.Network {
	b := newBuilder(fmt.Sprintf("mult%d", bits))
	as := make([]int, bits)
	bs := make([]int, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.in(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = b.in(fmt.Sprintf("b%d", i))
	}
	cols := make([][]int, 2*bits)
	for i := 0; i < bits; i++ {
		for j := 0; j < bits; j++ {
			cols[i+j] = append(cols[i+j], b.and(as[i], bs[j]))
		}
	}
	carryIn := []int(nil)
	for w := 0; w < 2*bits; w++ {
		col := append(cols[w], carryIn...)
		carryIn = nil
		for len(col) > 2 {
			s, c := b.fullAdder(col[0], col[1], col[2])
			col = append(col[3:], s)
			carryIn = append(carryIn, c)
		}
		if len(col) == 2 {
			s, c := b.halfAdder(col[0], col[1])
			col = []int{s}
			carryIn = append(carryIn, c)
		}
		if len(col) == 0 {
			col = []int{b.konst(false)}
		}
		b.out(fmt.Sprintf("p%d", w), col[0])
	}
	return b.n
}

// ALU builds an n-bit ALU with four operations selected by two control
// lines (00 add, 01 subtract, 10 and, 11 or) plus carry-in and a zero
// flag: the dalu benchmark profile.
func ALU(bits int) *logic.Network {
	b := newBuilder(fmt.Sprintf("alu%d", bits))
	as := make([]int, bits)
	bs := make([]int, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.in(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = b.in(fmt.Sprintf("b%d", i))
	}
	op0 := b.in("op0")
	op1 := b.in("op1")
	cin := b.in("cin")

	// Arithmetic: b is complemented for subtraction (op0=1).
	c := b.or(cin, b.and(op0, b.not(op1)))
	arith := make([]int, bits)
	for i := 0; i < bits; i++ {
		bi := b.xor(bs[i], b.and(op0, b.not(op1)))
		arith[i], c = b.fullAdder(as[i], bi, c)
	}
	var zeroTerms []int
	for i := 0; i < bits; i++ {
		andv := b.and(as[i], bs[i])
		orv := b.or(as[i], bs[i])
		lgc := b.mux(op0, andv, orv)
		y := b.mux(op1, arith[i], lgc)
		b.out(fmt.Sprintf("y%d", i), y)
		zeroTerms = append(zeroTerms, y)
	}
	b.out("cout", c)
	b.out("zero", b.not(b.or(zeroTerms...)))
	return b.n
}

// Rotator builds a logarithmic barrel rotator over `bits` data lines with
// ceil(log2(bits)) shift inputs (the rot benchmark profile).
func Rotator(bits int) *logic.Network {
	b := newBuilder(fmt.Sprintf("rot%d", bits))
	data := make([]int, bits)
	for i := range data {
		data[i] = b.in(fmt.Sprintf("d%d", i))
	}
	nsel := 0
	for 1<<nsel < bits {
		nsel++
	}
	cur := data
	for s := 0; s < nsel; s++ {
		sh := b.in(fmt.Sprintf("s%d", s))
		next := make([]int, bits)
		for i := 0; i < bits; i++ {
			next[i] = b.mux(sh, cur[i], cur[(i+(1<<s))%bits])
		}
		cur = next
	}
	for i := 0; i < bits; i++ {
		b.out(fmt.Sprintf("y%d", i), cur[i])
	}
	return b.n
}

// lut builds the function given by truth table tt (bit i of tt = output
// for input pattern i) over vars, by Shannon expansion with constant
// folding and subfunction sharing.
func (b *builder) lut(vars []int, tt []bool, memo map[string]int) int {
	if len(tt) != 1<<len(vars) {
		panic("bench: truth table size mismatch")
	}
	key := ttKey(tt)
	if id, ok := memo[key]; ok {
		return id
	}
	var id int
	switch {
	case allBool(tt, false):
		id = b.konst(false)
	case allBool(tt, true):
		id = b.konst(true)
	case len(vars) == 1:
		if tt[1] { // tt = [0,1] -> x (constant cases handled above)
			id = vars[0]
		} else { // [1,0] -> !x
			id = b.not(vars[0])
		}
	default:
		s := vars[len(vars)-1]
		half := len(tt) / 2
		f0 := b.lut(vars[:len(vars)-1], tt[:half], memo)
		f1 := b.lut(vars[:len(vars)-1], tt[half:], memo)
		if f0 == f1 {
			id = f0
		} else {
			id = b.mux(s, f0, f1)
		}
	}
	memo[key] = id
	return id
}

func ttKey(tt []bool) string {
	buf := make([]byte, (len(tt)+7)/8+1)
	buf[0] = byte(len(tt)) // length tag disambiguates different widths
	for i, v := range tt {
		if v {
			buf[1+i/8] |= 1 << (i % 8)
		}
	}
	return string(buf)
}

func allBool(tt []bool, v bool) bool {
	for _, t := range tt {
		if t != v {
			return false
		}
	}
	return true
}

// DesRound builds `rounds` rounds of a DES-style Feistel network over a
// 64-bit block with one 48-bit subkey per round: expansion, key XOR,
// eight 6-to-4 S-boxes (fixed pseudorandom tables, seeded), a fixed
// permutation and the Feistel XOR/swap. The 2-round instance approximates
// the des benchmark's scale.
func DesRound(rounds int) *logic.Network {
	b := newBuilder(fmt.Sprintf("des%d", rounds))
	left := make([]int, 32)
	right := make([]int, 32)
	for i := 0; i < 32; i++ {
		left[i] = b.in(fmt.Sprintf("l%d", i))
	}
	for i := 0; i < 32; i++ {
		right[i] = b.in(fmt.Sprintf("r%d", i))
	}
	keys := make([][]int, rounds)
	for r := range keys {
		keys[r] = make([]int, 48)
		for i := range keys[r] {
			keys[r][i] = b.in(fmt.Sprintf("k%d_%d", r, i))
		}
	}
	rng := rand.New(rand.NewSource(0xde5))
	sboxes := make([][][]bool, 8)
	for s := range sboxes {
		sboxes[s] = make([][]bool, 4)
		for o := range sboxes[s] {
			tt := make([]bool, 64)
			for i := range tt {
				tt[i] = rng.Intn(2) == 1
			}
			sboxes[s][o] = tt
		}
	}
	memo := make(map[string]int)
	for r := 0; r < rounds; r++ {
		// Expansion: 32 -> 48 by the DES E pattern (adjacent overlap).
		exp := make([]int, 48)
		for i := 0; i < 48; i++ {
			src := (i/6*4 + i%6 + 31) % 32
			exp[i] = right[src]
		}
		// Key mix.
		for i := range exp {
			exp[i] = b.xor(exp[i], keys[r][i])
		}
		// S-boxes.
		f := make([]int, 0, 32)
		for s := 0; s < 8; s++ {
			vars := exp[6*s : 6*s+6]
			for o := 0; o < 4; o++ {
				f = append(f, b.lut(vars, sboxes[s][o], memo))
			}
		}
		// Permutation (fixed stride) and Feistel combine.
		newRight := make([]int, 32)
		for i := 0; i < 32; i++ {
			newRight[i] = b.xor(left[i], f[(i*11+5)%32])
		}
		left, right = right, newRight
	}
	for i := 0; i < 32; i++ {
		b.out(fmt.Sprintf("ol%d", i), left[i])
	}
	for i := 0; i < 32; i++ {
		b.out(fmt.Sprintf("or%d", i), right[i])
	}
	return b.n
}
