package bench

import (
	"fmt"
	"math/rand"

	"soidomino/internal/logic"
)

// SynthParams sizes a synthetic benchmark to a published I/O profile.
type SynthParams struct {
	Name    string
	Seed    int64
	Inputs  int
	Outputs int
	// Gates is the number of random gates generated before decomposition.
	Gates int
}

// Synthetic builds a deterministic random multi-level circuit with the
// given profile. Structure mimics mapped random logic: mostly 2-input
// AND/OR/NAND/NOR with occasional XOR and inverters, fanins drawn with a
// locality bias so realistic logic depth develops, and every primary
// input feeding at least one gate.
func Synthetic(p SynthParams) *logic.Network {
	if p.Inputs < 2 || p.Outputs < 1 || p.Gates < p.Outputs {
		panic(fmt.Sprintf("bench: bad synthetic params %+v", p))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := logic.New(p.Name)
	pool := make([]int, 0, p.Inputs+p.Gates)
	for i := 0; i < p.Inputs; i++ {
		pool = append(pool, n.AddInput(fmt.Sprintf("i%d", i)))
	}
	pick := func() int {
		// Locality bias: half the draws come from the most recent quarter
		// of the pool, which yields circuits with realistic depth rather
		// than two enormous levels.
		if rng.Intn(2) == 0 {
			q := len(pool) / 4
			if q < 1 {
				q = 1
			}
			return pool[len(pool)-1-rng.Intn(q)]
		}
		return pool[rng.Intn(len(pool))]
	}
	for g := 0; g < p.Gates; g++ {
		var a int
		if g < p.Inputs {
			a = pool[g] // guarantee every input is used
		} else {
			a = pick()
		}
		bID := pick()
		for tries := 0; bID == a && tries < 4; tries++ {
			bID = pick()
		}
		var id int
		switch r := rng.Intn(100); {
		case r < 35:
			id = n.AddGate(logic.And, a, bID)
		case r < 60:
			id = n.AddGate(logic.Or, a, bID)
		case r < 75:
			id = n.AddGate(logic.Nand, a, bID)
		case r < 85:
			id = n.AddGate(logic.Nor, a, bID)
		case r < 95:
			id = n.AddGate(logic.Xor, a, bID)
		default:
			id = n.AddGate(logic.Not, a)
		}
		pool = append(pool, id)
	}
	// Outputs: distinct nodes drawn from the last generated half, newest
	// first, so output cones are deep.
	gateStart := p.Inputs
	span := len(pool) - gateStart
	used := make(map[int]bool, p.Outputs)
	for o := 0; o < p.Outputs; o++ {
		var node int
		for {
			node = pool[gateStart+span-1-rng.Intn((span+1)/2)]
			if !used[node] {
				break
			}
			// Fall back to a linear scan when the tail is exhausted.
			node = -1
			for i := len(pool) - 1; i >= gateStart; i-- {
				if !used[pool[i]] {
					node = pool[i]
					break
				}
			}
			break
		}
		if node < 0 {
			panic("bench: not enough distinct gates for outputs")
		}
		used[node] = true
		n.AddOutput(fmt.Sprintf("o%d", o), node)
	}
	return n
}
