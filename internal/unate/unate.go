// Package unate converts a decomposed logic network (2-input AND/OR gates
// plus inverters) into an inverter-free unate network, the form domino
// logic requires (paper §IV): domino gates are non-inverting, so all
// internal inversions are pushed to the primary inputs with DeMorgan's laws
// ("bubble pushing"), duplicating logic where both phases of a signal are
// needed. Inversions remain only directly on primary inputs, which the
// mapper treats as complemented input literals.
package unate

import (
	"fmt"

	"soidomino/internal/logic"
)

// Phase selects the polarity of a signal during conversion.
type Phase uint8

const (
	// Pos requests the signal itself.
	Pos Phase = iota
	// Neg requests its complement.
	Neg
)

func (p Phase) String() string {
	if p == Neg {
		return "neg"
	}
	return "pos"
}

func (p Phase) flip() Phase { return 1 - p }

// Result carries the unate network plus conversion statistics.
type Result struct {
	Network *logic.Network
	// DuplicatedNodes counts source gates realized in both phases; the
	// paper notes duplication is bounded by 2x and typically small.
	DuplicatedNodes int
	// SourceGates is the number of AND/OR gates in the source network.
	SourceGates int
	// UnateGates is the number of AND/OR gates in the converted network.
	UnateGates int
}

type key struct {
	node  int
	phase Phase
}

// Convert builds the unate equivalent of n, which must be in decomposed
// form (only Input, Not, Const and 2-input And/Or nodes). Primary outputs
// are realized in positive phase.
func Convert(n *logic.Network) (*Result, error) {
	c := &converter{
		src:  n,
		dst:  logic.New(trimSuffix(n.Name) + ".unate"),
		memo: make(map[key]int),
	}
	for _, id := range n.Inputs {
		c.memo[key{id, Pos}] = c.dst.AddInput(n.Nodes[id].Name)
	}
	for _, out := range n.Outputs {
		id, err := c.visit(out.Node, Pos)
		if err != nil {
			return nil, err
		}
		c.dst.AddOutput(out.Name, id)
	}
	res := &Result{Network: c.dst}
	seen := make(map[int]Phase)
	for k := range c.memo {
		if n.Nodes[k.node].Op != logic.And && n.Nodes[k.node].Op != logic.Or {
			continue
		}
		if prev, ok := seen[k.node]; ok && prev != k.phase {
			res.DuplicatedNodes++
		}
		seen[k.node] = k.phase
	}
	for _, node := range n.Nodes {
		if node.Op == logic.And || node.Op == logic.Or {
			res.SourceGates++
		}
	}
	for _, node := range c.dst.Nodes {
		if node.Op == logic.And || node.Op == logic.Or {
			res.UnateGates++
		}
	}
	return res, c.dst.Check()
}

type converter struct {
	src  *logic.Network
	dst  *logic.Network
	memo map[key]int
}

func (c *converter) visit(id int, phase Phase) (int, error) {
	k := key{id, phase}
	if v, ok := c.memo[k]; ok {
		return v, nil
	}
	node := c.src.Nodes[id]
	var v int
	switch node.Op {
	case logic.Input:
		// Pos is pre-registered; Neg is an inverter at the primary input,
		// the one place inversions are allowed.
		pos := c.memo[key{id, Pos}]
		v = c.dst.AddGate(logic.Not, pos)
	case logic.Const0:
		v = c.dst.AddConst(phase == Neg)
	case logic.Const1:
		v = c.dst.AddConst(phase == Pos)
	case logic.Buf:
		return c.visit(node.Fanin[0], phase)
	case logic.Not:
		return c.visit(node.Fanin[0], phase.flip())
	case logic.And, logic.Or:
		op := node.Op
		if phase == Neg {
			// DeMorgan: !(a & b) = !a | !b and dually.
			if op == logic.And {
				op = logic.Or
			} else {
				op = logic.And
			}
		}
		a, err := c.visit(node.Fanin[0], phase)
		if err != nil {
			return 0, err
		}
		b, err := c.visit(node.Fanin[1], phase)
		if err != nil {
			return 0, err
		}
		v = c.dst.AddGate(op, a, b)
	default:
		return 0, fmt.Errorf("unate: node %d has op %s; run decompose first", id, node.Op)
	}
	c.memo[k] = v
	return v, nil
}

// IsUnate reports whether the network is in legal unate form: 2-input
// AND/OR gates whose fanins are gates, inputs, constants or input literals
// (Not directly over Input), with no other Not nodes.
func IsUnate(n *logic.Network) error {
	for id, node := range n.Nodes {
		switch node.Op {
		case logic.Input, logic.Const0, logic.Const1:
		case logic.Not:
			if n.Nodes[node.Fanin[0]].Op != logic.Input {
				return fmt.Errorf("node %d: inverter over %s (only input literals allowed)",
					id, n.Nodes[node.Fanin[0]].Op)
			}
		case logic.And, logic.Or:
			if len(node.Fanin) != 2 {
				return fmt.Errorf("node %d: %s with %d fanins", id, node.Op, len(node.Fanin))
			}
		default:
			return fmt.Errorf("node %d: op %s not allowed in unate form", id, node.Op)
		}
	}
	return nil
}

// IsLeaf reports whether node id of a unate network is a mapping leaf: a
// primary input or a complemented primary input literal.
func IsLeaf(n *logic.Network, id int) bool {
	switch n.Nodes[id].Op {
	case logic.Input:
		return true
	case logic.Not:
		return n.Nodes[n.Nodes[id].Fanin[0]].Op == logic.Input
	}
	return false
}

func trimSuffix(name string) string {
	const suffix = ".dec"
	if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
		return name[:len(name)-len(suffix)]
	}
	return name
}
