package unate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
)

func mustConvert(t *testing.T, n *logic.Network) *Result {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	res, err := Convert(d)
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	if err := IsUnate(res.Network); err != nil {
		t.Fatalf("result not unate: %v\n%s", err, res.Network.Dump())
	}
	return res
}

func checkEquivalent(t *testing.T, a, b *logic.Network) {
	t.Helper()
	ta, err := a.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ta {
		for j := range ta[i] {
			if ta[i][j] != tb[i][j] {
				t.Fatalf("functional mismatch at row %d output %d", i, j)
			}
		}
	}
}

func TestConvertSimpleNand(t *testing.T) {
	n := logic.New("nand")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.Nand, a, b))
	res := mustConvert(t, n)
	checkEquivalent(t, n, res.Network)
	// !(a&b) = !a | !b: one OR, two input inverters.
	s := res.Network.Stats()
	if s.ByOp[logic.Or] != 1 || s.ByOp[logic.Not] != 2 || s.ByOp[logic.And] != 0 {
		t.Errorf("nand conversion shape: %v", s.ByOp)
	}
}

func TestConvertPushThroughChain(t *testing.T) {
	// !(!(a & b) & c) = (a & b) | !c : inverters cancel through two levels.
	n := logic.New("chain")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	inner := n.AddGate(logic.Nand, a, b)
	n.AddOutput("f", n.AddGate(logic.Nand, inner, c))
	res := mustConvert(t, n)
	checkEquivalent(t, n, res.Network)
	s := res.Network.Stats()
	if s.ByOp[logic.And] != 1 || s.ByOp[logic.Or] != 1 || s.ByOp[logic.Not] != 1 {
		t.Errorf("chain conversion shape: %v (want 1 and, 1 or, 1 not)", s.ByOp)
	}
}

func TestConvertDuplicationWhenBothPhasesNeeded(t *testing.T) {
	// g = a & b used both directly and complemented: must duplicate.
	n := logic.New("dup")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	g := n.AddGate(logic.And, a, b)
	n.AddOutput("pos", n.AddGate(logic.And, g, c))
	n.AddOutput("neg", n.AddGate(logic.And, n.AddGate(logic.Not, g), c))
	res := mustConvert(t, n)
	checkEquivalent(t, n, res.Network)
	if res.DuplicatedNodes == 0 {
		t.Error("expected duplicated nodes when both phases are required")
	}
	if res.UnateGates > 2*res.SourceGates {
		t.Errorf("duplication exceeded 2x bound: %d unate vs %d source",
			res.UnateGates, res.SourceGates)
	}
}

func TestConvertNoDuplicationSinglePhase(t *testing.T) {
	n := logic.New("nodup")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(logic.And, a, b)
	n.AddOutput("f", n.AddGate(logic.Or, g, a))
	res := mustConvert(t, n)
	if res.DuplicatedNodes != 0 {
		t.Errorf("unexpected duplication: %d", res.DuplicatedNodes)
	}
}

func TestConvertXorBothPhasesShareInputLiterals(t *testing.T) {
	n := logic.New("xor")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.Xor, a, b))
	res := mustConvert(t, n)
	checkEquivalent(t, n, res.Network)
	// Input inverters should be shared: at most one NOT per input.
	nots := 0
	for _, node := range res.Network.Nodes {
		if node.Op == logic.Not {
			nots++
		}
	}
	if nots > 2 {
		t.Errorf("input inverters not shared: %d NOT nodes", nots)
	}
}

func TestConvertConstOutputs(t *testing.T) {
	n := logic.New("const")
	a := n.AddInput("a")
	n.AddOutput("zero", n.AddGate(logic.And, a, n.AddGate(logic.Not, a)))
	n.AddOutput("one", n.AddGate(logic.Or, a, n.AddGate(logic.Not, a)))
	res := mustConvert(t, n)
	checkEquivalent(t, n, res.Network)
}

func TestConvertRejectsUndedecomposed(t *testing.T) {
	n := logic.New("bad")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.Xor, a, b))
	if _, err := Convert(n); err == nil {
		t.Error("Convert should reject networks with XOR nodes")
	}
}

func TestIsUnateRejections(t *testing.T) {
	n := logic.New("u1")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(logic.And, a, b)
	n.AddGate(logic.Not, g) // inverter over a gate
	if IsUnate(n) == nil {
		t.Error("IsUnate should reject internal inverters")
	}

	n2 := logic.New("u2")
	x := n2.AddInput("x")
	y := n2.AddInput("y")
	n2.AddGate(logic.Xor, x, y)
	if IsUnate(n2) == nil {
		t.Error("IsUnate should reject XOR")
	}

	n3 := logic.New("u3")
	p := n3.AddInput("p")
	q := n3.AddInput("q")
	r := n3.AddInput("r")
	n3.AddGate(logic.And, p, q, r)
	if IsUnate(n3) == nil {
		t.Error("IsUnate should reject 3-input AND")
	}
}

func TestIsLeaf(t *testing.T) {
	n := logic.New("leaf")
	a := n.AddInput("a")
	b := n.AddInput("b")
	na := n.AddGate(logic.Not, a)
	g := n.AddGate(logic.And, na, b)
	if !IsLeaf(n, a) || !IsLeaf(n, na) {
		t.Error("inputs and input literals are leaves")
	}
	if IsLeaf(n, g) {
		t.Error("gates are not leaves")
	}
}

// Property: conversion preserves function and produces legal unate form.
func TestConvertEquivalenceQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		d, err := decompose.Decompose(n)
		if err != nil {
			return false
		}
		res, err := Convert(d)
		if err != nil {
			return false
		}
		if IsUnate(res.Network) != nil {
			return false
		}
		if res.UnateGates > 2*res.SourceGates {
			return false // paper's 2x duplication bound
		}
		t1, err1 := n.TruthTable()
		t2, err2 := res.Network.TruthTable()
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range t1 {
			for j := range t1[i] {
				if t1[i][j] != t2[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randomNetwork(rng *rand.Rand) *logic.Network {
	n := logic.New("rnd")
	nin := 3 + rng.Intn(4)
	var pool []int
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Not}
	ngates := 4 + rng.Intn(20)
	for i := 0; i < ngates; i++ {
		op := ops[rng.Intn(len(ops))]
		k := 1
		if op.MaxFanin() != 1 {
			k = 2
		}
		fanin := make([]int, k)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, n.AddGate(op, fanin...))
	}
	n.AddOutput("f", pool[len(pool)-1])
	n.AddOutput("g", pool[rng.Intn(len(pool))])
	return n
}

func TestPhaseString(t *testing.T) {
	if Pos.String() != "pos" || Neg.String() != "neg" {
		t.Error("Phase.String broken")
	}
}
