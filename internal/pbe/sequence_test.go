package pbe

import (
	"math/rand"
	"testing"

	"soidomino/internal/sp"
)

func lit(name string, neg bool) *sp.Tree { return sp.NewLeaf(name, neg, -1) }

// muxOverE is (!s*d0 + s*d1) * e: a 2:1 multiplexer stack above a
// transistor, the shape the worst-case analysis charges three discharge
// devices for.
func muxOverE() *sp.Tree {
	stack := sp.NewParallel(
		sp.NewSeries(lit("s", true), lit("d0", false)),
		sp.NewSeries(lit("s", false), lit("d1", false)),
	)
	return sp.NewSeries(stack, lit("e", false))
}

// xorOverE is (a*!b + !a*b) * e.
func xorOverE() *sp.Tree {
	stack := sp.NewParallel(
		sp.NewSeries(lit("a", false), lit("b", true)),
		sp.NewSeries(lit("a", true), lit("b", false)),
	)
	return sp.NewSeries(stack, lit("e", false))
}

func TestFig2PointStaysExcitable(t *testing.T) {
	// (A+B+C)*D: the canonical PBE point must never be pruned.
	tr := sp.NewSeries(sp.NewParallel(lit("A", false), lit("B", false), lit("C", false)), lit("D", false))
	pts := GateDischargePoints(tr)
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	if !Excitable(tr, pts[0], 0) {
		t.Fatal("fig. 2's node 1 must be excitable")
	}
	if got := PruneUnexcitable(tr, pts); len(got) != 1 {
		t.Fatalf("pruned the canonical point")
	}
}

func TestMuxBottomPruned(t *testing.T) {
	tr := muxOverE()
	pts := GateDischargePoints(tr)
	if len(pts) != 3 {
		t.Fatalf("worst-case points = %d, want 3:\n%s", len(pts), Describe(pts))
	}
	kept := PruneUnexcitable(tr, pts)
	// The select contradiction kills the stack-bottom point: charging a
	// bottom device's body needs s and !s at once. The branch-internal
	// junctions remain excitable (s=1, d0=d1=1 drives the !s-branch
	// junction from below).
	if len(kept) != 2 {
		t.Fatalf("kept %d of 3 points, want 2:\nkept:\n%s", len(kept), Describe(kept))
	}
	for _, p := range kept {
		if p.Group.Children[p.Below].Kind == sp.Parallel {
			t.Error("the stack-bottom junction should have been pruned")
		}
	}
}

func TestXorFullyPruned(t *testing.T) {
	tr := xorOverE()
	pts := GateDischargePoints(tr)
	if len(pts) != 3 {
		t.Fatalf("worst-case points = %d, want 3", len(pts))
	}
	kept := PruneUnexcitable(tr, pts)
	// Every charging scenario of an XOR stack requires a literal and its
	// complement simultaneously: all three points are provably safe.
	if len(kept) != 0 {
		t.Fatalf("kept %d points, want 0:\n%s", len(kept), Describe(kept))
	}
}

func TestSharedLiteralStackPartiallyPruned(t *testing.T) {
	// (a*b + a*c) * e: the bottom point stays (charging b's body only
	// needs a=c=1, b=0), but the branch-internal junctions are provably
	// safe: the only device sourced at the a-b junction is the a-device
	// itself, and raising that junction requires conducting through the
	// sibling branch — which needs a=1 while the victim needs a=0.
	tr := sp.NewSeries(sp.NewParallel(
		sp.NewSeries(lit("a", false), lit("b", false)),
		sp.NewSeries(lit("a", false), lit("c", false)),
	), lit("e", false))
	pts := GateDischargePoints(tr)
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	kept := PruneUnexcitable(tr, pts)
	if len(kept) != 1 {
		t.Fatalf("shared-literal stack should keep 1 point, kept %d:\n%s", len(kept), Describe(kept))
	}
	if kept[0].Group.Children[kept[0].Below].Kind != sp.Parallel {
		t.Error("the kept point should be the stack bottom")
	}

	// Contrast: independent top literals keep every point.
	tr2 := sp.NewSeries(sp.NewParallel(
		sp.NewSeries(lit("x", false), lit("y", false)),
		sp.NewSeries(lit("z", false), lit("w", false)),
	), lit("e", false))
	pts2 := GateDischargePoints(tr2)
	if kept2 := PruneUnexcitable(tr2, pts2); len(kept2) != len(pts2) {
		t.Fatalf("independent-literal stack should keep all %d points, kept %d", len(pts2), len(kept2))
	}
}

func TestUpwardChargePathDetected(t *testing.T) {
	// (x*y + z) * e with independent literals: the x-y junction charges
	// from BELOW via z (paper fig. 4(a)'s scenario); a top-down-only
	// analysis would wrongly prune it.
	tr := sp.NewSeries(sp.NewParallel(
		sp.NewSeries(lit("x", false), lit("y", false)),
		lit("z", false),
	), lit("e", false))
	pts := GateDischargePoints(tr)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	kept := PruneUnexcitable(tr, pts)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2 (upward charging path missed?)", len(kept))
	}
}

func TestExcitableUnknownPointKept(t *testing.T) {
	tr := muxOverE()
	other := xorOverE()
	pts := GateDischargePoints(other)
	// A point from a different tree is unknown: conservatively excitable.
	if !Excitable(tr, pts[0], 0) {
		t.Error("unknown point should be kept")
	}
}

func TestExcitableBoundOverflowConservative(t *testing.T) {
	// A wide two-level structure with many paths; with bound 1 the
	// enumeration overflows and everything must be treated as excitable.
	branches := make([]*sp.Tree, 4)
	for i := range branches {
		branches[i] = sp.NewSeries(lit(string(rune('a'+2*i)), false), lit(string(rune('b'+2*i)), false))
	}
	tr := sp.NewSeries(sp.NewParallel(branches...), lit("e", false))
	pts := GateDischargePoints(tr)
	for _, pt := range pts {
		if !Excitable(tr, pt, 1) {
			t.Fatal("bound overflow must be conservative")
		}
	}
}

// Property: pruning is sound relative to the worst-case analysis (kept ⊆
// original, order preserved) and deterministic.
func TestPruneSubsetQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		tr := randomTree(rng, 4)
		pts := GateDischargePoints(tr)
		kept := PruneUnexcitable(tr, pts)
		if len(kept) > len(pts) {
			t.Fatal("prune grew the set")
		}
		i := 0
		for _, p := range pts {
			if i < len(kept) && kept[i] == p {
				i++
			}
		}
		if i != len(kept) {
			t.Fatal("prune reordered points")
		}
		kept2 := PruneUnexcitable(tr, pts)
		if len(kept2) != len(kept) {
			t.Fatal("prune not deterministic")
		}
	}
}
