// Package pbe implements the paper's structural model of the Parasitic
// Bipolar Effect on series-parallel pulldown trees (§III, §V).
//
// The PBE can only be excited in the presence of a parallel stack: an off
// transistor high in a stack whose source and drain float high charges its
// body, and when the node below the stack is pulled low the lateral bipolar
// device discharges the dynamic node. Two structural facts drive the model:
//
//   - The bottom common node of a parallel stack that is NOT directly
//     connected to the gate's ground must be pre-discharged every cycle,
//     and so must every internal series junction inside that stack's
//     branches (they float high through partially-on branches).
//   - If the parallel stack's bottom IS the gate's ground, none of those
//     points can charge and no discharge devices are needed (paper fig. 5).
//
// Analyze mirrors the paper's {p_dis, par_b} bookkeeping on concrete trees:
// it returns the junctions that must be discharged regardless of what
// happens below ("immediate") and those that are rescued if the structure's
// bottom eventually reaches ground ("potential").
package pbe

import (
	"fmt"
	"sort"
	"strings"

	"soidomino/internal/sp"
)

// Point identifies a series junction: the circuit node between
// Group.Children[Below] and Group.Children[Below+1].
type Point struct {
	Group *sp.Tree // a Series node
	Below int      // junction sits directly below Children[Below]
}

// String renders the junction for diagnostics.
func (p Point) String() string {
	return fmt.Sprintf("junction below %s in %s", p.Group.Children[p.Below], p.Group)
}

// Analysis is the result of analyzing a (partial) pulldown structure.
type Analysis struct {
	// Immediate junctions must carry a p-discharge transistor no matter
	// where the structure ends up.
	Immediate []Point
	// Potential junctions need a p-discharge transistor only if the
	// structure's bottom is never connected directly to ground: the
	// paper's p_dis.
	Potential []Point
	// ParB is the paper's par_b: the structure's bottom is a parallel
	// stack.
	ParB bool
}

// Analyze computes the PBE bookkeeping for a pulldown structure. For a
// complete gate (whose bottom is grounded through the foot) the devices to
// insert are exactly Analysis.Immediate; see GateDischargePoints.
func Analyze(t *sp.Tree) Analysis {
	switch t.Kind {
	case sp.Leaf:
		return Analysis{}
	case sp.Parallel:
		var a Analysis
		for _, c := range t.Children {
			ca := Analyze(c)
			a.Immediate = append(a.Immediate, ca.Immediate...)
			a.Potential = append(a.Potential, ca.Potential...)
		}
		a.ParB = true
		return a
	case sp.Series:
		// Right fold, bottom-up, mirroring the paper's combine_and: the
		// accumulated structure is the "bottom", each next child the "top".
		n := len(t.Children)
		acc := Analyze(t.Children[n-1])
		for i := n - 2; i >= 0; i-- {
			top := Analyze(t.Children[i])
			junction := Point{Group: t, Below: i}
			acc.Immediate = append(acc.Immediate, top.Immediate...)
			if top.ParB {
				// The top's parallel stack can never reach ground: its
				// potential points and its bottom common node (this
				// junction) are discharged now.
				acc.Immediate = append(acc.Immediate, top.Potential...)
				acc.Immediate = append(acc.Immediate, junction)
			} else {
				// Nothing materializes; the new junction becomes
				// potential along with the top's.
				acc.Potential = append(acc.Potential, top.Potential...)
				acc.Potential = append(acc.Potential, junction)
			}
			// acc.ParB remains the bottom-most child's par_b.
		}
		return acc
	}
	panic(fmt.Sprintf("pbe: unknown tree kind %v", t.Kind))
}

// GateDischargePoints returns the junctions of a complete domino gate's
// pulldown network that need p-discharge transistors. The gate's bottom is
// connected to ground (directly or through the n-clock foot), so the
// potential points are safe and only the immediate ones materialize.
func GateDischargePoints(root *sp.Tree) []Point {
	return Analyze(root).Immediate
}

// DischargeCount is len(GateDischargePoints(root)).
func DischargeCount(root *sp.Tree) int {
	return len(GateDischargePoints(root))
}

// PotentialCount returns the paper's p_dis for a partial structure.
func PotentialCount(t *sp.Tree) int {
	return len(Analyze(t).Potential)
}

// Rearrange returns a copy of the tree with the gate's series stack
// reordered to move parallel sections with many potential discharge points
// toward ground: the post-processing step of RS_Map (paper §VI-A, the
// fig. 5 stack switch). Only the outermost series stack — the one whose
// bottom actually reaches ground — is reordered: reordering inside a
// parallel branch cannot ground anything. The reordering is sound for
// domino pulldowns: series conduction is order-independent, and SOI's low
// diffusion capacitance makes the delay effect of reordering second-order
// (paper §III-C).
func Rearrange(t *sp.Tree) *sp.Tree {
	if t.Kind != sp.Series {
		return t.Clone()
	}
	children := make([]*sp.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = c.Clone()
	}
	sortSeriesChildren(children)
	return sp.NewSeries(children...)
}

// RearrangeDeep reorders every series group in the tree, including those
// inside parallel branches (their junctions are rescued when the branch's
// stack reaches ground, so pushing nested parallels toward branch bottoms
// pays too). This is stronger than the paper's RS_Map post-processing; the
// ablation benchmarks measure the difference.
func RearrangeDeep(t *sp.Tree) *sp.Tree {
	switch t.Kind {
	case sp.Leaf:
		return t.Clone()
	case sp.Parallel:
		children := make([]*sp.Tree, len(t.Children))
		for i, c := range t.Children {
			children[i] = RearrangeDeep(c)
		}
		return sp.NewParallel(children...)
	case sp.Series:
		children := make([]*sp.Tree, len(t.Children))
		for i, c := range t.Children {
			children[i] = RearrangeDeep(c)
		}
		sortSeriesChildren(children)
		return sp.NewSeries(children...)
	}
	panic(fmt.Sprintf("pbe: unknown tree kind %v", t.Kind))
}

// sortSeriesChildren sorts ascending by (par_b, potential count):
// structures without a parallel bottom stay near the top; the parallel
// section with the most potential points lands at the bottom, next to
// ground.
func sortSeriesChildren(children []*sp.Tree) {
	sort.SliceStable(children, func(i, j int) bool {
		return rearrangeKey(children[i]) < rearrangeKey(children[j])
	})
}

func rearrangeKey(t *sp.Tree) int {
	k := PotentialCount(t)
	if t.ParallelAtBottom() {
		// par_b dominates: any parallel-at-bottom section outranks any
		// plain section.
		k += 1 << 20
	}
	return k
}

// Describe renders a list of points, one per line, for reports and tests.
func Describe(points []Point) string {
	var b strings.Builder
	for _, p := range points {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}
