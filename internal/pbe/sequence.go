package pbe

import (
	"soidomino/internal/sp"
)

// Sequence-aware discharge pruning: the paper's §VII future work. The
// worst-case analysis (Analyze) discharges every structurally susceptible
// junction, but "breakdown will only occur for a particular sequence of
// input logic values". A junction's discharge device can be dropped when
// no input assignment can charge the body of any transistor whose source
// is that junction:
//
//   - the body of an off device X (source p, drain u) charges only while
//     both p and u are driven high, i.e. connected to the (high) dynamic
//     node through conducting transistors;
//   - every charge path contributes a conjunction of input literals (a
//     cube), and X itself contributes the complement of its own literal
//     (X must be off);
//   - if every (path-to-p, path-to-u) pair conflicts — e.g. the only way
//     to raise p goes through the select literal s while X is gated by s
//     itself, as in multiplexer and XOR structures — the body can never
//     charge and the junction is provably unexcitable.
//
// Signals driven by other domino gates are treated as free variables,
// which is conservative: pruning only ever happens when a literal and its
// complement collide, and complemented literals exist only for primary
// inputs in a unate network.

// literal is a signal with polarity. Gate-output signals are never
// negated in a unate mapping.
type literal struct {
	signal string
	neg    bool
}

// cube is a conjunction of literals; ok reports satisfiability.
type cube map[string]bool // signal -> polarity (true = negated)

// with returns cube ∧ lit, reporting whether the result is satisfiable.
func (c cube) with(l literal) (cube, bool) {
	if pol, ok := c[l.signal]; ok {
		if pol != l.neg {
			return nil, false
		}
		return c, true
	}
	out := make(cube, len(c)+1)
	for k, v := range c {
		out[k] = v
	}
	out[l.signal] = l.neg
	return out, true
}

// merge returns c ∧ d, reporting satisfiability.
func (c cube) merge(d cube) (cube, bool) {
	out := make(cube, len(c)+len(d))
	for k, v := range c {
		out[k] = v
	}
	for k, v := range d {
		if prev, ok := out[k]; ok && prev != v {
			return nil, false
		}
		out[k] = v
	}
	return out, true
}

// spGraph is the node/edge view of a pulldown tree, mirroring the
// transistor netlist: nodes are the top node, the bottom node and the
// series junctions; edges are transistors.
type spGraph struct {
	top, bottom int
	edges       []spEdge
	// adj[n] lists edges incident to n. Conduction is bidirectional: a
	// node can be charged through a sibling branch from below (the
	// paper's fig. 4(a) scenario), so paths are enumerated undirected.
	adj map[int][]int
	// junction maps an analysis Point to its graph node.
	junction map[Point]int
	nextNode int
}

type spEdge struct {
	upper, lower int
	lit          literal
	leaf         *sp.Tree
}

// buildGraph flattens the tree between fresh top and bottom nodes.
func buildGraph(t *sp.Tree) *spGraph {
	g := &spGraph{adj: make(map[int][]int), junction: make(map[Point]int)}
	g.top = g.node()
	g.bottom = g.node()
	g.emit(t, g.top, g.bottom)
	return g
}

func (g *spGraph) node() int {
	g.nextNode++
	return g.nextNode - 1
}

func (g *spGraph) emit(t *sp.Tree, top, bottom int) {
	switch t.Kind {
	case sp.Leaf:
		id := len(g.edges)
		g.edges = append(g.edges, spEdge{
			upper: top, lower: bottom,
			lit:  literal{signal: t.Signal, neg: t.Negated},
			leaf: t,
		})
		g.adj[top] = append(g.adj[top], id)
		g.adj[bottom] = append(g.adj[bottom], id)
	case sp.Parallel:
		for _, c := range t.Children {
			g.emit(c, top, bottom)
		}
	case sp.Series:
		prev := top
		for i, c := range t.Children {
			next := bottom
			if i < len(t.Children)-1 {
				next = g.node()
				g.junction[Point{Group: t, Below: i}] = next
			}
			g.emit(c, prev, next)
			prev = next
		}
	}
}

// pathCubes enumerates the satisfiable cubes of simple conduction paths
// from the top node to target, excluding paths through the banned edge.
// Paths are undirected: charge can descend a sibling branch and climb to
// the target from below. The bound caps enumeration; on overflow a nil
// slice with ok=false is returned and the caller must keep the discharge
// (conservative).
func (g *spGraph) pathCubes(target, banned int, bound int) ([]cube, bool) {
	var out []cube
	visited := make(map[int]bool)
	var walk func(n int, c cube) bool
	walk = func(n int, c cube) bool {
		if n == target {
			out = append(out, c)
			return len(out) <= bound
		}
		visited[n] = true
		defer delete(visited, n)
		for _, eid := range g.adj[n] {
			if eid == banned {
				continue
			}
			e := g.edges[eid]
			next := e.lower
			if next == n {
				next = e.upper
			}
			if visited[next] {
				continue
			}
			if nc, ok := c.with(e.lit); ok {
				if !walk(next, nc) {
					return false
				}
			}
		}
		return true
	}
	if !walk(g.top, cube{}) {
		return nil, false
	}
	return out, true
}

// Excitable reports whether the junction at the given point can ever see
// a PBE body-charging scenario: some device X with source at the junction
// can be off while both its source and drain are driven high. The
// enumeration bound keeps worst-case cost tame; an overflow reports
// excitable (keep the discharge).
func Excitable(root *sp.Tree, pt Point, bound int) bool {
	if bound <= 0 {
		bound = 256
	}
	g := buildGraph(root)
	p, ok := g.junction[pt]
	if !ok {
		return true // unknown point: keep the discharge
	}
	for eid, e := range g.edges {
		if e.lower != p {
			continue // X must have its source at the junction
		}
		// X off: its own literal complemented.
		xOff := literal{signal: e.lit.signal, neg: !e.lit.neg}
		srcPaths, okSrc := g.pathCubes(p, eid, bound)
		if !okSrc {
			return true
		}
		drainPaths, okDrain := g.pathCubes(e.upper, eid, bound)
		if !okDrain {
			return true
		}
		for _, sc := range srcPaths {
			scx, sat := sc.with(xOff)
			if !sat {
				continue
			}
			for _, dc := range drainPaths {
				if _, sat := scx.merge(dc); sat {
					return true
				}
			}
		}
	}
	return false
}

// PruneUnexcitable filters a gate's discharge points down to those whose
// PBE scenario is actually satisfiable (paper §VII). The returned slice
// preserves order.
func PruneUnexcitable(root *sp.Tree, points []Point) []Point {
	var kept []Point
	for _, pt := range points {
		if Excitable(root, pt, 0) {
			kept = append(kept, pt)
		}
	}
	return kept
}
