package pbe

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"soidomino/internal/sp"
)

func leaf(name string) *sp.Tree { return sp.NewLeaf(name, false, -1) }

// TestFigure2a pins the paper's motivating example: (A+B+C)*D has exactly
// one discharge point — node 1, the bottom of the parallel stack — which
// fig 2(c) protects with a single p-discharge transistor.
func TestFigure2a(t *testing.T) {
	tr := sp.NewSeries(sp.NewParallel(leaf("A"), leaf("B"), leaf("C")), leaf("D"))
	pts := GateDischargePoints(tr)
	if len(pts) != 1 {
		t.Fatalf("discharge points = %d, want 1:\n%s", len(pts), Describe(pts))
	}
	if pts[0].Below != 0 || pts[0].Group.Children[0].Kind != sp.Parallel {
		t.Errorf("discharge point should be below the parallel stack, got %v", pts[0])
	}
}

// TestFigure2aReordered pins paper solution 4 (§III-C): moving the parallel
// stack to the bottom of the gate removes the need for any discharge.
func TestFigure2aReordered(t *testing.T) {
	tr := sp.NewSeries(leaf("D"), sp.NewParallel(leaf("A"), leaf("B"), leaf("C")))
	if n := DischargeCount(tr); n != 0 {
		t.Errorf("D*(A+B+C) needs %d discharges, want 0", n)
	}
}

// TestFigure4a: A*B+C has one potential discharge point (the A-B junction)
// and, as a grounded gate, needs no discharge transistors.
func TestFigure4a(t *testing.T) {
	tr := sp.NewParallel(sp.NewSeries(leaf("A"), leaf("B")), leaf("C"))
	a := Analyze(tr)
	if len(a.Potential) != 1 || len(a.Immediate) != 0 {
		t.Fatalf("analysis = %d potential, %d immediate; want 1, 0", len(a.Potential), len(a.Immediate))
	}
	if !a.ParB {
		t.Error("A*B+C has a parallel bottom")
	}
	if n := DischargeCount(tr); n != 0 {
		t.Errorf("grounded A*B+C needs %d discharges, want 0", n)
	}
}

// TestFigure4b: (A*B+C) in series above (D*E+F). The top stack's potential
// point (A-B junction) and the junction between the stacks must be
// discharged; the bottom stack's point (D-E) stays potential.
func TestFigure4b(t *testing.T) {
	top := sp.NewParallel(sp.NewSeries(leaf("A"), leaf("B")), leaf("C"))
	bottom := sp.NewParallel(sp.NewSeries(leaf("D"), leaf("E")), leaf("F"))
	tr := sp.NewSeries(top, bottom)
	a := Analyze(tr)
	if len(a.Immediate) != 2 {
		t.Errorf("immediate = %d, want 2:\n%s", len(a.Immediate), Describe(a.Immediate))
	}
	if len(a.Potential) != 1 {
		t.Errorf("potential = %d, want 1:\n%s", len(a.Potential), Describe(a.Potential))
	}
	if !a.ParB {
		t.Error("par_b should be true (bottom stack is parallel)")
	}
	// As a complete grounded gate: exactly the 2 immediate discharges.
	if n := DischargeCount(tr); n != 2 {
		t.Errorf("gate discharges = %d, want 2", n)
	}
}

// TestFigure5 pins the stack-switching example: (A*B+C) ANDed with E.
func TestFigure5(t *testing.T) {
	stack := func() *sp.Tree {
		return sp.NewParallel(sp.NewSeries(leaf("A"), leaf("B")), leaf("C"))
	}
	// Left circuit: E at the bottom -> two immediate discharge transistors.
	left := sp.NewSeries(stack(), leaf("E"))
	la := Analyze(left)
	if len(la.Immediate) != 2 || len(la.Potential) != 0 {
		t.Errorf("left: %d immediate, %d potential; want 2, 0",
			len(la.Immediate), len(la.Potential))
	}
	if la.ParB {
		t.Error("left: par_b should be false (leaf at bottom)")
	}
	// Right circuit: E on top -> two potential points, no immediate.
	right := sp.NewSeries(leaf("E"), stack())
	ra := Analyze(right)
	if len(ra.Immediate) != 0 || len(ra.Potential) != 2 {
		t.Errorf("right: %d immediate, %d potential; want 0, 2",
			len(ra.Immediate), len(ra.Potential))
	}
	if !ra.ParB {
		t.Error("right: par_b should be true")
	}
	// Connected to ground, the right circuit needs no discharges at all.
	if n := DischargeCount(right); n != 0 {
		t.Errorf("grounded right circuit: %d discharges, want 0", n)
	}
	// Rearrange must turn the left circuit into the right one.
	if got := Rearrange(left).String(); got != "E*(A*B+C)" {
		t.Errorf("Rearrange(left) = %q, want E*(A*B+C)", got)
	}
}

func TestPureSeriesChainIsSafe(t *testing.T) {
	tr := sp.NewSeries(leaf("A"), leaf("B"), leaf("C"), leaf("D"))
	a := Analyze(tr)
	if len(a.Immediate) != 0 {
		t.Errorf("pure series chain has %d immediate points, want 0", len(a.Immediate))
	}
	if len(a.Potential) != 3 {
		t.Errorf("pure series chain has %d potential points, want 3 junctions", len(a.Potential))
	}
	if DischargeCount(tr) != 0 {
		t.Error("pure series gate must need no discharge transistors")
	}
}

func TestLeafAnalysis(t *testing.T) {
	a := Analyze(leaf("x"))
	if len(a.Immediate) != 0 || len(a.Potential) != 0 || a.ParB {
		t.Errorf("leaf analysis = %+v", a)
	}
}

func TestNestedParallelInBranch(t *testing.T) {
	// ((A+B)*C + D)*E : inner parallel sits above C inside a branch.
	inner := sp.NewSeries(sp.NewParallel(leaf("A"), leaf("B")), leaf("C"))
	tr := sp.NewSeries(sp.NewParallel(inner, leaf("D")), leaf("E"))
	a := Analyze(tr)
	// Inner junction below (A+B) is immediate (parallel above C within a
	// branch); the branch's structure sits above E, so the outer stack's
	// bottom junction is immediate too.
	if len(a.Immediate) != 2 {
		t.Errorf("immediate = %d, want 2:\n%s", len(a.Immediate), Describe(a.Immediate))
	}
	if DischargeCount(tr) != 2 {
		t.Errorf("gate discharges = %d, want 2", DischargeCount(tr))
	}
}

func TestPotentialCount(t *testing.T) {
	tr := sp.NewSeries(leaf("E"), sp.NewParallel(sp.NewSeries(leaf("A"), leaf("B")), leaf("C")))
	if PotentialCount(tr) != 2 {
		t.Errorf("PotentialCount = %d, want 2", PotentialCount(tr))
	}
}

func TestRearrangeDeepRecursesIntoBranches(t *testing.T) {
	// Branch contains (A+B)*C in the PBE-prone order; outer is already fine.
	branch := sp.NewSeries(sp.NewParallel(leaf("A"), leaf("B")), leaf("C"))
	tr := sp.NewParallel(branch, leaf("D"))
	r := RearrangeDeep(tr)
	if got := r.String(); got != "C*(A+B)+D" {
		t.Errorf("RearrangeDeep = %q, want C*(A+B)+D", got)
	}
	// The paper's RS_Map post-process only touches the ground-side stack:
	// a parallel-rooted gate is left as is.
	if got := Rearrange(tr).String(); got != "(A+B)*C+D" {
		t.Errorf("Rearrange = %q, want (A+B)*C+D (untouched)", got)
	}
}

func TestRearrangeTopOnlyRootStack(t *testing.T) {
	// Root series stack is reordered; the nested branch keeps its order.
	branch := sp.NewSeries(sp.NewParallel(leaf("A"), leaf("B")), leaf("C"))
	tr := sp.NewSeries(sp.NewParallel(branch, leaf("D")), leaf("E"))
	r := Rearrange(tr)
	if got := r.String(); got != "E*((A+B)*C+D)" {
		t.Errorf("Rearrange = %q, want E*((A+B)*C+D)", got)
	}
	d := RearrangeDeep(tr)
	if got := d.String(); got != "E*(C*(A+B)+D)" {
		t.Errorf("RearrangeDeep = %q, want E*(C*(A+B)+D)", got)
	}
	if DischargeCount(d) > DischargeCount(r) {
		t.Error("deep rearrangement should not be worse than top-level")
	}
}

func TestRearrangePicksLargestPotentialForBottom(t *testing.T) {
	// Two parallel stacks in series: the one with more potential points
	// (D*E*F+G: two junctions) must end up at the bottom.
	small := sp.NewParallel(sp.NewSeries(leaf("A"), leaf("B")), leaf("C"))
	big := sp.NewParallel(sp.NewSeries(leaf("D"), leaf("E"), leaf("F")), leaf("G"))
	tr := sp.NewSeries(big, small) // big on top: 2+1 immediate... wrong order anyway
	r := Rearrange(tr)
	if !r.Children[len(r.Children)-1].ContainsParallel() {
		t.Fatal("bottom child should be a parallel stack")
	}
	if got := PotentialCount(r.Children[len(r.Children)-1]); got != 2 {
		t.Errorf("bottom stack potential = %d, want 2 (the larger stack)", got)
	}
	// small on top: its potential (1) + junction (1) materialize = 2,
	// versus 3 had big stayed on top.
	if n := DischargeCount(r); n != 2 {
		t.Errorf("rearranged discharges = %d, want 2", n)
	}
	if n := DischargeCount(tr); n != 3 {
		t.Errorf("original discharges = %d, want 3", n)
	}
}

func TestPointString(t *testing.T) {
	tr := sp.NewSeries(sp.NewParallel(leaf("A"), leaf("B")), leaf("C"))
	pts := GateDischargePoints(tr)
	if len(pts) != 1 {
		t.Fatalf("want 1 point, got %d", len(pts))
	}
	s := pts[0].String()
	if !strings.Contains(s, "junction below") {
		t.Errorf("Point.String = %q", s)
	}
}

func randomTree(rng *rand.Rand, depth int) *sp.Tree {
	if depth == 0 || rng.Intn(3) == 0 {
		return sp.NewLeaf(string(rune('a'+rng.Intn(8))), false, -1)
	}
	k := 2 + rng.Intn(2)
	children := make([]*sp.Tree, k)
	for i := range children {
		children[i] = randomTree(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return sp.NewSeries(children...)
	}
	return sp.NewParallel(children...)
}

// Property: Rearrange preserves function, dimensions and transistor count,
// and never increases the number of discharge transistors (the paper's
// RS_Map premise).
func TestRearrangePropertiesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 4)
		for _, r := range []*sp.Tree{Rearrange(tr), RearrangeDeep(tr)} {
			if r.Validate() != nil {
				return false
			}
			if r.Width() != tr.Width() || r.Height() != tr.Height() {
				return false
			}
			if r.Transistors() != tr.Transistors() {
				return false
			}
			if DischargeCount(r) > DischargeCount(tr) {
				return false
			}
			for trial := 0; trial < 8; trial++ {
				vals := map[string]bool{}
				for _, s := range "abcdefgh" {
					vals[string(s)] = rng.Intn(2) == 0
				}
				if tr.Conducts(vals) != r.Conducts(vals) {
					return false
				}
			}
		}
		// The deep variant dominates the paper's top-level variant.
		return DischargeCount(RearrangeDeep(tr)) <= DischargeCount(Rearrange(tr))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the immediate/potential split partitions a fixed set — the
// total is invariant under rearrangement (the paper's observation that
// ordering is "irrelevant" when the stack never reaches ground).
func TestAnalysisTotalInvariantQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 4)
		a := Analyze(tr)
		r := Analyze(RearrangeDeep(tr))
		return len(a.Immediate)+len(a.Potential) == len(r.Immediate)+len(r.Potential)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: every junction is classified exactly once.
func TestJunctionPartitionQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(29))}
	countJunctions := func(tr *sp.Tree) int {
		n := 0
		var walk func(*sp.Tree)
		walk = func(t *sp.Tree) {
			if t.Kind == sp.Series {
				n += len(t.Children) - 1
			}
			for _, c := range t.Children {
				walk(c)
			}
		}
		walk(tr)
		return n
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 4)
		a := Analyze(tr)
		seen := map[Point]bool{}
		for _, p := range a.Immediate {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		for _, p := range a.Potential {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return len(seen) == countJunctions(tr)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
