// Package delay estimates evaluate-phase delay of a mapped domino circuit
// with an Elmore-flavored model, replacing the level count the paper uses
// as its delay proxy. The paper explicitly waves stack-order delay away
// ("Reordering changes delay, but since diffusion capacitances are
// relatively low, we ignore them as a first order approximation", §III-C)
// — this package measures what that approximation costs: the PBE-driven
// reordering of SOI_Domino_Map moves transistors within stacks and the
// model quantifies the resulting delay movement against the baseline.
//
// The model (all constants in normalized tau units, configurable):
//
//   - A rising input at depth d below the dynamic node discharges the
//     stack through the devices beneath it (TauStack each) and must drain
//     the charge of the nodes above it through itself (TauPos per device
//     above). Deep inputs switch fast; inputs at the top of tall stacks
//     pay for the whole chain below them.
//   - Each gate adds a fixed output-stage delay (TauGate; compound NAND/
//     NOR stages pay it per extra stage input) plus TauLoad per driven
//     transistor on its output net.
//   - Complemented primary inputs arrive after one static inverter
//     (TauInv).
//
// Arrival times propagate through the domino cascade in topological
// order; the critical path is reconstructed per gate from the worst
// (leaf, arrival) pair.
package delay

import (
	"fmt"
	"math"
	"strings"

	"soidomino/internal/mapper"
	"soidomino/internal/sp"
)

// Params are the model's normalized time constants.
type Params struct {
	TauStack float64 // per series device on the discharge path below the input
	TauPos   float64 // per device above the input (diffusion charge it must drain)
	TauGate  float64 // fixed output-stage delay per gate
	TauExtra float64 // additional output-stage delay per compound stage beyond the first
	TauLoad  float64 // per transistor gate driven by the output net
	TauInv   float64 // input inverter delay for complemented primary inputs
}

// DefaultParams reflects SOI's low diffusion capacitance: the position
// term is small relative to the stack term, which is the paper's stated
// justification for ignoring reordering delay.
func DefaultParams() Params {
	return Params{
		TauStack: 1.0,
		TauPos:   0.2,
		TauGate:  1.5,
		TauExtra: 0.6,
		TauLoad:  0.25,
		TauInv:   1.0,
	}
}

// Analysis is the result of a delay pass.
type Analysis struct {
	// ArrivalOut[g] is the arrival time of gate g's output.
	ArrivalOut []float64
	// Critical is the worst primary-output arrival.
	Critical float64
	// CriticalOutput names the latest primary output.
	CriticalOutput string
	// CriticalPath lists the gate ids from the path's first gate to the
	// critical output's driver.
	CriticalPath []int
}

// Analyze computes arrival times for a mapped circuit.
func Analyze(res *mapper.Result, p Params) (*Analysis, error) {
	loads := outputLoads(res)
	a := &Analysis{ArrivalOut: make([]float64, len(res.Gates))}
	worstLeafGate := make([]int, len(res.Gates)) // driving gate of the worst leaf, -1 for PI

	for _, g := range res.Gates {
		worst := 0.0
		worstRef := -1
		for _, st := range g.StageTrees() {
			leaves := leafGeometry(st)
			for _, lg := range leaves {
				var in float64
				switch {
				case lg.leaf.GateRef >= 0:
					if lg.leaf.GateRef >= g.ID {
						return nil, fmt.Errorf("delay: gate %d driven by later gate %d", g.ID, lg.leaf.GateRef)
					}
					in = a.ArrivalOut[lg.leaf.GateRef]
				case lg.leaf.Negated:
					in = p.TauInv
				}
				t := in + p.TauStack*float64(lg.below+1) + p.TauPos*float64(lg.above)
				if t > worst {
					worst = t
					worstRef = lg.leaf.GateRef
				}
			}
		}
		out := worst + p.TauGate + p.TauExtra*float64(g.StageCount()-1) + p.TauLoad*float64(loads[g.ID])
		a.ArrivalOut[g.ID] = out
		worstLeafGate[g.ID] = worstRef
	}

	a.Critical = math.Inf(-1)
	criticalGate := -1
	for name, gid := range res.OutputGate {
		if t := a.ArrivalOut[gid]; t > a.Critical {
			a.Critical = t
			a.CriticalOutput = name
			criticalGate = gid
		}
	}
	if criticalGate < 0 {
		a.Critical = 0
		return a, nil
	}
	for g := criticalGate; g >= 0; g = worstLeafGate[g] {
		a.CriticalPath = append(a.CriticalPath, g)
	}
	// Reverse to source-to-sink order.
	for i, j := 0, len(a.CriticalPath)-1; i < j; i, j = i+1, j-1 {
		a.CriticalPath[i], a.CriticalPath[j] = a.CriticalPath[j], a.CriticalPath[i]
	}
	return a, nil
}

// String renders the headline numbers.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical delay %.2f tau at output %q through %d gates",
		a.Critical, a.CriticalOutput, len(a.CriticalPath))
	return b.String()
}

// leafGeom pairs a leaf with its stack position: the number of series
// devices strictly above it on the path to the dynamic node, and strictly
// below it on the path to ground.
type leafGeom struct {
	leaf         *sp.Tree
	above, below int
}

// leafGeometry computes positions for every leaf of a stage tree.
func leafGeometry(t *sp.Tree) []leafGeom {
	var out []leafGeom
	var walk func(n *sp.Tree, above, below int)
	walk = func(n *sp.Tree, above, below int) {
		switch n.Kind {
		case sp.Leaf:
			out = append(out, leafGeom{leaf: n, above: above, below: below})
		case sp.Parallel:
			for _, c := range n.Children {
				walk(c, above, below)
			}
		case sp.Series:
			// Heights of the children partition the path.
			heights := make([]int, len(n.Children))
			total := 0
			for i, c := range n.Children {
				heights[i] = c.Height()
				total += heights[i]
			}
			used := 0
			for i, c := range n.Children {
				walk(c, above+used, below+total-used-heights[i])
				used += heights[i]
			}
		}
	}
	walk(t, 0, 0)
	return out
}

// outputLoads counts, per gate, the transistor gates its output drives.
func outputLoads(res *mapper.Result) []int {
	loads := make([]int, len(res.Gates))
	for _, g := range res.Gates {
		for _, leaf := range g.Tree.Leaves() {
			if leaf.GateRef >= 0 {
				loads[leaf.GateRef]++
			}
		}
	}
	for _, gid := range res.OutputGate {
		loads[gid]++ // whatever the primary output feeds downstream
	}
	return loads
}
