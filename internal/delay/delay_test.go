package delay

import (
	"math"
	"math/rand"
	"testing"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/unate"
)

func mapNet(t *testing.T, n *logic.Network,
	algo func(*logic.Network, mapper.Options) (*mapper.Result, error)) *mapper.Result {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algo(u.Network, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBufferGateDelay(t *testing.T) {
	n := logic.New("buf")
	a := n.AddInput("a")
	n.AddOutput("f", a)
	res := mapNet(t, n, mapper.DominoMap)
	p := DefaultParams()
	an, err := Analyze(res, p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.TauStack*1 + p.TauGate + p.TauLoad*1
	if !approx(an.Critical, want) {
		t.Errorf("critical = %v, want %v", an.Critical, want)
	}
	if len(an.CriticalPath) != 1 {
		t.Errorf("path = %v", an.CriticalPath)
	}
}

func TestSeriesStackDelay(t *testing.T) {
	// f = a*b as one gate: the top input (a) discharges through two
	// devices; b pays the position tax of the device above it.
	n := logic.New("and2")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.And, a, b))
	res := mapNet(t, n, mapper.DominoMap) // source order: a on top
	if got := res.Gates[0].Tree.String(); got != "a*b" {
		t.Fatalf("tree = %q", got)
	}
	p := Params{TauStack: 1, TauPos: 0.25, TauGate: 0, TauLoad: 0}
	an, err := Analyze(res, p)
	if err != nil {
		t.Fatal(err)
	}
	// a: below=1 -> 2.0; b: below=0, above=1 -> 1.25. Worst = 2.0.
	if !approx(an.Critical, 2.0) {
		t.Errorf("critical = %v, want 2.0", an.Critical)
	}
}

func TestNegatedInputAddsInverter(t *testing.T) {
	n := logic.New("nor")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.Nor, a, b)) // unate form: !a * !b
	res := mapNet(t, n, mapper.DominoMap)
	p := Params{TauStack: 1, TauPos: 0, TauGate: 0, TauLoad: 0, TauInv: 3}
	an, err := Analyze(res, p)
	if err != nil {
		t.Fatal(err)
	}
	// Both leaves complemented: worst = TauInv + 2 stack taus.
	if !approx(an.Critical, 5.0) {
		t.Errorf("critical = %v, want 5.0", an.Critical)
	}
}

func TestCascadeAccumulates(t *testing.T) {
	// Force a 2-level cascade via multi-fanout.
	n := logic.New("casc")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	g := n.AddGate(logic.And, a, b)
	n.AddOutput("g", g)
	n.AddOutput("f", n.AddGate(logic.And, g, c))
	res := mapNet(t, n, mapper.DominoMap)
	an, err := Analyze(res, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gidG := res.OutputGate["g"]
	gidF := res.OutputGate["f"]
	if an.ArrivalOut[gidF] <= an.ArrivalOut[gidG] {
		t.Errorf("cascade did not accumulate: f=%v g=%v",
			an.ArrivalOut[gidF], an.ArrivalOut[gidG])
	}
	if an.CriticalOutput != "f" {
		t.Errorf("critical output = %q", an.CriticalOutput)
	}
	if len(an.CriticalPath) != 2 || an.CriticalPath[1] != gidF {
		t.Errorf("critical path = %v", an.CriticalPath)
	}
}

func TestCompoundPaysExtraStage(t *testing.T) {
	n := logic.New("stk")
	// Two stacked 3-wide parallel groups (profitable compound target).
	stack := func(base byte) int {
		var br []int
		for i := 0; i < 3; i++ {
			x := n.AddInput(string(base + byte(3*i)))
			y := n.AddInput(string(base + byte(3*i+1)))
			z := n.AddInput(string(base + byte(3*i+2)))
			br = append(br, n.AddGate(logic.And, n.AddGate(logic.And, x, y), z))
		}
		return n.AddGate(logic.Or, n.AddGate(logic.Or, br[0], br[1]), br[2])
	}
	n.AddOutput("f", n.AddGate(logic.And, stack('a'), stack('j')))
	res, err := mapper.DominoMap(n, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	before, err := Analyze(res, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mapper.CompoundTransform(res, mapper.DefaultCompoundOptions()); err != nil {
		t.Fatal(err)
	}
	after, err := Analyze(res, p)
	if err != nil {
		t.Fatal(err)
	}
	// Splitting the series stack halves the discharge path (H 6 -> 3) but
	// pays the extra output stage; with the default constants the split
	// comes out faster.
	if after.Critical >= before.Critical {
		t.Errorf("compound split should shorten the stack: %.2f -> %.2f",
			before.Critical, after.Critical)
	}
}

// TestReorderingDelayIsSecondOrder quantifies the paper's §III-C claim on
// random circuits: the SOI mapper's PBE-driven stack reordering moves the
// estimated critical delay only marginally relative to the baseline.
func TestReorderingDelayIsSecondOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := DefaultParams()
	for trial := 0; trial < 10; trial++ {
		n := randomCircuit(rng)
		base := mapNet(t, n, mapper.DominoMap)
		soi := mapNet(t, n, mapper.SOIDominoMap)
		ab, err := Analyze(base, p)
		if err != nil {
			t.Fatal(err)
		}
		as, err := Analyze(soi, p)
		if err != nil {
			t.Fatal(err)
		}
		if ab.Critical <= 0 {
			continue
		}
		ratio := as.Critical / ab.Critical
		if ratio > 1.35 || ratio < 0.6 {
			t.Errorf("trial %d: SOI delay ratio %.2f outside the second-order band\nbase: %s\nsoi:  %s",
				trial, ratio, ab, as)
		}
	}
}

func TestArrivalMonotoneAlongPath(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := randomCircuit(rng)
	res := mapNet(t, n, mapper.SOIDominoMap)
	an, err := Analyze(res, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(an.CriticalPath); i++ {
		if an.ArrivalOut[an.CriticalPath[i]] <= an.ArrivalOut[an.CriticalPath[i-1]] {
			t.Fatalf("arrival not increasing along critical path %v", an.CriticalPath)
		}
	}
	if an.String() == "" {
		t.Error("String empty")
	}
}

func TestNoOutputs(t *testing.T) {
	n := logic.New("empty")
	n.AddInput("a")
	res := mapNet(t, n, mapper.DominoMap)
	an, err := Analyze(res, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if an.Critical != 0 || len(an.CriticalPath) != 0 {
		t.Errorf("empty analysis = %+v", an)
	}
}

func randomCircuit(rng *rand.Rand) *logic.Network {
	n := logic.New("rnd")
	nin := 5 + rng.Intn(4)
	var pool []int
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i, ngates := 0, 15+rng.Intn(25); i < ngates; i++ {
		op := ops[rng.Intn(len(ops))]
		k := 1
		if op.MaxFanin() != 1 {
			k = 2 + rng.Intn(2)
		}
		fan := make([]int, k)
		for j := range fan {
			fan[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, n.AddGate(op, fan...))
	}
	n.AddOutput("f", pool[len(pool)-1])
	n.AddOutput("g", pool[len(pool)-2])
	return n
}
