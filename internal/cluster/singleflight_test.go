package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCoalesces: concurrent callers with one key run fn once; all
// share the value and everyone but the leader reports coalesced.
func TestFlightCoalesces(t *testing.T) {
	var f Flight[int]
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	type res struct {
		v         int
		coalesced bool
		err       error
	}
	leaderc := make(chan res, 1)
	go func() {
		v, co, err := f.Do(context.Background(), "k", func(context.Context) (int, error) {
			runs.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		leaderc <- res{v, co, err}
	}()
	<-started

	const followers = 8
	results := make([]res, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, co, err := f.Do(context.Background(), "k", func(context.Context) (int, error) {
				runs.Add(1)
				return -1, nil
			})
			results[i] = res{v, co, err}
		}(i)
	}
	// Wait until every follower has attached to the flight, then land it
	// — waiting on the waiter count (not sleeping) keeps this
	// deterministic.
	f.mu.Lock()
	call := f.calls["k"]
	f.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for call.waiters.Load() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers attached after 5s", call.waiters.Load(), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	lead := <-leaderc

	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	if lead.err != nil || lead.v != 42 || lead.coalesced {
		t.Fatalf("leader got (%d, %t, %v)", lead.v, lead.coalesced, lead.err)
	}
	for i, r := range results {
		if r.err != nil || r.v != 42 {
			t.Fatalf("follower %d got (%d, %v)", i, r.v, r.err)
		}
		if !r.coalesced {
			t.Errorf("follower %d not marked coalesced", i)
		}
	}
}

// TestFlightSequentialCallsDoNotShare: a call arriving after the flight
// landed leads its own — results are never served stale.
func TestFlightSequentialCallsDoNotShare(t *testing.T) {
	var f Flight[int]
	var runs atomic.Int64
	for i := 1; i <= 3; i++ {
		v, co, err := f.Do(context.Background(), "k", func(context.Context) (int, error) {
			return int(runs.Add(1)), nil
		})
		if err != nil || co || v != i {
			t.Fatalf("call %d: (%d, %t, %v), want fresh run %d", i, v, co, err, i)
		}
	}
}

// TestFlightCallerCancelDoesNotKillTheFlight: an impatient caller gets
// its ctx error immediately; the flight still lands for everyone else.
func TestFlightCallerCancelDoesNotKillTheFlight(t *testing.T) {
	var f Flight[int]
	started := make(chan struct{})
	release := make(chan struct{})

	done := make(chan error, 1)
	go func() {
		_, _, err := f.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
			close(started)
			<-release
			// The detached context must survive any caller's cancellation.
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			return 7, nil
		})
		done <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, co, err := f.Do(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) || !co {
		t.Fatalf("canceled follower got (coalesced=%t, err=%v)", co, err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("leader failed after a follower canceled: %v", err)
	}
}
