package cluster

import (
	"context"
	"sync"
	"sync/atomic"
)

// Flight coalesces concurrent calls with the same key into one execution
// of fn: the first caller becomes the leader and runs fn; callers that
// arrive while it is in flight wait and share the leader's result. The
// stdlib's x/sync/singleflight is off-limits (this repo takes no
// dependencies), and this version differs usefully anyway: fn runs
// detached from the leader's context, so one impatient caller canceling
// does not fail the followers riding its flight.
//
// The zero value is ready to use.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done    chan struct{} // closed after val/err are set
	waiters atomic.Int64  // coalesced callers attached so far
	val     V
	err     error
}

// Do returns the result of fn for key, coalescing concurrent duplicates.
// The second result reports whether this caller shared another caller's
// flight rather than leading its own. A caller whose ctx ends before the
// flight lands gets ctx.Err() — the flight itself continues for the
// others, because fn receives a context detached from any single caller
// (values, including the fault registry and request ids, still flow).
func (f *Flight[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, bool, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		return f.wait(ctx, c, true)
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	go func() {
		c.val, c.err = fn(context.WithoutCancel(ctx))
		// Remove the call before waking waiters: a caller arriving after
		// done closes must start a fresh flight, never read a stale one.
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}()
	return f.wait(ctx, c, false)
}

func (f *Flight[V]) wait(ctx context.Context, c *flightCall[V], coalesced bool) (V, bool, error) {
	if coalesced {
		c.waiters.Add(1)
	}
	select {
	case <-c.done:
		return c.val, coalesced, c.err
	case <-ctx.Done():
		var zero V
		return zero, coalesced, ctx.Err()
	}
}
