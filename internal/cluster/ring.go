package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over named replicas. Each replica owns
// VNodes points on the ring (derived from sha256, so placement is stable
// across processes and runs); a key is served by the replicas found
// walking clockwise from the key's own point. Immutable after New.
type Ring struct {
	points   []ringPoint // sorted by hash
	replicas []string
}

type ringPoint struct {
	hash    uint64
	replica string
}

// DefaultVNodes is the virtual-node count used when NewRing gets
// vnodes <= 0. 64 points per replica keeps the ownership split within a
// few percent of even for small clusters.
const DefaultVNodes = 64

// NewRing builds a ring over replicas (order-insensitive: placement
// depends only on the names). Duplicate names are dropped.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(replicas))
	r := &Ring{}
	for _, name := range replicas {
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		r.replicas = append(r.replicas, name)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashPoint(name + "#" + strconv.Itoa(v)),
				replica: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical 64-bit points are astronomically unlikely but must
		// still order deterministically.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// Replicas returns the distinct replica names on the ring.
func (r *Ring) Replicas() []string { return r.replicas }

// Prefer returns up to n distinct replicas responsible for key, primary
// first: the owner of the first point at or after the key's hash, then
// the owners of the following points. This is the failover order — every
// caller that hashes the same key sees the same list.
func (r *Ring) Prefer(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	h := hashPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// hashPoint maps a string to its 64-bit ring position. sha256 (not FNV or
// maphash) so the distribution is uniform and identical in every process
// that ever computes it — the routing table is implicit, never exchanged.
func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
