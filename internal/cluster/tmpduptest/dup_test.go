package cluster_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"soidomino/internal/cluster"
)

func TestDuplicateReplicas(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write([]byte(`{"id":"j1","state":"done","circuit":"c17","algorithm":"soi"}`))
	}))
	defer backend.Close()
	rt, err := cluster.New(cluster.Config{
		Replicas:      []string{backend.URL, backend.URL},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/map", "application/json",
		strings.NewReader(`{"circuit":"c17"}`))
	if err != nil {
		t.Fatalf("request failed: %v", err)
	}
	defer resp.Body.Close()
	t.Logf("status: %d", resp.StatusCode)
	if resp.StatusCode >= 500 {
		t.Fatalf("got %d", resp.StatusCode)
	}
}
