// Package cluster turns a set of soimapd replicas into one logical
// mapping service: a routing front-end (Router) consistent-hash-routes
// each submission by its canonical request key — the internal/canon
// network hash keyed jointly with the canonical options encoding, the
// exact key replicas cache results under — so identical circuits land on
// the same replicas regardless of how the request was spelled.
//
// Three layers cooperate:
//
//   - Ring: a consistent-hash ring with virtual nodes. Prefer(key, n)
//     yields the replicas responsible for a key in failover order;
//     adding or removing a replica reshuffles only the keys it owned.
//
//   - Flight: a generic singleflight. Concurrent identical synchronous
//     submissions collapse into one upstream call; followers wait for
//     the leader's reply and receive the same bytes. The replicas run
//     their own singleflight layer underneath (the job table coalesces
//     identical in-flight jobs), so a thundering herd costs one DP run
//     no matter which layer it reaches first.
//
//   - Router: the HTTP front-end. POST /v1/map computes the routing key
//     with service.RequestKey, routes to the ReplicationFactor preferred
//     replicas with failover (then to the remaining replicas as a last
//     resort), and namespaces job ids as "<replica>.<id>" so GET
//     /v1/jobs/{id} polls the replica that owns the job. A background
//     prober watches each replica's /readyz — a draining replica drops
//     out of rotation before its listener closes — and transport
//     failures mark a replica unready passively between probes.
//
// The consistency contract making all of this safe is documented in
// DESIGN.md §12: mapping is deterministic and results are byte-identical
// across replicas and worker counts, so any replica — or any cached or
// coalesced copy — may answer any request.
package cluster
