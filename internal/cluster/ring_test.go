package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func ringNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8347", i)
	}
	return out
}

// TestRingDeterministicAndOrderInsensitive: placement must depend only on
// the replica names, never on configuration order or process state —
// every router instance must compute identical preference lists.
func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	names := ringNames(5)
	reversed := make([]string, len(names))
	for i, n := range names {
		reversed[len(names)-1-i] = n
	}
	a := NewRing(names, 0)
	b := NewRing(reversed, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		pa, pb := a.Prefer(key, 3), b.Prefer(key, 3)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("key %q: prefer %v vs %v for reordered replicas", key, pa, pb)
		}
		if len(pa) != 3 {
			t.Fatalf("key %q: %d candidates, want 3", key, len(pa))
		}
		seen := map[string]bool{}
		for _, r := range pa {
			if seen[r] {
				t.Fatalf("key %q: duplicate replica %s in %v", key, r, pa)
			}
			seen[r] = true
		}
	}
	if got := a.Prefer("k", 99); len(got) != 5 {
		t.Fatalf("Prefer capped at %d, want all 5 replicas", len(got))
	}
	if got := a.Prefer("k", 0); got != nil {
		t.Fatalf("Prefer(k, 0) = %v, want nil", got)
	}
}

// TestRingDistribution: with vnodes, primary ownership across many keys
// should be within shouting distance of even — no replica starved, none
// hot. Loose bounds; the hash is fixed so this cannot flake.
func TestRingDistribution(t *testing.T) {
	const keys = 10000
	names := ringNames(5)
	r := NewRing(names, 0)
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Prefer(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	for _, n := range names {
		share := float64(counts[n]) / keys
		if share < 0.08 || share > 0.40 {
			t.Errorf("replica %s owns %.1f%% of keys (counts %v)", n, 100*share, counts)
		}
	}
}

// TestRingMinimalDisruption: removing one replica must only remap the
// keys it owned — everyone else's keys keep their primary. This is the
// property that makes consistent hashing worth its salt.
func TestRingMinimalDisruption(t *testing.T) {
	const keys = 2000
	names := ringNames(5)
	full := NewRing(names, 0)
	without := NewRing(names[:4], 0) // drop replica-4
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Prefer(key, 1)[0]
		after := without.Prefer(key, 1)[0]
		if before == names[4] {
			moved++
			continue // its keys must move somewhere
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("the removed replica owned zero keys; distribution is broken")
	}
}

// TestRingDropsDuplicatesAndEmpties guards config hygiene: a doubled URL
// or a stray empty string must not double a replica's ring share.
func TestRingDropsDuplicatesAndEmpties(t *testing.T) {
	r := NewRing([]string{"a", "", "b", "a", "b"}, 8)
	if got := r.Replicas(); len(got) != 2 {
		t.Fatalf("replicas = %v, want [a b]", got)
	}
	if got := len(r.points); got != 16 {
		t.Fatalf("%d ring points, want 16 (2 replicas x 8 vnodes)", got)
	}
}
