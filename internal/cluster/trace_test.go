package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"soidomino/internal/client"
	"soidomino/internal/obs"
	"soidomino/internal/service"
)

// TestTraceSmokeStitchesClusterTrace is the trace-smoke gate (`make
// trace-smoke`): one traced request through an in-process router and a
// two-replica fleet must produce ONE stitched Perfetto trace containing
// the router's spans, the serving replica's queue/job/phase spans, and
// the peer-cache lookup the sibling replica observed — every process
// keyed under the trace id the client minted — plus an explain record
// whose per-phase times nest inside the job's run wall.
func TestTraceSmokeStitchesClusterTrace(t *testing.T) {
	// Bind both replica listeners first so each service can be created
	// knowing its sibling's URL: the peer-cache tier is what pulls the
	// second replica into the trace even though only one maps the job.
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	replicaName := func(i int) string { return fmt.Sprintf("replica-%d", i) }
	for i := range lns {
		svc := service.New(service.Config{
			Workers:     1,
			ReplicaName: replicaName(i),
			Peers:       []string{urls[1-i]},
			PeerTimeout: 500 * time.Millisecond,
		})
		hs := &http.Server{Handler: svc.Handler()}
		go hs.Serve(lns[i])
		t.Cleanup(func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
		})
	}
	_, ts := newRouterTS(t, Config{Replicas: urls})

	tc := obs.NewTraceContext()
	ctx := obs.WithTraceContext(context.Background(), tc)
	cli := client.New(client.Config{BaseURL: ts.URL})
	v, err := cli.Map(ctx, &service.MapRequest{Circuit: "c880"})
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.JobDone {
		t.Fatalf("state %s (%s)", v.State, v.Error)
	}
	if v.TraceID != tc.TraceID {
		t.Fatalf("job view trace id %q, want the minted %q", v.TraceID, tc.TraceID)
	}

	// Attribution through the router's explain proxy: a fresh circuit is
	// a miss, so per-phase times must be present and nest inside the run
	// wall (separate clock reads, so allow jitter headroom).
	ev, err := cli.Explain(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	a := ev.Attribution
	if a == nil {
		t.Fatal("explain returned no attribution")
	}
	if a.CacheTier != service.TierMiss {
		t.Fatalf("cache tier %q, want %q", a.CacheTier, service.TierMiss)
	}
	if a.Replica == "" {
		t.Fatal("attribution names no replica")
	}
	var phaseSum float64
	for _, phaseMS := range a.PhasesMS {
		phaseSum += phaseMS
	}
	if len(a.PhasesMS) == 0 || phaseSum <= 0 {
		t.Fatalf("no phase times in attribution %+v", a)
	}
	if phaseSum > a.WallMS*1.1+1 {
		t.Fatalf("phase times sum to %.3fms, exceeding run wall %.3fms", phaseSum, a.WallMS)
	}

	// The stitched trace assembles asynchronously: the serving replica
	// exports the job's spans as its worker unwinds and the router's
	// root span ends after the response is written, so poll until every
	// expected span has landed (or the deadline reports what's missing).
	var missing []string
	deadline := time.Now().Add(5 * time.Second)
	for {
		byProc, err := fetchStitched(ctx, cli, tc.TraceID)
		if err == nil {
			missing = missingSpans(byProc, replicaName(0), replicaName(1))
			if len(missing) == 0 {
				return
			}
		} else {
			missing = []string{"trace fetch: " + err.Error()}
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched trace incomplete: %s", strings.Join(missing, "; "))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchStitched pulls the router's stitched Perfetto rendering of one
// trace and indexes its complete-span names by process name.
func fetchStitched(ctx context.Context, cli *client.Client, traceID string) (map[string][]string, error) {
	raw, err := cli.Trace(ctx, traceID)
	if err != nil {
		return nil, err
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("decode stitched trace: %w", err)
	}
	procName := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				procName[e.Pid] = n
			}
		}
	}
	byProc := map[string][]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			byProc[procName[e.Pid]] = append(byProc[procName[e.Pid]], e.Name)
		}
	}
	return byProc, nil
}

// missingSpans lists what the stitched trace still lacks: the router's
// routing spans, one replica's queue/job/phase/peer-cache spans, and the
// sibling's peer-cache-serving span. The job lands on whichever replica
// the ring picks, so replica expectations accept either identity.
func missingSpans(byProc map[string][]string, replicas ...string) []string {
	hasSpan := func(proc, prefix string) bool {
		for _, n := range byProc[proc] {
			if strings.HasPrefix(n, prefix) {
				return true
			}
		}
		return false
	}
	anyReplica := func(prefix string) bool {
		for _, r := range replicas {
			if hasSpan(r, prefix) {
				return true
			}
		}
		return false
	}
	var missing []string
	for _, prefix := range []string{"route POST /v1/map", "attempt "} {
		if !hasSpan("soirouter", prefix) {
			missing = append(missing, "router span "+prefix)
		}
	}
	// "strash <net>" is the pipeline phase span; "<algorithm> dp" covers
	// the mapper-engine phase spans exported from the run's tracer.
	for _, prefix := range []string{"POST /v1/map", "queue wait", "job ", "peer cache ", "strash "} {
		if !anyReplica(prefix) {
			missing = append(missing, "replica span "+prefix)
		}
	}
	dpSeen := false
	for _, r := range replicas {
		for _, n := range byProc[r] {
			if strings.HasSuffix(n, " dp") {
				dpSeen = true
			}
		}
	}
	if !dpSeen {
		missing = append(missing, "replica mapper dp phase span")
	}
	// The peer-cache lookup must appear on the sibling's side too: its
	// /v1/cache handler joins the propagated trace.
	if !anyReplica("GET /v1/cache") {
		missing = append(missing, "peer replica span GET /v1/cache")
	}
	return missing
}
