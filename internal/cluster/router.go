package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soidomino/internal/client"
	"soidomino/internal/obs"
	"soidomino/internal/service"
)

// Config shapes a Router. The zero value of any field selects the
// documented default.
type Config struct {
	// Replicas are the base URLs of the soimapd instances, e.g.
	// "http://10.0.0.1:8347". At least one is required.
	Replicas []string
	// ReplicationFactor is how many preferred replicas serve each key
	// before last-resort failover widens to the rest (default 2, capped
	// at len(Replicas)).
	ReplicationFactor int
	// VNodes is the ring's virtual-node count per replica (default 64).
	VNodes int
	// Client is the template for the per-replica retrying clients;
	// BaseURL is overwritten per replica.
	Client client.Config
	// ProbeInterval spaces the /readyz probes of each replica (default
	// 2s; negative disables probing — replicas then stay ready unless a
	// transport failure marks them unready).
	ProbeInterval time.Duration
	// MaxBodyBytes bounds a submission body (default 16MiB, matching the
	// replicas' own default).
	MaxBodyBytes int64
	// TraceSample enables local trace sampling at the router: every
	// TraceSample-th submission without an incoming traceparent header
	// starts a fresh sampled trace spanning the router and the replicas
	// it touches. 0 (the default) disables local sampling; incoming
	// sampled traceparent headers are always honored. Tracing never
	// affects routing or cache keys (DESIGN.md §14).
	TraceSample int
	// TraceMax bounds the distinct traces retained by the router's trace
	// hub (FIFO eviction; default 64).
	TraceMax int
	// StrashOff disables the structural-hashing front-end for every
	// routed submission by forcing options.strash_off on the request
	// itself before the routing key is computed — so the router's keys,
	// the replicas' cache keys and the forwarded request all agree. It
	// must match the replicas' own -strash-off setting: a strash-off
	// router fronting strash-on replicas (or vice versa) would route a
	// circuit to one shard while the replica caches it under another.
	StrashOff bool
	// Logger receives routing decisions and failovers; nil disables.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor > len(c.Replicas) {
		c.ReplicationFactor = len(c.Replicas)
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// replica is one routed-to soimapd instance and its health view.
type replica struct {
	idx    int
	url    string
	client *client.Client
	probe  *http.Client
	// ready starts true and tracks the last /readyz probe; a transport
	// failure while routing flips it false without waiting for the
	// prober ("passive unready"), so a crashed replica stops receiving
	// traffic after one failed attempt.
	ready atomic.Bool
}

// Router is the cluster front-end: it exposes the soimapd API surface
// and fans requests out to replicas by consistent hash of the canonical
// request key. Create with New, serve Handler, stop the prober with
// Close.
type Router struct {
	cfg      Config
	ring     *Ring
	replicas []*replica
	byURL    map[string]*replica
	flight   Flight[*service.JobView]
	mux      *http.ServeMux
	logger   *slog.Logger
	start    time.Time
	reqSeq   atomic.Int64
	traceSeq atomic.Int64
	hub      *obs.TraceHub

	mu       sync.Mutex
	counters map[string]int64
	routed   map[string]int64 // submissions answered, by replica URL
	// tiers counts answered submissions by replica URL and cache tier
	// (Attribution.CacheTier), the fleet-level rollup behind the
	// soirouter_answer_tier_total metric: per-replica hit rates for the
	// local, peer, miss and coalesced tiers without scrape-time fan-out.
	tiers map[tierKey]int64

	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// routerCounters is the fixed counter vocabulary (sorted; /metrics
// renders them in this order).
var routerCounters = []string{
	"jobs_coalesced",
	"requests",
	"requests_bad",
	"requests_failed",
	"routed_failovers",
	"upstream_errors",
}

var routerCounterHelp = map[string]string{
	"jobs_coalesced":   "Synchronous submissions that shared an identical in-flight submission instead of reaching a replica.",
	"requests":         "Map submissions received.",
	"requests_bad":     "Map submissions rejected before routing (malformed body, unknown circuit or options).",
	"requests_failed":  "Map submissions that failed on every candidate replica.",
	"routed_failovers": "Submissions that failed over past the preferred replica.",
	"upstream_errors":  "Individual replica attempts that failed (each may still fail over).",
}

// New builds a Router over cfg.Replicas and starts the readiness prober
// (unless ProbeInterval < 0).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: at least one replica is required")
	}
	rt := &Router{
		cfg:       cfg,
		ring:      NewRing(cfg.Replicas, cfg.VNodes),
		byURL:     make(map[string]*replica, len(cfg.Replicas)),
		logger:    cfg.Logger,
		start:     time.Now(),
		counters:  make(map[string]int64),
		routed:    make(map[string]int64),
		tiers:     make(map[tierKey]int64),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	rt.hub = obs.NewTraceHub("soirouter", cfg.TraceMax)
	probeTimeout := cfg.ProbeInterval
	if probeTimeout <= 0 || probeTimeout > time.Second {
		probeTimeout = time.Second
	}
	for i, u := range rt.ring.Replicas() {
		ccfg := cfg.Client
		ccfg.BaseURL = strings.TrimRight(u, "/")
		rep := &replica{
			idx:    i,
			url:    ccfg.BaseURL,
			client: client.New(ccfg),
			probe:  &http.Client{Timeout: probeTimeout},
		}
		rep.ready.Store(true)
		rt.replicas = append(rt.replicas, rep)
		rt.byURL[u] = rep
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", rt.handleMap)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/explain", rt.handleExplain)
	mux.HandleFunc("GET /v1/traces/{id}", rt.handleTraces)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux = mux

	if cfg.ProbeInterval > 0 {
		go rt.probeLoop()
	} else {
		close(rt.probeDone)
	}
	return rt, nil
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the readiness prober. The handler keeps working.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.probeStop) })
	<-rt.probeDone
}

func (rt *Router) add(name string, n int64) {
	rt.mu.Lock()
	rt.counters[name] += n
	rt.mu.Unlock()
}

func (rt *Router) counter(name string) int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.counters[name]
}

// Counter reads one router counter by name (see routerCounters; 0 for
// unknown names). Exported for harnesses that assert on routing
// behaviour — the chaos campaign checks coalescing and failover moved.
func (rt *Router) Counter(name string) int64 { return rt.counter(name) }

// ReadyReplicas reports how many replicas the router currently considers
// ready. Exported for harnesses that restart replicas and must wait for
// the prober to readmit them before asserting on routing.
func (rt *Router) ReadyReplicas() int { return rt.readyCount() }

func (rt *Router) addRouted(url string) {
	rt.mu.Lock()
	rt.routed[url]++
	rt.mu.Unlock()
}

// tierKey indexes the per-replica answer-tier rollup.
type tierKey struct {
	replica string
	tier    string
}

func (rt *Router) addTier(url, tier string) {
	if tier == "" {
		return
	}
	rt.mu.Lock()
	rt.tiers[tierKey{url, tier}]++
	rt.mu.Unlock()
}

// TierCount reads one cell of the per-replica answer-tier rollup (0 for
// unknown pairs). Exported for harnesses.
func (rt *Router) TierCount(replicaURL, tier string) int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tiers[tierKey{replicaURL, tier}]
}

// probeLoop polls every replica's /readyz on the configured cadence. A
// 200 restores readiness (recovering a passively-unreadied replica), a
// 503 or transport failure suspends it.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-t.C:
		}
		for _, rep := range rt.replicas {
			ready := rt.probeOne(rep)
			if prev := rep.ready.Swap(ready); prev != ready && rt.logger != nil {
				rt.logger.Info("replica readiness changed",
					"replica", rep.url, "ready", ready)
			}
		}
	}
}

func (rt *Router) probeOne(rep *replica) bool {
	resp, err := rep.probe.Get(rep.url + "/readyz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markUnready is the passive path: a transport failure while routing
// takes the replica out of rotation immediately; the prober restores it.
func (rt *Router) markUnready(rep *replica) {
	if rep.ready.Swap(false) && rt.logger != nil {
		rt.logger.Warn("replica marked unready after transport failure", "replica", rep.url)
	}
}

// handleMap routes one submission. Synchronous submissions coalesce:
// concurrent identical requests (same canonical key) share one upstream
// call and receive the same reply bytes. Asynchronous submissions each
// create their own pollable job, so they route individually.
//
// Observability: the router adopts a well-formed incoming X-Request-ID
// (or mints one) and forwards it to the replica, so both processes' log
// lines join on one id; an incoming traceparent header (or a local
// TraceSample decision) starts a router span tree whose context flows
// through the replica attempts, making the replica's spans children of
// the routing spans in the stitched trace.
func (rt *Router) handleMap(w http.ResponseWriter, r *http.Request) {
	rt.add("requests", 1)
	reqID := r.Header.Get("X-Request-ID")
	if !obs.ValidRequestID(reqID) {
		reqID = fmt.Sprintf("rr%06d", rt.reqSeq.Add(1))
	}
	ctx := obs.WithRequestID(r.Context(), reqID)
	w.Header().Set("X-Request-ID", reqID)

	tc, traced := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	if !traced && rt.cfg.TraceSample > 0 &&
		rt.traceSeq.Add(1)%int64(rt.cfg.TraceSample) == 0 {
		tc, traced = obs.NewTraceContext(), true
	}
	var rootSpan *obs.ActiveSpan
	if traced {
		ctx = obs.WithTraceContext(ctx, tc)
		ctx, rootSpan = rt.hub.StartSpan(ctx, "router", "route POST /v1/map")
	}
	r = r.WithContext(ctx)

	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	var req service.MapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.add("requests_bad", 1)
		rootSpan.End(obs.KV{Key: "bad_request", Val: 1})
		rt.errorJSON(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if rt.cfg.StrashOff {
		// Normalize the request itself, not just the local key: the
		// forwarded submission must carry strash_off so the replica's
		// cache key matches the shard this router picked.
		if req.Options == nil {
			req.Options = &service.RequestOptions{}
		}
		req.Options.StrashOff = true
	}
	kStart := time.Now()
	key, err := service.RequestKey(r.Context(), &req)
	rt.hub.Record(obs.TraceContextFrom(r.Context()), "router", "request key", kStart, time.Since(kStart))
	if err != nil {
		rt.add("requests_bad", 1)
		rootSpan.End(obs.KV{Key: "bad_request", Val: 1})
		rt.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}

	var v *service.JobView
	var coalesced bool
	if req.Async {
		v, err = rt.route(r.Context(), key, &req)
	} else {
		flightStart := time.Now()
		v, coalesced, err = rt.flight.Do(r.Context(), key,
			func(ctx context.Context) (*service.JobView, error) {
				return rt.route(ctx, key, &req)
			})
		if coalesced {
			rt.add("jobs_coalesced", 1)
			// A follower rode the leader's upstream call; the leader's own
			// trace (if any) holds the routing spans, so record the wait
			// into THIS request's trace.
			rt.hub.Record(obs.TraceContextFrom(r.Context()), "router", "coalesced follower wait",
				flightStart, time.Since(flightStart), obs.KV{Key: "ok", Val: boolInt(err == nil)})
		}
	}
	if err != nil {
		rt.add("requests_failed", 1)
		rootSpan.End(obs.KV{Key: "failed", Val: 1})
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			rt.errorJSON(w, apiErr.Status, apiErr.Message)
			return
		}
		rt.errorJSON(w, http.StatusBadGateway, err.Error())
		return
	}
	rootSpan.End()
	code := http.StatusOK
	if v.State == service.JobQueued || v.State == service.JobRunning {
		code = http.StatusAccepted
	}
	rt.writeJSON(w, code, v)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// route tries the key's preference list in order: the ReplicationFactor
// preferred replicas first (ready ones before passively-unreadied ones),
// then every remaining replica as a last resort. The returned view's job
// id is namespaced "<replica-index>.<id>".
func (rt *Router) route(ctx context.Context, key string, req *service.MapRequest) (*service.JobView, error) {
	prefer := rt.ring.Prefer(key, len(rt.replicas))
	primary, rest := prefer[:rt.cfg.ReplicationFactor], prefer[rt.cfg.ReplicationFactor:]
	candidates := make([]*replica, 0, len(prefer))
	for _, group := range [][]string{primary, rest} {
		// Within each group, ready replicas go first but unready ones stay
		// listed: readiness is advisory and a probe may be stale.
		for _, u := range group {
			if rep := rt.byURL[u]; rep.ready.Load() {
				candidates = append(candidates, rep)
			}
		}
		for _, u := range group {
			if rep := rt.byURL[u]; !rep.ready.Load() {
				candidates = append(candidates, rep)
			}
		}
	}

	var lastErr error
	for i, rep := range candidates {
		if i > 0 {
			rt.add("routed_failovers", 1)
		}
		// The attempt span's context is what the client turns into the
		// forwarded traceparent header, so the replica's spans nest under
		// this attempt in the stitched trace.
		actx, span := rt.hub.StartSpan(ctx, "router", "attempt "+rep.url)
		v, err := rep.client.Map(actx, req)
		if err == nil {
			span.End(obs.KV{Key: "failover", Val: int64(i)})
			rt.addRouted(rep.url)
			// All view fix-ups happen here, before the singleflight layer
			// can share the pointer with coalesced followers.
			v.ID = strconv.Itoa(rep.idx) + "." + v.ID
			if v.Attribution != nil {
				rt.addTier(rep.url, v.Attribution.CacheTier)
				if v.Attribution.Replica == "" {
					v.Attribution.Replica = rep.url
				}
			}
			if tcc := obs.TraceContextFrom(ctx); tcc.Sampled && v.TraceID == "" {
				v.TraceID = tcc.TraceID
			}
			if rt.logger != nil && i > 0 {
				rt.logger.Info("failover succeeded", "replica", rep.url, "attempts", i+1)
			}
			return v, nil
		}
		span.End(obs.KV{Key: "error", Val: 1})
		rt.add("upstream_errors", 1)
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			// A definitive client error (4xx other than overload) would
			// fail identically on every replica: surface it now.
			if apiErr.Status < 500 && apiErr.Status != http.StatusTooManyRequests {
				return nil, err
			}
		} else if ctx.Err() == nil {
			// Transport failure with a live request context: the replica,
			// not the caller, is the problem.
			rt.markUnready(rep)
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		if rt.logger != nil {
			rt.logger.Warn("replica attempt failed", "replica", rep.url, "error", err)
		}
	}
	return nil, fmt.Errorf("all %d replicas failed: %w", len(candidates), lastErr)
}

// handleJob polls the replica encoded in the namespaced job id.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	idx, rest, ok := strings.Cut(id, ".")
	n, err := strconv.Atoi(idx)
	if !ok || err != nil || n < 0 || n >= len(rt.replicas) || rest == "" {
		rt.errorJSON(w, http.StatusNotFound, "unknown job id (want <replica>.<id>)")
		return
	}
	rep := rt.replicas[n]
	v, err := rep.client.Job(r.Context(), rest)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			rt.errorJSON(w, apiErr.Status, apiErr.Message)
			return
		}
		rt.errorJSON(w, http.StatusBadGateway, err.Error())
		return
	}
	v.ID = id
	rt.writeJSON(w, http.StatusOK, v)
}

// handleExplain proxies the attribution endpoint to the replica encoded
// in the namespaced job id, rewriting the id back to the router's
// namespace and filling in the replica URL when the replica left its
// identity blank.
func (rt *Router) handleExplain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	idx, rest, ok := strings.Cut(id, ".")
	n, err := strconv.Atoi(idx)
	if !ok || err != nil || n < 0 || n >= len(rt.replicas) || rest == "" {
		rt.errorJSON(w, http.StatusNotFound, "unknown job id (want <replica>.<id>)")
		return
	}
	rep := rt.replicas[n]
	ev, err := rep.client.Explain(r.Context(), rest)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			rt.errorJSON(w, apiErr.Status, apiErr.Message)
			return
		}
		rt.errorJSON(w, http.StatusBadGateway, err.Error())
		return
	}
	ev.ID = id
	if ev.Attribution != nil && ev.Attribution.Replica == "" {
		ev.Attribution.Replica = rep.url
	}
	rt.writeJSON(w, http.StatusOK, ev)
}

// handleTraces serves the stitched fleet-wide trace: the router's own
// spans plus the raw spans every replica recorded under the same trace
// id, rendered as one Perfetto-loadable Chrome trace-event JSON with a
// process track per process. A replica that is down or never saw the
// trace contributes nothing (fetch errors and 404s are skipped) — the
// trace degrades to whatever the reachable processes remember.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := rt.hub.Spans(id)
	for _, rep := range rt.replicas {
		rs, err := rep.client.TraceSpans(r.Context(), id)
		if err != nil {
			continue
		}
		spans = append(spans, rs...)
	}
	if len(spans) == 0 {
		rt.errorJSON(w, http.StatusNotFound, "unknown trace "+id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteSpans(w, spans); err != nil && rt.logger != nil {
		rt.logger.Warn("trace render failed", "trace_id", id, "error", err)
	}
}

func (rt *Router) readyCount() int {
	n := 0
	for _, rep := range rt.replicas {
		if rep.ready.Load() {
			n++
		}
	}
	return n
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(rt.start).Seconds()),
		"replicas":       len(rt.replicas),
		"replicas_ready": rt.readyCount(),
	})
}

// handleReadyz reports whether the router can do useful work: it is
// ready while at least one replica is.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.readyCount() == 0 {
		rt.errorJSON(w, http.StatusServiceUnavailable, "no ready replicas")
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// handleMetrics renders the router surface in the Prometheus text
// exposition format, same conventions as the replicas' /metrics.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	p := obs.NewPromWriter(w)
	build := obs.Build()

	p.Family("soirouter_build_info", "gauge", "Build identity of the running binary (constant 1).")
	p.Sample("soirouter_build_info", 1,
		"module", build.Module, "version", build.Version,
		"go_version", build.GoVersion, "revision", build.Revision)
	p.Family("soirouter_uptime_seconds", "gauge", "Seconds since the router started.")
	p.Sample("soirouter_uptime_seconds", time.Since(rt.start).Seconds())

	p.Family("soirouter_replicas", "gauge", "Configured replicas.")
	p.Sample("soirouter_replicas", float64(len(rt.replicas)))
	p.Family("soirouter_replicas_ready", "gauge", "Replicas currently passing readiness.")
	p.Sample("soirouter_replicas_ready", float64(rt.readyCount()))
	p.Family("soirouter_replica_ready", "gauge", "Per-replica readiness (1 ready, 0 not).")
	for _, rep := range rt.replicas {
		v := 0.0
		if rep.ready.Load() {
			v = 1
		}
		p.Sample("soirouter_replica_ready", v, "replica", rep.url)
	}

	rt.mu.Lock()
	counters := make(map[string]int64, len(rt.counters))
	for k, v := range rt.counters {
		counters[k] = v
	}
	routed := make(map[string]int64, len(rt.routed))
	for k, v := range rt.routed {
		routed[k] = v
	}
	tiers := make(map[tierKey]int64, len(rt.tiers))
	for k, v := range rt.tiers {
		tiers[k] = v
	}
	rt.mu.Unlock()

	for _, name := range routerCounters {
		pname := "soirouter_" + name + "_total"
		p.Family(pname, "counter", routerCounterHelp[name])
		p.Sample(pname, float64(counters[name]))
	}
	p.Family("soirouter_routed_total", "counter", "Submissions answered, by replica.")
	for _, u := range obs.SortedKeys(routed) {
		p.Sample("soirouter_routed_total", float64(routed[u]), "replica", u)
	}

	// Fleet attribution rollup: which cache tier answered, per replica
	// (from the Attribution block of each synchronous answer). Rendered
	// in sorted (replica, tier) order for a deterministic exposition.
	p.Family("soirouter_answer_tier_total", "counter",
		"Answered submissions by replica and cache tier (local, peer, miss, coalesced).")
	keys := make([]tierKey, 0, len(tiers))
	for k := range tiers {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].replica != keys[j].replica {
			return keys[i].replica < keys[j].replica
		}
		return keys[i].tier < keys[j].tier
	})
	for _, k := range keys {
		p.Sample("soirouter_answer_tier_total", float64(tiers[k]),
			"replica", k.replica, "tier", k.tier)
	}
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (rt *Router) errorJSON(w http.ResponseWriter, code int, msg string) {
	rt.writeJSON(w, code, map[string]string{"error": msg})
}
