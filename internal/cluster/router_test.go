package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soidomino/internal/client"
	"soidomino/internal/obs"
	"soidomino/internal/service"
)

// newReplicaTS spins up a real soimapd instance for the router to front.
func newReplicaTS(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, ts
}

func newRouterTS(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Client.MaxAttempts == 0 {
		cfg.Client.MaxAttempts = 2
	}
	if cfg.Client.BaseDelay == 0 {
		cfg.Client.BaseDelay = time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // probing off unless the test wants it
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

func postRouter(t *testing.T, ts *httptest.Server, body string) (int, service.JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, v
}

// TestRouterRoutesAndPolls drives the full path against real replicas:
// sync submissions finish, async submissions come back namespaced and
// poll to done through the router, and a malformed submission is
// rejected at the router without touching a replica.
func TestRouterRoutesAndPolls(t *testing.T) {
	_, tsA := newReplicaTS(t, service.Config{})
	_, tsB := newReplicaTS(t, service.Config{})
	rt, ts := newRouterTS(t, Config{Replicas: []string{tsA.URL, tsB.URL}})

	code, v := postRouter(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusOK || v.State != service.JobDone {
		t.Fatalf("sync submit: code %d, state %s (%s)", code, v.State, v.Error)
	}
	if !strings.Contains(v.ID, ".") {
		t.Fatalf("job id %q not namespaced", v.ID)
	}

	code, v = postRouter(t, ts, `{"circuit": "z4ml", "async": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: code %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for v.State != service.JobDone {
		if time.Now().After(deadline) {
			t.Fatalf("async job stuck in %s", v.State)
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if v.Result == nil {
		t.Fatal("done job has no result")
	}

	// Unknown circuit: the routing key cannot be derived, so the router
	// answers 400 itself.
	code, _ = postRouter(t, ts, `{"circuit": "no-such-circuit"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown circuit through router: code %d, want 400", code)
	}
	if n := rt.counter("requests_bad"); n != 1 {
		t.Fatalf("requests_bad = %d, want 1", n)
	}

	for _, id := range []string{"zz", "9.j1", "7", ".", "0."} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("job id %q: code %d, want 404", id, resp.StatusCode)
		}
	}
}

// TestRouterConsistentRouting: one circuit, many sequential submissions
// — every one lands on the same replica (the ring is doing the routing,
// not round-robin), and the first reply is a miss while the rest are
// cache hits there.
func TestRouterConsistentRouting(t *testing.T) {
	_, tsA := newReplicaTS(t, service.Config{})
	_, tsB := newReplicaTS(t, service.Config{})
	rt, ts := newRouterTS(t, Config{
		Replicas:          []string{tsA.URL, tsB.URL},
		ReplicationFactor: 1,
	})

	var owner string
	for i := 0; i < 5; i++ {
		code, v := postRouter(t, ts, `{"circuit": "count"}`)
		if code != http.StatusOK || v.State != service.JobDone {
			t.Fatalf("submit %d: code %d state %s", i, code, v.State)
		}
		rep := strings.SplitN(v.ID, ".", 2)[0]
		if owner == "" {
			owner = rep
		} else if rep != owner {
			t.Fatalf("submission %d routed to replica %s, earlier ones to %s", i, rep, owner)
		}
		if wantCached := i > 0; v.Cached != wantCached {
			t.Fatalf("submission %d cached=%t, want %t", i, v.Cached, wantCached)
		}
	}
	rt.mu.Lock()
	routedTo := len(rt.routed)
	rt.mu.Unlock()
	if routedTo != 1 {
		t.Fatalf("submissions spread over %d replicas, want 1", routedTo)
	}
}

// TestRouterPropagatesRequestIdentity: a forwarded submission carries
// the caller's well-formed X-Request-ID and a traceparent under the
// caller's trace id to the replica, and the response echoes the request
// id and backfills the trace id on the job view.
func TestRouterPropagatesRequestIdentity(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]string{}
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/map" {
			mu.Lock()
			seen["rid"] = r.Header.Get("X-Request-ID")
			seen["tp"] = r.Header.Get("traceparent")
			mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"id":"j1","state":"done","circuit":"mux","algorithm":"soi"}`)
	}))
	defer stub.Close()
	_, ts := newRouterTS(t, Config{Replicas: []string{stub.URL}})

	tc := obs.NewTraceContext()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/map", strings.NewReader(`{"circuit": "mux"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "caller-42")
	req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-42" {
		t.Fatalf("response X-Request-ID %q, want the caller's id echoed", got)
	}
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.TraceID != tc.TraceID {
		t.Fatalf("job view trace id %q, want %q backfilled by the router", v.TraceID, tc.TraceID)
	}

	mu.Lock()
	defer mu.Unlock()
	if seen["rid"] != "caller-42" {
		t.Fatalf("replica saw X-Request-ID %q, want the caller's id forwarded", seen["rid"])
	}
	fwd, ok := obs.ParseTraceparent(seen["tp"])
	if !ok || !fwd.Sampled || fwd.TraceID != tc.TraceID {
		t.Fatalf("replica saw traceparent %q, want sampled under trace %s", seen["tp"], tc.TraceID)
	}
	if fwd.SpanID == tc.SpanID {
		t.Fatal("forwarded span id equals the caller's: the replica must nest under the router's span")
	}
}

// TestRouterFailover: the primary for the key is dead; the submission
// must land on the survivor, the dead replica must be passively marked
// unready, and the failover counters must move.
func TestRouterFailover(t *testing.T) {
	_, tsLive := newReplicaTS(t, service.Config{})
	const deadURL = "http://127.0.0.1:1" // closed port: every attempt is a transport error
	rt, ts := newRouterTS(t, Config{
		Replicas:          []string{deadURL, tsLive.URL},
		ReplicationFactor: 2,
	})

	// Pick a circuit whose ring primary is the dead replica, so the
	// submission must fail over. The ring is deterministic, so one of
	// these circuits hashing to the dead primary is a fixed fact.
	var pick string
	for _, c := range []string{"mux", "z4ml", "count", "9symml", "t481", "c432", "f51m", "dalu"} {
		key, err := service.RequestKey(context.Background(), &service.MapRequest{Circuit: c})
		if err != nil {
			t.Fatal(err)
		}
		if rt.ring.Prefer(key, 1)[0] == deadURL {
			pick = c
			break
		}
	}
	if pick == "" {
		t.Fatal("no test circuit hashes to the dead primary; extend the candidate list")
	}

	for i := 0; i < 3; i++ {
		code, v := postRouter(t, ts, `{"circuit": "`+pick+`"}`)
		if code != http.StatusOK || v.State != service.JobDone {
			t.Fatalf("submit %d through failover: code %d state %s (%s)", i, code, v.State, v.Error)
		}
	}
	dead := rt.byURL[deadURL]
	if dead.ready.Load() {
		t.Fatal("dead replica still marked ready after transport failures")
	}
	if n := rt.counter("routed_failovers"); n < 1 {
		t.Fatalf("routed_failovers = %d, want >= 1", n)
	}
	if n := rt.counter("upstream_errors"); n < 1 {
		t.Fatalf("upstream_errors = %d, want >= 1", n)
	}
	// The router stays ready as long as one replica is.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz with one live replica = %d, want 200", resp.StatusCode)
	}
}

// TestRouterNonRetryableSurfacesImmediately: a deterministic 4xx from a
// replica would fail identically everywhere; the router must pass it
// through instead of hammering the other replicas with it.
func TestRouterNonRetryableSurfacesImmediately(t *testing.T) {
	var calls atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		io.WriteString(w, `{"error":"node cap exceeded"}`)
	}))
	defer fake.Close()
	fake2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		io.WriteString(w, `{"error":"node cap exceeded"}`)
	}))
	defer fake2.Close()

	_, ts := newRouterTS(t, Config{
		Replicas:          []string{fake.URL, fake2.URL},
		ReplicationFactor: 2,
		Client:            client.Config{MaxAttempts: 1},
	})
	code, v := postRouter(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("code %d (%+v), want the replica's 422 passed through", code, v)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d replica attempts for a non-retryable error, want 1", calls.Load())
	}
}

// TestRouterCoalescing: N concurrent identical sync submissions cross
// the router as ONE upstream call. The fake upstream blocks until every
// follower has attached, proving they coalesced rather than serialized.
func TestRouterCoalescing(t *testing.T) {
	const followers = 6
	var upstream atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if upstream.Add(1) == 1 {
			close(started)
		}
		<-release
		json.NewEncoder(w).Encode(service.JobView{
			ID: "j1", State: service.JobDone, Circuit: "mux", Algorithm: "soi",
		})
	}))
	defer fake.Close()

	rt, ts := newRouterTS(t, Config{Replicas: []string{fake.URL}, ReplicationFactor: 1})

	codes := make([]int, followers+1)
	views := make([]service.JobView, followers+1)
	var wg sync.WaitGroup
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], views[i] = postRouter(t, ts, `{"circuit": "mux"}`)
		}(i)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("no submission reached the upstream")
	}
	// jobs_coalesced only moves once the flight lands, so gate the release
	// on the flight's attached-waiter count instead.
	waiters := func() int64 {
		rt.flight.mu.Lock()
		defer rt.flight.mu.Unlock()
		for _, c := range rt.flight.calls {
			return c.waiters.Load()
		}
		return 0
	}
	deadline := time.Now().Add(5 * time.Second)
	for waiters() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("%d/%d followers attached after 5s", waiters(), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := rt.counter("jobs_coalesced"); n != followers {
		t.Fatalf("jobs_coalesced = %d, want %d", n, followers)
	}

	if n := upstream.Load(); n != 1 {
		t.Fatalf("upstream saw %d calls for %d identical submissions, want 1", n, followers+1)
	}
	want, _ := json.Marshal(views[0])
	for i := range views {
		if codes[i] != http.StatusOK {
			t.Fatalf("caller %d: code %d", i, codes[i])
		}
		got, _ := json.Marshal(views[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("caller %d got a different reply: %s vs %s", i, got, want)
		}
	}
}

// TestRouterProbeDrain: when a replica starts draining (readyz 503), the
// prober takes it out of rotation and new work lands on its peer; when
// it recovers, it returns to rotation.
func TestRouterProbeDrain(t *testing.T) {
	svcA, tsA := newReplicaTS(t, service.Config{})
	_, tsB := newReplicaTS(t, service.Config{})
	rt, _ := newRouterTS(t, Config{
		Replicas:      []string{tsA.URL, tsB.URL},
		ProbeInterval: 10 * time.Millisecond,
	})

	waitReady := func(url string, want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		rep := rt.byURL[url]
		for rep.ready.Load() != want {
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never became ready=%t", url, want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitReady(tsA.URL, true)
	svcA.BeginDrain()
	waitReady(tsA.URL, false)
	if rt.readyCount() < 1 {
		t.Fatal("draining one replica must not unready the cluster")
	}
}
