package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/unate"
)

func fig2Network() *logic.Network {
	n := logic.New("fig2")
	a := n.AddInput("A")
	b := n.AddInput("B")
	c := n.AddInput("C")
	d := n.AddInput("D")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	n.AddOutput("f", n.AddGate(logic.And, or3, d))
	return n
}

func buildFor(t *testing.T, n *logic.Network,
	algo func(*logic.Network, mapper.Options) (*mapper.Result, error)) (*mapper.Result, *Circuit) {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algo(u.Network, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Audit(); err != nil {
		t.Fatalf("audit: %v\n%s", err, c.Dump())
	}
	if err := c.CrossCheck(res); err != nil {
		t.Fatalf("cross-check: %v", err)
	}
	return res, c
}

// TestFigure2Realization pins the device-level structure of the paper's
// example gate (A+B+C)*D under the baseline mapper: 4 pulldown nMOS, one
// p-discharge on the stack's bottom node, precharge, keeper, inverter
// pair and an n-clock foot — 9 logic transistors + 1 discharge.
func TestFigure2Realization(t *testing.T) {
	_, c := buildFor(t, fig2Network(), mapper.DominoMap)
	if len(c.Gates) != 1 {
		t.Fatalf("%d gates, want 1", len(c.Gates))
	}
	if got := c.Stats.ByType[NPulldown]; got != 4 {
		t.Errorf("pulldown devices = %d, want 4", got)
	}
	if got := c.Stats.TDisch(); got != 1 {
		t.Errorf("discharge devices = %d, want 1", got)
	}
	if got := c.Stats.TLogic(); got != 9 {
		t.Errorf("TLogic = %d, want 9", got)
	}
	if got := c.Stats.TClock(); got != 3 { // precharge + foot + discharge
		t.Errorf("TClock = %d, want 3", got)
	}
	// The discharge device must drain the single internal junction.
	g := c.Gates[0]
	if len(g.Internal) != 1 || len(g.Discharge) != 1 {
		t.Fatalf("internal=%v discharge=%v", g.Internal, g.Discharge)
	}
	dd := c.Devices[g.Discharge[0]]
	if dd.Drain != g.Internal[0] {
		t.Errorf("discharge drains %q, want %q", dd.Drain, g.Internal[0])
	}
}

func TestFigure2SOIHasNoDischarge(t *testing.T) {
	_, c := buildFor(t, fig2Network(), mapper.SOIDominoMap)
	if got := c.Stats.TDisch(); got != 0 {
		t.Errorf("SOI discharge devices = %d, want 0\n%s", got, c.Dump())
	}
	if got := c.Stats.TTotal(); got != 9 {
		t.Errorf("SOI TTotal = %d, want 9", got)
	}
}

func TestInvertedInputRails(t *testing.T) {
	n := logic.New("xor")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.Xor, a, b))
	_, c := buildFor(t, n, mapper.SOIDominoMap)
	if len(c.InvertedInputs) != 2 {
		t.Errorf("inverted inputs = %v, want both a and b", c.InvertedInputs)
	}
	neg := 0
	for _, d := range c.Devices {
		if d.Type == NPulldown && d.Negated {
			neg++
		}
	}
	if neg != 2 {
		t.Errorf("negated pulldown devices = %d, want 2", neg)
	}
}

func TestFootlessInternalGates(t *testing.T) {
	// A two-level circuit: the second-level gate is fed only by the first
	// gate, so it is footless and its pulldown bottom is GND directly.
	n := logic.New("two")
	var ins []int
	for i := 0; i < 12; i++ {
		ins = append(ins, n.AddInput(string(rune('a'+i))))
	}
	// g1 and g2 are multi-fanout, so they must become gate roots and the
	// top gate's pulldown is entirely gate-driven.
	g1 := n.AddGate(logic.And, ins[:6]...)
	g2 := n.AddGate(logic.And, ins[6:]...)
	n.AddOutput("f", n.AddGate(logic.And, g1, g2))
	n.AddOutput("g1", g1)
	n.AddOutput("g2", g2)
	res, c := buildFor(t, n, mapper.SOIDominoMap)
	footless := 0
	for _, g := range c.Gates {
		if !g.Footed {
			footless++
			if g.Foot != GND {
				t.Errorf("footless gate %d has foot node %q", g.ID, g.Foot)
			}
		}
	}
	if footless == 0 {
		t.Logf("mapping: %s", res.Dump())
		t.Error("expected at least one footless internal gate")
	}
}

func TestDeviceString(t *testing.T) {
	d := Device{Type: NPulldown, Signal: "a", Negated: true, Drain: "x", Source: "y"}
	if s := d.String(); !strings.Contains(s, "!a") {
		t.Errorf("Device.String = %q", s)
	}
	dc := Device{Type: PPrecharge, Drain: "dyn", Source: VDD}
	if s := dc.String(); !strings.Contains(s, "CLK") {
		t.Errorf("clocked Device.String = %q", s)
	}
	if DeviceType(99).String() == "" {
		t.Error("unknown device type string empty")
	}
}

func TestClockedClassification(t *testing.T) {
	clocked := []DeviceType{NFoot, PPrecharge, PDischarge}
	unclocked := []DeviceType{NPulldown, PKeeper, InvP, InvN}
	for _, ty := range clocked {
		if !ty.Clocked() {
			t.Errorf("%s should be clocked", ty)
		}
	}
	for _, ty := range unclocked {
		if ty.Clocked() {
			t.Errorf("%s should not be clocked", ty)
		}
	}
}

func randomCircuit(rng *rand.Rand) *logic.Network {
	n := logic.New("rnd")
	nin := 4 + rng.Intn(4)
	var pool []int
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i, ngates := 0, 5+rng.Intn(20); i < ngates; i++ {
		op := ops[rng.Intn(len(ops))]
		k := 1
		if op.MaxFanin() != 1 {
			k = 2 + rng.Intn(2)
		}
		fanin := make([]int, k)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, n.AddGate(op, fanin...))
	}
	n.AddOutput("f", pool[len(pool)-1])
	n.AddOutput("g", pool[len(pool)-2])
	return n
}

// Property: realization of any mapped circuit passes the audit and agrees
// with the mapper's statistics, for all three algorithms.
func TestRealizationQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(31))}
	algos := []func(*logic.Network, mapper.Options) (*mapper.Result, error){
		mapper.DominoMap, mapper.RSMap, mapper.SOIDominoMap,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomCircuit(rng)
		d, err := decompose.Decompose(n)
		if err != nil {
			return false
		}
		u, err := unate.Convert(d)
		if err != nil {
			return false
		}
		for _, algo := range algos {
			res, err := algo(u.Network, mapper.DefaultOptions())
			if err != nil {
				return false
			}
			c, err := Build(res)
			if err != nil {
				return false
			}
			if c.Audit() != nil || c.CrossCheck(res) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestConstOutputsCarried(t *testing.T) {
	n := logic.New("c")
	a := n.AddInput("a")
	n.AddOutput("one", n.AddGate(logic.Or, a, n.AddGate(logic.Not, a)))
	n.AddOutput("fa", a)
	_, c := buildFor(t, n, mapper.DominoMap)
	if v, ok := c.ConstOutputs["one"]; !ok || !v {
		t.Errorf("ConstOutputs = %v", c.ConstOutputs)
	}
}

func TestDumpContainsDevices(t *testing.T) {
	_, c := buildFor(t, fig2Network(), mapper.DominoMap)
	dump := c.Dump()
	for _, want := range []string{"pdisch", "pprech", "pkeep", "invp", "invn", "nfoot"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}
