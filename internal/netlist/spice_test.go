package netlist

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
)

func TestWriteSpiceFig2(t *testing.T) {
	_, c := buildFor(t, fig2Network(), mapper.DominoMap)
	var buf bytes.Buffer
	if err := c.WriteSpice(&buf, DefaultSpiceOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		".SUBCKT fig2", "VDD GND CLK", ".ENDS fig2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("deck missing %q:\n%s", want, out)
		}
	}
	// One MOSFET line per device, each with a unique floating body node.
	mos := 0
	bodies := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "M") {
			continue
		}
		mos++
		fields := strings.Fields(line)
		if len(fields) < 8 {
			t.Fatalf("malformed MOSFET line %q", line)
		}
		body := fields[4]
		if bodies[body] {
			t.Errorf("body node %q shared between devices (must float per-device)", body)
		}
		bodies[body] = true
	}
	if mos != len(c.Devices) {
		t.Errorf("deck has %d MOSFETs, circuit has %d devices", mos, len(c.Devices))
	}
	// Clocked devices reference CLK as their gate node.
	if !strings.Contains(out, " CLK ") {
		t.Error("no clocked gate terminals in deck")
	}
}

func TestWriteSpiceInvertedRails(t *testing.T) {
	n := logic.New("xor")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.Xor, a, b))
	_, c := buildFor(t, n, mapper.SOIDominoMap)
	var buf bytes.Buffer
	if err := c.WriteSpice(&buf, DefaultSpiceOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a_n") || !strings.Contains(out, "b_n") {
		t.Errorf("deck missing complemented rails:\n%s", out)
	}
	if !strings.Contains(out, "MIP0") || !strings.Contains(out, "MIN0") {
		t.Error("deck missing input inverter devices")
	}
	// Without input inverters, the rails must still be referenced but not
	// driven.
	var buf2 bytes.Buffer
	opt := DefaultSpiceOptions()
	opt.EmitInputInverters = false
	if err := c.WriteSpice(&buf2, opt); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "MIP0") {
		t.Error("input inverters emitted despite being disabled")
	}
}

func TestWriteSpiceConstOutputs(t *testing.T) {
	n := logic.New("c")
	a := n.AddInput("a")
	n.AddOutput("one", n.AddGate(logic.Or, a, n.AddGate(logic.Not, a)))
	n.AddOutput("fa", a)
	_, c := buildFor(t, n, mapper.DominoMap)
	var buf bytes.Buffer
	if err := c.WriteSpice(&buf, DefaultSpiceOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Rone one VDD 0") {
		t.Errorf("constant output not tied to rail:\n%s", buf.String())
	}
}

// TestSpiceBodyNamespace is a regression test: an input named b0 must not
// short a device's floating body (bodies live in the fbody* namespace).
func TestSpiceBodyNamespace(t *testing.T) {
	n := logic.New("clash")
	a := n.AddInput("b0")
	b := n.AddInput("b1")
	n.AddOutput("f", n.AddGate(logic.And, a, b))
	_, c := buildFor(t, n, mapper.DominoMap)
	var buf bytes.Buffer
	if err := c.WriteSpice(&buf, DefaultSpiceOptions()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "M") {
			continue
		}
		body := strings.Fields(line)[4]
		if body == "b0" || body == "b1" {
			t.Fatalf("body node shorted to input: %q", line)
		}
		if !strings.HasPrefix(body, "fbody") {
			t.Fatalf("body node %q outside reserved namespace", body)
		}
	}
	// Inputs in the reserved namespace are rejected outright.
	n2 := logic.New("bad")
	x := n2.AddInput("fbody7")
	y := n2.AddInput("z")
	n2.AddOutput("f", n2.AddGate(logic.And, x, y))
	_, c2 := buildFor(t, n2, mapper.DominoMap)
	if err := c2.WriteSpice(&bytes.Buffer{}, DefaultSpiceOptions()); err == nil {
		t.Error("reserved-namespace input should be rejected")
	}
}

func TestSanitizeSpice(t *testing.T) {
	cases := map[string]string{
		"g3.dyn": "g3_dyn",
		"_g12":   "_g12",
		"a[0]":   "ax5b0x5d",
		"":       "_",
	}
	for in, want := range cases {
		if got := sanitizeSpice(in); got != want {
			t.Errorf("sanitizeSpice(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSpiceDeterministic(t *testing.T) {
	_, c := buildFor(t, fig2Network(), mapper.DominoMap)
	render := func() string {
		var buf bytes.Buffer
		if err := c.WriteSpice(&buf, DefaultSpiceOptions()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Error("SPICE export not deterministic")
	}
}

func TestSpiceGeometry(t *testing.T) {
	_, c := buildFor(t, fig2Network(), mapper.DominoMap)
	opt := DefaultSpiceOptions()
	opt.WidthN, opt.WidthP, opt.Length = 1.5, 3, 0.25
	var buf bytes.Buffer
	if err := c.WriteSpice(&buf, opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, fmt.Sprintf("W=%gU L=%gU", 1.5, 0.25)) {
		t.Error("nMOS geometry not applied")
	}
	if !strings.Contains(out, fmt.Sprintf("W=%gU L=%gU", 3.0, 0.25)) {
		t.Error("pMOS geometry not applied")
	}
}
