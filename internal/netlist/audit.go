package netlist

import (
	"fmt"

	"soidomino/internal/mapper"
)

// Violation is one machine-readable audit or cross-check failure. Kind is a
// stable category slug ("discharge-drain", "stats-tdisch", ...) so tooling
// — the differential fuzzer's failure manifests in particular — can bucket
// failures without parsing message text. Gate is the offending gate id, or
// -1 when the violation is not tied to a single gate.
type Violation struct {
	Gate   int
	Kind   string
	Detail string
}

func (v *Violation) Error() string { return "netlist: " + v.Detail }

func violation(gate int, kind, format string, args ...any) error {
	return &Violation{Gate: gate, Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

// Audit verifies device-level invariants of the circuit: node connectivity
// inside every gate, clocked devices with empty signal fields, discharge
// devices attached to real internal junctions, and per-gate device
// composition (exactly one precharge, one keeper, one inverter pair, a
// foot iff footed). Failures are returned as *Violation.
func (c *Circuit) Audit() error {
	for _, g := range c.Gates {
		internal := make(map[string]int, len(g.Internal)) // node -> terminal count
		for _, n := range g.Internal {
			internal[n] = 0
		}
		counts := make(map[DeviceType]int)
		dynTouched := make(map[string]bool, len(g.Dyns))
		all := make([]int, 0, len(g.Pulldown)+len(g.Discharge)+len(g.Overhead))
		all = append(all, g.Pulldown...)
		all = append(all, g.Discharge...)
		all = append(all, g.Overhead...)
		for _, id := range all {
			d := c.Devices[id]
			if d.Owner != g.ID {
				return violation(g.ID, "device-owner", "device %d owned by %d, listed under gate %d", id, d.Owner, g.ID)
			}
			counts[d.Type]++
			if d.Type.Clocked() && d.Signal != "" {
				return violation(g.ID, "clocked-signal", "clocked device %d carries signal %q", id, d.Signal)
			}
			if !d.Type.Clocked() && d.Signal == "" {
				return violation(g.ID, "missing-signal", "device %d has no gate signal", id)
			}
			for _, n := range []string{d.Drain, d.Source} {
				dynTouched[n] = true
				if _, ok := internal[n]; ok {
					internal[n]++
				}
			}
			if d.Type == PDischarge {
				if _, ok := internal[d.Drain]; !ok {
					return violation(g.ID, "discharge-drain", "discharge device %d drains non-internal node %q", id, d.Drain)
				}
				if d.Source != GND {
					return violation(g.ID, "discharge-source", "discharge device %d sources %q, want GND", id, d.Source)
				}
			}
		}
		if len(g.Dyns) == 0 || g.Dyn != g.Dyns[0] || g.Foot != g.Foots[0] {
			return violation(g.ID, "stage-alias", "gate %d stage aliases inconsistent", g.ID)
		}
		if g.OutKind == OutInverter && len(g.Dyns) != 1 {
			return violation(g.ID, "inverter-stages", "gate %d has %d stages with an inverter output", g.ID, len(g.Dyns))
		}
		for _, dyn := range g.Dyns {
			if !dynTouched[dyn] {
				return violation(g.ID, "dyn-unused", "gate %d dynamic node %q unused", g.ID, dyn)
			}
		}
		for n, refs := range internal {
			if refs < 2 {
				return violation(g.ID, "internal-terminals", "gate %d internal node %q has %d terminals", g.ID, n, refs)
			}
		}
		stages := len(g.Dyns)
		if counts[PPrecharge] != stages || counts[PKeeper] != stages {
			return violation(g.ID, "stage-overhead", "gate %d per-stage overhead wrong: %v", g.ID, counts)
		}
		if g.OutKind == OutInverter {
			if counts[InvP] != 1 || counts[InvN] != 1 || counts[OutP] != 0 || counts[OutN] != 0 {
				return violation(g.ID, "output-stage", "gate %d output stage wrong: %v", g.ID, counts)
			}
		} else {
			if counts[InvP] != 0 || counts[InvN] != 0 || counts[OutP] != stages || counts[OutN] != stages {
				return violation(g.ID, "output-stage", "gate %d output stage wrong: %v", g.ID, counts)
			}
		}
		wantFeet := 0
		for _, f := range g.Foots {
			if f != GND {
				wantFeet++
			}
		}
		if counts[NFoot] != wantFeet {
			return violation(g.ID, "feet", "gate %d has %d feet, want %d", g.ID, counts[NFoot], wantFeet)
		}
		if counts[NPulldown] < 1 {
			return violation(g.ID, "no-pulldown", "gate %d has no pulldown devices", g.ID)
		}
	}
	for name, node := range c.Outputs {
		found := false
		for _, g := range c.Gates {
			if g.Output == node {
				found = true
				break
			}
		}
		if !found {
			return violation(-1, "unknown-output", "output %q driven by unknown node %q", name, node)
		}
	}
	return nil
}

// CrossCheck compares the circuit's device counts against the mapper's
// reported statistics; any disagreement indicates a realization bug.
// Failures are returned as *Violation with a "stats-*" kind.
func (c *Circuit) CrossCheck(r *mapper.Result) error {
	if got, want := c.Stats.TLogic(), r.Stats.TLogic; got != want {
		return violation(-1, "stats-tlogic", "TLogic %d, mapper says %d", got, want)
	}
	if got, want := c.Stats.TDisch(), r.Stats.TDisch; got != want {
		return violation(-1, "stats-tdisch", "TDisch %d, mapper says %d", got, want)
	}
	if got, want := c.Stats.TClock(), r.Stats.TClock; got != want {
		return violation(-1, "stats-tclock", "TClock %d, mapper says %d", got, want)
	}
	if got, want := len(c.Gates), r.Stats.Gates; got != want {
		return violation(-1, "stats-gates", "%d gates, mapper says %d", got, want)
	}
	if got, want := len(c.InvertedInputs), r.Stats.InputInverters; got != want {
		return violation(-1, "stats-inverters", "%d inverted inputs, mapper says %d", got, want)
	}
	return nil
}
