// Package netlist realizes a mapped domino circuit at the transistor
// level: every device of every gate is enumerated — the nMOS pulldown
// network with named internal nodes, the clocked pMOS precharge, the
// output inverter pair, the pMOS keeper, the optional clocked nMOS foot,
// and one clocked pMOS pre-discharge device per PBE discharge point
// (paper fig. 2(c)). The result is the substrate for the switch-level SOI
// simulator (internal/soisim) and for device-count cross-checks against
// the mapper's statistics.
package netlist

import (
	"fmt"
	"strings"

	"soidomino/internal/mapper"
	"soidomino/internal/pbe"
	"soidomino/internal/sp"
)

// Rail node names shared by every gate.
const (
	GND = "GND"
	VDD = "VDD"
)

// DeviceType classifies a transistor.
type DeviceType uint8

const (
	// NPulldown is an nMOS device of the evaluation network.
	NPulldown DeviceType = iota
	// NFoot is the clocked nMOS foot (only on gates with PI-driven
	// pulldown inputs, or all gates under AlwaysFooted).
	NFoot
	// PPrecharge is the clocked pMOS that charges the dynamic node.
	PPrecharge
	// PKeeper is the feedback pMOS holding the dynamic node high.
	PKeeper
	// PDischarge is a clocked pMOS pulling an internal junction to ground
	// during precharge: the paper's solution to the PBE.
	PDischarge
	// InvP and InvN form the static output inverter.
	InvP
	InvN
	// OutP and OutN form the static NAND/NOR output stage of a compound
	// gate (the paper's solution 7).
	OutP
	OutN
)

var deviceNames = [...]string{
	NPulldown:  "nmos",
	NFoot:      "nfoot",
	PPrecharge: "pprech",
	PKeeper:    "pkeep",
	PDischarge: "pdisch",
	InvP:       "invp",
	InvN:       "invn",
	OutP:       "outp",
	OutN:       "outn",
}

func (d DeviceType) String() string {
	if int(d) < len(deviceNames) {
		return deviceNames[d]
	}
	return fmt.Sprintf("dev(%d)", uint8(d))
}

// Clocked reports whether devices of this type have their gate terminal on
// the clock network (the paper's T_clock population, fig. table III).
func (d DeviceType) Clocked() bool {
	return d == NFoot || d == PPrecharge || d == PDischarge
}

// PMOS reports whether devices of this type sit in the p-diffusion row.
func (d DeviceType) PMOS() bool {
	switch d {
	case PPrecharge, PKeeper, PDischarge, InvP, OutP:
		return true
	}
	return false
}

// Device is a single transistor. Exactly one of the gate-terminal fields
// applies: Clock-gated devices ignore Signal; the keeper and inverter are
// driven by the gate's own nodes (named in Signal).
type Device struct {
	ID    int
	Type  DeviceType
	Owner int // gate id

	// Signal is the name of the net driving the gate terminal ("" for
	// clocked devices). Negated marks a complemented primary-input rail.
	Signal  string
	Negated bool

	Drain, Source string // node names
}

func (d Device) String() string {
	g := "CLK"
	if !d.Type.Clocked() {
		g = d.Signal
		if d.Negated {
			g = "!" + g
		}
	}
	return fmt.Sprintf("%s g=%s d=%s s=%s", d.Type, g, d.Drain, d.Source)
}

// OutputKind names a gate's static output stage.
type OutputKind uint8

const (
	// OutInverter is the standard domino output inverter.
	OutInverter OutputKind = iota
	// OutNAND joins the dynamic nodes of a parallel-split compound gate.
	OutNAND
	// OutNOR joins the dynamic nodes of a series-split compound gate.
	OutNOR
)

func (k OutputKind) String() string {
	switch k {
	case OutNAND:
		return "nand"
	case OutNOR:
		return "nor"
	}
	return "inverter"
}

// GateRealization is the device-level view of one domino gate. Plain
// gates have one dynamic stage; compound gates (paper solution 7) have
// several, joined by a static NAND/NOR output stage.
type GateRealization struct {
	ID      int
	Output  string // output node / signal name
	OutKind OutputKind
	// Dyns and Foots name the per-stage dynamic and foot nodes; a stage's
	// foot is GND when unfooted. Dyn and Foot alias stage 0 for the
	// common single-stage case.
	Dyns  []string
	Foots []string
	Dyn   string
	Foot  string
	// Footed reports whether any stage has an n-clock foot.
	Footed bool
	Level  int
	// Pulldown, Discharge and Overhead index into Circuit.Devices.
	Pulldown  []int
	Discharge []int
	Overhead  []int
	// Internal lists the named internal nodes of the pulldown network and
	// the output stage.
	Internal []string
}

// Stats counts devices by type.
type Stats struct {
	ByType map[DeviceType]int
}

// TLogic is the paper's T_logic: every domino transistor except the
// p-discharge devices.
func (s Stats) TLogic() int {
	t := 0
	for ty, n := range s.ByType {
		if ty != PDischarge {
			t += n
		}
	}
	return t
}

// TDisch is the paper's T_disch.
func (s Stats) TDisch() int { return s.ByType[PDischarge] }

// TTotal is the paper's T_total.
func (s Stats) TTotal() int { return s.TLogic() + s.TDisch() }

// TClock counts clock-connected devices (paper table III).
func (s Stats) TClock() int {
	return s.ByType[PPrecharge] + s.ByType[NFoot] + s.ByType[PDischarge]
}

// Circuit is the transistor-level realization of a mapped result.
type Circuit struct {
	Name    string
	Devices []Device
	Gates   []GateRealization
	// Inputs are the primary-input signal names; InvertedInputs lists the
	// signals whose complemented rail is used by some pulldown device.
	Inputs         []string
	InvertedInputs []string
	// Outputs maps each primary-output name to the node driving it.
	Outputs map[string]string
	// ConstOutputs are outputs tied directly to a rail.
	ConstOutputs map[string]bool
	Stats        Stats
}

// Build realizes every gate of a mapped result at the transistor level.
func Build(r *mapper.Result) (*Circuit, error) {
	c := &Circuit{
		Name:         r.Name,
		Outputs:      make(map[string]string, len(r.OutputGate)),
		ConstOutputs: make(map[string]bool, len(r.ConstOutputs)),
		Stats:        Stats{ByType: make(map[DeviceType]int)},
	}
	for _, id := range r.Source.Inputs {
		c.Inputs = append(c.Inputs, r.Source.Nodes[id].Name)
	}
	inverted := make(map[string]bool)
	for _, g := range r.Gates {
		if err := c.addGate(g, inverted); err != nil {
			return nil, err
		}
	}
	for sig := range inverted {
		c.InvertedInputs = append(c.InvertedInputs, sig)
	}
	sortStrings(c.InvertedInputs)
	for name, gid := range r.OutputGate {
		c.Outputs[name] = r.Gates[gid].Output
	}
	for name, v := range r.ConstOutputs {
		c.ConstOutputs[name] = v
	}
	for _, d := range c.Devices {
		c.Stats.ByType[d.Type]++
	}
	return c, nil
}

// stagePlan is the per-stage realization input.
type stagePlan struct {
	tree       *sp.Tree
	discharges []pbe.Point
	footed     bool
}

func (c *Circuit) addGate(g *mapper.Gate, inverted map[string]bool) error {
	gr := GateRealization{
		ID:     g.ID,
		Output: g.Output,
		Footed: g.Footed,
		Level:  g.Level,
	}
	var stages []stagePlan
	if g.Compound == nil {
		stages = []stagePlan{{tree: g.Tree, discharges: g.Discharges, footed: g.Footed}}
	} else {
		if g.Compound.Kind == mapper.CompoundNOR {
			gr.OutKind = OutNOR
		} else {
			gr.OutKind = OutNAND
		}
		for _, st := range g.Compound.Stages {
			stages = append(stages, stagePlan{tree: st.Tree, discharges: st.Discharges, footed: st.Footed})
		}
	}

	b := &gateBuilder{c: c, gr: &gr, inverted: inverted, junctions: make(map[pbe.Point]string)}
	for si, st := range stages {
		dyn := fmt.Sprintf("g%d.dyn", g.ID)
		if g.Compound != nil {
			dyn = fmt.Sprintf("g%d.dyn%d", g.ID, si)
		}
		foot := GND
		if st.footed {
			foot = fmt.Sprintf("g%d.foot", g.ID)
			if g.Compound != nil {
				foot = fmt.Sprintf("g%d.foot%d", g.ID, si)
			}
		}
		gr.Dyns = append(gr.Dyns, dyn)
		gr.Foots = append(gr.Foots, foot)

		// Pulldown network with named junctions.
		b.emit(st.tree, dyn, foot)

		// Discharge devices at the PBE analysis' points.
		for _, pt := range st.discharges {
			node, ok := b.junctions[pt]
			if !ok {
				return fmt.Errorf("netlist: gate %d: discharge point %v has no junction node", g.ID, pt)
			}
			id := c.device(Device{Type: PDischarge, Owner: g.ID, Drain: node, Source: GND})
			gr.Discharge = append(gr.Discharge, id)
		}

		// Per-stage overhead: precharge, keeper, optional foot.
		gr.Overhead = append(gr.Overhead,
			c.device(Device{Type: PPrecharge, Owner: g.ID, Drain: dyn, Source: VDD}),
			c.device(Device{Type: PKeeper, Owner: g.ID, Signal: gr.Output, Drain: dyn, Source: VDD}),
		)
		if st.footed {
			gr.Overhead = append(gr.Overhead,
				c.device(Device{Type: NFoot, Owner: g.ID, Drain: foot, Source: GND}))
		}
	}
	gr.Dyn, gr.Foot = gr.Dyns[0], gr.Foots[0]

	// Static output stage.
	switch gr.OutKind {
	case OutInverter:
		gr.Overhead = append(gr.Overhead,
			c.device(Device{Type: InvP, Owner: g.ID, Signal: gr.Dyn, Drain: gr.Output, Source: VDD}),
			c.device(Device{Type: InvN, Owner: g.ID, Signal: gr.Dyn, Drain: gr.Output, Source: GND}),
		)
	case OutNAND:
		// Parallel pMOS pull-up, series nMOS pull-down.
		prev := gr.Output
		for si, dyn := range gr.Dyns {
			gr.Overhead = append(gr.Overhead,
				c.device(Device{Type: OutP, Owner: g.ID, Signal: dyn, Drain: gr.Output, Source: VDD}))
			next := GND
			if si < len(gr.Dyns)-1 {
				next = fmt.Sprintf("g%d.os%d", g.ID, si)
				gr.Internal = append(gr.Internal, next)
			}
			gr.Overhead = append(gr.Overhead,
				c.device(Device{Type: OutN, Owner: g.ID, Signal: dyn, Drain: prev, Source: next}))
			prev = next
		}
	case OutNOR:
		// Series pMOS pull-up, parallel nMOS pull-down.
		prev := VDD
		for si, dyn := range gr.Dyns {
			next := gr.Output
			if si < len(gr.Dyns)-1 {
				next = fmt.Sprintf("g%d.os%d", g.ID, si)
				gr.Internal = append(gr.Internal, next)
			}
			gr.Overhead = append(gr.Overhead,
				c.device(Device{Type: OutP, Owner: g.ID, Signal: dyn, Drain: next, Source: prev}),
				c.device(Device{Type: OutN, Owner: g.ID, Signal: dyn, Drain: gr.Output, Source: GND}))
			prev = next
		}
	}
	c.Gates = append(c.Gates, gr)
	return nil
}

func (c *Circuit) device(d Device) int {
	d.ID = len(c.Devices)
	c.Devices = append(c.Devices, d)
	return d.ID
}

// gateBuilder walks one pulldown tree emitting devices and junction nodes.
type gateBuilder struct {
	c         *Circuit
	gr        *GateRealization
	inverted  map[string]bool
	junctions map[pbe.Point]string
}

func (b *gateBuilder) emit(t *sp.Tree, top, bottom string) {
	switch t.Kind {
	case sp.Leaf:
		if t.Negated && t.FromPI {
			b.inverted[t.Signal] = true
		}
		id := b.c.device(Device{
			Type: NPulldown, Owner: b.gr.ID,
			Signal: t.Signal, Negated: t.Negated,
			Drain: top, Source: bottom,
		})
		b.gr.Pulldown = append(b.gr.Pulldown, id)
	case sp.Parallel:
		for _, child := range t.Children {
			b.emit(child, top, bottom)
		}
	case sp.Series:
		prev := top
		for i, child := range t.Children {
			next := bottom
			if i < len(t.Children)-1 {
				next = fmt.Sprintf("g%d.n%d", b.gr.ID, len(b.gr.Internal))
				b.gr.Internal = append(b.gr.Internal, next)
				b.junctions[pbe.Point{Group: t, Below: i}] = next
			}
			b.emit(child, prev, next)
			prev = next
		}
	}
}

// Dump renders the whole circuit, one device per line.
func (c *Circuit) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "circuit %s: %d gates, %d devices\n", c.Name, len(c.Gates), len(c.Devices))
	for _, g := range c.Gates {
		fmt.Fprintf(&sb, "gate %d out=%s dyn=%s footed=%v level=%d\n",
			g.ID, g.Output, g.Dyn, g.Footed, g.Level)
		for _, id := range g.Pulldown {
			fmt.Fprintf(&sb, "  %s\n", c.Devices[id])
		}
		for _, id := range g.Discharge {
			fmt.Fprintf(&sb, "  %s\n", c.Devices[id])
		}
		for _, id := range g.Overhead {
			fmt.Fprintf(&sb, "  %s\n", c.Devices[id])
		}
	}
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
