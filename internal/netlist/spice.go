package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// SpiceOptions configures the SPICE deck export.
type SpiceOptions struct {
	// NMOSModel and PMOSModel name the .MODEL cards referenced by the
	// devices (supplied by the user's SOI PDK).
	NMOSModel, PMOSModel string
	// WidthN/WidthP/Length are emitted device geometries in micrometers.
	// The mapper does not size transistors (the paper defers sizing to a
	// technology-specific post-pass), so uniform geometry is emitted.
	WidthN, WidthP, Length float64
	// EmitInputInverters adds a static CMOS inverter per complemented
	// primary-input rail used by the pulldown networks.
	EmitInputInverters bool
}

// DefaultSpiceOptions returns geometry placeholders and model names
// matching a generic partially-depleted SOI process.
func DefaultSpiceOptions() SpiceOptions {
	return SpiceOptions{
		NMOSModel:          "nsoi",
		PMOSModel:          "psoi",
		WidthN:             0.4,
		WidthP:             0.8,
		Length:             0.1,
		EmitInputInverters: true,
	}
}

// WriteSpice renders the circuit as a SPICE subcircuit. Every transistor
// is emitted as a 4-terminal MOSFET whose body node is unique and
// floating — the defining property of partially-depleted SOI and the
// origin of the parasitic bipolar effect the mapper works around. The
// subcircuit ports are the primary inputs, the primary outputs, VDD, GND
// and CLK.
func (c *Circuit) WriteSpice(w io.Writer, opt SpiceOptions) error {
	bw := bufio.NewWriter(w)
	name := sanitizeSpice(c.Name)
	fmt.Fprintf(bw, "* SOI domino netlist for %s\n", c.Name)
	fmt.Fprintf(bw, "* %d gates, %d devices; every body node is floating (SOI)\n",
		len(c.Gates), len(c.Devices))
	ports := make([]string, 0, len(c.Inputs)+len(c.Outputs)+3)
	for _, in := range c.Inputs {
		ports = append(ports, sanitizeSpice(in))
	}
	outs := make([]string, 0, len(c.Outputs))
	for o := range c.Outputs {
		outs = append(outs, o)
	}
	sortStrings(outs)
	for _, o := range outs {
		ports = append(ports, sanitizeSpice(o))
	}
	ports = append(ports, "VDD", "GND", "CLK")
	// Floating body nodes live in the reserved fbody* namespace; reject
	// circuits whose signal names would collide with it.
	for _, in := range c.Inputs {
		if strings.HasPrefix(sanitizeSpice(in), "fbody") {
			return fmt.Errorf("netlist: input %q collides with the reserved fbody* namespace", in)
		}
	}
	fmt.Fprintf(bw, ".SUBCKT %s %s\n", name, strings.Join(ports, " "))

	for _, d := range c.Devices {
		gateNode := "CLK"
		if !d.Type.Clocked() {
			gateNode = sanitizeSpice(d.Signal)
			if d.Negated {
				gateNode = invRail(d.Signal)
			}
		}
		model, width := opt.NMOSModel, opt.WidthN
		if d.Type.PMOS() {
			model, width = opt.PMOSModel, opt.WidthP
		}
		fmt.Fprintf(bw, "M%d %s %s %s fbody%d %s W=%gU L=%gU\n",
			d.ID, sanitizeSpice(d.Drain), gateNode, sanitizeSpice(d.Source),
			d.ID, model, width, opt.Length)
	}

	if opt.EmitInputInverters {
		for i, sig := range c.InvertedInputs {
			in := sanitizeSpice(sig)
			out := invRail(sig)
			fmt.Fprintf(bw, "MIP%d %s %s VDD fbodyip%d %s W=%gU L=%gU\n",
				i, out, in, i, opt.PMOSModel, opt.WidthP, opt.Length)
			fmt.Fprintf(bw, "MIN%d %s %s GND fbodyin%d %s W=%gU L=%gU\n",
				i, out, in, i, opt.NMOSModel, opt.WidthN, opt.Length)
		}
	}
	for o, node := range c.ConstOutputs {
		rail := "GND"
		if node {
			rail = "VDD"
		}
		fmt.Fprintf(bw, "R%s %s %s 0\n", sanitizeSpice(o), sanitizeSpice(o), rail)
	}
	fmt.Fprintf(bw, ".ENDS %s\n", name)
	return bw.Flush()
}

// invRail names the complemented rail of a primary input.
func invRail(sig string) string { return sanitizeSpice(sig) + "_n" }

// sanitizeSpice rewrites node names into SPICE-safe identifiers.
func sanitizeSpice(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '.':
			b.WriteByte('_')
		default:
			fmt.Fprintf(&b, "x%02x", r)
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
