package netlist

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
)

// stackedStacks is the profitable compound target used across the suite.
func stackedStacks() *logic.Network {
	n := logic.New("stacked")
	stack := func(base byte) int {
		var br []int
		for b := 0; b < 3; b++ {
			x := n.AddInput(string(base + byte(3*b)))
			y := n.AddInput(string(base + byte(3*b+1)))
			z := n.AddInput(string(base + byte(3*b+2)))
			br = append(br, n.AddGate(logic.And, n.AddGate(logic.And, x, y), z))
		}
		return n.AddGate(logic.Or, n.AddGate(logic.Or, br[0], br[1]), br[2])
	}
	n.AddOutput("f", n.AddGate(logic.And, stack('a'), stack('j')))
	return n
}

// TestCompoundSpiceDeviceModels is a regression test: every device in the
// deck must carry the model its type demands — in particular the static
// output stage's pull-ups (OutP) are pMOS.
func TestCompoundSpiceDeviceModels(t *testing.T) {
	res, err := mapper.DominoMap(stackedStacks(), mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := mapper.CompoundTransform(res, mapper.DefaultCompoundOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Converted != 1 {
		t.Fatalf("precondition: %+v", cs)
	}
	c, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSpice(&buf, DefaultSpiceOptions()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	checked := 0
	sawOutP := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "M") || strings.HasPrefix(line, "MI") {
			continue
		}
		fields := strings.Fields(line)
		id, err := strconv.Atoi(fields[0][1:])
		if err != nil {
			t.Fatalf("device line %q: %v", line, err)
		}
		wantModel := "nsoi"
		if c.Devices[id].Type.PMOS() {
			wantModel = "psoi"
		}
		if c.Devices[id].Type == OutP {
			sawOutP = true
		}
		if fields[5] != wantModel {
			t.Fatalf("device %d (%s) emitted as %s, want %s: %q",
				id, c.Devices[id].Type, fields[5], wantModel, line)
		}
		checked++
	}
	if checked != len(c.Devices) {
		t.Fatalf("checked %d of %d devices", checked, len(c.Devices))
	}
	if !sawOutP {
		t.Fatal("no OutP device in the compound deck")
	}
}

func TestPMOSClassification(t *testing.T) {
	pmos := []DeviceType{PPrecharge, PKeeper, PDischarge, InvP, OutP}
	nmos := []DeviceType{NPulldown, NFoot, InvN, OutN}
	for _, ty := range pmos {
		if !ty.PMOS() {
			t.Errorf("%s should be pMOS", ty)
		}
	}
	for _, ty := range nmos {
		if ty.PMOS() {
			t.Errorf("%s should be nMOS", ty)
		}
	}
}
