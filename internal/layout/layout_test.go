package layout

import (
	"math/rand"
	"strings"
	"testing"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/unate"
)

func TestChainSeries(t *testing.T) {
	// A pure series chain a-b-c is a single trail: no breaks.
	edges := [][2]string{{"dyn", "n0"}, {"n0", "n1"}, {"n1", "gnd"}}
	r := chain(edges)
	if r.Devices != 3 || r.Breaks != 0 {
		t.Errorf("series chain = %+v", r)
	}
}

func TestChainParallel(t *testing.T) {
	// Three devices in parallel between dyn and gnd: degrees 3 and 3, so
	// 2 odd vertices -> 1 trail -> 0 breaks... wait: deg(dyn)=3,
	// deg(gnd)=3 -> odd=2 -> max(1,1)=1 trail: chainable (dyn-gnd-dyn-gnd).
	edges := [][2]string{{"dyn", "gnd"}, {"dyn", "gnd"}, {"dyn", "gnd"}}
	if r := chain(edges); r.Breaks != 0 {
		t.Errorf("3-parallel = %+v, want 0 breaks", r)
	}
	// Four in parallel: all even degrees -> Euler circuit -> 0 breaks.
	edges = append(edges, [2]string{"dyn", "gnd"})
	if r := chain(edges); r.Breaks != 0 {
		t.Errorf("4-parallel = %+v, want 0 breaks", r)
	}
}

func TestChainStar(t *testing.T) {
	// Four devices all touching node x (a star): odd = 4 -> 2 trails -> 1
	// break.
	edges := [][2]string{{"x", "a"}, {"x", "b"}, {"x", "c"}, {"x", "d"}}
	if r := chain(edges); r.Breaks != 1 {
		t.Errorf("star = %+v, want 1 break", r)
	}
}

func TestChainDisconnected(t *testing.T) {
	// Two separate pairs: two trails -> one break between them.
	edges := [][2]string{{"a", "b"}, {"c", "d"}}
	if r := chain(edges); r.Breaks != 1 {
		t.Errorf("disconnected = %+v, want 1 break", r)
	}
}

func TestChainEmpty(t *testing.T) {
	if r := chain(nil); r.Devices != 0 || r.Breaks != 0 {
		t.Errorf("empty = %+v", r)
	}
}

func mapNet(t *testing.T, n *logic.Network,
	algo func(*logic.Network, mapper.Options) (*mapper.Result, error)) *mapper.Result {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.DefaultOptions()
	opt.BaselineStackOrder = mapper.OrderHashed
	res, err := algo(u.Network, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func fig2Network() *logic.Network {
	n := logic.New("fig2")
	a := n.AddInput("A")
	b := n.AddInput("B")
	c := n.AddInput("C")
	d := n.AddInput("D")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	n.AddOutput("f", n.AddGate(logic.And, or3, d))
	return n
}

func TestDischargeWidensPRow(t *testing.T) {
	// The fig. 2 gate under the baseline carries one p-discharge device;
	// under the SOI mapping it does not. The p-row must be wider in the
	// baseline by at least a device pitch.
	base, err := Analyze(mapNet(t, fig2Network(), mapper.DominoMap), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	soi, err := Analyze(mapNet(t, fig2Network(), mapper.SOIDominoMap), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bp := base.Gates[0].PRow
	sp := soi.Gates[0].PRow
	if bp.Devices != sp.Devices+1 {
		t.Errorf("p-row devices: base %d, soi %d", bp.Devices, sp.Devices)
	}
	if bp.Width(DefaultParams()) <= sp.Width(DefaultParams()) {
		t.Errorf("baseline p-row %.1f should be wider than SOI's %.1f",
			bp.Width(DefaultParams()), sp.Width(DefaultParams()))
	}
	// For this gate the n-row dominates the cell width either way, so the
	// total area only has to be no better for the baseline.
	if base.Area < soi.Area {
		t.Errorf("baseline area %.1f below SOI %.1f", base.Area, soi.Area)
	}
	if !strings.Contains(base.String(), "pitch units") {
		t.Errorf("String = %q", base.String())
	}
}

func TestAreaAcrossSuite(t *testing.T) {
	// On a random circuit, SOI's diffusion-aware area never exceeds the
	// baseline's by more than its transistor surplus would explain, and
	// every estimate is positive and finite.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := randomCircuit(rng)
		base, err := Analyze(mapNet(t, n, mapper.DominoMap), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		soi, err := Analyze(mapNet(t, n, mapper.SOIDominoMap), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if base.Area <= 0 || soi.Area <= 0 {
			t.Fatal("non-positive area")
		}
		if soi.Area > base.Area*1.2 {
			t.Errorf("trial %d: SOI area %.1f far above baseline %.1f", trial, soi.Area, base.Area)
		}
	}
}

func randomCircuit(rng *rand.Rand) *logic.Network {
	n := logic.New("rnd")
	var pool []int
	for i := 0; i < 6; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor}
	for i := 0; i < 20; i++ {
		op := ops[rng.Intn(len(ops))]
		fan := []int{pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]}
		pool = append(pool, n.AddGate(op, fan...))
	}
	n.AddOutput("f", pool[len(pool)-1])
	n.AddOutput("g", pool[len(pool)-3])
	return n
}
