// Package layout estimates the diffusion-level area of a mapped domino
// circuit. The paper measures area in transistors; real layout cost also
// depends on diffusion sharing: devices placed side by side share a
// diffusion region when consecutive devices in the row connect at the
// shared terminal, and every failure to chain costs a diffusion break
// (roughly half a device pitch of extra width).
//
// For one gate's nMOS network (pulldown devices, foot, and the n-halves
// of the output stage all share the n-diffusion row) the minimum number
// of breaks follows from Euler-trail theory: a connected multigraph can
// be partitioned into max(1, odd/2) edge-disjoint trails, where odd is
// the number of odd-degree vertices; separate connected components chain
// independently. Discharge devices are pMOS and share the p-row with the
// precharge/keeper/output pull-ups — so every p-discharge transistor both
// widens the p-row and tends to break it (its source is GND while its
// neighbours' terminals are internal nodes), which is exactly why the
// paper prices them above plain logic devices.
package layout

import (
	"fmt"

	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
)

// Params converts device and break counts into normalized area units.
type Params struct {
	// DevicePitch is the width of one transistor in the row.
	DevicePitch float64
	// BreakPitch is the extra width of one diffusion break.
	BreakPitch float64
}

// DefaultParams uses a half-pitch break, the usual first-order rule.
func DefaultParams() Params { return Params{DevicePitch: 1.0, BreakPitch: 0.5} }

// GateArea is the per-gate breakdown.
type GateArea struct {
	GateID int
	NRow   RowEstimate // pulldown + feet + output-stage nMOS
	PRow   RowEstimate // precharge + keeper + discharge + output-stage pMOS
	Area   float64
}

// RowEstimate summarizes one diffusion row.
type RowEstimate struct {
	Devices int
	Breaks  int
}

// Width returns the row width in pitch units.
func (r RowEstimate) Width(p Params) float64 {
	return p.DevicePitch*float64(r.Devices) + p.BreakPitch*float64(r.Breaks)
}

// Analysis is the whole-circuit result.
type Analysis struct {
	Gates []GateArea
	// Area is the total over gates: max(n-row, p-row) width per gate.
	Area float64
	// NBreaks and PBreaks are the totals per row type.
	NBreaks, PBreaks int
}

func (a *Analysis) String() string {
	return fmt.Sprintf("area %.1f pitch units over %d gates (%d n-breaks, %d p-breaks)",
		a.Area, len(a.Gates), a.NBreaks, a.PBreaks)
}

// Analyze estimates diffusion-aware area for a mapped circuit by building
// its transistor netlist and chaining each gate's rows.
func Analyze(res *mapper.Result, p Params) (*Analysis, error) {
	circ, err := netlist.Build(res)
	if err != nil {
		return nil, err
	}
	return AnalyzeCircuit(circ, p), nil
}

// AnalyzeCircuit estimates diffusion-aware area for an existing netlist.
func AnalyzeCircuit(circ *netlist.Circuit, p Params) *Analysis {
	if p.DevicePitch <= 0 {
		p = DefaultParams()
	}
	a := &Analysis{}
	for _, g := range circ.Gates {
		var nEdges, pEdges [][2]string
		all := make([]int, 0, len(g.Pulldown)+len(g.Discharge)+len(g.Overhead))
		all = append(all, g.Pulldown...)
		all = append(all, g.Discharge...)
		all = append(all, g.Overhead...)
		for _, id := range all {
			d := circ.Devices[id]
			edge := [2]string{d.Drain, d.Source}
			if d.Type.PMOS() {
				pEdges = append(pEdges, edge)
			} else {
				nEdges = append(nEdges, edge)
			}
		}
		ga := GateArea{
			GateID: g.ID,
			NRow:   chain(nEdges),
			PRow:   chain(pEdges),
		}
		nw, pw := ga.NRow.Width(p), ga.PRow.Width(p)
		if nw > pw {
			ga.Area = nw
		} else {
			ga.Area = pw
		}
		a.Area += ga.Area
		a.NBreaks += ga.NRow.Breaks
		a.PBreaks += ga.PRow.Breaks
		a.Gates = append(a.Gates, ga)
	}
	return a
}

// chain computes the minimum diffusion breaks for one row: the devices
// form a multigraph over circuit nodes; each connected component needs
// max(1, odd/2) trails, and breaks = total trails - 1.
func chain(edges [][2]string) RowEstimate {
	if len(edges) == 0 {
		return RowEstimate{}
	}
	deg := make(map[string]int)
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(x, y string) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	edgeCount := make(map[string]int) // component root -> edges
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
		union(e[0], e[1])
	}
	for _, e := range edges {
		edgeCount[find(e[0])]++
	}
	oddByComp := make(map[string]int)
	for node, d := range deg {
		if d%2 == 1 {
			oddByComp[find(node)]++
		}
	}
	trails := 0
	for root := range edgeCount {
		odd := oddByComp[root]
		t := odd / 2
		if t < 1 {
			t = 1
		}
		trails += t
	}
	return RowEstimate{Devices: len(edges), Breaks: trails - 1}
}
