package mapper

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/tuple"
	"soidomino/internal/unate"
)

// fig3Network is the paper's figure 3 example: OR(AND(a,b), AND(c,d)).
func fig3Network() *logic.Network {
	n := logic.New("fig3")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	n.AddOutput("f", n.AddGate(logic.Or, n.AddGate(logic.And, a, b), n.AddGate(logic.And, c, d)))
	return n
}

// fig2Network is the paper's running example (A+B+C)*D.
func fig2Network() *logic.Network {
	n := logic.New("fig2")
	a := n.AddInput("A")
	b := n.AddInput("B")
	c := n.AddInput("C")
	d := n.AddInput("D")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	n.AddOutput("f", n.AddGate(logic.And, or3, d))
	return n
}

func fig3Options() Options {
	opt := DefaultOptions()
	opt.MaxWidth, opt.MaxHeight = 4, 4
	return opt
}

// TestFigure3Tuples pins the DP tuple table of the paper's worked example:
// the AND nodes carry {1,2} structures of cost 2 and form gates of cost 7;
// the OR node's table holds the {2,2} solution of cost 4 and the
// {2,1} both-gates solution of cost 16, and the final gate costs 9.
func TestFigure3Tuples(t *testing.T) {
	n := fig3Network()
	// The network is already decomposed and unate.
	e := &engine{
		ctx:        context.Background(),
		cfg:        config{Options: fig3Options(), algorithm: "test"},
		net:        n,
		tables:     make([]tuple.Table, n.Len()),
		gateChoice: make([]tuple.Choice, n.Len()),
		formed:     make([]tuple.Tuple, n.Len()),
		hasGate:    make([]bool, n.Len()),
	}
	e.fanout = n.ComputeFanout()
	e.outRefs = n.OutputRefs()
	if err := e.process(); err != nil {
		t.Fatal(err)
	}
	andNode := 4 // first AND gate
	at := e.tables[andNode]
	if at.Keys() != 1 {
		t.Fatalf("AND table has %d keys, want 1", at.Keys())
	}
	andTuple, ok := at[tuple.Key{W: 1, H: 2}]
	if !ok || andTuple.NTrans != 2 {
		t.Fatalf("AND {1,2} tuple = %+v, ok=%v (want cost 2)", andTuple, ok)
	}
	if cost := e.tupleCost(e.formed[andNode]); cost != 7 {
		t.Errorf("AND gate cost = %d, want 7 (paper: {1,1,7})", cost)
	}
	orNode := 6
	ot := e.tables[orNode]
	if tu, ok := ot[tuple.Key{W: 2, H: 2}]; !ok || e.tupleCost(tu) != 4 {
		t.Errorf("OR {2,2} tuple cost = %d, ok=%v, want 4", e.tupleCost(tu), ok)
	}
	if tu, ok := ot[tuple.Key{W: 2, H: 1}]; !ok || e.tupleCost(tu) != 16 {
		t.Errorf("OR {2,1} both-gates tuple cost = %d, ok=%v, want 16", e.tupleCost(tu), ok)
	}
	if cost := e.tupleCost(e.formed[orNode]); cost != 9 {
		t.Errorf("final gate cost = %d, want 9 (paper: {1,1,9})", cost)
	}
	if e.gateChoice[orNode].Key != (tuple.Key{W: 2, H: 2}) {
		t.Errorf("gate formed from %v, want {2,2}", e.gateChoice[orNode].Key)
	}
}

// TestFigure3EndToEnd checks the mapped netlist: one 9-transistor footed
// gate with no discharge devices.
func TestFigure3EndToEnd(t *testing.T) {
	for _, f := range []func(*logic.Network, Options) (*Result, error){DominoMap, RSMap, SOIDominoMap} {
		res, err := f(fig3Network(), fig3Options())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Audit(); err != nil {
			t.Fatal(err)
		}
		if res.Stats.Gates != 1 || res.Stats.TLogic != 9 || res.Stats.TDisch != 0 {
			t.Errorf("%s: stats = %s, want 1 gate, Tlogic 9, Tdisch 0", res.Algorithm, res.Stats)
		}
		if got := res.Gates[0].Tree.String(); got != "a*b+c*d" && got != "c*d+a*b" {
			t.Errorf("%s: tree = %q", res.Algorithm, got)
		}
	}
}

// TestFigure2StackOrder pins the paper's central claim on its running
// example: the bulk baseline leaves the parallel stack on top of D and
// needs a discharge transistor; the SOI mapper grounds the stack and needs
// none. RS_Map fixes the baseline by post-reordering.
func TestFigure2StackOrder(t *testing.T) {
	opt := DefaultOptions()

	base, err := DominoMap(fig2Network(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.TDisch != 1 {
		t.Errorf("Domino_Map Tdisch = %d, want 1:\n%s", base.Stats.TDisch, base.Dump())
	}
	if got := base.Gates[0].Tree.String(); got != "(A+B+C)*D" {
		t.Errorf("Domino_Map tree = %q, want (A+B+C)*D", got)
	}

	rs, err := RSMap(fig2Network(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.TDisch != 0 {
		t.Errorf("RS_Map Tdisch = %d, want 0", rs.Stats.TDisch)
	}

	soi, err := SOIDominoMap(fig2Network(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if soi.Stats.TDisch != 0 {
		t.Errorf("SOI_Domino_Map Tdisch = %d, want 0:\n%s", soi.Stats.TDisch, soi.Dump())
	}
	if got := soi.Gates[0].Tree.String(); got != "D*(A+B+C)" {
		t.Errorf("SOI tree = %q, want D*(A+B+C)", got)
	}
	for _, r := range []*Result{base, rs, soi} {
		if err := r.Audit(); err != nil {
			t.Errorf("%s audit: %v", r.Algorithm, err)
		}
	}
}

// mapAll runs the full pipeline (decompose, unate, map) for one algorithm.
func mapAll(t *testing.T, n *logic.Network, algo func(*logic.Network, Options) (*Result, error), opt Options) *Result {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algo(u.Network, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Audit(); err != nil {
		t.Fatalf("%s audit: %v\n%s", res.Algorithm, err, res.Dump())
	}
	return res
}

// checkMappedEquivalent exhaustively compares the mapped circuit against
// the original network.
func checkMappedEquivalent(t *testing.T, orig *logic.Network, res *Result) {
	t.Helper()
	k := len(orig.Inputs)
	if k > 14 {
		t.Fatalf("too many inputs for exhaustive check: %d", k)
	}
	in := make([]bool, k)
	vals := make(map[string]bool, k)
	for i := 0; i < 1<<k; i++ {
		for j := 0; j < k; j++ {
			in[j] = i&(1<<j) != 0
			vals[orig.Nodes[orig.Inputs[j]].Name] = in[j]
		}
		want, err := orig.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Eval(vals)
		if err != nil {
			t.Fatal(err)
		}
		for oi, out := range orig.Outputs {
			if got[out.Name] != want[oi] {
				t.Fatalf("%s: output %q wrong for input %0*b: got %v want %v",
					res.Algorithm, out.Name, k, i, got[out.Name], want[oi])
			}
		}
	}
}

func TestMappedEquivalenceSmall(t *testing.T) {
	n := logic.New("mix")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddGate(logic.Xor, a, b)
	m := n.AddGate(logic.And, n.AddGate(logic.Or, x, c), n.AddGate(logic.Nand, b, d))
	n.AddOutput("f", m)
	n.AddOutput("g", n.AddGate(logic.Nor, x, d))
	for _, algo := range []func(*logic.Network, Options) (*Result, error){DominoMap, RSMap, SOIDominoMap} {
		res := mapAll(t, n, algo, DefaultOptions())
		checkMappedEquivalent(t, n, res)
	}
}

func TestMultiFanoutGateSharedOnce(t *testing.T) {
	// g = a&b feeds three gates; it must be materialized exactly once.
	n := logic.New("shared")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	e := n.AddInput("e")
	g := n.AddGate(logic.And, a, b)
	n.AddOutput("x", n.AddGate(logic.And, g, c))
	n.AddOutput("y", n.AddGate(logic.Or, g, d))
	n.AddOutput("z", n.AddGate(logic.And, g, e))
	res := mapAll(t, n, SOIDominoMap, DefaultOptions())
	count := 0
	for _, gate := range res.Gates {
		for _, leaf := range gate.Tree.Leaves() {
			if leaf.GateRef >= 0 {
				count++
			}
		}
	}
	shared := 0
	seen := map[int]bool{}
	for _, gate := range res.Gates {
		if seen[gate.NodeID] {
			shared++
		}
		seen[gate.NodeID] = true
	}
	if shared != 0 {
		t.Errorf("%d duplicate gates for the same node", shared)
	}
	if count != 3 {
		t.Errorf("%d gate-driven leaves, want 3 (one per fanout)", count)
	}
	checkMappedEquivalent(t, n, res)
}

func TestOutputOnInputGetsBuffer(t *testing.T) {
	n := logic.New("thru")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("fa", a)
	n.AddOutput("fab", n.AddGate(logic.And, a, b))
	res := mapAll(t, n, SOIDominoMap, DefaultOptions())
	checkMappedEquivalent(t, n, res)
	gid, ok := res.OutputGate["fa"]
	if !ok {
		t.Fatal("no gate for pass-through output")
	}
	if res.Gates[gid].Pulldown() != 1 {
		t.Errorf("buffer gate pulldown = %d, want 1", res.Gates[gid].Pulldown())
	}
}

func TestConstOutput(t *testing.T) {
	n := logic.New("const")
	a := n.AddInput("a")
	n.AddOutput("one", n.AddGate(logic.Or, a, n.AddGate(logic.Not, a)))
	n.AddOutput("fa", a)
	res := mapAll(t, n, DominoMap, DefaultOptions())
	if v, ok := res.ConstOutputs["one"]; !ok || !v {
		t.Errorf("constant output not detected: %v", res.ConstOutputs)
	}
	checkMappedEquivalent(t, n, res)
}

func TestAlwaysFootedAddsFeet(t *testing.T) {
	opt := DefaultOptions()
	res1 := mapAll(t, fig3Network(), DominoMap, opt)
	opt.AlwaysFooted = true
	res2 := mapAll(t, fig3Network(), DominoMap, opt)
	if res2.Stats.TClock <= res1.Stats.TClock-1 {
		t.Errorf("AlwaysFooted Tclock %d vs %d", res2.Stats.TClock, res1.Stats.TClock)
	}
	for _, g := range res2.Gates {
		if !g.Footed {
			t.Error("AlwaysFooted left an unfooted gate")
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	n := fig3Network()
	bad := []Options{
		{MaxWidth: 1, MaxHeight: 8, ClockWeight: 1, DepthWeight: 1},
		{MaxWidth: 5, MaxHeight: 1, ClockWeight: 1, DepthWeight: 1},
		{MaxWidth: 5, MaxHeight: 8, ClockWeight: 0, DepthWeight: 1},
		{MaxWidth: 5, MaxHeight: 8, ClockWeight: 1, DepthWeight: 0, Objective: Depth},
	}
	for i, opt := range bad {
		if _, err := DominoMap(n, opt); err == nil {
			t.Errorf("options case %d should fail", i)
		}
	}
}

func TestRejectsNonUnate(t *testing.T) {
	n := logic.New("bad")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("f", n.AddGate(logic.Xor, a, b))
	if _, err := SOIDominoMap(n, DefaultOptions()); err == nil {
		t.Error("mapper should reject non-unate networks")
	}
}

func TestObjectiveString(t *testing.T) {
	if Area.String() != "area" || Depth.String() != "depth" {
		t.Error("Objective.String broken")
	}
}

// randomCircuit builds a random multi-level circuit with limited inputs so
// exhaustive equivalence stays cheap.
func randomCircuit(rng *rand.Rand) *logic.Network {
	n := logic.New("rnd")
	nin := 4 + rng.Intn(4)
	var pool []int
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	ngates := 6 + rng.Intn(24)
	for i := 0; i < ngates; i++ {
		op := ops[rng.Intn(len(ops))]
		k := 1
		if op.MaxFanin() != 1 {
			k = 2 + rng.Intn(2)
		}
		fanin := make([]int, k)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, n.AddGate(op, fanin...))
	}
	for i := 0; i < 2+rng.Intn(2); i++ {
		n.AddOutput("o"+string(rune('0'+i)), pool[len(pool)-1-rng.Intn(len(pool)/2)])
	}
	return n
}

// Property: all three mappers produce functionally equivalent, auditable
// netlists on random circuits, and the SOI mapper never needs more
// discharge transistors than the baseline.
func TestMapperEquivalenceQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(77))}
	opt := DefaultOptions()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomCircuit(rng)
		d, err := decompose.Decompose(n)
		if err != nil {
			return false
		}
		u, err := unate.Convert(d)
		if err != nil {
			return false
		}
		tt, err := n.TruthTable()
		if err != nil {
			return false
		}
		var disch [3]int
		for ai, algo := range []func(*logic.Network, Options) (*Result, error){DominoMap, RSMap, SOIDominoMap} {
			res, err := algo(u.Network, opt)
			if err != nil {
				return false
			}
			if res.Audit() != nil {
				return false
			}
			disch[ai] = res.Stats.TDisch
			k := len(n.Inputs)
			vals := make(map[string]bool, k)
			for i := 0; i < 1<<k; i++ {
				for j := 0; j < k; j++ {
					vals[n.Nodes[n.Inputs[j]].Name] = i&(1<<j) != 0
				}
				got, err := res.Eval(vals)
				if err != nil {
					return false
				}
				for oi, out := range n.Outputs {
					if got[out.Name] != tt[i][oi] {
						return false
					}
				}
			}
		}
		// RS and SOI must not need more discharges than the baseline.
		return disch[1] <= disch[0] && disch[2] <= disch[0]
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// treeCircuit builds a fanout-free circuit (every gate feeds exactly one
// other gate), where the DP's discharge prediction must equal the netlist
// count exactly.
func treeCircuit(rng *rand.Rand, leaves int) *logic.Network {
	n := logic.New("tree")
	var pool []int
	for i := 0; i < leaves; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i%26))+string(rune('0'+i/26))))
	}
	for len(pool) > 1 {
		i := rng.Intn(len(pool))
		x := pool[i]
		pool = append(pool[:i], pool[i+1:]...)
		j := rng.Intn(len(pool))
		y := pool[j]
		op := logic.And
		if rng.Intn(2) == 0 {
			op = logic.Or
		}
		pool[j] = n.AddGate(op, x, y)
	}
	n.AddOutput("f", pool[0])
	return n
}

// TestDPPredictsDischarges: on fanout-free unate circuits, the discharge
// count accumulated by the SOI DP equals the number of discharge devices in
// the built netlist.
func TestDPPredictsDischarges(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	opt := DefaultOptions()
	for trial := 0; trial < 30; trial++ {
		n := treeCircuit(rng, 6+rng.Intn(20))
		res, err := SOIDominoMap(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct the DP totals for the root gate.
		e := &engine{
			ctx:        context.Background(),
			cfg:        config{Options: opt, algorithm: "x", trackDischarges: true, reorderStacks: true},
			net:        n,
			tables:     make([]tuple.Table, n.Len()),
			gateChoice: make([]tuple.Choice, n.Len()),
			formed:     make([]tuple.Tuple, n.Len()),
			hasGate:    make([]bool, n.Len()),
		}
		e.fanout = n.ComputeFanout()
		e.outRefs = n.OutputRefs()
		if err := e.process(); err != nil {
			t.Fatal(err)
		}
		root := n.Outputs[0].Node
		if n.Nodes[root].Op == logic.Input {
			continue
		}
		predicted := e.formed[root].NDisch
		if predicted != res.Stats.TDisch {
			t.Fatalf("trial %d: DP predicts %d discharges, netlist has %d\n%s",
				trial, predicted, res.Stats.TDisch, res.Dump())
		}
	}
}

// TestDepthObjective verifies the depth mapper reports consistent levels
// and that SOI trades discharges into the cost.
func TestDepthObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := randomCircuit(rng)
	opt := DefaultOptions()
	opt.Objective = Depth

	base := mapAll(t, n, DominoMap, opt)
	soi := mapAll(t, n, SOIDominoMap, opt)
	checkMappedEquivalent(t, n, base)
	checkMappedEquivalent(t, n, soi)
	if base.Stats.Levels < 1 || soi.Stats.Levels < 1 {
		t.Error("levels must be at least 1")
	}
	// The SOI combined cost (weighted levels + discharges) must not exceed
	// the baseline's on the same network.
	bc := opt.DepthWeight*base.Stats.Levels + base.Stats.TDisch
	sc := opt.DepthWeight*soi.Stats.Levels + soi.Stats.TDisch
	if sc > bc {
		t.Errorf("SOI depth cost %d > baseline %d", sc, bc)
	}
}

// TestClockWeightReducesClockLoad: with k=2, clock-connected transistor
// count must not increase relative to k=1 under the SOI mapper.
func TestClockWeightReducesClockLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := randomCircuit(rng)
	opt1 := DefaultOptions()
	opt2 := DefaultOptions()
	opt2.ClockWeight = 2
	r1 := mapAll(t, n, SOIDominoMap, opt1)
	r2 := mapAll(t, n, SOIDominoMap, opt2)
	if r2.Stats.TClock > r1.Stats.TClock {
		t.Errorf("k=2 Tclock %d > k=1 Tclock %d", r2.Stats.TClock, r1.Stats.TClock)
	}
	checkMappedEquivalent(t, n, r2)
}

func TestResultEvalMissingInput(t *testing.T) {
	res := mapAll(t, fig3Network(), DominoMap, fig3Options())
	if _, err := res.Eval(map[string]bool{"a": true}); err == nil {
		t.Error("Eval with missing inputs should fail")
	}
}

func TestStatsString(t *testing.T) {
	res := mapAll(t, fig3Network(), DominoMap, fig3Options())
	if res.Stats.String() == "" {
		t.Error("Stats.String empty")
	}
	if res.Dump() == "" {
		t.Error("Dump empty")
	}
}
