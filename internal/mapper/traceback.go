package mapper

import (
	"fmt"

	"soidomino/internal/logic"
	"soidomino/internal/pbe"
	"soidomino/internal/sp"
	"soidomino/internal/tuple"
)

// traceback rebuilds the chosen solution as concrete gates. Multi-fanout
// gates are materialized exactly once, so the statistics counted from the
// netlist are exact even where the per-cone DP costs overlap.
func (e *engine) traceback() (*Result, error) {
	b := &builder{
		e: e,
		res: &Result{
			Name:         e.net.Name,
			Algorithm:    e.cfg.algorithm,
			Options:      e.cfg.Options,
			OutputGate:   make(map[string]int),
			ConstOutputs: make(map[string]bool),
			Source:       e.net,
		},
		gateOf: make(map[int]int),
	}
	for _, out := range e.net.Outputs {
		node := e.net.Nodes[out.Node]
		switch node.Op {
		case logic.Const0, logic.Const1:
			b.res.ConstOutputs[out.Name] = node.Op == logic.Const1
		default:
			gid, err := b.gate(out.Node)
			if err != nil {
				return nil, err
			}
			b.res.OutputGate[out.Name] = gid
		}
	}
	b.res.computeStats()
	return b.res, nil
}

type builder struct {
	e      *engine
	res    *Result
	gateOf map[int]int // unate node id -> gate id
}

// gate materializes the completed domino gate for a node, memoized.
func (b *builder) gate(nodeID int) (int, error) {
	if gid, ok := b.gateOf[nodeID]; ok {
		return gid, nil
	}
	var tree *sp.Tree
	predicted := 0 // leaf buffer gates trivially carry no discharges
	switch {
	case b.e.isLeaf(nodeID):
		// A primary output sitting directly on an input literal gets a
		// single-transistor buffer gate.
		tree = b.leafTree(nodeID)
	case b.e.hasGate[nodeID]:
		ch := b.e.gateChoice[nodeID]
		t, ok := b.chosenTuple(ch)
		if !ok {
			return 0, fmt.Errorf("mapper: node %d has no tuple for choice %+v", ch.Node, ch)
		}
		predicted = t.OwnDisch
		var err error
		tree, err = b.structure(ch)
		if err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("mapper: no gate solution for node %d", nodeID)
	}
	switch b.e.cfg.rearrangePost {
	case rearrangeTop:
		tree = pbe.Rearrange(tree)
		predicted = -1
	case rearrangeDeep:
		tree = pbe.RearrangeDeep(tree)
		predicted = -1
	}
	level := 1
	for _, leaf := range tree.Leaves() {
		if leaf.GateRef >= 0 && b.res.Gates[leaf.GateRef].Level+1 > level {
			level = b.res.Gates[leaf.GateRef].Level + 1
		}
	}
	discharges := pbe.GateDischargePoints(tree)
	if b.e.cfg.SequenceAware {
		discharges = pbe.PruneUnexcitable(tree, discharges)
	}
	gid := len(b.res.Gates)
	g := &Gate{
		ID:                  gid,
		Output:              b.gateName(nodeID),
		NodeID:              nodeID,
		Tree:                tree,
		Discharges:          discharges,
		PredictedDischarges: predicted,
		Footed:              b.e.cfg.AlwaysFooted || tree.HasPI(),
		Level:               level,
	}
	b.res.Gates = append(b.res.Gates, g)
	b.gateOf[nodeID] = gid
	return gid, nil
}

// chosenTuple resolves a Choice to its tuple record.
func (b *builder) chosenTuple(ch tuple.Choice) (tuple.Tuple, bool) {
	if ch.Pareto {
		return b.e.fronts[ch.Node].Lookup(ch.Front, ch.Index)
	}
	t, ok := b.e.tables[ch.Node][ch.Key]
	return t, ok
}

// structure rebuilds the SP tree for the chosen tuple of a node.
func (b *builder) structure(ch tuple.Choice) (*sp.Tree, error) {
	t, ok := b.chosenTuple(ch)
	if !ok {
		return nil, fmt.Errorf("mapper: node %d has no tuple for choice %+v", ch.Node, ch)
	}
	switch t.Deriv.Op {
	case tuple.DerivLeaf:
		return b.leafTree(t.Deriv.Leaf), nil
	case tuple.DerivOr:
		a, err := b.resolve(t.Deriv.A)
		if err != nil {
			return nil, err
		}
		c, err := b.resolve(t.Deriv.B)
		if err != nil {
			return nil, err
		}
		return sp.NewParallel(a, c), nil
	case tuple.DerivAnd:
		a, err := b.resolve(t.Deriv.A)
		if err != nil {
			return nil, err
		}
		c, err := b.resolve(t.Deriv.B)
		if err != nil {
			return nil, err
		}
		if t.Deriv.TopIsA {
			return sp.NewSeries(a, c), nil
		}
		return sp.NewSeries(c, a), nil
	}
	return nil, fmt.Errorf("mapper: node %d tuple for %+v has unexpected derivation %d",
		ch.Node, ch, t.Deriv.Op)
}

// resolve materializes one child Choice as a subtree.
func (b *builder) resolve(ch tuple.Choice) (*sp.Tree, error) {
	if ch.Gate {
		gid, err := b.gate(ch.Node)
		if err != nil {
			return nil, err
		}
		return sp.NewLeaf(b.res.Gates[gid].Output, false, gid), nil
	}
	if b.e.isLeaf(ch.Node) {
		return b.leafTree(ch.Node), nil
	}
	return b.structure(ch)
}

// leafTree builds the transistor for a primary input or complemented
// primary-input literal.
func (b *builder) leafTree(nodeID int) *sp.Tree {
	node := b.e.net.Nodes[nodeID]
	if node.Op == logic.Not {
		in := b.e.net.Nodes[node.Fanin[0]]
		return sp.NewLeaf(in.Name, true, -1)
	}
	return sp.NewLeaf(node.Name, false, -1)
}

// gateName produces a collision-free output signal name for a gate.
func (b *builder) gateName(nodeID int) string {
	name := fmt.Sprintf("_g%d", nodeID)
	for b.e.net.NodeByName(name) >= 0 {
		name += "_"
	}
	return name
}
