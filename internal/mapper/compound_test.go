package mapper

import (
	"math/rand"
	"testing"

	"soidomino/internal/logic"
	"soidomino/internal/sp"
)

// checkMappedEquivalentSampled compares mapped vs source on random vectors
// for circuits too wide for exhaustive checking.
func checkMappedEquivalentSampled(t *testing.T, orig *logic.Network, res *Result, vectors int) {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))
	k := len(orig.Inputs)
	in := make([]bool, k)
	vals := make(map[string]bool, k)
	for v := 0; v < vectors; v++ {
		for j := 0; j < k; j++ {
			in[j] = rng.Intn(2) == 1
			vals[orig.Nodes[orig.Inputs[j]].Name] = in[j]
		}
		want, err := orig.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Eval(vals)
		if err != nil {
			t.Fatal(err)
		}
		for oi, out := range orig.Outputs {
			if got[out.Name] != want[oi] {
				t.Fatalf("%s: output %q wrong on sampled vector %d", res.Algorithm, out.Name, v)
			}
		}
	}
}

// stackedStacks builds f = (a*b*c + d*e*f + g*h*i) * (j*k*l + m*n*o + p*q*r):
// two wide parallel stacks in series. As a single domino gate the top
// stack's six potential points plus its bottom node need discharge
// devices (7 total); as a NOR-joined compound pair both stacks sit on
// ground and need none.
func stackedStacks() *logic.Network {
	n := logic.New("stacked")
	stack := func(base byte) int {
		var branches []int
		for b := 0; b < 3; b++ {
			x := n.AddInput(string(base + byte(3*b)))
			y := n.AddInput(string(base + byte(3*b+1)))
			z := n.AddInput(string(base + byte(3*b+2)))
			branches = append(branches, n.AddGate(logic.And, n.AddGate(logic.And, x, y), z))
		}
		return n.AddGate(logic.Or, n.AddGate(logic.Or, branches[0], branches[1]), branches[2])
	}
	p1 := stack('a')
	p2 := stack('j')
	n.AddOutput("f", n.AddGate(logic.And, p1, p2))
	return n
}

func TestCompoundTransformSeriesSplit(t *testing.T) {
	opt := DefaultOptions()
	res, err := DominoMap(stackedStacks(), opt) // source order: first stack on top
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Gates != 1 || res.Stats.TDisch != 7 {
		t.Fatalf("precondition: %s (want 1 gate, 7 discharges)\n%s", res.Stats, res.Dump())
	}
	before := res.Stats

	cs, err := CompoundTransform(res, DefaultCompoundOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Converted != 1 {
		t.Fatalf("converted = %d, want 1", cs.Converted)
	}
	if err := res.Audit(); err != nil {
		t.Fatalf("audit: %v\n%s", err, res.Dump())
	}
	g := res.Gates[0]
	if g.Compound == nil || g.Compound.Kind != CompoundNOR || len(g.Compound.Stages) != 2 {
		t.Fatalf("compound info = %+v", g.Compound)
	}
	if res.Stats.TDisch != 0 {
		t.Errorf("compound pair still needs %d discharges", res.Stats.TDisch)
	}
	if res.Stats.TTotal >= before.TTotal {
		t.Errorf("Ttotal %d -> %d: conversion should save transistors", before.TTotal, res.Stats.TTotal)
	}
	if cs.Saved != before.TTotal-res.Stats.TTotal {
		t.Errorf("reported saving %d, stats moved by %d", cs.Saved, before.TTotal-res.Stats.TTotal)
	}
	// Function preserved.
	checkMappedEquivalentSampled(t, stackedStacks(), res, 3000)
}

func TestCompoundTransformSkipsUnprofitable(t *testing.T) {
	// Fig. 4(b): only 2 discharges; the conversion overhead (~5) exceeds
	// the saving, so the gate stays plain.
	res, err := DominoMap(fig2Network(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := CompoundTransform(res, DefaultCompoundOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Converted != 0 {
		t.Errorf("converted %d gates; none are profitable", cs.Converted)
	}
	if err := res.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestCompoundForcedNANDSplit(t *testing.T) {
	// A wide parallel-rooted gate: cost-wise the split never pays (the
	// branches are grounded either way), but SplitWiderThan forces it.
	n := logic.New("wide")
	var branches []int
	for i := 0; i < 4; i++ {
		a := n.AddInput(string(rune('a' + 2*i)))
		b := n.AddInput(string(rune('b' + 2*i)))
		branches = append(branches, n.AddGate(logic.And, a, b))
	}
	or1 := n.AddGate(logic.Or, branches[0], branches[1])
	or2 := n.AddGate(logic.Or, branches[2], branches[3])
	n.AddOutput("f", n.AddGate(logic.Or, or1, or2))

	res, err := DominoMap(n, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Gates != 1 || res.Gates[0].Tree.Kind != sp.Parallel {
		t.Fatalf("precondition: %s", res.Dump())
	}
	opt := DefaultCompoundOptions()
	opt.SplitWiderThan = 2
	cs, err := CompoundTransform(res, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Converted != 1 {
		t.Fatalf("forced split did not happen: %+v", cs)
	}
	g := res.Gates[0]
	if g.Compound.Kind != CompoundNAND {
		t.Fatalf("kind = %v, want NAND", g.Compound.Kind)
	}
	for _, st := range g.Compound.Stages {
		if st.Tree.Width() > 3 {
			t.Errorf("stage width %d not reduced", st.Tree.Width())
		}
	}
	if err := res.Audit(); err != nil {
		t.Fatal(err)
	}
	checkMappedEquivalent(t, n, res)
}

func TestCompoundIdempotent(t *testing.T) {
	res, err := DominoMap(stackedStacks(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompoundTransform(res, DefaultCompoundOptions()); err != nil {
		t.Fatal(err)
	}
	after := res.Stats
	cs, err := CompoundTransform(res, DefaultCompoundOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Converted != 0 || res.Stats != after {
		t.Error("second transform should be a no-op")
	}
}

func TestCompoundKindString(t *testing.T) {
	if CompoundNAND.String() != "nand" || CompoundNOR.String() != "nor" {
		t.Error("CompoundKind.String broken")
	}
}

func TestCompoundDumpMentionsKind(t *testing.T) {
	res, err := DominoMap(stackedStacks(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompoundTransform(res, DefaultCompoundOptions()); err != nil {
		t.Fatal(err)
	}
	if dump := res.Dump(); !contains(dump, "compound-nor(2)") {
		t.Errorf("dump missing compound marker:\n%s", dump)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
