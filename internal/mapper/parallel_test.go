package mapper

import (
	"bytes"
	"context"
	"errors"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"soidomino/internal/logic"
	"soidomino/internal/obs"
	"soidomino/internal/tuple"
)

// mapAlgo dispatches to one of the public mappers by name, the same axis
// the par-determinism gate sweeps.
func mapAlgo(ctx context.Context, algo string, n *logic.Network, opt Options) (*Result, error) {
	switch algo {
	case "domino":
		return DominoMapContext(ctx, n, opt)
	case "rs":
		return RSMapContext(ctx, n, opt)
	case "rsdeep":
		return RSMapDeepContext(ctx, n, opt)
	default:
		return SOIDominoMapContext(ctx, n, opt)
	}
}

// countersOf returns the stats with phase timings zeroed: wall-clock is
// the one field legitimately different between engine runs.
func countersOf(s *obs.Stats) obs.Stats {
	c := *s
	c.Phases = obs.PhaseTimes{}
	return c
}

// TestParallelMatchesSequential is the core determinism contract: for
// every circuit × mapper × Pareto mode, the parallel engine's Result
// dump and stats counters are identical to the sequential engine's at
// every worker count. Run under -race by `make par-determinism`.
func TestParallelMatchesSequential(t *testing.T) {
	circuits := []string{"mux", "z4ml", "cordic", "b9"}
	if !testing.Short() {
		circuits = append(circuits, "c880")
	}
	algos := []string{"domino", "rs", "rsdeep", "soi"}
	for _, name := range circuits {
		n := unateBench(t, name)
		for _, algo := range algos {
			for _, pareto := range []bool{false, true} {
				opt := DefaultOptions()
				opt.Pareto = pareto
				opt.Workers = 1
				wantRes, wantStats, err := mapAlgoStats(algo, n, opt)
				if err != nil {
					t.Fatalf("%s/%s pareto=%v: sequential: %v", name, algo, pareto, err)
				}
				for _, workers := range []int{2, 8} {
					opt.Workers = workers
					gotRes, gotStats, err := mapAlgoStats(algo, n, opt)
					if err != nil {
						t.Fatalf("%s/%s pareto=%v workers=%d: %v", name, algo, pareto, workers, err)
					}
					if gotRes.Dump() != wantRes.Dump() {
						t.Errorf("%s/%s pareto=%v workers=%d: result differs from sequential",
							name, algo, pareto, workers)
					}
					if got, want := countersOf(gotStats), countersOf(wantStats); got != want {
						t.Errorf("%s/%s pareto=%v workers=%d: stats differ:\n got %+v\nwant %+v",
							name, algo, pareto, workers, got, want)
					}
				}
			}
		}
	}
}

func mapAlgoStats(algo string, n *logic.Network, opt Options) (*Result, *obs.Stats, error) {
	st := new(obs.Stats)
	res, err := mapAlgo(obs.WithStats(context.Background(), st), algo, n, opt)
	return res, st, err
}

// TestParallelAutoWorkers: Workers == 0 resolves to GOMAXPROCS above the
// small-network cutoff and still matches the explicit sequential run.
func TestParallelAutoWorkers(t *testing.T) {
	n := unateBench(t, "c880") // 800+ nodes, above parallelMinNodes
	opt := DefaultOptions()
	opt.Workers = 1
	want, err := SOIDominoMap(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 0
	got, err := SOIDominoMap(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dump() != want.Dump() {
		t.Error("auto-worker result differs from sequential")
	}
}

// TestParallelBudgetedParetoForcedSequential: TupleBudget degradation
// depends on node-completion order, so budgeted Pareto runs must ignore
// Workers — including the Degraded flag and the degraded mapping itself.
func TestParallelBudgetedParetoForcedSequential(t *testing.T) {
	n := unateBench(t, "mux")
	opt := DefaultOptions()
	opt.Pareto = true
	opt.TupleBudget = 50
	opt.Workers = 1
	want, err := SOIDominoMap(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Degraded {
		t.Fatal("budget 50 should degrade the mux Pareto run; pick a smaller budget")
	}
	opt.Workers = 8
	got, err := SOIDominoMap(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dump() != want.Dump() || got.Degraded != want.Degraded {
		t.Error("budgeted Pareto run is not worker-count independent")
	}
}

// TestParallelTraceSpansMatchSequential: per-worker span buffers are
// stitched in node order, so the sequence of trace events (names, cats,
// args — everything but wall-clock timestamps) is identical to a
// sequential run's.
func TestParallelTraceSpansMatchSequential(t *testing.T) {
	n := unateBench(t, "b9")
	spanSeq := func(workers int) string {
		tr := obs.NewTracer(1)
		opt := DefaultOptions()
		opt.Workers = workers
		if _, err := SOIDominoMapContext(obs.WithTracer(context.Background(), tr), n, opt); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		// Drop the wall-clock fields; everything else must match.
		re := regexp.MustCompile(`"(ts|dur)":\d+`)
		return re.ReplaceAllString(buf.String(), `"$1":0`)
	}
	want := spanSeq(1)
	for _, workers := range []int{2, 8} {
		if got := spanSeq(workers); got != want {
			t.Errorf("workers=%d: trace event sequence differs from sequential", workers)
		}
	}
}

// TestParallelCancellation: a canceled context aborts the pool promptly
// with context.Canceled, from either the pre-canceled or mid-run state.
func TestParallelCancellation(t *testing.T) {
	n := unateBench(t, "c880")
	opt := DefaultOptions()
	opt.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SOIDominoMapContext(ctx, n, opt)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: got (%v, %v), want nil result and context.Canceled", res, err)
	}
}

// errAfterCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err calls — a deterministic stand-in for "the deadline
// expired mid-run" that pins exactly which checkpoint observes it.
type errAfterCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *errAfterCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestMidNodeCancellationRegression pins the satellite bugfix: before
// the bounded in-loop checkpoint, the engine polled the context only at
// node boundaries, so a cancellation landing inside a node with a large
// Pareto cross-product went unseen until the node finished. The mux
// Pareto run has a node with > combineCheckInterval combines; sweeping
// the flip point across every checkpoint must (a) abort the run for
// every flip index below the total and (b) hit the in-loop checkpoint
// ("canceled inside node") at least once. Without the in-loop check,
// flip indexes at or past the node count complete instead of aborting.
func TestMidNodeCancellationRegression(t *testing.T) {
	n := unateBench(t, "mux")
	opt := DefaultOptions()
	opt.Pareto = true
	opt.Workers = 1 // deterministic checkpoint order

	// Baseline: count checkpoints on an uncanceled run.
	st := new(obs.Stats)
	if _, err := SOIDominoMapContext(obs.WithStats(context.Background(), st), n, opt); err != nil {
		t.Fatal(err)
	}
	boundary := int64(n.Len())
	if st.CancelChecks <= boundary {
		t.Fatalf("mux Pareto run has no in-loop checkpoints (checks=%d, nodes=%d); the regression needs a node with > %d combines",
			st.CancelChecks, boundary, combineCheckInterval)
	}

	sawInLoop := false
	for after := int64(0); after < st.CancelChecks; after++ {
		ctx := &errAfterCtx{Context: context.Background(), after: after}
		res, err := SOIDominoMapContext(ctx, n, opt)
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("flip after %d checks: got (%v, %v), want canceled", after, res, err)
		}
		if strings.Contains(err.Error(), "canceled inside node") {
			sawInLoop = true
		}
	}
	if !sawInLoop {
		t.Error("no flip point hit the in-loop checkpoint; the bounded mid-node check is gone")
	}
}

// TestNilStatsSmoke pins the nil-receiver contract of the stats path:
// with no collector on the context, every recording site — including the
// formerly guarded recordCombine — must run on the nil *obs.Stats, in
// both engines and both Pareto modes.
func TestNilStatsSmoke(t *testing.T) {
	n := unateBench(t, "mux")
	for _, pareto := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			opt := DefaultOptions()
			opt.Pareto = pareto
			opt.Workers = workers
			if _, err := SOIDominoMap(n, opt); err != nil {
				t.Fatalf("pareto=%v workers=%d with nil stats: %v", pareto, workers, err)
			}
		}
	}
	// The helper itself must also be callable with a nil collector.
	e := &engine{}
	e.recordCombine(nil, logic.Or, tuple.Tuple{}, tuple.Tuple{}, tuple.Tuple{})
}

// TestWorkersValidation: negative worker counts are rejected up front.
func TestWorkersValidation(t *testing.T) {
	n := unateBench(t, "mux")
	opt := DefaultOptions()
	opt.Workers = -1
	if _, err := SOIDominoMap(n, opt); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Fatalf("got %v, want a Workers validation error", err)
	}
}

// TestParallelUnmappableNodeError: an error raised inside the pool (a
// constant node feeding gates) surfaces as the root cause, like the
// sequential engine's, not as a bare internal-cancellation echo.
func TestParallelUnmappableNodeError(t *testing.T) {
	n := logic.New("bad-const")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c1 := n.AddConst(true)
	g := n.AddGate(logic.And, c1, a)
	h := n.AddGate(logic.Or, g, b)
	n.AddOutput("o", h)

	opt := DefaultOptions()
	opt.Workers = 1
	_, seqErr := SOIDominoMap(n, opt)
	if seqErr == nil || !strings.Contains(seqErr.Error(), "fold constants") {
		t.Fatalf("sequential: got %v, want the fed-constant error", seqErr)
	}
	opt.Workers = 4
	_, parErr := SOIDominoMap(n, opt)
	if parErr == nil {
		t.Fatal("parallel run succeeded where sequential failed")
	}
	if errors.Is(parErr, context.Canceled) {
		t.Fatalf("parallel error is a cancellation echo, not the root cause: %v", parErr)
	}
	if !strings.Contains(parErr.Error(), "fold constants") {
		t.Fatalf("parallel error lost the root cause: %v", parErr)
	}
}
