package mapper

import (
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"soidomino/internal/logic"
	"soidomino/internal/obs"
)

// statsNetwork is a small fixed circuit whose DP instrumentation differs
// between the mappers: the shared (a+b+c)*d subfunction gives the series
// composition a parallel bottom, so the baseline mappers charge discharge
// points while SOI's ordering rule flips the stack instead.
func statsNetwork() *logic.Network {
	n := logic.New("stats")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	e := n.AddInput("e")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	and1 := n.AddGate(logic.And, or3, d)
	n.AddOutput("f", n.AddGate(logic.And, and1, e))
	n.AddOutput("g", n.AddGate(logic.Or, and1, e))
	return n
}

type mapCtxFunc func(context.Context, *logic.Network, Options) (*Result, error)

func runWithStats(t *testing.T, f mapCtxFunc) *obs.Stats {
	t.Helper()
	st := &obs.Stats{}
	ctx := obs.WithStats(context.Background(), st)
	if _, err := f(ctx, statsNetwork(), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStatsDeterministic pins the exact instrumentation record of each
// mapper on the fixed network. The counters are part of the DP's observable
// behavior: the SOI row differs from the baselines exactly where the paper
// says it should — two series stacks reordered, zero discharge points
// charged.
func TestStatsDeterministic(t *testing.T) {
	cases := []struct {
		name string
		f    mapCtxFunc
		want obs.Stats
	}{
		{"domino", DominoMapContext, obs.Stats{
			Algorithm: "Domino_Map", Nodes: 5,
			TuplesGenerated: 8, TuplesPruned: 0, TuplesKept: 8,
			CombineOr: 4, CombineAndOrdered: 4, CombineAndReordered: 0,
			FrontierHighWater: 3, DPDischargeCharges: 2, CancelChecks: 10,
		}},
		{"rs", RSMapContext, obs.Stats{
			Algorithm: "RS_Map", Nodes: 5,
			TuplesGenerated: 8, TuplesPruned: 0, TuplesKept: 8,
			CombineOr: 4, CombineAndOrdered: 4, CombineAndReordered: 0,
			FrontierHighWater: 3, DPDischargeCharges: 2, CancelChecks: 10,
		}},
		{"soi", SOIDominoMapContext, obs.Stats{
			Algorithm: "SOI_Domino_Map", Nodes: 5,
			TuplesGenerated: 8, TuplesPruned: 0, TuplesKept: 8,
			CombineOr: 4, CombineAndOrdered: 2, CombineAndReordered: 2,
			FrontierHighWater: 3, DPDischargeCharges: 0, CancelChecks: 10,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runWithStats(t, tc.f)
			got.Phases = obs.PhaseTimes{} // wall times are not deterministic
			if *got != tc.want {
				t.Errorf("stats mismatch:\n got %+v\nwant %+v", *got, tc.want)
			}
		})
	}
}

// TestStatsInvariants checks the cross-counter identities every run must
// satisfy, on a mapper with pruning in play.
func TestStatsInvariants(t *testing.T) {
	opt := DefaultOptions()
	opt.Pareto = true
	st := &obs.Stats{}
	ctx := obs.WithStats(context.Background(), st)
	if _, err := SOIDominoMapContext(ctx, statsNetwork(), opt); err != nil {
		t.Fatal(err)
	}
	if got := st.CombineOr + st.CombineAndOrdered + st.CombineAndReordered; got != st.TuplesGenerated {
		t.Errorf("combine kinds sum to %d, generated %d", got, st.TuplesGenerated)
	}
	if st.TuplesPruned != st.TuplesGenerated-st.TuplesKept {
		t.Errorf("pruned %d != generated %d - kept %d", st.TuplesPruned, st.TuplesGenerated, st.TuplesKept)
	}
	if st.Nodes == 0 || st.TuplesGenerated == 0 || st.CancelChecks == 0 {
		t.Errorf("run recorded nothing: %+v", st)
	}
	if st.Phases.DP <= 0 || st.Phases.Traceback <= 0 {
		t.Errorf("phase timings not charged: %+v", st.Phases)
	}
	if st.FrontierHighWater <= 0 || st.FrontierHighWater > st.TuplesKept {
		t.Errorf("high water %d out of range (kept %d)", st.FrontierHighWater, st.TuplesKept)
	}
}

// TestStatsConcurrentRunsIndependent proves concurrent runs with stats
// enabled do not share collector state: under -race this also fails on any
// unsynchronized write to a shared structure.
func TestStatsConcurrentRunsIndependent(t *testing.T) {
	const runs = 8
	collected := make([]*obs.Stats, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &obs.Stats{}
			ctx := obs.WithStats(context.Background(), st)
			if _, err := SOIDominoMapContext(ctx, statsNetwork(), DefaultOptions()); err != nil {
				t.Error(err)
				return
			}
			collected[i] = st
		}(i)
	}
	wg.Wait()
	for i, st := range collected {
		if st == nil {
			t.Fatalf("run %d failed", i)
		}
		// Every run saw exactly one network's worth of work: any
		// cross-contamination would double counters somewhere.
		if st.Nodes != 5 || st.TuplesGenerated != 8 {
			t.Errorf("run %d contaminated: nodes=%d generated=%d", i, st.Nodes, st.TuplesGenerated)
		}
	}
}

// TestStatsOverhead is the `make check` guard on the zero-cost-when-
// disabled contract: with the collector enabled a run must not be
// measurably slower. Timing assertions are flaky on loaded CI machines,
// so the test only runs when SOIDOMINO_OBS_OVERHEAD=1.
func TestStatsOverhead(t *testing.T) {
	if os.Getenv("SOIDOMINO_OBS_OVERHEAD") != "1" {
		t.Skip("set SOIDOMINO_OBS_OVERHEAD=1 to run the overhead guard")
	}
	net := statsNetwork()
	opt := DefaultOptions()
	const iters = 2000
	measure := func(ctx context.Context) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := SOIDominoMapContext(ctx, net, opt); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// Warm up, then interleave to be fair to both configurations.
	measure(context.Background())
	var off, on time.Duration
	for i := 0; i < 3; i++ {
		off += measure(context.Background())
		on += measure(obs.WithStats(context.Background(), &obs.Stats{}))
	}
	t.Logf("disabled %v, enabled %v (%.1f%%)", off, on, 100*float64(on-off)/float64(off))
	// Generous bound: the contract is "no measurable slowdown", the
	// assertion allows scheduling noise.
	if float64(on) > float64(off)*1.25 {
		t.Errorf("stats enabled is >25%% slower: disabled %v, enabled %v", off, on)
	}
}
