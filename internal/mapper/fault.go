package mapper

import (
	"sync/atomic"

	"soidomino/internal/faultpoint"
)

// The mapper's declared fault points (see internal/faultpoint). They
// are context-threaded: a run observes only the registry carried by its
// own context, so fault schedules — like the obs collectors — can never
// leak into a result's identity or cache key.
var (
	// PointCombine fires at every DP node boundary, alongside the
	// cancellation checkpoint, before the node's combine sweep.
	PointCombine = faultpoint.Define("mapper.combine",
		"DP node boundary, before the node's combine sweep")
	// PointTraceback fires once at the start of traceback, after the DP
	// tables are complete.
	PointTraceback = faultpoint.Define("mapper.traceback",
		"start of traceback, after the DP completes")
	// PointInvertReorder is the Flip-kind generalization of
	// SetFaultInvertSOIReorder: when it fires, one combine's SOI stack
	// order is inverted. The result stays functionally correct and
	// audit-clean but carries avoidable discharge devices — the bug
	// class the fuzzer's metamorphic T_disch oracle exists to catch.
	PointInvertReorder = faultpoint.Define("mapper.invert-soi-reorder",
		"flip: invert one SOI stack-reorder decision")
)

// faultInvertSOIReorder, when set, inverts the SOI stack-reordering rule in
// combineAnd: the operand the rule would put at the bottom goes to the top
// instead. The resulting circuits are still functionally correct and pass
// the structural audit (traceback counts discharges from the tree it
// actually built), but they systematically bury parallel sections under
// series transistors and so carry far more p-discharge devices than
// RS_Map's rearranged trees. The differential fuzzer's metamorphic oracle
// T_disch(SOI) <= T_disch(RS) exists to catch exactly this class of bug;
// the hook lets tests prove that it does.
var faultInvertSOIReorder atomic.Bool

// SetFaultInvertSOIReorder enables or disables the deliberate SOI reorder
// inversion and returns the previous setting. It exists only so fuzzing
// tests can demonstrate end-to-end violation detection and shrinking;
// production callers must never set it. New code should prefer arming
// PointInvertReorder on a context-threaded faultpoint.Registry, which
// scopes the inversion to one run instead of the whole process.
func SetFaultInvertSOIReorder(on bool) (prev bool) {
	return faultInvertSOIReorder.Swap(on)
}
