package mapper

import "sync/atomic"

// faultInvertSOIReorder, when set, inverts the SOI stack-reordering rule in
// combineAnd: the operand the rule would put at the bottom goes to the top
// instead. The resulting circuits are still functionally correct and pass
// the structural audit (traceback counts discharges from the tree it
// actually built), but they systematically bury parallel sections under
// series transistors and so carry far more p-discharge devices than
// RS_Map's rearranged trees. The differential fuzzer's metamorphic oracle
// T_disch(SOI) <= T_disch(RS) exists to catch exactly this class of bug;
// the hook lets tests prove that it does.
var faultInvertSOIReorder atomic.Bool

// SetFaultInvertSOIReorder enables or disables the deliberate SOI reorder
// inversion and returns the previous setting. It exists only so fuzzing
// tests can demonstrate end-to-end violation detection and shrinking;
// production callers must never set it.
func SetFaultInvertSOIReorder(on bool) (prev bool) {
	return faultInvertSOIReorder.Swap(on)
}
