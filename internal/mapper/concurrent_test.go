package mapper

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"soidomino/internal/bench"
	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/unate"
)

// unateBench builds a benchmark circuit and runs it through the standard
// decompose+unate pipeline, returning the mappable network.
func unateBench(t *testing.T, name string) *logic.Network {
	t.Helper()
	d, err := decompose.Decompose(bench.MustBuild(name))
	if err != nil {
		t.Fatalf("%s: decompose: %v", name, err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatalf("%s: unate: %v", name, err)
	}
	return u.Network
}

// TestConcurrentMappingMatchesSerial maps several circuits from parallel
// goroutines — each circuit many times, all sharing one network value —
// and requires every result to be byte-identical to the serial run. This
// guards the property the service's worker pool depends on: mapping runs
// share no mutable state, neither across goroutines nor through the input
// network. Run it under -race (scripts/check.sh does).
func TestConcurrentMappingMatchesSerial(t *testing.T) {
	circuits := []string{"mux", "z4ml", "cordic", "c8", "b9"}
	opt := DefaultOptions()

	nets := make(map[string]*logic.Network, len(circuits))
	want := make(map[string]string, len(circuits))
	for _, name := range circuits {
		nets[name] = unateBench(t, name)
		res, err := SOIDominoMap(nets[name], opt)
		if err != nil {
			t.Fatalf("%s: serial map: %v", name, err)
		}
		want[name] = res.Dump()
	}

	const repeats = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(circuits)*repeats)
	for _, name := range circuits {
		for r := 0; r < repeats; r++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				res, err := SOIDominoMap(nets[name], opt)
				if err != nil {
					errs <- err
					return
				}
				if got := res.Dump(); got != want[name] {
					t.Errorf("%s: concurrent result differs from serial run", name)
				}
			}(name)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent map: %v", err)
	}
}

func TestContextCancellationAbortsDP(t *testing.T) {
	n := unateBench(t, "c880")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SOIDominoMapContext(ctx, n, DefaultOptions())
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want nil result and context.Canceled", res, err)
	}
}

func TestContextExpiredDeadlineAbortsDP(t *testing.T) {
	n := unateBench(t, "c880")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := DominoMapContext(ctx, n, DefaultOptions())
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got (%v, %v), want nil result and context.DeadlineExceeded", res, err)
	}
}

func TestContextBackgroundMatchesPlainAPI(t *testing.T) {
	n := unateBench(t, "mux")
	plain, err := SOIDominoMap(n, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SOIDominoMapContext(context.Background(), n, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Dump() != withCtx.Dump() {
		t.Error("context variant diverges from plain API")
	}
}
