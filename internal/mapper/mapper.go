package mapper

import (
	"context"
	"fmt"
	"time"

	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
	"soidomino/internal/obs"
	"soidomino/internal/tuple"
	"soidomino/internal/unate"
)

// DominoMap runs the bulk-CMOS baseline: the dynamic program minimizes the
// objective without regard to discharge transistors; series stacks keep
// their natural (first-fanin-on-top) order; p-discharge devices are added
// by post-processing the finished trees.
func DominoMap(n *logic.Network, opt Options) (*Result, error) {
	return DominoMapContext(context.Background(), n, opt)
}

// DominoMapContext is DominoMap with cancellation: the run observes ctx at
// node-processing checkpoints and returns ctx.Err() if it is canceled or
// its deadline passes before the dynamic program completes.
func DominoMapContext(ctx context.Context, n *logic.Network, opt Options) (*Result, error) {
	return run(ctx, n, config{Options: opt, algorithm: "Domino_Map"})
}

// RSMap is DominoMap plus the Rearrange_Stacks post-processing step: each
// finished gate's series stacks are reordered to move parallel sections
// with many potential discharge points toward ground before discharge
// insertion (paper §VI-A).
func RSMap(n *logic.Network, opt Options) (*Result, error) {
	return RSMapContext(context.Background(), n, opt)
}

// RSMapContext is RSMap with cancellation (see DominoMapContext).
func RSMapContext(ctx context.Context, n *logic.Network, opt Options) (*Result, error) {
	return run(ctx, n, config{Options: opt, algorithm: "RS_Map", rearrangePost: rearrangeTop})
}

// RSMapDeep is an extension of RSMap whose post-processing reorders every
// series group, including those nested inside parallel branches — stronger
// than the paper's RS_Map but still a pure post-process. The ablation
// benchmarks compare all three.
func RSMapDeep(n *logic.Network, opt Options) (*Result, error) {
	return RSMapDeepContext(context.Background(), n, opt)
}

// RSMapDeepContext is RSMapDeep with cancellation (see DominoMapContext).
func RSMapDeepContext(ctx context.Context, n *logic.Network, opt Options) (*Result, error) {
	return run(ctx, n, config{Options: opt, algorithm: "RS_Map_deep", rearrangePost: rearrangeDeep})
}

// SOIDominoMap runs the paper's algorithm (§V, listing 2): discharge
// transistors are part of the DP cost, series stacks are ordered at
// combine time using par_b and p_dis, and cost ties are broken by p_dis.
func SOIDominoMap(n *logic.Network, opt Options) (*Result, error) {
	return SOIDominoMapContext(context.Background(), n, opt)
}

// SOIDominoMapContext is SOIDominoMap with cancellation (see
// DominoMapContext).
func SOIDominoMapContext(ctx context.Context, n *logic.Network, opt Options) (*Result, error) {
	name := "SOI_Domino_Map"
	if opt.Pareto {
		name = "SOI_Domino_Map_pareto"
	}
	return run(ctx, n, config{
		Options:         opt,
		algorithm:       name,
		trackDischarges: true,
		reorderStacks:   true,
	})
}

func run(ctx context.Context, n *logic.Network, cfg config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := unate.IsUnate(n); err != nil {
		return nil, fmt.Errorf("mapper: input network is not unate: %w", err)
	}
	e := &engine{
		ctx:        ctx,
		cfg:        cfg,
		net:        n,
		stats:      obs.StatsFrom(ctx),
		tracer:     obs.TracerFrom(ctx),
		faults:     faultpoint.From(ctx),
		tables:     make([]tuple.Table, n.Len()),
		gateChoice: make([]tuple.Choice, n.Len()),
		formed:     make([]tuple.Tuple, n.Len()),
		hasGate:    make([]bool, n.Len()),
	}
	if cfg.Pareto {
		e.fronts = make([]tuple.Frontier, n.Len())
	}
	e.stats.SetAlgorithm(cfg.algorithm)
	if e.tracer != nil {
		kv := []obs.KV{{Key: "nodes", Val: int64(n.Len())}}
		if id := obs.RequestID(ctx); id != "" {
			e.tracer.Instant("mapper", "run "+cfg.algorithm+" request "+id, kv...)
		} else {
			e.tracer.Instant("mapper", "run "+cfg.algorithm, kv...)
		}
	}
	// FanoutCounts, not ComputeFanout: mapping must not write to the input
	// network, so runs sharing one network can proceed in parallel.
	e.fanout = n.FanoutCounts()
	e.outRefs = n.OutputRefs()
	dpStart := e.tracer.Now()
	err := obs.Timed(e.stats, obs.PhaseDP, e.process)
	e.tracer.Span("mapper", cfg.algorithm+" dp", dpStart)
	if err != nil {
		return nil, err
	}
	tbStart := e.tracer.Now()
	var res *Result
	err = obs.Timed(e.stats, obs.PhaseTraceback, func() error {
		if ferr := e.faults.Check(ctx, PointTraceback); ferr != nil {
			return fmt.Errorf("mapper: %s traceback: %w", cfg.algorithm, ferr)
		}
		var terr error
		res, terr = e.traceback()
		return terr
	})
	e.tracer.Span("mapper", cfg.algorithm+" traceback", tbStart)
	if err != nil {
		return nil, err
	}
	res.Degraded = e.degraded
	return res, nil
}

// engine holds the dynamic-programming state for one mapping run.
type engine struct {
	ctx     context.Context
	cfg     config
	net     *logic.Network
	fanout  []int
	outRefs []int
	// stats and tracer are the run's observability hooks, both nil when
	// the context carries none; the nil path is a single branch per
	// recording site (see internal/obs). faults follows the same
	// contract for the run's fault-injection registry.
	stats  *obs.Stats
	tracer *obs.Tracer
	faults *faultpoint.Registry

	// keptTuples and degraded implement the Pareto tuple budget: when
	// the cumulative frontier population exceeds Options.TupleBudget,
	// the run keeps going but every frontier from that node on is
	// trimmed to one tuple per shape, and the result is flagged
	// Degraded instead of the process OOMing on a pathological input.
	keptTuples int
	degraded   bool

	tables     []tuple.Table    // per And/Or node: best tuple per {W,H}
	fronts     []tuple.Frontier // Pareto mode: frontier per node
	gateChoice []tuple.Choice   // per node: the tuple chosen at gate formation
	formed     []tuple.Tuple    // per node: cumulative totals of the formed gate
	hasGate    []bool
}

// tupleCost maps a tuple's components to the scalar the configured
// objective minimizes.
func (e *engine) tupleCost(t tuple.Tuple) int {
	switch e.cfg.Objective {
	case Depth:
		c := e.cfg.DepthWeight * t.Depth
		if e.cfg.trackDischarges {
			c += t.NDisch
		}
		return c
	default:
		c := t.NTrans + e.cfg.ClockWeight*t.NClock
		if e.cfg.trackDischarges {
			c += e.cfg.ClockWeight * t.NDisch
		}
		return c
	}
}

// less orders tuples for table insertion and gate formation. The SOI
// algorithm breaks cost ties by p_dis (listing 2); the bulk baseline is
// PBE-blind, so its fallback chain never consults p_dis or discharge
// counts. The remaining fallbacks only serve determinism.
func (e *engine) less(a, b tuple.Tuple) bool {
	if ca, cb := e.tupleCost(a), e.tupleCost(b); ca != cb {
		return ca < cb
	}
	if e.cfg.trackDischarges {
		if a.PDis != b.PDis {
			return a.PDis < b.PDis
		}
		if a.NDisch != b.NDisch {
			return a.NDisch < b.NDisch
		}
	}
	if da, db := a.NTrans+a.NClock, b.NTrans+b.NClock; da != db {
		return da < db
	}
	if a.NGates != b.NGates {
		return a.NGates < b.NGates
	}
	return a.Depth < b.Depth
}

// formLess compares tuples by the cost of the gates they would form.
func (e *engine) formLess(a, b tuple.Tuple) bool {
	return e.less(e.form(a), e.form(b))
}

// form converts a partial structure into a completed gate's cumulative
// totals: output inverter (2) and keeper join NTrans, the p-clock (plus an
// n-clock foot for PI-driven pulldowns) joins NClock, and the structure's
// potential discharge points vanish because its bottom is grounded.
func (e *engine) form(t tuple.Tuple) tuple.Tuple {
	g := t
	g.NTrans += 3
	g.NClock++
	if t.HasPI || e.cfg.AlwaysFooted {
		g.NClock++
	}
	g.NGates++
	g.Depth++
	g.PDis = 0
	g.PDisBot = 0
	g.ParB = false
	return g
}

// isLeaf reports whether the node is a mapping leaf (primary input or
// complemented primary-input literal).
func (e *engine) isLeaf(id int) bool {
	return unate.IsLeaf(e.net, id)
}

// forcedRoot reports whether an And/Or node must become a gate root: it
// feeds more than one gate or drives a primary output, so parents may only
// use its completed gate output (standard tree-decomposition mapping; the
// paper is silent on multi-fanout handling).
func (e *engine) forcedRoot(id int) bool {
	return e.fanout[id] > 1 || e.outRefs[id] > 0
}

// leafTuple is the single {1,1} sub-solution of a mapping leaf.
func (e *engine) leafTuple(id int) tuple.Tuple {
	return tuple.Tuple{
		W: 1, H: 1,
		NTrans: 1,
		HasPI:  true,
		Deriv:  tuple.Deriv{Op: tuple.DerivLeaf, Leaf: id},
	}
}

// gateAsInput is the {1,1} sub-solution that uses the child's completed
// gate output to drive a single transistor ("an extra transistor is needed
// in the next level", paper §IV). For forced roots the child's gate exists
// regardless of this parent's choice, so only the marginal transistor is
// charged; for single-fanout children the full gate cost rides along so
// the DP can trade early gate formation against larger pulldowns.
func (e *engine) gateAsInput(id int) tuple.Tuple {
	f := e.formed[id]
	t := tuple.Tuple{
		W: 1, H: 1,
		NTrans: 1,
		Depth:  f.Depth,
		Deriv:  tuple.Deriv{Op: tuple.DerivGateInput, Leaf: id},
	}
	if !e.forcedRoot(id) {
		t.NTrans += f.NTrans
		t.NClock = f.NClock
		t.NDisch = f.NDisch
		t.NGates = f.NGates
	}
	return t
}

// cand pairs a usable tuple with the Choice that reconstructs it.
type cand struct {
	t  tuple.Tuple
	ch tuple.Choice
}

// usable enumerates the sub-solutions a parent may draw from child id, in
// deterministic order.
func (e *engine) usable(id int) ([]cand, error) {
	if e.isLeaf(id) {
		t := e.leafTuple(id)
		return []cand{{t, tuple.Choice{Node: id, Key: t.Key()}}}, nil
	}
	if !e.hasGate[id] {
		return nil, fmt.Errorf("mapper: node %d (%s) is not mappable", id, e.net.Nodes[id].Op)
	}
	var out []cand
	if !e.forcedRoot(id) {
		if e.cfg.Pareto {
			for _, it := range e.fronts[id].All() {
				out = append(out, cand{it.Tuple, tuple.Choice{
					Node: id, Pareto: true, Front: it.FKey, Index: it.Index,
				}})
			}
		} else {
			tb := e.tables[id]
			for _, k := range tb.SortedKeys() {
				out = append(out, cand{tb[k], tuple.Choice{Node: id, Key: k}})
			}
		}
	}
	out = append(out, cand{e.gateAsInput(id), tuple.Choice{Node: id, Gate: true}})
	return out, nil
}

// combineOr implements the paper's combine_or: widths add, heights max,
// costs and p_dis add, par_b becomes true.
func (e *engine) combineOr(a, b cand) tuple.Tuple {
	return tuple.Tuple{
		W:        a.t.W + b.t.W,
		H:        max(a.t.H, b.t.H),
		NTrans:   a.t.NTrans + b.t.NTrans,
		NClock:   a.t.NClock + b.t.NClock,
		NDisch:   a.t.NDisch + b.t.NDisch,
		OwnDisch: a.t.OwnDisch + b.t.OwnDisch,
		NGates:   a.t.NGates + b.t.NGates,
		Depth:    max(a.t.Depth, b.t.Depth),
		PDis:     a.t.PDis + b.t.PDis,
		// The whole result is one parallel stack, so every potential point
		// belongs to the bottom-most parallel element.
		PDisBot: a.t.PDis + b.t.PDis,
		ParB:    true,
		HasPI:   a.t.HasPI || b.t.HasPI,
		Deriv:   tuple.Deriv{Op: tuple.DerivOr, A: a.ch, B: b.ch},
	}
}

// combineAnd implements the paper's combine_and. With reorderStacks the
// stack order is chosen from par_b and p_dis: a parallel-at-bottom input
// goes to the bottom (it may reach ground); if both or neither qualify,
// the larger p_dis goes to the bottom. If the top has a parallel bottom,
// its potential points plus the new junction are discharged immediately;
// otherwise the junction joins the potential set.
func (e *engine) combineAnd(a, b cand) tuple.Tuple {
	topIsA := true // source order: first operand on top
	switch {
	case e.cfg.reorderStacks:
		switch {
		case a.t.ParB && !b.t.ParB:
			topIsA = false // a goes to the bottom
		case b.t.ParB && !a.t.ParB:
			topIsA = true
		default:
			topIsA = a.t.PDis <= b.t.PDis // larger p_dis to the bottom
		}
		if faultInvertSOIReorder.Load() || e.faults.Flip(PointInvertReorder) {
			topIsA = !topIsA // test-only fault injection; see fault.go
		}
	case e.cfg.BaselineStackOrder == OrderHashed:
		topIsA = mixChoices(a.ch, b.ch)&1 == 0
	}
	return e.combineAndOrdered(a, b, topIsA)
}

// combineAndOrdered is combineAnd with the stack order fixed by the
// caller; the Pareto mode emits both orders and lets dominance decide.
func (e *engine) combineAndOrdered(a, b cand, topIsA bool) tuple.Tuple {
	top, bottom := a.t, b.t
	if !topIsA {
		top, bottom = b.t, a.t
	}
	t := tuple.Tuple{
		W:        max(a.t.W, b.t.W),
		H:        a.t.H + b.t.H,
		NTrans:   a.t.NTrans + b.t.NTrans,
		NClock:   a.t.NClock + b.t.NClock,
		NDisch:   a.t.NDisch + b.t.NDisch,
		OwnDisch: a.t.OwnDisch + b.t.OwnDisch,
		NGates:   a.t.NGates + b.t.NGates,
		Depth:    max(a.t.Depth, b.t.Depth),
		ParB:     bottom.ParB,
		HasPI:    a.t.HasPI || b.t.HasPI,
		Deriv:    tuple.Deriv{Op: tuple.DerivAnd, A: a.ch, B: b.ch, TopIsA: topIsA},
	}
	if top.ParB {
		// The top's bottom-most parallel stack can never reach ground: its
		// potential points and its bottom common node (the new junction)
		// materialize as discharges. Potential points the top holds below
		// non-parallel elements stay potential: they only ever materialize
		// through an enclosing parallel branch.
		t.NDisch += top.PDisBot + 1
		t.OwnDisch += top.PDisBot + 1
		t.PDis = (top.PDis - top.PDisBot) + bottom.PDis
	} else {
		t.PDis = top.PDis + bottom.PDis + 1
	}
	t.PDisBot = bottom.PDisBot
	return t
}

// combineCheckInterval bounds the work between in-loop cancellation
// checkpoints: one context poll per this many combine calls, so a node
// with a huge Pareto cross-product cannot overrun a job deadline by more
// than a bounded slice of work. The per-node combine counter resets at
// every node boundary, which keeps the CancelChecks stat a pure function
// of the network and options — independent of worker count and
// scheduling, as the byte-identical determinism contract requires.
const combineCheckInterval = 1024

// nodeCtx carries one worker's context and collectors through the DP.
// The sequential engine uses a single nodeCtx wired to the run's real
// collectors; each parallel worker gets a private stats shard and span
// buffer so node processing never contends, and processParallel merges
// the shards (and emits the buffered spans in node order) after the
// pool drains.
type nodeCtx struct {
	ctx      context.Context
	stats    *obs.Stats
	spans    []obs.PendingSpan // indexed by node id; nil = emit spans directly
	combines int               // combine calls since the last checkpoint
}

// process fills the DP tables (paper listing 2), dispatching on the
// resolved worker count: the readiness-scheduled pool in parallel.go, or
// the plain topological loop. Both produce byte-identical Results.
func (e *engine) process() error {
	if w := e.effectiveWorkers(); w > 1 {
		return e.processParallel(w)
	}
	return e.processSequential()
}

func (e *engine) processSequential() error {
	nc := &nodeCtx{ctx: e.ctx, stats: e.stats}
	for id := range e.net.Nodes {
		if err := e.processNode(nc, id); err != nil {
			return err
		}
	}
	return nil
}

// processNode maps one node. Every node boundary is a cancellation
// checkpoint: a canceled or expired context aborts the run with
// ctx.Err() instead of finishing the DP; combineCheck adds bounded
// in-loop checkpoints inside large cross-products.
func (e *engine) processNode(nc *nodeCtx, id int) error {
	nc.stats.AddCancelCheck()
	if err := nc.ctx.Err(); err != nil {
		return fmt.Errorf("mapper: %s canceled at node %d of %d: %w",
			e.cfg.algorithm, id, e.net.Len(), err)
	}
	if err := e.faults.Check(nc.ctx, PointCombine); err != nil {
		return fmt.Errorf("mapper: %s at node %d: %w", e.cfg.algorithm, id, err)
	}
	nc.combines = 0
	node := &e.net.Nodes[id]
	switch node.Op {
	case logic.Input, logic.Not:
		// Leaves: handled on demand by usable().
	case logic.Const0, logic.Const1:
		if e.fanout[id] > 0 {
			return fmt.Errorf("mapper: constant node %d feeds gates; fold constants before mapping", id)
		}
	case logic.And, logic.Or:
		traced := e.tracer.SampleNode(id)
		var nodeStart time.Time
		if traced {
			nodeStart = time.Now()
		}
		ua, err := e.usable(node.Fanin[0])
		if err != nil {
			return err
		}
		ub, err := e.usable(node.Fanin[1])
		if err != nil {
			return err
		}
		kept := 0
		if e.cfg.Pareto {
			if err := e.processPareto(nc, id, node.Op, ua, ub); err != nil {
				return err
			}
			kept = e.fronts[id].Size()
		} else {
			tb := tuple.Table{}
			for _, a := range ua {
				for _, b := range ub {
					var t tuple.Tuple
					if node.Op == logic.Or {
						t = e.combineOr(a, b)
					} else {
						t = e.combineAnd(a, b)
					}
					e.recordCombine(nc.stats, node.Op, t, a.t, b.t)
					if err := e.combineCheck(nc, id); err != nil {
						return err
					}
					if t.W <= e.cfg.MaxWidth && t.H <= e.cfg.MaxHeight {
						tb.Insert(t, e.less)
					}
				}
			}
			if tb.Keys() == 0 {
				return fmt.Errorf("mapper: node %d has no feasible tuple (W<=%d, H<=%d)",
					id, e.cfg.MaxWidth, e.cfg.MaxHeight)
			}
			e.tables[id] = tb
			best, _ := tb.Best(e.formLess)
			e.gateChoice[id] = tuple.Choice{Node: id, Key: best.Key()}
			e.formed[id] = e.form(best)
			e.hasGate[id] = true
			kept = tb.Keys()
		}
		nc.stats.AddNode(kept)
		if traced {
			p := e.tracer.Capture("dp", fmt.Sprintf("node %d %s", id, node.Op), nodeStart,
				obs.KV{Key: "cands_a", Val: int64(len(ua))},
				obs.KV{Key: "cands_b", Val: int64(len(ub))},
				obs.KV{Key: "kept", Val: int64(kept)})
			if nc.spans != nil {
				nc.spans[id] = p
			} else {
				e.tracer.Emit(p)
			}
		}
	default:
		return fmt.Errorf("mapper: node %d has unsupported op %s", id, node.Op)
	}
	return nil
}

// combineCheck is the bounded in-loop cancellation checkpoint, called
// once per combine; it polls the context every combineCheckInterval
// calls. Before it existed, a single node with a large Pareto
// cross-product could overrun a deadline by seconds between the
// node-boundary checks in processNode.
func (e *engine) combineCheck(nc *nodeCtx, id int) error {
	nc.combines++
	if nc.combines%combineCheckInterval != 0 {
		return nil
	}
	nc.stats.AddCancelCheck()
	if err := nc.ctx.Err(); err != nil {
		return fmt.Errorf("mapper: %s canceled inside node %d after %d combines: %w",
			e.cfg.algorithm, id, nc.combines, err)
	}
	return nil
}

// recordCombine charges one combine call to a stats collector: the kind
// (OR, AND in source order, AND with the stack flipped) and the
// p-discharge devices the combination materialized, recovered from the
// cumulative OwnDisch totals so the combine functions themselves stay
// instrumentation-free. st is nil-receiver safe (see obs.Stats), so
// call sites need no guard.
func (e *engine) recordCombine(st *obs.Stats, op logic.Op, t, a, b tuple.Tuple) {
	or := op == logic.Or
	st.AddCombine(or, !or && !t.Deriv.TopIsA, t.OwnDisch-a.OwnDisch-b.OwnDisch)
}

// processPareto fills one node's frontier, considering every child
// frontier entry and, for series composition, both stack orders.
func (e *engine) processPareto(nc *nodeCtx, id int, op logic.Op, ua, ub []cand) error {
	fr := tuple.Frontier{}
	insert := func(t tuple.Tuple) {
		if t.W <= e.cfg.MaxWidth && t.H <= e.cfg.MaxHeight {
			fr.Insert(t, e.tupleCost)
		}
	}
	for _, a := range ua {
		for _, b := range ub {
			if op == logic.Or {
				t := e.combineOr(a, b)
				e.recordCombine(nc.stats, op, t, a.t, b.t)
				if err := e.combineCheck(nc, id); err != nil {
					return err
				}
				insert(t)
				continue
			}
			for _, topIsA := range [2]bool{true, false} {
				t := e.combineAndOrdered(a, b, topIsA)
				e.recordCombine(nc.stats, op, t, a.t, b.t)
				if err := e.combineCheck(nc, id); err != nil {
					return err
				}
				insert(t)
			}
		}
	}
	if fr.Size() == 0 {
		return fmt.Errorf("mapper: node %d has no feasible tuple (W<=%d, H<=%d)",
			id, e.cfg.MaxWidth, e.cfg.MaxHeight)
	}
	if e.cfg.TupleBudget > 0 {
		e.keptTuples += fr.Size()
		if e.keptTuples > e.cfg.TupleBudget {
			e.degraded = true
		}
		if e.degraded {
			// Budget overflow: fall back to the paper's one-tuple-per-shape
			// heuristic from here on. The run still completes with a valid
			// (audit-clean) mapping; it just stops exploring frontiers.
			before := fr.Size()
			fr.TrimPerKey(e.less)
			e.keptTuples -= before - fr.Size()
		}
	}
	e.fronts[id] = fr
	best, _ := fr.Best(e.formLess)
	e.gateChoice[id] = tuple.Choice{Node: id, Pareto: true, Front: best.FKey, Index: best.Index}
	e.formed[id] = e.form(best.Tuple)
	e.hasGate[id] = true
	return nil
}

// mixChoices hashes two child choices into a deterministic value, used for
// the PBE-blind pseudorandom stack order.
func mixChoices(a, b tuple.Choice) uint64 {
	h := uint64(2166136261)
	for _, v := range []int{a.Node, a.Key.W, a.Key.H, boolInt(a.Gate), b.Node, b.Key.W, b.Key.H, boolInt(b.Gate)} {
		h = (h ^ uint64(v)) * 16777619
	}
	return h >> 7
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
