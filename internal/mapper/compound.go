package mapper

import (
	"fmt"

	"soidomino/internal/pbe"
	"soidomino/internal/sp"
)

// Compound domino is the paper's PBE solution 7 (§III-C): "Complex domino
// structures with the output inverters replaced by static NAND or NOR
// gates may be used to break up large parallel logic trees."
//
// A gate whose pulldown is a series stack f = f1 * f2 can be realized as
// two dynamic stages — one pulldown per segment, each with its own
// precharge and keeper, each segment's bottom directly grounded — whose
// dynamic nodes feed a static NOR: out = NOR(dyn1, dyn2) = f1 * f2. Dually
// a parallel root f = f1 + f2 splits into stages joined by a static NAND.
// Both keep the output monotonically rising, so domino composition rules
// are unchanged.
//
// The PBE payoff of the series split: a stack like (A*B+C)*(D*E+F) needs
// two discharge devices as one gate (fig. 4(b)), but zero as a compound
// pair, because each parallel stack now sits directly on ground.

// CompoundKind names the static output stage of a compound gate.
type CompoundKind uint8

const (
	// CompoundNAND joins parallel-split stages: out = NAND(dyn...).
	CompoundNAND CompoundKind = iota
	// CompoundNOR joins series-split stages: out = NOR(dyn...).
	CompoundNOR
)

func (k CompoundKind) String() string {
	if k == CompoundNOR {
		return "nor"
	}
	return "nand"
}

// Stage is one dynamic stage of a compound gate.
type Stage struct {
	Tree       *sp.Tree
	Discharges []pbe.Point
	Footed     bool
}

// CompoundInfo carries the compound realization of a gate. Gate.Tree
// still describes the full logic function (the stages partition its root
// children), so evaluation and equivalence checking are unchanged.
type CompoundInfo struct {
	Kind   CompoundKind
	Stages []Stage
}

// CompoundOptions tunes the post-mapping compound transformation.
type CompoundOptions struct {
	// MinSaving is the minimum total-transistor saving required to
	// convert a gate (>= 1 keeps only strictly profitable conversions).
	MinSaving int
	// SplitWiderThan, when positive, force-splits every gate whose
	// parallel root is wider than this bound even when the conversion
	// costs transistors: the paper motivates solution 7 by the noise
	// robustness of narrower dynamic stages, not only by device count.
	SplitWiderThan int
}

// DefaultCompoundOptions converts every strictly profitable gate.
func DefaultCompoundOptions() CompoundOptions { return CompoundOptions{MinSaving: 1} }

// CompoundStats summarizes a transformation.
type CompoundStats struct {
	Converted int // gates turned into compound pairs
	Saved     int // total transistors saved
}

// CompoundTransform rewrites gates of the result into two-stage compound
// gates wherever that strictly reduces the total transistor count
// (discharge savings versus the extra precharge, keeper, foot and the
// wider static output stage). The result is modified in place and its
// statistics recomputed; the returned stats summarize the conversions.
func CompoundTransform(res *Result, opt CompoundOptions) (CompoundStats, error) {
	if opt.MinSaving < 1 {
		opt.MinSaving = 1
	}
	var cs CompoundStats
	for _, g := range res.Gates {
		if g.Compound != nil {
			continue
		}
		best, saving := bestSplit(g, res.Options.AlwaysFooted, res.Options.SequenceAware)
		forced := opt.SplitWiderThan > 0 && g.Tree.Kind == sp.Parallel &&
			g.Tree.Width() > opt.SplitWiderThan
		if best == nil || (saving < opt.MinSaving && !forced) {
			continue
		}
		g.Compound = best
		// The per-gate discharge list now lives per stage.
		g.Discharges = nil
		for _, st := range best.Stages {
			g.Discharges = append(g.Discharges, st.Discharges...)
		}
		g.Footed = false
		for _, st := range best.Stages {
			if st.Footed {
				g.Footed = true // any stage foot counts for reporting
			}
		}
		cs.Converted++
		cs.Saved += saving
	}
	res.computeStats()
	return cs, nil
}

// bestSplit searches the two-way splits of the gate's root composition
// and returns the most profitable compound realization, or nil.
func bestSplit(g *Gate, alwaysFooted, seqAware bool) (*CompoundInfo, int) {
	root := g.Tree
	if root.Kind == sp.Leaf || len(root.Children) < 2 {
		return nil, 0
	}
	kind := CompoundNAND
	if root.Kind == sp.Series {
		kind = CompoundNOR
	}
	oldCost := gateDeviceCost(g.Pulldown(), 1, []bool{g.Footed}, 2, len(g.Discharges))

	var best *CompoundInfo
	bestSaving := -1 << 30
	for split := 1; split < len(root.Children); split++ {
		a := regroup(root.Kind, root.Children[:split])
		b := regroup(root.Kind, root.Children[split:])
		stages := []Stage{makeStage(a, alwaysFooted, seqAware), makeStage(b, alwaysFooted, seqAware)}
		disch := len(stages[0].Discharges) + len(stages[1].Discharges)
		feet := []bool{stages[0].Footed, stages[1].Footed}
		// Static 2-input NAND/NOR output stage: 4 devices.
		newCost := gateDeviceCost(g.Pulldown(), 2, feet, 4, disch)
		if saving := oldCost - newCost; saving > bestSaving {
			cp := &CompoundInfo{Kind: kind, Stages: stages}
			best, bestSaving = cp, saving
		}
	}
	return best, bestSaving
}

// regroup rebuilds a stage pulldown from a slice of the root's children
// without mutating the original tree.
func regroup(kind sp.Kind, children []*sp.Tree) *sp.Tree {
	cloned := make([]*sp.Tree, len(children))
	for i, c := range children {
		cloned[i] = c.Clone()
	}
	if len(cloned) == 1 {
		return cloned[0]
	}
	if kind == sp.Series {
		return sp.NewSeries(cloned...)
	}
	return sp.NewParallel(cloned...)
}

func makeStage(t *sp.Tree, alwaysFooted, seqAware bool) Stage {
	discharges := pbe.GateDischargePoints(t)
	if seqAware {
		discharges = pbe.PruneUnexcitable(t, discharges)
	}
	return Stage{
		Tree:       t,
		Discharges: discharges,
		Footed:     alwaysFooted || t.HasPI(),
	}
}

// gateDeviceCost counts the devices of a (possibly compound) gate:
// pulldown transistors, one precharge and keeper per stage, the static
// output stage, the stage feet and the discharge devices.
func gateDeviceCost(pulldown, stages int, feet []bool, outputDevices, discharges int) int {
	c := pulldown + 2*stages + outputDevices + discharges
	for _, f := range feet {
		if f {
			c++
		}
	}
	return c
}

// Kindless helpers used by result/netlist code.

// StageCount returns the number of dynamic stages (1 for plain domino).
func (g *Gate) StageCount() int {
	if g.Compound == nil {
		return 1
	}
	return len(g.Compound.Stages)
}

// StageTrees returns the pulldown tree per stage.
func (g *Gate) StageTrees() []*sp.Tree {
	if g.Compound == nil {
		return []*sp.Tree{g.Tree}
	}
	trees := make([]*sp.Tree, len(g.Compound.Stages))
	for i, st := range g.Compound.Stages {
		trees[i] = st.Tree
	}
	return trees
}

// validateCompound checks a compound gate's structural invariants.
func (g *Gate) validateCompound(seqAware bool) error {
	ci := g.Compound
	if ci == nil {
		return nil
	}
	if len(ci.Stages) < 2 {
		return fmt.Errorf("compound gate %d has %d stages", g.ID, len(ci.Stages))
	}
	wantKind := sp.Parallel
	if ci.Kind == CompoundNOR {
		wantKind = sp.Series
	}
	if g.Tree.Kind != wantKind {
		return fmt.Errorf("compound gate %d: %s split of %s root", g.ID, ci.Kind, g.Tree.Kind)
	}
	total := 0
	for i, st := range ci.Stages {
		if err := st.Tree.Validate(); err != nil {
			return fmt.Errorf("compound gate %d stage %d: %w", g.ID, i, err)
		}
		total += st.Tree.Transistors()
		want := pbe.GateDischargePoints(st.Tree)
		if seqAware {
			want = pbe.PruneUnexcitable(st.Tree, want)
		}
		if len(want) != len(st.Discharges) {
			return fmt.Errorf("compound gate %d stage %d: %d discharges recorded, analysis demands %d",
				g.ID, i, len(st.Discharges), len(want))
		}
	}
	if total != g.Tree.Transistors() {
		return fmt.Errorf("compound gate %d: stages cover %d transistors of %d",
			g.ID, total, g.Tree.Transistors())
	}
	return nil
}
