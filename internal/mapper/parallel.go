package mapper

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"soidomino/internal/logic"
	"soidomino/internal/obs"
)

// parallelMinNodes is the auto-mode (Workers == 0) cutoff: below it the
// pool's setup and scheduling overhead exceeds the DP work, so small
// networks run sequentially. An explicit Workers > 1 is always honored —
// tests and the par-determinism gate rely on exercising the pool on tiny
// circuits.
const parallelMinNodes = 64

// effectiveWorkers resolves Options.Workers against the run: 0 means
// GOMAXPROCS (sequential below parallelMinNodes), 1 is the sequential
// engine, and any value is capped at the node count. A budgeted Pareto
// run is forced sequential: TupleBudget degradation depends on the
// cumulative kept-tuple count in node-completion order, which a pool
// would make schedule-dependent — the one mode where parallel execution
// cannot be byte-identical.
func (e *engine) effectiveWorkers() int {
	if e.cfg.Pareto && e.cfg.TupleBudget > 0 {
		return 1
	}
	n := e.net.Len()
	w := e.cfg.Workers
	if w == 0 {
		if n < parallelMinNodes {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return max(w, 1)
}

// nodeError pairs a failing node with its error so the pool can report
// deterministically-chosen failures (lowest node id, echo cancellations
// suppressed). Which error a failing run surfaces is best-effort — the
// determinism contract covers successful results only.
type nodeError struct {
	id  int
	err error
}

// processParallel fills the DP tables with a readiness-scheduled worker
// pool: a node becomes runnable the moment every non-leaf fanin's table
// exists (indegree counting over the fanin DAG — no global level
// barriers), so independent cones map concurrently. Determinism comes
// from the state layout, not from ordering: every per-node slot
// (tables, fronts, formed, gateChoice, hasGate) is written by exactly
// one task, all tie-breaking reads only finished fanin tables, each
// worker records into a private stats shard and span buffer, and the
// shards are merged — all counters commutative, the high-water mark a
// max — with spans emitted in node order after the pool drains.
//
// Memory visibility rides the scheduler itself: a completed node's
// table writes happen before its atomic indegree decrements, which
// happen before the ready-channel send that releases the dependent, so
// a running task observes all of its fanins' writes without any lock
// around the shared slices.
func (e *engine) processParallel(workers int) error {
	n := e.net.Len()
	ctx, cancel := context.WithCancel(e.ctx)
	defer cancel()

	// Every node is a task — including leaves and constants, whose
	// processNode bodies are trivial — so per-node error detection and
	// the CancelChecks stat match the sequential loop exactly. Only
	// And/Or fanins impose ordering: leaves have no DP state to wait on.
	indeg := make([]int32, n)
	dependents := make([][]int32, n)
	for id := range e.net.Nodes {
		node := &e.net.Nodes[id]
		if node.Op != logic.And && node.Op != logic.Or {
			continue
		}
		for _, f := range node.Fanin {
			if e.isLeaf(f) {
				continue
			}
			dependents[f] = append(dependents[f], int32(id))
			indeg[id]++
		}
	}
	ready := make(chan int32, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready <- int32(id)
		}
	}

	var (
		remaining atomic.Int64
		mu        sync.Mutex
		failures  []nodeError
		panicked  any
		wg        sync.WaitGroup
	)
	remaining.Store(int64(n))
	shards := make([]*obs.Stats, workers)
	spanBufs := make([][]obs.PendingSpan, workers)
	for w := 0; w < workers; w++ {
		nc := &nodeCtx{ctx: ctx}
		if e.stats != nil {
			nc.stats = new(obs.Stats)
			shards[w] = nc.stats
		}
		if e.tracer != nil {
			nc.spans = make([]obs.PendingSpan, n)
			spanBufs[w] = nc.spans
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic in a worker (e.g. an armed Panic faultpoint) is
			// re-raised on the run's goroutine after the pool drains, so
			// the service's per-job panic isolation still catches it.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
					cancel()
				}
			}()
			for {
				select {
				case <-ctx.Done():
					return
				case id, ok := <-ready:
					if !ok {
						return
					}
					if err := e.processNode(nc, int(id)); err != nil {
						mu.Lock()
						failures = append(failures, nodeError{int(id), err})
						mu.Unlock()
						cancel()
						return
					}
					for _, p := range dependents[id] {
						if atomic.AddInt32(&indeg[p], -1) == 0 {
							ready <- p
						}
					}
					if remaining.Add(-1) == 0 {
						close(ready)
					}
				}
			}
		}()
	}
	wg.Wait()

	for _, s := range shards {
		e.stats.Merge(s)
	}
	if e.tracer != nil {
		for id := 0; id < n; id++ {
			for _, buf := range spanBufs {
				e.tracer.Emit(buf[id])
			}
		}
	}
	if panicked != nil {
		panic(panicked)
	}
	if len(failures) > 0 {
		sort.Slice(failures, func(i, j int) bool { return failures[i].id < failures[j].id })
		// The first failure cancels the pool, so workers mid-node may
		// record echo cancellations of the internal ctx; prefer a root
		// cause unless the run's own context really was canceled.
		if e.ctx.Err() == nil {
			for _, f := range failures {
				if !errors.Is(f.err, context.Canceled) {
					return f.err
				}
			}
		}
		return failures[0].err
	}
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("mapper: %s canceled: %w", e.cfg.algorithm, err)
	}
	return nil
}
