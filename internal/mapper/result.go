package mapper

import (
	"fmt"
	"strings"

	"soidomino/internal/logic"
	"soidomino/internal/pbe"
	"soidomino/internal/sp"
)

// Gate is one mapped domino gate. Besides the pulldown tree it always
// carries a clocked p-precharge transistor, a static output inverter (two
// devices) and a keeper; Footed gates add an n-clock foot; Discharges lists
// the internal junctions carrying clocked p-discharge transistors.
type Gate struct {
	ID         int
	Output     string // name of the gate's output signal
	NodeID     int    // unate-network node this gate implements
	Tree       *sp.Tree
	Discharges []pbe.Point
	// PredictedDischarges is the DP's own forecast of how many p-discharge
	// devices this gate's pulldown tree carries: the chosen tuple's
	// OwnDisch, recorded at traceback before any structural analysis. For
	// algorithms that leave the traced tree untouched it must equal the
	// unpruned pbe.GateDischargePoints count exactly — the fuzzing oracles
	// cross-check the two. It is -1 when the prediction is not meaningful:
	// RS variants rearrange trees after traceback, invalidating the DP
	// bookkeeping. Note Discharges itself may be shorter when
	// SequenceAware pruning removed unexcitable points.
	PredictedDischarges int
	Footed              bool
	Level               int // 1-based domino level (max over driving gates + 1)
	// Compound is non-nil for gates realized as multiple dynamic stages
	// joined by a static NAND/NOR output (the paper's solution 7; see
	// CompoundTransform). Tree still describes the full function.
	Compound *CompoundInfo
}

// Pulldown returns the number of nMOS pulldown transistors.
func (g *Gate) Pulldown() int { return g.Tree.Transistors() }

// LogicTransistors returns the gate's contribution to the paper's T_logic:
// pulldown + p-clock and keeper per stage + the static output stage (an
// inverter for plain domino, a NAND/NOR for compound gates) + the stage
// feet.
func (g *Gate) LogicTransistors() int {
	if g.Compound == nil {
		n := g.Pulldown() + 4
		if g.Footed {
			n++
		}
		return n
	}
	n := g.Pulldown()
	n += 2 * len(g.Compound.Stages) // precharge + keeper per stage
	n += 2 * len(g.Compound.Stages) // static NAND/NOR: 2 devices per input
	for _, st := range g.Compound.Stages {
		if st.Footed {
			n++
		}
	}
	return n
}

// ClockTransistors returns the gate's clock-connected devices: one p-clock
// per stage, the stage feet, and one per discharge point (paper table
// III's T_clock).
func (g *Gate) ClockTransistors() int {
	if g.Compound == nil {
		n := 1 + len(g.Discharges)
		if g.Footed {
			n++
		}
		return n
	}
	n := len(g.Compound.Stages) + len(g.Discharges)
	for _, st := range g.Compound.Stages {
		if st.Footed {
			n++
		}
	}
	return n
}

// Stats aggregates the paper's reported metrics over a mapped circuit.
type Stats struct {
	TLogic int // all domino transistors (pulldown, clocks, inverter, keeper)
	TDisch int // p-discharge transistors
	TTotal int // TLogic + TDisch
	Gates  int
	TClock int // clock-connected transistors (p-clock, n-clock, p-discharge)
	Levels int // domino levels on the longest input-to-output path
	// InputInverters counts distinct complemented primary-input literals
	// used. The paper's unate-network model provides both input phases for
	// free (inversions are pushed to the primary inputs); reported for
	// completeness but not included in TLogic.
	InputInverters int
}

func (s Stats) String() string {
	return fmt.Sprintf("Tlogic=%d Tdisch=%d Ttotal=%d gates=%d Tclock=%d levels=%d",
		s.TLogic, s.TDisch, s.TTotal, s.Gates, s.TClock, s.Levels)
}

// Result is a mapped domino circuit.
type Result struct {
	Name      string
	Algorithm string
	Options   Options
	Gates     []*Gate // in topological order (drivers precede users)
	// OutputGate maps each primary-output name to the gate driving it.
	OutputGate map[string]int
	// ConstOutputs lists primary outputs whose function folded to a
	// constant; they are tied to a supply rail, not to a gate.
	ConstOutputs map[string]bool
	// Source is the unate network that was mapped.
	Source *logic.Network
	Stats  Stats
	// Degraded marks a Pareto run whose Options.TupleBudget overflowed:
	// the mapping is complete, functionally correct and audit-clean,
	// but frontier exploration was truncated, so it may be worse than
	// an unbudgeted run. Consumers that promised optimality must check
	// this flag; consumers that need any safe mapping can ignore it.
	Degraded bool
}

// Eval computes all primary-output values for one assignment of
// primary-input values (keyed by input name). Domino gates are
// non-inverting: each gate's output is simply whether its pulldown network
// conducts, because the dynamic node discharges exactly when it does and
// the output inverter restores polarity.
func (r *Result) Eval(inputs map[string]bool) (map[string]bool, error) {
	values := make(map[string]bool, len(inputs)+len(r.Gates))
	for name, v := range inputs {
		values[name] = v
	}
	for _, id := range r.Source.Inputs {
		name := r.Source.Nodes[id].Name
		if _, ok := values[name]; !ok {
			return nil, fmt.Errorf("mapper: missing value for input %q", name)
		}
	}
	for _, g := range r.Gates {
		values[g.Output] = g.Tree.Conducts(values)
	}
	out := make(map[string]bool, len(r.OutputGate)+len(r.ConstOutputs))
	for name, gid := range r.OutputGate {
		out[name] = values[r.Gates[gid].Output]
	}
	for name, v := range r.ConstOutputs {
		out[name] = v
	}
	return out, nil
}

// Dump renders every gate for debugging and golden tests.
func (r *Result) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s mapped by %s: %s\n", r.Name, r.Algorithm, r.Stats)
	for _, g := range r.Gates {
		foot := ""
		if g.Footed {
			foot = " footed"
		}
		kind := ""
		if g.Compound != nil {
			kind = fmt.Sprintf(" compound-%s(%d)", g.Compound.Kind, len(g.Compound.Stages))
		}
		fmt.Fprintf(&b, "  gate %d (%s, level %d%s%s): %s", g.ID, g.Output, g.Level, foot, kind, g.Tree)
		if len(g.Discharges) > 0 {
			fmt.Fprintf(&b, " [%d discharge]", len(g.Discharges))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// computeStats recounts every metric from the finished netlist. Counting
// from the netlist (rather than the DP accumulators) is exact in the
// presence of multi-fanout gates shared between cones.
func (r *Result) computeStats() {
	var s Stats
	inverted := make(map[string]bool)
	for _, g := range r.Gates {
		s.TLogic += g.LogicTransistors()
		s.TDisch += len(g.Discharges)
		s.TClock += g.ClockTransistors()
		s.Gates++
		if g.Level > s.Levels {
			s.Levels = g.Level
		}
		for _, leaf := range g.Tree.Leaves() {
			if leaf.Negated && leaf.FromPI {
				inverted[leaf.Signal] = true
			}
		}
	}
	s.TTotal = s.TLogic + s.TDisch
	s.InputInverters = len(inverted)
	r.Stats = s
}
