package mapper

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soidomino/internal/logic"
	"soidomino/internal/pbe"
	"soidomino/internal/sp"
)

// This file validates the paper's optimality claim ("this algorithm
// guarantees optimal-cost solutions", §IV) by brute force: on small
// fanout-free unate trees, every possible implementation — every gate
// partition, every series order, every structure — is enumerated and the
// true minimum compared against the DP's answer.
//
//   - The bulk baseline minimizes logic transistors only; its bucketed DP
//     (one best tuple per {W,H}) is exact for that scalar cost.
//   - The SOI objective (logic + discharge transistors) is NOT exactly
//     optimized by the paper's single-tuple heuristic: discarding a
//     costlier tuple with fewer potential points can lose the global
//     optimum. The Pareto extension keeps all incomparable tuples and
//     recovers exactness; the plain algorithm must land between the
//     optimum and the baseline.

// bruteImpl is one partial implementation of a cone: a pulldown tree whose
// gate-driven leaves' complete cost is accumulated in below.
type bruteImpl struct {
	tree  *sp.Tree
	below int // transistors of completed gates beneath (incl. their discharges)
}

// bruteGateCost completes a partial implementation into a footed gate.
func bruteGateCost(im bruteImpl, withDischarges bool) int {
	c := im.below + im.tree.Transistors() + 5 // inverter 2 + keeper + p-clock + n-clock
	if withDischarges {
		c += len(pbe.GateDischargePoints(im.tree))
	}
	return c
}

// bruteEnumerate lists every partial implementation of the cone at node.
func bruteEnumerate(n *logic.Network, node int, maxW, maxH int, withDischarges bool, gateSeq *int) []bruteImpl {
	nd := n.Nodes[node]
	switch nd.Op {
	case logic.Input:
		return []bruteImpl{{tree: sp.NewLeaf(nd.Name, false, -1)}}
	case logic.Not:
		in := n.Nodes[nd.Fanin[0]]
		return []bruteImpl{{tree: sp.NewLeaf(in.Name, true, -1)}}
	}
	as := bruteEnumerate(n, nd.Fanin[0], maxW, maxH, withDischarges, gateSeq)
	bs := bruteEnumerate(n, nd.Fanin[1], maxW, maxH, withDischarges, gateSeq)
	var out []bruteImpl
	add := func(t *sp.Tree, below int) {
		if t.Width() > maxW || t.Height() > maxH {
			return
		}
		im := bruteImpl{tree: t, below: below}
		out = append(out, im)
	}
	for _, a := range as {
		for _, b := range bs {
			below := a.below + b.below
			if nd.Op == logic.Or {
				add(sp.NewParallel(a.tree, b.tree), below)
			} else {
				add(sp.NewSeries(a.tree, b.tree), below)
				add(sp.NewSeries(b.tree, a.tree), below)
			}
		}
	}
	// Additionally, any structure built here may be closed into a gate
	// whose output drives a single transistor upstream.
	closed := make([]bruteImpl, 0, len(out))
	for _, im := range out {
		*gateSeq++
		closed = append(closed, bruteImpl{
			tree:  sp.NewLeaf("bg", false, *gateSeq),
			below: bruteGateCost(im, withDischarges),
		})
	}
	return append(out, closed...)
}

// bruteMin returns the true minimum complete cost of a single-output tree
// network.
func bruteMin(n *logic.Network, maxW, maxH int, withDischarges bool) int {
	root := n.Outputs[0].Node
	seq := 0
	best := -1
	for _, im := range bruteEnumerate(n, root, maxW, maxH, withDischarges, &seq) {
		if im.tree.Kind == sp.Leaf && !im.tree.FromPI {
			// A cone closed into a gate whose output goes nowhere: the
			// engine's root formation covers this case via the unclosed
			// variant, without a redundant buffer gate.
			continue
		}
		c := bruteGateCost(im, withDischarges)
		if best < 0 || c < best {
			best = c
		}
	}
	return best
}

// randomUnateTree builds a fanout-free unate network with the given leaf
// budget; leaves may be complemented inputs.
func randomUnateTree(rng *rand.Rand, leaves int) *logic.Network {
	n := logic.New("btree")
	pool := make([]int, leaves)
	for i := range pool {
		in := n.AddInput(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if rng.Intn(4) == 0 {
			pool[i] = n.AddGate(logic.Not, in)
		} else {
			pool[i] = in
		}
	}
	for len(pool) > 1 {
		i := rng.Intn(len(pool))
		x := pool[i]
		pool = append(pool[:i], pool[i+1:]...)
		j := rng.Intn(len(pool))
		op := logic.And
		if rng.Intn(2) == 0 {
			op = logic.Or
		}
		pool[j] = n.AddGate(op, x, pool[j])
	}
	n.AddOutput("f", pool[0])
	return n
}

func optimalityOptions() Options {
	opt := DefaultOptions()
	opt.MaxWidth, opt.MaxHeight = 3, 4 // small bounds force gate partitioning
	opt.AlwaysFooted = true            // matches the brute force's flat +5
	return opt
}

// TestBaselineOptimalOnTrees: the bucketed DP achieves the true minimum
// logic-transistor count on fanout-free trees.
func TestBaselineOptimalOnTrees(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(61))}
	opt := optimalityOptions()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomUnateTree(rng, 3+rng.Intn(4))
		res, err := DominoMap(n, opt)
		if err != nil {
			return false
		}
		want := bruteMin(n, opt.MaxWidth, opt.MaxHeight, false)
		return res.Stats.TLogic == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestParetoOptimalOnTrees: with the frontier extension the SOI mapper
// achieves the true minimum total (logic + discharge) cost, while the
// paper's single-tuple algorithm stays within [optimum, baseline-total].
func TestParetoOptimalOnTrees(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(62))}
	opt := optimalityOptions()
	pOpt := opt
	pOpt.Pareto = true
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomUnateTree(rng, 3+rng.Intn(4))
		want := bruteMin(n, opt.MaxWidth, opt.MaxHeight, true)

		pareto, err := SOIDominoMap(n, pOpt)
		if err != nil || pareto.Audit() != nil {
			return false
		}
		if pareto.Stats.TTotal != want {
			return false
		}
		plain, err := SOIDominoMap(n, opt)
		if err != nil || plain.Audit() != nil {
			return false
		}
		return plain.Stats.TTotal >= want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestParetoNeverWorse: across larger random circuits, the frontier
// extension never produces a costlier mapping than the plain algorithm,
// and both remain functionally correct.
func TestParetoNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	opt := DefaultOptions()
	pOpt := opt
	pOpt.Pareto = true
	for trial := 0; trial < 15; trial++ {
		n := randomCircuit(rng)
		plain := mapAll(t, n, SOIDominoMap, opt)
		pareto := mapAll(t, n, func(u *logic.Network, _ Options) (*Result, error) {
			return SOIDominoMap(u, pOpt)
		}, pOpt)
		if pareto.Stats.TTotal > plain.Stats.TTotal {
			t.Errorf("trial %d: pareto Ttotal %d > plain %d", trial,
				pareto.Stats.TTotal, plain.Stats.TTotal)
		}
		checkMappedEquivalent(t, n, pareto)
	}
}

// TestParetoFindsStrictImprovement documents that the frontier extension
// is not vacuous: at least one circuit in the random family must map
// strictly cheaper than with the paper's single-tuple heuristic.
func TestParetoFindsStrictImprovement(t *testing.T) {
	opt := optimalityOptions()
	pOpt := opt
	pOpt.Pareto = true
	improved := 0
	for seed := int64(0); seed < 400 && improved == 0; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := randomUnateTree(rng, 4+rng.Intn(4))
		plain, err := SOIDominoMap(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		pareto, err := SOIDominoMap(n, pOpt)
		if err != nil {
			t.Fatal(err)
		}
		if pareto.Stats.TTotal < plain.Stats.TTotal {
			improved++
		}
	}
	if improved == 0 {
		t.Skip("no strict improvement found in this family; heuristic matched the optimum everywhere")
	}
}
