package mapper

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
)

// randomUnateNetwork builds a seeded random 2-input AND/OR DAG large
// enough to exercise Pareto frontiers (inputs only, no inverters: the
// network is trivially unate).
func randomUnateNetwork(seed int64, inputs, gates int) *logic.Network {
	rng := rand.New(rand.NewSource(seed))
	n := logic.New("rand")
	ids := make([]int, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		ids = append(ids, n.AddInput(string(rune('a'+i%26))+strings.Repeat("x", i/26)))
	}
	for i := 0; i < gates; i++ {
		op := logic.And
		if rng.Intn(2) == 0 {
			op = logic.Or
		}
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		for b == a {
			b = ids[rng.Intn(len(ids))]
		}
		ids = append(ids, n.AddGate(op, a, b))
	}
	n.AddOutput("f", ids[len(ids)-1])
	return n
}

// TestTupleBudgetDegradesGracefully: a Pareto run whose budget overflows
// must finish with a valid, audit-clean, functionally-equivalent mapping
// flagged Degraded — never fail or silently differ in correctness.
func TestTupleBudgetDegradesGracefully(t *testing.T) {
	n := randomUnateNetwork(7, 6, 40)

	full := DefaultOptions()
	full.Pareto = true
	ref, err := SOIDominoMap(n, full)
	if err != nil {
		t.Fatalf("unbudgeted pareto run failed: %v", err)
	}
	if ref.Degraded {
		t.Fatal("unbudgeted run claims to be degraded")
	}

	tight := full
	tight.TupleBudget = 4
	res, err := SOIDominoMap(n, tight)
	if err != nil {
		t.Fatalf("budgeted run failed instead of degrading: %v", err)
	}
	if !res.Degraded {
		t.Fatal("budget 4 over a 40-gate network did not trip degradation")
	}
	if err := res.Audit(); err != nil {
		t.Fatalf("degraded result fails audit: %v", err)
	}
	// The degraded mapping must still compute the same function.
	rng := rand.New(rand.NewSource(99))
	inputs := make([]string, 0, len(n.Inputs))
	for _, id := range n.Inputs {
		inputs = append(inputs, n.Nodes[id].Name)
	}
	for trial := 0; trial < 64; trial++ {
		vec := make(map[string]bool, len(inputs))
		for _, name := range inputs {
			vec[name] = rng.Intn(2) == 1
		}
		want, err := ref.Eval(vec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Eval(vec)
		if err != nil {
			t.Fatal(err)
		}
		for out, w := range want {
			if got[out] != w {
				t.Fatalf("degraded mapping diverges on output %q (vec %v)", out, vec)
			}
		}
	}
	// The degraded run must not beat the unbudgeted frontier: equal or
	// worse total cost is the expected price of trimming.
	if res.Stats.TTotal < ref.Stats.TTotal {
		t.Errorf("degraded TTotal %d beats unbudgeted %d", res.Stats.TTotal, ref.Stats.TTotal)
	}
	// A generous budget must not degrade.
	loose := full
	loose.TupleBudget = 1 << 20
	if res, err := SOIDominoMap(n, loose); err != nil || res.Degraded {
		t.Errorf("generous budget degraded (err=%v)", err)
	}
}

func TestTupleBudgetIgnoredOutsidePareto(t *testing.T) {
	n := fig3Network()
	opt := fig3Options()
	opt.TupleBudget = 1
	res, err := SOIDominoMap(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("non-Pareto run reports degradation")
	}
}

func TestNegativeTupleBudgetRejected(t *testing.T) {
	opt := DefaultOptions()
	opt.TupleBudget = -1
	if _, err := SOIDominoMap(fig3Network(), opt); err == nil {
		t.Fatal("negative TupleBudget accepted")
	}
}

// TestFaultPointsAbortRun: error faults at the DP and traceback points
// surface as run errors naming the point, and a clean context is
// untouched by a registry armed elsewhere.
func TestFaultPointsAbortRun(t *testing.T) {
	n := fig3Network()
	for _, point := range []string{PointCombine, PointTraceback} {
		reg := faultpoint.New(1)
		reg.Arm(point, faultpoint.Fault{Kind: faultpoint.Error, Prob: 1})
		ctx := faultpoint.With(context.Background(), reg)
		_, err := SOIDominoMapContext(ctx, n, fig3Options())
		if !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("point %s: err = %v, want ErrInjected", point, err)
		}
		if !strings.Contains(err.Error(), point) {
			t.Errorf("point %s: error %q does not name the point", point, err)
		}
	}
	// No registry on the context: the same options map cleanly.
	if _, err := SOIDominoMapContext(context.Background(), n, fig3Options()); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
}

// TestFlipFaultInvertsReorder pins that the context-threaded flip point
// reproduces SetFaultInvertSOIReorder's effect: with the flip armed at
// probability 1 the SOI mapper builds the same (worse) trees as the
// legacy global hook, without touching any other run.
func TestFlipFaultInvertsReorder(t *testing.T) {
	n := randomUnateNetwork(3, 5, 24)
	opt := DefaultOptions()

	prev := SetFaultInvertSOIReorder(true)
	legacy, err := SOIDominoMap(n, opt)
	SetFaultInvertSOIReorder(prev)
	if err != nil {
		t.Fatal(err)
	}

	reg := faultpoint.New(1)
	reg.Arm(PointInvertReorder, faultpoint.Fault{Kind: faultpoint.Flip, Prob: 1})
	flipped, err := SOIDominoMapContext(faultpoint.With(context.Background(), reg), n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if flipped.Stats != legacy.Stats {
		t.Errorf("flip point stats %+v differ from legacy hook stats %+v",
			flipped.Stats, legacy.Stats)
	}
	if reg.Fired()[PointInvertReorder] == 0 {
		t.Error("flip point never fired")
	}

	clean, err := SOIDominoMap(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.TDisch > legacy.Stats.TDisch {
		t.Errorf("clean run TDisch %d worse than inverted %d — fault had no bite",
			clean.Stats.TDisch, legacy.Stats.TDisch)
	}
}
