package mapper

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteDot renders the mapped circuit in Graphviz dot format: one node per
// domino gate labeled with its pulldown expression, discharge count and
// level; edges follow the domino cascade; primary inputs as boxes and
// outputs as double circles. Useful for inspecting small mappings.
func (r *Result) WriteDot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", r.Name)

	inputs := make(map[string]bool)
	for _, g := range r.Gates {
		for _, leaf := range g.Tree.Leaves() {
			if leaf.GateRef < 0 {
				inputs[leaf.Signal] = true
			}
		}
	}
	names := make([]string, 0, len(inputs))
	for in := range inputs {
		names = append(names, in)
	}
	sort.Strings(names)
	for _, in := range names {
		fmt.Fprintf(bw, "  in_%s [label=%q, shape=box];\n", sanitizeDotName(in), in)
	}

	for _, g := range r.Gates {
		kind := "domino"
		if g.Compound != nil {
			kind = fmt.Sprintf("compound-%s", g.Compound.Kind)
		}
		foot := ""
		if g.Footed {
			foot = ", footed"
		}
		fmt.Fprintf(bw, "  g%d [label=\"%s\\n%s\\n%s, L%d%s, %dT+%dD\", shape=ellipse];\n",
			g.ID, g.Output, g.Tree, kind, g.Level, foot,
			g.LogicTransistors(), len(g.Discharges))
		seen := make(map[string]bool)
		for _, leaf := range g.Tree.Leaves() {
			var src string
			if leaf.GateRef >= 0 {
				src = fmt.Sprintf("g%d", leaf.GateRef)
			} else {
				src = "in_" + sanitizeDotName(leaf.Signal)
			}
			if seen[src] {
				continue
			}
			seen[src] = true
			fmt.Fprintf(bw, "  %s -> g%d;\n", src, g.ID)
		}
	}

	outs := make([]string, 0, len(r.OutputGate))
	for name := range r.OutputGate {
		outs = append(outs, name)
	}
	sort.Strings(outs)
	for _, name := range outs {
		fmt.Fprintf(bw, "  out_%s [label=%q, shape=doublecircle];\n", sanitizeDotName(name), name)
		fmt.Fprintf(bw, "  g%d -> out_%s;\n", r.OutputGate[name], sanitizeDotName(name))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func sanitizeDotName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
