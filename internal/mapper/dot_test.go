package mapper

import (
	"strings"
	"testing"
)

func TestWriteDotMapped(t *testing.T) {
	res, err := SOIDominoMap(fig2Network(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{
		"digraph \"fig2\"",
		"in_A [label=\"A\", shape=box]",
		"D*(A+B+C)",
		"out_f",
		"doublecircle",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestWriteDotDedupesEdges(t *testing.T) {
	// Gate using the same input twice gets one edge from it.
	n := fig3Network()
	res, err := DominoMap(n, fig3Options())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(sb.String(), "in_a -> g0;"); c != 1 {
		t.Errorf("edge from a appears %d times", c)
	}
}

func TestWriteDotCompoundLabel(t *testing.T) {
	res, err := DominoMap(stackedStacks(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompoundTransform(res, DefaultCompoundOptions()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "compound-nor") {
		t.Errorf("dot missing compound label:\n%s", sb.String())
	}
}
