package mapper

import (
	"fmt"

	"soidomino/internal/pbe"
)

// Audit checks the structural invariants of a mapped circuit and returns
// the first violation. It is used by the test suite and by downstream
// consumers that want a defense against mapper regressions:
//
//   - every pulldown tree is a valid SP tree within the W/H bounds,
//   - foot transistors appear exactly where PI-driven pulldowns require,
//   - the recorded discharge points are exactly what the PBE analysis
//     demands for the tree (so no susceptible junction is unprotected),
//   - gates are topologically ordered and levels are consistent,
//   - gate-input leaves reference real gates by their output names.
func (r *Result) Audit() error {
	for _, g := range r.Gates {
		if err := g.Tree.Validate(); err != nil {
			return fmt.Errorf("gate %d: %w", g.ID, err)
		}
		if w := g.Tree.Width(); w > r.Options.MaxWidth {
			return fmt.Errorf("gate %d: width %d exceeds max %d", g.ID, w, r.Options.MaxWidth)
		}
		if h := g.Tree.Height(); h > r.Options.MaxHeight {
			return fmt.Errorf("gate %d: height %d exceeds max %d", g.ID, h, r.Options.MaxHeight)
		}
		if g.Compound != nil {
			if err := g.validateCompound(r.Options.SequenceAware); err != nil {
				return err
			}
		} else {
			wantFooted := r.Options.AlwaysFooted || g.Tree.HasPI()
			if g.Footed != wantFooted {
				return fmt.Errorf("gate %d: footed=%v, want %v", g.ID, g.Footed, wantFooted)
			}
			want := pbe.GateDischargePoints(g.Tree)
			if r.Options.SequenceAware {
				want = pbe.PruneUnexcitable(g.Tree, want)
			}
			if len(want) != len(g.Discharges) {
				return fmt.Errorf("gate %d: %d discharge devices recorded, PBE analysis demands %d",
					g.ID, len(g.Discharges), len(want))
			}
		}
		level := 1
		for _, leaf := range g.Tree.Leaves() {
			switch {
			case leaf.GateRef >= 0:
				if leaf.GateRef >= g.ID {
					return fmt.Errorf("gate %d: input references gate %d out of order", g.ID, leaf.GateRef)
				}
				drv := r.Gates[leaf.GateRef]
				if drv.Output != leaf.Signal {
					return fmt.Errorf("gate %d: leaf signal %q does not match gate %d output %q",
						g.ID, leaf.Signal, drv.ID, drv.Output)
				}
				if leaf.Negated {
					return fmt.Errorf("gate %d: gate-driven leaf %q is negated (domino outputs are monotone)",
						g.ID, leaf.Signal)
				}
				if drv.Level+1 > level {
					level = drv.Level + 1
				}
			case leaf.Negated && !leaf.FromPI:
				return fmt.Errorf("gate %d: negated non-PI leaf %q", g.ID, leaf.Signal)
			}
		}
		if g.Level != level {
			return fmt.Errorf("gate %d: level %d, want %d", g.ID, g.Level, level)
		}
	}
	for name, gid := range r.OutputGate {
		if gid < 0 || gid >= len(r.Gates) {
			return fmt.Errorf("output %q references gate %d out of range", name, gid)
		}
	}
	return nil
}
