// Package mapper implements the paper's three technology mappers for
// domino logic:
//
//   - DominoMap: the bulk-CMOS baseline (Zhao–Sapatnekar ICCAD '98 dynamic
//     programming) that ignores the Parasitic Bipolar Effect; p-discharge
//     transistors are inserted by a post-processing pass.
//   - RSMap: DominoMap plus the Rearrange_Stacks post-processing step that
//     reorders series stacks to move parallel sections toward ground before
//     inserting discharges (paper §VI-A).
//   - SOIDominoMap: the paper's contribution (§V): the DP cost includes
//     the discharge transistors implied by each partial structure, series
//     stacks are ordered during combination using par_b and p_dis, and
//     ties are broken by p_dis.
//
// All three accept a unate network (2-input AND/OR gates, inverters only
// directly on primary inputs; see internal/unate) and produce a gate-level
// domino netlist of series-parallel pulldown trees with discharge devices
// attached, ready for transistor-level realization.
package mapper

import "fmt"

// Objective selects the cost the mapper minimizes.
type Objective uint8

const (
	// Area minimizes the total transistor count (paper tables I-III).
	Area Objective = iota
	// Depth minimizes the number of domino levels from inputs to outputs,
	// the paper's delay approximation (table IV).
	Depth
)

func (o Objective) String() string {
	if o == Depth {
		return "depth"
	}
	return "area"
}

// StackOrder selects how the PBE-blind mappers (DominoMap, RSMap) order
// series stacks, a choice they make without regard to discharge points.
type StackOrder uint8

const (
	// OrderSource stacks the first operand on top, following the source
	// network's operand order (the paper's figures are drawn this way).
	OrderSource StackOrder = iota
	// OrderHashed picks a deterministic pseudorandom order per
	// combination. Real netlists reach the mapper with arbitrary operand
	// order, so a PBE-blind baseline lands parallel stacks on the ground
	// side only about half the time; the experiment harness uses this
	// mode so the baseline is neither systematically lucky nor unlucky.
	OrderHashed
)

// Options configures a mapping run. The zero value is not valid; use
// DefaultOptions or fill every field.
type Options struct {
	// MaxWidth and MaxHeight bound the pulldown network of a single gate.
	// The paper uses 5 and 8 for SOI (§VI).
	MaxWidth, MaxHeight int
	// Objective is the cost to minimize.
	Objective Objective
	// ClockWeight is the paper's k: clock-driven transistors (p-clock,
	// n-clock and p-discharge) cost k times a regular transistor under the
	// area objective (table III). Must be >= 1.
	ClockWeight int
	// DepthWeight trades one domino level against discharge transistors
	// under the depth objective. The paper calls the cost "a combination
	// of delay and number of discharge transistors" without giving the
	// weight; the value used is recorded in EXPERIMENTS.md.
	DepthWeight int
	// AlwaysFooted forces an n-clock foot on every gate (the flat "+5"
	// overhead of the paper's listing 1) instead of footing only gates
	// with primary-input-driven pulldown transistors (listing 2).
	AlwaysFooted bool
	// BaselineStackOrder controls series-stack order in the PBE-blind
	// mappers; SOIDominoMap ignores it (it orders stacks by par_b/p_dis).
	BaselineStackOrder StackOrder
	// Pareto enables the frontier extension of SOIDominoMap: instead of
	// the paper's single best tuple per {W,H} (ties broken by p_dis), the
	// DP keeps every (cost, p_dis, p_dis_bot, depth)-incomparable
	// sub-solution and considers both series orders at every AND. This
	// closes the heuristic gap of the paper's tie-breaking (the
	// brute-force optimality tests pin it) at a modest runtime cost.
	// Ignored by the PBE-blind mappers, whose scalar cost makes the
	// frontier collapse to the single best tuple anyway.
	Pareto bool
	// TupleBudget bounds the cumulative number of tuples the Pareto DP
	// keeps across all frontiers of one run (0 = unlimited). When the
	// budget overflows, the run degrades gracefully instead of failing
	// or exhausting memory: from that node on each frontier is trimmed
	// to the single best tuple per {W,H,par_b,has_PI} shape — the
	// paper's own heuristic — and the finished Result is flagged
	// Degraded. Ignored outside Pareto mode (the single-tuple tables
	// are bounded by construction).
	TupleBudget int
	// Workers bounds the goroutines of the dynamic program. 0 picks
	// GOMAXPROCS (with a small-network cutoff where the pool would cost
	// more than it saves); 1 forces the sequential engine; values above 1
	// run the readiness-scheduled parallel engine with exactly that many
	// workers. The engines are byte-identical by contract — every result,
	// gate, stat counter and trace span is independent of Workers — which
	// is why Workers is deliberately excluded from the service cache key
	// (internal/service.encodeOptions) and from the encoded OptionsJSON:
	// it shapes throughput, never the answer.
	Workers int
	// StrashOff disables the structural-hashing + DCE canonicalization
	// front-end (internal/strash) that otherwise runs before decompose.
	// The mapper engines themselves never read it — they consume the
	// already-prepared unate network — but the pipeline
	// (report.PrepareNetworkMode) and the service do, and it is
	// semantic: strash changes fanout counts and operand order, so the
	// mapped result may differ (while staying equivalent). It therefore
	// participates in the service cache key, unlike Workers.
	StrashOff bool
	// SequenceAware enables the paper's §VII future-work refinement:
	// after mapping, discharge points whose PBE charging scenario is
	// unsatisfiable (the required input cube contains a literal and its
	// complement, as in multiplexer and XOR stacks) are pruned
	// (pbe.PruneUnexcitable). The switch-level simulator independently
	// validates the pruning's soundness.
	SequenceAware bool
}

// DefaultOptions returns the paper's evaluation configuration: W<=5, H<=8,
// area objective, unweighted clock transistors.
func DefaultOptions() Options {
	return Options{
		MaxWidth:    5,
		MaxHeight:   8,
		Objective:   Area,
		ClockWeight: 1,
		DepthWeight: 8,
	}
}

func (o Options) validate() error {
	if o.MaxWidth < 2 || o.MaxHeight < 2 {
		return fmt.Errorf("mapper: MaxWidth/MaxHeight must be at least 2 (got %d, %d)",
			o.MaxWidth, o.MaxHeight)
	}
	if o.ClockWeight < 1 {
		return fmt.Errorf("mapper: ClockWeight must be >= 1 (got %d)", o.ClockWeight)
	}
	if o.Objective == Depth && o.DepthWeight < 1 {
		return fmt.Errorf("mapper: DepthWeight must be >= 1 (got %d)", o.DepthWeight)
	}
	if o.TupleBudget < 0 {
		return fmt.Errorf("mapper: TupleBudget must be >= 0 (got %d)", o.TupleBudget)
	}
	if o.Workers < 0 {
		return fmt.Errorf("mapper: Workers must be >= 0 (got %d)", o.Workers)
	}
	return nil
}

// rearrangeMode selects the RS_Map post-processing strength.
type rearrangeMode uint8

const (
	rearrangeNone rearrangeMode = iota
	rearrangeTop                // paper's RS_Map: the gate's ground-side series stack
	rearrangeDeep               // extension: every series group, including branch-internal
)

// config is an Options plus the per-algorithm behaviour switches.
type config struct {
	Options
	algorithm       string
	trackDischarges bool // include materialized discharges in the DP cost
	reorderStacks   bool // order series stacks by par_b/p_dis at combine time
	rearrangePost   rearrangeMode
}
