package mapper

import (
	"context"
	"os"
	"testing"

	"soidomino/internal/obs"
)

// TestTraceOverhead is the `make obs-overhead` guard on the tracer's
// sampling fast path: a run whose nodes are all sampled out must not
// allocate per node — SampleNode has to short-circuit before the
// time.Now()/fmt.Sprintf span machinery. The run-level constant (the
// run instant plus the dp/traceback phase spans) is allowed; anything
// scaling with the node count is the regression this pins. Env-gated
// like TestStatsOverhead so plain `go test ./...` stays load-tolerant.
func TestTraceOverhead(t *testing.T) {
	if os.Getenv("SOIDOMINO_OBS_OVERHEAD") != "1" {
		t.Skip("set SOIDOMINO_OBS_OVERHEAD=1 to run the overhead guard")
	}
	n := unateBench(t, "mux") // 45 And/Or nodes: a per-node alloc shows as +45
	opt := DefaultOptions()
	opt.Workers = 1
	mapOnce := func(ctx context.Context) {
		if _, err := SOIDominoMapContext(ctx, n, opt); err != nil {
			t.Fatal(err)
		}
	}
	base := testing.AllocsPerRun(20, func() { mapOnce(context.Background()) })
	// A sample interval beyond every node id samples everything out
	// (node 0, always sampled, is a primary input with no DP span).
	tr := obs.NewTracer(1 << 30)
	sampledOut := testing.AllocsPerRun(20, func() { mapOnce(obs.WithTracer(context.Background(), tr)) })
	t.Logf("allocs/run: no tracer %.0f, sampled-out tracer %.0f", base, sampledOut)
	if sampledOut-base > 25 {
		t.Errorf("sampled-out tracer adds %.0f allocs/run (want a small run-level constant, not per-node cost)",
			sampledOut-base)
	}
}
