// Package fuzz is the differential fuzzing and property-checking engine
// for the mapping pipeline. It hammers all three mappers (Domino_Map,
// RS_Map, SOI_Domino_Map) with seeded adversarial random networks
// (bench.Random), sweeps each network through a grid of mapping option
// variants under a worker pool with per-case deadlines and panic capture,
// and cross-checks a pluggable oracle set:
//
//   - audit: the mapper's own structural audit
//   - equivalence: functional equivalence against the source network
//   - discharge-prediction: the DP's OwnDisch forecast vs the structural
//     PBE analysis of the traced pulldown tree
//   - netlist: transistor-level realization, device audit and stats
//     cross-check
//   - soisim: a short switch-level simulation — no corrupted PBE events
//     on protected netlists and outputs tracking the mapped function
//   - cross-variant metamorphic relations: T_total(SOI) <= T_total(Domino)
//     + TotalEps and T_disch(SOI) <= T_disch(RS) + DischEps under the area
//     objective
//
// Violations are delta-debugged to a minimal failing circuit (Shrink) and
// written as BLIF plus a JSON manifest into a corpus directory; the
// checked-in corpus replays as an ordinary go test so every shrunk repro
// is a permanent regression test.
package fuzz

import (
	"fmt"
	"runtime"
	"time"

	"soidomino/internal/bench"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/report"
)

// Variant is one point of the mapping-option grid a case is swept over.
type Variant struct {
	Name string
	Algo report.Algorithm
	Opt  mapper.Options
}

// DefaultVariants returns the full sweep grid:
// {Domino, RS, SOI} x {area, depth} x {footed, footless} x {k in 1,2} x
// {SequenceAware on/off}. ClockWeight only matters under the area
// objective, so k=2 depth duplicates are pruned; 36 variants total.
// Half the grid (the footed variants) runs the parallel DP engine with
// Workers = 2, exercising it against every oracle; the engines are
// byte-identical by contract, so variant names — recorded in corpus
// manifests — do not encode the worker count.
func DefaultVariants() []Variant {
	var vs []Variant
	for _, algo := range []report.Algorithm{report.Domino, report.RS, report.SOI} {
		for _, obj := range []mapper.Objective{mapper.Area, mapper.Depth} {
			ks := []int{1, 2}
			if obj == mapper.Depth {
				ks = []int{1}
			}
			for _, k := range ks {
				for _, footed := range []bool{false, true} {
					for _, seq := range []bool{false, true} {
						opt := mapper.DefaultOptions()
						opt.Objective = obj
						opt.ClockWeight = k
						opt.AlwaysFooted = footed
						opt.SequenceAware = seq
						opt.BaselineStackOrder = mapper.OrderHashed
						if footed {
							opt.Workers = 2
						}
						vs = append(vs, Variant{
							Name: variantName(algo, opt),
							Algo: algo,
							Opt:  opt,
						})
					}
				}
			}
		}
	}
	return vs
}

func variantName(algo report.Algorithm, opt mapper.Options) string {
	foot := "footless"
	if opt.AlwaysFooted {
		foot = "footed"
	}
	seq := "plain"
	if opt.SequenceAware {
		seq = "seq"
	}
	return fmt.Sprintf("%s/%s/k%d/%s/%s", algo, opt.Objective, opt.ClockWeight, foot, seq)
}

// Config tunes a fuzzing run. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Cases is how many random networks to generate and sweep.
	Cases int
	// Seed derives every per-case generator seed; same seed, same run.
	Seed int64
	// Workers bounds concurrent cases; <= 0 means GOMAXPROCS.
	Workers int

	// Generated-network size jitter (inclusive bounds).
	MinInputs, MaxInputs int
	MinGates, MaxGates   int
	MaxOutputs           int

	// CaseTimeout bounds one case's full variant sweep; exceeding it is
	// itself reported as a violation (a hang is a bug).
	CaseTimeout time.Duration
	// SimCycles is the switch-level simulation length per variant.
	SimCycles int

	// TotalEps is the slack in T_total(SOI) <= T_total(Domino) + eps. The
	// DPs are per-cone heuristics joined across multi-fanout boundaries,
	// so small inversions are legitimate; the recorded default keeps the
	// relation tight enough to catch a systematically broken SOI cost
	// function (see EXPERIMENTS.md).
	TotalEps int
	// DischEps is the corresponding slack in T_disch(SOI) <= T_disch(RS).
	DischEps int
	// StrashEps is the additive part of the strash metamorphic relation:
	// mapping the canonicalized network must satisfy
	// cost(strash-on) <= 2*cost(strash-off) + StrashEps on both T_total
	// and levels (see strashSlack for why the multiplicative bound is
	// necessary and EXPERIMENTS.md for the calibration evidence).
	StrashEps int

	// Variants, Oracles and Cross override the sweep grid and oracle sets;
	// nil selects the defaults. An empty non-nil slice disables the set.
	Variants []Variant
	Oracles  []Oracle
	Cross    []CrossOracle

	// CorpusDir, when non-empty, receives one shrunk BLIF + JSON manifest
	// per violating case (at most MaxCorpusEntries).
	CorpusDir string
	// CorpusNote is recorded verbatim in every written manifest
	// (provenance: which campaign or injected fault produced the entry).
	CorpusNote string
	// Shrink enables delta-debugging before corpus writes.
	Shrink bool
	// MaxShrinkSteps bounds the shrinker's candidate evaluations.
	MaxShrinkSteps int
	// MaxCorpusEntries bounds how many failing cases are written out.
	MaxCorpusEntries int

	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultConfig returns the smoke-test configuration: small networks so
// exhaustive equivalence stays cheap, the full variant grid and oracle
// set.
func DefaultConfig() Config {
	return Config{
		Cases:            200,
		Seed:             1,
		Workers:          runtime.GOMAXPROCS(0),
		MinInputs:        4,
		MaxInputs:        9,
		MinGates:         3,
		MaxGates:         35,
		MaxOutputs:       4,
		CaseTimeout:      30 * time.Second,
		SimCycles:        5,
		TotalEps:         2,
		DischEps:         2,
		StrashEps:        2,
		Shrink:           true,
		MaxShrinkSteps:   600,
		MaxCorpusEntries: 5,
	}
}

// Violation is one oracle failure, attributed to the case that produced it.
type Violation struct {
	Case    int    `json:"case"`
	Seed    int64  `json:"seed"`
	Variant string `json:"variant,omitempty"` // empty for cross-variant and pipeline failures
	Oracle  string `json:"oracle"`
	Detail  string `json:"detail"`
}

func (v Violation) String() string {
	where := v.Oracle
	if v.Variant != "" {
		where = v.Variant + " " + v.Oracle
	}
	return fmt.Sprintf("case %d (seed %#x) %s: %s", v.Case, v.Seed, where, v.Detail)
}

// Summary is the outcome of a Run.
type Summary struct {
	Cases      int
	MapperRuns int64
	Violations []Violation
	// Corpus lists the corpus entry names written for this run.
	Corpus []string
	// MapTime, StrashTime and OracleTime break the campaign down by
	// stage: wall time summed across workers (so the totals can exceed
	// the campaign's elapsed time), keyed by oracle name for per-variant
	// and cross oracles alike. StrashTime is the pipeline's strash phase
	// only, extracted from the obs collector each case prepares under.
	MapTime    time.Duration
	StrashTime time.Duration
	OracleTime map[string]time.Duration
}

// caseSeed mixes the run seed and case index into an independent stream
// seed (splitmix64 finalizer).
func caseSeed(seed int64, idx int) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// caseParams derives the generator profile for one case.
func (c Config) caseParams(idx int) bench.RandParams {
	rng := newRand(caseSeed(c.Seed, idx))
	span := func(lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + rng.Intn(hi-lo+1)
	}
	return bench.RandParams{
		Name:          fmt.Sprintf("fuzz%06d", idx),
		Seed:          rng.Int63(),
		Inputs:        span(c.MinInputs, c.MaxInputs),
		Outputs:       span(1, c.MaxOutputs),
		Gates:         span(c.MinGates, c.MaxGates),
		Locality:      rng.Float64(),
		FanoutSkew:    rng.Float64() * 0.8,
		Reconvergence: rng.Float64(),
		WideFrac:      rng.Float64() * 0.5,
		ConstFrac:     rng.Float64() * 0.15,
		PIOutputs:     rng.Intn(3) > 0,
	}
}

// CaseNetwork regenerates the random network of one case index, e.g. to
// shrink a reported violation.
func (c Config) CaseNetwork(idx int) *logic.Network {
	return bench.Random(c.caseParams(idx))
}
