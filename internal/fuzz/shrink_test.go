package fuzz

import (
	"context"
	"testing"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/report"
)

// faultConfig is the narrow campaign used to demonstrate end-to-end
// violation detection: only the SOI and RS area/k1/footless/plain
// variants, only the metamorphic discharge oracle, so every predicate
// evaluation costs two mapper runs.
func faultConfig() Config {
	cfg := DefaultConfig()
	opt := mapper.DefaultOptions()
	opt.BaselineStackOrder = mapper.OrderHashed
	cfg.Variants = []Variant{
		{Name: variantName(report.SOI, opt), Algo: report.SOI, Opt: opt},
		{Name: variantName(report.RS, opt), Algo: report.RS, Opt: opt},
	}
	cfg.Oracles = []Oracle{}
	cfg.Cross = []CrossOracle{{Name: "metamorphic-disch", Check: crossDisch}}
	return cfg
}

// TestFaultInjectionCaughtAndShrunk is the acceptance demonstration for
// the whole subsystem: deliberately invert the SOI stack-reordering rule
// (the paper's core PBE-avoidance move), show that the differential
// campaign catches it via the T_disch(SOI) <= T_disch(RS) metamorphic
// oracle, and shrink the first failing network to a repro of at most 15
// nodes that still fails.
func TestFaultInjectionCaughtAndShrunk(t *testing.T) {
	prev := mapper.SetFaultInvertSOIReorder(true)
	defer mapper.SetFaultInvertSOIReorder(prev)

	cfg := faultConfig()
	cfg.Cases = 120
	cfg.Workers = 4
	e := New(cfg)
	sum, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("inverted SOI reorder rule produced no metamorphic violations in 120 cases")
	}
	v := sum.Violations[0]
	if v.Oracle != "metamorphic-disch" {
		t.Fatalf("expected metamorphic-disch violation, got %s", v)
	}

	net := e.Config().CaseNetwork(v.Case)
	shrunk := e.ShrinkFailure(context.Background(), net, v.Oracle)
	t.Logf("shrunk case %d from %d to %d nodes", v.Case, net.Len(), shrunk.Len())
	if shrunk.Len() > 15 {
		t.Errorf("shrunk repro has %d nodes, want <= 15:\n%s", shrunk.Len(), shrunk.Dump())
	}
	if err := shrunk.Check(); err != nil {
		t.Fatalf("shrunk network invalid: %v", err)
	}
	// The shrunk repro must still fail the same oracle...
	found := false
	for _, sv := range e.CheckNetwork(context.Background(), shrunk) {
		if sv.Oracle == v.Oracle {
			found = true
		}
	}
	if !found {
		t.Fatal("shrunk network no longer reproduces the violation")
	}
	// ...and be perfectly healthy once the fault is removed.
	mapper.SetFaultInvertSOIReorder(false)
	if vs := e.CheckNetwork(context.Background(), shrunk); len(vs) != 0 {
		t.Fatalf("shrunk network fails healthy mappers: %v", vs)
	}
	mapper.SetFaultInvertSOIReorder(true) // restore for the deferred Swap
}

// TestShrinkPreservesSemantics drives the shrinker with a simple
// structural predicate and checks its guarantees: monotone node-count
// reduction, structural validity, and predicate preservation.
func TestShrinkPreservesSemantics(t *testing.T) {
	cfg := DefaultConfig()
	net := cfg.CaseNetwork(7)
	orig := net.Len()
	// Predicate: the network still contains an XOR/XNOR gate.
	hasXor := func(n *logic.Network) bool {
		for _, node := range n.Nodes {
			if node.Op == logic.Xor || node.Op == logic.Xnor {
				return true
			}
		}
		return false
	}
	if !hasXor(net) {
		t.Skip("case 7 generated no xor gate")
	}
	shrunk := Shrink(net, hasXor, 500)
	if err := shrunk.Check(); err != nil {
		t.Fatalf("shrunk network invalid: %v", err)
	}
	if !hasXor(shrunk) {
		t.Fatal("shrinker lost the predicate")
	}
	if shrunk.Len() >= orig {
		t.Errorf("no reduction: %d -> %d nodes", orig, shrunk.Len())
	}
	// An xor-only predicate should reduce to a tiny core: the gate, its
	// two input cones collapsed to PIs, and one output.
	if shrunk.Len() > 6 {
		t.Errorf("weak reduction: %d nodes left:\n%s", shrunk.Len(), shrunk.Dump())
	}
}
