package fuzz

import (
	"context"

	"soidomino/internal/logic"
)

// Shrink delta-debugs a failing network to a (locally) minimal one:
// greedily applies node-reducing edits — dropping outputs, retargeting
// outputs into their cone, bypassing gates with one of their fanins,
// dropping wide-gate fanins, substituting whole cones by a primary input —
// keeping an edit whenever the reduced network still fails. Every accepted
// edit strictly reduces the node count (unreferenced logic and unused
// inputs are garbage-collected on rebuild), so the loop terminates; the
// attempt budget bounds the total number of predicate evaluations.
func Shrink(net *logic.Network, failing func(*logic.Network) bool, maxAttempts int) *logic.Network {
	cur := rebuild(net, edit{}) // normalize: drop logic unreachable from the outputs
	if !failing(cur) {
		// GC alone changed the verdict (the failure depended on dead
		// logic); fall back to the original so callers still hold a
		// failing network.
		return net
	}
	attempts := 0
	for {
		improved := false
		for _, ed := range candidates(cur) {
			if attempts >= maxAttempts {
				return cur
			}
			next := rebuild(cur, ed)
			if next.Len() >= cur.Len() || len(next.Outputs) == 0 {
				continue
			}
			attempts++
			if failing(next) {
				cur = next
				improved = true
				break // restart candidate enumeration on the smaller network
			}
		}
		if !improved {
			return cur
		}
	}
}

// ShrinkFailure is Shrink with the engine's own oracle sweep as the
// predicate, preserving the specific failing oracle so the repro does not
// drift onto a different bug while it gets smaller.
func (e *Engine) ShrinkFailure(ctx context.Context, net *logic.Network, oracle string) *logic.Network {
	pred := func(n *logic.Network) bool {
		if ctx.Err() != nil {
			return false
		}
		for _, v := range e.CheckNetwork(ctx, n) {
			if v.Oracle == oracle {
				return true
			}
		}
		return false
	}
	return Shrink(net, pred, e.cfg.MaxShrinkSteps)
}

// edit is one candidate reduction, applied by rebuild.
type edit struct {
	dropOutput int         // output index to delete when hasDrop
	hasDrop    bool
	retarget   map[int]int // output index -> replacement node id
	subst      map[int]int // node id -> replacement node id (an ancestor or input)
	dropFanin  map[int]int // node id -> fanin position to remove
}

// candidates enumerates reductions roughly most-aggressive-first: pruning
// whole outputs, collapsing outputs into their cone, bypassing gates near
// the outputs, then local fanin drops and input substitutions.
func candidates(n *logic.Network) []edit {
	var eds []edit
	if len(n.Outputs) > 1 {
		for i := range n.Outputs {
			eds = append(eds, edit{hasDrop: true, dropOutput: i})
		}
	}
	for i, out := range n.Outputs {
		for _, f := range n.Nodes[out.Node].Fanin {
			eds = append(eds, edit{retarget: map[int]int{i: f}})
		}
	}
	firstInput := -1
	if len(n.Inputs) > 0 {
		firstInput = n.Inputs[0]
	}
	// High ids first: bypassing a gate near the outputs deletes its whole
	// exclusive cone at once.
	for id := len(n.Nodes) - 1; id >= 0; id-- {
		node := n.Nodes[id]
		if node.Op == logic.Input || node.Op == logic.Const0 || node.Op == logic.Const1 {
			continue
		}
		for _, f := range node.Fanin {
			eds = append(eds, edit{subst: map[int]int{id: f}})
		}
		if len(node.Fanin) > node.Op.MinFanin() {
			for i := range node.Fanin {
				eds = append(eds, edit{dropFanin: map[int]int{id: i}})
			}
		}
		if firstInput >= 0 {
			eds = append(eds, edit{subst: map[int]int{id: firstInput}})
		}
	}
	return eds
}

// rebuild applies an edit and re-emits the network: substitutions are
// resolved transitively, nodes unreachable from the surviving outputs are
// dropped (including now-unused primary inputs, which keeps exhaustive
// verification cheap as the repro shrinks), and gates left with a single
// fanin by a drop collapse to their unary residue.
func rebuild(n *logic.Network, ed edit) *logic.Network {
	resolve := func(id int) int {
		for hop := 0; hop < len(n.Nodes); hop++ {
			if rep, ok := ed.subst[id]; ok && rep != id {
				id = rep
				continue
			}
			break
		}
		return id
	}
	type outSpec struct {
		name string
		node int
	}
	var outs []outSpec
	for i, out := range n.Outputs {
		if ed.hasDrop && i == ed.dropOutput {
			continue
		}
		node := out.Node
		if r, ok := ed.retarget[i]; ok {
			node = r
		}
		outs = append(outs, outSpec{out.Name, resolve(node)})
	}
	// Effective fanin of a node under the edit.
	fanin := func(id int) []int {
		node := n.Nodes[id]
		fs := make([]int, 0, len(node.Fanin))
		drop, hasDrop := ed.dropFanin[id]
		for i, f := range node.Fanin {
			if hasDrop && i == drop {
				continue
			}
			fs = append(fs, resolve(f))
		}
		return fs
	}
	// Mark live nodes.
	live := make([]bool, len(n.Nodes))
	var mark func(id int)
	mark = func(id int) {
		if live[id] {
			return
		}
		live[id] = true
		for _, f := range fanin(id) {
			mark(f)
		}
	}
	for _, o := range outs {
		mark(o.node)
	}
	// Re-emit in topological (id) order.
	out := logic.New(n.Name)
	remap := make([]int, len(n.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	for id, node := range n.Nodes {
		if !live[id] {
			continue
		}
		switch node.Op {
		case logic.Input:
			remap[id] = out.AddInput(node.Name)
		case logic.Const0, logic.Const1:
			remap[id] = out.AddConst(node.Op == logic.Const1)
		default:
			fs := fanin(id)
			mapped := make([]int, len(fs))
			for i, f := range fs {
				mapped[i] = remap[f]
			}
			op := node.Op
			if len(mapped) == 1 && op.MinFanin() > 1 {
				// A binary-or-wider gate reduced to one fanin: keep its
				// polarity as a unary residue. (Op.Inverting is false for
				// Xnor, but a one-input XNOR is still a complement.)
				switch op {
				case logic.Nand, logic.Nor, logic.Xnor:
					op = logic.Not
				default:
					op = logic.Buf
				}
			}
			remap[id] = out.AddGate(op, mapped...)
		}
	}
	for _, o := range outs {
		out.AddOutput(o.name, remap[o.node])
	}
	return out
}
