package fuzz

import (
	"fmt"

	"soidomino/internal/mapper"
	"soidomino/internal/pbe"
	"soidomino/internal/report"
	"soidomino/internal/soisim"
	"soidomino/internal/verify"
)

// Oracle checks one mapped variant of a case; returning a non-nil error
// records a violation under the oracle's name.
type Oracle struct {
	Name  string
	Check func(c *Case, v *VariantResult) error
}

// CrossOracle checks relations across the variants of one case, e.g. the
// metamorphic cost inequalities between mappers.
type CrossOracle struct {
	Name  string
	Check func(c *Case) []Violation
}

// DefaultOracles returns the per-variant oracle set in execution order.
func DefaultOracles() []Oracle {
	return []Oracle{
		{Name: "audit", Check: checkAudit},
		{Name: "equivalence", Check: checkEquivalence},
		{Name: "discharge-prediction", Check: checkDischargePrediction},
		{Name: "netlist", Check: checkNetlist},
		{Name: "soisim", Check: checkSim},
	}
}

// DefaultCrossOracles returns the cross-variant metamorphic relations.
func DefaultCrossOracles() []CrossOracle {
	return []CrossOracle{
		{Name: "metamorphic-total", Check: crossTotal},
		{Name: "metamorphic-disch", Check: crossDisch},
		{Name: "metamorphic-strash", Check: crossStrash},
	}
}

func checkAudit(c *Case, v *VariantResult) error { return v.Res.Audit() }

func checkEquivalence(c *Case, v *VariantResult) error {
	return verify.MustBeEquivalent(c.Pipe.Orig, v.Res, verify.DefaultOptions())
}

// checkDischargePrediction compares the DP's own per-gate discharge
// forecast (tuple OwnDisch, surfaced as Gate.PredictedDischarges) against
// an independent structural PBE analysis of the traced tree. RS variants
// rearrange trees after traceback and record -1, which is skipped; note
// the comparison is against the unpruned discharge count, so it stays
// exact under SequenceAware pruning too.
func checkDischargePrediction(c *Case, v *VariantResult) error {
	for _, g := range v.Res.Gates {
		if g.PredictedDischarges < 0 || g.Compound != nil {
			continue
		}
		structural := len(pbe.GateDischargePoints(g.Tree))
		if structural != g.PredictedDischarges {
			return fmt.Errorf("gate %d (%s): DP predicted %d discharges, structural analysis found %d (tree %s)",
				g.ID, g.Output, g.PredictedDischarges, structural, g.Tree)
		}
	}
	return nil
}

func checkNetlist(c *Case, v *VariantResult) error {
	nl, err := v.Netlist()
	if err != nil {
		return err
	}
	if err := nl.Audit(); err != nil {
		return err
	}
	return nl.CrossCheck(v.Res)
}

// checkSim drives the realized circuit through a short random switch-level
// simulation: protected netlists must never corrupt an output via the
// parasitic bipolar effect, and the simulated outputs must track the
// mapped function cycle for cycle.
func checkSim(c *Case, v *VariantResult) error {
	if c.Cfg.SimCycles <= 0 {
		return nil
	}
	nl, err := v.Netlist()
	if err != nil {
		return err // already reported by checkNetlist; keep the oracle safe anyway
	}
	rng := newRand(c.Seed ^ int64(v.Index)<<17 ^ 0x5eed)
	sim := soisim.New(nl, soisim.DefaultConfig())
	for cyc, vec := range soisim.RandomVectors(nl, rng, c.Cfg.SimCycles) {
		got, events, err := sim.Cycle(vec)
		if err != nil {
			return fmt.Errorf("cycle %d: %v", cyc, err)
		}
		for _, ev := range events {
			if ev.Corrupted {
				return fmt.Errorf("cycle %d: PBE corrupted output: %v", cyc, ev)
			}
		}
		want, err := v.Res.Eval(vec)
		if err != nil {
			return fmt.Errorf("cycle %d: %v", cyc, err)
		}
		for out, w := range want {
			if got[out] != w {
				return fmt.Errorf("cycle %d: output %q simulated %v, function says %v", cyc, out, got[out], w)
			}
		}
	}
	return nil
}

// crossStrash is the strash front-end's metamorphic oracle. The regular
// sweep maps the canonicalized (strash-on) pipeline, and its equivalence
// oracle already proves those mappings match the submitted source; this
// oracle adds the strash-off side on a deterministic subset of the grid
// (area/k1/footless/plain, one point per algorithm): mapping the network
// exactly as submitted must also stay equivalent, and the canonicalized
// mapping must cost no more than the direct one within strashSlack on
// T_total and levels, because strash only merges duplicate logic and
// removes dead logic. A front-end rewrite that corrupts functions is
// caught by equivalence; one that systematically pessimizes the DP's
// cone boundaries is caught here.
func crossStrash(c *Case) []Violation {
	var out []Violation
	for _, v := range c.Variants {
		if v.Res == nil || v.Opt.Objective != mapper.Area || v.Opt.ClockWeight != 1 ||
			v.Opt.AlwaysFooted || v.Opt.SequenceAware {
			continue
		}
		raw, err := c.Raw()
		if err != nil {
			return append(out, Violation{
				Oracle: "metamorphic-strash",
				Detail: fmt.Sprintf("strash-off pipeline failed: %v", err),
			})
		}
		rawRes, err := mapVariant(c.Context(), v.Variant, raw.Unate)
		if err != nil {
			if c.Context().Err() != nil {
				return out // sweep canceled or timed out: not this oracle's finding
			}
			out = append(out, Violation{
				Oracle: "metamorphic-strash", Variant: v.Name,
				Detail: fmt.Sprintf("strash-off mapping failed: %v", err),
			})
			continue
		}
		if err := verify.MustBeEquivalent(c.Net, rawRes, verify.DefaultOptions()); err != nil {
			out = append(out, Violation{
				Oracle: "metamorphic-strash", Variant: v.Name,
				Detail: fmt.Sprintf("strash-off mapping inequivalent to source: %v", err),
			})
			continue
		}
		if on, off := v.Res.Stats.TTotal, rawRes.Stats.TTotal; on > off+strashSlack(off, c.Cfg.StrashEps) {
			out = append(out, Violation{
				Oracle: "metamorphic-strash", Variant: v.Name,
				Detail: fmt.Sprintf("strash-on Ttotal=%d exceeds strash-off Ttotal=%d + slack %d", on, off, strashSlack(off, c.Cfg.StrashEps)),
			})
		}
		if on, off := v.Res.Stats.Levels, rawRes.Stats.Levels; on > off+strashSlack(off, c.Cfg.StrashEps) {
			out = append(out, Violation{
				Oracle: "metamorphic-strash", Variant: v.Name,
				Detail: fmt.Sprintf("strash-on levels=%d exceeds strash-off levels=%d + slack %d", on, off, strashSlack(off, c.Cfg.StrashEps)),
			})
		}
	}
	return out
}

// strashSlack is the allowed cost excess of the strash-on mapping over
// the strash-off one: off + eps, i.e. strash may at worst double the
// mapped cost. The bound is deliberately loose because the inversion is
// structural, not a bug: sharing re-introduced by strash turns
// duplicated single-fanout logic into multi-fanout cone boundaries the
// per-cone DP cannot absorb, and the unate phase then duplicates the
// newly shared node for both polarities. Calibration on 5000-case
// campaigns measured legitimate excesses up to +87% of the strash-off
// cost (see EXPERIMENTS.md), so a constant or small-fraction slack
// false-positives; the 2x guard still catches a front-end that
// systematically inflates the mapping.
func strashSlack(off, eps int) int {
	return off + eps
}

// crossTotal checks T_total(SOI) <= T_total(Domino) + TotalEps per area
// grid point: the discharge-aware DP exists to beat (or match) the
// PBE-blind baseline on total transistors, so a systematic inversion
// means the SOI cost function or bookkeeping broke. Restricted to the
// area objective — under the depth objective both mappers minimize levels
// first and totals legitimately diverge.
func crossTotal(c *Case) []Violation {
	var out []Violation
	for _, v := range c.Variants {
		if v.Algo != report.SOI || v.Res == nil || v.Opt.Objective != mapper.Area {
			continue
		}
		dom := c.Counterpart(v, report.Domino)
		if dom == nil || dom.Res == nil {
			continue
		}
		if v.Res.Stats.TTotal > dom.Res.Stats.TTotal+c.Cfg.TotalEps {
			out = append(out, Violation{
				Oracle: "metamorphic-total",
				Detail: fmt.Sprintf("%s Ttotal=%d exceeds %s Ttotal=%d + eps %d",
					v.Name, v.Res.Stats.TTotal, dom.Name, dom.Res.Stats.TTotal, c.Cfg.TotalEps),
			})
		}
	}
	return out
}

// crossDisch checks T_disch(SOI) <= T_disch(RS) + DischEps per area grid
// point: SOI orders stacks discharge-aware during the DP, so it must not
// lose to RS_Map's post-hoc rearrangement. This is the oracle that
// catches an inverted reorder rule (see mapper.SetFaultInvertSOIReorder).
func crossDisch(c *Case) []Violation {
	var out []Violation
	for _, v := range c.Variants {
		if v.Algo != report.SOI || v.Res == nil || v.Opt.Objective != mapper.Area {
			continue
		}
		rs := c.Counterpart(v, report.RS)
		if rs == nil || rs.Res == nil {
			continue
		}
		if v.Res.Stats.TDisch > rs.Res.Stats.TDisch+c.Cfg.DischEps {
			out = append(out, Violation{
				Oracle: "metamorphic-disch",
				Detail: fmt.Sprintf("%s Tdisch=%d exceeds %s Tdisch=%d + eps %d",
					v.Name, v.Res.Stats.TDisch, rs.Name, rs.Res.Stats.TDisch, c.Cfg.DischEps),
			})
		}
	}
	return out
}
