package fuzz

import (
	"context"
	"testing"
	"time"

	"soidomino/internal/logic"
)

// TestEngineSmoke sweeps a handful of random cases through the full
// variant grid and oracle set: the healthy mappers must produce zero
// violations.
func TestEngineSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cases = 12
	cfg.Workers = 4
	cfg.SimCycles = 4
	if testing.Short() {
		cfg.Cases = 4
	}
	e := New(cfg)
	sum, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sum.Violations {
		t.Errorf("unexpected violation: %s", v)
	}
	if sum.MapperRuns < int64(cfg.Cases)*int64(len(DefaultVariants())) {
		t.Errorf("only %d mapper runs for %d cases x %d variants",
			sum.MapperRuns, cfg.Cases, len(DefaultVariants()))
	}
}

// TestEngineDeterministic re-runs the same campaign and demands identical
// results, the property the corpus manifests and shrinker rely on.
func TestEngineDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cases = 4
	cfg.Workers = 3
	cfg.SimCycles = 3
	a, err := New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != len(b.Violations) || a.MapperRuns != b.MapperRuns {
		t.Fatalf("non-deterministic run: %+v vs %+v", a, b)
	}
}

// TestCaseTimeoutIsAViolation pins the deadline path: an absurdly small
// per-case budget must surface as a "deadline" violation, not hang or
// crash the campaign.
func TestCaseTimeoutIsAViolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cases = 1
	cfg.Workers = 1
	cfg.MinGates, cfg.MaxGates = 60, 60
	cfg.CaseTimeout = 1 * time.Nanosecond
	sum, err := New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("expected a deadline violation")
	}
	for _, v := range sum.Violations {
		if v.Oracle != "deadline" {
			t.Errorf("unexpected oracle %q: %s", v.Oracle, v)
		}
	}
}

// TestCheckNetworkFlagsBrokenNetwork feeds a network whose mapped function
// cannot match the source (we corrupt it after generation is impossible,
// so instead check the pipeline error path with a valid but degenerate
// net: a constant output, which must map cleanly — zero violations).
func TestCheckNetworkConstantOutput(t *testing.T) {
	n := logic.New("const")
	n.AddInput("a")
	n.AddInput("b")
	c := n.AddConst(true)
	n.AddOutput("o", c)
	e := New(DefaultConfig())
	if vs := e.CheckNetwork(context.Background(), n); len(vs) != 0 {
		t.Fatalf("constant-output network: %v", vs)
	}
}
