package fuzz

import (
	"context"
	"os"
	"testing"

	"soidomino/internal/mapper"
)

// TestGenerateFaultCorpus is the maintained tool for (re)seeding the
// checked-in regression corpus: it runs the narrow fault-injection
// campaign (inverted SOI reorder rule) with corpus persistence enabled,
// writing shrunk repros into testdata/fuzz/corpus. The entries fail only
// under the injected fault, so with healthy mappers TestCorpusReplays
// keeps them green while pinning the exact structures whose stack order
// the SOI DP must get right.
//
// Skipped unless SOIFUZZ_GEN_CORPUS=1; run it after changing the
// generator, shrinker or corpus format and review the diff:
//
//	SOIFUZZ_GEN_CORPUS=1 go test -run TestGenerateFaultCorpus ./internal/fuzz/
func TestGenerateFaultCorpus(t *testing.T) {
	if os.Getenv("SOIFUZZ_GEN_CORPUS") == "" {
		t.Skip("set SOIFUZZ_GEN_CORPUS=1 to regenerate the corpus")
	}
	prev := mapper.SetFaultInvertSOIReorder(true)
	defer mapper.SetFaultInvertSOIReorder(prev)

	cfg := faultConfig()
	cfg.Cases = 400
	cfg.CorpusDir = corpusDir
	cfg.CorpusNote = "captured under mapper.SetFaultInvertSOIReorder(true); healthy mappers must pass it"
	cfg.MaxCorpusEntries = 3
	cfg.Logf = t.Logf
	sum, err := New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Corpus) == 0 {
		t.Fatal("campaign produced no corpus entries")
	}
	t.Logf("wrote %d corpus entries: %v", len(sum.Corpus), sum.Corpus)
}
