package fuzz

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

const corpusDir = "../../testdata/fuzz/corpus"

// TestCorpusReplays re-runs every checked-in shrunk repro through the full
// variant grid and oracle set. Each entry was minimized from a historical
// (or deliberately injected) failure; with healthy mappers they must all
// pass, so any regression that resurrects an old bug fails tier-1
// immediately.
func TestCorpusReplays(t *testing.T) {
	entries, err := ReadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Skip("empty corpus")
	}
	cfg := DefaultConfig()
	cfg.SimCycles = 4
	e := New(cfg)
	for _, entry := range entries {
		entry := entry
		t.Run(entry.Manifest.Name, func(t *testing.T) {
			t.Parallel()
			if err := entry.Net.Check(); err != nil {
				t.Fatalf("corpus network invalid: %v", err)
			}
			for _, v := range e.CheckNetwork(context.Background(), entry.Net) {
				t.Errorf("replay violation: %s", v)
			}
		})
	}
}

// TestWriteAndReadEntryRoundTrip pins the corpus file format: a network
// survives the BLIF render/parse cycle functionally intact and keeps its
// manifest.
func TestWriteAndReadEntryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	net := cfg.CaseNetwork(3)
	m := Manifest{Name: "roundtrip", Oracle: "equivalence", Detail: "test", RunSeed: 1, Case: 3}
	if err := WriteEntry(dir, m, net); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "roundtrip.json")); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	got := entries[0]
	if got.Manifest.Oracle != "equivalence" || got.Manifest.Case != 3 {
		t.Errorf("manifest did not round-trip: %+v", got.Manifest)
	}
	// The parsed network realizes the same functions: push it through the
	// full oracle sweep, which includes equivalence against itself.
	e := New(cfg)
	if vs := e.CheckNetwork(context.Background(), got.Net); len(vs) != 0 {
		t.Fatalf("round-tripped network fails oracles: %v", vs)
	}
}

// TestReadCorpusMissingDirIsEmpty keeps fresh checkouts green.
func TestReadCorpusMissingDirIsEmpty(t *testing.T) {
	entries, err := ReadCorpus(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("got %d entries from a missing dir", len(entries))
	}
}
