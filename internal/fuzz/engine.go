package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/obs"
	"soidomino/internal/report"
)

// Engine runs differential fuzzing campaigns over the mapping pipeline.
type Engine struct {
	cfg      Config
	variants []Variant
	oracles  []Oracle
	cross    []CrossOracle

	mapperRuns atomic.Int64

	// Cumulative wall time per campaign stage, summed across workers
	// (so totals can exceed the campaign's elapsed time). oracleNanos
	// and crossNanos are indexed parallel to oracles and cross;
	// strashNanos is the pipeline's strash phase, read from the obs
	// collector each case prepares under.
	mapNanos    atomic.Int64
	strashNanos atomic.Int64
	oracleNanos []atomic.Int64
	crossNanos  []atomic.Int64
}

// New builds an engine, filling nil oracle/variant sets with the defaults.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg, variants: cfg.Variants, oracles: cfg.Oracles, cross: cfg.Cross}
	if e.variants == nil {
		e.variants = DefaultVariants()
	}
	if e.oracles == nil {
		e.oracles = DefaultOracles()
	}
	if e.cross == nil {
		e.cross = DefaultCrossOracles()
	}
	if e.cfg.Workers <= 0 {
		e.cfg.Workers = 1
	}
	e.oracleNanos = make([]atomic.Int64, len(e.oracles))
	e.crossNanos = make([]atomic.Int64, len(e.cross))
	return e
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Run executes the campaign: generate, sweep, check, and (when configured)
// shrink and persist failing cases. It returns early only when ctx is
// canceled; per-case deadlines and panics are recorded as violations, not
// errors.
func (e *Engine) Run(ctx context.Context) (*Summary, error) {
	sum := &Summary{Cases: e.cfg.Cases}
	jobs := make(chan int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				vs := e.runCase(ctx, idx)
				if len(vs) > 0 {
					mu.Lock()
					sum.Violations = append(sum.Violations, vs...)
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for i := 0; i < e.cfg.Cases; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
		if e.cfg.Logf != nil && i > 0 && i%500 == 0 {
			e.cfg.Logf("fuzz: %d/%d cases dispatched", i, e.cfg.Cases)
		}
	}
	close(jobs)
	wg.Wait()
	sum.MapperRuns = e.mapperRuns.Load()
	sum.MapTime = time.Duration(e.mapNanos.Load())
	sum.StrashTime = time.Duration(e.strashNanos.Load())
	sum.OracleTime = make(map[string]time.Duration, len(e.oracles)+len(e.cross))
	for i, o := range e.oracles {
		sum.OracleTime[o.Name] = time.Duration(e.oracleNanos[i].Load())
	}
	for i, o := range e.cross {
		sum.OracleTime[o.Name] = time.Duration(e.crossNanos[i].Load())
	}
	sort.Slice(sum.Violations, func(i, j int) bool {
		a, b := sum.Violations[i], sum.Violations[j]
		if a.Case != b.Case {
			return a.Case < b.Case
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.Oracle < b.Oracle
	})
	if err := ctx.Err(); err != nil {
		return sum, err
	}
	if e.cfg.CorpusDir != "" && len(sum.Violations) > 0 {
		names, err := e.persistFailures(ctx, sum.Violations)
		sum.Corpus = names
		if err != nil {
			return sum, err
		}
	}
	return sum, nil
}

// runCase generates case idx's network and checks it, converting panics
// into violations so one bad case cannot kill the campaign.
func (e *Engine) runCase(ctx context.Context, idx int) []Violation {
	return e.checkNetwork(ctx, idx, e.cfg.CaseNetwork(idx))
}

// CheckNetwork sweeps an externally supplied network through the variant
// grid and oracle set (used by corpus replay and the shrinker predicate).
func (e *Engine) CheckNetwork(ctx context.Context, net *logic.Network) []Violation {
	return e.checkNetwork(ctx, -1, net)
}

func (e *Engine) checkNetwork(ctx context.Context, idx int, net *logic.Network) (out []Violation) {
	seed := caseSeed(e.cfg.Seed, idx)
	fail := func(variant, oracle, format string, args ...any) {
		out = append(out, Violation{
			Case: idx, Seed: seed, Variant: variant, Oracle: oracle,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	defer func() {
		if r := recover(); r != nil {
			fail("", "panic", "%v\n%s", r, debug.Stack())
		}
	}()
	cctx := ctx
	cancel := func() {}
	if e.cfg.CaseTimeout > 0 {
		cctx, cancel = context.WithTimeout(ctx, e.cfg.CaseTimeout)
	}
	defer cancel()

	c := &Case{Index: idx, Seed: seed, Cfg: &e.cfg, Net: net, ctx: cctx}
	// Prepare under a private stats collector so the strash phase's cost
	// is attributable in the campaign breakdown; the context also carries
	// any armed faultpoint registry into the front-end (the strash corpus
	// generator relies on this).
	pst := &obs.Stats{}
	pipe, err := report.PrepareNetworkContext(obs.WithStats(cctx, pst), net)
	e.strashNanos.Add(int64(pst.Phases.Strash))
	if err != nil {
		fail("", "pipeline", "%v", err)
		return out
	}
	c.Pipe = pipe
	for i, v := range e.variants {
		mapStart := time.Now()
		res, err := mapVariant(cctx, v, pipe.Unate)
		e.mapNanos.Add(int64(time.Since(mapStart)))
		e.mapperRuns.Add(1)
		vr := &VariantResult{Variant: v, Index: i, Res: res, Err: err}
		c.Variants = append(c.Variants, vr)
		if err != nil {
			switch {
			case ctx.Err() != nil:
				return out // campaign canceled: stop quietly
			case cctx.Err() != nil:
				fail(v.Name, "deadline", "case exceeded %v during mapping", e.cfg.CaseTimeout)
				return out
			default:
				fail(v.Name, "map-error", "%v", err)
			}
			continue
		}
		for oi, o := range e.oracles {
			oStart := time.Now()
			err := o.Check(c, vr)
			e.oracleNanos[oi].Add(int64(time.Since(oStart)))
			if err != nil {
				fail(v.Name, o.Name, "%v", err)
			}
			if cctx.Err() != nil {
				if ctx.Err() == nil {
					fail(v.Name, "deadline", "case exceeded %v during oracles", e.cfg.CaseTimeout)
				}
				return out
			}
		}
	}
	for oi, o := range e.cross {
		oStart := time.Now()
		vs := o.Check(c)
		e.crossNanos[oi].Add(int64(time.Since(oStart)))
		for _, v := range vs {
			v.Case, v.Seed = idx, seed
			out = append(out, v)
		}
	}
	return out
}

// Case is one generated network plus everything the sweep produced for it.
type Case struct {
	Index int
	Seed  int64
	Cfg   *Config
	Net   *logic.Network
	Pipe  *report.Pipeline
	// Variants holds one entry per grid point, in grid order.
	Variants []*VariantResult

	// ctx is the sweep's (deadline-bounded) context; nil when the case
	// was assembled directly, e.g. by the chaos harness.
	ctx context.Context
	// Lazily built strash-off pipeline for the metamorphic-strash
	// oracle; only one oracle needs it, so most sweeps never pay for it.
	rawPipe  *report.Pipeline
	rawErr   error
	rawBuilt bool
}

// Context returns the case's sweep context (Background for directly
// assembled cases).
func (c *Case) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Raw returns the case network's strash-off pipeline, built on first
// use. The metamorphic-strash oracle maps against it to compare the
// canonicalized front-end's cost with the submitted network's.
func (c *Case) Raw() (*report.Pipeline, error) {
	if !c.rawBuilt {
		c.rawBuilt = true
		c.rawPipe, c.rawErr = report.PrepareNetworkMode(c.Context(), c.Net, true)
	}
	return c.rawPipe, c.rawErr
}

// Counterpart finds the variant result that differs from v only in the
// algorithm, or nil.
func (c *Case) Counterpart(v *VariantResult, algo report.Algorithm) *VariantResult {
	for _, o := range c.Variants {
		if o.Algo == algo &&
			o.Opt.Objective == v.Opt.Objective &&
			o.Opt.ClockWeight == v.Opt.ClockWeight &&
			o.Opt.AlwaysFooted == v.Opt.AlwaysFooted &&
			o.Opt.SequenceAware == v.Opt.SequenceAware {
			return o
		}
	}
	return nil
}

// VariantResult is one grid point's mapping outcome.
type VariantResult struct {
	Variant
	Index int
	Res   *mapper.Result
	Err   error

	nl    *netlist.Circuit
	nlErr error
	built bool
}

// Netlist lazily builds (once) the transistor-level realization.
func (v *VariantResult) Netlist() (*netlist.Circuit, error) {
	if !v.built {
		v.built = true
		v.nl, v.nlErr = netlist.Build(v.Res)
	}
	return v.nl, v.nlErr
}

func mapVariant(ctx context.Context, v Variant, unate *logic.Network) (*mapper.Result, error) {
	switch v.Algo {
	case report.RS:
		return mapper.RSMapContext(ctx, unate, v.Opt)
	case report.SOI:
		return mapper.SOIDominoMapContext(ctx, unate, v.Opt)
	default:
		return mapper.DominoMapContext(ctx, unate, v.Opt)
	}
}

// newRand builds a deterministic PRNG for one stream.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
