package fuzz

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"soidomino/internal/blif"
	"soidomino/internal/logic"
)

// Manifest accompanies each corpus circuit, recording what it reproduced
// when it was captured.
type Manifest struct {
	Name    string `json:"name"`
	Oracle  string `json:"oracle"`
	Variant string `json:"variant,omitempty"`
	Detail  string `json:"detail"`
	Note    string `json:"note,omitempty"`
	RunSeed int64  `json:"run_seed"`
	Case    int    `json:"case"`
	Shrunk  bool   `json:"shrunk"`
	Nodes   int    `json:"nodes"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
}

// Entry is one corpus circuit plus its manifest.
type Entry struct {
	Manifest Manifest
	Net      *logic.Network
}

// WriteEntry stores net as <name>.blif next to <name>.json under dir,
// creating dir as needed.
func WriteEntry(dir string, m Manifest, net *logic.Network) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	st := net.Stats()
	m.Nodes, m.Inputs, m.Outputs = net.Len(), st.Inputs, st.Outputs
	var buf bytes.Buffer
	if err := blif.Write(&buf, net); err != nil {
		return fmt.Errorf("fuzz: render %s: %w", m.Name, err)
	}
	if err := os.WriteFile(filepath.Join(dir, m.Name+".blif"), buf.Bytes(), 0o644); err != nil {
		return err
	}
	js, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, m.Name+".json"), append(js, '\n'), 0o644)
}

// ReadCorpus loads every *.blif (with its *.json manifest when present)
// under dir, sorted by name. A missing directory is an empty corpus, not
// an error, so fresh checkouts replay cleanly.
func ReadCorpus(dir string) ([]Entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.blif"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var entries []Entry
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		net, err := blif.ParseString(string(data))
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus %s: %w", p, err)
		}
		e := Entry{Net: net}
		e.Manifest.Name = strings.TrimSuffix(filepath.Base(p), ".blif")
		if js, err := os.ReadFile(strings.TrimSuffix(p, ".blif") + ".json"); err == nil {
			if err := json.Unmarshal(js, &e.Manifest); err != nil {
				return nil, fmt.Errorf("fuzz: corpus manifest %s: %w", p, err)
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// persistFailures shrinks and writes out up to MaxCorpusEntries failing
// cases (one entry per distinct case, keyed on its first violation).
func (e *Engine) persistFailures(ctx context.Context, violations []Violation) ([]string, error) {
	byCase := make(map[int]Violation)
	var order []int
	for _, v := range violations {
		if v.Case < 0 {
			continue
		}
		if _, ok := byCase[v.Case]; !ok {
			byCase[v.Case] = v
			order = append(order, v.Case)
		}
	}
	sort.Ints(order)
	limit := e.cfg.MaxCorpusEntries
	if limit <= 0 {
		limit = len(order)
	}
	var names []string
	for _, idx := range order {
		if len(names) >= limit {
			if e.cfg.Logf != nil {
				e.cfg.Logf("fuzz: corpus cap reached; %d further failing cases not persisted", len(order)-len(names))
			}
			break
		}
		v := byCase[idx]
		net := e.cfg.CaseNetwork(idx)
		shrunk := false
		if e.cfg.Shrink {
			if s := e.ShrinkFailure(ctx, net, v.Oracle); s.Len() < net.Len() {
				net, shrunk = s, true
			}
		}
		m := Manifest{
			Name:    fmt.Sprintf("case%06d-%s", idx, sanitize(v.Oracle)),
			Oracle:  v.Oracle,
			Variant: v.Variant,
			Detail:  v.Detail,
			Note:    e.cfg.CorpusNote,
			RunSeed: e.cfg.Seed,
			Case:    idx,
			Shrunk:  shrunk,
		}
		if err := WriteEntry(e.cfg.CorpusDir, m, net); err != nil {
			return names, err
		}
		names = append(names, m.Name)
		if e.cfg.Logf != nil {
			e.cfg.Logf("fuzz: wrote corpus entry %s (%d nodes, shrunk=%v)", m.Name, net.Len(), shrunk)
		}
	}
	return names, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}
