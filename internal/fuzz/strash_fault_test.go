package fuzz

import (
	"context"
	"fmt"
	"os"
	"sort"
	"testing"

	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/report"
	"soidomino/internal/strash"
)

// strashFaultConfig narrows the campaign to the strash front-end: one
// variant (SOI area/k1/footless/plain) and the equivalence oracle. A
// bad merge in the front-end corrupts every variant identically, so one
// grid point attributes it, and each shrink predicate evaluation costs
// a single mapper run.
func strashFaultConfig() Config {
	cfg := DefaultConfig()
	opt := mapper.DefaultOptions()
	opt.BaselineStackOrder = mapper.OrderHashed
	cfg.Variants = []Variant{{Name: variantName(report.SOI, opt), Algo: report.SOI, Opt: opt}}
	cfg.Oracles = []Oracle{{Name: "equivalence", Check: checkEquivalence}}
	cfg.Cross = []CrossOracle{}
	return cfg
}

// badMergeContext arms the strash bad-merge Flip fault unconditionally:
// every OR gate is hash-consed under an AND signature, so any case
// whose cone holds an AND/OR pair over the same operands merges them
// and breaks functional equivalence.
func badMergeContext(ctx context.Context) context.Context {
	reg := faultpoint.New(1)
	reg.Arm(strash.PointBadMerge, faultpoint.Fault{Kind: faultpoint.Flip, Prob: 1})
	return faultpoint.With(ctx, reg)
}

// TestStrashBadMergeCaughtAndShrunk is the front-end's acceptance
// demonstration, mirroring the SOI-reorder one: deliberately corrupt
// the hash-cons key (strash.PointBadMerge), show the campaign's
// equivalence oracle catches the resulting wrong merges, and shrink the
// first failing network to a small repro that still fails under the
// fault.
func TestStrashBadMergeCaughtAndShrunk(t *testing.T) {
	ctx := badMergeContext(context.Background())
	cfg := strashFaultConfig()
	cfg.Cases = 120
	cfg.Workers = 4
	e := New(cfg)
	sum, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("bad-merge fault injected but no violation found")
	}
	for _, v := range sum.Violations {
		if v.Oracle != "equivalence" {
			t.Errorf("unexpected oracle %q under bad-merge fault: %s", v.Oracle, v)
		}
	}
	t.Logf("caught %d violations, first: %s", len(sum.Violations), sum.Violations[0])

	// Not every repro shrinks: a bad merge can hinge on dead logic (the
	// cons pass runs before DCE), and the shrinker's GC normalization
	// legitimately refuses those. At least one case must reduce to a
	// small repro, and that repro must still fail under the fault while
	// passing clean — exactly the property corpus replay relies on.
	best := -1
	for _, v := range sum.Violations {
		net := cfg.CaseNetwork(v.Case)
		shrunk := e.ShrinkFailure(ctx, net, "equivalence")
		if shrunk.Len() >= net.Len() {
			continue
		}
		t.Logf("case %d shrunk %d -> %d nodes", v.Case, net.Len(), shrunk.Len())
		if vs := e.CheckNetwork(ctx, shrunk); len(vs) == 0 {
			t.Error("shrunk repro no longer fails under the armed fault")
		}
		if vs := e.CheckNetwork(context.Background(), shrunk); len(vs) != 0 {
			t.Errorf("shrunk repro fails without the fault: %v", vs)
		}
		if best < 0 || shrunk.Len() < best {
			best = shrunk.Len()
		}
	}
	if best < 0 {
		t.Fatal("no bad-merge repro shrank")
	}
	if best > 15 {
		t.Errorf("smallest shrunk repro has %d nodes, want <= 15", best)
	}
}

// TestGenerateStrashCorpus (re)seeds the checked-in corpus with strash
// bad-merge repros, the same way TestGenerateFaultCorpus does for the
// SOI reorder rule: run the narrow campaign under the armed Flip fault
// with persistence enabled, writing shrunk entries that healthy code
// replays green while pinning the AND/OR-twin structures the hash-cons
// key must keep apart.
//
// Skipped unless SOIFUZZ_GEN_CORPUS=1:
//
//	SOIFUZZ_GEN_CORPUS=1 go test -run TestGenerateStrashCorpus ./internal/fuzz/
func TestGenerateStrashCorpus(t *testing.T) {
	if os.Getenv("SOIFUZZ_GEN_CORPUS") == "" {
		t.Skip("set SOIFUZZ_GEN_CORPUS=1 to regenerate the corpus")
	}
	ctx := badMergeContext(context.Background())
	cfg := strashFaultConfig()
	cfg.Cases = 400
	e := New(cfg)
	sum, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink every finding and persist the smallest repros: bad merges
	// that hinge on dead logic refuse to shrink (see the acceptance
	// test) and would only bloat the corpus, so they are skipped.
	type cand struct {
		v   Violation
		net *logic.Network
	}
	var cands []cand
	for _, v := range sum.Violations {
		net := cfg.CaseNetwork(v.Case)
		if s := e.ShrinkFailure(ctx, net, "equivalence"); s.Len() < net.Len() {
			cands = append(cands, cand{v, s})
		}
	}
	if len(cands) == 0 {
		t.Fatal("campaign produced no shrinkable bad-merge repros")
	}
	sort.Slice(cands, func(i, j int) bool {
		if a, b := cands[i].net.Len(), cands[j].net.Len(); a != b {
			return a < b
		}
		return cands[i].v.Case < cands[j].v.Case
	})
	if len(cands) > 2 {
		cands = cands[:2]
	}
	for _, c := range cands {
		m := Manifest{
			Name:    fmt.Sprintf("strash-badmerge-%06d", c.v.Case),
			Oracle:  c.v.Oracle,
			Variant: c.v.Variant,
			Detail:  c.v.Detail,
			Note:    "captured under strash.bad-merge (Flip armed); healthy strash must pass it",
			RunSeed: cfg.Seed,
			Case:    c.v.Case,
			Shrunk:  true,
		}
		if err := WriteEntry(corpusDir, m, c.net); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote corpus entry %s (%d nodes)", m.Name, c.net.Len())
	}
}
