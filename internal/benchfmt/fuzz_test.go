package benchfmt

import (
	"strings"
	"testing"
)

// FuzzParseBench drives the .bench parser with arbitrary bytes. The
// parser must never panic; a successful parse must yield a network that
// passes its own consistency check. We deliberately do NOT render the
// parsed network back out here: Write has no bound on XOR fanin width
// (its truth table is 2^k rows), which is fine for real circuits but
// would let the fuzzer synthesize exponential work.
func FuzzParseBench(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n")
	f.Add("# c17\nINPUT(G1)\nINPUT(G3)\nOUTPUT(G22)\nG10 = NAND(G1, G3)\nG22 = NOT(G10)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(s)\ns = XOR(a, b)\n")
	f.Add("OUTPUT(q)\nq = BUFF(q)\n")
	f.Add("INPUT(a)\ny = DFF(a)\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64*1024 {
			t.Skip("oversized input")
		}
		net, err := ParseString("fuzz", src)
		if err != nil {
			return
		}
		if err := net.Check(); err != nil {
			t.Fatalf("parsed network fails Check: %v\ninput:\n%s", err, src)
		}
	})
}

// Spot-check the explicit input bounds the fuzzer rarely synthesizes.
func TestParseBounds(t *testing.T) {
	var sb strings.Builder
	// Declared deepest-first so construction must recurse through the
	// whole chain before it can memoize anything.
	sb.WriteString("INPUT(a)\nOUTPUT(s10001)\n")
	for i := 10001; i >= 1; i-- {
		sb.WriteString("s")
		sb.WriteString(itoa(i))
		sb.WriteString(" = NOT(s")
		sb.WriteString(itoa(i - 1))
		sb.WriteString(")\n")
	}
	sb.WriteString("s0 = BUFF(a)\n")
	if _, err := ParseString("deep", sb.String()); err == nil || !strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("deep chain: got %v, want nesting-depth error", err)
	}

	long := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)" + strings.Repeat(" ", maxLineBytes) + "\n"
	if _, err := ParseString("long", long); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("long line: got %v, want size error", err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
