// Package benchfmt reads and writes the ISCAS-89 ".bench" netlist format,
// the other common distribution format of the benchmark circuits the
// paper evaluates:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//	G17 = NOT(G10)
//
// Supported functions: AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF.
// Sequential elements (DFF) are rejected: the mapper is combinational.
package benchfmt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"soidomino/internal/logic"
)

// Input bounds: malformed or adversarial files must produce a clear error,
// never a panic or unbounded work.
const (
	// maxLineBytes caps one line (the scanner buffer).
	maxLineBytes = 1 << 20
	// maxEmitDepth caps gate reference nesting during network
	// construction, bounding recursion on degenerate deep chains.
	maxEmitDepth = 10000
)

// Parse reads a .bench netlist and builds the equivalent network.
func Parse(name string, r io.Reader) (*logic.Network, error) {
	type def struct {
		op     logic.Op
		fanins []string
		line   int
	}
	defs := make(map[string]*def)
	var inputs, outputs, order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") || strings.HasPrefix(upper, "OUTPUT("):
			open := strings.Index(line, "(")
			closeIdx := strings.LastIndex(line, ")")
			if closeIdx < open {
				return nil, fmt.Errorf("benchfmt: line %d: malformed %q", lineno, line)
			}
			sig := strings.TrimSpace(line[open+1 : closeIdx])
			if sig == "" {
				return nil, fmt.Errorf("benchfmt: line %d: empty signal name", lineno)
			}
			if strings.HasPrefix(upper, "INPUT(") {
				inputs = append(inputs, sig)
			} else {
				outputs = append(outputs, sig)
			}
		case strings.Contains(line, "="):
			eq := strings.Index(line, "=")
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			closeIdx := strings.LastIndex(rhs, ")")
			if lhs == "" || open < 0 || closeIdx < open {
				return nil, fmt.Errorf("benchfmt: line %d: malformed gate %q", lineno, line)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			op, ok := opFromName(fn)
			if !ok {
				return nil, fmt.Errorf("benchfmt: line %d: unsupported function %q (combinational only)", lineno, fn)
			}
			var fanins []string
			for _, f := range strings.Split(rhs[open+1:closeIdx], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("benchfmt: line %d: empty fanin", lineno)
				}
				fanins = append(fanins, f)
			}
			if _, dup := defs[lhs]; dup {
				return nil, fmt.Errorf("benchfmt: line %d: signal %q defined twice", lineno, lhs)
			}
			defs[lhs] = &def{op: op, fanins: fanins, line: lineno}
			order = append(order, lhs)
		default:
			return nil, fmt.Errorf("benchfmt: line %d: unrecognized %q", lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("benchfmt: line %d: line exceeds %d bytes", lineno+1, maxLineBytes)
		}
		return nil, fmt.Errorf("benchfmt: %w", err)
	}

	n := logic.New(name)
	ids := make(map[string]int, len(inputs)+len(defs))
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("benchfmt: duplicate input %q", in)
		}
		ids[in] = n.AddInput(in)
	}
	visiting := make(map[string]bool)
	var emit func(sig string, depth int) (int, error)
	emit = func(sig string, depth int) (int, error) {
		if id, ok := ids[sig]; ok {
			return id, nil
		}
		d, ok := defs[sig]
		if !ok {
			return -1, fmt.Errorf("benchfmt: signal %q never defined", sig)
		}
		if visiting[sig] {
			return -1, fmt.Errorf("benchfmt: combinational cycle through %q", sig)
		}
		if depth > maxEmitDepth {
			return -1, fmt.Errorf("benchfmt: signal %q nested deeper than %d", sig, maxEmitDepth)
		}
		visiting[sig] = true
		fan := make([]int, len(d.fanins))
		for i, f := range d.fanins {
			id, err := emit(f, depth+1)
			if err != nil {
				return -1, err
			}
			fan[i] = id
		}
		delete(visiting, sig)
		if len(fan) < d.op.MinFanin() || (d.op.MaxFanin() >= 0 && len(fan) > d.op.MaxFanin()) {
			return -1, fmt.Errorf("benchfmt: line %d: %s with %d fanins", d.line, d.op, len(fan))
		}
		id := n.AddNamedGate(sig, d.op, fan...)
		ids[sig] = id
		return id, nil
	}
	for _, sig := range order {
		if _, err := emit(sig, 0); err != nil {
			return nil, err
		}
	}
	for _, out := range outputs {
		id, err := emit(out, 0)
		if err != nil {
			return nil, err
		}
		n.AddOutput(out, id)
	}
	return n, n.Check()
}

// ParseString is Parse over a string.
func ParseString(name, s string) (*logic.Network, error) {
	return Parse(name, strings.NewReader(s))
}

func opFromName(fn string) (logic.Op, bool) {
	switch fn {
	case "AND":
		return logic.And, true
	case "OR":
		return logic.Or, true
	case "NAND":
		return logic.Nand, true
	case "NOR":
		return logic.Nor, true
	case "XOR":
		return logic.Xor, true
	case "XNOR":
		return logic.Xnor, true
	case "NOT", "INV":
		return logic.Not, true
	case "BUF", "BUFF":
		return logic.Buf, true
	}
	return 0, false
}

var opToName = map[logic.Op]string{
	logic.And:  "AND",
	logic.Or:   "OR",
	logic.Nand: "NAND",
	logic.Nor:  "NOR",
	logic.Xor:  "XOR",
	logic.Xnor: "XNOR",
	logic.Not:  "NOT",
	logic.Buf:  "BUFF",
}

// Write renders the network in .bench syntax. Constants have no .bench
// representation and are rejected.
func Write(w io.Writer, n *logic.Network) error {
	bw := bufio.NewWriter(w)
	name := func(id int) string {
		if nm := n.Nodes[id].Name; nm != "" {
			return nm
		}
		return fmt.Sprintf("N%d", id)
	}
	fmt.Fprintf(bw, "# %s\n", n.Name)
	for _, id := range n.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", name(id))
	}
	// Outputs whose name differs from their driver get a BUFF alias so the
	// primary-output names survive a round trip.
	type alias struct{ out, drv string }
	var aliases []alias
	for _, out := range n.Outputs {
		drv := name(out.Node)
		if out.Name != drv && n.NodeByName(out.Name) < 0 {
			aliases = append(aliases, alias{out.Name, drv})
			fmt.Fprintf(bw, "OUTPUT(%s)\n", out.Name)
			continue
		}
		fmt.Fprintf(bw, "OUTPUT(%s)\n", drv)
	}
	for id, node := range n.Nodes {
		switch node.Op {
		case logic.Input:
			continue
		case logic.Const0, logic.Const1:
			return fmt.Errorf("benchfmt: node %d: constants are not representable in .bench", id)
		}
		fn, ok := opToName[node.Op]
		if !ok {
			return fmt.Errorf("benchfmt: node %d: cannot write op %s", id, node.Op)
		}
		names := make([]string, len(node.Fanin))
		for i, f := range node.Fanin {
			names[i] = name(f)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", name(id), fn, strings.Join(names, ", "))
	}
	for _, a := range aliases {
		fmt.Fprintf(bw, "%s = BUFF(%s)\n", a.out, a.drv)
	}
	return bw.Flush()
}
