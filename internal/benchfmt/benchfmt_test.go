package benchfmt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"soidomino/internal/logic"
)

const c17ish = `
# a c17-flavored example
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestParseC17(t *testing.T) {
	n, err := ParseString("c17", c17ish)
	_ = n
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseAndEval(t *testing.T) {
	n, err := ParseString("c17", c17ish)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Inputs) != 5 || len(n.Outputs) != 2 {
		t.Fatalf("profile: %d in / %d out", len(n.Inputs), len(n.Outputs))
	}
	// Spot-check: all inputs 1 -> G10=0, G11=0, G16=1, G19=1, G22=1, G23=0.
	out, err := n.Eval([]bool{true, true, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != true || out[1] != false {
		t.Errorf("c17(11111) = %v", out)
	}
}

func TestParseAllOps(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(o1)
OUTPUT(o2)
OUTPUT(o3)
OUTPUT(o4)
OUTPUT(o5)
OUTPUT(o6)
OUTPUT(o7)
OUTPUT(o8)
o1 = AND(a, b)
o2 = or(a, b)
o3 = NAND(a, b)
o4 = NOR(a, b)
o5 = XOR(a, b)
o6 = XNOR(a, b)
o7 = NOT(a)
o8 = BUFF(b)
`
	n, err := ParseString("ops", src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a, b := i&1 != 0, i&2 != 0
		out, _ := n.Eval([]bool{a, b})
		want := []bool{a && b, a || b, !(a && b), !(a || b), a != b, a == b, !a, b}
		for j := range want {
			if out[j] != want[j] {
				t.Errorf("op %d wrong for a=%v b=%v", j, a, b)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"dff":        "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n",
		"cycle":      "INPUT(a)\nOUTPUT(x)\nx = AND(y, a)\ny = AND(x, a)\n",
		"undefined":  "INPUT(a)\nOUTPUT(z)\n",
		"double def": "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\nx = BUFF(a)\n",
		"dup input":  "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n",
		"bad line":   "WIBBLE\n",
		"empty sig":  "INPUT()\n",
		"empty fan":  "INPUT(a)\nOUTPUT(x)\nx = AND(a, )\n",
		"malformed":  "INPUT(a)\nOUTPUT(x)\nx = AND a\n",
		"arity":      "INPUT(a)\nOUTPUT(x)\nx = NOT(a, a)\n",
	}
	for name, src := range cases {
		if _, err := ParseString("bad", src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	n, err := ParseString("c17", c17ish)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString("c17", buf.String())
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	t1, _ := n.TruthTable()
	t2, _ := back.TruthTable()
	for i := range t1 {
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				t.Fatalf("round-trip mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestWriteAliasesUnnamedDrivers(t *testing.T) {
	n := logic.New("alias")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(logic.And, a, b) // unnamed node
	n.AddOutput("f", g)
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "OUTPUT(f)") || !strings.Contains(out, "f = BUFF(") {
		t.Errorf("alias missing:\n%s", out)
	}
	back, err := ParseString("alias", out)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := n.TruthTable()
	t2, _ := back.TruthTable()
	for i := range t1 {
		if t1[i][0] != t2[i][0] {
			t.Fatalf("alias round-trip mismatch at %d", i)
		}
	}
}

func TestWriteRejectsConstants(t *testing.T) {
	n := logic.New("c")
	n.AddOutput("one", n.AddConst(true))
	var buf bytes.Buffer
	if err := Write(&buf, n); err == nil {
		t.Error("constants should be rejected")
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := logic.New("rnd")
		var pool []int
		for i := 0; i < 5; i++ {
			pool = append(pool, n.AddInput(string(rune('a'+i))))
		}
		ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
		for i := 0; i < 15; i++ {
			op := ops[rng.Intn(len(ops))]
			k := 1
			if op.MaxFanin() != 1 {
				k = 2 + rng.Intn(2)
			}
			fan := make([]int, k)
			for j := range fan {
				fan[j] = pool[rng.Intn(len(pool))]
			}
			pool = append(pool, n.AddGate(op, fan...))
		}
		n.AddOutput("f", pool[len(pool)-1])
		n.AddOutput("g", pool[len(pool)-2])
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatal(err)
		}
		back, err := ParseString("rnd", buf.String())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		t1, _ := n.TruthTable()
		t2, _ := back.TruthTable()
		for i := range t1 {
			for j := range t1[i] {
				if t1[i][j] != t2[i][j] {
					t.Fatalf("trial %d: mismatch", trial)
				}
			}
		}
	}
}
