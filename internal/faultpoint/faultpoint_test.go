package faultpoint

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if err := r.Check(context.Background(), "any"); err != nil {
		t.Fatalf("nil registry Check = %v, want nil", err)
	}
	if r.Flip("any") {
		t.Fatal("nil registry Flip = true")
	}
	if r.TotalFired() != 0 || r.Fired() != nil {
		t.Fatal("nil registry reports firings")
	}
	if ctx := With(context.Background(), nil); From(ctx) != nil {
		t.Fatal("With(nil) attached a registry")
	}
}

func TestErrorFault(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Kind: Error, Prob: 1})
	err := r.Check(context.Background(), "p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "faultpoint p") {
		t.Errorf("error %q does not name the point", err)
	}
	if err := r.Check(context.Background(), "unarmed"); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
	custom := errors.New("boom")
	r.Arm("q", Fault{Kind: Error, Prob: 1, Err: custom})
	if err := r.Check(context.Background(), "q"); !errors.Is(err, custom) {
		t.Errorf("custom error not wrapped: %v", err)
	}
}

func TestTimesCapAndCounts(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Kind: Error, Prob: 1, Times: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if r.Check(context.Background(), "p") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (Times cap)", fired)
	}
	if got := r.Fired()["p"]; got != 2 {
		t.Errorf("Fired[p] = %d, want 2", got)
	}
	if r.TotalFired() != 2 {
		t.Errorf("TotalFired = %d, want 2", r.TotalFired())
	}
}

func TestPanicFault(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Kind: Panic, Prob: 1})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(rec.(string), "faultpoint p") {
			t.Errorf("panic %v does not name the point", rec)
		}
	}()
	r.Check(context.Background(), "p")
}

func TestLatencyFault(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Kind: Latency, Prob: 1, Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := r.Check(context.Background(), "p"); err != nil {
		t.Fatalf("latency fault returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("latency fault slept %v, want >= 20ms", d)
	}
	// An expired context aborts the sleep with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Arm("q", Fault{Kind: Latency, Prob: 1, Latency: 10 * time.Second})
	if err := r.Check(ctx, "q"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled latency fault = %v, want context.Canceled", err)
	}
}

func TestCancelFault(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Kind: Cancel, Prob: 1})
	ctx, cancel := WithCancel(With(context.Background(), r))
	defer cancel()
	err := From(ctx).Check(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault = %v, want context.Canceled", err)
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("cancel fault did not cancel the context")
	}
}

func TestFlipIsolation(t *testing.T) {
	r := New(1)
	r.Arm("flip", Fault{Kind: Flip, Prob: 1})
	r.Arm("err", Fault{Kind: Error, Prob: 1})
	// A Flip fault never fires through Check, and a non-Flip fault never
	// fires through Flip: arming a point with the wrong kind cannot
	// silently alter behaviour.
	if err := r.Check(context.Background(), "flip"); err != nil {
		t.Errorf("Check fired a Flip fault: %v", err)
	}
	if !r.Flip("flip") {
		t.Error("Flip did not fire a Flip fault")
	}
	if r.Flip("err") {
		t.Error("Flip fired an Error fault")
	}
}

// TestSeededDeterminism pins the replayability contract: the same seed
// and the same call sequence roll the same firing decisions.
func TestSeededDeterminism(t *testing.T) {
	run := func() []bool {
		r := New(42)
		r.Arm("p", Fault{Kind: Error, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Check(context.Background(), "p") != nil
		}
		return out
	}
	a, b := run(), run()
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeds", i)
		}
		some = some || a[i]
	}
	if !some {
		t.Error("prob 0.5 never fired in 64 rolls")
	}
}

func TestDefineAndPoints(t *testing.T) {
	name := Define("test.point", "a test point")
	if name != "test.point" {
		t.Fatalf("Define returned %q", name)
	}
	found := false
	for _, p := range Points() {
		if p.Name == "test.point" && p.Doc == "a test point" {
			found = true
		}
	}
	if !found {
		t.Error("defined point missing from Points()")
	}
	names := Points()
	for i := 1; i < len(names); i++ {
		if names[i-1].Name >= names[i].Name {
			t.Fatalf("Points not sorted: %q >= %q", names[i-1].Name, names[i].Name)
		}
	}
}

func TestDisarm(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Kind: Error, Prob: 1})
	if r.Check(context.Background(), "p") == nil {
		t.Fatal("armed point did not fire")
	}
	r.Disarm("p")
	if err := r.Check(context.Background(), "p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if got := r.Fired()["p"]; got != 1 {
		t.Errorf("Disarm dropped the fired count: %d, want 1", got)
	}
}
