// Package faultpoint is the named, seeded fault-injection registry of
// the resilience layer. Production code paths declare *fault points* —
// stable names like "mapper.combine" or "service.queue-pop" — and call
// Check at those points; a test or chaos campaign arms a Registry with
// per-point faults (an error return, a panic, injected latency, a
// context cancellation, or a behaviour flip) and threads it through the
// context of the work it wants to disturb.
//
// The registry rides on the context, never on mapper.Options or any
// other value that shapes a result's cache key: two requests that
// differ only in their fault schedule must still share a cache entry,
// exactly like the observability collectors in internal/obs. A nil
// *Registry (the production default) is inert: every method is
// nil-receiver-safe and the disabled path is a single pointer check.
//
// Faults fire probabilistically from a seeded PRNG, so a chaos campaign
// is replayable: the same seed arms the same schedule and rolls the
// same decisions in the same registry-call order.
package faultpoint

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Kind is the behaviour of an armed fault when its point fires.
type Kind uint8

const (
	// Error makes Check return an injected error.
	Error Kind = iota
	// Panic makes Check panic, exercising panic-isolation paths.
	Panic
	// Latency makes Check sleep for Fault.Latency (or until the context
	// is done) before returning nil.
	Latency
	// Cancel cancels the context's registered cancel function (see
	// WithCancel) and returns a context.Canceled error.
	Cancel
	// Flip fires only through the Flip method: it answers "invert this
	// decision?" at behaviour-flip points such as the SOI stack-reorder
	// rule (the generalization of mapper.SetFaultInvertSOIReorder).
	Flip
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Latency:
		return "latency"
	case Cancel:
		return "cancel"
	case Flip:
		return "flip"
	}
	return fmt.Sprintf("Kind(%d)", k)
}

// ErrInjected is the sentinel wrapped by every Error-kind fault, so
// callers and tests can tell injected failures from organic ones.
var ErrInjected = errors.New("injected fault")

// Fault arms one point. The zero Prob never fires.
type Fault struct {
	Kind Kind
	// Prob is the firing probability in [0,1] per registry call.
	Prob float64
	// Times caps the number of firings; 0 means unlimited.
	Times int64
	// Latency is the injected delay of a Latency fault.
	Latency time.Duration
	// Err overrides the returned error of an Error fault; nil wraps
	// ErrInjected.
	Err error
}

type armed struct {
	Fault
	fired int64
}

// Registry holds the armed faults of one campaign. Create with New;
// methods are safe for concurrent use and for a nil receiver.
type Registry struct {
	mu    sync.Mutex
	rng   *rand.Rand
	armed map[string]*armed
}

// New returns an empty registry whose firing decisions derive from seed.
func New(seed int64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewSource(seed)),
		armed: make(map[string]*armed),
	}
}

// Arm installs (or replaces) the fault at a named point.
func (r *Registry) Arm(name string, f Fault) {
	r.mu.Lock()
	r.armed[name] = &armed{Fault: f}
	r.mu.Unlock()
}

// Disarm removes the fault at a named point, keeping its fired count.
func (r *Registry) Disarm(name string) {
	r.mu.Lock()
	if a, ok := r.armed[name]; ok {
		a.Prob = 0
	}
	r.mu.Unlock()
}

// Fired returns the per-point firing counts of every armed point.
func (r *Registry) Fired() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.armed))
	for name, a := range r.armed {
		out[name] = a.fired
	}
	return out
}

// TotalFired returns the number of faults fired across all points.
func (r *Registry) TotalFired() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, a := range r.armed {
		n += a.fired
	}
	return n
}

// roll decides whether the point's armed fault fires now. flip selects
// the channel: Flip-kind faults fire only through Flip, every other
// kind only through Check. A kind/channel mismatch neither fires nor
// counts, so the Fired census reports faults that actually took effect.
func (r *Registry) roll(name string, flip bool) (Fault, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.armed[name]
	if !ok || a.Prob <= 0 || (a.Kind == Flip) != flip || (a.Times > 0 && a.fired >= a.Times) {
		return Fault{}, false
	}
	if r.rng.Float64() >= a.Prob {
		return Fault{}, false
	}
	a.fired++
	return a.Fault, true
}

// Check fires the fault armed at a named point, if any. It returns nil
// when the registry is nil, the point is unarmed, or the roll misses.
// Error faults return a wrapped ErrInjected; Panic faults panic;
// Latency faults sleep and return nil (or the context error if ctx
// expires first); Cancel faults cancel the context's WithCancel handle
// and return a wrapped context.Canceled. Flip faults never fire here.
func (r *Registry) Check(ctx context.Context, name string) error {
	if r == nil {
		return nil
	}
	f, ok := r.roll(name, false)
	if !ok {
		return nil
	}
	switch f.Kind {
	case Panic:
		panic(fmt.Sprintf("faultpoint %s: injected panic", name))
	case Latency:
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("faultpoint %s: %w", name, ctx.Err())
		}
	case Cancel:
		if cancel := cancelFrom(ctx); cancel != nil {
			cancel()
		}
		return fmt.Errorf("faultpoint %s: %w", name, context.Canceled)
	default: // Error
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		return fmt.Errorf("faultpoint %s: %w", name, err)
	}
}

// Flip reports whether a Flip-kind fault at the point fires: behaviour
// flips are opt-in per call site, separate from Check, so arming a
// point with any other kind can never silently alter results.
func (r *Registry) Flip(name string) bool {
	if r == nil {
		return false
	}
	_, ok := r.roll(name, true)
	return ok
}

type ctxKey uint8

const (
	registryKey ctxKey = iota
	cancelKey
)

// With attaches the registry to the context. A nil registry returns ctx
// unchanged.
func With(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, r)
}

// From returns the context's registry, or nil (the inert default).
func From(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// WithCancel derives a cancelable context and registers its cancel
// function where Cancel-kind faults can reach it, so an injected
// cancellation propagates through the same context plumbing a real
// deadline or shutdown would use. The returned cancel must be called to
// release the derived context.
func WithCancel(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(ctx)
	return context.WithValue(ctx, cancelKey, cancel), cancel
}

func cancelFrom(ctx context.Context) context.CancelFunc {
	c, _ := ctx.Value(cancelKey).(context.CancelFunc)
	return c
}

// Point is one declared fault point.
type Point struct {
	Name string
	Doc  string
}

var (
	defMu   sync.Mutex
	defined = make(map[string]string)
)

// Define declares a named fault point and returns the name, so
// instrumented packages can register their points in var blocks:
//
//	var PointParse = faultpoint.Define("blif.parse", "start of a BLIF parse")
//
// Redefining a name overwrites its doc; the catalog is for discovery
// (chaos campaigns arm every defined point), not enforcement.
func Define(name, doc string) string {
	defMu.Lock()
	defined[name] = doc
	defMu.Unlock()
	return name
}

// Points lists every defined fault point, sorted by name.
func Points() []Point {
	defMu.Lock()
	defer defMu.Unlock()
	out := make([]Point, 0, len(defined))
	for name, doc := range defined {
		out = append(out, Point{Name: name, Doc: doc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
