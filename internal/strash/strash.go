// Package strash is the structural-hashing + dead-code-elimination
// canonicalization front-end of the mapping stack. It rewrites a
// logic.Network into a semantically equivalent, usually smaller network in
// which structurally identical gates have been merged (hash-consing with
// commutative-input normalization), constant fanins have been folded, and
// every node unreachable from a primary output has been removed.
//
// The pass runs before decompose/unate in every mapper pipeline
// (report.PrepareNetworkContext) and before canonical hashing in the
// service cache key (service.CacheKey), so structurally identical but
// textually different submissions — renamed internal signals, reordered
// gate declarations, reordered commutative operands, redundant twin or
// dead logic — collapse onto one cache entry, one router shard and one
// singleflight leader.
//
// Contract (see DESIGN.md §13): strash preserves the network name, the
// primary-input set with names and declaration order, and the
// primary-output list with names and order (including duplicate outputs
// and outputs driven by inputs or constants); it preserves function at
// every primary output. It drops internal gate names, gate sharing versus
// duplication distinctions (twins merge, which changes fanout counts and
// therefore may change — but never invalidate — downstream mapping
// choices), and all dead logic. Commutative fanins are reordered by each
// operand's structural signature — NOT by local node id — so the operand
// order (which the mapper reads as series-stack order) is itself a
// function of structure alone, independent of how the source text
// happened to order declarations. Output networks are deterministic: the
// same input network always yields byte-identical strash output
// (the `make strash-determinism` gate pins this).
package strash

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"sort"

	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
)

// PointBadMerge is the package's declared fault point (Flip kind): when
// armed and it fires, one hash-cons lookup deliberately merges an OR gate
// into a structurally different AND gate's cons entry, producing an
// inequivalent network. It exists so the fuzzer can demonstrate that the
// equivalence and strash-metamorphic oracles catch front-end corruption
// and shrink it to a minimal repro; production callers never arm it
// (chaos campaigns arm only non-Flip kinds, which are inert here).
var PointBadMerge = faultpoint.Define("strash.bad-merge",
	"flip: merge one OR gate into an AND cons entry")

// Counters reports how much one Run reduced the network.
type Counters struct {
	// NodesIn and NodesOut count all nodes (inputs and constants
	// included) before and after the pass.
	NodesIn  int
	NodesOut int
	// Merged counts gate nodes that hash-consed onto an existing
	// structurally identical node.
	Merged int
	// Folded counts gate nodes simplified away without a cons hit:
	// constant folding, buffer collapse, double-negation, idempotent
	// duplicate removal down to a single operand, and complement-pair
	// cancellation all land here.
	Folded int
	// Dead counts nodes removed by the DCE sweep because no primary
	// output could reach them (primary inputs are always kept).
	Dead int
}

// Result is the outcome of one strash pass.
type Result struct {
	// Network is the canonicalized network. It is freshly built and
	// shares no mutable state with the input.
	Network *logic.Network
	// NodeMap maps every input-network node id to its representative in
	// Network, or -1 for nodes removed by DCE.
	NodeMap []int
	// Counters summarizes the reduction.
	Counters Counters
}

// Run canonicalizes n. It never fails on a structurally valid network
// (one that passes n.Check); invalid networks panic, matching the
// logic package's own programming-error convention.
func Run(n *logic.Network) *Result {
	return RunContext(context.Background(), n)
}

// builder accumulates the hash-consed network: every node carries a
// structural signature (a sha256 over its op and its fanins' signatures)
// that doubles as the cons key and the commutative-fanin sort key.
type builder struct {
	out    *logic.Network
	sigs   [][]byte       // per out-node structural signature
	cons   map[string]int // signature -> out node id
	faults *faultpoint.Registry
	c      Counters
	const0 int
	const1 int
}

func (b *builder) sig(parts ...[]byte) []byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

func (b *builder) addInput(name string) int {
	id := b.out.AddInput(name)
	b.sigs = append(b.sigs, b.sig([]byte("i|"), []byte(name)))
	return id
}

func (b *builder) getConst(v bool) int {
	if v {
		if b.const1 < 0 {
			b.const1 = b.out.AddConst(true)
			b.sigs = append(b.sigs, b.sig([]byte("c1")))
		}
		return b.const1
	}
	if b.const0 < 0 {
		b.const0 = b.out.AddConst(false)
		b.sigs = append(b.sigs, b.sig([]byte("c0")))
	}
	return b.const0
}

// isNotOf returns (x, true) when out node id computes NOT x; used for
// complement-pair cancellation.
func (b *builder) isNotOf(id int) (int, bool) {
	nd := b.out.Nodes[id]
	if nd.Op == logic.Not {
		return nd.Fanin[0], true
	}
	return -1, false
}

// consNot builds (or finds) NOT x, folding constants and double negation.
func (b *builder) consNot(x int) int {
	switch b.out.Nodes[x].Op {
	case logic.Const0:
		return b.getConst(true)
	case logic.Const1:
		return b.getConst(false)
	case logic.Not:
		return b.out.Nodes[x].Fanin[0]
	}
	sig := b.sig([]byte("n|"), b.sigs[x])
	if id, ok := b.cons[string(sig)]; ok {
		return id
	}
	id := b.out.AddGate(logic.Not, x)
	b.sigs = append(b.sigs, sig)
	b.cons[string(sig)] = id
	return id
}

// sortStructural orders node ids by their structural signature
// (ties — only possible for hash collisions, since structural twins are
// already merged — break by id). This is the commutative-input
// normalization: the resulting operand order, which the mapper reads as
// series-stack order, depends on structure alone.
func (b *builder) sortStructural(ids []int) {
	sort.Slice(ids, func(i, j int) bool {
		if c := bytes.Compare(b.sigs[ids[i]], b.sigs[ids[j]]); c != 0 {
			return c < 0
		}
		return ids[i] < ids[j]
	})
}

// consGate hash-conses one already-normalized gate (core op, >= 2
// structurally sorted operands).
func (b *builder) consGate(op logic.Op, ops []int) int {
	parts := make([][]byte, 0, len(ops)+1)
	parts = append(parts, []byte{'g', byte(op), '|'})
	if b.faults.Flip(PointBadMerge) && op == logic.Or {
		// Deliberate corruption for fault-injection tests: sign the OR
		// as an AND, merging it into any structurally matching AND.
		parts[0] = []byte{'g', byte(logic.And), '|'}
	}
	for _, f := range ops {
		parts = append(parts, b.sigs[f])
	}
	sig := b.sig(parts...)
	if id, ok := b.cons[string(sig)]; ok {
		b.c.Merged++
		return id
	}
	id := b.out.AddGate(op, ops...)
	b.sigs = append(b.sigs, sig)
	b.cons[string(sig)] = id
	return id
}

// consMonotone normalizes one And/Or/Nand/Nor gate: constant folding,
// idempotent duplicate removal, complement-pair cancellation, then
// structural operand ordering keys the cons lookup. The Nand/Nor wrapper
// becomes an explicit inverter on the core gate.
func (b *builder) consMonotone(op logic.Op, fanin []int) int {
	core, invert := op, false
	switch op {
	case logic.Nand:
		core, invert = logic.And, true
	case logic.Nor:
		core, invert = logic.Or, true
	}
	// dominant is the constant that forces the core's value; identity
	// fanins drop out.
	dominant := core == logic.Or // Or: const1 dominates; And: const0
	finish := func(id int) int {
		if invert {
			return b.consNot(id)
		}
		return id
	}

	seen := make(map[int]bool, len(fanin))
	var ops []int
	for _, f := range fanin {
		switch b.out.Nodes[f].Op {
		case logic.Const0:
			if !dominant {
				b.c.Folded++
				return finish(b.getConst(false))
			}
			continue // identity for Or
		case logic.Const1:
			if dominant {
				b.c.Folded++
				return finish(b.getConst(true))
			}
			continue // identity for And
		}
		if seen[f] {
			continue // idempotence: x·x = x, x+x = x
		}
		seen[f] = true
		ops = append(ops, f)
	}
	// Complement pair: x together with NOT x annihilates the core.
	for _, f := range ops {
		if x, ok := b.isNotOf(f); ok && seen[x] {
			b.c.Folded++
			return finish(b.getConst(dominant))
		}
	}
	switch len(ops) {
	case 0:
		// Every operand was an identity constant: the empty And is 1,
		// the empty Or is 0.
		b.c.Folded++
		return finish(b.getConst(!dominant))
	case 1:
		b.c.Folded++
		return finish(ops[0])
	}
	b.sortStructural(ops)
	return finish(b.consGate(core, ops))
}

// consParity normalizes one Xor/Xnor gate. Parity semantics follow
// logic.EvalAll: the gate is the parity of its fanins, complemented for
// Xnor. Const1 fanins and complemented operands toggle the complement;
// identical pairs and Const0 fanins vanish.
func (b *builder) consParity(op logic.Op, fanin []int) int {
	invert := op == logic.Xnor
	count := make(map[int]int, len(fanin))
	order := make([]int, 0, len(fanin))
	add := func(f int) {
		if count[f] == 0 {
			order = append(order, f)
		}
		count[f]++
	}
	for _, f := range fanin {
		switch b.out.Nodes[f].Op {
		case logic.Const0:
			continue
		case logic.Const1:
			invert = !invert
			continue
		}
		// Normalize NOT x to x with a complement toggle, so x and NOT x
		// land on the same parity bucket and cancel.
		if x, ok := b.isNotOf(f); ok {
			invert = !invert
			add(x)
		} else {
			add(f)
		}
	}
	var ops []int
	for _, f := range order {
		if count[f]%2 == 1 {
			ops = append(ops, f) // pairs cancel: x ^ x = 0
		}
	}
	if len(ops) < len(fanin) {
		b.c.Folded++
	}
	finish := func(id int) int {
		if invert {
			return b.consNot(id)
		}
		return id
	}
	switch len(ops) {
	case 0:
		return finish(b.getConst(false))
	case 1:
		return finish(ops[0])
	}
	b.sortStructural(ops)
	return finish(b.consGate(logic.Xor, ops))
}

// RunContext is Run with fault-injection plumbing: a faultpoint registry
// carried by ctx may fire PointBadMerge. A plain context makes it
// identical to Run.
func RunContext(ctx context.Context, n *logic.Network) *Result {
	b := &builder{
		out:    logic.New(n.Name),
		cons:   make(map[string]int),
		faults: faultpoint.From(ctx),
		const0: -1,
		const1: -1,
	}
	b.c.NodesIn = len(n.Nodes)

	// Phase 1: forward hash-consing pass. repr[i] is the id in b.out of
	// the node computing the same function as input node i.
	repr := make([]int, len(n.Nodes))
	for i, node := range n.Nodes {
		switch node.Op {
		case logic.Input:
			// Inputs are the interface: never merged, names kept.
			repr[i] = b.addInput(node.Name)
		case logic.Const0:
			repr[i] = b.getConst(false)
		case logic.Const1:
			repr[i] = b.getConst(true)
		case logic.Buf:
			repr[i] = repr[node.Fanin[0]]
			b.c.Folded++
		case logic.Not:
			x := repr[node.Fanin[0]]
			before := len(b.out.Nodes)
			id := b.consNot(x)
			if id < before { // nothing new was built
				if b.out.Nodes[id].Op == logic.Not && b.out.Nodes[id].Fanin[0] == x {
					b.c.Merged++ // cons hit on an identical inverter
				} else {
					b.c.Folded++ // constant fold or double negation
				}
			}
			repr[i] = id
		case logic.And, logic.Or, logic.Nand, logic.Nor:
			repr[i] = b.consMonotone(node.Op, faninRepr(repr, node.Fanin))
		case logic.Xor, logic.Xnor:
			repr[i] = b.consParity(node.Op, faninRepr(repr, node.Fanin))
		default:
			panic(fmt.Sprintf("strash: node %d has unknown op %v", i, node.Op))
		}
	}

	// Carry the PO bindings over before DCE decides reachability.
	out := b.out
	for _, po := range n.Outputs {
		out.AddOutput(po.Name, repr[po.Node])
	}

	// Phase 2: DCE. Keep every primary input (the interface) plus
	// everything reachable from a primary output. The worklist is
	// explicit: parser depth caps do not bound programmatically built
	// networks, so recursion depth must not scale with circuit depth.
	keep := make([]bool, len(out.Nodes))
	var stack []int
	push := func(id int) {
		if !keep[id] {
			keep[id] = true
			stack = append(stack, id)
		}
	}
	for _, po := range out.Outputs {
		push(po.Node)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range out.Nodes[id].Fanin {
			push(f)
		}
	}
	for _, in := range out.Inputs {
		keep[in] = true
	}

	final := logic.New(n.Name)
	finalOf := make([]int, len(out.Nodes))
	for i := range finalOf {
		finalOf[i] = -1
	}
	for id, nd := range out.Nodes {
		if !keep[id] {
			b.c.Dead++
			continue
		}
		switch nd.Op {
		case logic.Input:
			finalOf[id] = final.AddInput(nd.Name)
		case logic.Const0:
			finalOf[id] = final.AddConst(false)
		case logic.Const1:
			finalOf[id] = final.AddConst(true)
		default:
			fanin := make([]int, len(nd.Fanin))
			for k, f := range nd.Fanin {
				fanin[k] = finalOf[f]
			}
			finalOf[id] = final.AddGate(nd.Op, fanin...)
		}
	}
	for _, po := range out.Outputs {
		final.AddOutput(po.Name, finalOf[po.Node])
	}

	nodeMap := make([]int, len(n.Nodes))
	for i := range nodeMap {
		nodeMap[i] = finalOf[repr[i]]
	}
	b.c.NodesOut = len(final.Nodes)
	return &Result{Network: final, NodeMap: nodeMap, Counters: b.c}
}

// faninRepr maps a source fanin list through repr.
func faninRepr(repr []int, fanin []int) []int {
	out := make([]int, len(fanin))
	for i, f := range fanin {
		out[i] = repr[f]
	}
	return out
}
