package strash

import (
	"context"
	"math/rand"
	"testing"

	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
)

// equivalent compares the two networks' truth tables. Strash preserves
// the input set, input order and output order, so the tables must match
// row for row and column for column.
func equivalent(t *testing.T, a, b *logic.Network) {
	t.Helper()
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("interface changed: %d/%d inputs, %d/%d outputs",
			len(a.Inputs), len(b.Inputs), len(a.Outputs), len(b.Outputs))
	}
	ta, err := a.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ta {
		for j := range ta[i] {
			if ta[i][j] != tb[i][j] {
				t.Fatalf("row %d output %d (%q): %v became %v",
					i, j, a.Outputs[j].Name, ta[i][j], tb[i][j])
			}
		}
	}
}

// run strashes n, validating the output network and the NodeMap shape.
func run(t *testing.T, n *logic.Network) *Result {
	t.Helper()
	r := Run(n)
	if err := r.Network.Check(); err != nil {
		t.Fatalf("strash output invalid: %v", err)
	}
	if len(r.NodeMap) != len(n.Nodes) {
		t.Fatalf("NodeMap has %d entries for %d nodes", len(r.NodeMap), len(n.Nodes))
	}
	for old, nw := range r.NodeMap {
		if nw < -1 || nw >= len(r.Network.Nodes) {
			t.Fatalf("NodeMap[%d] = %d out of range", old, nw)
		}
	}
	if r.Counters.NodesIn != len(n.Nodes) || r.Counters.NodesOut != len(r.Network.Nodes) {
		t.Fatalf("counters %+v disagree with node counts %d -> %d",
			r.Counters, len(n.Nodes), len(r.Network.Nodes))
	}
	return r
}

func TestMergesStructuralTwins(t *testing.T) {
	n := logic.New("twins")
	a, b, c := n.AddInput("a"), n.AddInput("b"), n.AddInput("c")
	// Two ANDs over the same operands in opposite order, under different
	// names, each ORed with c: the whole cone must collapse to one AND
	// and one OR.
	g1 := n.AddNamedGate("g1", logic.And, a, b)
	g2 := n.AddNamedGate("g2", logic.And, b, a)
	o1 := n.AddGate(logic.Or, g1, c)
	o2 := n.AddGate(logic.Or, c, g2)
	n.AddOutput("y1", o1)
	n.AddOutput("y2", o2)

	r := run(t, n)
	equivalent(t, n, r.Network)
	if got := r.Network.Stats().Gates; got != 2 {
		t.Fatalf("want 2 surviving gates (one and, one or), got %d:\n%s", got, r.Network.Dump())
	}
	if r.Counters.Merged != 2 {
		t.Fatalf("want 2 merges (twin and, twin or), got %+v", r.Counters)
	}
	if r.NodeMap[g1] != r.NodeMap[g2] || r.NodeMap[o1] != r.NodeMap[o2] {
		t.Fatalf("twins not mapped to one representative: %v", r.NodeMap)
	}
}

func TestConstantFolding(t *testing.T) {
	n := logic.New("consts")
	a, b := n.AddInput("a"), n.AddInput("b")
	c0, c1 := n.AddConst(false), n.AddConst(true)
	n.AddOutput("and0", n.AddGate(logic.And, a, c0))  // = 0
	n.AddOutput("and1", n.AddGate(logic.And, a, c1))  // = a
	n.AddOutput("or1", n.AddGate(logic.Or, a, c1))    // = 1
	n.AddOutput("or0", n.AddGate(logic.Or, b, c0))    // = b
	n.AddOutput("nand0", n.AddGate(logic.Nand, a, c0)) // = 1
	n.AddOutput("nor0", n.AddGate(logic.Nor, a, c0))  // = not a
	n.AddOutput("xor1", n.AddGate(logic.Xor, a, c1))  // = not a
	n.AddOutput("xnor0", n.AddGate(logic.Xnor, a, c0)) // = not a
	n.AddOutput("contr", n.AddGate(logic.And, a, n.AddGate(logic.Not, a))) // = 0
	n.AddOutput("taut", n.AddGate(logic.Or, b, n.AddGate(logic.Not, b)))   // = 1
	n.AddOutput("xx", n.AddGate(logic.Xor, a, a))     // = 0
	n.AddOutput("xnotx", n.AddGate(logic.Xor, a, n.AddGate(logic.Not, a))) // = 1

	r := run(t, n)
	equivalent(t, n, r.Network)
	// Everything folds to a, b, not-a, not-b or a constant: at most the
	// two inverters survive as gates.
	if got := r.Network.Stats().Gates; got > 2 {
		t.Fatalf("constant folding left %d gates:\n%s", got, r.Network.Dump())
	}
	if r.Counters.Folded == 0 {
		t.Fatalf("no folds counted: %+v", r.Counters)
	}
}

// TestPOIsConstant pins the edge case of a primary output that is (or
// folds to) a constant: the constant node must survive DCE and keep the
// output binding.
func TestPOIsConstant(t *testing.T) {
	n := logic.New("constpo")
	a := n.AddInput("a")
	n.AddOutput("zero", n.AddConst(false))
	n.AddOutput("one", n.AddGate(logic.Or, a, n.AddGate(logic.Not, a)))

	r := run(t, n)
	equivalent(t, n, r.Network)
	for i, want := range []logic.Op{logic.Const0, logic.Const1} {
		got := r.Network.Nodes[r.Network.Outputs[i].Node].Op
		if got != want {
			t.Fatalf("output %d: want %v, got %v\n%s", i, want, got, r.Network.Dump())
		}
	}
	if r.Network.Stats().Gates != 0 {
		t.Fatalf("gates survived a constant-output network:\n%s", r.Network.Dump())
	}
}

// TestPOFedByPI pins the edge case of an output wired straight to an
// input: the binding and both names survive.
func TestPOFedByPI(t *testing.T) {
	n := logic.New("wire")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("y", a)
	n.AddOutput("z", n.AddGate(logic.Buf, b))

	r := run(t, n)
	equivalent(t, n, r.Network)
	for i, wantIn := range []string{"a", "b"} {
		po := r.Network.Outputs[i]
		node := r.Network.Nodes[po.Node]
		if node.Op != logic.Input || node.Name != wantIn {
			t.Fatalf("output %q: want input %q, got %v %q", po.Name, wantIn, node.Op, node.Name)
		}
	}
}

// TestDuplicatePOs pins the edge case of several outputs naming the same
// node: every binding survives, in order.
func TestDuplicatePOs(t *testing.T) {
	n := logic.New("duppo")
	a, b := n.AddInput("a"), n.AddInput("b")
	g := n.AddGate(logic.And, a, b)
	n.AddOutput("y", g)
	n.AddOutput("y_copy", g)
	n.AddOutput("y_again", g)

	r := run(t, n)
	equivalent(t, n, r.Network)
	if len(r.Network.Outputs) != 3 {
		t.Fatalf("want 3 outputs, got %d", len(r.Network.Outputs))
	}
	want := []string{"y", "y_copy", "y_again"}
	for i, po := range r.Network.Outputs {
		if po.Name != want[i] {
			t.Fatalf("output %d renamed: want %q, got %q", i, want[i], po.Name)
		}
		if po.Node != r.Network.Outputs[0].Node {
			t.Fatalf("duplicate POs split across nodes: %v", r.Network.Outputs)
		}
	}
}

// TestAllDead pins the edge case of a network whose gates reach no
// primary output: DCE removes every gate, the inputs survive (they are
// the interface), and the node map reports the dead nodes as -1.
func TestAllDead(t *testing.T) {
	n := logic.New("dead")
	a, b := n.AddInput("a"), n.AddInput("b")
	g1 := n.AddGate(logic.And, a, b)
	g2 := n.AddGate(logic.Not, g1)
	_ = g2

	r := run(t, n)
	if got := len(r.Network.Nodes); got != 2 {
		t.Fatalf("want only the 2 inputs to survive, got %d nodes:\n%s", got, r.Network.Dump())
	}
	if r.Counters.Dead != 2 {
		t.Fatalf("want 2 dead nodes, got %+v", r.Counters)
	}
	for _, dead := range []int{g1, g2} {
		if r.NodeMap[dead] != -1 {
			t.Fatalf("dead node %d mapped to %d, want -1", dead, r.NodeMap[dead])
		}
	}
	if r.NodeMap[a] == -1 || r.NodeMap[b] == -1 {
		t.Fatalf("inputs removed: %v", r.NodeMap)
	}
}

// randomNetwork builds a seeded random DAG over the full op set,
// including deliberate redundancy: twin gates, buffers, double
// negations, constants and dead cones.
func randomNetwork(seed int64) *logic.Network {
	rng := rand.New(rand.NewSource(seed))
	n := logic.New("rand")
	ids := []int{}
	for i := 0; i < 3+rng.Intn(3); i++ {
		ids = append(ids, n.AddInput(string(rune('a'+i))))
	}
	if rng.Intn(2) == 0 {
		ids = append(ids, n.AddConst(rng.Intn(2) == 0))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor}
	gates := 8 + rng.Intn(12)
	for i := 0; i < gates; i++ {
		switch rng.Intn(10) {
		case 0:
			ids = append(ids, n.AddGate(logic.Buf, ids[rng.Intn(len(ids))]))
		case 1, 2:
			ids = append(ids, n.AddGate(logic.Not, ids[rng.Intn(len(ids))]))
		default:
			op := ops[rng.Intn(len(ops))]
			k := 2 + rng.Intn(2)
			fanin := make([]int, k)
			for j := range fanin {
				fanin[j] = ids[rng.Intn(len(ids))]
			}
			id := n.AddGate(op, fanin...)
			if rng.Intn(3) == 0 { // twin with shuffled operands
				rng.Shuffle(len(fanin), func(x, y int) { fanin[x], fanin[y] = fanin[y], fanin[x] })
				n.AddGate(op, fanin...)
			}
			ids = append(ids, id)
		}
	}
	outs := 1 + rng.Intn(3)
	for i := 0; i < outs; i++ {
		n.AddOutput(string(rune('x'+i))+"_out", ids[len(ids)-1-rng.Intn(min(len(ids), 5))])
	}
	return n
}

func TestRandomEquivalence(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		n := randomNetwork(seed)
		r := run(t, n)
		equivalent(t, n, r.Network)
		if r.Counters.NodesOut > r.Counters.NodesIn {
			t.Fatalf("seed %d: strash grew the network %d -> %d",
				seed, r.Counters.NodesIn, r.Counters.NodesOut)
		}
	}
}

// TestDeterministicAndIdempotent pins the two structural guarantees the
// strash-determinism gate relies on: repeated runs are byte-identical,
// and re-strashing a strashed network changes nothing.
func TestDeterministicAndIdempotent(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		n := randomNetwork(seed)
		r1, r2 := run(t, n), run(t, n)
		if r1.Network.Dump() != r2.Network.Dump() {
			t.Fatalf("seed %d: two runs differ:\n%s\nvs\n%s", seed, r1.Network.Dump(), r2.Network.Dump())
		}
		again := run(t, r1.Network)
		if again.Network.Dump() != r1.Network.Dump() {
			t.Fatalf("seed %d: strash not idempotent:\n%s\nvs\n%s",
				seed, r1.Network.Dump(), again.Network.Dump())
		}
		cnt := again.Counters
		if cnt.Merged != 0 || cnt.Dead != 0 {
			t.Fatalf("seed %d: re-strash still reduced: %+v", seed, cnt)
		}
	}
}

// TestBadMergeFault proves the Flip-kind fault point corrupts results
// when (and only when) armed — the hook the fuzzer uses to demonstrate
// oracle catch + shrink for front-end bugs.
func TestBadMergeFault(t *testing.T) {
	n := logic.New("fault")
	a, b := n.AddInput("a"), n.AddInput("b")
	n.AddOutput("and", n.AddGate(logic.And, a, b))
	n.AddOutput("or", n.AddGate(logic.Or, a, b))

	reg := faultpoint.New(1)
	reg.Arm(PointBadMerge, faultpoint.Fault{Kind: faultpoint.Flip, Prob: 1})
	ctx := faultpoint.With(context.Background(), reg)
	r := RunContext(ctx, n)
	if reg.Fired()[PointBadMerge] == 0 {
		t.Fatal("fault point never fired")
	}
	// The OR merged into the AND: both outputs now share one node.
	if r.Network.Outputs[0].Node != r.Network.Outputs[1].Node {
		t.Fatalf("bad-merge fault did not merge or into and:\n%s", r.Network.Dump())
	}
	// And without the registry the same network is untouched.
	clean := Run(n)
	if clean.Network.Outputs[0].Node == clean.Network.Outputs[1].Node {
		t.Fatal("clean run merged distinct gates")
	}
}
