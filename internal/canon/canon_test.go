package canon

import (
	"testing"

	"soidomino/internal/bench"
	"soidomino/internal/logic"
)

// buildAB builds OR(AND(a,b), AND(c,d)) with the two AND gates inserted in
// the given order, so the two variants are the same graph under different
// node numberings.
func buildAB(andCDFirst bool) *logic.Network {
	n := logic.New("fig3")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	var ab, cd int
	if andCDFirst {
		cd = n.AddGate(logic.And, c, d)
		ab = n.AddGate(logic.And, a, b)
	} else {
		ab = n.AddGate(logic.And, a, b)
		cd = n.AddGate(logic.And, c, d)
	}
	o := n.AddGate(logic.Or, ab, cd)
	n.AddOutput("f", o)
	return n
}

func TestHashInvariantToInsertionOrder(t *testing.T) {
	h1 := Hash(buildAB(false))
	h2 := Hash(buildAB(true))
	if h1 != h2 {
		t.Errorf("same graph, different hashes:\n%s\n%s", h1, h2)
	}
}

func TestHashSensitiveToFaninOrder(t *testing.T) {
	mk := func(swap bool) *logic.Network {
		n := logic.New("g")
		a := n.AddInput("a")
		b := n.AddInput("b")
		var g int
		if swap {
			g = n.AddGate(logic.And, b, a)
		} else {
			g = n.AddGate(logic.And, a, b)
		}
		n.AddOutput("f", g)
		return n
	}
	// Operand order decides series-stack order in the baseline mappers, so
	// AND(a,b) and AND(b,a) must not share a cache entry.
	if Hash(mk(false)) == Hash(mk(true)) {
		t.Error("fanin order ignored by hash")
	}
}

func TestHashSensitiveToSharingVsDuplication(t *testing.T) {
	shared := logic.New("s")
	a := shared.AddInput("a")
	b := shared.AddInput("b")
	g := shared.AddGate(logic.And, a, b)
	o1 := shared.AddGate(logic.Or, g, a)
	o2 := shared.AddGate(logic.Or, g, b)
	shared.AddOutput("x", o1)
	shared.AddOutput("y", o2)

	dup := logic.New("s")
	a = dup.AddInput("a")
	b = dup.AddInput("b")
	g1 := dup.AddGate(logic.And, a, b)
	g2 := dup.AddGate(logic.And, a, b)
	o1 = dup.AddGate(logic.Or, g1, a)
	o2 = dup.AddGate(logic.Or, g2, b)
	dup.AddOutput("x", o1)
	dup.AddOutput("y", o2)

	// Sharing forces a gate root at the shared node; duplication does not.
	// The mapper can produce different netlists, so the hashes must differ.
	if Hash(shared) == Hash(dup) {
		t.Error("shared and duplicated subtrees hash identically")
	}
}

func TestHashSensitiveToNames(t *testing.T) {
	mk := func(name string) *logic.Network {
		n := logic.New("g")
		a := n.AddInput(name)
		b := n.AddInput("b")
		g := n.AddGate(logic.And, a, b)
		n.AddOutput("f", g)
		return n
	}
	if Hash(mk("a")) == Hash(mk("z")) {
		t.Error("input name ignored by hash")
	}
}

func TestCanonicalizeIsPermutation(t *testing.T) {
	n := bench.MustBuild("mux")
	f := Canonicalize(n)
	if len(f.Order) != n.Len() || len(f.Label) != n.Len() {
		t.Fatalf("order/label sizes %d/%d, want %d", len(f.Order), len(f.Label), n.Len())
	}
	seen := make([]bool, n.Len())
	for label, id := range f.Order {
		if seen[id] {
			t.Fatalf("node %d labeled twice", id)
		}
		seen[id] = true
		if f.Label[id] != label {
			t.Fatalf("Label[%d]=%d, want %d", id, f.Label[id], label)
		}
	}
	// Canonical order must itself be topological.
	for _, id := range f.Order {
		for _, fi := range n.Nodes[id].Fanin {
			if f.Label[fi] >= f.Label[id] {
				t.Fatalf("fanin %d labeled after node %d", fi, id)
			}
		}
	}
}

func TestHashDeterministicOnBenchmarks(t *testing.T) {
	for _, name := range []string{"mux", "z4ml", "cordic", "c880"} {
		h1 := Hash(bench.MustBuild(name))
		h2 := Hash(bench.MustBuild(name))
		if h1 != h2 {
			t.Errorf("%s: rebuild changed hash", name)
		}
		if len(h1) != 64 {
			t.Errorf("%s: hash %q is not sha256 hex", name, h1)
		}
	}
}

func TestDistinctBenchmarksDistinctHashes(t *testing.T) {
	seen := make(map[string]string)
	for _, name := range []string{"mux", "z4ml", "cordic", "b9", "c8", "c880"} {
		h := Hash(bench.MustBuild(name))
		if prev, dup := seen[h]; dup {
			t.Errorf("%s and %s share hash %s", name, prev, h)
		}
		seen[h] = name
	}
}
