// Package canon computes a canonical form and structural fingerprint of a
// logic.Network.
//
// Two networks receive the same fingerprint exactly when they are
// structurally identical up to node numbering: the canonicalization
// relabels nodes by a deterministic topological order whose ties are
// broken by a per-node structural signature (operation, name, canonical
// fanin labels), so any insertion order that builds the same graph hashes
// to the same value. Everything the mapper is sensitive to is preserved:
// fanin order (series-stack order follows operand order), sharing versus
// duplication (fanout decides forced gate roots), node names (they become
// gate output names), input declaration order and output bindings.
// Indistinguishable twin nodes — identical op, name and fanins — keep
// their relative source order, which is the one tie the signature cannot
// break.
//
// The fingerprint is the primary key of the mapping service's result
// cache (internal/service): sweeps that resubmit the same circuit under
// different mapper options share one canonical hash and differ only in
// the options part of the cache key.
//
// In the service paths the hash is computed post-strash: unless the
// request opts out (strash_off), internal/strash canonicalizes the
// submission first — merging structural twins, folding constants and
// removing dead logic — so structurally identical but textually
// different sources (renamed signals, reordered declarations,
// commutative operand swaps, extra dead gates) collapse onto one
// fingerprint, one cache entry and one router shard. Canon itself still
// preserves everything listed above; it is strash that erases what the
// mapper cannot observe. See DESIGN.md §13 for the exact contract.
package canon
