package canon

import (
	"container/heap"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"soidomino/internal/logic"
)

// Form is the canonical description of a network: a relabeling of its
// nodes plus the serialized structure the fingerprint hashes.
type Form struct {
	// Order maps canonical label -> original node id.
	Order []int
	// Label maps original node id -> canonical label.
	Label []int

	text string
}

// Bytes returns the serialized canonical description. It is deterministic
// and self-contained: hashing it yields the fingerprint.
func (f *Form) Bytes() []byte { return []byte(f.text) }

// Hash returns the hex-encoded SHA-256 of the canonical description.
func (f *Form) Hash() string {
	sum := sha256.Sum256([]byte(f.text))
	return hex.EncodeToString(sum[:])
}

// Hash is shorthand for Canonicalize(n).Hash().
func Hash(n *logic.Network) string { return Canonicalize(n).Hash() }

// sigItem is one ready node in the canonical topological sort.
type sigItem struct {
	sig string
	id  int // original node id, the final tie-break
}

type sigHeap []sigItem

func (h sigHeap) Len() int { return len(h) }
func (h sigHeap) Less(i, j int) bool {
	if h[i].sig != h[j].sig {
		return h[i].sig < h[j].sig
	}
	return h[i].id < h[j].id
}
func (h sigHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sigHeap) Push(x any)   { *h = append(*h, x.(sigItem)) }
func (h *sigHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Canonicalize relabels every node of n by a deterministic topological
// order: among the nodes whose fanins are all labeled, the smallest
// structural signature goes next. Dead nodes are included — they still
// shape the mapping through fanout counts.
func Canonicalize(n *logic.Network) *Form {
	f := &Form{
		Order: make([]int, 0, n.Len()),
		Label: make([]int, n.Len()),
	}
	for i := range f.Label {
		f.Label[i] = -1
	}

	pending := make([]int, n.Len()) // unlabeled fanins per node
	users := make([][]int, n.Len()) // fanin -> dependent node ids
	for id := range n.Nodes {
		node := &n.Nodes[id]
		pending[id] = len(node.Fanin)
		for _, fi := range node.Fanin {
			users[fi] = append(users[fi], id)
		}
	}

	sig := func(id int) string {
		node := &n.Nodes[id]
		var b strings.Builder
		b.WriteString(node.Op.String())
		b.WriteByte('|')
		b.WriteString(node.Name)
		for _, fi := range node.Fanin {
			fmt.Fprintf(&b, "|%d", f.Label[fi])
		}
		return b.String()
	}

	h := &sigHeap{}
	for id := range n.Nodes {
		if pending[id] == 0 {
			heap.Push(h, sigItem{sig(id), id})
		}
	}
	var text strings.Builder
	for h.Len() > 0 {
		it := heap.Pop(h).(sigItem)
		label := len(f.Order)
		f.Label[it.id] = label
		f.Order = append(f.Order, it.id)
		fmt.Fprintf(&text, "n%d %s\n", label, it.sig)
		for _, u := range users[it.id] {
			if pending[u]--; pending[u] == 0 {
				heap.Push(h, sigItem{sig(u), u})
			}
		}
	}
	// A Network is topological by construction, so every node is labeled.

	text.WriteString("inputs")
	for _, id := range n.Inputs {
		fmt.Fprintf(&text, " %d", f.Label[id])
	}
	text.WriteByte('\n')

	outs := make([]logic.Output, len(n.Outputs))
	copy(outs, n.Outputs)
	sort.Slice(outs, func(i, j int) bool {
		if outs[i].Name != outs[j].Name {
			return outs[i].Name < outs[j].Name
		}
		return f.Label[outs[i].Node] < f.Label[outs[j].Node]
	})
	for _, out := range outs {
		fmt.Fprintf(&text, "out %s %d\n", out.Name, f.Label[out.Node])
	}
	f.text = text.String()
	return f
}
