package service

import (
	"net/http"
	"runtime/debug"
	"strings"
)

// withRecovery is the outermost middleware: a panic escaping any handler
// is turned into a 500 instead of tearing down the whole connection (and,
// under http.Serve, flooding the log with goroutine dumps). The redacted
// frame list goes to the client; the full stack only to the server log.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			stack := debug.Stack()
			s.metrics.add("http_panics", 1)
			s.logger.Error("handler panicked",
				"method", r.Method, "path", r.URL.Path,
				"panic", rec, "stack", string(stack))
			// The handler may have already written a header; WriteHeader
			// after that point logs a spurious warning but is harmless.
			writeJSON(w, http.StatusInternalServerError,
				apiError{"internal error: " + redactStack(stack)})
		}()
		next.ServeHTTP(w, r)
	})
}

// redactStack compresses a debug.Stack dump into a short chain of
// function names safe to hand to a client: no addresses, no argument
// values, no file-system paths, at most maxRedactedFrames frames.
const maxRedactedFrames = 12

func redactStack(stack []byte) string {
	var frames []string
	for _, line := range strings.Split(string(stack), "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "goroutine "):
			continue // header
		case strings.HasPrefix(line, "\t"):
			continue // file:line — paths stay server-side
		case strings.HasPrefix(line, "created by "):
			continue
		}
		// "pkg/path.Func(0x1234, ...)" → "pkg/path.Func"
		if i := strings.LastIndex(line, "("); i > 0 {
			line = line[:i]
		}
		// Skip the recovery machinery itself so the first frame is the
		// panic site.
		if strings.Contains(line, "runtime/debug.Stack") ||
			strings.Contains(line, "runtime.gopanic") ||
			strings.Contains(line, "service.redactStack") {
			continue
		}
		frames = append(frames, line)
		if len(frames) == maxRedactedFrames {
			break
		}
	}
	return strings.Join(frames, " < ")
}
