package service

import (
	"bytes"
	"context"
	"net/http"
	"testing"
)

// Two BLIF renderings of the same circuit. They differ in every way
// strash is allowed to erase: internal signal names (t1/t2 vs x9/aa),
// declaration order of independent gates, commutative operand order
// inside covers, and a dead logic block present only in the first.
// Structure and interface (model name, inputs, outputs) agree.
const blifTidy = `.model renamed
.inputs a b c
.outputs y z
.names a b t1
11 1
.names b c t2
11 1
.names t1 t2 y
1- 1
-1 1
.names a c u_dead
1- 1
-1 1
.names t1 c z
11 1
.end
`

const blifScrambled = `.model renamed
.inputs a b c
.outputs y z
.names c b aa
11 1
.names b a x9
11 1
.names x9 aa y
1- 1
-1 1
.names x9 c z
11 1
.end
`

// TestStrashCollapsesRenamedSubmissions pins the tentpole cache-hit
// multiplication end to end: two structurally identical but textually
// different BLIF sources resolve to ONE routing key, and the second
// submission is answered byte-identically from the first one's cache
// entry without mapping.
func TestStrashCollapsesRenamedSubmissions(t *testing.T) {
	k1, err := RequestKey(context.Background(), &MapRequest{BLIF: blifTidy})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := RequestKey(context.Background(), &MapRequest{BLIF: blifScrambled})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("renamed/reordered sources got distinct keys:\n  %s\n  %s", k1, k2)
	}

	// Without strash the textual differences survive into the canon
	// hash: the keys must split.
	off := &RequestOptions{StrashOff: true}
	o1, err := RequestKey(context.Background(), &MapRequest{BLIF: blifTidy, Options: off})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := RequestKey(context.Background(), &MapRequest{BLIF: blifScrambled, Options: off})
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 {
		t.Fatal("strash-off submissions unexpectedly share a key (dead logic should split the canon hash)")
	}
	if o1 == k1 {
		t.Fatal("strash_off did not change the routing key")
	}

	// End to end: the scrambled resubmission hits the tidy one's entry.
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	code1, v1 := postMap(t, ts, `{"blif": "`+jsonEscape(blifTidy)+`"}`)
	if code1 != http.StatusOK {
		t.Fatalf("tidy submission: code %d", code1)
	}
	if v1.Cached {
		t.Fatal("first submission cannot be a cache hit")
	}
	code2, v2 := postMap(t, ts, `{"blif": "`+jsonEscape(blifScrambled)+`"}`)
	if code2 != http.StatusOK {
		t.Fatalf("scrambled submission: code %d", code2)
	}
	if !v2.Cached {
		t.Error("structurally identical resubmission missed the cache; strash did not collapse the keys")
	}
	b1, err := EncodeJSON(v1.Result)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeJSON(v2.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cache-collapsed submissions returned different bytes")
	}
}

// jsonEscape renders a BLIF text as a JSON string body fragment.
func jsonEscape(s string) string {
	out := make([]byte, 0, len(s)+16)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\n':
			out = append(out, '\\', 'n')
		case '"':
			out = append(out, '\\', '"')
		case '\\':
			out = append(out, '\\', '\\')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// TestServerStrashOffConfig pins the server-wide opt-out: with
// Config.StrashOff the resolved options carry strash_off into both the
// pipeline and the cache key, so a strash-on router would route such a
// fleet's keys differently — the flag must be fleet-uniform (see the
// Config.StrashOff doc).
func TestServerStrashOffConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, StrashOff: true})
	code, v := postMap(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if !v.Result.Options.StrashOff {
		t.Error("Config.StrashOff did not reach the resolved options")
	}
	if v.Result.Strash != nil {
		t.Error("strash ran despite Config.StrashOff")
	}
}

// TestMapResultCarriesStrashCounters: a default (strash-on) run reports
// the front-end reduction in the encoded result.
func TestMapResultCarriesStrashCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	code, v := postMap(t, ts, `{"blif": "`+jsonEscape(blifTidy)+`"}`)
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	st := v.Result.Strash
	if st == nil {
		t.Fatal("strash-on result missing strash summary")
	}
	if st.Dead == 0 {
		t.Errorf("dead block not reported: %+v", st)
	}
	if st.NodesOut >= st.NodesIn {
		t.Errorf("no reduction reported: %+v", st)
	}
}
