package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
)

// postMapResp is postMap returning the raw response so tests can inspect
// headers (Retry-After).
func postMapResp(t *testing.T, ts *httptest.Server, body string) (*http.Response, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/map: %v", err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, v
}

// TestWorkerPanicIsolation is the acceptance check for panic isolation: a
// fault-injected panic deep inside a worker's mapping pipeline fails that
// one job — with a redacted stack — and the daemon keeps serving.
func TestWorkerPanicIsolation(t *testing.T) {
	reg := faultpoint.New(1)
	reg.Arm(mapper.PointCombine, faultpoint.Fault{Kind: faultpoint.Panic, Prob: 1, Times: 1})
	_, ts := newTestServer(t, Config{Workers: 1, Faults: reg})

	code, v := postMap(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusOK || v.State != JobFailed {
		t.Fatalf("panicked job: code %d, state %s (error %q)", code, v.State, v.Error)
	}
	if !strings.Contains(v.Error, "internal panic") || !strings.Contains(v.Error, mapper.PointCombine) {
		t.Errorf("error %q does not describe the injected panic", v.Error)
	}
	// Redaction: no addresses, no file:line — those stay in the server log.
	if strings.Contains(v.Error, "0x") || strings.Contains(v.Error, ".go:") {
		t.Errorf("client-visible error leaks stack internals: %q", v.Error)
	}

	// The daemon survived: the same request now succeeds on the same
	// (sole) worker, and /healthz answers.
	code, v = postMap(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("post-panic job: code %d, state %s (error %q)", code, v.State, v.Error)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v / %v", resp, err)
	}

	vars := getVars(t, ts)
	if n := varInt(t, vars, "jobs_panicked"); n != 1 {
		t.Errorf("jobs_panicked = %d, want 1", n)
	}
	if n := varInt(t, vars, "jobs_failed"); n != 1 {
		t.Errorf("jobs_failed = %d, want 1", n)
	}
}

// TestHTTPPanicRecovery: a panic inside the HTTP handler itself (here the
// decode fault point) is answered with a 500, counted, and does not kill
// the server.
func TestHTTPPanicRecovery(t *testing.T) {
	reg := faultpoint.New(1)
	reg.Arm(PointDecode, faultpoint.Fault{Kind: faultpoint.Panic, Prob: 1, Times: 1})
	_, ts := newTestServer(t, Config{Workers: 1, Faults: reg})

	resp, _ := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(`{"circuit":"mux"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: code %d, want 500", resp.StatusCode)
	}
	if code, v := postMap(t, ts, `{"circuit": "mux"}`); code != http.StatusOK || v.State != JobDone {
		t.Fatalf("post-panic request: code %d, state %s", code, v.State)
	}
	if n := varInt(t, getVars(t, ts), "http_panics"); n != 1 {
		t.Errorf("http_panics = %d, want 1", n)
	}
}

// TestLoadSheddingRejectsDoomedJobs: when the estimated queue wait
// already exceeds a submission's deadline, the server sheds it with 429 +
// Retry-After instead of letting it rot in the queue.
func TestLoadSheddingRejectsDoomedJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	inner := s.mapFn
	s.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return inner(ctx, circuit, src, algo, opt)
	}
	defer close(release)
	// Seed the service-time estimate as if jobs took 10s each.
	s.metrics.avgJobNanos.Store(int64(10 * time.Second))

	// Job 1 occupies the worker; job 2 waits in the queue. Both have the
	// default 30s deadline, which the estimated wait does not exceed.
	if code, _ := postMap(t, ts, `{"circuit": "mux", "async": true, "options": {"clock_weight": 1}}`); code != http.StatusAccepted {
		t.Fatalf("job 1 not accepted: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for varInt(t, getVars(t, ts), "jobs_running") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up job 1")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := postMap(t, ts, `{"circuit": "mux", "async": true, "options": {"clock_weight": 2}}`); code != http.StatusAccepted {
		t.Fatalf("job 2 not accepted: %d", code)
	}

	// Job 3 has a 50ms deadline against a ~10s estimated wait: doomed.
	resp, _ := postMapResp(t, ts, `{"circuit": "mux", "async": true, "timeout_ms": 50, "options": {"clock_weight": 3}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed job: code %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if n := varInt(t, getVars(t, ts), "jobs_shed"); n != 1 {
		t.Errorf("jobs_shed = %d, want 1", n)
	}
}

// TestQueueFullSetsRetryAfter: the 429 on queue overflow carries a
// Retry-After hint.
func TestQueueFullSetsRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	inner := s.mapFn
	s.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return inner(ctx, circuit, src, algo, opt)
	}
	defer close(release)

	submit := func(i int) *http.Response {
		resp, _ := postMapResp(t, ts,
			fmt.Sprintf(`{"circuit": "mux", "async": true, "options": {"clock_weight": %d}}`, i))
		return resp
	}
	submit(1)
	deadline := time.Now().Add(5 * time.Second)
	for varInt(t, getVars(t, ts), "jobs_running") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up job 1")
		}
		time.Sleep(time.Millisecond)
	}
	submit(2)
	resp := submit(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
}

// TestShutdownSetsRetryAfter: submissions during shutdown get 503 (not
// the overload 429) with a Retry-After.
func TestShutdownSetsRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := postMapResp(t, ts, `{"circuit": "mux"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shutdown submit: code %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 lacks Retry-After")
	}
}

// TestJobEviction: terminal jobs disappear from GET /v1/jobs/{id} after
// JobRetention and the eviction is counted.
func TestJobEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRetention: 20 * time.Millisecond})
	code, v := postMap(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("submit: code %d, state %s", code, v.State)
	}
	get := func() int {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("fresh job: GET = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for get() != http.StatusNotFound {
		if time.Now().After(deadline) {
			t.Fatal("job was never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := varInt(t, getVars(t, ts), "jobs_evicted"); n < 1 {
		t.Errorf("jobs_evicted = %d, want >= 1", n)
	}
}

// TestCacheKeyOptionsEncoding guards the canonical Options encoding:
// equal Options collide, every result-shaping field differentiates, and
// any future field of an unhandled kind fails the test until both the
// encoder and this mutator learn about it. Fields in cacheKeyExempt are
// required NOT to change the key — they tune execution, never the
// result, so requests differing only there must share a cache entry.
func TestCacheKeyOptionsEncoding(t *testing.T) {
	// Workers: the parallel DP engine is byte-identical to the
	// sequential one (TestParallelMatchesSequential and the root
	// par-determinism gate enforce it), so the worker count must not
	// fragment the cache.
	cacheKeyExempt := map[string]bool{"Workers": true}
	base := mapper.DefaultOptions()
	if encodeOptions(base) != encodeOptions(base) {
		t.Fatal("equal Options encode differently")
	}
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		mut := base
		f := reflect.ValueOf(&mut).Elem().Field(i)
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(f.Int() + 1)
		case reflect.Uint8: // Objective, StackOrder
			f.SetUint(f.Uint() + 1)
		case reflect.Bool:
			f.SetBool(!f.Bool())
		default:
			t.Fatalf("mapper.Options.%s has unhandled kind %s: teach encodeOptions and this test about it",
				rt.Field(i).Name, f.Kind())
		}
		changed := encodeOptions(mut) != encodeOptions(base)
		if cacheKeyExempt[rt.Field(i).Name] {
			if changed {
				t.Errorf("mutating execution-only Options.%s changes the cache key", rt.Field(i).Name)
			}
			continue
		}
		if !changed {
			t.Errorf("mutating Options.%s does not change the cache key", rt.Field(i).Name)
		}
	}
}

// TestWorkersShareCacheEntry: two submissions differing only in
// options.workers resolve to the same cache key — the second is a cache
// hit — and return byte-identical results, the end-to-end face of the
// parallel engine's determinism contract.
func TestWorkersShareCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	code1, v1 := postMap(t, ts, `{"circuit": "mux", "options": {"workers": 1}}`)
	if code1 != http.StatusOK {
		t.Fatalf("workers=1: code %d", code1)
	}
	code2, v2 := postMap(t, ts, `{"circuit": "mux", "options": {"workers": 4}}`)
	if code2 != http.StatusOK {
		t.Fatalf("workers=4: code %d", code2)
	}
	if !v2.Cached {
		t.Error("workers=4 resubmission missed the cache; Workers leaked into the cache key")
	}
	b1, err := EncodeJSON(v1.Result)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeJSON(v2.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("results differ across worker counts")
	}
}

// TestShutdownDrainsAndStopsGoroutines: shutdown leaves every accepted
// job in a terminal state and stops all server goroutines (workers and
// janitor) — a plain-test goroutine-leak check over the final stacks.
func TestShutdownDrainsAndStopsGoroutines(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	release := make(chan struct{})
	inner := s.mapFn
	s.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return inner(ctx, circuit, src, algo, opt)
	}

	var ids []string
	for i := 1; i <= 6; i++ {
		code, v := postMap(t, ts,
			fmt.Sprintf(`{"circuit": "mux", "async": true, "options": {"clock_weight": %d}}`, i))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: code %d", i, code)
		}
		ids = append(ids, v.ID)
	}
	ts.Close()

	// Shut down while the workers are still blocked: the expiring context
	// cancels them, queued jobs drain as canceled.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	s.Shutdown(ctx)
	close(release)

	s.mu.Lock()
	for _, id := range ids {
		j := s.jobs[id]
		if j == nil {
			s.mu.Unlock()
			t.Fatalf("job %s vanished before retention", id)
		}
		v := j.view()
		if v.State != JobDone && v.State != JobCanceled && v.State != JobFailed {
			s.mu.Unlock()
			t.Fatalf("job %s left in non-terminal state %s", id, v.State)
		}
	}
	s.mu.Unlock()

	// No worker or janitor goroutine may survive Shutdown.
	deadline := time.Now().Add(2 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		leaked := strings.Contains(stacks, "(*Server).worker") ||
			strings.Contains(stacks, "(*Server).janitor")
		if !leaked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server goroutines survived Shutdown:\n%s", stacks)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDegradedResponse is the acceptance check for graceful degradation
// end to end: a Pareto job with a tiny tuple budget completes (the audit
// inside the pipeline passed) and the response carries degraded: true.
func TestDegradedResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := postMap(t, ts, `{"circuit": "cordic", "options": {"pareto": true, "tuple_budget": 4}}`)
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("degraded job: code %d, state %s (error %q)", code, v.State, v.Error)
	}
	if v.Result == nil || !v.Result.Degraded {
		t.Fatal("tuple_budget=4 Pareto run did not flag degraded")
	}
	if v.Result.Options.TupleBudget != 4 {
		t.Errorf("response echoes tuple_budget %d, want 4", v.Result.Options.TupleBudget)
	}
	// Same budget, ample headroom ⇒ not degraded, and the two budgets
	// must occupy distinct cache entries (the key encodes the budget).
	code, v = postMap(t, ts, `{"circuit": "cordic", "options": {"pareto": true, "tuple_budget": 1000000}}`)
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("roomy job: code %d, state %s", code, v.State)
	}
	if v.Cached {
		t.Fatal("different tuple_budget hit the same cache entry")
	}
	if v.Result.Degraded {
		t.Error("roomy budget flagged degraded")
	}
}
