package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"soidomino/internal/store"
)

// openState attaches the crash-safe persistence tier (internal/store)
// when Config.StateDir is set: the durable result store behind the LRU
// and the job journal. Persistence is strictly best-effort at this
// boundary — an unusable state dir logs an error and degrades the
// server to memory-only rather than failing New (cmd/soimapd
// pre-validates the directory so operators still get a hard error at
// boot). Bad records never prevent startup: the boot fsck quarantines
// them and the counters say so.
func (s *Server) openState() {
	if s.cfg.StateDir == "" {
		return
	}
	policy, err := store.ParseSyncPolicy(s.cfg.JournalFsync)
	if err != nil {
		s.logger.Error("persistence disabled", "error", err.Error())
		return
	}
	res, fsck, err := store.OpenResults(s.cfg.StateDir, policy != store.SyncOff)
	if err != nil {
		s.logger.Error("persistence disabled", "state_dir", s.cfg.StateDir, "error", err.Error())
		return
	}
	jnl, replay, err := store.OpenJournal(s.cfg.StateDir, policy)
	if err != nil {
		s.logger.Error("persistence disabled", "state_dir", s.cfg.StateDir, "error", err.Error())
		return
	}
	s.store, s.journal = res, jnl
	s.metrics.add("store_corrupt", int64(fsck.Quarantined+replay.TornRegions+replay.BadRecords))
	s.logger.Info("state dir opened",
		"state_dir", s.cfg.StateDir, "journal_fsync", policy.String(),
		"results", fsck.Entries, "quarantined", fsck.Quarantined,
		"journal_records", len(replay.Records), "journal_torn", replay.TornRegions)
	s.recoverJobs(replay.Records)
}

// closeState flushes and closes the journal on clean shutdown.
func (s *Server) closeState() {
	if s.journal != nil {
		s.journal.Close()
	}
}

// Abort is the crash-stop counterpart of Shutdown, for chaos harnesses
// that simulate a SIGKILL in-process: the journal stops cold (no final
// flush, no further appends — jobs in flight leave no terminal records,
// exactly as a killed process would), intake closes, running jobs are
// canceled, and Abort returns once the goroutines exit so the test can
// immediately reopen the state dir with a fresh Server.
func (s *Server) Abort() {
	s.draining.Store(true)
	if s.journal != nil {
		s.journal.Abort()
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		close(s.janitorStop)
	}
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
	<-s.janitorDone
}

// RecoveredJobs lists the jobs this server re-created from its journal
// at boot, keyed by their original job id, with the requests that
// produced them. Exported for chaos harnesses: mapping is
// deterministic, so each recovered job's eventual response must
// byte-compare to a fresh local re-derivation of its request.
func (s *Server) RecoveredJobs() map[string]*MapRequest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*MapRequest, len(s.recovered))
	for id, req := range s.recovered {
		out[id] = req
	}
	return out
}

// storeGet consults the disk tier for key, decoding the stored bytes
// back into a MapResult. Misses return nil; corrupt entries are
// quarantined by the store and counted, never served. A record whose
// checksum passes but whose JSON no longer decodes (format skew across
// an upgrade) is dropped the same way.
func (s *Server) storeGet(key string) *MapResult {
	if s.store == nil {
		return nil
	}
	b, err := s.store.Get(key)
	if err != nil {
		s.metrics.add("store_corrupt", 1)
		s.metrics.add("store_misses", 1)
		s.logger.Warn("corrupt store entry quarantined", "key", key, "error", err.Error())
		return nil
	}
	if b == nil {
		s.metrics.add("store_misses", 1)
		return nil
	}
	var res MapResult
	if err := json.Unmarshal(b, &res); err != nil {
		s.store.Drop(key)
		s.metrics.add("store_corrupt", 1)
		s.metrics.add("store_misses", 1)
		s.logger.Warn("undecodable store entry quarantined", "key", key, "error", err.Error())
		return nil
	}
	s.metrics.add("store_hits", 1)
	return &res
}

// storeGetRaw returns the exact bytes persisted under key, for the
// peer-cache endpoint: the store holds EncodeJSON output verbatim, so
// the bytes can be served without a decode/re-encode round trip.
func (s *Server) storeGetRaw(key string) []byte {
	if s.store == nil {
		return nil
	}
	b, err := s.store.Get(key)
	if err != nil {
		s.metrics.add("store_corrupt", 1)
		s.metrics.add("store_misses", 1)
		return nil
	}
	if b == nil {
		s.metrics.add("store_misses", 1)
		return nil
	}
	s.metrics.add("store_hits", 1)
	return b
}

// persistResult writes a finished result to the disk tier, write-behind:
// any failure (including injected fsync faults) is counted and logged
// but never fails the job — the client already has, or will get, the
// in-memory result.
func (s *Server) persistResult(ctx context.Context, key string, res *MapResult) {
	if s.store == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.metrics.add("store_write_errors", 1)
			s.logger.Error("result persist panicked", "key", key, "panic", fmt.Sprint(r))
		}
	}()
	b, err := EncodeJSON(res)
	if err == nil {
		err = s.store.Put(ctx, key, b)
	}
	if err != nil {
		s.metrics.add("store_write_errors", 1)
		s.logger.Warn("result persist failed", "key", key, "error", err.Error())
	}
}

// journalAppend records one job-lifecycle event, write-behind like
// persistResult: journal trouble degrades durability, never service.
func (s *Server) journalAppend(ctx context.Context, rec store.JobRecord) {
	if s.journal == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.metrics.add("store_write_errors", 1)
			s.logger.Error("journal append panicked", "job_id", rec.ID, "panic", fmt.Sprint(r))
		}
	}()
	rec.UnixMS = time.Now().UnixMilli()
	if err := s.journal.Append(ctx, rec); err != nil {
		s.metrics.add("store_write_errors", 1)
		s.logger.Warn("journal append failed", "job_id", rec.ID, "type", rec.Type, "error", err.Error())
	}
}

// journalAccepted journals a freshly-enqueued leader job together with
// its originating request — the bytes a future recovery replays.
// Cache hits and coalesced followers are not journaled: they own no
// work to lose.
func (s *Server) journalAccepted(ctx context.Context, j *job, req *MapRequest) {
	if s.journal == nil {
		return
	}
	raw, err := json.Marshal(req)
	if err != nil {
		s.metrics.add("store_write_errors", 1)
		return
	}
	s.journalAppend(ctx, store.JobRecord{Type: store.RecAccepted, ID: j.id, Key: j.cacheKey, Request: raw})
}

// journalTerminal journals a job's terminal state.
func (s *Server) journalTerminal(ctx context.Context, j *job, state JobState, errMsg string) {
	typ := store.RecDone
	switch state {
	case JobFailed:
		typ = store.RecFailed
	case JobCanceled:
		typ = store.RecCanceled
	}
	s.journalAppend(ctx, store.JobRecord{Type: typ, ID: j.id, Key: j.cacheKey, Error: errMsg})
}

// recoveredJob summarizes one journaled job after folding its records.
type recoveredJob struct {
	id     string
	key    string
	req    *MapRequest
	last   string // last record type seen
	errMsg string
}

// recoverJobs rebuilds the job table from a journal replay. Terminal
// jobs are re-created so pollers find them instead of a 404 — done jobs
// re-serve their result from the disk store; failed and canceled ones
// re-serve their error. Jobs that were accepted or running when the
// process died are re-admitted: mapping is deterministic, so re-running
// them yields byte-identical responses. Each re-admitted job keeps its
// original id and gets a fresh DefaultTimeout deadline (its original
// deadline budgeted for the old process's queue, not the crash).
func (s *Server) recoverJobs(records []store.JobRecord) {
	if len(records) == 0 {
		return
	}
	byID := make(map[string]*recoveredJob)
	var order []string
	maxID := 0
	for _, rec := range records {
		rj, ok := byID[rec.ID]
		if !ok {
			rj = &recoveredJob{id: rec.ID}
			byID[rec.ID] = rj
			order = append(order, rec.ID)
		}
		if rec.Key != "" {
			rj.key = rec.Key
		}
		if len(rec.Request) > 0 {
			var req MapRequest
			if json.Unmarshal(rec.Request, &req) == nil {
				rj.req = &req
			}
		}
		rj.last = rec.Type
		rj.errMsg = rec.Error
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "j")); err == nil && n > maxID {
			maxID = n
		}
	}
	s.mu.Lock()
	if maxID > s.nextID {
		// Recovered ids stay unique against new submissions.
		s.nextID = maxID
	}
	s.mu.Unlock()

	for _, id := range order {
		rj := byID[id]
		switch rj.last {
		case store.RecDone:
			if res := s.storeGet(rj.key); res != nil {
				s.installRecovered(rj, JobDone, res, "")
				continue
			}
			// The journal says done but the result is gone (torn write,
			// eviction race, fsync loss). Deterministic mapping makes
			// re-admission a full substitute: same bytes, just recomputed.
			s.readmit(rj)
		case store.RecFailed:
			s.installRecovered(rj, JobFailed, nil, rj.errMsg)
		case store.RecCanceled:
			s.installRecovered(rj, JobCanceled, nil, rj.errMsg)
		default: // accepted or running: in flight at the crash
			s.readmit(rj)
		}
	}
}

// recoveredLabels extracts the display circuit/algorithm of a recovered
// job from its request (best-effort: a terminal job's result carries
// the authoritative copy).
func recoveredLabels(req *MapRequest) (circuit, algo string) {
	circuit, algo = "recovered", "soi"
	if req == nil {
		return
	}
	if req.Circuit != "" {
		circuit = req.Circuit
	} else if req.BLIF != "" || req.Bench != "" {
		circuit = "inline"
	}
	if req.Algorithm != "" {
		algo = req.Algorithm
	}
	return
}

// installRecovered registers a terminal job rebuilt from the journal
// under its original id.
func (s *Server) installRecovered(rj *recoveredJob, state JobState, res *MapResult, errMsg string) {
	circuit, algo := recoveredLabels(rj.req)
	if res != nil {
		circuit, algo = res.Circuit, res.Algorithm
	}
	j := &job{
		id:        rj.id,
		circuit:   circuit,
		algo:      algo,
		cacheKey:  rj.key,
		recovered: true,
		state:     JobQueued,
		done:      make(chan struct{}),
	}
	j.submitted = time.Now()
	if res != nil {
		j.cached = true
		s.cache.Add(rj.key, res) // warm the LRU alongside the job table
	}
	j.setAttribution(s.attribute(j, TierStore, 0, 0, nil))
	j.finish(state, res, errMsg)

	s.mu.Lock()
	s.jobs[j.id] = j
	if rj.req != nil {
		s.recovered[j.id] = rj.req
	}
	s.mu.Unlock()
	s.metrics.add("jobs_recovered", 1)
	s.logger.Info("job recovered from journal", "job_id", j.id, "state", string(state))
}

// readmit re-enqueues a journaled job that never reached a terminal
// record. The disk store is consulted first — the result may have been
// persisted even though the terminal journal record was lost in the
// crash — and the queue is never blocked on: recovery runs inside New,
// and a queue full of re-admitted work fails the remainder rather than
// deadlocking startup.
func (s *Server) readmit(rj *recoveredJob) {
	if rj.req == nil {
		// No request bytes survived (torn accepted record): nothing to
		// replay. The id stays unknown; pollers get 404 as they would had
		// the accepted record never been written.
		s.logger.Warn("journaled job lost its request, not re-admitted", "job_id", rj.id)
		return
	}
	if res := s.storeGet(rj.key); res != nil {
		s.installRecovered(rj, JobDone, res, "")
		return
	}

	ctx := s.faultCtx(s.baseCtx)
	src, label, err := parseSource(ctx, rj.req)
	if err != nil {
		s.installRecovered(rj, JobFailed, nil, "not re-admitted after restart: "+err.Error())
		return
	}
	algo := rj.req.Algorithm
	if algo == "" {
		algo = "soi"
	}
	opt, err := OptionsFromRequest(rj.req.Options)
	if err != nil {
		s.installRecovered(rj, JobFailed, nil, "not re-admitted after restart: "+err.Error())
		return
	}
	if opt.Workers == 0 {
		opt.Workers = s.cfg.MapWorkers
	}
	if s.cfg.StrashOff {
		opt.StrashOff = true
	}

	j := &job{
		id:        rj.id,
		circuit:   label,
		algo:      algo,
		src:       src,
		opt:       opt,
		deadline:  time.Now().Add(s.cfg.DefaultTimeout),
		cacheKey:  CacheKey(src, algo, opt),
		recovered: true,
		state:     JobQueued,
		done:      make(chan struct{}),
	}
	j.submitted = time.Now()

	s.mu.Lock()
	if leader, ok := s.inflight[j.cacheKey]; ok {
		// Two journaled jobs shared a key: the first re-admission leads,
		// the rest follow, exactly like live singleflight.
		j.coalesced = true
		s.jobs[j.id] = j
		s.recovered[j.id] = rj.req
		s.mu.Unlock()
		s.metrics.add("jobs_readmitted", 1)
		go s.followLeader(j, leader)
		return
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.inflight[j.cacheKey] = j
		s.recovered[j.id] = rj.req
		s.mu.Unlock()
		s.metrics.jobsQueued.Add(1)
		s.metrics.add("jobs_readmitted", 1)
		s.logger.Info("job re-admitted from journal", "job_id", j.id, "circuit", label, "algorithm", algo)
	default:
		s.mu.Unlock()
		j.setAttribution(s.attribute(j, TierStore, 0, 0, nil))
		j.finish(JobFailed, nil, "not re-admitted after restart: queue full")
		s.mu.Lock()
		s.jobs[j.id] = j
		s.recovered[j.id] = rj.req
		s.mu.Unlock()
		s.metrics.add("jobs_recovered", 1)
	}
}

// compactState is the janitor's half of the durability contract: when
// terminal jobs leave the job table, their journal records and — once
// the disk tier outgrows StoreEntries — their oldest stored results go
// with them, so a long-lived state dir tracks the working set instead
// of growing without bound.
func (s *Server) compactState(evicted int) {
	if s.store == nil {
		return
	}
	if evicted > 0 && s.journal != nil {
		s.mu.Lock()
		live := make(map[string]bool, len(s.jobs))
		for id := range s.jobs {
			live[id] = true
		}
		s.mu.Unlock()
		dropped, err := s.journal.Compact(func(id string) bool { return live[id] })
		if err != nil {
			s.logger.Warn("journal compaction failed", "error", err.Error())
		} else if dropped > 0 {
			s.metrics.add("jobs_journal_compacted", int64(dropped))
			s.logger.Info("journal compacted", "records_dropped", dropped)
		}
	}
	if n, err := s.store.EvictOver(s.cfg.StoreEntries); err != nil {
		s.logger.Warn("store eviction failed", "error", err.Error())
	} else if n > 0 {
		s.metrics.add("store_evicted", int64(n))
	}
}
