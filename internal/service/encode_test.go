package service

import (
	"bytes"
	"context"
	"testing"

	builtin "soidomino/internal/bench"
	"soidomino/internal/mapper"
	"soidomino/internal/report"
)

// TestCLIAndServiceEncodingsMatch pins the contract behind `soimap -json`:
// the CLI path (PrepareNetwork + SOIDominoMap + NewMapResult) and the
// daemon path (mapNetwork) must produce byte-identical JSON for the same
// submission.
func TestCLIAndServiceEncodingsMatch(t *testing.T) {
	const circuit = "mux"
	opt := mapper.DefaultOptions()

	// Daemon path.
	daemon, err := mapNetwork(context.Background(), circuit, builtin.MustBuild(circuit), "soi", opt)
	if err != nil {
		t.Fatal(err)
	}
	daemonBytes, err := EncodeJSON(daemon)
	if err != nil {
		t.Fatal(err)
	}

	// CLI path, as cmd/soimap -json composes it.
	p, err := report.PrepareNetwork(builtin.MustBuild(circuit))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapper.SOIDominoMap(p.Unate, opt)
	if err != nil {
		t.Fatal(err)
	}
	cliBytes, err := EncodeJSON(NewMapResult(circuit, p, res))
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(daemonBytes, cliBytes) {
		t.Errorf("CLI and daemon encodings differ:\nCLI:\n%s\ndaemon:\n%s", cliBytes, daemonBytes)
	}
}

func TestEncodeJSONDeterministic(t *testing.T) {
	r, err := mapNetwork(context.Background(), "z4ml", builtin.MustBuild("z4ml"), "soi", mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := EncodeJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("EncodeJSON is not deterministic")
	}
	if b1[len(b1)-1] != '\n' {
		t.Error("encoding lacks trailing newline")
	}
}

func TestMapResultContents(t *testing.T) {
	r, err := mapNetwork(context.Background(), "mux", builtin.MustBuild("mux"), "soi", mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Circuit != "mux" || r.Algorithm != "SOI_Domino_Map" {
		t.Errorf("circuit/algorithm = %q/%q", r.Circuit, r.Algorithm)
	}
	if r.Stats.Gates != len(r.Gates) {
		t.Errorf("stats report %d gates but %d encoded", r.Stats.Gates, len(r.Gates))
	}
	if r.Stats.TTotal != r.Stats.TLogic+r.Stats.TDisch {
		t.Errorf("t_total %d != t_logic %d + t_disch %d", r.Stats.TTotal, r.Stats.TLogic, r.Stats.TDisch)
	}
	levels := 0
	disch := 0
	for _, g := range r.Gates {
		if g.Level > levels {
			levels = g.Level
		}
		disch += g.Discharges
	}
	if levels != r.Stats.Levels {
		t.Errorf("max gate level %d != stats levels %d", levels, r.Stats.Levels)
	}
	if disch != r.Stats.TDisch {
		t.Errorf("summed discharges %d != stats t_disch %d", disch, r.Stats.TDisch)
	}
}
