package service

import (
	"sync"
	"time"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/obs"
)

// JobState is the lifecycle of a mapping job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled" // deadline expired or server shut down
)

// job is one submitted mapping request. The immutable submission fields
// are written once by the handler; the mutable lifecycle fields are
// guarded by mu and published through view().
type job struct {
	// Submission (read-only after submit).
	id       string
	circuit  string // benchmark name or "inline"
	algo     string // request key: domino|rs|rsdeep|soi
	src      *logic.Network
	opt      mapper.Options
	reqID    string // request id of the submitting HTTP request
	tc       obs.TraceContext
	deadline time.Time
	cacheKey string

	// coalesced marks a follower job that attached to an identical
	// in-flight leader instead of queueing its own DP run. Written before
	// the job is registered (published under the server mutex).
	coalesced bool

	// recovered marks a job re-created from the journal after a restart:
	// either re-served terminal from the durable store or re-admitted to
	// the queue. Written before the job is registered.
	recovered bool

	mu          sync.Mutex
	state       JobState
	cached      bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
	errMsg      string
	result      *MapResult
	attribution *Attribution // set (complete) before finish publishes it

	done chan struct{} // closed when the job reaches a terminal state
}

// JobView is the JSON envelope of a job returned by POST /v1/map and
// GET /v1/jobs/{id}. Result carries the shared MapResult encoding once
// the job is done.
type JobView struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Circuit   string   `json:"circuit"`
	Algorithm string   `json:"algorithm"`
	Cached    bool     `json:"cached"`
	// Coalesced marks a submission that rode an identical in-flight job
	// (the replica's singleflight layer) instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Recovered marks a job this replica re-created from its journal
	// after a restart rather than receiving over HTTP.
	Recovered bool       `json:"recovered,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms"`
	Error     string     `json:"error,omitempty"`
	Result    *MapResult `json:"result,omitempty"`
	// TraceID is set when the request was trace-sampled: the stitched
	// trace is at GET /v1/traces/{trace_id}.
	TraceID string `json:"trace_id,omitempty"`
	// Attribution is the per-request cost breakdown, set once the job is
	// terminal (also served standalone at GET /v1/jobs/{id}/explain).
	Attribution *Attribution `json:"attribution,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Circuit:     j.circuit,
		Algorithm:   j.algo,
		Cached:      j.cached,
		Coalesced:   j.coalesced,
		Recovered:   j.recovered,
		Error:       j.errMsg,
		Result:      j.result,
		Attribution: j.attribution,
	}
	if j.tc.Sampled {
		v.TraceID = j.tc.TraceID
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		v.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
	case !j.started.IsZero():
		v.ElapsedMS = time.Since(j.started).Milliseconds()
	}
	return v
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish moves the job to a terminal state and wakes synchronous waiters.
// It is idempotent — the panic-recovery path can race the normal one, and
// only the first caller may close done — and reports whether it won.
func (j *job) finish(state JobState, res *MapResult, errMsg string) bool {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished // cache hits never run
	}
	j.mu.Unlock()
	close(j.done)
	return true
}

// outcome snapshots the job's terminal state for propagation to a
// coalesced follower. Call only after done is closed.
func (j *job) outcome() (JobState, *MapResult, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.errMsg
}

// setCached marks the job as answered without a mapping run (result
// cache or a peer replica's cache).
func (j *job) setCached() {
	j.mu.Lock()
	j.cached = true
	j.mu.Unlock()
}

// setAttribution records the job's cost breakdown. Call before finish:
// finish publishes the terminal state, and every reader that can see a
// terminal view must also see the attribution.
func (j *job) setAttribution(a *Attribution) {
	j.mu.Lock()
	j.attribution = a
	j.mu.Unlock()
}

// explain snapshots the job for GET /v1/jobs/{id}/explain.
func (j *job) explain() ExplainView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return ExplainView{
		ID:          j.id,
		State:       j.state,
		Circuit:     j.circuit,
		Algorithm:   j.algo,
		Attribution: j.attribution,
	}
}

// terminalBefore reports whether the job reached a terminal state before
// cutoff — the janitor's eviction predicate.
func (j *job) terminalBefore(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobDone, JobFailed, JobCanceled:
		return j.finished.Before(cutoff)
	}
	return false
}
