package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	builtin "soidomino/internal/bench"
	"soidomino/internal/benchfmt"
	"soidomino/internal/blif"
	"soidomino/internal/canon"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/obs"
	"soidomino/internal/report"
	"soidomino/internal/service/cache"
)

// Config sizes a Server. The zero value of any field selects the
// DefaultConfig value for that field.
type Config struct {
	// Workers is the number of concurrent mapping goroutines.
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs; a full
	// queue rejects submissions with 503 rather than buffering unboundedly.
	QueueDepth int
	// CacheEntries sizes the canonical-network result cache.
	CacheEntries int
	// DefaultTimeout applies to jobs that do not set timeout_ms.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds a request body (inline BLIF text can be large);
	// larger bodies are rejected with 413.
	MaxBodyBytes int64
	// MaxNetworkNodes bounds the parsed source network's node count;
	// larger networks are rejected with 413 before they reach the queue.
	MaxNetworkNodes int
	// Logger receives structured request and job lifecycle logs. Nil
	// discards them (the default: logging is opt-in, see cmd/soimapd).
	Logger *slog.Logger
}

// DefaultConfig returns the daemon's stock configuration.
func DefaultConfig() Config {
	return Config{
		Workers:         runtime.GOMAXPROCS(0),
		QueueDepth:      64,
		CacheEntries:    256,
		DefaultTimeout:  30 * time.Second,
		MaxTimeout:      5 * time.Minute,
		MaxBodyBytes:    16 << 20,
		MaxNetworkNodes: 200_000,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = d.CacheEntries
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = d.DefaultTimeout
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = d.MaxTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.MaxNetworkNodes <= 0 {
		c.MaxNetworkNodes = d.MaxNetworkNodes
	}
	return c
}

// Server is the mapping service: an HTTP handler, a bounded worker pool
// and the canonical-network result cache. Create with New, serve
// Handler(), stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *metrics
	cache   *cache.LRU[string, *MapResult]
	queue   chan *job
	logger  *slog.Logger
	start   time.Time
	reqSeq  atomic.Int64

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	closed bool

	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc
	mux        *http.ServeMux

	// mapFn runs one job's pipeline; tests substitute it to control worker
	// timing. Overridden only before the first submission (the job-channel
	// send orders the write before any worker read).
	mapFn func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error)
}

// New starts a Server's worker pool and returns it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		cache:   cache.New[string, *MapResult](cfg.CacheEntries),
		queue:   make(chan *job, cfg.QueueDepth),
		logger:  cfg.Logger,
		start:   time.Now(),
		jobs:    make(map[string]*job),
		mapFn:   mapNetwork,
	}
	if s.logger == nil {
		s.logger = discardLogger()
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/map", s.handleMap)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP API, wrapped in the request-id and
// access-logging middleware.
func (s *Server) Handler() http.Handler { return s.withLogging(s.mux) }

// nextRequestID produces a server-unique request identifier.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("r%06d", s.reqSeq.Add(1))
}

// Shutdown stops intake, drains the queue and waits for in-flight jobs.
// If ctx expires first, running jobs are canceled through their mapping
// contexts and Shutdown returns ctx.Err() once the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// mapRequest is the body of POST /v1/map. Exactly one of Circuit, BLIF
// and Bench selects the input network.
type mapRequest struct {
	Circuit   string          `json:"circuit,omitempty"` // built-in benchmark name
	BLIF      string          `json:"blif,omitempty"`    // inline BLIF text
	Bench     string          `json:"bench,omitempty"`   // inline ISCAS-89 .bench text
	Algorithm string          `json:"algorithm,omitempty"`
	Options   *requestOptions `json:"options,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"` // <0 submits already expired
	Async     bool            `json:"async,omitempty"`
}

// requestOptions overrides mapper.DefaultOptions field by field; zero
// numeric fields keep the default.
type requestOptions struct {
	MaxWidth      int    `json:"max_width,omitempty"`
	MaxHeight     int    `json:"max_height,omitempty"`
	Objective     string `json:"objective,omitempty"`
	ClockWeight   int    `json:"clock_weight,omitempty"`
	DepthWeight   int    `json:"depth_weight,omitempty"`
	AlwaysFooted  bool   `json:"always_footed,omitempty"`
	Pareto        bool   `json:"pareto,omitempty"`
	SequenceAware bool   `json:"sequence_aware,omitempty"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// parseSource builds the submitted network and a short label for it.
func parseSource(req *mapRequest) (*logic.Network, string, error) {
	set := 0
	for _, s := range []string{req.Circuit, req.BLIF, req.Bench} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, "", errors.New("exactly one of circuit, blif or bench is required")
	}
	switch {
	case req.Circuit != "":
		b, ok := builtin.Get(req.Circuit)
		if !ok {
			return nil, "", fmt.Errorf("unknown benchmark %q", req.Circuit)
		}
		return b.Build(), req.Circuit, nil
	case req.BLIF != "":
		n, err := blif.Parse(strings.NewReader(req.BLIF))
		if err != nil {
			return nil, "", fmt.Errorf("blif: %w", err)
		}
		return n, n.Name, nil
	default:
		n, err := benchfmt.Parse("inline.bench", strings.NewReader(req.Bench))
		if err != nil {
			return nil, "", fmt.Errorf("bench: %w", err)
		}
		return n, n.Name, nil
	}
}

func parseOptions(ro *requestOptions) (mapper.Options, error) {
	opt := mapper.DefaultOptions()
	if ro == nil {
		return opt, nil
	}
	if ro.MaxWidth > 0 {
		opt.MaxWidth = ro.MaxWidth
	}
	if ro.MaxHeight > 0 {
		opt.MaxHeight = ro.MaxHeight
	}
	if ro.ClockWeight > 0 {
		opt.ClockWeight = ro.ClockWeight
	}
	if ro.DepthWeight > 0 {
		opt.DepthWeight = ro.DepthWeight
	}
	switch ro.Objective {
	case "", "area":
	case "depth":
		opt.Objective = mapper.Depth
	default:
		return opt, fmt.Errorf("unknown objective %q", ro.Objective)
	}
	opt.AlwaysFooted = ro.AlwaysFooted
	opt.Pareto = ro.Pareto
	opt.SequenceAware = ro.SequenceAware
	return opt, nil
}

// algoKeys are the request names of the four mappers.
var algoKeys = map[string]bool{"domino": true, "rs": true, "rsdeep": true, "soi": true}

// cacheKey builds the result-cache key: canonical structure hash plus
// everything else that shapes the result.
func cacheKey(n *logic.Network, algo string, opt mapper.Options) string {
	return fmt.Sprintf("%s|%s|%s|%+v", canon.Hash(n), n.Name, algo, opt)
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req mapRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{"bad request: " + err.Error()})
		return
	}
	src, label, err := parseSource(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if src.Len() > s.cfg.MaxNetworkNodes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			apiError{fmt.Sprintf("network has %d nodes, limit is %d", src.Len(), s.cfg.MaxNetworkNodes)})
		return
	}
	if req.Algorithm == "" {
		req.Algorithm = "soi"
	}
	if !algoKeys[req.Algorithm] {
		writeJSON(w, http.StatusBadRequest,
			apiError{fmt.Sprintf("unknown algorithm %q (want domino, rs, rsdeep or soi)", req.Algorithm)})
		return
	}
	opt, err := parseOptions(req.Options)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS != 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	j := &job{
		circuit:  label,
		algo:     req.Algorithm,
		src:      src,
		opt:      opt,
		reqID:    obs.RequestID(r.Context()),
		deadline: time.Now().Add(timeout),
		cacheKey: cacheKey(src, req.Algorithm, opt),
		state:    JobQueued,
		done:     make(chan struct{}),
	}
	j.submitted = time.Now()
	s.metrics.add("jobs_submitted", 1)

	// Answer identical resubmissions from the cache without queueing.
	if res, ok := s.cache.Get(j.cacheKey); ok {
		s.registerJob(j)
		j.cached = true
		j.finish(JobDone, res, "")
		s.metrics.add("cache_hits", 1)
		s.metrics.add("jobs_done", 1)
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	s.metrics.add("cache_misses", 1)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{"server is shutting down"})
		return
	}
	select {
	case s.queue <- j:
		s.registerJobLocked(j)
		s.mu.Unlock()
		s.metrics.jobsQueued.Add(1)
	default:
		s.mu.Unlock()
		s.metrics.add("jobs_rejected", 1)
		writeJSON(w, http.StatusServiceUnavailable,
			apiError{fmt.Sprintf("queue full (%d jobs waiting)", s.cfg.QueueDepth)})
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.view())
	case <-r.Context().Done():
		// Client gave up; the job keeps running and stays pollable.
		writeJSON(w, http.StatusAccepted, j.view())
	}
}

func (s *Server) registerJob(j *job) {
	s.mu.Lock()
	s.registerJobLocked(j)
	s.mu.Unlock()
}

func (s *Server) registerJobLocked(j *job) {
	s.nextID++
	j.id = fmt.Sprintf("j%d", s.nextID)
	s.jobs[j.id] = j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string        `json:"status"`
		Workers int           `json:"workers"`
		UptimeS int64         `json:"uptime_s"`
		Build   obs.BuildInfo `json:"build"`
	}{"ok", s.cfg.Workers, int64(time.Since(s.start).Seconds()), obs.Build()})
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, s.metrics.vars.String())
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	s.metrics.jobsQueued.Add(-1)
	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)

	j.setRunning()
	ctx, cancel := context.WithDeadline(s.baseCtx, j.deadline)
	defer cancel()

	// The job context carries the originating request id and a fresh
	// per-run stats collector: the mapper engine records into it and the
	// run's counters are merged into the per-algorithm aggregates served
	// at /metrics. Per-run, so parallel workers never share a collector.
	if j.reqID != "" {
		ctx = obs.WithRequestID(ctx, j.reqID)
	}
	st := &obs.Stats{}
	ctx = obs.WithStats(ctx, st)

	start := time.Now()
	res, err := s.mapFn(ctx, j.circuit, j.src, j.algo, j.opt)
	s.metrics.recordEngine(j.algo, st)
	if err != nil {
		state := JobFailed
		counter := "jobs_failed"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			state, counter = JobCanceled, "jobs_canceled"
		}
		s.metrics.add(counter, 1)
		j.finish(state, nil, err.Error())
		s.logger.Warn("job finished",
			"request_id", j.reqID, "job_id", j.id, "circuit", j.circuit,
			"algorithm", j.algo, "state", string(state), "error", err.Error(),
			"duration", time.Since(start))
		return
	}
	s.cache.Add(j.cacheKey, res)
	s.metrics.observe(j.algo, time.Since(start))
	s.metrics.add("jobs_done", 1)
	j.finish(JobDone, res, "")
	s.logger.Info("job finished",
		"request_id", j.reqID, "job_id", j.id, "circuit", j.circuit,
		"algorithm", j.algo, "state", string(JobDone),
		"dp_tuples", st.TuplesGenerated, "duration", time.Since(start))
}

// mapNetwork runs the full pipeline — decompose, unate-convert, map,
// audit, encode — under ctx. It is the one code path both the daemon and
// (modulo context) the CLI's -json mode represent.
func mapNetwork(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
	p, err := report.PrepareNetworkContext(ctx, src)
	if err != nil {
		return nil, err
	}
	var res *mapper.Result
	switch algo {
	case "domino":
		res, err = mapper.DominoMapContext(ctx, p.Unate, opt)
	case "rs":
		res, err = mapper.RSMapContext(ctx, p.Unate, opt)
	case "rsdeep":
		res, err = mapper.RSMapDeepContext(ctx, p.Unate, opt)
	case "soi":
		res, err = mapper.SOIDominoMapContext(ctx, p.Unate, opt)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, err
	}
	if err := res.Audit(); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	return NewMapResult(circuit, p, res), nil
}
