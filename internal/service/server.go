package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	builtin "soidomino/internal/bench"
	"soidomino/internal/benchfmt"
	"soidomino/internal/blif"
	"soidomino/internal/canon"
	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/obs"
	"soidomino/internal/report"
	"soidomino/internal/service/cache"
	"soidomino/internal/store"
	"soidomino/internal/strash"
)

// The service's fault-injection points (see internal/faultpoint). Each
// names a boundary where a real failure mode lives: request decoding,
// the worker's queue pop, and both sides of the result cache.
var (
	PointDecode   = faultpoint.Define("service.decode", "before decoding a POST /v1/map body")
	PointQueuePop = faultpoint.Define("service.queue-pop", "in a worker, after popping a job and before running it")
	PointCacheGet = faultpoint.Define("service.cache-get", "before the result-cache lookup of a submission")
	PointCachePut = faultpoint.Define("service.cache-put", "before storing a finished result in the cache")
)

// Config sizes a Server. The zero value of any field selects the
// DefaultConfig value for that field.
type Config struct {
	// Workers is the number of concurrent mapping goroutines.
	Workers int
	// MapWorkers is the default per-job DP worker count (mapper
	// Options.Workers) for requests that do not set options.workers.
	// The default is 1: the daemon's unit of parallelism is the job —
	// Workers concurrent jobs each mapping sequentially — so per-job
	// parallelism is opt-in, sized against Workers to avoid
	// oversubscription. Either way the results are byte-identical, which
	// is why the worker count stays out of the cache key (encodeOptions).
	MapWorkers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs; a full
	// queue rejects submissions with 503 rather than buffering unboundedly.
	QueueDepth int
	// CacheEntries sizes the canonical-network result cache.
	CacheEntries int
	// DefaultTimeout applies to jobs that do not set timeout_ms.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds a request body (inline BLIF text can be large);
	// larger bodies are rejected with 413.
	MaxBodyBytes int64
	// MaxNetworkNodes bounds the parsed source network's node count;
	// larger networks are rejected with 413 before they reach the queue.
	MaxNetworkNodes int
	// JobRetention is how long a terminal (done, failed or canceled) job
	// stays pollable at GET /v1/jobs/{id} before the janitor evicts it.
	// Without eviction the job table grows without bound.
	JobRetention time.Duration
	// Peers lists the base URLs of sibling replicas whose result caches
	// this server consults (GET /v1/cache) before mapping a cache-missed
	// job. Empty (the default) disables the shared cache tier. Mapping is
	// deterministic, so a peer's bytes are this replica's bytes.
	Peers []string
	// PeerTimeout bounds one peer cache lookup; a slow or dead peer must
	// cost less than the mapping it might save (default 200ms).
	PeerTimeout time.Duration
	// PeerHTTPClient overrides http.DefaultClient for peer cache lookups.
	PeerHTTPClient *http.Client
	// Logger receives structured request and job lifecycle logs. Nil
	// discards them (the default: logging is opt-in, see cmd/soimapd).
	Logger *slog.Logger
	// Faults optionally arms the server's fault-injection points: the
	// registry is threaded through every request and job context. Nil (the
	// default) leaves every point inert. It lives in Config, NOT in the
	// mapping Options, so faults can never leak into cache keys.
	Faults *faultpoint.Registry
	// ReplicaName identifies this replica in distributed-trace spans and
	// per-request attribution records (default "soimapd"). In a cluster
	// each replica gets a distinct name (soimapd -name) so `soimap
	// -explain` and the stitched trace say which process answered.
	ReplicaName string
	// TraceSample enables local trace sampling: every TraceSample-th
	// POST /v1/map submission that does NOT carry a traceparent header
	// starts a fresh sampled trace. 0 (the default) disables local
	// sampling — incoming sampled traceparent headers are always honored
	// regardless. Tracing never affects cache keys or routing
	// (DESIGN.md §14).
	TraceSample int
	// TraceMax bounds the number of distinct traces the in-memory trace
	// hub retains (FIFO eviction; default 64).
	TraceMax int
	// StateDir enables the crash-safe persistence tier (internal/store):
	// a durable result store behind the LRU and a job journal that lets a
	// restart re-admit unfinished jobs and re-serve terminal ones. Empty
	// (the default) keeps the server memory-only.
	StateDir string
	// JournalFsync selects the journal's durability barrier: "always"
	// (fsync every append), "interval" (background flush ~100ms, the
	// default) or "off". The result store fsyncs unless "off".
	JournalFsync string
	// StoreEntries bounds the on-disk result store (janitor-enforced,
	// oldest first). Default 4× CacheEntries: disk is cheaper than
	// memory, so the durable tier outlives the LRU.
	StoreEntries int
	// PeerMaxBodyBytes caps a peer cache-fetch response; larger replies
	// are counted as peer errors and dropped, so one sick peer cannot
	// balloon this replica's memory. Default MaxBodyBytes.
	PeerMaxBodyBytes int64
	// StrashOff disables the strash canonicalization front-end for every
	// job this server runs, ORed into each request's resolved options
	// BEFORE the cache key is computed (strash is semantic, so the key
	// must reflect it). Because soirouter resolves routing keys from the
	// request alone, a fleet must set this flag uniformly on every
	// replica AND on the router (soirouter -strash-off normalizes the
	// request itself, so its view and the replicas' agree); skewed flags
	// split the shared cache tier. Default off: strash is on.
	StrashOff bool
}

// DefaultConfig returns the daemon's stock configuration.
func DefaultConfig() Config {
	return Config{
		Workers:         runtime.GOMAXPROCS(0),
		MapWorkers:      1,
		QueueDepth:      64,
		CacheEntries:    256,
		DefaultTimeout:  30 * time.Second,
		MaxTimeout:      5 * time.Minute,
		MaxBodyBytes:    16 << 20,
		MaxNetworkNodes: 200_000,
		JobRetention:    10 * time.Minute,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.MapWorkers <= 0 {
		c.MapWorkers = d.MapWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = d.CacheEntries
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = d.DefaultTimeout
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = d.MaxTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.MaxNetworkNodes <= 0 {
		c.MaxNetworkNodes = d.MaxNetworkNodes
	}
	if c.JobRetention <= 0 {
		c.JobRetention = d.JobRetention
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 200 * time.Millisecond
	}
	if c.StoreEntries <= 0 {
		c.StoreEntries = 4 * c.CacheEntries
	}
	if c.PeerMaxBodyBytes <= 0 {
		c.PeerMaxBodyBytes = c.MaxBodyBytes
	}
	if c.PeerHTTPClient == nil {
		c.PeerHTTPClient = http.DefaultClient
	}
	if c.ReplicaName == "" {
		c.ReplicaName = "soimapd"
	}
	return c
}

// Server is the mapping service: an HTTP handler, a bounded worker pool
// and the canonical-network result cache. Create with New, serve
// Handler(), stop with Shutdown.
type Server struct {
	cfg      Config
	metrics  *metrics
	cache    *cache.LRU[string, *MapResult]
	queue    chan *job
	logger   *slog.Logger
	start    time.Time
	reqSeq   atomic.Int64
	traceSeq atomic.Int64
	hub      *obs.TraceHub

	// draining flips /readyz to 503 ahead of Shutdown so routers can take
	// this replica out of rotation while it still accepts and finishes
	// jobs (liveness at /healthz is unaffected).
	draining atomic.Bool

	// Persistence tier (nil without Config.StateDir): the durable result
	// store behind the LRU and the job journal (see persist.go).
	store   *store.Results
	journal *store.Journal

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	closed bool
	// recovered maps job ids re-created from the journal at boot to their
	// originating requests (see RecoveredJobs).
	recovered map[string]*MapRequest
	// inflight indexes the queued/running leader job per cache key; an
	// identical submission attaches to the leader (singleflight) instead
	// of queueing a duplicate DP run.
	inflight map[string]*job

	wg          sync.WaitGroup
	baseCtx     context.Context
	baseCancel  context.CancelFunc
	mux         *http.ServeMux
	janitorStop chan struct{}
	janitorDone chan struct{}

	// mapFn runs one job's pipeline; tests substitute it to control worker
	// timing. Overridden only before the first submission (the job-channel
	// send orders the write before any worker read).
	mapFn func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error)
}

// New starts a Server's worker pool and returns it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		metrics:   newMetrics(),
		cache:     cache.New[string, *MapResult](cfg.CacheEntries),
		queue:     make(chan *job, cfg.QueueDepth),
		logger:    cfg.Logger,
		start:     time.Now(),
		jobs:      make(map[string]*job),
		inflight:  make(map[string]*job),
		recovered: make(map[string]*MapRequest),
		mapFn:     mapNetwork,
	}
	s.hub = obs.NewTraceHub(cfg.ReplicaName, cfg.TraceMax)
	if s.logger == nil {
		s.logger = discardLogger()
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.janitorStop = make(chan struct{})
	s.janitorDone = make(chan struct{})
	go s.janitor()
	// The workers are running, so journal recovery can re-enqueue jobs
	// and have them mapping before the HTTP listener even binds.
	s.openState()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/map", s.handleMap)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraces)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheLookup)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP API, wrapped in the panic-recovery,
// request-id and access-logging middleware (recovery outermost, so a
// panicking log line cannot escape either).
func (s *Server) Handler() http.Handler { return s.withRecovery(s.withLogging(s.mux)) }

// nextRequestID produces a server-unique request identifier.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("r%06d", s.reqSeq.Add(1))
}

// BeginDrain flips /readyz to 503 so load balancers and the cluster
// router stop sending this replica new work, while /healthz (liveness)
// and the whole job API keep answering: jobs submitted during the drain
// grace window still run. Shutdown calls it implicitly; calling it ahead
// of Shutdown opens the grace window. It reports whether this call was
// the one that flipped the state.
func (s *Server) BeginDrain() bool { return s.draining.CompareAndSwap(false, true) }

// Counter reads one of the server's monotonic counters by name (0 for
// unknown names). Exported for harnesses — the multi-node chaos campaign
// aggregates coalescing and peer-cache counters across in-process
// replicas.
func (s *Server) Counter(name string) int64 { return s.metrics.counter(name) }

// Shutdown stops intake, drains the queue and waits for in-flight jobs.
// If ctx expires first, running jobs are canceled through their mapping
// contexts and Shutdown returns ctx.Err() once the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		close(s.janitorStop)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		<-s.janitorDone
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		s.closeState()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		s.closeState()
		return ctx.Err()
	}
}

// MapRequest is the body of POST /v1/map. Exactly one of Circuit, BLIF
// and Bench selects the input network. Exported so internal/client and
// the chaos harness build requests against the same type the server
// decodes.
type MapRequest struct {
	Circuit   string          `json:"circuit,omitempty"` // built-in benchmark name
	BLIF      string          `json:"blif,omitempty"`    // inline BLIF text
	Bench     string          `json:"bench,omitempty"`   // inline ISCAS-89 .bench text
	Algorithm string          `json:"algorithm,omitempty"`
	Options   *RequestOptions `json:"options,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"` // <0 submits already expired
	Async     bool            `json:"async,omitempty"`
}

// RequestOptions overrides mapper.DefaultOptions field by field; zero
// numeric fields keep the default.
type RequestOptions struct {
	MaxWidth      int    `json:"max_width,omitempty"`
	MaxHeight     int    `json:"max_height,omitempty"`
	Objective     string `json:"objective,omitempty"`
	ClockWeight   int    `json:"clock_weight,omitempty"`
	DepthWeight   int    `json:"depth_weight,omitempty"`
	AlwaysFooted  bool   `json:"always_footed,omitempty"`
	Pareto        bool   `json:"pareto,omitempty"`
	TupleBudget   int    `json:"tuple_budget,omitempty"`
	SequenceAware bool   `json:"sequence_aware,omitempty"`
	// Workers is the per-job DP worker count; 0 defers to the server's
	// Config.MapWorkers default. It tunes throughput only — the engines
	// are byte-identical — so it does not participate in the cache key
	// or the encoded result options.
	Workers int `json:"workers,omitempty"`
	// StrashOff opts this submission out of the strash canonicalization
	// front-end. Unlike Workers it is semantic (the mapping may differ,
	// equivalently) and participates in the cache and routing key.
	StrashOff bool `json:"strash_off,omitempty"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// parseSource builds the submitted network and a short label for it.
func parseSource(ctx context.Context, req *MapRequest) (*logic.Network, string, error) {
	set := 0
	for _, s := range []string{req.Circuit, req.BLIF, req.Bench} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, "", errors.New("exactly one of circuit, blif or bench is required")
	}
	switch {
	case req.Circuit != "":
		b, ok := builtin.Get(req.Circuit)
		if !ok {
			return nil, "", fmt.Errorf("unknown benchmark %q", req.Circuit)
		}
		return b.Build(), req.Circuit, nil
	case req.BLIF != "":
		n, err := blif.ParseContext(ctx, strings.NewReader(req.BLIF))
		if err != nil {
			return nil, "", fmt.Errorf("blif: %w", err)
		}
		return n, n.Name, nil
	default:
		n, err := benchfmt.Parse("inline.bench", strings.NewReader(req.Bench))
		if err != nil {
			return nil, "", fmt.Errorf("bench: %w", err)
		}
		return n, n.Name, nil
	}
}

// OptionsFromRequest resolves a request's option overrides against
// mapper.DefaultOptions. Exported for the client and chaos packages,
// which need the exact Options a given request resolves to.
func OptionsFromRequest(ro *RequestOptions) (mapper.Options, error) {
	opt := mapper.DefaultOptions()
	if ro == nil {
		return opt, nil
	}
	if ro.MaxWidth > 0 {
		opt.MaxWidth = ro.MaxWidth
	}
	if ro.MaxHeight > 0 {
		opt.MaxHeight = ro.MaxHeight
	}
	if ro.ClockWeight > 0 {
		opt.ClockWeight = ro.ClockWeight
	}
	if ro.DepthWeight > 0 {
		opt.DepthWeight = ro.DepthWeight
	}
	switch ro.Objective {
	case "", "area":
	case "depth":
		opt.Objective = mapper.Depth
	default:
		return opt, fmt.Errorf("unknown objective %q", ro.Objective)
	}
	if ro.TupleBudget > 0 {
		opt.TupleBudget = ro.TupleBudget
	}
	if ro.Workers > 0 {
		opt.Workers = ro.Workers
	}
	opt.AlwaysFooted = ro.AlwaysFooted
	opt.Pareto = ro.Pareto
	opt.SequenceAware = ro.SequenceAware
	opt.StrashOff = ro.StrashOff
	return opt, nil
}

// algoKeys are the request names of the four mappers.
var algoKeys = map[string]bool{"domino": true, "rs": true, "rsdeep": true, "soi": true}

// CacheKey builds the result-cache key: canonical structure hash plus
// everything else that shapes the result. It is also the cluster routing
// key — the router's consistent-hash ring and every replica's cache and
// singleflight layers all key on these exact bytes, which is what lets a
// replica answer from a peer's cache and a router coalesce identical
// submissions safely.
//
// Unless the options opt out, the canon hash is computed on the
// strash-canonicalized network — the same network the pipeline will
// decompose — so structurally identical submissions that differ only in
// internal signal names, declaration order, commutative operand order,
// redundant twins or dead logic collapse onto ONE key: one cache entry,
// one router shard, one singleflight leader. (Strash preserves the
// network name, which stays in the key: same structure under different
// model names is still a different submission.)
func CacheKey(n *logic.Network, algo string, opt mapper.Options) string {
	h := n
	if !opt.StrashOff {
		h = strash.Run(n).Network
	}
	return fmt.Sprintf("%s|%s|%s|%s", canon.Hash(h), n.Name, algo, encodeOptions(opt))
}

// RequestKey resolves a MapRequest to the cache/routing key its
// submission would use, applying the same source parsing, algorithm
// default and option resolution as the submission path. Exported for the
// cluster router, which must agree byte-for-byte with every replica.
func RequestKey(ctx context.Context, req *MapRequest) (string, error) {
	src, _, err := parseSource(ctx, req)
	if err != nil {
		return "", err
	}
	algo := req.Algorithm
	if algo == "" {
		algo = "soi"
	}
	if !algoKeys[algo] {
		return "", fmt.Errorf("unknown algorithm %q (want domino, rs, rsdeep or soi)", algo)
	}
	opt, err := OptionsFromRequest(req.Options)
	if err != nil {
		return "", err
	}
	return CacheKey(src, algo, opt), nil
}

// encodeOptions renders mapper.Options as a stable, canonical cache-key
// fragment. Every result-shaping field is written explicitly — unlike
// the %+v encoding this replaces, it cannot change meaning when struct
// field order or Stringer methods do. TestCacheKeyOptionsEncoding walks
// the struct by reflection and fails when a future field is neither
// represented here nor in its explicit exemption list. Workers is
// exempt by design: the parallel engine is byte-identical to the
// sequential one (the mapper's par-determinism gate enforces it), so
// two requests differing only in worker count must share a cache entry.
func encodeOptions(opt mapper.Options) string {
	return fmt.Sprintf("w=%d;h=%d;obj=%d;k=%d;dw=%d;foot=%t;ord=%d;pareto=%t;budget=%d;seq=%t;soff=%t",
		opt.MaxWidth, opt.MaxHeight, opt.Objective, opt.ClockWeight, opt.DepthWeight,
		opt.AlwaysFooted, opt.BaselineStackOrder, opt.Pareto, opt.TupleBudget, opt.SequenceAware,
		opt.StrashOff)
}

// faultCtx attaches the configured fault registry (if any) to ctx.
func (s *Server) faultCtx(ctx context.Context) context.Context {
	if s.cfg.Faults != nil {
		ctx = faultpoint.With(ctx, s.cfg.Faults)
	}
	return ctx
}

// retryAfter sets the Retry-After header (whole seconds, rounded up, at
// least 1) ahead of a 429 or 503 so well-behaved clients pace their
// retries instead of hammering an overloaded or stopping server.
func retryAfter(w http.ResponseWriter, wait time.Duration) {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	ctx := s.faultCtx(r.Context())
	if err := faultpoint.From(ctx).Check(ctx, PointDecode); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad request: " + err.Error()})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req MapRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{"bad request: " + err.Error()})
		return
	}
	src, label, err := parseSource(ctx, &req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if src.Len() > s.cfg.MaxNetworkNodes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			apiError{fmt.Sprintf("network has %d nodes, limit is %d", src.Len(), s.cfg.MaxNetworkNodes)})
		return
	}
	if req.Algorithm == "" {
		req.Algorithm = "soi"
	}
	if !algoKeys[req.Algorithm] {
		writeJSON(w, http.StatusBadRequest,
			apiError{fmt.Sprintf("unknown algorithm %q (want domino, rs, rsdeep or soi)", req.Algorithm)})
		return
	}
	opt, err := OptionsFromRequest(req.Options)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if opt.Workers == 0 {
		opt.Workers = s.cfg.MapWorkers
	}
	if s.cfg.StrashOff {
		// Server-wide strash opt-out. Applied before CacheKey below:
		// strash is semantic, so the key must carry it.
		opt.StrashOff = true
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS != 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	j := &job{
		circuit:  label,
		algo:     req.Algorithm,
		src:      src,
		opt:      opt,
		reqID:    obs.RequestID(r.Context()),
		tc:       obs.TraceContextFrom(r.Context()),
		deadline: time.Now().Add(timeout),
		cacheKey: CacheKey(src, req.Algorithm, opt),
		state:    JobQueued,
		done:     make(chan struct{}),
	}
	j.submitted = time.Now()
	s.metrics.add("jobs_submitted", 1)

	// Answer identical resubmissions from the cache without queueing. A
	// cache-get fault degrades to a miss: worst case the job recomputes.
	if faultpoint.From(ctx).Check(ctx, PointCacheGet) == nil {
		if res, ok := s.cache.Get(j.cacheKey); ok {
			s.registerJob(j)
			j.cached = true
			s.hub.Record(j.tc, "service", "cache local hit", time.Now(), 0)
			j.setAttribution(s.attribute(j, TierLocal, 0, time.Since(j.submitted), nil))
			j.finish(JobDone, res, "")
			s.metrics.add("cache_hits", 1)
			s.metrics.add("jobs_done", 1)
			writeJSON(w, http.StatusOK, j.view())
			return
		}
		// Durable second tier: an LRU miss may still be on disk (earlier
		// run, or a previous life of this process). Hits are promoted back
		// into the LRU; corrupt entries quarantine inside storeGet and
		// degrade to a miss.
		if res := s.storeGet(j.cacheKey); res != nil {
			s.registerJob(j)
			j.cached = true
			s.cache.Add(j.cacheKey, res)
			s.hub.Record(j.tc, "service", "cache store hit", time.Now(), 0)
			j.setAttribution(s.attribute(j, TierStore, 0, time.Since(j.submitted), nil))
			j.finish(JobDone, res, "")
			s.metrics.add("jobs_done", 1)
			writeJSON(w, http.StatusOK, j.view())
			return
		}
	}
	s.metrics.add("cache_misses", 1)

	// Singleflight: an identical submission already queued or running
	// makes this one a follower — it gets its own job id and (byte-
	// identical) copy of the leader's outcome without consuming a queue
	// slot or a DP run. A thundering herd of one key maps once.
	s.mu.Lock()
	if leader, ok := s.inflight[j.cacheKey]; ok {
		j.coalesced = true
		s.registerJobLocked(j)
		s.mu.Unlock()
		s.metrics.add("jobs_coalesced", 1)
		go s.followLeader(j, leader)
		s.answer(w, r, &req, j)
		return
	}
	s.mu.Unlock()

	// Load shedding: a job that would out-wait its own deadline in the
	// queue is doomed — failing it now with a retry hint beats burning a
	// worker slot on a result nobody can receive. The wait estimate is
	// queue length × smoothed job duration / workers; with no completed
	// job yet the estimate is zero and nothing is shed.
	// An already-expired deadline is not shed: it costs one checkpoint
	// in the DP ("canceled at node 0"), and that cancellation path must
	// stay reachable regardless of load history.
	if avg := s.metrics.avgJobDuration(); avg > 0 && time.Now().Before(j.deadline) {
		queued := s.metrics.jobsQueued.Value()
		wait := time.Duration(queued) * avg / time.Duration(s.cfg.Workers)
		if time.Now().Add(wait).After(j.deadline) {
			s.metrics.add("jobs_shed", 1)
			s.hub.Record(j.tc, "service", "shed", time.Now(), 0,
				obs.KV{Key: "est_wait_ms", Val: wait.Milliseconds()})
			retryAfter(w, wait)
			writeJSON(w, http.StatusTooManyRequests,
				apiError{fmt.Sprintf("overloaded: estimated queue wait %s exceeds the job deadline", wait.Round(time.Millisecond))})
			return
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Shutdown is not overload: 503 tells the client this instance is
		// going away; Retry-After hints when a replacement may listen.
		retryAfter(w, time.Second)
		writeJSON(w, http.StatusServiceUnavailable, apiError{"server is shutting down"})
		return
	}
	select {
	case s.queue <- j:
		s.registerJobLocked(j)
		s.inflight[j.cacheKey] = j
		s.mu.Unlock()
		s.metrics.jobsQueued.Add(1)
		// Journal the accepted leader (with its request) so a crash from
		// here on re-admits the job instead of 404ing its poller.
		s.journalAccepted(ctx, j, &req)
	default:
		s.mu.Unlock()
		s.metrics.add("jobs_rejected", 1)
		// A full queue is transient overload: 429 plus a drain-time
		// estimate distinguishes it from the terminal shutdown 503.
		wait := s.metrics.avgJobDuration()
		if wait <= 0 {
			wait = time.Second
		}
		retryAfter(w, wait)
		writeJSON(w, http.StatusTooManyRequests,
			apiError{fmt.Sprintf("queue full (%d jobs waiting)", s.cfg.QueueDepth)})
		return
	}

	s.answer(w, r, &req, j)
}

// answer completes a submission: async callers get 202 immediately, sync
// callers wait for the job (or give up with their connection, leaving the
// job running and pollable).
func (s *Server) answer(w http.ResponseWriter, r *http.Request, req *MapRequest, j *job) {
	if req.Async {
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.view())
	case <-r.Context().Done():
		// Client gave up; the job keeps running and stays pollable.
		writeJSON(w, http.StatusAccepted, j.view())
	}
}

// followLeader finishes follower job j with leader's terminal outcome.
// Leaders always finish (Shutdown drains the queue through the workers),
// so the goroutine cannot leak.
func (s *Server) followLeader(j, leader *job) {
	<-leader.done
	state, res, errMsg := leader.outcome()
	switch state {
	case JobDone:
		s.metrics.add("jobs_done", 1)
	case JobCanceled:
		s.metrics.add("jobs_canceled", 1)
	default:
		s.metrics.add("jobs_failed", 1)
	}
	wait := time.Since(j.submitted)
	s.hub.Record(j.tc, "service", "coalesced follower wait", j.submitted, wait,
		obs.KV{Key: "ok", Val: boolInt(state == JobDone)})
	j.setAttribution(s.attribute(j, TierCoalesced, 0, wait, nil))
	j.finish(state, res, errMsg)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// attribute builds job j's attribution record.
func (s *Server) attribute(j *job, tier string, queueWait, wall time.Duration, st *obs.Stats) *Attribution {
	traceID := ""
	if j.tc.Sampled {
		traceID = j.tc.TraceID
	}
	return NewAttribution(s.cfg.ReplicaName, traceID, tier, queueWait, wall, st)
}

func (s *Server) registerJob(j *job) {
	s.mu.Lock()
	s.registerJobLocked(j)
	s.mu.Unlock()
}

func (s *Server) registerJobLocked(j *job) {
	s.nextID++
	j.id = fmt.Sprintf("j%d", s.nextID)
	s.jobs[j.id] = j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleExplain serves the per-request cost attribution of one job:
// which cache tier answered, queue wait, per-phase wall time, strash
// reductions and the answering replica's identity. Attribution is nil
// until the job reaches a terminal state.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, j.explain())
}

// handleTraces serves one distributed trace recorded by this process.
// The default rendering is Chrome trace-event JSON (Perfetto-loadable);
// ?raw=1 returns the process's spans as a JSON array with absolute
// timestamps, which is what soirouter fetches from every replica to
// stitch the fleet-wide trace.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.hub.Spans(id)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{"unknown trace " + id})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("raw") == "1" {
		writeJSON(w, http.StatusOK, spans)
		return
	}
	if err := obs.WriteSpans(w, spans); err != nil {
		s.logger.Warn("trace render failed", "trace_id", id, "error", err.Error())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string        `json:"status"`
		Workers int           `json:"workers"`
		UptimeS int64         `json:"uptime_s"`
		Build   obs.BuildInfo `json:"build"`
	}{"ok", s.cfg.Workers, int64(time.Since(s.start).Seconds()), obs.Build()})
}

// handleReadyz is the drain-aware readiness probe: 200 while the server
// wants traffic, 503 from the moment BeginDrain (or Shutdown) is called.
// Liveness (/healthz) stays 200 throughout a drain — a draining replica
// is healthy, it just should not be routed new work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := struct {
		Status  string `json:"status"`
		UptimeS int64  `json:"uptime_s"`
	}{"ready", int64(time.Since(s.start).Seconds())}
	if s.draining.Load() {
		status.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, status)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// handleCacheLookup serves this replica's slice of the cluster's shared
// result-cache tier: a peer that misses locally asks here before mapping.
// Only already-cached bytes are returned — a lookup never triggers work.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeJSON(w, http.StatusBadRequest, apiError{"missing key parameter"})
		return
	}
	res, ok := s.cache.Get(key)
	if !ok {
		// The disk tier answers for the LRU here too: a peer asking this
		// replica sees its whole persistent cache, so a freshly-restarted
		// sibling keeps the cluster's shared tier warm. The stored bytes
		// are EncodeJSON output verbatim — served as-is.
		if b := s.storeGetRaw(key); b != nil {
			s.metrics.add("cluster_cache_served", 1)
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
			return
		}
		writeJSON(w, http.StatusNotFound, apiError{"no cached result for key"})
		return
	}
	b, err := EncodeJSON(res)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{"encode: " + err.Error()})
		return
	}
	s.metrics.add("cluster_cache_served", 1)
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// peerFetch consults the configured peers' caches for key and returns
// the first hit, nil on miss. Each lookup is bounded by PeerTimeout and
// any failure just degrades to a miss — the shared tier is an
// optimization, never a dependency.
func (s *Server) peerFetch(ctx context.Context, key string) *MapResult {
	if len(s.cfg.Peers) == 0 || ctx.Err() != nil {
		return nil
	}
	q := "/v1/cache?key=" + url.QueryEscape(key)
	for _, peer := range s.cfg.Peers {
		pctx, span := s.hub.StartSpan(ctx, "peer", "peer cache "+peer)
		res, err := s.peerFetchOne(pctx, peer+q)
		if err != nil {
			span.End(obs.KV{Key: "error", Val: 1})
			s.metrics.add("cluster_cache_peer_errors", 1)
			continue
		}
		span.End(obs.KV{Key: "hit", Val: boolInt(res != nil)})
		if res != nil {
			return res
		}
	}
	return nil
}

func (s *Server) peerFetchOne(ctx context.Context, u string) (*MapResult, error) {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	// Propagate the request id and trace context so the peer's access log
	// and trace hub join this request's story.
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	if tc := obs.TraceContextFrom(ctx); tc.Sampled && tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	resp, err := s.cfg.PeerHTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer cache: status %d", resp.StatusCode)
	}
	// Read one byte past the cap so an oversized reply is a hard, counted
	// error (the caller's cluster_cache_peer_errors) instead of a silent
	// truncation that would surface as a confusing decode failure.
	b, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.PeerMaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > s.cfg.PeerMaxBodyBytes {
		return nil, fmt.Errorf("peer cache: response exceeds %d bytes", s.cfg.PeerMaxBodyBytes)
	}
	var res MapResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, s.metrics.vars.String())
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	s.metrics.jobsQueued.Add(-1)
	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)

	// Drop the singleflight entry only after the job finishes (deferred
	// early so it runs after the panic-recovery defer below): followers
	// that attached while it was queued or running get its outcome, and
	// later arrivals find the result in the cache instead.
	defer func() {
		s.mu.Lock()
		if s.inflight[j.cacheKey] == j {
			delete(s.inflight, j.cacheKey)
		}
		s.mu.Unlock()
	}()

	j.setRunning()
	ctx, cancel := context.WithDeadline(s.baseCtx, j.deadline)
	defer cancel()
	ctx = s.faultCtx(ctx)
	s.journalAppend(ctx, store.JobRecord{Type: store.RecRunning, ID: j.id, Key: j.cacheKey})
	// Give injected Cancel faults a handle on this job's context, so a
	// "client vanished" failure propagates through real plumbing.
	ctx, faultCancel := faultpoint.WithCancel(ctx)
	defer faultCancel()

	// The job context carries the originating request id and a fresh
	// per-run stats collector: the mapper engine records into it and the
	// run's counters are merged into the per-algorithm aggregates served
	// at /metrics. Per-run, so parallel workers never share a collector.
	if j.reqID != "" {
		ctx = obs.WithRequestID(ctx, j.reqID)
	}
	st := &obs.Stats{}
	ctx = obs.WithStats(ctx, st)

	start := time.Now()
	queueWait := start.Sub(j.submitted)
	defer func() { s.metrics.recordDuration(time.Since(start)) }()

	// Distributed tracing: a sampled job records its queue wait and a run
	// span into the trace hub, and runs with an in-process Tracer whose
	// pipeline/mapper phase spans are exported under the run span when the
	// job ends (whatever way it ends). Unsampled jobs skip all of it — the
	// tracer stays nil, so the mapper's disabled fast path is untouched.
	var runSpan *obs.ActiveSpan
	var tr *obs.Tracer
	if j.tc.Sampled && j.tc.Valid() {
		ctx = obs.WithTraceContext(ctx, j.tc)
		s.hub.Record(j.tc, "service", "queue wait", j.submitted, queueWait)
		ctx, runSpan = s.hub.StartSpan(ctx, "service", "job "+j.algo+" "+j.circuit)
		tr = obs.NewTracer(1 << 20) // phase spans only; per-node events sampled out
		ctx = obs.WithTracer(ctx, tr)
		defer func() {
			for _, sp := range tr.ExportSpans(obs.TraceContextFrom(ctx), s.hub.Process()) {
				s.hub.Add(sp)
			}
			runSpan.End(obs.KV{Key: "dp_tuples", Val: st.TuplesGenerated})
		}()
	}

	// Panic isolation: a panic anywhere in the mapping pipeline fails
	// THIS job and leaves the worker (and daemon) serving. The client
	// sees a redacted one-line stack; the full stack goes to the log.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		stack := debug.Stack()
		s.metrics.add("jobs_panicked", 1)
		s.metrics.add("jobs_failed", 1)
		j.setAttribution(s.attribute(j, TierMiss, queueWait, time.Since(start), st))
		j.finish(JobFailed, nil, fmt.Sprintf("internal panic: %v [%s]", r, redactStack(stack)))
		s.journalTerminal(ctx, j, JobFailed, "internal panic")
		s.logger.Error("job panicked",
			"request_id", j.reqID, "job_id", j.id, "circuit", j.circuit,
			"algorithm", j.algo, "panic", fmt.Sprint(r), "stack", string(stack),
			"duration", time.Since(start))
	}()

	// Shared cache tier: before paying for a DP run, ask the peer
	// replicas whether one already mapped this key. Mapping is
	// deterministic, so a peer's encoded result is byte-identical to what
	// this replica would compute; any peer failure degrades to a miss.
	if res := s.peerFetch(ctx, j.cacheKey); res != nil {
		s.metrics.add("cluster_cache_peer_hits", 1)
		if faultpoint.From(ctx).Check(ctx, PointCachePut) == nil {
			s.cache.Add(j.cacheKey, res)
		}
		s.metrics.add("jobs_done", 1)
		j.setCached()
		j.setAttribution(s.attribute(j, TierPeer, queueWait, time.Since(start), nil))
		j.finish(JobDone, res, "")
		// A peer's bytes are this replica's bytes (determinism), so they
		// warm the durable tier too.
		s.persistResult(ctx, j.cacheKey, res)
		s.journalTerminal(ctx, j, JobDone, "")
		s.logger.Info("job finished",
			"request_id", j.reqID, "job_id", j.id, "circuit", j.circuit,
			"algorithm", j.algo, "state", string(JobDone), "peer_cache", true,
			"duration", time.Since(start))
		return
	}

	res, err := s.mapFn(ctx, j.circuit, j.src, j.algo, j.opt)
	if err == nil {
		if ferr := faultpoint.From(ctx).Check(ctx, PointQueuePop); ferr != nil {
			err = ferr
		}
	}
	s.metrics.recordEngine(j.algo, st)
	if err != nil {
		state := JobFailed
		counter := "jobs_failed"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			state, counter = JobCanceled, "jobs_canceled"
		}
		s.metrics.add(counter, 1)
		j.setAttribution(s.attribute(j, TierMiss, queueWait, time.Since(start), st))
		j.finish(state, nil, err.Error())
		s.journalTerminal(ctx, j, state, err.Error())
		s.logger.Warn("job finished",
			"request_id", j.reqID, "job_id", j.id, "circuit", j.circuit,
			"algorithm", j.algo, "state", string(state), "error", err.Error(),
			"duration", time.Since(start))
		return
	}
	// A cache-put fault only skips the store; the computed result is
	// still correct and still returned.
	if faultpoint.From(ctx).Check(ctx, PointCachePut) == nil {
		s.cache.Add(j.cacheKey, res)
	}
	s.metrics.observe(j.algo, time.Since(start))
	s.metrics.add("jobs_done", 1)
	j.setAttribution(s.attribute(j, TierMiss, queueWait, time.Since(start), st))
	j.finish(JobDone, res, "")
	// Write-behind persistence after finish: the waiter is answered
	// first, and a crash in the window before these land only costs a
	// re-derivation (the journal re-admits, mapping is deterministic).
	s.persistResult(ctx, j.cacheKey, res)
	s.journalTerminal(ctx, j, JobDone, "")
	s.logger.Info("job finished",
		"request_id", j.reqID, "job_id", j.id, "circuit", j.circuit,
		"algorithm", j.algo, "state", string(JobDone),
		"dp_tuples", st.TuplesGenerated, "duration", time.Since(start))
}

// janitor evicts terminal jobs older than JobRetention from the job
// table. It runs outside s.wg (the workers' group) so Shutdown can drain
// workers and stop the janitor independently; janitorDone orders its exit
// before Shutdown returns.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	interval := s.cfg.JobRetention / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			n := s.evictJobs(time.Now().Add(-s.cfg.JobRetention))
			if n > 0 {
				s.metrics.add("jobs_evicted", int64(n))
				s.logger.Info("jobs evicted", "count", n)
			}
			// Disk and memory evict together: evicted jobs leave the
			// journal, and the result store stays bounded by StoreEntries.
			s.compactState(n)
		}
	}
}

// evictJobs removes terminal jobs that finished before cutoff, returning
// how many went.
func (s *Server) evictJobs(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, j := range s.jobs {
		if j.terminalBefore(cutoff) {
			delete(s.jobs, id)
			n++
		}
	}
	return n
}

// mapNetwork runs the full pipeline — decompose, unate-convert, map,
// audit, encode — under ctx. It is the one code path both the daemon and
// (modulo context) the CLI's -json mode represent.
func mapNetwork(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
	p, err := report.PrepareNetworkMode(ctx, src, opt.StrashOff)
	if err != nil {
		return nil, err
	}
	var res *mapper.Result
	switch algo {
	case "domino":
		res, err = mapper.DominoMapContext(ctx, p.Unate, opt)
	case "rs":
		res, err = mapper.RSMapContext(ctx, p.Unate, opt)
	case "rsdeep":
		res, err = mapper.RSMapDeepContext(ctx, p.Unate, opt)
	case "soi":
		res, err = mapper.SOIDominoMapContext(ctx, p.Unate, opt)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, err
	}
	// The audit is a full structural re-verification and a real slice of a
	// job's wall time, so it is timed (and traced) like the other phases —
	// the explain endpoint's phase breakdown should sum to the run wall.
	st, tr := obs.StatsFrom(ctx), obs.TracerFrom(ctx)
	aStart := tr.Now()
	if err := obs.Timed(st, obs.PhaseAudit, res.Audit); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	tr.Span("pipeline", "audit "+circuit, aStart)
	return NewMapResult(circuit, p, res), nil
}
