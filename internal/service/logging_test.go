package service

import (
	"bytes"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// syncBuffer lets the handler goroutines and the test share one log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDAndAccessLog pins the request-correlation contract: every
// response carries X-Request-ID, the access log line carries the same id,
// and the id reaches the job's lifecycle log lines.
func TestRequestIDAndAccessLog(t *testing.T) {
	var sink syncBuffer
	logger := slog.New(slog.NewTextHandler(&sink, nil))
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("response missing X-Request-ID")
	}

	if code, v := postMap(t, ts, `{"circuit": "mux"}`); v.State != JobDone {
		t.Fatalf("map failed: code %d, state %s (%s)", code, v.State, v.Error)
	}

	logs := sink.String()
	if !strings.Contains(logs, "request_id="+id) {
		t.Errorf("access log missing request_id=%s:\n%s", id, logs)
	}
	if !strings.Contains(logs, "msg=\"job finished\"") {
		t.Errorf("job lifecycle line missing:\n%s", logs)
	}
	// The job line must carry the submitting request's id, not a fresh one.
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "job finished") && !strings.Contains(line, "request_id=") {
			t.Errorf("job line lacks a request id: %s", line)
		}
	}
}

// TestRequestIDsUnique checks ids are unique per server, not per process.
func TestRequestIDsUnique(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	seen := make(map[string]bool)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
	if _, ok := seen["r000001"]; !ok {
		t.Errorf("expected server-scoped sequence starting at r000001, got %v", seen)
	}
}

// TestLoggingDisabledByDefault: a nil Config.Logger must not panic and
// must not write anywhere.
func TestLoggingDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code, v := postMap(t, ts, `{"circuit": "mux"}`); v.State != JobDone {
		t.Fatalf("map failed: code %d, state %s", code, v.State)
	}
}
