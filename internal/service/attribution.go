package service

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"soidomino/internal/obs"
)

// Cache tiers an answer can come from, as reported in Attribution.
// Exactly one applies per job: the replica's own LRU, a peer replica's
// cache, a coalesced ride on an identical in-flight job, or a full
// mapping run ("miss").
const (
	TierLocal     = "local"
	TierPeer      = "peer"
	TierStore     = "store" // durable on-disk tier (also journal-recovered jobs)
	TierMiss      = "miss"
	TierCoalesced = "coalesced"
)

// Attribution is the per-request cost breakdown attached to a terminal
// job: where the answer came from and where its latency went. It lives
// on JobView (and GET /v1/jobs/{id}/explain), deliberately NOT on
// MapResult — MapResult's encoding is byte-compared by the determinism
// gates and cached/shared across replicas, so timing can never enter it.
type Attribution struct {
	// Replica identifies the process that answered (Config.ReplicaName;
	// the router fills in the replica URL when the replica didn't).
	Replica string `json:"replica,omitempty"`
	// TraceID links to GET /v1/traces/{id} when the request was sampled.
	TraceID string `json:"trace_id,omitempty"`
	// CacheTier is one of the Tier* constants.
	CacheTier string `json:"cache_tier"`
	// QueueWaitMS is time spent queued before a worker picked the job up
	// (zero for cache hits and coalesced followers — they never queue).
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// WallMS is the job's run wall time (worker pickup to terminal state,
	// matching JobView.ElapsedMS); total latency at the replica is
	// QueueWaitMS + WallMS. For a coalesced follower it is the time spent
	// waiting on the leader.
	WallMS float64 `json:"wall_ms"`
	// PhasesMS breaks a mapped ("miss") run down by pipeline phase:
	// strash, decompose, unate, dp, traceback, audit.
	PhasesMS map[string]float64 `json:"phases_ms,omitempty"`
	// Strash front-end reduction counters for mapped runs.
	StrashMerged int64 `json:"strash_merged,omitempty"`
	StrashFolded int64 `json:"strash_folded,omitempty"`
	StrashDead   int64 `json:"strash_dead,omitempty"`
	// DPTuples is the number of tuples the DP generated.
	DPTuples int64 `json:"dp_tuples,omitempty"`
}

// ExplainView is the body of GET /v1/jobs/{id}/explain: the job's
// identity plus its attribution record (nil until the job is terminal).
type ExplainView struct {
	ID          string       `json:"id"`
	State       JobState     `json:"state"`
	Circuit     string       `json:"circuit"`
	Algorithm   string       `json:"algorithm"`
	Attribution *Attribution `json:"attribution,omitempty"`
}

// NewAttribution assembles a job's attribution. st may be nil (cache
// hits and coalesced followers have no run stats). Exported so soimap's
// local -explain mode renders the same table from its own run.
func NewAttribution(replica, traceID, tier string, queueWait, wall time.Duration, st *obs.Stats) *Attribution {
	a := &Attribution{
		Replica:     replica,
		TraceID:     traceID,
		CacheTier:   tier,
		QueueWaitMS: ms(queueWait),
		WallMS:      ms(wall),
	}
	if st != nil {
		a.PhasesMS = map[string]float64{
			"strash":    ms(st.Phases.Strash),
			"decompose": ms(st.Phases.Decompose),
			"unate":     ms(st.Phases.Unate),
			"dp":        ms(st.Phases.DP),
			"traceback": ms(st.Phases.Traceback),
			"audit":     ms(st.Phases.Audit),
		}
		a.StrashMerged = st.StrashMerged
		a.StrashFolded = st.StrashFolded
		a.StrashDead = st.StrashDead
		a.DPTuples = st.TuplesGenerated
	}
	return a
}

func ms(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return float64(d.Microseconds()) / 1000
}

// Table renders the attribution as the aligned block `soimap -explain`
// prints. Phases are sorted by descending cost with their share of the
// wall time.
func (a *Attribution) Table() string {
	if a == nil {
		return "attribution: unavailable"
	}
	var b strings.Builder
	b.WriteString("attribution:\n")
	if a.Replica != "" {
		fmt.Fprintf(&b, "  replica     %s\n", a.Replica)
	}
	if a.TraceID != "" {
		fmt.Fprintf(&b, "  trace       %s\n", a.TraceID)
	}
	fmt.Fprintf(&b, "  cache tier  %s\n", a.CacheTier)
	fmt.Fprintf(&b, "  queue wait  %.3fms\n", a.QueueWaitMS)
	fmt.Fprintf(&b, "  wall        %.3fms\n", a.WallMS)
	if len(a.PhasesMS) > 0 {
		type pc struct {
			name string
			ms   float64
		}
		phases := make([]pc, 0, len(a.PhasesMS))
		for n, v := range a.PhasesMS {
			phases = append(phases, pc{n, v})
		}
		sort.Slice(phases, func(i, j int) bool {
			if phases[i].ms != phases[j].ms {
				return phases[i].ms > phases[j].ms
			}
			return phases[i].name < phases[j].name
		})
		for _, p := range phases {
			share := 0.0
			if a.WallMS > 0 {
				share = 100 * p.ms / a.WallMS
			}
			fmt.Fprintf(&b, "  phase %-10s %10.3fms  %5.1f%%\n", p.name, p.ms, share)
		}
	}
	if a.CacheTier == TierMiss {
		fmt.Fprintf(&b, "  strash      %d merged, %d folded, %d dead\n",
			a.StrashMerged, a.StrashFolded, a.StrashDead)
		fmt.Fprintf(&b, "  dp tuples   %d\n", a.DPTuples)
	}
	return strings.TrimRight(b.String(), "\n")
}
