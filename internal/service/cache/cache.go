// Package cache provides the small, concurrency-safe LRU used by the
// mapping service's result cache. Keys are typically the triple
// (canonical network hash, algorithm, options) flattened to a string;
// values are immutable encoded results shared between readers, so Get
// returns them without copying.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used cache. The zero value is not
// usable; call New. All methods are safe for concurrent use.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an empty cache holding at most capacity entries. It panics
// if capacity is not positive: a service configured with a zero-entry
// cache should skip caching, not construct one.
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	return &LRU[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the value stored under key and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add stores value under key, replacing any previous value, and evicts the
// least recently used entry if the cache is over capacity.
func (c *LRU[K, V]) Add(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = value
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key, value})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Len returns the number of entries currently cached.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge empties the cache.
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}
