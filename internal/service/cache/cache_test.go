package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestAddGet(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a") // b is now the oldest
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for k, want := range map[string]int{"a": 1, "c": 3} {
		if v, ok := c.Get(k); !ok || v != want {
			t.Errorf("Get(%s) = %d, %v; want %d", k, v, ok, want)
		}
	}
}

func TestAddUpdatesAndPromotes(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // update must promote a, not grow the cache
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Add("c", 3) // evicts b
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Errorf("Get(a) = %d, %v; want 10", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction after a was updated")
	}
}

func TestPurge(t *testing.T) {
	c := New[string, int](4)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a survived Purge")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New[string, int](0)
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%48)
				c.Add(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Fatalf("Len = %d exceeds capacity", n)
	}
}
