package service

import (
	"encoding/json"

	"soidomino/internal/mapper"
	"soidomino/internal/report"
)

// MapResult is the JSON encoding of one finished mapping job. It is the
// single result type of the subsystem: the daemon returns it from the job
// API and `soimap -json` prints it, so the two outputs are byte-identical
// for the same circuit, algorithm and options (see EncodeJSON).
type MapResult struct {
	Circuit   string      `json:"circuit"`
	Algorithm string      `json:"algorithm"`
	Options   OptionsJSON `json:"options"`
	Source    NetworkJSON `json:"source"`
	// Unate describes the decomposed, unate-converted network the mapper
	// consumed; Duplicated counts the gates the bubble-pushing duplicated.
	Unate      NetworkJSON `json:"unate"`
	Duplicated int         `json:"duplicated_gates"`
	// Strash summarizes the canonicalization front-end's reduction;
	// absent when the run opted out (options.strash_off). The counts are
	// structural, not timing, so they are deterministic and safe inside
	// the byte-compared encoding.
	Strash *StrashJSON `json:"strash,omitempty"`
	Stats  StatsJSON   `json:"stats"`
	Gates  []GateJSON  `json:"gates"`
	// Degraded marks a Pareto run whose tuple budget overflowed: the
	// mapping is complete and audit-clean but frontier exploration was
	// truncated (see mapper.Result.Degraded).
	Degraded bool `json:"degraded,omitempty"`
}

// OptionsJSON mirrors the result-shaping fields of mapper.Options.
// Options.Workers is deliberately absent: the parallel engine is
// byte-identical to the sequential one, and encoding the worker count
// would break that contract (the same mapping would encode differently
// at different worker counts, defeating the cache and the determinism
// gates that byte-compare EncodeJSON output).
type OptionsJSON struct {
	MaxWidth      int    `json:"max_width"`
	MaxHeight     int    `json:"max_height"`
	Objective     string `json:"objective"`
	ClockWeight   int    `json:"clock_weight"`
	DepthWeight   int    `json:"depth_weight"`
	AlwaysFooted  bool   `json:"always_footed,omitempty"`
	Pareto        bool   `json:"pareto,omitempty"`
	TupleBudget   int    `json:"tuple_budget,omitempty"`
	SequenceAware bool   `json:"sequence_aware,omitempty"`
	StrashOff     bool   `json:"strash_off,omitempty"`
}

// StrashJSON summarizes the strash front-end's reduction of one source
// network (see strash.Counters).
type StrashJSON struct {
	NodesIn  int `json:"nodes_in"`
	NodesOut int `json:"nodes_out"`
	Merged   int `json:"merged"`
	Folded   int `json:"folded"`
	Dead     int `json:"dead"`
}

// NetworkJSON summarizes one logic network.
type NetworkJSON struct {
	Name    string `json:"name"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
	Gates   int    `json:"gates"`
	Depth   int    `json:"depth"`
}

// StatsJSON mirrors mapper.Stats (the paper's reported metrics).
type StatsJSON struct {
	TLogic         int `json:"t_logic"`
	TDisch         int `json:"t_disch"`
	TTotal         int `json:"t_total"`
	Gates          int `json:"gates"`
	TClock         int `json:"t_clock"`
	Levels         int `json:"levels"`
	InputInverters int `json:"input_inverters"`
}

// GateJSON summarizes one mapped domino gate.
type GateJSON struct {
	ID         int    `json:"id"`
	Output     string `json:"output"`
	Level      int    `json:"level"`
	Pulldown   int    `json:"pulldown"`
	Discharges int    `json:"discharges"`
	Footed     bool   `json:"footed,omitempty"`
	// Compound is set for gates realized as multiple dynamic stages joined
	// by a static NAND/NOR (the paper's solution 7).
	Compound *CompoundJSON `json:"compound,omitempty"`
}

// CompoundJSON describes a compound gate's static output stage.
type CompoundJSON struct {
	Kind   string `json:"kind"`
	Stages int    `json:"stages"`
}

// NewMapResult flattens a finished pipeline + mapping into the shared
// encoding. The circuit argument names the submission (benchmark name or
// file stem); it may differ from the network's own name.
func NewMapResult(circuit string, p *report.Pipeline, res *mapper.Result) *MapResult {
	srcStats := p.Orig.Stats()
	unateStats := p.Unate.Stats()
	r := &MapResult{
		Circuit:   circuit,
		Algorithm: res.Algorithm,
		Options: OptionsJSON{
			MaxWidth:      res.Options.MaxWidth,
			MaxHeight:     res.Options.MaxHeight,
			Objective:     res.Options.Objective.String(),
			ClockWeight:   res.Options.ClockWeight,
			DepthWeight:   res.Options.DepthWeight,
			AlwaysFooted:  res.Options.AlwaysFooted,
			Pareto:        res.Options.Pareto,
			TupleBudget:   res.Options.TupleBudget,
			SequenceAware: res.Options.SequenceAware,
			StrashOff:     res.Options.StrashOff,
		},
		Source: NetworkJSON{
			Name:    p.Orig.Name,
			Inputs:  srcStats.Inputs,
			Outputs: srcStats.Outputs,
			Gates:   srcStats.Gates,
			Depth:   srcStats.Depth,
		},
		Unate: NetworkJSON{
			Name:    p.Unate.Name,
			Inputs:  unateStats.Inputs,
			Outputs: unateStats.Outputs,
			Gates:   unateStats.Gates,
			Depth:   unateStats.Depth,
		},
		Duplicated: p.Duplicated,
		Stats: StatsJSON{
			TLogic:         res.Stats.TLogic,
			TDisch:         res.Stats.TDisch,
			TTotal:         res.Stats.TTotal,
			Gates:          res.Stats.Gates,
			TClock:         res.Stats.TClock,
			Levels:         res.Stats.Levels,
			InputInverters: res.Stats.InputInverters,
		},
		Gates:    make([]GateJSON, 0, len(res.Gates)),
		Degraded: res.Degraded,
	}
	if p.Strash != nil {
		c := p.Strash.Counters
		r.Strash = &StrashJSON{
			NodesIn: c.NodesIn, NodesOut: c.NodesOut,
			Merged: c.Merged, Folded: c.Folded, Dead: c.Dead,
		}
	}
	for _, g := range res.Gates {
		gj := GateJSON{
			ID:         g.ID,
			Output:     g.Output,
			Level:      g.Level,
			Pulldown:   g.Pulldown(),
			Discharges: len(g.Discharges),
			Footed:     g.Footed,
		}
		if g.Compound != nil {
			gj.Compound = &CompoundJSON{
				Kind:   g.Compound.Kind.String(),
				Stages: len(g.Compound.Stages),
			}
		}
		r.Gates = append(r.Gates, gj)
	}
	return r
}

// EncodeJSON renders a MapResult in the subsystem's wire form: two-space
// indented JSON with a trailing newline. Both soimapd and `soimap -json`
// go through this function, which is what makes their outputs comparable
// byte for byte.
func EncodeJSON(r *MapResult) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
