package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
)

// TestEWMAFirstSampleSeeds: the first recorded duration becomes the
// average verbatim — no warm-up bias from smoothing against the zero
// "no data yet" state, which doubles as the shedder's off switch.
func TestEWMAFirstSampleSeeds(t *testing.T) {
	m := newMetrics()
	if got := m.avgJobDuration(); got != 0 {
		t.Fatalf("fresh metrics avg = %v, want 0 (shedder disabled)", got)
	}
	m.recordDuration(100 * time.Millisecond)
	if got := m.avgJobDuration(); got != 100*time.Millisecond {
		t.Errorf("after first sample avg = %v, want exactly 100ms", got)
	}
}

// TestEWMASmoothing: subsequent samples fold in with alpha = 1/4:
// avg' = avg + (sample-avg)/4.
func TestEWMASmoothing(t *testing.T) {
	m := newMetrics()
	m.recordDuration(100 * time.Millisecond)
	m.recordDuration(200 * time.Millisecond)
	if got := m.avgJobDuration(); got != 125*time.Millisecond {
		t.Errorf("avg after 100ms,200ms = %v, want 125ms", got)
	}
	m.recordDuration(125 * time.Millisecond)
	if got := m.avgJobDuration(); got != 125*time.Millisecond {
		t.Errorf("a sample equal to the average moved it: %v", got)
	}
	// A slow outlier moves the estimate by only a quarter of its excess.
	m.recordDuration(1125 * time.Millisecond)
	if got := m.avgJobDuration(); got != 375*time.Millisecond {
		t.Errorf("avg after 1125ms outlier = %v, want 375ms", got)
	}
}

// TestEWMAStaleReadTolerance exercises the documented benign race: the
// load/store pair in recordDuration is not atomic read-modify-write, so
// concurrent workers may smooth against a stale average. The tolerance
// contract is that the estimate stays a plausible smoothing — within
// the range of the recorded samples — never garbage. With a constant
// sample the fixed point is exact under any interleaving. Run under
// -race by `make race`.
func TestEWMAStaleReadTolerance(t *testing.T) {
	m := newMetrics()
	const sample = 50 * time.Millisecond
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.recordDuration(sample)
			}
		}()
	}
	wg.Wait()
	if got := m.avgJobDuration(); got != sample {
		t.Errorf("constant %v samples converged to %v; stale reads must only perturb smoothing, not the fixed point", sample, got)
	}

	// Mixed samples: the estimate must land inside the sample range.
	m2 := newMetrics()
	lo, hi := 10*time.Millisecond, 90*time.Millisecond
	for w := 0; w < 8; w++ {
		wg.Add(1)
		d := lo
		if w%2 == 1 {
			d = hi
		}
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m2.recordDuration(d)
			}
		}()
	}
	wg.Wait()
	if got := m2.avgJobDuration(); got < lo || got > hi {
		t.Errorf("avg %v escaped the sample range [%v, %v]", got, lo, hi)
	}
}

// TestShedDecisionAtDeadlineBoundary pins the shed/no-shed decision
// against the estimated queue wait (queued × avg / workers): a deadline
// comfortably beyond the estimate is accepted, one short of it is shed
// with 429 + Retry-After. Uses one blocked worker and one queued job so
// the estimated wait is exactly the seeded average.
func TestShedDecisionAtDeadlineBoundary(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	inner := s.mapFn
	s.mapFn = blockUntil(release, inner)
	defer close(release)

	// Seed the estimate directly: avg 2s per job.
	s.metrics.avgJobNanos.Store(int64(2 * time.Second))

	// Occupy the worker, then park one job in the queue (wait ≈ 2s).
	if code, _ := postMap(t, ts, `{"circuit": "mux", "async": true, "options": {"clock_weight": 1}}`); code != http.StatusAccepted {
		t.Fatal("job 1 not accepted")
	}
	waitFor(t, ts, "jobs_running", 1)
	if code, _ := postMap(t, ts, `{"circuit": "mux", "async": true, "options": {"clock_weight": 2}}`); code != http.StatusAccepted {
		t.Fatal("job 2 not accepted")
	}
	waitFor(t, ts, "jobs_queued", 1)

	// 30s deadline against a ~2s estimated wait: accepted.
	if code, _ := postMap(t, ts, `{"circuit": "mux", "async": true, "timeout_ms": 30000, "options": {"clock_weight": 3}}`); code != http.StatusAccepted {
		t.Error("job with deadline far beyond the estimated wait was shed")
	}
	// 500ms deadline against the same wait: shed before queueing.
	resp, _ := postMapResp(t, ts, `{"circuit": "mux", "async": true, "timeout_ms": 500, "options": {"clock_weight": 4}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("doomed job: code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if n := varInt(t, getVars(t, ts), "jobs_shed"); n != 1 {
		t.Errorf("jobs_shed = %d, want 1", n)
	}
	// Shedding never triggers before the first sample: a fresh estimate
	// of zero disables it even for tiny deadlines (covered above by the
	// fresh-metrics zero check; here the already-expired path).
	resp2, _ := postMapResp(t, ts, `{"circuit": "mux", "async": true, "timeout_ms": -1, "options": {"clock_weight": 5}}`)
	if resp2.StatusCode == http.StatusTooManyRequests {
		t.Error("already-expired deadline was shed; it must reach the DP's cancellation path")
	}
}

// mapFunc mirrors Server.mapFn's signature for test wrappers.
type mapFunc = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error)

// blockUntil wraps a mapFn so jobs block until release closes (or their
// context dies), letting tests hold the queue in a known state.
func blockUntil(release chan struct{}, inner mapFunc) mapFunc {
	return func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return inner(ctx, circuit, src, algo, opt)
	}
}

// waitFor polls /debug/vars until the named gauge reaches want.
func waitFor(t *testing.T, ts *httptest.Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for varInt(t, getVars(t, ts), name) != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d", name, want)
		}
		time.Sleep(time.Millisecond)
	}
}
