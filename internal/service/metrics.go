package service

import (
	"encoding/json"
	"expvar"
	"sync"
	"sync/atomic"
	"time"

	"soidomino/internal/obs"
)

// counterNames are the plain monotonic counters of the server, in the
// (sorted) order /metrics exposes them.
var counterNames = []string{
	"cache_hits", "cache_misses",
	"cluster_cache_peer_errors", "cluster_cache_peer_hits", "cluster_cache_served",
	"http_panics",
	"jobs_canceled", "jobs_coalesced", "jobs_done", "jobs_evicted", "jobs_failed",
	"jobs_journal_compacted", "jobs_panicked", "jobs_readmitted", "jobs_recovered",
	"jobs_rejected", "jobs_shed", "jobs_submitted",
	"store_corrupt", "store_evicted", "store_hits", "store_misses", "store_write_errors",
}

// metrics is the per-server instrument set, exported at /debug/vars and,
// translated to the Prometheus text format, at /metrics. The expvar.Map
// is private to the server (never published to the process globals), so
// many servers — the tests run several — can coexist.
type metrics struct {
	vars        *expvar.Map
	jobsQueued  *expvar.Int // gauge: jobs waiting in the queue
	jobsRunning *expvar.Int // gauge: jobs occupying a worker

	// avgJobNanos is an exponentially-weighted moving average of job
	// wall-clock time, the load shedder's service-time estimate.
	avgJobNanos atomic.Int64

	mu      sync.Mutex
	latency map[string]*histogram // per-algorithm, key latency_ms_<algo>

	// engineMu guards the per-algorithm aggregates of the mapper engine's
	// per-run obs.Stats, merged in by runJob and served at /metrics.
	engineMu sync.Mutex
	engine   map[string]*obs.Stats
}

func newMetrics() *metrics {
	m := &metrics{
		vars:        new(expvar.Map).Init(),
		jobsQueued:  new(expvar.Int),
		jobsRunning: new(expvar.Int),
		latency:     make(map[string]*histogram),
		engine:      make(map[string]*obs.Stats),
	}
	m.vars.Set("jobs_queued", m.jobsQueued)
	m.vars.Set("jobs_running", m.jobsRunning)
	// Pre-create the counters so /debug/vars shows zeros from the start.
	for _, name := range counterNames {
		m.vars.Add(name, 0)
	}
	return m
}

func (m *metrics) add(name string, delta int64) { m.vars.Add(name, delta) }

// recordDuration folds one finished job's wall-clock time into the moving
// average (alpha = 1/4; the first sample seeds the average). A stale-read
// race between concurrent workers only perturbs the smoothing, which the
// shedder treats as an estimate anyway.
func (m *metrics) recordDuration(d time.Duration) {
	old := m.avgJobNanos.Load()
	if old == 0 {
		m.avgJobNanos.Store(int64(d))
		return
	}
	m.avgJobNanos.Store(old + (int64(d)-old)/4)
}

// avgJobDuration returns the current service-time estimate (0 until the
// first job finishes).
func (m *metrics) avgJobDuration() time.Duration {
	return time.Duration(m.avgJobNanos.Load())
}

// counter reads one pre-created counter's current value.
func (m *metrics) counter(name string) int64 {
	if v, ok := m.vars.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// recordEngine merges one run's DP stats into the algorithm's aggregate.
func (m *metrics) recordEngine(algo string, st *obs.Stats) {
	m.engineMu.Lock()
	agg, ok := m.engine[algo]
	if !ok {
		agg = &obs.Stats{}
		m.engine[algo] = agg
	}
	agg.Merge(st)
	m.engineMu.Unlock()
}

// engineSnapshot copies the per-algorithm DP aggregates for rendering.
func (m *metrics) engineSnapshot() map[string]obs.Stats {
	m.engineMu.Lock()
	defer m.engineMu.Unlock()
	out := make(map[string]obs.Stats, len(m.engine))
	for algo, st := range m.engine {
		out[algo] = *st
	}
	return out
}

// latencySnapshot copies the per-algorithm latency histograms.
func (m *metrics) latencySnapshot() map[string]histSnapshot {
	m.mu.Lock()
	algos := make(map[string]*histogram, len(m.latency))
	for k, h := range m.latency {
		algos[k] = h
	}
	m.mu.Unlock()
	out := make(map[string]histSnapshot, len(algos))
	for k, h := range algos {
		out[k] = h.snapshot()
	}
	return out
}

// observe records one successful mapping run's wall-clock time in the
// algorithm's latency histogram, creating it on first use.
func (m *metrics) observe(algo string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.latency[algo]
	if !ok {
		h = newHistogram()
		m.latency[algo] = h
		m.vars.Set("latency_ms_"+algo, h)
	}
	m.mu.Unlock()
	h.observe(d)
}

// latencyBoundsMS are the histogram's upper bucket bounds in milliseconds;
// a final unbounded bucket catches everything slower.
var latencyBoundsMS = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram implementing expvar.Var.
type histogram struct {
	mu      sync.Mutex
	count   int64
	sumMS   int64
	buckets []int64 // len(latencyBoundsMS)+1, last is the overflow bucket
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]int64, len(latencyBoundsMS)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for i < len(latencyBoundsMS) && ms > latencyBoundsMS[i] {
		i++
	}
	h.mu.Lock()
	h.count++
	h.sumMS += ms
	h.buckets[i]++
	h.mu.Unlock()
}

// histSnapshot is a consistent copy of one histogram's state. Count and
// SumMS ride along with the buckets so /metrics can always derive request
// rate and mean latency (sum/count) from a scrape pair.
type histSnapshot struct {
	Count   int64
	SumMS   int64
	Buckets []int64
}

func (h *histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return histSnapshot{
		Count:   h.count,
		SumMS:   h.sumMS,
		Buckets: append([]int64(nil), h.buckets...),
	}
}

// String renders the histogram as JSON, making it a valid expvar.Var.
func (h *histogram) String() string {
	type bucket struct {
		LE    int64 `json:"le_ms,omitempty"` // 0 on the overflow bucket
		Count int64 `json:"count"`
	}
	h.mu.Lock()
	v := struct {
		Count   int64    `json:"count"`
		SumMS   int64    `json:"sum_ms"`
		Buckets []bucket `json:"buckets"`
	}{Count: h.count, SumMS: h.sumMS}
	for i, n := range h.buckets {
		b := bucket{Count: n}
		if i < len(latencyBoundsMS) {
			b.LE = latencyBoundsMS[i]
		}
		v.Buckets = append(v.Buckets, b)
	}
	h.mu.Unlock()
	b, err := json.Marshal(v)
	if err != nil {
		return `{"error":"histogram marshal"}`
	}
	return string(b)
}
