package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
)

// TestReadyzDrain pins the drain contract: /readyz answers 200 until
// BeginDrain, 503 after — while /healthz stays 200 and the job API keeps
// accepting work throughout the grace window.
func TestReadyzDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}
	if !s.BeginDrain() {
		t.Fatal("BeginDrain did not flip the state")
	}
	if s.BeginDrain() {
		t.Fatal("second BeginDrain claims to have flipped the state again")
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (drain is not death)", code)
	}
	// The grace window: a draining server still accepts and runs jobs.
	if code, v := postMap(t, ts, `{"circuit": "mux"}`); code != http.StatusOK || v.State != JobDone {
		t.Fatalf("submission during drain: code %d, state %s (%s)", code, v.State, v.Error)
	}
}

// TestCoalescingSingleDPRun is the singleflight acceptance check: N
// concurrent identical submissions execute exactly one mapping run; the
// rest attach to the in-flight leader and return byte-identical results,
// counted by jobs_coalesced.
func TestCoalescingSingleDPRun(t *testing.T) {
	const followers = 6
	s, ts := newTestServer(t, Config{Workers: 2})

	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	inner := s.mapFn
	s.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		if runs.Add(1) == 1 {
			close(started)
		}
		<-release
		return inner(ctx, circuit, src, algo, opt)
	}

	// The leader goes in async and blocks inside mapFn, guaranteeing the
	// followers all arrive while it is in flight.
	code, leader := postMap(t, ts, `{"circuit": "mux", "async": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("leader submit: code %d", code)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached mapFn")
	}

	var wg sync.WaitGroup
	results := make([]JobView, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = postMap(t, ts, `{"circuit": "mux"}`)
		}(i)
	}
	// Let the follower handlers reach the singleflight check, then
	// release the leader. Waiting on jobs_coalesced (not sleeping) keeps
	// the test deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.counter("jobs_coalesced") < followers {
		if time.Now().After(deadline) {
			t.Fatalf("jobs_coalesced = %d after 5s, want %d",
				s.metrics.counter("jobs_coalesced"), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("mapFn ran %d times for %d identical submissions, want 1", n, followers+1)
	}
	var leaderBytes []byte
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + leader.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		decodeBody(t, resp, &v)
		if v.State == JobDone {
			leaderBytes = mustEncode(t, v.Result)
			break
		}
		if v.State == JobFailed || v.State == JobCanceled {
			t.Fatalf("leader job %s: %s", v.State, v.Error)
		}
		time.Sleep(time.Millisecond)
	}
	for i, v := range results {
		if v.State != JobDone {
			t.Fatalf("follower %d: state %s (%s)", i, v.State, v.Error)
		}
		if !v.Coalesced {
			t.Errorf("follower %d not marked coalesced", i)
		}
		if !bytes.Equal(mustEncode(t, v.Result), leaderBytes) {
			t.Errorf("follower %d result differs from the leader's bytes", i)
		}
	}
	if n := s.metrics.counter("jobs_coalesced"); n != followers {
		t.Errorf("jobs_coalesced = %d, want %d", n, followers)
	}
	if done := s.metrics.counter("jobs_done"); done != followers+1 {
		t.Errorf("jobs_done = %d, want %d", done, followers+1)
	}
}

// TestPeerCacheTier exercises the shared result-cache tier end to end:
// replica B, cold, answers a submission from replica A's cache — without
// a mapping run — and the bytes agree.
func TestPeerCacheTier(t *testing.T) {
	_, tsA := newTestServer(t, Config{Workers: 1})
	code, va := postMap(t, tsA, `{"circuit": "z4ml"}`)
	if code != http.StatusOK || va.State != JobDone {
		t.Fatalf("seed replica A: code %d, state %s (%s)", code, va.State, va.Error)
	}

	// The peer lookup endpoint itself: the exact key hits, others miss.
	key, err := RequestKey(context.Background(), &MapRequest{Circuit: "z4ml"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(tsA.URL + "/v1/cache?key=" + url.QueryEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer lookup of a cached key = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(tsA.URL + "/v1/cache?key=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("peer lookup of an unknown key = %d, want 404", resp.StatusCode)
	}

	// Replica B misses locally, consults A, and never maps. A dead peer
	// ahead of A in the list must degrade to a miss, not an error.
	sb, tsB := newTestServer(t, Config{
		Workers:     1,
		Peers:       []string{"http://127.0.0.1:1", tsA.URL},
		PeerTimeout: 100 * time.Millisecond,
	})
	var mapped atomic.Int64
	inner := sb.mapFn
	sb.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		mapped.Add(1)
		return inner(ctx, circuit, src, algo, opt)
	}
	code, vb := postMap(t, tsB, `{"circuit": "z4ml"}`)
	if code != http.StatusOK || vb.State != JobDone {
		t.Fatalf("replica B: code %d, state %s (%s)", code, vb.State, vb.Error)
	}
	if mapped.Load() != 0 {
		t.Fatalf("replica B ran %d mapping(s) despite the peer hit", mapped.Load())
	}
	if !vb.Cached {
		t.Error("peer-cache answer not marked cached")
	}
	if !bytes.Equal(mustEncode(t, vb.Result), mustEncode(t, va.Result)) {
		t.Error("peer-fetched result differs from the origin replica's bytes")
	}
	if n := sb.metrics.counter("cluster_cache_peer_hits"); n != 1 {
		t.Errorf("replica B cluster_cache_peer_hits = %d, want 1", n)
	}
	if n := sb.metrics.counter("cluster_cache_peer_errors"); n != 1 {
		t.Errorf("replica B cluster_cache_peer_errors = %d, want 1 (the dead peer)", n)
	}
	// B now holds the entry locally: a resubmission is a plain cache hit.
	if _, v := postMap(t, tsB, `{"circuit": "z4ml"}`); !v.Cached || v.State != JobDone {
		t.Errorf("resubmission to B: cached=%t state=%s, want a local hit", v.Cached, v.State)
	}
}

func decodeBody(t *testing.T, resp *http.Response, v *JobView) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func mustEncode(t *testing.T, r *MapResult) []byte {
	t.Helper()
	if r == nil {
		t.Fatal("nil MapResult")
	}
	b, err := EncodeJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
