package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
)

// TestReadyzDrain pins the drain contract: /readyz answers 200 until
// BeginDrain, 503 after — while /healthz stays 200 and the job API keeps
// accepting work throughout the grace window.
func TestReadyzDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}
	if !s.BeginDrain() {
		t.Fatal("BeginDrain did not flip the state")
	}
	if s.BeginDrain() {
		t.Fatal("second BeginDrain claims to have flipped the state again")
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (drain is not death)", code)
	}
	// The grace window: a draining server still accepts and runs jobs.
	if code, v := postMap(t, ts, `{"circuit": "mux"}`); code != http.StatusOK || v.State != JobDone {
		t.Fatalf("submission during drain: code %d, state %s (%s)", code, v.State, v.Error)
	}
}

// TestCoalescingSingleDPRun is the singleflight acceptance check: N
// concurrent identical submissions execute exactly one mapping run; the
// rest attach to the in-flight leader and return byte-identical results,
// counted by jobs_coalesced.
func TestCoalescingSingleDPRun(t *testing.T) {
	const followers = 6
	s, ts := newTestServer(t, Config{Workers: 2})

	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	inner := s.mapFn
	s.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		if runs.Add(1) == 1 {
			close(started)
		}
		<-release
		return inner(ctx, circuit, src, algo, opt)
	}

	// The leader goes in async and blocks inside mapFn, guaranteeing the
	// followers all arrive while it is in flight.
	code, leader := postMap(t, ts, `{"circuit": "mux", "async": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("leader submit: code %d", code)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached mapFn")
	}

	var wg sync.WaitGroup
	results := make([]JobView, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = postMap(t, ts, `{"circuit": "mux"}`)
		}(i)
	}
	// Let the follower handlers reach the singleflight check, then
	// release the leader. Waiting on jobs_coalesced (not sleeping) keeps
	// the test deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.counter("jobs_coalesced") < followers {
		if time.Now().After(deadline) {
			t.Fatalf("jobs_coalesced = %d after 5s, want %d",
				s.metrics.counter("jobs_coalesced"), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("mapFn ran %d times for %d identical submissions, want 1", n, followers+1)
	}
	var leaderBytes []byte
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + leader.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		decodeBody(t, resp, &v)
		if v.State == JobDone {
			leaderBytes = mustEncode(t, v.Result)
			break
		}
		if v.State == JobFailed || v.State == JobCanceled {
			t.Fatalf("leader job %s: %s", v.State, v.Error)
		}
		time.Sleep(time.Millisecond)
	}
	for i, v := range results {
		if v.State != JobDone {
			t.Fatalf("follower %d: state %s (%s)", i, v.State, v.Error)
		}
		if !v.Coalesced {
			t.Errorf("follower %d not marked coalesced", i)
		}
		if !bytes.Equal(mustEncode(t, v.Result), leaderBytes) {
			t.Errorf("follower %d result differs from the leader's bytes", i)
		}
	}
	if n := s.metrics.counter("jobs_coalesced"); n != followers {
		t.Errorf("jobs_coalesced = %d, want %d", n, followers)
	}
	if done := s.metrics.counter("jobs_done"); done != followers+1 {
		t.Errorf("jobs_done = %d, want %d", done, followers+1)
	}
}

// TestPeerCacheTier exercises the shared result-cache tier end to end:
// replica B, cold, answers a submission from replica A's cache — without
// a mapping run — and the bytes agree.
func TestPeerCacheTier(t *testing.T) {
	_, tsA := newTestServer(t, Config{Workers: 1})
	code, va := postMap(t, tsA, `{"circuit": "z4ml"}`)
	if code != http.StatusOK || va.State != JobDone {
		t.Fatalf("seed replica A: code %d, state %s (%s)", code, va.State, va.Error)
	}

	// The peer lookup endpoint itself: the exact key hits, others miss.
	key, err := RequestKey(context.Background(), &MapRequest{Circuit: "z4ml"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(tsA.URL + "/v1/cache?key=" + url.QueryEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer lookup of a cached key = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(tsA.URL + "/v1/cache?key=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("peer lookup of an unknown key = %d, want 404", resp.StatusCode)
	}

	// Replica B misses locally, consults A, and never maps. A dead peer
	// ahead of A in the list must degrade to a miss, not an error.
	sb, tsB := newTestServer(t, Config{
		Workers:     1,
		Peers:       []string{"http://127.0.0.1:1", tsA.URL},
		PeerTimeout: 100 * time.Millisecond,
	})
	var mapped atomic.Int64
	inner := sb.mapFn
	sb.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		mapped.Add(1)
		return inner(ctx, circuit, src, algo, opt)
	}
	code, vb := postMap(t, tsB, `{"circuit": "z4ml"}`)
	if code != http.StatusOK || vb.State != JobDone {
		t.Fatalf("replica B: code %d, state %s (%s)", code, vb.State, vb.Error)
	}
	if mapped.Load() != 0 {
		t.Fatalf("replica B ran %d mapping(s) despite the peer hit", mapped.Load())
	}
	if !vb.Cached {
		t.Error("peer-cache answer not marked cached")
	}
	if !bytes.Equal(mustEncode(t, vb.Result), mustEncode(t, va.Result)) {
		t.Error("peer-fetched result differs from the origin replica's bytes")
	}
	if n := sb.metrics.counter("cluster_cache_peer_hits"); n != 1 {
		t.Errorf("replica B cluster_cache_peer_hits = %d, want 1", n)
	}
	if n := sb.metrics.counter("cluster_cache_peer_errors"); n != 1 {
		t.Errorf("replica B cluster_cache_peer_errors = %d, want 1 (the dead peer)", n)
	}
	// B now holds the entry locally: a resubmission is a plain cache hit.
	if _, v := postMap(t, tsB, `{"circuit": "z4ml"}`); !v.Cached || v.State != JobDone {
		t.Errorf("resubmission to B: cached=%t state=%s, want a local hit", v.Cached, v.State)
	}
}

// TestPeerCacheResponseCapped pins the peer-fetch response limit: a
// peer replying with more than PeerMaxBodyBytes is a counted error and
// a cache miss (the job maps locally), never an unbounded read.
func TestPeerCacheResponseCapped(t *testing.T) {
	// A "sick peer" that answers every cache lookup with a huge body.
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(bytes.Repeat([]byte("x"), 64<<10))
	}))
	defer sick.Close()

	s, ts := newTestServer(t, Config{
		Workers:          1,
		Peers:            []string{sick.URL},
		PeerTimeout:      2 * time.Second,
		PeerMaxBodyBytes: 1 << 10,
	})
	code, v := postMap(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("submit with sick peer: code %d, state %s (%s)", code, v.State, v.Error)
	}
	if v.Cached {
		t.Error("oversized peer reply was treated as a cache hit")
	}
	if n := s.metrics.counter("cluster_cache_peer_errors"); n != 1 {
		t.Errorf("cluster_cache_peer_errors = %d, want 1", n)
	}
	if n := s.metrics.counter("cluster_cache_peer_hits"); n != 0 {
		t.Errorf("cluster_cache_peer_hits = %d, want 0", n)
	}
}

// TestPeerCacheServesDiskTier: the /v1/cache endpoint answers from the
// durable store when the LRU misses, so a freshly-restarted replica
// still contributes its persistent cache to the cluster's shared tier.
func TestPeerCacheServesDiskTier(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Workers: 1, StateDir: dir, JournalFsync: "always"})
	ts1 := httptest.NewServer(s1.Handler())
	if code, v := postMapURL(t, ts1.URL, `{"circuit": "z4ml"}`); code != http.StatusOK || v.State != JobDone {
		t.Fatalf("seed: code %d, state %s", code, v.State)
	}
	key, err := RequestKey(context.Background(), &MapRequest{Circuit: "z4ml"})
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	shutdownNow(t, s1)
	os.Remove(filepath.Join(dir, "journal.soij")) // cold job table, warm disk

	s2 := New(Config{Workers: 1, StateDir: dir, JournalFsync: "always"})
	defer shutdownNow(t, s2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/v1/cache?key=" + url.QueryEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disk-tier peer lookup = %d, want 200", resp.StatusCode)
	}
	var res MapResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode disk-served cache entry: %v", err)
	}
	if res.Circuit != "z4ml" {
		t.Fatalf("disk-served entry circuit = %q, want z4ml", res.Circuit)
	}
	if n := s2.metrics.counter("cluster_cache_served"); n != 1 {
		t.Errorf("cluster_cache_served = %d, want 1", n)
	}
	if n := s2.metrics.counter("store_hits"); n != 1 {
		t.Errorf("store_hits = %d, want 1", n)
	}
}

func decodeBody(t *testing.T, resp *http.Response, v *JobView) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func mustEncode(t *testing.T, r *MapResult) []byte {
	t.Helper()
	if r == nil {
		t.Fatal("nil MapResult")
	}
	b, err := EncodeJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
