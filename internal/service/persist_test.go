package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/store"
)

// TestWarmRestartServesFromDisk is the tentpole's core promise: a job
// mapped before a clean shutdown is answered from the durable store —
// byte-identically — by the next process on the same state dir.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always"})
	ts1 := newPersistHTTP(t, s1)
	code, first := postMapURL(t, ts1.URL, `{"circuit": "mux"}`)
	if code != http.StatusOK || first.State != JobDone {
		t.Fatalf("first submit: code %d, state %s, error %q", code, first.State, first.Error)
	}
	firstBytes, err := EncodeJSON(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	shutdownNow(t, s1)

	// Drop the journal so the restart has no jobs to recover (recovery
	// would warm the LRU and mask the disk tier this test is aimed at;
	// the journal path has its own tests below).
	os.Remove(filepath.Join(dir, "journal.soij"))

	s2 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always"})
	defer shutdownNow(t, s2)
	ts2 := newPersistHTTP(t, s2)
	code, again := postMapURL(t, ts2.URL, `{"circuit": "mux"}`)
	if code != http.StatusOK || again.State != JobDone {
		t.Fatalf("restart submit: code %d, state %s, error %q", code, again.State, again.Error)
	}
	if !again.Cached {
		t.Fatal("restart submission not served from a cache tier")
	}
	if got := again.Attribution.CacheTier; got != TierStore {
		t.Fatalf("restart cache tier = %q, want %q", got, TierStore)
	}
	againBytes, err := EncodeJSON(again.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(againBytes) != string(firstBytes) {
		t.Fatal("disk-served result bytes differ from the original run")
	}
	if hits := s2.Counter("store_hits"); hits < 1 {
		t.Fatalf("store_hits = %d after warm restart, want > 0", hits)
	}
	// A second identical submission hits the promoted LRU entry, not disk.
	_, third := postMapURL(t, ts2.URL, `{"circuit": "mux"}`)
	if third.Attribution.CacheTier != TierLocal {
		t.Fatalf("post-promotion tier = %q, want %q", third.Attribution.CacheTier, TierLocal)
	}
}

// TestJournalReadmitsUnfinishedJobs crash-stops a server with a job
// still running and proves the next process re-admits it under its
// original id and finishes it with the same bytes a fresh run produces.
func TestJournalReadmitsUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 1, StateDir: dir, JournalFsync: "always"})
	release := make(chan struct{})
	picked := make(chan struct{}, 1)
	realMap := s1.mapFn
	s1.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		picked <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return realMap(ctx, circuit, src, algo, opt)
	}
	ts1 := newPersistHTTP(t, s1)
	code, v := postMapURL(t, ts1.URL, `{"circuit": "z4ml", "async": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: code %d", code)
	}
	<-picked // the worker holds the job; it can never finish
	ts1.Close()
	s1.Abort()
	close(release)

	s2 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always"})
	defer shutdownNow(t, s2)
	recovered := s2.RecoveredJobs()
	req, ok := recovered[v.ID]
	if !ok {
		t.Fatalf("job %s not in RecoveredJobs (%d entries)", v.ID, len(recovered))
	}
	if req.Circuit != "z4ml" {
		t.Fatalf("recovered request circuit = %q, want z4ml", req.Circuit)
	}
	if n := s2.Counter("jobs_readmitted"); n != 1 {
		t.Fatalf("jobs_readmitted = %d, want 1", n)
	}

	ts2 := newPersistHTTP(t, s2)
	view := pollJob(t, ts2.URL, v.ID, 10*time.Second)
	if view.State != JobDone {
		t.Fatalf("re-admitted job state = %s, error %q", view.State, view.Error)
	}
	if !view.Recovered {
		t.Fatal("re-admitted job not marked recovered")
	}
	gotBytes, err := EncodeJSON(view.Result)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: a fresh, independent derivation of the same request.
	opt, _ := OptionsFromRequest(nil)
	opt.Workers = 1
	want, err := mapRequestLocal(t, "z4ml", "soi", opt)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(want) {
		t.Fatal("re-admitted job's bytes differ from a fresh Workers=1 derivation")
	}
}

// TestCrashRestartReservesTerminalJobs: a job that finished before the
// crash is re-served (journal terminal record + stored result) instead
// of 404ing its poller.
func TestCrashRestartReservesTerminalJobs(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always"})
	ts1 := newPersistHTTP(t, s1)
	code, v := postMapURL(t, ts1.URL, `{"circuit": "mux"}`)
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("submit: code %d, state %s", code, v.State)
	}
	wantBytes, _ := EncodeJSON(v.Result)
	ts1.Close()
	s1.Abort()

	s2 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always"})
	defer shutdownNow(t, s2)
	if n := s2.Counter("jobs_recovered"); n != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", n)
	}
	ts2 := newPersistHTTP(t, s2)
	view := pollJob(t, ts2.URL, v.ID, 5*time.Second)
	if view.State != JobDone || !view.Recovered || !view.Cached {
		t.Fatalf("recovered job = state %s recovered %t cached %t", view.State, view.Recovered, view.Cached)
	}
	gotBytes, _ := EncodeJSON(view.Result)
	if string(gotBytes) != string(wantBytes) {
		t.Fatal("recovered job's bytes differ from the pre-crash response")
	}
}

// TestTornResultQuarantinedNeverServed corrupts a stored record on disk
// and proves the next lookup detects, quarantines and recomputes — the
// response bytes never change.
func TestTornResultQuarantinedNeverServed(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always"})
	ts1 := newPersistHTTP(t, s1)
	_, v := postMapURL(t, ts1.URL, `{"circuit": "mux"}`)
	wantBytes, _ := EncodeJSON(v.Result)
	ts1.Close()
	shutdownNow(t, s1)

	// Flip a byte in every stored record.
	resDir := filepath.Join(dir, "results")
	ents, _ := os.ReadDir(resDir)
	if len(ents) == 0 {
		t.Fatal("no persisted results to corrupt")
	}
	for _, e := range ents {
		p := filepath.Join(resDir, e.Name())
		b, _ := os.ReadFile(p)
		b[len(b)-1] ^= 0xff
		os.WriteFile(p, b, 0o644)
	}

	s2 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always"})
	defer shutdownNow(t, s2)
	ts2 := newPersistHTTP(t, s2)
	// Boot fsck already quarantined the record; the resubmission must
	// recompute (miss), and the recovered terminal job falls back to
	// re-admission — both paths still produce the original bytes.
	if c := s2.Counter("store_corrupt"); c < 1 {
		t.Fatalf("store_corrupt = %d, want > 0", c)
	}
	code, again := postMapURL(t, ts2.URL, `{"circuit": "mux"}`)
	if code != http.StatusOK || again.State != JobDone {
		t.Fatalf("resubmit after corruption: code %d, state %s", code, again.State)
	}
	gotBytes, _ := EncodeJSON(again.Result)
	if string(gotBytes) != string(wantBytes) {
		t.Fatal("result bytes changed after corruption (must be recomputed, never served torn)")
	}
	q, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
	if len(q) == 0 {
		t.Fatal("corrupt record not quarantined")
	}
}

// TestJanitorCompactsJournalAndStore proves disk and memory evict
// together: once the janitor drops a terminal job, its journal records
// go too, and a restart no longer resurrects it.
func TestJanitorCompactsJournalAndStore(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always",
		JobRetention: 50 * time.Millisecond, CacheEntries: 4, StoreEntries: 1})
	ts1 := newPersistHTTP(t, s1)
	_, v1 := postMapURL(t, ts1.URL, `{"circuit": "mux"}`)
	_, v2 := postMapURL(t, ts1.URL, `{"circuit": "z4ml"}`)
	if v1.State != JobDone || v2.State != JobDone {
		t.Fatalf("submissions: %s / %s", v1.State, v2.State)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s1.Counter("jobs_journal_compacted") == 0 || s1.Counter("store_evicted") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never compacted: journal %d, store %d",
				s1.Counter("jobs_journal_compacted"), s1.Counter("store_evicted"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts1.Close()
	shutdownNow(t, s1)

	s2 := New(Config{Workers: 2, StateDir: dir, JournalFsync: "always"})
	defer shutdownNow(t, s2)
	if n := s2.Counter("jobs_recovered") + s2.Counter("jobs_readmitted"); n != 0 {
		t.Fatalf("compacted jobs resurrected after restart: %d", n)
	}
	if got := s2.RecoveredJobs(); len(got) != 0 {
		t.Fatalf("RecoveredJobs = %d entries after compaction", len(got))
	}
}

// TestBootQuarantinesGarbageStateDir: a state dir full of junk must
// never stop the daemon — fsck quarantines and the server starts cold.
func TestBootQuarantinesGarbageStateDir(t *testing.T) {
	dir := t.TempDir()
	resDir := filepath.Join(dir, "results")
	os.MkdirAll(resDir, 0o755)
	os.WriteFile(filepath.Join(resDir, "garbage.res"), []byte("not a record"), 0o644)
	os.WriteFile(filepath.Join(resDir, ".tmp-999"), []byte("torn temp"), 0o644)
	os.WriteFile(filepath.Join(dir, "journal.soij"), []byte("definitely not a journal"), 0o644)

	s := New(Config{Workers: 1, StateDir: dir, JournalFsync: "always"})
	defer shutdownNow(t, s)
	if c := s.Counter("store_corrupt"); c < 2 {
		t.Fatalf("store_corrupt = %d, want >= 2 (bad result + bad journal)", c)
	}
	// The tier still works after the cleanup.
	ts := newPersistHTTP(t, s)
	code, v := postMapURL(t, ts.URL, `{"circuit": "mux"}`)
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("submit on scrubbed state dir: code %d, state %s", code, v.State)
	}
}

// TestJournalFsyncFaultDegradesNotFails: an injected fsync failure
// under -journal-fsync=always costs durability counters, never jobs.
func TestJournalFsyncFaultDegradesNotFails(t *testing.T) {
	reg := faultpoint.New(1)
	reg.Arm(store.PointFsyncFail, faultpoint.Fault{Kind: faultpoint.Error, Prob: 1})

	s := New(Config{Workers: 1, StateDir: t.TempDir(), JournalFsync: "always", Faults: reg})
	defer shutdownNow(t, s)
	ts := newPersistHTTP(t, s)
	code, v := postMapURL(t, ts.URL, `{"circuit": "mux"}`)
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("submit under fsync faults: code %d, state %s, error %q", code, v.State, v.Error)
	}
	if n := s.Counter("store_write_errors"); n < 1 {
		t.Fatalf("store_write_errors = %d, want > 0", n)
	}
}

// --- helpers ---

// newPersistHTTP serves s without registering shutdown cleanup, so the
// tests control the server's death (Abort vs Shutdown) explicitly.
func newPersistHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close) // Close is idempotent; early explicit closes are fine
	return ts
}

// postMapURL is postMap against a bare base URL (the persistence tests
// juggle two servers per test, so the *httptest.Server helper variant
// is inconvenient).
func postMapURL(t *testing.T, baseURL, body string) (int, JobView) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/map: %v", err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, v
}

func shutdownNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func pollJob(t *testing.T, baseURL, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
		if resp.StatusCode == http.StatusOK &&
			(v.State == JobDone || v.State == JobFailed || v.State == JobCanceled) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after %s (state %s)", id, timeout, v.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// mapRequestLocal derives a request's result bytes with a fresh local
// pipeline run — the byte-compare oracle.
func mapRequestLocal(t *testing.T, circuit, algo string, opt mapper.Options) ([]byte, error) {
	t.Helper()
	req := &MapRequest{Circuit: circuit, Algorithm: algo}
	src, label, err := parseSource(context.Background(), req)
	if err != nil {
		return nil, err
	}
	res, err := mapNetwork(context.Background(), label, src, algo, opt)
	if err != nil {
		return nil, err
	}
	return EncodeJSON(res)
}
