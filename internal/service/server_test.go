package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postMap(t *testing.T, ts *httptest.Server, body string) (int, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/map: %v", err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, v
}

func getVars(t *testing.T, ts *httptest.Server) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	vars := make(map[string]json.RawMessage)
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode vars: %v", err)
	}
	return vars
}

func varInt(t *testing.T, vars map[string]json.RawMessage, name string) int64 {
	t.Helper()
	raw, ok := vars[name]
	if !ok {
		t.Fatalf("var %q missing from /debug/vars", name)
	}
	var n int64
	if err := json.Unmarshal(raw, &n); err != nil {
		t.Fatalf("var %q = %s is not an int", name, raw)
	}
	return n
}

// TestMapCacheHit is the tentpole acceptance check: the same built-in
// circuit submitted twice completes the second time from the cache, and
// the /debug/vars counters show exactly one miss and one hit.
func TestMapCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, first := postMap(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusOK || first.State != JobDone {
		t.Fatalf("first submit: code %d, state %s, error %q", code, first.State, first.Error)
	}
	if first.Cached {
		t.Fatal("first submission claims to be cached")
	}
	if first.Result == nil || first.Result.Stats.Gates == 0 {
		t.Fatal("first submission returned no result")
	}

	code, second := postMap(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusOK || second.State != JobDone {
		t.Fatalf("second submit: code %d, state %s, error %q", code, second.State, second.Error)
	}
	if !second.Cached {
		t.Fatal("second identical submission missed the cache")
	}

	// The cached result must be byte-identical to the computed one.
	b1, err := EncodeJSON(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeJSON(second.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cached result differs from computed result")
	}

	vars := getVars(t, ts)
	if hits := varInt(t, vars, "cache_hits"); hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
	if misses := varInt(t, vars, "cache_misses"); misses != 1 {
		t.Errorf("cache_misses = %d, want 1", misses)
	}
	if done := varInt(t, vars, "jobs_done"); done != 2 {
		t.Errorf("jobs_done = %d, want 2", done)
	}
}

// TestDifferentOptionsMissCache pins the cache key: same circuit, other
// options — the k/W/H-sweep shape — must not share an entry.
func TestDifferentOptionsMissCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	postMap(t, ts, `{"circuit": "mux"}`)
	_, v := postMap(t, ts, `{"circuit": "mux", "options": {"clock_weight": 2}}`)
	if v.Cached {
		t.Fatal("different options hit the cache")
	}
	_, v = postMap(t, ts, `{"circuit": "mux", "algorithm": "domino"}`)
	if v.Cached {
		t.Fatal("different algorithm hit the cache")
	}
	vars := getVars(t, ts)
	if hits := varInt(t, vars, "cache_hits"); hits != 0 {
		t.Errorf("cache_hits = %d, want 0", hits)
	}
}

// TestExpiredDeadlineCancels is the second tentpole acceptance check: a
// job whose deadline has already passed must come back canceled via the
// DP's context checkpoints, not run to completion.
func TestExpiredDeadlineCancels(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := postMap(t, ts, `{"circuit": "c880", "timeout_ms": -1}`)
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if v.State != JobCanceled {
		t.Fatalf("state %s (error %q), want %s", v.State, v.Error, JobCanceled)
	}
	if v.Result != nil {
		t.Error("canceled job carries a result")
	}
	if !strings.Contains(v.Error, "context deadline exceeded") {
		t.Errorf("error %q does not name the deadline", v.Error)
	}
	// The cancellation error names the node the DP stopped at; node 0 of a
	// pre-expired deadline proves no DP work was done.
	if !strings.Contains(v.Error, "canceled at node 0") {
		t.Errorf("error %q does not show an immediate abort", v.Error)
	}
	vars := getVars(t, ts)
	if n := varInt(t, vars, "jobs_canceled"); n != 1 {
		t.Errorf("jobs_canceled = %d, want 1", n)
	}
	// A canceled run must not poison the cache.
	if _, v2 := postMap(t, ts, `{"circuit": "c880"}`); v2.Cached || v2.State != JobDone {
		t.Errorf("resubmit after cancel: cached=%v state=%s", v2.Cached, v2.State)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := postMap(t, ts, `{"circuit": "z4ml", "async": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: code %d", code)
	}
	if v.ID == "" {
		t.Fatal("async submit returned no job id")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var jv JobView
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if jv.State == JobDone {
			if jv.Result == nil {
				t.Fatal("done job has no result")
			}
			break
		}
		if jv.State == JobFailed || jv.State == JobCanceled {
			t.Fatalf("job %s: %s", jv.State, jv.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", jv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInlineBenchSubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	text := `INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
g = AND(a, b)
f = OR(g, c)
`
	body, _ := json.Marshal(map[string]any{"bench": text})
	code, v := postMap(t, ts, string(body))
	if code != http.StatusOK || v.State != JobDone {
		t.Fatalf("code %d, state %s, error %q", code, v.State, v.Error)
	}
	if v.Result.Source.Inputs != 3 || v.Result.Source.Outputs != 1 {
		t.Errorf("source %+v, want 3 inputs / 1 output", v.Result.Source)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"no source":      `{}`,
		"two sources":    `{"circuit": "mux", "bench": "INPUT(a)"}`,
		"unknown name":   `{"circuit": "nope"}`,
		"bad algorithm":  `{"circuit": "mux", "algorithm": "magic"}`,
		"bad objective":  `{"circuit": "mux", "options": {"objective": "power"}}`,
		"unknown field":  `{"circuit": "mux", "bogus": 1}`,
		"malformed json": `{"circuit": `,
	} {
		code, _ := postMap(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", resp.StatusCode)
	}
}

// TestOversizedBodyRejected: a body past MaxBodyBytes gets a 413 JSON
// error, not a generic 400 or a connection reset.
func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 256})
	body, _ := json.Marshal(map[string]any{"blif": strings.Repeat("#pad\n", 200)})
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("code %d, want 413 (error %q)", resp.StatusCode, e.Error)
	}
	if !strings.Contains(e.Error, "256") {
		t.Errorf("error %q does not name the limit", e.Error)
	}
}

// TestOversizedNetworkRejected: a parseable source whose network exceeds
// MaxNetworkNodes is refused with 413 before it is queued.
func TestOversizedNetworkRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxNetworkNodes: 2})
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(`{"circuit": "mux"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("code %d, want 413 (error %q)", resp.StatusCode, e.Error)
	}
	if !strings.Contains(e.Error, "limit is 2") {
		t.Errorf("error %q does not name the node limit", e.Error)
	}
	vars := getVars(t, ts)
	if n := varInt(t, vars, "jobs_submitted"); n != 0 {
		t.Errorf("jobs_submitted = %d, want 0 (rejected before submission)", n)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		UptimeS int64  `json:"uptime_s"`
		Build   struct {
			Module    string `json:"module"`
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || v.Status != "ok" {
		t.Fatalf("healthz: code %d, status %q", resp.StatusCode, v.Status)
	}
	if v.Workers != 1 {
		t.Errorf("healthz workers = %d, want 1", v.Workers)
	}
	if v.UptimeS < 0 {
		t.Errorf("healthz uptime = %d, want >= 0", v.UptimeS)
	}
	if v.Build.GoVersion == "" {
		t.Errorf("healthz build info missing go_version: %+v", v.Build)
	}
}

func TestLatencyHistogramAppears(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	postMap(t, ts, `{"circuit": "mux", "algorithm": "rs"}`)
	vars := getVars(t, ts)
	raw, ok := vars["latency_ms_rs"]
	if !ok {
		t.Fatal("latency_ms_rs missing from /debug/vars")
	}
	var h struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatalf("histogram is not JSON: %s", raw)
	}
	if h.Count != 1 {
		t.Errorf("histogram count = %d, want 1", h.Count)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v := postMap(t, ts, `{"circuit": "z4ml", "async": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The queued job must have been drained to completion, not dropped.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jv.State != JobDone {
		t.Errorf("job after shutdown: state %s, error %q", jv.State, jv.Error)
	}

	// New submissions are refused.
	code, _ = postMap(t, ts, `{"circuit": "mux"}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: code %d, want 503", code)
	}
}

func TestQueueFullRejects(t *testing.T) {
	// One worker, one queue slot. Block the worker so occupancy is
	// deterministic: job 1 runs (blocked), job 2 queues, job 3 overflows.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	inner := s.mapFn
	s.mapFn = func(ctx context.Context, circuit string, src *logic.Network, algo string, opt mapper.Options) (*MapResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return inner(ctx, circuit, src, algo, opt)
	}
	defer close(release)

	submit := func(i int) int {
		// Distinct clock weights keep the submissions out of each other's
		// cache entries.
		code, _ := postMap(t, ts,
			fmt.Sprintf(`{"circuit": "mux", "async": true, "options": {"clock_weight": %d}}`, i))
		return code
	}
	if code := submit(1); code != http.StatusAccepted {
		t.Fatalf("job 1: code %d", code)
	}
	// Wait until the worker has taken job 1 off the queue.
	deadline := time.Now().Add(5 * time.Second)
	for varInt(t, getVars(t, ts), "jobs_running") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up job 1")
		}
		time.Sleep(time.Millisecond)
	}
	if code := submit(2); code != http.StatusAccepted {
		t.Fatalf("job 2: code %d", code)
	}
	// Overflow is overload, not shutdown: 429, not 503.
	if code := submit(3); code != http.StatusTooManyRequests {
		t.Fatalf("job 3: code %d, want 429", code)
	}
	if n := varInt(t, getVars(t, ts), "jobs_rejected"); n != 1 {
		t.Errorf("jobs_rejected = %d, want 1", n)
	}
}

func TestSweepSharesCanonicalHash(t *testing.T) {
	// A W/H sweep over one circuit: every variant after the first two
	// submissions of each option set should hit.
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, w := range []int{4, 5} {
		body := fmt.Sprintf(`{"circuit": "cordic", "options": {"max_width": %d}}`, w)
		if _, v := postMap(t, ts, body); v.Cached {
			t.Fatalf("w=%d: first submission cached", w)
		}
		if _, v := postMap(t, ts, body); !v.Cached {
			t.Fatalf("w=%d: repeat submission missed", w)
		}
	}
}
