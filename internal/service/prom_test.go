package service

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"soidomino/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureMetrics builds a metrics set with fully deterministic contents.
func fixtureMetrics() *metrics {
	m := newMetrics()
	m.add("jobs_submitted", 5)
	m.add("jobs_done", 3)
	m.add("jobs_failed", 1)
	m.add("cache_hits", 2)
	m.add("cache_misses", 3)
	m.jobsQueued.Set(1)
	m.jobsRunning.Set(2)
	m.observe("soi", 3*time.Millisecond)
	m.observe("soi", 40*time.Millisecond)
	m.observe("soi", 20*time.Second) // overflow bucket
	m.observe("domino", 7*time.Millisecond)
	m.recordEngine("soi", &obs.Stats{
		Nodes: 245, TuplesGenerated: 684, TuplesPruned: 193, TuplesKept: 491,
		CombineOr: 553, CombineAndOrdered: 131, CombineAndReordered: 0,
		FrontierHighWater: 7, DPDischargeCharges: 4, CancelChecks: 316,
		StrashMerged: 12, StrashFolded: 3, StrashDead: 7,
		Phases: obs.PhaseTimes{
			Strash:    41 * time.Microsecond,
			Decompose: 179 * time.Microsecond, Unate: 261 * time.Microsecond,
			DP: 911 * time.Microsecond, Traceback: 429 * time.Microsecond,
		},
	})
	m.recordEngine("soi", &obs.Stats{Nodes: 5, TuplesGenerated: 8, TuplesKept: 8,
		CombineOr: 4, CombineAndOrdered: 2, CombineAndReordered: 2, FrontierHighWater: 3,
		CancelChecks: 10})
	m.recordEngine("domino", &obs.Stats{Nodes: 3, TuplesGenerated: 6, TuplesPruned: 2,
		TuplesKept: 4, CombineOr: 4, CombineAndOrdered: 2, FrontierHighWater: 2,
		DPDischargeCharges: 2, CancelChecks: 7})
	return m
}

// TestPromExpositionGolden pins the full /metrics rendering byte-for-byte:
// the exposition format is an external contract (Prometheus scrapers parse
// it), so any drift must be a conscious choice.
func TestPromExpositionGolden(t *testing.T) {
	build := obs.BuildInfo{
		Module: "soidomino", Version: "(devel)",
		GoVersion: "go1.99", Revision: "deadbeefcafe",
	}
	var buf bytes.Buffer
	if err := writePromText(&buf, fixtureMetrics(), 90*time.Second, build); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden (run with -update if intended):\n%s", buf.String())
	}
}

// TestMetricsEndpoint exercises the live handler: content type, and that
// a mapped job's engine stats show up in the scrape.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	if code, v := postMap(t, ts, `{"circuit": "mux", "algorithm": "soi"}`); v.State != JobDone {
		t.Fatalf("map failed: code %d, state %s (%s)", code, v.State, v.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		"# TYPE soimapd_jobs_done_total counter",
		"soimapd_jobs_done_total 1",
		`soimapd_dp_nodes_total{algorithm="soi"}`,
		`soimapd_dp_tuples_total{algorithm="soi",state="generated"}`,
		`soimapd_map_latency_ms_count{algorithm="soi"} 1`,
		"soimapd_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}
