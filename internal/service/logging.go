package service

import (
	"io"
	"log/slog"
	"net/http"
	"time"

	"soidomino/internal/obs"
)

// discardLogger is the default when Config.Logger is nil: logging is
// opt-in, and the many servers the tests spin up stay silent.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// withLogging wraps the API mux with request identification and
// structured access logging. Every request gets a server-unique id,
// echoed in the X-Request-ID response header and attached to the request
// context (obs.WithRequestID), from where handleMap copies it into the
// job — so the access line, the job lifecycle lines and any mapper trace
// metadata all correlate on one id.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.nextRequestID()
		ctx := obs.WithRequestID(r.Context(), id)
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("duration", time.Since(start)),
		)
	})
}

// statusRecorder captures the status code and body size for the access
// log line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}
