package service

import (
	"io"
	"log/slog"
	"net/http"
	"time"

	"soidomino/internal/obs"
)

// discardLogger is the default when Config.Logger is nil: logging is
// opt-in, and the many servers the tests spin up stay silent.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// withLogging wraps the API mux with request identification, trace
// propagation and structured access logging. A well-formed incoming
// X-Request-ID (from soirouter or a client) is adopted so router and
// replica log lines join on one id; otherwise a server-unique id is
// minted. Either way it is echoed in the X-Request-ID response header
// and attached to the request context (obs.WithRequestID), from where
// handleMap copies it into the job — so the access line, the job
// lifecycle lines and any mapper trace metadata all correlate.
//
// Trace propagation: an incoming traceparent header is parsed into the
// context (honoring the caller's sampled bit); absent one, every
// TraceSample-th POST /v1/map starts a fresh sampled trace. Sampled
// requests record a server span in the trace hub and log their trace id.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if !obs.ValidRequestID(id) {
			id = s.nextRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)

		tc, traced := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		if !traced && s.cfg.TraceSample > 0 &&
			r.Method == http.MethodPost && r.URL.Path == "/v1/map" &&
			s.traceSeq.Add(1)%int64(s.cfg.TraceSample) == 0 {
			tc, traced = obs.NewTraceContext(), true
		}
		var reqSpan *obs.ActiveSpan
		if traced {
			ctx = obs.WithTraceContext(ctx, tc)
			ctx, reqSpan = s.hub.StartSpan(ctx, "http", r.Method+" "+r.URL.Path)
		}

		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		reqSpan.End(obs.KV{Key: "status", Val: int64(rec.status)})
		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("duration", time.Since(start)),
		}
		if traced && tc.Sampled {
			attrs = append(attrs, slog.String("trace_id", tc.TraceID))
		}
		s.logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
	})
}

// statusRecorder captures the status code and body size for the access
// log line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}
