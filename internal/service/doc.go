// Package service implements soimapd, the concurrent SOI domino mapping
// service: an HTTP/JSON API over the mappers in internal/mapper, backed
// by a bounded worker pool and a canonical-network result cache.
//
// # API
//
//	POST /v1/map       submit a mapping job (inline BLIF/.bench text or a
//	                   built-in benchmark name); synchronous by default,
//	                   {"async": true} enqueues and returns immediately
//	GET  /v1/jobs/{id} job status and, once done, the result
//	GET  /healthz      liveness probe
//	GET  /debug/vars   expvar counters (jobs, cache, latency histograms)
//
// # Caching
//
// Results are cached in an LRU (internal/service/cache) keyed by the
// canonical hash of the submitted network (internal/canon) combined with
// the algorithm and mapper options. Submitting the same circuit twice —
// the common case when sweeping k/W/H, where only the options part of
// the key changes — answers the repeat from the cache without running
// the dynamic program.
//
// # Cancellation
//
// Every job carries a deadline (request timeout_ms, capped by the
// server's MaxTimeout). The worker runs the mapper through its Context
// variants, which observe cancellation at node-processing checkpoints,
// so an expired or abandoned job stops mid-DP instead of running to
// completion.
//
// # Encoding
//
// The job result type (MapResult, encode.go) is shared with the soimap
// CLI's -json flag: for the same circuit, algorithm and options the
// daemon and the CLI produce byte-identical JSON.
package service
