package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"soidomino/internal/service"
)

// fakeJob answers every successful request with a fixed done job.
func fakeJob(w http.ResponseWriter) {
	json.NewEncoder(w).Encode(service.JobView{ID: "j1", State: service.JobDone})
}

// newClient builds a Client against url with deterministic jitter (always
// the full ceiling) and a sleep recorder instead of real sleeping.
func newClient(url string, slept *[]time.Duration, cfg Config) *Client {
	cfg.BaseURL = url
	cfg.Rand = func() float64 { return 0.999999 }
	cfg.Sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
	return New(cfg)
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		fakeJob(w)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second})
	v, err := c.Map(context.Background(), &service.MapRequest{Circuit: "mux"})
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.JobDone {
		t.Fatalf("state %s", v.State)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	// Full jitter with rand≈1: delays approach 100ms then 200ms.
	if len(slept) != 2 || slept[0] > 100*time.Millisecond || slept[1] > 200*time.Millisecond ||
		slept[1] <= slept[0] {
		t.Fatalf("backoff schedule %v not exponential under the ceiling", slept)
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		fakeJob(w)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{BaseDelay: time.Millisecond})
	if _, err := c.Map(context.Background(), &service.MapRequest{Circuit: "mux"}); err != nil {
		t.Fatal(err)
	}
	// The jittered delay (≤1ms) must have been raised to the server's 2s.
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want the server's 2s Retry-After", slept)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown benchmark"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{})
	_, err := c.Map(context.Background(), &service.MapRequest{Circuit: "nope"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d: client retried a 400", calls.Load())
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v on a non-retryable error", slept)
	}
}

func TestBudgetCapsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{
		MaxAttempts: 10, BaseDelay: 300 * time.Millisecond, Budget: 500 * time.Millisecond,
	})
	_, err := c.Map(context.Background(), &service.MapRequest{Circuit: "mux"})
	if err == nil {
		t.Fatal("expected an error")
	}
	// Delay ceilings: ~300ms, ~600ms, ... The first fits the 500ms
	// budget, the second would blow it, so exactly one sleep happened.
	if len(slept) != 1 {
		t.Fatalf("slept %v, want exactly one backoff before the budget ran out", slept)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("budget error %v does not wrap the last server error", err)
	}
}

// TestRetryAfterFloorExceedingBudgetFailsFast pins the interaction of the
// Retry-After floor with the sleep budget: when the server demands a wait
// the budget cannot cover, the client must not sleep at all — it fails
// immediately, and the error still unwraps to the server's APIError.
func TestRetryAfterFloorExceedingBudgetFailsFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "10")
		http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{
		MaxAttempts: 10, BaseDelay: time.Millisecond, Budget: 500 * time.Millisecond,
	})
	start := time.Now()
	_, err := c.Map(context.Background(), &service.MapRequest{Circuit: "mux"})
	if err == nil {
		t.Fatal("expected the budget to kill the call")
	}
	// The 10s floor exceeds the 500ms budget, so the one legal outcome is
	// zero sleeps: the floor is checked against the budget before sleeping.
	if len(slept) != 0 {
		t.Fatalf("slept %v, want none (floor 10s > budget 500ms must fail fast)", slept)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want a wrapped 429 APIError", err)
	}
	if apiErr.RetryAfter != 10*time.Second {
		t.Fatalf("RetryAfter = %s, want 10s", apiErr.RetryAfter)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fail-fast path took %s", elapsed)
	}
}

// TestCancellationDuringBackoffReturnsPromptly uses the real default
// Sleep: canceling the context mid-backoff must wake the client at once
// with an error that unwraps to context.Canceled.
func TestCancellationDuringBackoffReturnsPromptly(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	// Rand≈1 pins the first backoff at ~2s; Sleep is left nil so the
	// production path (timer vs ctx.Done) is what gets exercised.
	c := New(Config{
		BaseURL:   ts.URL,
		BaseDelay: 2 * time.Second,
		Rand:      func() float64 { return 0.999999 },
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Map(ctx, &service.MapRequest{Circuit: "mux"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to be unwrappable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %s to surface; backoff slept through it", elapsed)
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{MaxAttempts: 3, BaseDelay: time.Millisecond})
	_, err := c.Map(context.Background(), &service.MapRequest{Circuit: "mux"})
	if err == nil {
		t.Fatal("expected failure")
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestMapWaitPollsToTerminal(t *testing.T) {
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.JobView{ID: "j7", State: service.JobQueued})
	})
	mux.HandleFunc("GET /v1/jobs/j7", func(w http.ResponseWriter, r *http.Request) {
		state := service.JobRunning
		if polls.Add(1) >= 3 {
			state = service.JobDone
		}
		json.NewEncoder(w).Encode(service.JobView{ID: "j7", State: state})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{})
	v, err := c.MapWait(context.Background(), &service.MapRequest{Circuit: "mux"}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.JobDone || polls.Load() != 3 {
		t.Fatalf("state %s after %d polls", v.State, polls.Load())
	}
}

// restartWindowHandler simulates a replica restart as the client sees
// it: first dropped connections (the process is gone), then 503s with a
// Retry-After hint (the replacement is booting or draining), then a
// recovered terminal job re-served from the journal.
func restartWindowHandler(calls *atomic.Int64, view service.JobView) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch n := calls.Add(1); {
		case n <= 2:
			// Crash window: kill the connection without a response.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
		case n <= 4:
			// Boot window: up but not ready, with a retry hint.
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			json.NewEncoder(w).Encode(view)
		}
	}
}

// TestRetriesAcrossRestartWindow walks one Map call through a full
// replica restart: connection drops, then 503 drain responses whose
// Retry-After floor must override the computed backoff, then success.
func TestRetriesAcrossRestartWindow(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(restartWindowHandler(&calls,
		service.JobView{ID: "j1", State: service.JobDone, Cached: true, Recovered: true}))
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Budget:      10 * time.Second,
	})
	v, err := c.Map(context.Background(), &service.MapRequest{Circuit: "mux"})
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.JobDone || !v.Recovered {
		t.Fatalf("got %s (recovered=%v), want a recovered done job", v.State, v.Recovered)
	}
	if calls.Load() != 5 {
		t.Fatalf("calls = %d, want 5 (2 drops, 2 drains, 1 success)", calls.Load())
	}
	if len(slept) != 4 {
		t.Fatalf("slept %d times, want 4", len(slept))
	}
	// The two sleeps after the 503s must honor the 1s Retry-After floor;
	// the transport-error sleeps stay under the plain backoff ceiling.
	if slept[0] > 10*time.Millisecond || slept[1] > 20*time.Millisecond {
		t.Errorf("crash-window backoffs %v exceed the exponential ceiling", slept[:2])
	}
	if slept[2] < time.Second || slept[3] < time.Second {
		t.Errorf("drain-window backoffs %v ignore the 1s Retry-After floor", slept[2:])
	}
}

// TestPollerConvergesOnReservedJob drives the Job poller through the
// same restart window: the job id survives the restart (the journal
// re-created it), so polling the original id must converge on the
// re-served terminal job instead of 404ing.
func TestPollerConvergesOnReservedJob(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(restartWindowHandler(&calls,
		service.JobView{ID: "j7", State: service.JobDone, Cached: true, Recovered: true}))
	defer ts.Close()

	var slept []time.Duration
	c := newClient(ts.URL, &slept, Config{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Budget:      10 * time.Second,
	})
	v, err := c.Job(context.Background(), "j7")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "j7" || v.State != service.JobDone || !v.Recovered {
		t.Fatalf("poll converged on %s/%s (recovered=%v), want done j7 re-served from the journal",
			v.ID, v.State, v.Recovered)
	}
}

// TestRestartBackoffHonorsCancellation cancels the caller's context
// while the client is waiting out a restart window: the retry loop must
// return the context error promptly instead of burning the remaining
// attempts against a dead replica.
func TestRestartBackoffHonorsCancellation(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var slept []time.Duration
	cfg := Config{
		BaseURL:     ts.URL,
		MaxAttempts: 8,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Budget:      10 * time.Second,
	}
	cfg.Rand = func() float64 { return 0.999999 }
	// The caller gives up mid-wait: the cancellation lands while the
	// retry loop is inside its first backoff sleep.
	cfg.Sleep = func(c context.Context, d time.Duration) error {
		slept = append(slept, d)
		cancel()
		return c.Err()
	}
	c := New(cfg)
	_, err := c.Map(ctx, &service.MapRequest{Circuit: "mux"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the backoff wait", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1: cancellation must stop the retry loop at the first backoff", calls.Load())
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want exactly the interrupted backoff", len(slept))
	}
}
