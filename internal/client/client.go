// Package client is the resilient HTTP client of the mapping service:
// it submits MapRequests to a soimapd instance and retries transient
// failures — transport errors, 429 overload, 5xx — with capped
// exponential backoff and full jitter, honoring the server's Retry-After
// hints, under a total back-off time budget.
//
// Retrying POST /v1/map is safe: mapping is deterministic and the server
// caches by canonical network + options, so a duplicate submission is a
// cache hit, not duplicated work.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"soidomino/internal/obs"
	"soidomino/internal/service"
)

// Config shapes a Client. The zero value of any field selects the
// documented default.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// MaxAttempts bounds tries per call (first try included; default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms): the delay
	// before attempt n is uniform in [0, min(MaxDelay, BaseDelay·2ⁿ)] —
	// "full jitter", which spreads synchronized retry storms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff delay (default 5s).
	MaxDelay time.Duration
	// Budget caps the total time spent sleeping between retries across
	// one call (default 30s). When the next delay would exceed what is
	// left, the call gives up and returns the last error.
	Budget time.Duration
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Rand supplies jitter in [0,1); nil uses math/rand. Tests inject a
	// deterministic source.
	Rand func() float64
	// Sleep overrides the inter-retry wait; nil sleeps honoring ctx.
	// Tests inject a recorder to assert the backoff schedule.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 100 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Second
	}
	if c.Budget <= 0 {
		c.Budget = 30 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return c
}

// Client talks to one soimapd instance. Create with New; safe for
// concurrent use.
type Client struct {
	cfg Config
}

// New returns a Client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults()}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// retryable reports whether an attempt outcome is worth retrying:
// transport errors, overload (429) and server-side failures (5xx).
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusTooManyRequests || apiErr.Status >= 500
	}
	// Anything else reaching the retry loop is a transport error.
	return true
}

// Map submits a mapping request and returns the resulting job view (the
// finished job for synchronous submissions, the queued one for async).
func (c *Client) Map(ctx context.Context, req *service.MapRequest) (*service.JobView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.doJSON(ctx, http.MethodPost, "/v1/map", body)
}

// Job fetches one job's current view.
func (c *Client) Job(ctx context.Context, id string) (*service.JobView, error) {
	return c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
}

// MapWait submits asynchronously and polls until the job reaches a
// terminal state, honoring ctx. poll <= 0 selects 50ms.
func (c *Client) MapWait(ctx context.Context, req *service.MapRequest, poll time.Duration) (*service.JobView, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	async := *req
	async.Async = true
	v, err := c.Map(ctx, &async)
	if err != nil {
		return nil, err
	}
	for !terminal(v.State) {
		if err := c.cfg.Sleep(ctx, poll); err != nil {
			return nil, fmt.Errorf("polling job %s interrupted: %w", v.ID, err)
		}
		if v, err = c.Job(ctx, v.ID); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func terminal(s service.JobState) bool {
	return s == service.JobDone || s == service.JobFailed || s == service.JobCanceled
}

// Explain fetches one job's per-request cost attribution
// (GET /v1/jobs/{id}/explain).
func (c *Client) Explain(ctx context.Context, id string) (*service.ExplainView, error) {
	var ev service.ExplainView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/explain", nil, &ev); err != nil {
		return nil, err
	}
	return &ev, nil
}

// TraceSpans fetches one distributed trace's raw spans as recorded by
// the server's own trace hub (GET /v1/traces/{id}?raw=1). soirouter uses
// it to stitch a fleet-wide trace from every replica's spans.
func (c *Client) TraceSpans(ctx context.Context, traceID string) ([]obs.Span, error) {
	var spans []obs.Span
	if err := c.do(ctx, http.MethodGet, "/v1/traces/"+traceID+"?raw=1", nil, &spans); err != nil {
		return nil, err
	}
	return spans, nil
}

// Trace fetches one stitched trace rendered as Perfetto-loadable Chrome
// trace-event JSON (GET /v1/traces/{id}).
func (c *Client) Trace(ctx context.Context, traceID string) ([]byte, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/traces/"+traceID, nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// doJSON runs one job-view call through the retry loop.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte) (*service.JobView, error) {
	var v service.JobView
	if err := c.do(ctx, method, path, body, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// do runs one logical call through the retry loop, decoding the 2xx
// response into out.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	var slept time.Duration
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt-1, lastErr)
			// The budget check runs before the sleep: a Retry-After floor
			// that no longer fits the remaining budget fails fast with the
			// last server error instead of sleeping into a lost cause.
			if slept+d > c.cfg.Budget {
				return fmt.Errorf("retry budget %s exhausted after %d attempts: %w",
					c.cfg.Budget, attempt, lastErr)
			}
			if err := c.cfg.Sleep(ctx, d); err != nil {
				// Keep the context error unwrappable (errors.Is) while
				// recording what the retry loop was waiting out.
				return fmt.Errorf("backoff before attempt %d interrupted (last error: %v): %w",
					attempt+1, lastErr, err)
			}
			slept += d
		}
		err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if !retryable(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// backoff computes the wait before the next try: full jitter over the
// exponential cap, but never earlier than the server's Retry-After.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	ceil := c.cfg.MaxDelay
	if shifted := c.cfg.BaseDelay << attempt; shifted < ceil && shifted > 0 {
		ceil = shifted
	}
	d := time.Duration(c.cfg.Rand() * float64(ceil))
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// once performs a single HTTP attempt, decoding a 2xx body into out.
// The context's request id and trace context propagate as X-Request-ID
// and traceparent headers, so the server joins the caller's trace and
// log story (identifiers only — they never influence the request body,
// and therefore never the cache or routing key).
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	if tc := obs.TraceContextFrom(ctx); tc.Sampled && tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		apiErr := &APIError{Status: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil {
			apiErr.Message = e.Error
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return apiErr
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}
