// Package tuple implements the dynamic-programming sub-solution records of
// the domino technology mappers. Following Zhao–Sapatnekar (ICCAD '98) each
// logic node carries one best partial pulldown structure per {W,H}
// (width, height) configuration; the SOI mapper (paper §V) extends the
// 3-tuple {W,H,cost} to a 6-tuple that also tracks p_dis (potential
// discharge points), par_b (parallel branch at the bottom) and whether the
// structure contains primary-input-driven transistors.
//
// The ordering of tuples is supplied by the mapper: the SOI algorithm
// breaks cost ties by p_dis, while the bulk baseline must stay PBE-blind.
package tuple

import "fmt"

// Key indexes a tuple table by pulldown width and height.
type Key struct {
	W, H int
}

func (k Key) String() string { return fmt.Sprintf("{%d,%d}", k.W, k.H) }

// DerivOp records how a tuple was constructed, for solution traceback.
type DerivOp uint8

const (
	// DerivLeaf is a single transistor driven by a primary input or an
	// inverted primary-input literal.
	DerivLeaf DerivOp = iota
	// DerivGateInput is a single transistor driven by the output of a
	// completed domino gate (the child node's {1,1} gate solution).
	DerivGateInput
	// DerivOr composes two child structures in parallel.
	DerivOr
	// DerivAnd composes two child structures in series; TopIsA records the
	// stack order chosen.
	DerivAnd
)

// Choice identifies one child sub-solution used in a derivation: a node
// and the tuple taken from it. Gate == true means the child's completed
// gate output was used instead of a raw structure. In the paper's
// single-tuple mode the {W,H} Key addresses the tuple; in Pareto mode the
// (Front, Index) pair addresses an entry of the child's frontier.
type Choice struct {
	Node int
	Key  Key
	Gate bool

	Pareto bool
	Front  FKey
	Index  int
}

// Deriv is the traceback record attached to each tuple.
type Deriv struct {
	Op     DerivOp
	Leaf   int // unate node id for DerivLeaf / DerivGateInput
	A, B   Choice
	TopIsA bool // DerivAnd: A is the top of the series stack
}

// Tuple is one dynamic-programming sub-solution: a partial pulldown
// structure for a logic node. Cost components are kept separately so the
// same engine serves the area, clock-weighted and depth objectives.
type Tuple struct {
	W, H int

	// NTrans counts non-clock transistors: the structure's own pulldown
	// devices plus the pulldown, output-inverter and keeper devices of
	// every completed gate beneath it.
	NTrans int
	// NClock counts clock-driven transistors of completed gates beneath
	// (p-clock and n-clock feet).
	NClock int
	// NDisch counts p-discharge transistors already materialized beneath
	// (they are clock-driven too, but reported separately as the paper's
	// T_disch).
	NDisch int
	// OwnDisch is the subset of NDisch materialized inside this partial
	// structure itself (series combinations that buried a parallel
	// bottom), excluding discharges carried in from completed gates
	// beneath. At gate formation it is the DP's prediction of how many
	// p-discharge devices the gate's own pulldown tree will carry, which
	// the structural analysis (internal/pbe) must reproduce exactly; the
	// fuzzing oracles cross-check the two.
	OwnDisch int
	// NGates counts completed domino gates beneath.
	NGates int
	// Depth is the number of domino-gate levels beneath the structure
	// (the maximum over the completed gates feeding it).
	Depth int

	// PDis is the paper's p_dis: potential discharge points that must be
	// discharged unless the structure's bottom reaches ground.
	PDis int
	// PDisBot is the subset of PDis belonging to the structure's
	// bottom-most parallel stack (all of PDis for a bare parallel
	// composition, 0 when ParB is false). When something is stacked below
	// the structure, exactly these points — plus the new junction — must
	// materialize as discharge devices; the remaining PDis points sit
	// below non-parallel elements and are rescued by grounding the
	// enclosing gate. Tracking the split keeps the DP's discharge count
	// identical to the structural analysis of the flattened tree
	// (internal/pbe) for every association order.
	PDisBot int
	// ParB is the paper's par_b: the structure has a parallel branch at
	// its bottom.
	ParB bool
	// HasPI reports whether any transistor is driven by a primary input,
	// which forces an n-clock foot at gate formation.
	HasPI bool

	Deriv Deriv
}

// Key returns the table key of the tuple.
func (t Tuple) Key() Key { return Key{t.W, t.H} }

// Less is a strict ordering over tuples; a Less(a, b) == true means a is a
// strictly better sub-solution than b.
type Less func(a, b Tuple) bool

// Table holds the best tuple found so far for each {W,H}.
type Table map[Key]Tuple

// Insert records t if it is the first or strictly better tuple for its
// key, returning whether the table changed. On a full tie the incumbent is
// kept, so deterministic insertion order yields deterministic tables.
func (tb Table) Insert(t Tuple, less Less) bool {
	k := t.Key()
	if prev, ok := tb[k]; ok && !less(t, prev) {
		return false
	}
	tb[k] = t
	return true
}

// Best returns the minimum tuple over the whole table under less, with a
// final deterministic tie-break on {W,H} so map iteration order never
// leaks into results. The boolean is false for an empty table.
func (tb Table) Best(less Less) (Tuple, bool) {
	var best Tuple
	found := false
	for _, t := range tb {
		switch {
		case !found || less(t, best):
			best, found = t, true
		case !less(best, t): // full tie: break on key
			if t.W < best.W || (t.W == best.W && t.H < best.H) {
				best = t
			}
		}
	}
	return best, found
}

// Keys returns the number of populated {W,H} slots.
func (tb Table) Keys() int { return len(tb) }

// SortedKeys returns the table's keys ordered by (W, H), giving callers a
// deterministic iteration order.
func (tb Table) SortedKeys() []Key {
	keys := make([]Key, 0, len(tb))
	for k := range tb {
		keys = append(keys, k)
	}
	// Insertion sort: tables hold at most MaxWidth*MaxHeight entries.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func keyLess(a, b Key) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	return a.H < b.H
}
