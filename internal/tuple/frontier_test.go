package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func fCost(t Tuple) int { return t.NTrans + t.NClock + t.NDisch }

func TestFrontierInsertDominance(t *testing.T) {
	f := Frontier{}
	a := Tuple{W: 2, H: 2, NTrans: 5, PDis: 2, PDisBot: 1}
	if !f.Insert(a, fCost) {
		t.Fatal("first insert rejected")
	}
	// Dominated on every axis: rejected.
	worse := Tuple{W: 2, H: 2, NTrans: 6, PDis: 3, PDisBot: 2}
	if f.Insert(worse, fCost) {
		t.Error("dominated tuple accepted")
	}
	// Incomparable (cheaper but more potential points): kept alongside.
	inc := Tuple{W: 2, H: 2, NTrans: 4, PDis: 4, PDisBot: 4}
	if !f.Insert(inc, fCost) {
		t.Error("incomparable tuple rejected")
	}
	if f.Size() != 2 {
		t.Errorf("size = %d, want 2", f.Size())
	}
	// A dominator sweeps both out.
	dom := Tuple{W: 2, H: 2, NTrans: 4, PDis: 2, PDisBot: 1}
	if !f.Insert(dom, fCost) {
		t.Error("dominator rejected")
	}
	if f.Size() != 1 {
		t.Errorf("size after sweep = %d, want 1", f.Size())
	}
}

func TestFrontierSeparatesState(t *testing.T) {
	f := Frontier{}
	// Same {W,H} and costs, different ParB/HasPI: distinct keys.
	f.Insert(Tuple{W: 2, H: 2, NTrans: 4, ParB: true}, fCost)
	f.Insert(Tuple{W: 2, H: 2, NTrans: 4, ParB: false}, fCost)
	f.Insert(Tuple{W: 2, H: 2, NTrans: 4, ParB: false, HasPI: true}, fCost)
	if len(f) != 3 || f.Size() != 3 {
		t.Errorf("keys = %d, size = %d; want 3, 3", len(f), f.Size())
	}
}

func TestFrontierTieKeepsIncumbent(t *testing.T) {
	f := Frontier{}
	a := Tuple{W: 1, H: 2, NTrans: 3, NGates: 1}
	b := Tuple{W: 1, H: 2, NTrans: 3, NGates: 9} // identical under dominance
	f.Insert(a, fCost)
	if f.Insert(b, fCost) {
		t.Error("exact tie should keep the incumbent")
	}
	it, ok := f.Lookup(FKeyOf(a), 0)
	if !ok || it.NGates != 1 {
		t.Error("incumbent replaced")
	}
}

func TestFrontierLookupBounds(t *testing.T) {
	f := Frontier{}
	a := Tuple{W: 1, H: 1, NTrans: 1}
	f.Insert(a, fCost)
	if _, ok := f.Lookup(FKeyOf(a), 1); ok {
		t.Error("out-of-range lookup succeeded")
	}
	if _, ok := f.Lookup(FKey{Key: Key{9, 9}}, 0); ok {
		t.Error("missing-key lookup succeeded")
	}
}

func TestFrontierCap(t *testing.T) {
	f := Frontier{}
	// Build a long antichain: cost i, PDis MaxFrontier*2-i (strictly
	// incomparable pairs).
	n := MaxFrontier * 2
	for i := 0; i < n; i++ {
		f.Insert(Tuple{W: 3, H: 3, NTrans: i, PDis: n - i, PDisBot: n - i}, fCost)
	}
	if f.Size() > MaxFrontier {
		t.Errorf("cap not enforced: %d", f.Size())
	}
	// The cheapest entry must have survived the eviction policy.
	best, ok := f.Best(func(a, b Tuple) bool { return fCost(a) < fCost(b) })
	if !ok || best.Tuple.NTrans != 0 {
		t.Errorf("cheapest entry evicted: %+v", best)
	}
}

func TestFrontierAllDeterministic(t *testing.T) {
	build := func() Frontier {
		f := Frontier{}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 40; i++ {
			f.Insert(Tuple{
				W: 1 + rng.Intn(3), H: 1 + rng.Intn(3),
				NTrans: rng.Intn(10), PDis: rng.Intn(5),
				ParB: rng.Intn(2) == 0, HasPI: rng.Intn(2) == 0,
			}, fCost)
		}
		return f
	}
	a, b := build().All(), build().All()
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i].FKey != b[i].FKey || a[i].Index != b[i].Index || a[i].Tuple.NTrans != b[i].Tuple.NTrans {
			t.Fatal("nondeterministic order")
		}
	}
}

// Property: no frontier entry dominates another, and All() addresses
// resolve through Lookup.
func TestFrontierInvariantQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(21))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr := Frontier{}
		for i := 0; i < 50; i++ {
			fr.Insert(Tuple{
				W: 1 + rng.Intn(2), H: 1 + rng.Intn(2),
				NTrans: rng.Intn(12), NDisch: rng.Intn(4),
				PDis: rng.Intn(6), PDisBot: rng.Intn(3), Depth: rng.Intn(3),
			}, fCost)
		}
		for _, entries := range fr {
			for i := range entries {
				for j := range entries {
					if i != j && dominates(entries[i], entries[j], fCost) {
						return false
					}
				}
			}
		}
		for _, it := range fr.All() {
			got, ok := fr.Lookup(it.FKey, it.Index)
			if !ok || got.NTrans != it.Tuple.NTrans {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
