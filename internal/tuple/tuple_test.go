package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func areaCost(t Tuple) int { return t.NTrans + t.NClock + t.NDisch }

// areaLess mirrors the SOI mapper's ordering: cost, then p_dis.
func areaLess(a, b Tuple) bool {
	if ca, cb := areaCost(a), areaCost(b); ca != cb {
		return ca < cb
	}
	return a.PDis < b.PDis
}

func TestKeyString(t *testing.T) {
	if got := (Key{2, 3}).String(); got != "{2,3}" {
		t.Errorf("Key.String = %q", got)
	}
}

func TestTupleKey(t *testing.T) {
	tu := Tuple{W: 3, H: 4}
	if tu.Key() != (Key{3, 4}) {
		t.Errorf("Key() = %v", tu.Key())
	}
}

func TestInsertKeepsBest(t *testing.T) {
	tb := Table{}
	if !tb.Insert(Tuple{W: 2, H: 2, NTrans: 10}, areaLess) {
		t.Error("first insert should succeed")
	}
	if !tb.Insert(Tuple{W: 2, H: 2, NTrans: 4}, areaLess) {
		t.Error("better insert should succeed")
	}
	if tb.Insert(Tuple{W: 2, H: 2, NTrans: 9}, areaLess) {
		t.Error("worse insert should be rejected")
	}
	if got := tb[Key{2, 2}].NTrans; got != 4 {
		t.Errorf("kept NTrans = %d, want 4", got)
	}
	if tb.Keys() != 1 {
		t.Errorf("Keys = %d, want 1", tb.Keys())
	}
}

func TestInsertTieKeepsIncumbent(t *testing.T) {
	tb := Table{}
	first := Tuple{W: 2, H: 2, NTrans: 4, NGates: 1}
	second := Tuple{W: 2, H: 2, NTrans: 4, NGates: 2}
	tb.Insert(first, areaLess)
	if tb.Insert(second, areaLess) {
		t.Error("tie should keep the incumbent")
	}
	if tb[Key{2, 2}].NGates != 1 {
		t.Error("incumbent replaced on tie")
	}
}

func TestInsertPDisTieBreak(t *testing.T) {
	tb := Table{}
	tb.Insert(Tuple{W: 2, H: 2, NTrans: 4, PDis: 3}, areaLess)
	if !tb.Insert(Tuple{W: 2, H: 2, NTrans: 4, PDis: 1}, areaLess) {
		t.Error("lower p_dis at equal cost should win (paper's tie-break)")
	}
	if tb[Key{2, 2}].PDis != 1 {
		t.Error("p_dis tie-break not applied")
	}
}

func TestInsertSeparateKeys(t *testing.T) {
	tb := Table{}
	tb.Insert(Tuple{W: 1, H: 2, NTrans: 2}, areaLess)
	tb.Insert(Tuple{W: 2, H: 1, NTrans: 9}, areaLess)
	if tb.Keys() != 2 {
		t.Errorf("Keys = %d, want 2", tb.Keys())
	}
}

func TestBestEmptyTable(t *testing.T) {
	tb := Table{}
	if _, ok := tb.Best(areaLess); ok {
		t.Error("Best on empty table should report false")
	}
}

func TestBestPicksMinimum(t *testing.T) {
	tb := Table{}
	tb.Insert(Tuple{W: 1, H: 2, NTrans: 7}, areaLess)
	tb.Insert(Tuple{W: 2, H: 2, NTrans: 4}, areaLess)
	tb.Insert(Tuple{W: 2, H: 1, NTrans: 16}, areaLess)
	best, ok := tb.Best(areaLess)
	if !ok || best.NTrans != 4 {
		t.Errorf("Best = %+v, ok=%v", best, ok)
	}
}

func TestBestDeterministicOnFullTie(t *testing.T) {
	// Identical tuples except W/H: the {W,H}-smallest must win every time.
	for trial := 0; trial < 50; trial++ {
		tb := Table{}
		tb.Insert(Tuple{W: 3, H: 1, NTrans: 4}, areaLess)
		tb.Insert(Tuple{W: 1, H: 3, NTrans: 4}, areaLess)
		tb.Insert(Tuple{W: 2, H: 2, NTrans: 4}, areaLess)
		best, _ := tb.Best(areaLess)
		if best.W != 1 || best.H != 3 {
			t.Fatalf("trial %d: Best picked {%d,%d}, want {1,3}", trial, best.W, best.H)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	tb := Table{}
	for _, k := range []Key{{3, 1}, {1, 2}, {2, 2}, {1, 1}, {2, 1}} {
		tb.Insert(Tuple{W: k.W, H: k.H}, areaLess)
	}
	keys := tb.SortedKeys()
	want := []Key{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", keys, want)
		}
	}
}

// Property: Insert never stores a tuple strictly worse than an existing
// one, Best returns a tuple no worse than any table entry, and SortedKeys
// is sorted and complete.
func TestTableInvariantsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := Table{}
		for i := 0; i < 30; i++ {
			tu := Tuple{
				W:      1 + rng.Intn(4),
				H:      1 + rng.Intn(4),
				NTrans: rng.Intn(20),
				NDisch: rng.Intn(5),
				PDis:   rng.Intn(5),
			}
			tb.Insert(tu, areaLess)
		}
		best, ok := tb.Best(areaLess)
		if !ok {
			return false
		}
		for _, tu := range tb {
			if areaLess(tu, best) {
				return false
			}
			if tu.Key() != (Key{tu.W, tu.H}) {
				return false
			}
		}
		keys := tb.SortedKeys()
		if len(keys) != tb.Keys() {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if !keyLess(keys[i-1], keys[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
