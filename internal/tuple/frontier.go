package tuple

// FKey indexes a Pareto frontier: besides {W,H}, the par_b and has-PI bits
// are part of the state because they change how a sub-solution combines
// upward (stack ordering and foot insertion).
type FKey struct {
	Key   Key
	ParB  bool
	HasPI bool
}

// FKeyOf returns the frontier key of a tuple.
func FKeyOf(t Tuple) FKey {
	return FKey{Key: t.Key(), ParB: t.ParB, HasPI: t.HasPI}
}

// MaxFrontier bounds the number of incomparable tuples kept per FKey. The
// bound is a safety valve: on the benchmark suite frontiers stay small,
// and when the cap binds the cheapest entries are kept, so the mode
// degrades gracefully toward the paper's single-tuple heuristic.
const MaxFrontier = 32

// Frontier keeps, per FKey, the set of mutually non-dominated tuples under
// the partial order (cost, PDis, PDisBot, Depth): the paper's algorithm
// keeps exactly one tuple per {W,H} and breaks ties by p_dis, which can
// discard a sub-solution that a later combination would have preferred;
// the frontier closes that gap (see the brute-force optimality tests).
type Frontier map[FKey][]Tuple

// dominates reports whether a is at least as good as b in every component
// that can influence any future combination, for the given scalar cost.
func dominates(a, b Tuple, cost func(Tuple) int) bool {
	return cost(a) <= cost(b) &&
		a.PDis <= b.PDis &&
		a.PDisBot <= b.PDisBot &&
		a.Depth <= b.Depth
}

// Insert adds t unless an existing entry dominates it, removing entries t
// dominates. It reports whether the frontier changed.
func (f Frontier) Insert(t Tuple, cost func(Tuple) int) bool {
	k := FKeyOf(t)
	entries := f[k]
	keep := entries[:0]
	for _, e := range entries {
		if dominates(e, t, cost) {
			return false // also covers exact ties: the incumbent stays
		}
		if !dominates(t, e, cost) {
			keep = append(keep, e)
		}
	}
	keep = append(keep, t)
	if len(keep) > MaxFrontier {
		// Drop the entry with the worst cost (ties: largest PDis).
		worst := 0
		for i := 1; i < len(keep); i++ {
			ci, cw := cost(keep[i]), cost(keep[worst])
			if ci > cw || (ci == cw && keep[i].PDis > keep[worst].PDis) {
				worst = i
			}
		}
		keep = append(keep[:worst], keep[worst+1:]...)
	}
	f[k] = keep
	return true
}

// TrimPerKey collapses each frontier key to its single best tuple under
// less. This is the graceful-degradation step of a tuple-budget-bound
// Pareto run: the frontier falls back to the paper's one-tuple-per-shape
// heuristic, so mapping still completes with a valid (if possibly
// suboptimal) result instead of exhausting the budget's reason for
// existing — memory.
func (f Frontier) TrimPerKey(less Less) {
	for k, entries := range f {
		best := 0
		for i := 1; i < len(entries); i++ {
			if less(entries[i], entries[best]) {
				best = i
			}
		}
		f[k] = []Tuple{entries[best]}
	}
}

// All returns every tuple with its frontier position, in deterministic
// (sorted-key, insertion) order. The position is what Choice.Index refers
// to during traceback.
func (f Frontier) All() []IndexedTuple {
	keys := make([]FKey, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sortFKeys(keys)
	var out []IndexedTuple
	for _, k := range keys {
		for i, t := range f[k] {
			out = append(out, IndexedTuple{Tuple: t, FKey: k, Index: i})
		}
	}
	return out
}

// IndexedTuple pairs a frontier tuple with its stable address.
type IndexedTuple struct {
	Tuple Tuple
	FKey  FKey
	Index int
}

// Lookup returns the tuple at a frontier address.
func (f Frontier) Lookup(k FKey, index int) (Tuple, bool) {
	entries := f[k]
	if index < 0 || index >= len(entries) {
		return Tuple{}, false
	}
	return entries[index], true
}

// Size returns the total number of tuples across all keys.
func (f Frontier) Size() int {
	n := 0
	for _, entries := range f {
		n += len(entries)
	}
	return n
}

// Best returns the minimum tuple over the whole frontier under less, with
// deterministic tie-breaking by frontier order.
func (f Frontier) Best(less Less) (IndexedTuple, bool) {
	var best IndexedTuple
	found := false
	for _, it := range f.All() {
		if !found || less(it.Tuple, best.Tuple) {
			best, found = it, true
		}
	}
	return best, found
}

func sortFKeys(keys []FKey) {
	lessKey := func(a, b FKey) bool {
		if a.Key != b.Key {
			return keyLess(a.Key, b.Key)
		}
		if a.ParB != b.ParB {
			return !a.ParB
		}
		if a.HasPI != b.HasPI {
			return !a.HasPI
		}
		return false
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessKey(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}
