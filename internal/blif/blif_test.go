package blif

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"soidomino/internal/logic"
)

const majBlif = `
# 3-input majority
.model maj3
.inputs a b c
.outputs f
.names a b c f
11- 1
-11 1
1-1 1
.end
`

func TestParseMajority(t *testing.T) {
	n, err := ParseString(majBlif)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "maj3" {
		t.Errorf("model name = %q", n.Name)
	}
	if len(n.Inputs) != 3 || len(n.Outputs) != 1 {
		t.Fatalf("io shape: %d in, %d out", len(n.Inputs), len(n.Outputs))
	}
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for i, rowv := range tt {
		ones := 0
		for j := 0; j < 3; j++ {
			if i&(1<<j) != 0 {
				ones++
			}
		}
		if rowv[0] != (ones >= 2) {
			t.Errorf("row %d: got %v", i, rowv[0])
		}
	}
}

func TestParseOffsetCover(t *testing.T) {
	// f defined by its off-set: f=0 iff a=1,b=1 -> f = NAND(a,b)
	src := `.model m
.inputs a b
.outputs f
.names a b f
11 0
.end`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a, b := i&1 != 0, i&2 != 0
		out, _ := n.Eval([]bool{a, b})
		if out[0] != !(a && b) {
			t.Errorf("f(%v,%v) = %v", a, b, out[0])
		}
	}
}

func TestParseConstants(t *testing.T) {
	src := `.model m
.inputs a
.outputs one zero empty
.names one
1
.names zero
0
.names empty
.names a unused
1 1
.end`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := n.Eval([]bool{true})
	if out[0] != true || out[1] != false || out[2] != false {
		t.Errorf("constants = %v", out)
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	src := ".model m\n.inputs a \\\nb\n.outputs f # trailing comment\n.names a b f\n11 1\n.end\n"
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Inputs) != 2 {
		t.Errorf("inputs = %d, want 2", len(n.Inputs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"latch":         ".model m\n.latch a b\n.end",
		"mixed cover":   ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end",
		"bad char":      ".model m\n.inputs a\n.outputs f\n.names a f\n2 1\n.end",
		"bad width":     ".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end",
		"stray row":     ".model m\n.inputs a\n.outputs a\n1 1\n.end",
		"undefined":     ".model m\n.inputs a\n.outputs f\n.end",
		"double def":    ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end",
		"cycle":         ".model m\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end",
		"dup input":     ".model m\n.inputs a a\n.outputs a\n.end",
		"bad out value": ".model m\n.inputs a\n.outputs f\n.names a f\n1 x\n.end",
		"bad const":     ".model m\n.inputs a\n.outputs f\n.names f\n x\n.end",
		"names no args": ".model m\n.names\n.end",
		"malformed row": ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1 1\n.end",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	n := logic.New("rt")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	n.AddOutput("f", n.AddGate(logic.Xor, a, b, c))
	n.AddOutput("g", n.AddGate(logic.Nand, a, b))
	n.AddOutput("h", n.AddGate(logic.Nor, b, c))
	n.AddOutput("i", n.AddGate(logic.Xnor, a, c))
	n.AddOutput("j", n.AddGate(logic.Buf, a))
	n.AddOutput("k", n.AddGate(logic.Not, b))
	n.AddOutput("one", n.AddConst(true))
	n.AddOutput("zero", n.AddConst(false))

	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, buf.String())
	}
	if len(back.Inputs) != len(n.Inputs) || len(back.Outputs) != len(n.Outputs) {
		t.Fatalf("round-trip shape mismatch")
	}
	t1, _ := n.TruthTable()
	t2, _ := back.TruthTable()
	for i := range t1 {
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				t.Fatalf("round-trip functional mismatch at row %d output %d", i, j)
			}
		}
	}
}

// Round-trip property over random networks.
func TestWriteRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := randomNetwork(rng, 5, 20)
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		t1, _ := n.TruthTable()
		t2, _ := back.TruthTable()
		for i := range t1 {
			for j := range t1[i] {
				if t1[i][j] != t2[i][j] {
					t.Fatalf("trial %d row %d out %d mismatch", trial, i, j)
				}
			}
		}
	}
}

func randomNetwork(rng *rand.Rand, nin, ngates int) *logic.Network {
	n := logic.New("rnd")
	var pool []int
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	for i := 0; i < ngates; i++ {
		op := ops[rng.Intn(len(ops))]
		k := 1
		if op.MaxFanin() != 1 {
			k = 2 + rng.Intn(2)
		}
		fanin := make([]int, k)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, n.AddGate(op, fanin...))
	}
	for i := 0; i < 3; i++ {
		n.AddOutput("o"+string(rune('0'+i)), pool[len(pool)-1-i])
	}
	return n
}

func TestParseScannerError(t *testing.T) {
	// A line longer than the scanner's max buffer should error, not hang.
	long := strings.Repeat("x", 2<<20)
	if _, err := ParseString(".model m\n.inputs " + long + "\n.end"); err == nil {
		t.Error("expected scanner error for oversized line")
	}
}
