package blif

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseBLIF drives the parser with arbitrary bytes. The parser must
// never panic; on a successful parse the resulting network must pass its
// own consistency check, render back to BLIF, and reparse.
func FuzzParseBLIF(f *testing.F) {
	f.Add(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
	f.Add(".model maj3\n.inputs a b c\n.outputs maj\n.names a b c maj\n11- 1\n-11 1\n1-1 1\n.end\n")
	f.Add("# comment\n.model x\n.inputs a\n.outputs y\n.names a \\\ny\n1 1\n.end\n")
	f.Add(".model k\n.inputs a\n.outputs y\n.names y\n1\n.names a q\n0 1\n.end\n")
	f.Add(".names a a\n1 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64*1024 {
			t.Skip("oversized input")
		}
		net, err := ParseString(src)
		if err != nil {
			return
		}
		if err := net.Check(); err != nil {
			t.Fatalf("parsed network fails Check: %v\ninput:\n%s", err, src)
		}
		var buf bytes.Buffer
		if err := Write(&buf, net); err != nil {
			t.Fatalf("cannot render parsed network: %v\ninput:\n%s", err, src)
		}
		again, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("rendered BLIF does not reparse: %v\nrendered:\n%s", err, buf.String())
		}
		if again.Len() == 0 && net.Len() != 0 {
			t.Fatalf("round trip lost all nodes\ninput:\n%s", src)
		}
	})
}

// FuzzParseBLIF must reject pathological nesting and oversized lines with
// errors, not stack exhaustion or unbounded allocation; spot-check the
// bounds directly since fuzzing rarely synthesizes them.
func TestParseBounds(t *testing.T) {
	var sb strings.Builder
	// Declared deepest-first so construction must recurse through the
	// whole chain before it can memoize anything.
	sb.WriteString(".model deep\n.inputs a\n.outputs s10001\n")
	for i := 10001; i >= 1; i-- {
		sb.WriteString(".names s")
		sb.WriteString(itoa(i - 1))
		sb.WriteString(" s")
		sb.WriteString(itoa(i))
		sb.WriteString("\n1 1\n")
	}
	sb.WriteString(".names a s0\n1 1\n.end\n")
	if _, err := ParseString(sb.String()); err == nil || !strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("deep chain: got %v, want nesting-depth error", err)
	}

	long := ".model m\n.inputs a\n.outputs y\n.names a y " + strings.Repeat("x", maxLineBytes) + "\n1 1\n.end\n"
	if _, err := ParseString(long); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("long line: got %v, want size error", err)
	}

	cont := ".model m\n.inputs a\n.outputs y\n" + strings.Repeat(".names a y \\\n", 1) +
		strings.Repeat(strings.Repeat("x", 1024)+" \\\n", 1100) + "\n"
	if _, err := ParseString(cont); err == nil || !strings.Contains(err.Error(), "continued line") {
		t.Fatalf("continuation flood: got %v, want logical-line size error", err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
