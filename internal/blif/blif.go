// Package blif reads and writes a practical subset of the Berkeley Logic
// Interchange Format (BLIF), the interchange format the original ISCAS/MCNC
// benchmark suites circulate in. Supported constructs:
//
//	.model NAME
//	.inputs A B C ...          (continuation with trailing \ allowed)
//	.outputs X Y ...
//	.names in1 in2 ... out     followed by a PLA cover (rows of 01- + output)
//	.end
//
// Covers are converted into AND/OR/NOT networks: each on-set row becomes a
// product of literals, rows are OR-ed together; off-set covers (output
// column 0) are built the same way and complemented. Latches, subcircuits
// and don't-care covers are rejected with a descriptive error.
package blif

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"soidomino/internal/faultpoint"
	"soidomino/internal/logic"
)

// PointParse is the fault-injection point at the head of every parse: a
// stand-in for I/O and syntax failures on untrusted input.
var PointParse = faultpoint.Define("blif.parse", "before reading the first BLIF line")

// Input bounds: malformed or adversarial files must produce a clear error,
// never a panic or unbounded allocation.
const (
	// maxLineBytes caps one physical line (the scanner buffer).
	maxLineBytes = 1 << 20
	// maxLogicalLine caps a backslash-continued logical line, so a file of
	// endless continuations cannot accumulate memory without limit.
	maxLogicalLine = 1 << 20
	// maxEmitDepth caps .names reference nesting during network
	// construction, bounding recursion on degenerate deep chains.
	maxEmitDepth = 10000
)

// Parse reads a single .model from r and builds the equivalent network.
func Parse(r io.Reader) (*logic.Network, error) {
	return ParseContext(context.Background(), r)
}

// ParseContext is Parse honoring any fault-injection registry carried by
// ctx (the parser itself has no cancellation points; parsing is fast).
func ParseContext(ctx context.Context, r io.Reader) (*logic.Network, error) {
	if err := faultpoint.From(ctx).Check(ctx, PointParse); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	p := &parser{names: make(map[string]*cover)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	lineno := 0
	var pending string
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if len(pending)+len(line) > maxLogicalLine {
			return nil, fmt.Errorf("blif: line %d: continued line exceeds %d bytes", lineno, maxLogicalLine)
		}
		if strings.HasSuffix(line, "\\") {
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		line = pending + line
		pending = ""
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("blif: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("blif: line %d: line exceeds %d bytes", lineno+1, maxLineBytes)
		}
		return nil, fmt.Errorf("blif: %w", err)
	}
	return p.build()
}

// ParseString is Parse over a string.
func ParseString(s string) (*logic.Network, error) {
	return Parse(strings.NewReader(s))
}

// cover is one .names block: a PLA over the named inputs driving out.
type cover struct {
	inputs []string
	out    string
	rows   []row
}

type row struct {
	pattern string // one rune per input: '0', '1' or '-'
	value   byte   // '0' or '1'
}

type parser struct {
	model   string
	inputs  []string
	outputs []string
	order   []string // declaration order of .names outputs
	names   map[string]*cover
	current *cover
	ended   bool
}

func (p *parser) line(line string) error {
	if !strings.HasPrefix(line, ".") {
		return p.coverRow(line)
	}
	p.current = nil
	fields := strings.Fields(line)
	switch fields[0] {
	case ".model":
		if len(fields) > 1 {
			p.model = fields[1]
		}
	case ".inputs":
		p.inputs = append(p.inputs, fields[1:]...)
	case ".outputs":
		p.outputs = append(p.outputs, fields[1:]...)
	case ".names":
		if len(fields) < 2 {
			return fmt.Errorf(".names needs at least an output signal")
		}
		c := &cover{inputs: fields[1 : len(fields)-1], out: fields[len(fields)-1]}
		if _, dup := p.names[c.out]; dup {
			return fmt.Errorf("signal %q defined twice", c.out)
		}
		p.names[c.out] = c
		p.order = append(p.order, c.out)
		p.current = c
	case ".end":
		p.ended = true
	case ".latch", ".subckt", ".gate", ".mlatch":
		return fmt.Errorf("%s is not supported (combinational BLIF only)", fields[0])
	default:
		// Ignore unknown dot-directives (.default_input_arrival etc.).
	}
	return nil
}

func (p *parser) coverRow(line string) error {
	if p.current == nil {
		return fmt.Errorf("cover row %q outside a .names block", line)
	}
	fields := strings.Fields(line)
	c := p.current
	switch {
	case len(c.inputs) == 0 && len(fields) == 1:
		v := fields[0]
		if v != "0" && v != "1" {
			return fmt.Errorf("constant cover value %q", v)
		}
		c.rows = append(c.rows, row{value: v[0]})
	case len(fields) == 2:
		if len(fields[0]) != len(c.inputs) {
			return fmt.Errorf("cover row width %d for %d inputs", len(fields[0]), len(c.inputs))
		}
		for _, ch := range fields[0] {
			if ch != '0' && ch != '1' && ch != '-' {
				return fmt.Errorf("bad cover character %q", ch)
			}
		}
		if fields[1] != "0" && fields[1] != "1" {
			return fmt.Errorf("bad cover output %q", fields[1])
		}
		c.rows = append(c.rows, row{pattern: fields[0], value: fields[1][0]})
	default:
		return fmt.Errorf("malformed cover row %q", line)
	}
	if c.rows[0].value != c.rows[len(c.rows)-1].value {
		return fmt.Errorf("mixed on-set and off-set rows for %q", c.out)
	}
	return nil
}

func (p *parser) build() (*logic.Network, error) {
	if p.model == "" {
		p.model = "blif"
	}
	n := logic.New(p.model)
	ids := make(map[string]int, len(p.inputs)+len(p.names))
	for _, in := range p.inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("blif: duplicate input %q", in)
		}
		ids[in] = n.AddInput(in)
	}

	visiting := make(map[string]bool)
	var emit func(name string, depth int) (int, error)
	emit = func(name string, depth int) (int, error) {
		if id, ok := ids[name]; ok {
			return id, nil
		}
		c, ok := p.names[name]
		if !ok {
			return -1, fmt.Errorf("blif: signal %q is never defined", name)
		}
		if visiting[name] {
			return -1, fmt.Errorf("blif: combinational cycle through %q", name)
		}
		if depth > maxEmitDepth {
			return -1, fmt.Errorf("blif: signal %q nested deeper than %d", name, maxEmitDepth)
		}
		visiting[name] = true
		faninIDs := make([]int, len(c.inputs))
		for i, in := range c.inputs {
			id, err := emit(in, depth+1)
			if err != nil {
				return -1, err
			}
			faninIDs[i] = id
		}
		delete(visiting, name)
		id, err := buildCover(n, c, faninIDs)
		if err != nil {
			return -1, err
		}
		n.Nodes[id].Name = name
		ids[name] = id
		return id, nil
	}

	// Emit in declaration order first so unreferenced logic is preserved,
	// then make sure every primary output exists.
	for _, name := range p.order {
		if _, err := emit(name, 0); err != nil {
			return nil, err
		}
	}
	for _, out := range p.outputs {
		id, err := emit(out, 0)
		if err != nil {
			return nil, err
		}
		n.AddOutput(out, id)
	}
	return n, n.Check()
}

// buildCover lowers one PLA cover into AND/OR/NOT nodes and returns the id
// of the node computing the cover's output.
func buildCover(n *logic.Network, c *cover, fanin []int) (int, error) {
	if len(c.rows) == 0 {
		// An empty cover is constant 0 by BLIF convention.
		return n.AddConst(false), nil
	}
	onSet := c.rows[0].value == '1'
	if len(c.inputs) == 0 {
		return n.AddConst(onSet), nil
	}
	inverted := make(map[int]int) // fanin id -> NOT node id, shared across rows
	inv := func(id int) int {
		if v, ok := inverted[id]; ok {
			return v
		}
		v := n.AddGate(logic.Not, id)
		inverted[id] = v
		return v
	}
	var terms []int
	for _, r := range c.rows {
		var lits []int
		for i, ch := range r.pattern {
			switch ch {
			case '1':
				lits = append(lits, fanin[i])
			case '0':
				lits = append(lits, inv(fanin[i]))
			}
		}
		switch len(lits) {
		case 0:
			// Row of all '-': tautology.
			lits = append(lits, n.AddConst(true))
			terms = append(terms, lits[0])
		case 1:
			terms = append(terms, lits[0])
		default:
			terms = append(terms, n.AddGate(logic.And, lits...))
		}
	}
	var root int
	if len(terms) == 1 {
		root = terms[0]
	} else {
		root = n.AddGate(logic.Or, terms...)
	}
	if !onSet {
		root = n.AddGate(logic.Not, root)
	}
	return root, nil
}

// Write renders the network as BLIF. Every node is written as a .names
// block using generated signal names (its own name when it has one).
func Write(w io.Writer, n *logic.Network) error {
	bw := bufio.NewWriter(w)
	name := func(id int) string {
		if nm := n.Nodes[id].Name; nm != "" {
			return nm
		}
		return fmt.Sprintf("n%d", id)
	}
	fmt.Fprintf(bw, ".model %s\n", n.Name)
	fmt.Fprint(bw, ".inputs")
	for _, id := range n.Inputs {
		fmt.Fprintf(bw, " %s", name(id))
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	outAlias := make(map[string]int)
	for _, out := range n.Outputs {
		fmt.Fprintf(bw, " %s", out.Name)
		outAlias[out.Name] = out.Node
	}
	fmt.Fprintln(bw)
	for id, node := range n.Nodes {
		if node.Op == logic.Input {
			continue
		}
		if err := writeNode(bw, n, id, name); err != nil {
			return err
		}
	}
	// Outputs whose name differs from their driver get a buffer cover.
	outs := make([]string, 0, len(outAlias))
	for o := range outAlias {
		outs = append(outs, o)
	}
	sort.Strings(outs)
	for _, o := range outs {
		drv := name(outAlias[o])
		if drv != o {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", drv, o)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeNode(w io.Writer, n *logic.Network, id int, name func(int) string) error {
	node := n.Nodes[id]
	fmt.Fprint(w, ".names")
	for _, f := range node.Fanin {
		fmt.Fprintf(w, " %s", name(f))
	}
	fmt.Fprintf(w, " %s\n", name(id))
	k := len(node.Fanin)
	pattern := func(fill byte) []byte {
		b := make([]byte, k)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	switch node.Op {
	case logic.Const0:
		fmt.Fprintln(w, "0") // explicit, though empty cover means 0 too
	case logic.Const1:
		fmt.Fprintln(w, "1")
	case logic.Buf:
		fmt.Fprintln(w, "1 1")
	case logic.Not:
		fmt.Fprintln(w, "0 1")
	case logic.And:
		fmt.Fprintf(w, "%s 1\n", pattern('1'))
	case logic.Nand:
		for i := 0; i < k; i++ {
			row := pattern('-')
			row[i] = '0'
			fmt.Fprintf(w, "%s 1\n", row)
		}
	case logic.Or:
		for i := 0; i < k; i++ {
			row := pattern('-')
			row[i] = '1'
			fmt.Fprintf(w, "%s 1\n", row)
		}
	case logic.Nor:
		fmt.Fprintf(w, "%s 1\n", pattern('0'))
	case logic.Xor, logic.Xnor:
		wantOdd := node.Op == logic.Xor
		for m := 0; m < 1<<k; m++ {
			ones := 0
			row := pattern('0')
			for i := 0; i < k; i++ {
				if m&(1<<i) != 0 {
					row[i] = '1'
					ones++
				}
			}
			if (ones%2 == 1) == wantOdd {
				fmt.Fprintf(w, "%s 1\n", row)
			}
		}
	default:
		return fmt.Errorf("blif: cannot write op %v", node.Op)
	}
	return nil
}
