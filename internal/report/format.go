package report

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteCompare renders a Table I/II-style report: per circuit, measured
// Domino_Map and comparison-algorithm counts, the reduction percentages,
// and the paper's numbers in brackets.
func (t *CompareTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintf(tw, "circuit\tTlog\tTdis\tTtot\t%s Tlog\tTdis\tTtot\tdTdis%%\tdTtot%%\tpaper dTdis%%\tpaper dTtot%%\n", t.Algorithm)
	for _, r := range t.Rows {
		paperD, paperT := "-", "-"
		if r.PaperBase.TTotal != 0 {
			paperD = fmt.Sprintf("%.2f", pct(r.PaperBase.TDisch, r.PaperCmp.TDisch))
			paperT = fmt.Sprintf("%.2f", pct(r.PaperBase.TTotal, r.PaperCmp.TTotal))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%s\t%s\n",
			r.Circuit,
			r.Base.TLogic, r.Base.TDisch, r.Base.TTotal,
			r.Cmp.TLogic, r.Cmp.TDisch, r.Cmp.TTotal,
			r.DischReduction(), r.TotalReduction(), paperD, paperT)
	}
	fmt.Fprintf(tw, "average\t\t\t\t\t\t\t%.2f\t%.2f\t%.2f\t%.2f\n",
		t.AvgDischReduction(), t.AvgTotalReduction(), t.PaperAvg[0], t.PaperAvg[1])
	return tw.Flush()
}

// Write renders a Table III-style report.
func (t *ClockTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tk1 Tlog\tTdis\tTtot\t#G\tTclk\tk2 Tlog\tTdis\tTtot\t#G\tTclk\tdTclk%\tpaper dTclk%")
	for _, r := range t.Rows {
		paper := "-"
		if r.PaperK1.TClock != 0 {
			paper = fmt.Sprintf("%.2f", pct(r.PaperK1.TClock, r.PaperK2.TClock))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%s\n",
			r.Circuit,
			r.K1.TLogic, r.K1.TDisch, r.K1.TTotal, r.K1.Gates, r.K1.TClock,
			r.K2.TLogic, r.K2.TDisch, r.K2.TTotal, r.K2.Gates, r.K2.TClock,
			r.ClockReduction(), paper)
	}
	fmt.Fprintf(tw, "average\t\t\t\t\t\t\t\t\t\t\t%.2f\t%.2f\n",
		t.AvgClockReduction(), t.PaperAvg)
	return tw.Flush()
}

// Write renders a Table IV-style report.
func (t *DepthTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tL\tbase Tlog\tTdis\tTtot\tL\tsoi Tlog\tTdis\tTtot\tL\tdTdis%\tdL%\tpaper dTdis%\tpaper dL%")
	for _, r := range t.Rows {
		paperD, paperL := "-", "-"
		if r.PaperBase.TTotal != 0 {
			paperD = fmt.Sprintf("%.2f", pct(r.PaperBase.TDisch, r.PaperSOI.TDisch))
			paperL = fmt.Sprintf("%.2f", pct(r.PaperBase.L, r.PaperSOI.L))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%s\t%s\n",
			r.Circuit, r.L,
			r.Base.TLogic, r.Base.TDisch, r.Base.TTotal, r.Base.Levels,
			r.SOI.TLogic, r.SOI.TDisch, r.SOI.TTotal, r.SOI.Levels,
			r.DischReduction(), r.LevelReduction(), paperD, paperL)
	}
	fmt.Fprintf(tw, "average\t\t\t\t\t\t\t\t\t\t%.2f\t%.2f\t%.2f\t%.2f\n",
		t.AvgDischReduction(), t.AvgLevelReduction(), t.PaperAvg[0], t.PaperAvg[1])
	return tw.Flush()
}
