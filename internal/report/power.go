package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"soidomino/internal/bench"
	"soidomino/internal/mapper"
	"soidomino/internal/power"
)

// PowerRow translates Table III's motivation into energy: the per-cycle
// clock and evaluation energy of the baseline, the SOI mapping, and the
// SOI mapping with doubled clock weight.
type PowerRow struct {
	Circuit string
	Base    power.Estimate
	SOI     power.Estimate
	SOIK2   power.Estimate
}

// PowerTable is the clock-power extension experiment.
type PowerTable struct {
	Title string
	Rows  []PowerRow
}

// AvgClockSavings returns the average percent clock-energy reduction of
// {SOI vs base, SOI k=2 vs SOI k=1}.
func (t *PowerTable) AvgClockSavings() [2]float64 {
	var s [2]float64
	for _, r := range t.Rows {
		if r.Base.Clock > 0 {
			s[0] += 100 * (r.Base.Clock - r.SOI.Clock) / r.Base.Clock
		}
		if r.SOI.Clock > 0 {
			s[1] += 100 * (r.SOI.Clock - r.SOIK2.Clock) / r.SOI.Clock
		}
	}
	n := float64(len(t.Rows))
	return [2]float64{s[0] / n, s[1] / n}
}

// RunPower estimates per-cycle energy across the Table II suite.
func RunPower(opt mapper.Options, check bool) (*PowerTable, error) {
	opt = harness(opt)
	params := power.DefaultParams()
	tab := &PowerTable{Title: "Extension: per-cycle energy (normalized), clock vs evaluation"}
	for _, name := range bench.TableII {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		row := PowerRow{Circuit: name}
		for _, variant := range []struct {
			algo Algorithm
			k    int
			dst  *power.Estimate
		}{
			{Domino, 1, &row.Base},
			{SOI, 1, &row.SOI},
			{SOI, 2, &row.SOIK2},
		} {
			o := opt
			o.ClockWeight = variant.k
			res, err := p.Map(variant.algo, o, check && variant.k == 1)
			if err != nil {
				return nil, err
			}
			est, err := power.Analyze(res, params)
			if err != nil {
				return nil, err
			}
			*variant.dst = *est
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Write renders the table.
func (t *PowerTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tbase clk\teval\tsoi clk\teval\tsoi k2 clk\teval\tclk save%")
	for _, r := range t.Rows {
		save := 0.0
		if r.Base.Clock > 0 {
			save = 100 * (r.Base.Clock - r.SOI.Clock) / r.Base.Clock
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\n",
			r.Circuit, r.Base.Clock, r.Base.Evaluation,
			r.SOI.Clock, r.SOI.Evaluation,
			r.SOIK2.Clock, r.SOIK2.Evaluation, save)
	}
	avg := t.AvgClockSavings()
	fmt.Fprintf(tw, "average\t\t\t\t\t\t\t%.1f (k2 adds %.1f)\n", avg[0], avg[1])
	return tw.Flush()
}
