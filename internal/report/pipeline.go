// Package report runs the paper's experiments end to end and renders the
// four evaluation tables. Each circuit goes through the full pipeline —
// benchmark generator, 2-input decomposition, unate conversion, one or
// more mappers, functional verification — and the resulting statistics are
// laid out in the papers' row format next to the paper's own numbers.
package report

import (
	"context"
	"fmt"

	"soidomino/internal/bench"
	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/obs"
	"soidomino/internal/strash"
	"soidomino/internal/unate"
	"soidomino/internal/verify"
)

// Pipeline is a prepared circuit: generated, strashed (unless opted
// out), decomposed and unate.
type Pipeline struct {
	Name string
	// Orig is the submitted network, untouched — equivalence checks and
	// the encoded Source summary always refer to it.
	Orig *logic.Network
	// Strash is the front-end canonicalization result, nil when the run
	// opted out (mapper.Options.StrashOff). Strash.Network is what
	// decompose consumed.
	Strash *strash.Result
	Unate  *logic.Network
	// Duplicated reports the unate conversion's logic duplication.
	Duplicated int
}

// Prepare builds the named benchmark and runs it to unate form.
func Prepare(name string) (*Pipeline, error) {
	b, ok := bench.Get(name)
	if !ok {
		return nil, fmt.Errorf("report: unknown benchmark %q", name)
	}
	return PrepareNetwork(b.Build())
}

// PrepareNetwork runs an arbitrary circuit to unate form.
func PrepareNetwork(n *logic.Network) (*Pipeline, error) {
	return PrepareNetworkContext(context.Background(), n)
}

// PrepareNetworkContext is PrepareNetwork with observability: when ctx
// carries an obs.Stats collector (obs.WithStats) the strash, decompose
// and unate phases charge their wall-clock cost to it, and an obs.Tracer
// records them as spans. A plain context makes it identical to
// PrepareNetwork. Strash is on; use PrepareNetworkMode to opt out.
func PrepareNetworkContext(ctx context.Context, n *logic.Network) (*Pipeline, error) {
	return PrepareNetworkMode(ctx, n, false)
}

// PrepareNetworkMode is PrepareNetworkContext with the strash front-end
// made optional: strashOff maps the submitted network exactly as
// submitted (no hash-consing, no DCE), the pre-strash behaviour the
// fuzzer's metamorphic oracle and `soimap -strash-off` compare against.
func PrepareNetworkMode(ctx context.Context, n *logic.Network, strashOff bool) (*Pipeline, error) {
	st, tr := obs.StatsFrom(ctx), obs.TracerFrom(ctx)
	src := n
	var sr *strash.Result
	if !strashOff {
		sStart := tr.Now()
		obs.Timed(st, obs.PhaseStrash, func() error {
			sr = strash.RunContext(ctx, n)
			return nil
		})
		tr.Span("pipeline", "strash "+n.Name, sStart)
		st.AddStrash(sr.Counters.Merged, sr.Counters.Folded, sr.Counters.Dead)
		src = sr.Network
	}
	var d *logic.Network
	dStart := tr.Now()
	err := obs.Timed(st, obs.PhaseDecompose, func() error {
		var derr error
		d, derr = decompose.Decompose(src)
		return derr
	})
	tr.Span("pipeline", "decompose "+n.Name, dStart)
	if err != nil {
		return nil, fmt.Errorf("report: decompose %s: %w", n.Name, err)
	}
	var u *unate.Result
	uStart := tr.Now()
	err = obs.Timed(st, obs.PhaseUnate, func() error {
		var uerr error
		u, uerr = unate.Convert(d)
		return uerr
	})
	tr.Span("pipeline", "unate "+n.Name, uStart)
	if err != nil {
		return nil, fmt.Errorf("report: unate %s: %w", n.Name, err)
	}
	return &Pipeline{
		Name:       n.Name,
		Orig:       n,
		Strash:     sr,
		Unate:      u.Network,
		Duplicated: u.DuplicatedNodes,
	}, nil
}

// Algorithm names a mapper for the harness.
type Algorithm uint8

const (
	Domino Algorithm = iota
	RS
	SOI
)

func (a Algorithm) String() string {
	switch a {
	case RS:
		return "RS_Map"
	case SOI:
		return "SOI_Domino_Map"
	default:
		return "Domino_Map"
	}
}

func (a Algorithm) fn() func(*logic.Network, mapper.Options) (*mapper.Result, error) {
	switch a {
	case RS:
		return mapper.RSMap
	case SOI:
		return mapper.SOIDominoMap
	default:
		return mapper.DominoMap
	}
}

// Map runs one algorithm over the prepared circuit, audits the result and
// (when check is true) verifies functional equivalence against the
// original network.
func (p *Pipeline) Map(a Algorithm, opt mapper.Options, check bool) (*mapper.Result, error) {
	res, err := a.fn()(p.Unate, opt)
	if err != nil {
		return nil, fmt.Errorf("report: %s on %s: %w", a, p.Name, err)
	}
	if err := res.Audit(); err != nil {
		return nil, fmt.Errorf("report: %s on %s: audit: %w", a, p.Name, err)
	}
	if check {
		if err := verifyAgain(p, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// verifyAgain re-checks an existing (possibly transformed) mapping against
// the pipeline's original network.
func verifyAgain(p *Pipeline, res *mapper.Result) error {
	return verify.MustBeEquivalent(p.Orig, res, verify.DefaultOptions())
}
