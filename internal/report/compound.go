package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"soidomino/internal/bench"
	"soidomino/internal/mapper"
)

// CompoundRow measures the compound-domino post-pass (the paper's PBE
// solution 7) on one circuit: the Domino_Map baseline before and after the
// transformation, and the SOI mapping for reference.
type CompoundRow struct {
	Circuit   string
	Before    mapper.Stats
	After     mapper.Stats
	Converted int
	SOI       mapper.Stats
}

// CompoundTable is the solution-7 extension experiment.
type CompoundTable struct {
	Title string
	Rows  []CompoundRow
}

// RunCompound applies the compound transformation to the baseline mapping
// of every Table II circuit and reports where it pays. Equivalence is
// re-verified after the transformation when check is set.
func RunCompound(opt mapper.Options, check bool) (*CompoundTable, error) {
	opt = harness(opt)
	tab := &CompoundTable{Title: "Extension: compound domino (paper solution 7) on the Domino_Map baseline"}
	for _, name := range bench.TableII {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		base, err := p.Map(Domino, opt, false)
		if err != nil {
			return nil, err
		}
		row := CompoundRow{Circuit: name, Before: base.Stats}
		cs, err := mapper.CompoundTransform(base, mapper.DefaultCompoundOptions())
		if err != nil {
			return nil, err
		}
		if err := base.Audit(); err != nil {
			return nil, fmt.Errorf("report: compound on %s: %w", name, err)
		}
		if check {
			if err := verifyAgain(p, base); err != nil {
				return nil, err
			}
		}
		row.After = base.Stats
		row.Converted = cs.Converted
		soi, err := p.Map(SOI, opt, false)
		if err != nil {
			return nil, err
		}
		row.SOI = soi.Stats
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Totals sums converted gates and the transistor saving.
func (t *CompoundTable) Totals() (converted, saved int) {
	for _, r := range t.Rows {
		converted += r.Converted
		saved += r.Before.TTotal - r.After.TTotal
	}
	return converted, saved
}

// Write renders the table.
func (t *CompoundTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tbase Ttot\tTdis\tcompound Ttot\tTdis\tconverted\tsoi Ttot\tTdis")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Circuit, r.Before.TTotal, r.Before.TDisch,
			r.After.TTotal, r.After.TDisch, r.Converted,
			r.SOI.TTotal, r.SOI.TDisch)
	}
	conv, saved := t.Totals()
	fmt.Fprintf(tw, "total\t\t\t\t\t%d gates\t%d transistors saved\n", conv, saved)
	return tw.Flush()
}
