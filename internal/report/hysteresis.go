package report

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/soisim"
)

// HysteresisRow measures floating-body exposure under holding stress for
// one circuit: the paper's claimed side benefit (§I) is that controlling
// the PBE also narrows the body-voltage range and thus the timing
// hysteresis. Exposure is the fraction of device-phases spent with a
// charged body (soisim.BodyStats).
type HysteresisRow struct {
	Circuit     string
	Unprotected soisim.BodyStats // Domino_Map with discharge devices disconnected
	Protected   soisim.BodyStats // Domino_Map as built
	SOI         soisim.BodyStats // SOI_Domino_Map (fewer discharge devices needed)
}

// HysteresisTable is the body-exposure extension experiment.
type HysteresisTable struct {
	Title  string
	Cycles int
	Rows   []HysteresisRow
}

// RunHysteresis stress-simulates a subset of the suite (simulation is the
// expensive part, so the experiment uses representative circuits).
func RunHysteresis(opt mapper.Options, cycles int) (*HysteresisTable, error) {
	opt = harness(opt)
	if cycles <= 0 {
		cycles = 300
	}
	circuits := []string{"cm150", "z4ml", "frg1", "9symml", "b9", "c880"}
	tab := &HysteresisTable{
		Title:  fmt.Sprintf("Extension: floating-body exposure under %d holding-stress cycles", cycles),
		Cycles: cycles,
	}
	for _, name := range circuits {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		row := HysteresisRow{Circuit: name}
		for _, variant := range []struct {
			algo    Algorithm
			disable bool
			dst     *soisim.BodyStats
		}{
			{Domino, true, &row.Unprotected},
			{Domino, false, &row.Protected},
			{SOI, false, &row.SOI},
		} {
			res, err := p.Map(variant.algo, opt, false)
			if err != nil {
				return nil, err
			}
			c, err := netlist.Build(res)
			if err != nil {
				return nil, err
			}
			cfg := soisim.DefaultConfig()
			cfg.DisableDischarge = variant.disable
			sim := soisim.New(c, cfg)
			rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
			cur := make(map[string]bool, len(c.Inputs))
			for _, in := range c.Inputs {
				cur[in] = rng.Intn(2) == 1
			}
			for cyc := 0; cyc < cycles; cyc++ {
				if cyc%4 == 3 {
					for _, in := range c.Inputs {
						if rng.Intn(3) == 0 {
							cur[in] = !cur[in]
						}
					}
				}
				if _, _, err := sim.Cycle(cur); err != nil {
					return nil, err
				}
			}
			*variant.dst = sim.BodyStats()
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Write renders the table.
func (t *HysteresisTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tunprotected body-high%\tevents\tcorrupt\tprotected body-high%\tevents\tSOI body-high%\tevents")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%d\t%d\t%.4f\t%d\t%.4f\t%d\n",
			r.Circuit,
			100*r.Unprotected.HighRatio(), r.Unprotected.Events, r.Unprotected.Corrupted,
			100*r.Protected.HighRatio(), r.Protected.Events,
			100*r.SOI.HighRatio(), r.SOI.Events)
	}
	return tw.Flush()
}
