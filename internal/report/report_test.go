package report

import (
	"strings"
	"testing"

	"soidomino/internal/bench"
	"soidomino/internal/mapper"
)

func TestPrepareUnknown(t *testing.T) {
	if _, err := Prepare("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Domino.String() != "Domino_Map" || RS.String() != "RS_Map" || SOI.String() != "SOI_Domino_Map" {
		t.Error("Algorithm.String broken")
	}
}

func TestPipelineMapAndVerify(t *testing.T) {
	p, err := Prepare("z4ml")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algorithm{Domino, RS, SOI} {
		res, err := p.Map(a, mapper.DefaultOptions(), true)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Stats.Gates == 0 {
			t.Errorf("%s: empty mapping", a)
		}
	}
}

// TestHeadlineShape is the core reproduction check: over the paper's
// Table II suite, SOI_Domino_Map must cut discharge transistors by
// roughly half (paper: 53%), roughly double RS_Map's reduction
// (paper: 25.4%), while also reducing total transistors (paper: 6.29%).
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	opt := mapper.DefaultOptions()
	t1, err := RunTableI(opt, false)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunTableII(opt, false)
	if err != nil {
		t.Fatal(err)
	}
	rs := t1.AvgDischReduction()
	soi := t2.AvgDischReduction()
	if soi < 35 || soi > 70 {
		t.Errorf("SOI discharge reduction %.1f%% outside the paper's band (53%%)", soi)
	}
	if rs < 12 || rs > 40 {
		t.Errorf("RS discharge reduction %.1f%% outside the paper's band (25.4%%)", rs)
	}
	if soi < 1.4*rs {
		t.Errorf("SOI (%.1f%%) should clearly beat RS (%.1f%%): paper has a 2x gap", soi, rs)
	}
	if tot := t2.AvgTotalReduction(); tot <= 0 {
		t.Errorf("SOI total reduction %.2f%% should be positive (paper: 6.29%%)", tot)
	}
	// Per-circuit sanity: neither algorithm may ever need more discharge
	// or total transistors than the baseline.
	for _, r := range append(t1.Rows, t2.Rows...) {
		if r.Cmp.TDisch > r.Base.TDisch {
			t.Errorf("%s: comparison uses more discharges than baseline", r.Circuit)
		}
		if r.Cmp.TTotal > r.Base.TTotal {
			t.Errorf("%s: comparison uses more total transistors than baseline", r.Circuit)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	tab, err := RunTableIII(mapper.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(bench.TableIII) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// k=2 must never increase the clock load, and must reduce it on
	// average (paper: 3.82%).
	for _, r := range tab.Rows {
		if r.K2.TClock > r.K1.TClock {
			t.Errorf("%s: k=2 Tclock %d > k=1 %d", r.Circuit, r.K2.TClock, r.K1.TClock)
		}
	}
	if avg := tab.AvgClockReduction(); avg <= 0 {
		t.Errorf("average clock reduction %.2f%% should be positive", avg)
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table III") {
		t.Error("render missing title")
	}
}

func TestTableIVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	tab, err := RunTableIV(mapper.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	if avg := tab.AvgDischReduction(); avg < 20 {
		t.Errorf("depth-objective discharge reduction %.1f%% too small (paper: 49.76%%)", avg)
	}
	// The paper's key observation: the combined cost (weighted levels +
	// discharges) improves even when individual circuits trade a level.
	w := mapper.DefaultOptions().DepthWeight
	for _, r := range tab.Rows {
		base := w*r.Base.Levels + r.Base.TDisch
		soi := w*r.SOI.Levels + r.SOI.TDisch
		if soi > base {
			t.Errorf("%s: SOI combined depth cost %d > baseline %d", r.Circuit, soi, base)
		}
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table IV") {
		t.Error("render missing title")
	}
}

func TestCompareTableWrite(t *testing.T) {
	tab := &CompareTable{
		Title:     "Table test",
		Algorithm: SOI,
		Rows: []CompareRow{{
			Circuit:   "demo",
			Base:      mapper.Stats{TLogic: 100, TDisch: 20, TTotal: 120},
			Cmp:       mapper.Stats{TLogic: 105, TDisch: 8, TTotal: 113},
			PaperBase: paperTriple{100, 20, 120},
			PaperCmp:  paperTriple{105, 10, 115},
		}},
		PaperAvg: [2]float64{50, 5},
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "60.00", "5.83", "50.00", "4.17"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSummary(t *testing.T) {
	s := Summary("x", 12.345, 25.41)
	if !strings.Contains(s, "12.35") || !strings.Contains(s, "25.41") {
		t.Errorf("Summary = %q", s)
	}
}

func TestPctZeroBase(t *testing.T) {
	if pct(0, 5) != 0 {
		t.Error("pct with zero base should be 0")
	}
}
