package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"soidomino/internal/bench"
	"soidomino/internal/mapper"
)

// AblationRow dissects where the SOI mapper's advantage comes from on one
// circuit, by inserting intermediate algorithms between the baseline and
// the full algorithm:
//
//	Domino_Map   PBE-blind baseline
//	RS_Map       + post-reordering of the gates' ground-side stacks (paper)
//	RS_Map_deep  + post-reordering of every series group (extension)
//	SOI          the full DP with discharge-aware cost and combine-time
//	             ordering
type AblationRow struct {
	Circuit string
	Base    mapper.Stats
	RS      mapper.Stats
	RSDeep  mapper.Stats
	SOI     mapper.Stats
}

// AblationTable is the design-choice ablation of DESIGN.md §7.
type AblationTable struct {
	Title string
	Rows  []AblationRow
}

// RunAblation maps the Table II suite with all four algorithm variants.
func RunAblation(opt mapper.Options, check bool) (*AblationTable, error) {
	opt = harness(opt)
	tab := &AblationTable{Title: "Ablation: discharge transistors by algorithm variant"}
	for _, name := range bench.TableII {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		row := AblationRow{Circuit: name}
		base, err := p.Map(Domino, opt, check)
		if err != nil {
			return nil, err
		}
		rs, err := p.Map(RS, opt, check)
		if err != nil {
			return nil, err
		}
		rsDeep, err := mapper.RSMapDeep(p.Unate, opt)
		if err != nil {
			return nil, err
		}
		if err := rsDeep.Audit(); err != nil {
			return nil, fmt.Errorf("report: RS_Map_deep on %s: %w", name, err)
		}
		soi, err := p.Map(SOI, opt, check)
		if err != nil {
			return nil, err
		}
		row.Base, row.RS, row.RSDeep, row.SOI = base.Stats, rs.Stats, rsDeep.Stats, soi.Stats
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Avg returns the average discharge reductions of the three variants
// relative to the baseline: {RS, RSDeep, SOI}.
func (t *AblationTable) Avg() [3]float64 {
	var s [3]float64
	for _, r := range t.Rows {
		s[0] += pct(r.Base.TDisch, r.RS.TDisch)
		s[1] += pct(r.Base.TDisch, r.RSDeep.TDisch)
		s[2] += pct(r.Base.TDisch, r.SOI.TDisch)
	}
	n := float64(len(t.Rows))
	return [3]float64{s[0] / n, s[1] / n, s[2] / n}
}

// Write renders the ablation table.
func (t *AblationTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tbase Tdis\tRS Tdis\tRSdeep Tdis\tSOI Tdis\tRS%\tRSdeep%\tSOI%")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
			r.Circuit, r.Base.TDisch, r.RS.TDisch, r.RSDeep.TDisch, r.SOI.TDisch,
			pct(r.Base.TDisch, r.RS.TDisch),
			pct(r.Base.TDisch, r.RSDeep.TDisch),
			pct(r.Base.TDisch, r.SOI.TDisch))
	}
	avg := t.Avg()
	fmt.Fprintf(tw, "average\t\t\t\t\t%.1f\t%.1f\t%.1f\n", avg[0], avg[1], avg[2])
	return tw.Flush()
}
