package report

import (
	"strings"
	"testing"

	"soidomino/internal/mapper"
)

func TestRunCompoundShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	tab, err := RunCompound(mapper.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	conv, saved := tab.Totals()
	if conv <= 0 || saved <= 0 {
		t.Errorf("compound transformation should pay somewhere: converted=%d saved=%d", conv, saved)
	}
	for _, r := range tab.Rows {
		if r.After.TTotal > r.Before.TTotal {
			t.Errorf("%s: compound made the circuit bigger (%d -> %d)",
				r.Circuit, r.Before.TTotal, r.After.TTotal)
		}
		if r.After.TDisch > r.Before.TDisch {
			t.Errorf("%s: compound added discharge devices", r.Circuit)
		}
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "compound") {
		t.Error("render missing title")
	}
}

func TestRunDelayShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	tab, err := RunDelay(mapper.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tab.AvgSOIRatio()
	// The paper's §III-C claim: reordering delay is second-order. Allow a
	// generous band; the measured value sits near 1.01.
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("average SOI/base delay ratio %.3f outside the second-order band", ratio)
	}
	for _, r := range tab.Rows {
		if r.Base <= 0 || r.SOI <= 0 || r.RS <= 0 {
			t.Errorf("%s: non-positive delay", r.Circuit)
		}
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "delay") {
		t.Error("render missing title")
	}
}

func TestRunHysteresisShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tab, err := RunHysteresis(mapper.DefaultOptions(), 120)
	if err != nil {
		t.Fatal(err)
	}
	sawExposure := false
	for _, r := range tab.Rows {
		if r.Unprotected.HighRatio() > 0 {
			sawExposure = true
		}
		if r.Protected.HighPhases != 0 {
			t.Errorf("%s: protected baseline has body exposure: %s", r.Circuit, r.Protected)
		}
		if r.SOI.HighPhases != 0 {
			t.Errorf("%s: SOI mapping has body exposure: %s", r.Circuit, r.SOI)
		}
		if r.Protected.Corrupted != 0 || r.SOI.Corrupted != 0 {
			t.Errorf("%s: protected variants corrupted", r.Circuit)
		}
	}
	if !sawExposure {
		t.Error("no unprotected circuit showed body exposure under stress")
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "floating-body") {
		t.Error("render missing title")
	}
}

func TestRunSequenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	tab, err := RunSequence(mapper.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.Avg()
	if avg[0] < 0 || avg[1] < 0 {
		t.Errorf("pruning increased discharges: %v", avg)
	}
	if avg[0] <= 0 {
		t.Error("sequence pruning should help the baseline somewhere")
	}
	for _, r := range tab.Rows {
		if r.BaseSeq.TDisch > r.Base.TDisch || r.SOISeq.TDisch > r.SOI.TDisch {
			t.Errorf("%s: pruning added devices", r.Circuit)
		}
		if r.BaseSeq.TLogic != r.Base.TLogic {
			t.Errorf("%s: pruning changed logic transistors", r.Circuit)
		}
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sequence-aware") {
		t.Error("render missing title")
	}
}

func TestRunPowerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	tab, err := RunPower(mapper.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.AvgClockSavings()
	if avg[0] <= 0 {
		t.Errorf("SOI should save clock energy on average: %v", avg)
	}
	for _, r := range tab.Rows {
		if r.SOI.Clock > r.Base.Clock {
			t.Errorf("%s: SOI clock energy above baseline", r.Circuit)
		}
		if r.SOIK2.Clock > r.SOI.Clock {
			t.Errorf("%s: k=2 increased clock energy", r.Circuit)
		}
		if r.Base.Evaluation <= 0 {
			t.Errorf("%s: no evaluation energy", r.Circuit)
		}
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "energy") {
		t.Error("render missing title")
	}
}

func TestRunAreaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	tab, err := RunArea(mapper.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.AvgReductions()
	if avg[0] <= 0 {
		t.Errorf("transistor-count reduction should be positive: %v", avg)
	}
	// The honest finding: cell width = max(n-row, p-row), and the
	// discharge pMOS usually hide under the taller n-row, so the area
	// delta hovers near zero either way. Guard the band, not a win.
	if avg[1] < -3 || avg[1] > 6 {
		t.Errorf("diffusion-aware area delta %.2f%% outside the expected band", avg[1])
	}
	for _, r := range tab.Rows {
		if r.Base.PBreaks < r.SOI.PBreaks {
			t.Errorf("%s: baseline should have at least as many p-row breaks", r.Circuit)
		}
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "diffusion") {
		t.Error("render missing title")
	}
}

func TestRunAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	tab, err := RunAblation(mapper.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.Avg()
	// RS (paper) < RS-deep (extension) <= SOI, all positive.
	if !(avg[0] > 0 && avg[0] < avg[1] && avg[1] <= avg[2]+0.5) {
		t.Errorf("ablation ordering broken: %v", avg)
	}
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Ablation") {
		t.Error("render missing title")
	}
}
