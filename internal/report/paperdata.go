package report

// The paper's published per-circuit numbers, transcribed from Tables I-IV
// of Karandikar & Sapatnekar (DAC 2001), so every regenerated table can be
// printed side by side with the original. Absolute counts are not expected
// to match (the benchmark netlists are substituted; see DESIGN.md §4) —
// the comparison is about reduction percentages and their direction.

// paperTriple is {T_logic, T_disch, T_total}.
type paperTriple struct{ TLogic, TDisch, TTotal int }

// paperTableI maps circuit -> {Domino_Map, RS_Map}.
var paperTableI = map[string][2]paperTriple{
	"cm150":  {{73, 19, 92}, {73, 15, 88}},
	"mux":    {{73, 21, 94}, {73, 18, 91}},
	"z4ml":   {{127, 16, 143}, {127, 12, 139}},
	"cordic": {{199, 38, 237}, {202, 23, 225}},
	"frg1":   {{244, 78, 322}, {239, 43, 282}},
	"b9":     {{365, 87, 452}, {367, 57, 424}},
	"apex7":  {{663, 124, 787}, {662, 106, 768}},
	"c432":   {{655, 167, 822}, {675, 128, 803}},
	"c880":   {{1163, 198, 1361}, {1182, 153, 1335}},
	"t481":   {{1448, 232, 1680}, {1458, 193, 1651}},
	"c1355":  {{1856, 130, 1986}, {1856, 86, 1942}},
	"apex6":  {{1889, 319, 2208}, {1896, 275, 2171}},
	"c1908":  {{1924, 208, 2132}, {1924, 171, 2095}},
	"k2":     {{2425, 345, 2770}, {2441, 278, 2719}},
	"c2670":  {{2467, 422, 2889}, {2481, 341, 2822}},
	"c5315":  {{5498, 830, 6328}, {5510, 603, 6113}},
	"c7552":  {{8088, 1082, 9170}, {8138, 760, 8898}},
	"des":    {{9069, 1416, 10485}, {9097, 929, 10026}},
}

// paperTableIAvg is the paper's average reduction percentages
// {T_disch, T_total} for Table I.
var paperTableIAvg = [2]float64{25.41, 3.44}

// paperTableII maps circuit -> {Domino_Map, SOI_Domino_Map}.
var paperTableII = map[string][2]paperTriple{
	"cm150":  {{73, 19, 92}, {73, 15, 88}},
	"mux":    {{73, 21, 94}, {73, 15, 88}},
	"z4ml":   {{127, 16, 143}, {127, 12, 139}},
	"cordic": {{199, 38, 237}, {206, 18, 224}},
	"frg1":   {{244, 78, 322}, {245, 20, 265}},
	"f51m":   {{297, 71, 368}, {309, 31, 340}},
	"count":  {{333, 71, 404}, {365, 22, 387}},
	"b9":     {{365, 87, 452}, {367, 29, 396}},
	"9symml": {{424, 107, 531}, {440, 39, 479}},
	"apex7":  {{663, 124, 787}, {667, 59, 726}},
	"c432":   {{655, 167, 822}, {706, 99, 805}},
	"c880":   {{1163, 198, 1361}, {1223, 81, 1304}},
	"t481":   {{1448, 232, 1680}, {1495, 54, 1549}},
	"c1355":  {{1856, 130, 1986}, {1856, 46, 1902}},
	"apex6":  {{1889, 319, 2208}, {1928, 183, 2111}},
	"c1908":  {{1924, 208, 2132}, {1949, 109, 2058}},
	"k2":     {{2446, 348, 2794}, {2527, 114, 2641}},
	"c2670":  {{2467, 422, 2889}, {2498, 244, 2742}},
	"c5315":  {{5498, 830, 6328}, {5510, 474, 5984}},
	"c7552":  {{8088, 1082, 9170}, {8164, 637, 8801}},
	"des":    {{9069, 1416, 10485}, {9122, 581, 9703}},
}

var paperTableIIAvg = [2]float64{53.00, 6.29}

// paperClock is one k-column of Table III:
// {T_logic, T_disch, T_total, gates, T_clock}.
type paperClock struct{ TLogic, TDisch, TTotal, Gates, TClock int }

// paperTableIII maps circuit -> {k=1, k=2}.
var paperTableIII = map[string][2]paperClock{
	"cm150":  {{73, 15, 88, 3, 21}, {73, 15, 88, 3, 21}},
	"mux":    {{73, 15, 88, 3, 21}, {73, 15, 88, 3, 21}},
	"z4ml":   {{134, 13, 147, 9, 39}, {134, 13, 147, 9, 39}},
	"cordic": {{222, 19, 241, 14, 52}, {217, 19, 236, 13, 51}},
	"frg1":   {{283, 20, 303, 19, 58}, {277, 21, 298, 18, 57}},
	"count":  {{374, 22, 396, 28, 77}, {374, 22, 396, 28, 77}},
	"b9":     {{367, 29, 396, 29, 87}, {373, 26, 399, 30, 86}},
	"c8":     {{331, 42, 373, 26, 94}, {325, 42, 367, 25, 92}},
	"f51m":   {{405, 42, 447, 27, 104}, {391, 38, 429, 26, 98}},
	"9symml": {{571, 57, 628, 34, 132}, {482, 36, 518, 33, 106}},
	"apex7":  {{739, 67, 806, 54, 175}, {733, 67, 800, 53, 173}},
	"x1":     {{825, 63, 888, 65, 193}, {816, 60, 876, 64, 188}},
	"c432":   {{799, 93, 892, 52, 197}, {804, 89, 893, 53, 194}},
	"i6":     {{1155, 67, 1222, 67, 201}, {1155, 67, 1222, 67, 201}},
	"c1908":  {{992, 117, 1109, 77, 259}, {957, 111, 1068, 78, 254}},
	"t481":   {{1916, 77, 1993, 132, 325}, {1927, 70, 1997, 135, 316}},
	"c499":   {{2016, 46, 2062, 130, 440}, {2016, 46, 2062, 130, 440}},
	"c1355":  {{2016, 46, 2062, 130, 440}, {2016, 46, 2062, 130, 440}},
	"dalu":   {{2073, 182, 2255, 158, 446}, {2065, 177, 2242, 158, 441}},
	"k2":     {{3127, 109, 3236, 195, 481}, {3142, 107, 3249, 195, 475}},
	"apex6":  {{2418, 206, 2624, 158, 520}, {2516, 185, 2701, 160, 504}},
	"rot":    {{2520, 290, 2810, 174, 627}, {2449, 262, 2711, 172, 595}},
	"c2670":  {{2608, 247, 2855, 162, 642}, {2614, 244, 2858, 163, 641}},
	"c5315":  {{5755, 535, 6290, 433, 1501}, {5754, 515, 6269, 439, 1491}},
	"c3540":  {{6659, 634, 7293, 427, 1501}, {6377, 552, 6929, 412, 1393}},
	"des":    {{9818, 600, 10418, 594, 1581}, {9390, 493, 9883, 586, 1453}},
	"c7552":  {{7519, 584, 8103, 582, 1853}, {7376, 508, 7884, 580, 1759}},
}

// paperTableIIIAvg is the paper's average clock-transistor reduction.
const paperTableIIIAvg = 3.82

// paperDepth is one algorithm's Table IV columns:
// {T_logic, T_disch, T_total, levels}.
type paperDepth struct{ TLogic, TDisch, TTotal, L int }

// paperTableIV maps circuit -> {source depth L, Domino_Map, SOI_Domino_Map}.
var paperTableIV = map[string]struct {
	L    int
	Base paperDepth
	SOI  paperDepth
}{
	"z4ml":   {16, paperDepth{182, 22, 204, 7}, paperDepth{176, 12, 188, 6}},
	"cm150":  {10, paperDepth{268, 35, 303, 9}, paperDepth{193, 20, 213, 7}},
	"mux":    {10, paperDepth{268, 35, 303, 9}, paperDepth{193, 19, 212, 7}},
	"cordic": {12, paperDepth{373, 40, 413, 9}, paperDepth{310, 19, 329, 8}},
	"f51m":   {30, paperDepth{534, 75, 609, 25}, paperDepth{598, 49, 647, 20}},
	"c8":     {11, paperDepth{591, 80, 671, 6}, paperDepth{564, 44, 608, 6}},
	"frg1":   {14, paperDepth{607, 102, 709, 12}, paperDepth{503, 52, 555, 11}},
	"b9":     {10, paperDepth{659, 106, 765, 9}, paperDepth{537, 47, 584, 6}},
	"count":  {21, paperDepth{741, 76, 817, 7}, paperDepth{672, 56, 728, 9}},
	"c432":   {34, paperDepth{981, 125, 1106, 26}, paperDepth{1229, 107, 1336, 25}},
	"apex7":  {17, paperDepth{974, 139, 1113, 11}, paperDepth{1111, 82, 1193, 7}},
	"9symml": {21, paperDepth{1038, 174, 1212, 14}, paperDepth{800, 70, 870, 12}},
	"c1908":  {32, paperDepth{1292, 251, 1543, 16}, paperDepth{1625, 167, 1792, 14}},
	"x1":     {12, paperDepth{1490, 233, 1723, 9}, paperDepth{1364, 106, 1470, 8}},
	"i6":     {6, paperDepth{2109, 237, 2346, 4}, paperDepth{2143, 133, 2276, 4}},
	"c1355":  {20, paperDepth{2640, 244, 2884, 7}, paperDepth{2456, 44, 2500, 7}},
	"t481":   {23, paperDepth{2794, 196, 2990, 17}, paperDepth{3301, 97, 3398, 16}},
	"rot":    {27, paperDepth{2768, 514, 3282, 11}, paperDepth{3259, 320, 3579, 14}},
	"apex6":  {21, paperDepth{3816, 584, 4400, 15}, paperDepth{4222, 315, 4537, 12}},
	"k2":     {21, paperDepth{4181, 324, 4505, 13}, paperDepth{3847, 143, 3990, 12}},
	"c2670":  {31, paperDepth{4052, 521, 4573, 16}, paperDepth{4207, 281, 4488, 14}},
	"dalu":   {23, paperDepth{3795, 786, 4581, 10}, paperDepth{2747, 249, 2996, 12}},
	"c3540":  {42, paperDepth{7675, 1341, 9016, 19}, paperDepth{9021, 601, 9622, 20}},
	"c5315":  {36, paperDepth{8216, 1074, 9290, 17}, paperDepth{9409, 493, 9902, 17}},
	"c7552":  {42, paperDepth{10374, 1172, 11546, 29}, paperDepth{10747, 501, 11248, 22}},
	"des":    {26, paperDepth{14068, 2653, 16721, 14}, paperDepth{21313, 944, 22257, 14}},
}

// paperTableIVAvg is the paper's {T_disch, L} average reductions.
var paperTableIVAvg = [2]float64{49.76, 6.36}
