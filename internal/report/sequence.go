package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"soidomino/internal/bench"
	"soidomino/internal/mapper"
)

// SequenceRow measures the §VII sequence-aware refinement on one circuit:
// discharge devices under the worst-case analysis versus after pruning
// points whose PBE charging scenario is unsatisfiable.
type SequenceRow struct {
	Circuit       string
	Base, BaseSeq mapper.Stats // Domino_Map without/with pruning
	SOI, SOISeq   mapper.Stats // SOI_Domino_Map without/with pruning
}

// SequenceTable is the §VII future-work experiment.
type SequenceTable struct {
	Title string
	Rows  []SequenceRow
}

// Avg returns the average additional discharge reductions pruning brings:
// {baseline, SOI}.
func (t *SequenceTable) Avg() [2]float64 {
	var s [2]float64
	for _, r := range t.Rows {
		s[0] += pct(r.Base.TDisch, r.BaseSeq.TDisch)
		s[1] += pct(r.SOI.TDisch, r.SOISeq.TDisch)
	}
	n := float64(len(t.Rows))
	return [2]float64{s[0] / n, s[1] / n}
}

// RunSequence maps the Table II suite with and without sequence-aware
// pruning for both the baseline and the SOI mapper.
func RunSequence(opt mapper.Options, check bool) (*SequenceTable, error) {
	opt = harness(opt)
	tab := &SequenceTable{Title: "Extension: sequence-aware discharge pruning (paper §VII future work)"}
	for _, name := range bench.TableII {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		row := SequenceRow{Circuit: name}
		for _, variant := range []struct {
			algo Algorithm
			seq  bool
			dst  *mapper.Stats
		}{
			{Domino, false, &row.Base},
			{Domino, true, &row.BaseSeq},
			{SOI, false, &row.SOI},
			{SOI, true, &row.SOISeq},
		} {
			o := opt
			o.SequenceAware = variant.seq
			res, err := p.Map(variant.algo, o, check && variant.seq)
			if err != nil {
				return nil, err
			}
			*variant.dst = res.Stats
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Write renders the table.
func (t *SequenceTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tbase Tdis\t+seq\tpruned%\tsoi Tdis\t+seq\tpruned%")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%d\t%.1f\n",
			r.Circuit,
			r.Base.TDisch, r.BaseSeq.TDisch, pct(r.Base.TDisch, r.BaseSeq.TDisch),
			r.SOI.TDisch, r.SOISeq.TDisch, pct(r.SOI.TDisch, r.SOISeq.TDisch))
	}
	avg := t.Avg()
	fmt.Fprintf(tw, "average\t\t\t%.1f\t\t\t%.1f\n", avg[0], avg[1])
	return tw.Flush()
}
