package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"soidomino/internal/bench"
	"soidomino/internal/layout"
	"soidomino/internal/mapper"
)

// AreaRow compares diffusion-aware area (internal/layout) instead of raw
// transistor counts: discharge devices widen and break the p-diffusion
// rows, so the SOI mapping's advantage survives the translation from
// device counts to layout width.
type AreaRow struct {
	Circuit   string
	Base, SOI *layout.Analysis
	BaseTot   int // baseline T_total, for the count-vs-area comparison
	SOITot    int
}

// AreaTable is the layout extension experiment.
type AreaTable struct {
	Title string
	Rows  []AreaRow
}

// AvgReductions returns the average percent reductions of {T_total,
// diffusion-aware area}.
func (t *AreaTable) AvgReductions() [2]float64 {
	var s [2]float64
	for _, r := range t.Rows {
		s[0] += pct(r.BaseTot, r.SOITot)
		if r.Base.Area > 0 {
			s[1] += 100 * (r.Base.Area - r.SOI.Area) / r.Base.Area
		}
	}
	n := float64(len(t.Rows))
	return [2]float64{s[0] / n, s[1] / n}
}

// RunArea estimates diffusion-aware area across the Table II suite.
func RunArea(opt mapper.Options, check bool) (*AreaTable, error) {
	opt = harness(opt)
	params := layout.DefaultParams()
	tab := &AreaTable{Title: "Extension: diffusion-aware area (pitch units) vs transistor counts"}
	for _, name := range bench.TableII {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		base, err := p.Map(Domino, opt, check)
		if err != nil {
			return nil, err
		}
		soi, err := p.Map(SOI, opt, false)
		if err != nil {
			return nil, err
		}
		ab, err := layout.Analyze(base, params)
		if err != nil {
			return nil, err
		}
		as, err := layout.Analyze(soi, params)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, AreaRow{
			Circuit: name, Base: ab, SOI: as,
			BaseTot: base.Stats.TTotal, SOITot: soi.Stats.TTotal,
		})
	}
	return tab, nil
}

// Write renders the table.
func (t *AreaTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tbase Ttot\tarea\tpbreaks\tsoi Ttot\tarea\tpbreaks\tdTtot%\tdArea%")
	for _, r := range t.Rows {
		dA := 0.0
		if r.Base.Area > 0 {
			dA = 100 * (r.Base.Area - r.SOI.Area) / r.Base.Area
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%d\t%.0f\t%d\t%.2f\t%.2f\n",
			r.Circuit, r.BaseTot, r.Base.Area, r.Base.PBreaks,
			r.SOITot, r.SOI.Area, r.SOI.PBreaks,
			pct(r.BaseTot, r.SOITot), dA)
	}
	avg := t.AvgReductions()
	fmt.Fprintf(tw, "average\t\t\t\t\t\t\t%.2f\t%.2f\n", avg[0], avg[1])
	return tw.Flush()
}
