package report

import (
	"fmt"

	"soidomino/internal/bench"
	"soidomino/internal/mapper"
)

// pct returns the percent reduction from base to cmp (positive = cmp is
// smaller).
func pct(base, cmp int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-cmp) / float64(base)
}

// harness applies the experiment-wide conventions: the PBE-blind mappers
// run with pseudorandom stack order, modeling the arbitrary operand order
// real netlists reach a bulk-CMOS mapper with (see mapper.OrderHashed).
func harness(opt mapper.Options) mapper.Options {
	opt.BaselineStackOrder = mapper.OrderHashed
	return opt
}

// CompareRow is one circuit of Tables I and II: the Domino_Map baseline
// against RS_Map or SOI_Domino_Map, plus the paper's published numbers
// when available.
type CompareRow struct {
	Circuit   string
	Base, Cmp mapper.Stats
	// Paper values: zero when the paper's table lacks the circuit.
	PaperBase, PaperCmp paperTriple
}

// DischReduction returns the measured percent reduction in discharge
// transistors.
func (r CompareRow) DischReduction() float64 { return pct(r.Base.TDisch, r.Cmp.TDisch) }

// TotalReduction returns the measured percent reduction in total
// transistors.
func (r CompareRow) TotalReduction() float64 { return pct(r.Base.TTotal, r.Cmp.TTotal) }

// CompareTable is a regenerated Table I or II.
type CompareTable struct {
	Title     string
	Algorithm Algorithm // the comparison algorithm (RS or SOI)
	Rows      []CompareRow
	// Paper average reductions {T_disch, T_total} for the footer.
	PaperAvg [2]float64
}

// AvgDischReduction averages the per-circuit discharge reductions, the way
// the paper computes its summary row.
func (t *CompareTable) AvgDischReduction() float64 {
	s := 0.0
	for _, r := range t.Rows {
		s += r.DischReduction()
	}
	return s / float64(len(t.Rows))
}

// AvgTotalReduction averages the per-circuit total reductions.
func (t *CompareTable) AvgTotalReduction() float64 {
	s := 0.0
	for _, r := range t.Rows {
		s += r.TotalReduction()
	}
	return s / float64(len(t.Rows))
}

// RunTableI regenerates Table I: Domino_Map vs RS_Map under the area
// objective.
func RunTableI(opt mapper.Options, check bool) (*CompareTable, error) {
	return RunTableIOn(nil, opt, check)
}

// RunTableIOn is RunTableI restricted to the named circuits (nil: the
// paper's full list), preserving the table's row order. Useful for quick
// regressions that pin the output format without mapping all 18 circuits.
func RunTableIOn(circuits []string, opt mapper.Options, check bool) (*CompareTable, error) {
	rows, err := selectCircuits(bench.TableI, circuits)
	if err != nil {
		return nil, err
	}
	return runCompare("Table I: Domino_Map vs RS_Map", rows, RS, paperTableI, paperTableIAvg, opt, check)
}

// RunTableII regenerates Table II: Domino_Map vs SOI_Domino_Map under the
// area objective.
func RunTableII(opt mapper.Options, check bool) (*CompareTable, error) {
	return RunTableIIOn(nil, opt, check)
}

// RunTableIIOn is RunTableII restricted to the named circuits (nil: the
// paper's full list), preserving the table's row order.
func RunTableIIOn(circuits []string, opt mapper.Options, check bool) (*CompareTable, error) {
	rows, err := selectCircuits(bench.TableII, circuits)
	if err != nil {
		return nil, err
	}
	return runCompare("Table II: Domino_Map vs SOI_Domino_Map", rows, SOI, paperTableII, paperTableIIAvg, opt, check)
}

// selectCircuits filters table to the requested circuits, keeping table
// order; nil keeps the whole table, and a name outside the table is an
// error rather than a silently empty row.
func selectCircuits(table, want []string) ([]string, error) {
	if want == nil {
		return table, nil
	}
	in := make(map[string]bool, len(want))
	for _, w := range want {
		in[w] = true
	}
	var out []string
	for _, name := range table {
		if in[name] {
			out = append(out, name)
			delete(in, name)
		}
	}
	for name := range in {
		return nil, fmt.Errorf("report: circuit %q is not in this table", name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("report: no circuits selected")
	}
	return out, nil
}

func runCompare(title string, circuits []string, cmp Algorithm,
	paper map[string][2]paperTriple, paperAvg [2]float64,
	opt mapper.Options, check bool) (*CompareTable, error) {
	opt = harness(opt)
	tab := &CompareTable{Title: title, Algorithm: cmp, PaperAvg: paperAvg}
	for _, name := range circuits {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		base, err := p.Map(Domino, opt, check)
		if err != nil {
			return nil, err
		}
		other, err := p.Map(cmp, opt, check)
		if err != nil {
			return nil, err
		}
		row := CompareRow{Circuit: name, Base: base.Stats, Cmp: other.Stats}
		if pv, ok := paper[name]; ok {
			row.PaperBase, row.PaperCmp = pv[0], pv[1]
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// ClockRow is one circuit of Table III: the SOI mapper under clock weights
// k=1 and k=2.
type ClockRow struct {
	Circuit          string
	K1, K2           mapper.Stats
	PaperK1, PaperK2 paperClock
}

// ClockReduction returns the measured percent reduction in clock-connected
// transistors from k=1 to k=2.
func (r ClockRow) ClockReduction() float64 { return pct(r.K1.TClock, r.K2.TClock) }

// ClockTable is a regenerated Table III.
type ClockTable struct {
	Title    string
	Rows     []ClockRow
	PaperAvg float64
}

// AvgClockReduction averages the per-circuit clock-load reductions.
func (t *ClockTable) AvgClockReduction() float64 {
	s := 0.0
	for _, r := range t.Rows {
		s += r.ClockReduction()
	}
	return s / float64(len(t.Rows))
}

// RunTableIII regenerates Table III: SOI_Domino_Map with clock-transistor
// weight k=1 versus k=2.
func RunTableIII(opt mapper.Options, check bool) (*ClockTable, error) {
	opt = harness(opt)
	tab := &ClockTable{Title: "Table III: SOI_Domino_Map clock weight k=1 vs k=2", PaperAvg: paperTableIIIAvg}
	for _, name := range bench.TableIII {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		o1 := opt
		o1.ClockWeight = 1
		r1, err := p.Map(SOI, o1, check)
		if err != nil {
			return nil, err
		}
		o2 := opt
		o2.ClockWeight = 2
		r2, err := p.Map(SOI, o2, check)
		if err != nil {
			return nil, err
		}
		row := ClockRow{Circuit: name, K1: r1.Stats, K2: r2.Stats}
		if pv, ok := paperTableIII[name]; ok {
			row.PaperK1, row.PaperK2 = pv[0], pv[1]
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// DepthRow is one circuit of Table IV: the depth objective.
type DepthRow struct {
	Circuit string
	// L is the 2-input AND/OR depth of the unate source network, the
	// paper's second column.
	L         int
	Base, SOI mapper.Stats
	PaperL    int
	PaperBase paperDepth
	PaperSOI  paperDepth
}

// DischReduction is the measured discharge-transistor reduction.
func (r DepthRow) DischReduction() float64 { return pct(r.Base.TDisch, r.SOI.TDisch) }

// LevelReduction is the measured reduction in domino levels (negative when
// SOI trades levels for discharges, as the paper's count/rot/dalu rows do).
func (r DepthRow) LevelReduction() float64 { return pct(r.Base.Levels, r.SOI.Levels) }

// DepthTable is a regenerated Table IV.
type DepthTable struct {
	Title    string
	Rows     []DepthRow
	PaperAvg [2]float64 // {T_disch, L}
}

// AvgDischReduction averages the per-circuit discharge reductions.
func (t *DepthTable) AvgDischReduction() float64 {
	s := 0.0
	for _, r := range t.Rows {
		s += r.DischReduction()
	}
	return s / float64(len(t.Rows))
}

// AvgLevelReduction averages the per-circuit level reductions.
func (t *DepthTable) AvgLevelReduction() float64 {
	s := 0.0
	for _, r := range t.Rows {
		s += r.LevelReduction()
	}
	return s / float64(len(t.Rows))
}

// RunTableIV regenerates Table IV: Domino_Map vs SOI_Domino_Map under the
// depth objective.
func RunTableIV(opt mapper.Options, check bool) (*DepthTable, error) {
	opt = harness(opt)
	opt.Objective = mapper.Depth
	tab := &DepthTable{Title: "Table IV: depth objective, Domino_Map vs SOI_Domino_Map", PaperAvg: paperTableIVAvg}
	for _, name := range bench.TableIV {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		base, err := p.Map(Domino, opt, check)
		if err != nil {
			return nil, err
		}
		soi, err := p.Map(SOI, opt, check)
		if err != nil {
			return nil, err
		}
		row := DepthRow{Circuit: name, L: p.Unate.Depth(), Base: base.Stats, SOI: soi.Stats}
		if pv, ok := paperTableIV[name]; ok {
			row.PaperL, row.PaperBase, row.PaperSOI = pv.L, pv.Base, pv.SOI
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Summary renders the one-line verdict comparing a table's measured
// averages against the paper's.
func Summary(name string, measured, paper float64) string {
	return fmt.Sprintf("%s: measured %.2f%% (paper: %.2f%%)", name, measured, paper)
}
