package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"soidomino/internal/bench"
	"soidomino/internal/delay"
	"soidomino/internal/mapper"
)

// DelayRow reports the Elmore-flavored critical-delay estimate of each
// algorithm's mapping for one circuit, testing the paper's §III-C claim
// that PBE-driven stack reordering is a second-order delay effect.
type DelayRow struct {
	Circuit         string
	Base, RS, SOI   float64
	LevelsBase      int
	LevelsSOI       int
	CriticalOutBase string
	CriticalOutSOI  string
}

// DelayTable is the reordering-delay extension experiment.
type DelayTable struct {
	Title string
	Rows  []DelayRow
}

// RunDelay estimates critical delays across the Table II suite.
func RunDelay(opt mapper.Options, check bool) (*DelayTable, error) {
	opt = harness(opt)
	params := delay.DefaultParams()
	tab := &DelayTable{Title: "Extension: estimated critical delay (tau) by algorithm"}
	for _, name := range bench.TableII {
		p, err := Prepare(name)
		if err != nil {
			return nil, err
		}
		row := DelayRow{Circuit: name}
		for i, a := range []Algorithm{Domino, RS, SOI} {
			res, err := p.Map(a, opt, check && i == 0)
			if err != nil {
				return nil, err
			}
			an, err := delay.Analyze(res, params)
			if err != nil {
				return nil, err
			}
			switch a {
			case Domino:
				row.Base = an.Critical
				row.LevelsBase = res.Stats.Levels
				row.CriticalOutBase = an.CriticalOutput
			case RS:
				row.RS = an.Critical
			case SOI:
				row.SOI = an.Critical
				row.LevelsSOI = res.Stats.Levels
				row.CriticalOutSOI = an.CriticalOutput
			}
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// AvgSOIRatio averages SOI/base critical-delay ratios.
func (t *DelayTable) AvgSOIRatio() float64 {
	s, n := 0.0, 0
	for _, r := range t.Rows {
		if r.Base > 0 {
			s += r.SOI / r.Base
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return s / float64(n)
}

// Write renders the table.
func (t *DelayTable) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprintln(tw, "circuit\tbase\tRS\tSOI\tSOI/base\tlevels base\tlevels SOI")
	for _, r := range t.Rows {
		ratio := 1.0
		if r.Base > 0 {
			ratio = r.SOI / r.Base
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.3f\t%d\t%d\n",
			r.Circuit, r.Base, r.RS, r.SOI, ratio, r.LevelsBase, r.LevelsSOI)
	}
	fmt.Fprintf(tw, "average SOI/base delay ratio\t\t\t\t%.3f\n", t.AvgSOIRatio())
	return tw.Flush()
}
