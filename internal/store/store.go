// Package store is the crash-safe persistence tier under the mapping
// service: a durable on-disk result store backing the in-memory LRU as
// a write-behind second tier, and an append-only job journal that lets
// a restarted daemon re-admit unfinished jobs and re-serve terminal
// ones instead of 404ing pollers.
//
// Both surfaces share one on-disk record discipline (see record.go):
// every file starts with a versioned header, every record is framed
// with a sync marker, an explicit length and a CRC32 checksum, and
// result entries are written to a temp file and renamed into place so a
// reader can never observe a half-written entry under its final name.
// A record that fails validation — torn by a crash, bitrotted, or
// written by a future format version — is detected on read, moved to
// the quarantine directory and reported, never served: the mapping DP
// re-derives byte-identical results, so losing a cache entry is always
// safe and serving a wrong one never is.
//
// The package deals in opaque keys and bytes; it knows nothing about
// MapResults or job views. internal/service owns the encoding on both
// sides of the boundary.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"soidomino/internal/faultpoint"
)

// The store's fault-injection points. The two torn-write points are
// Flip-kind: they corrupt this process's on-disk copy of a record —
// exactly what a crash mid-write leaves behind — without ever touching
// the bytes served to a client, so chaos campaigns can arm them under
// the byte-compare oracle. The fsync point is Check-kind and models a
// failing or lying disk at the durability barrier.
var (
	PointWriteTorn = faultpoint.Define("store.write-torn",
		"flip: truncate a result-store entry mid-write, simulating a crash between rename and flush")
	PointFsyncFail = faultpoint.Define("store.fsync-fail",
		"before fsyncing a result-store entry or journal append")
	PointJournalPartial = faultpoint.Define("store.journal-partial",
		"flip: append only a prefix of a journal record, simulating a crash mid-append")
)

// ErrCorrupt marks a record that failed validation (bad header, torn
// frame, checksum mismatch or key skew) and was quarantined.
var ErrCorrupt = errors.New("corrupt store record")

// ErrSync marks a write that landed but whose durability barrier
// (fsync) failed: the entry is readable, it just may not survive a
// power loss. Callers count it and carry on.
var ErrSync = errors.New("store fsync failed")

const (
	resultsDirName    = "results"
	quarantineDirName = "quarantine"
	resultExt         = ".res"
	tmpPrefix         = ".tmp-"
)

// Results is the durable result store: one checksummed file per cache
// key under <state-dir>/results, content-addressed by a hash of the
// key. All methods are safe for concurrent use.
type Results struct {
	dir   string // <root>/results
	qdir  string // <root>/quarantine
	fsync bool

	// mu serializes eviction against itself; Put/Get are per-file atomic
	// and need no lock.
	mu sync.Mutex

	qseq func() int64 // quarantine name uniquifier; replaceable in tests
}

// FsckReport is the outcome of the boot-time scan of a result store.
type FsckReport struct {
	// Entries counts the valid records found.
	Entries int
	// Quarantined counts corrupt or torn entries moved to quarantine.
	Quarantined int
	// TempRemoved counts abandoned temp files (a crash mid-write before
	// the rename) that were deleted.
	TempRemoved int
}

// OpenResults opens (creating as needed) the result store under root
// and fscks every entry: corrupt records are quarantined, abandoned
// temp files removed. It refuses to start only on an unusable
// directory, never on bad records. fsync selects a durability barrier
// on every Put.
func OpenResults(root string, fsync bool) (*Results, FsckReport, error) {
	s := &Results{
		dir:   filepath.Join(root, resultsDirName),
		qdir:  filepath.Join(root, quarantineDirName),
		fsync: fsync,
		qseq:  func() int64 { return time.Now().UnixNano() },
	}
	for _, d := range []string{s.dir, s.qdir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, FsckReport{}, err
		}
	}
	rep, err := s.fsck()
	if err != nil {
		return nil, rep, err
	}
	return s, rep, nil
}

// fsck scans the results directory, validating every entry end to end.
func (s *Results) fsck() (FsckReport, error) {
	var rep FsckReport
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return rep, err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(s.dir, name)
		if filepath.Ext(name) != resultExt {
			// Anything else is a leftover temp file or foreign junk; temp
			// files are the expected debris of a crash mid-write.
			os.Remove(path)
			rep.TempRemoved++
			continue
		}
		if _, _, err := readResultFile(path); err != nil {
			s.quarantine(path)
			rep.Quarantined++
			continue
		}
		rep.Entries++
	}
	return rep, nil
}

// keyPath maps a cache key to its content-addressed file path.
func (s *Results) keyPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:20])+resultExt)
}

// quarantine moves a bad file out of the store, preserving its bytes
// for postmortems under a unique name. Removal is the fallback when the
// rename itself fails: a corrupt record must never be read twice.
func (s *Results) quarantine(path string) {
	dst := filepath.Join(s.qdir, fmt.Sprintf("%s.%d", filepath.Base(path), s.qseq()))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// Put stores val under key: the record is written to a temp file in the
// same directory and renamed into place, so concurrent readers see
// either the old complete entry or the new complete one, never a
// partial write. A fired store.write-torn flip truncates the record
// before the rename — the crash-shaped state the checksum exists to
// catch. A failed fsync abandons the write and returns ErrSync.
func (s *Results) Put(ctx context.Context, key string, val []byte) error {
	data := fileHeader(kindResult)
	data = appendFrame(data, encodeResultPayload(key, val))

	reg := faultpoint.From(ctx)
	if reg.Flip(PointWriteTorn) {
		// Torn write: header intact, frame cut mid-payload. The rename
		// below still lands it under the final name, which is exactly what
		// a crash after rename but before writeback looks like.
		data = data[:headerLen+(len(data)-headerLen)/2]
	}

	f, err := os.CreateTemp(s.dir, tmpPrefix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if s.fsync {
		err := reg.Check(ctx, PointFsyncFail)
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("%w: %v", ErrSync, err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.keyPath(key))
}

// Get returns the bytes stored under key. A miss is (nil, nil); a
// corrupt or torn entry is quarantined and reported as ErrCorrupt,
// never returned as data.
func (s *Results) Get(key string) ([]byte, error) {
	path := s.keyPath(key)
	gotKey, val, err := readResultFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err == nil && gotKey != key {
		// A hash-prefix collision or a foreign file under our name: the
		// stored record answers a different question.
		err = fmt.Errorf("%w: key mismatch", ErrCorrupt)
	}
	if err != nil {
		s.quarantine(path)
		if !errors.Is(err, ErrCorrupt) {
			err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return nil, err
	}
	return val, nil
}

// Drop removes the entry stored under key, quarantining rather than
// deleting it so the bytes stay inspectable. Used when a record passes
// the checksum but fails a higher layer's decoding (format skew).
func (s *Results) Drop(key string) {
	s.quarantine(s.keyPath(key))
}

// Len counts the entries currently in the store.
func (s *Results) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == resultExt {
			n++
		}
	}
	return n
}

// EvictOver removes the oldest entries (by modification time) until at
// most max remain, returning how many went. The disk tier outlives the
// LRU but must not outlive the disk.
func (s *Results) EvictOver(max int) (int, error) {
	if max <= 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	type aged struct {
		path string
		mod  time.Time
	}
	var files []aged
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != resultExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{filepath.Join(s.dir, e.Name()), info.ModTime()})
	}
	if len(files) <= max {
		return 0, nil
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	n := 0
	for _, f := range files[:len(files)-max] {
		if os.Remove(f.path) == nil {
			n++
		}
	}
	return n, nil
}

// encodeResultPayload frames a result entry's payload: the key (length-
// prefixed) followed by the value bytes. Keeping the full key inside the
// record lets Get detect content-address collisions and lets fsck and
// postmortems name what a file held.
func encodeResultPayload(key string, val []byte) []byte {
	p := make([]byte, 0, 4+len(key)+len(val))
	p = binary.BigEndian.AppendUint32(p, uint32(len(key)))
	p = append(p, key...)
	p = append(p, val...)
	return p
}

// decodeResultPayload splits a validated payload back into key and value.
func decodeResultPayload(p []byte) (string, []byte, error) {
	if len(p) < 4 {
		return "", nil, fmt.Errorf("%w: payload too short", ErrCorrupt)
	}
	klen := binary.BigEndian.Uint32(p)
	if int(klen) > len(p)-4 {
		return "", nil, fmt.Errorf("%w: key length out of range", ErrCorrupt)
	}
	return string(p[4 : 4+klen]), p[4+klen:], nil
}

// readResultFile reads and fully validates one result entry.
func readResultFile(path string) (key string, val []byte, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if err := checkHeader(b, kindResult); err != nil {
		return "", nil, err
	}
	payload, n, err := readFrame(b[headerLen:])
	if err != nil {
		return "", nil, err
	}
	_ = n // trailing bytes after the first valid frame are tolerated (forward compat)
	return decodeResultPayload(payload)
}
