package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"soidomino/internal/faultpoint"
)

func TestResultsPutGetRoundTrip(t *testing.T) {
	s, rep, err := OpenResults(t.TempDir(), true)
	if err != nil {
		t.Fatalf("OpenResults: %v", err)
	}
	if rep != (FsckReport{}) {
		t.Fatalf("fresh store fsck = %+v, want zero", rep)
	}
	ctx := context.Background()
	if err := s.Put(ctx, "k1", []byte("hello world")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("k1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "hello world" {
		t.Fatalf("Get = %q, want %q", got, "hello world")
	}
	if got, err := s.Get("absent"); err != nil || got != nil {
		t.Fatalf("miss = (%q, %v), want (nil, nil)", got, err)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}

	// Overwrite is atomic and last-write-wins.
	if err := s.Put(ctx, "k1", []byte("v2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	got, _ = s.Get("k1")
	if string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q, want v2", got)
	}
}

func TestResultsTornWriteQuarantinedNeverServed(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenResults(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := faultpoint.New(1)
	reg.Arm(PointWriteTorn, faultpoint.Fault{Kind: faultpoint.Flip, Prob: 1})
	ctx := faultpoint.With(context.Background(), reg)
	if err := s.Put(ctx, "torn", []byte("this record will be cut in half")); err != nil {
		t.Fatalf("torn Put should land the file: %v", err)
	}
	got, err := s.Get("torn")
	if got != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn Get = (%q, %v), want (nil, ErrCorrupt)", got, err)
	}
	// The corrupt file was quarantined: a second read is a clean miss.
	if got, err := s.Get("torn"); got != nil || err != nil {
		t.Fatalf("post-quarantine Get = (%q, %v), want clean miss", got, err)
	}
	q, _ := os.ReadDir(filepath.Join(dir, quarantineDirName))
	if len(q) != 1 {
		t.Fatalf("quarantine holds %d files, want 1", len(q))
	}
}

func TestResultsBootFsck(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenResults(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s.Put(ctx, "good", []byte("ok"))
	s.Put(ctx, "bad", []byte("will be flipped on disk"))

	// Corrupt "bad" in place, drop an abandoned temp file and some junk.
	badPath := s.keyPath("bad")
	b, _ := os.ReadFile(badPath)
	b[len(b)-1] ^= 0xff
	os.WriteFile(badPath, b, 0o644)
	os.WriteFile(filepath.Join(dir, resultsDirName, tmpPrefix+"12345"), []byte("partial"), 0o644)

	s2, rep, err := OpenResults(dir, false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rep.Entries != 1 || rep.Quarantined != 1 || rep.TempRemoved != 1 {
		t.Fatalf("fsck = %+v, want 1/1/1", rep)
	}
	if got, err := s2.Get("good"); err != nil || string(got) != "ok" {
		t.Fatalf("good after fsck = (%q, %v)", got, err)
	}
	if got, err := s2.Get("bad"); got != nil || err != nil {
		t.Fatalf("bad after fsck = (%q, %v), want clean miss", got, err)
	}
}

func TestResultsFsyncFailAbandonsWrite(t *testing.T) {
	s, _, err := OpenResults(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	reg := faultpoint.New(1)
	reg.Arm(PointFsyncFail, faultpoint.Fault{Kind: faultpoint.Error, Prob: 1})
	ctx := faultpoint.With(context.Background(), reg)
	err = s.Put(ctx, "k", []byte("v"))
	if !errors.Is(err, ErrSync) {
		t.Fatalf("Put under fsync fault = %v, want ErrSync", err)
	}
	if got, _ := s.Get("k"); got != nil {
		t.Fatalf("abandoned write is visible: %q", got)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("Len = %d after abandoned write", n)
	}
}

func TestResultsEvictOverDropsOldest(t *testing.T) {
	s, _, err := OpenResults(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, k := range []string{"a", "b", "c", "d"} {
		s.Put(ctx, k, []byte(k))
		// Stagger mtimes explicitly; filesystem timestamp granularity can
		// be coarser than the loop.
		mt := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(s.keyPath(k), mt, mt)
	}
	n, err := s.EvictOver(2)
	if err != nil || n != 2 {
		t.Fatalf("EvictOver = (%d, %v), want (2, nil)", n, err)
	}
	for _, k := range []string{"a", "b"} {
		if got, _ := s.Get(k); got != nil {
			t.Fatalf("old key %q survived eviction", k)
		}
	}
	for _, k := range []string{"c", "d"} {
		if got, _ := s.Get(k); got == nil {
			t.Fatalf("new key %q evicted", k)
		}
	}
}

func TestResultsKeyMismatchIsCorrupt(t *testing.T) {
	s, _, err := OpenResults(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(context.Background(), "real-key", []byte("v"))
	// Simulate a content-address collision: move the file to where a
	// different key would look for it.
	os.Rename(s.keyPath("real-key"), s.keyPath("other-key"))
	got, err := s.Get("other-key")
	if got != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("collision Get = (%q, %v), want ErrCorrupt", got, err)
	}
}
