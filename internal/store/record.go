// On-disk record framing, shared by the result store and the job
// journal. The format is deliberately boring and pinned by a golden
// test (golden_test.go): changing any byte of it is a format-version
// bump, not a refactor.
//
// File layout:
//
//	header:  "SOIS" | version (1 byte) | kind (1 byte) | 2 reserved zero bytes
//	records: zero or more frames, back to back
//
// Frame layout:
//
//	"SREC" | payload length (u32 BE) | CRC32-IEEE of payload (u32 BE) | payload
//
// The "SREC" sync marker is what makes a torn journal survivable: a
// reader that hits a bad frame scans forward for the next marker that
// heads a fully valid frame, so a mid-file tear costs one record, not
// the rest of the file.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// formatVersion is the on-disk format generation. Readers reject any
	// other version rather than guess.
	formatVersion = 1

	kindResult  byte = 1
	kindJournal byte = 2

	headerLen   = 8
	frameMinLen = 12 // marker + length + crc
	// maxPayload bounds a single record so a corrupted length field can't
	// drive a giant allocation.
	maxPayload = 64 << 20
)

var (
	fileMagic  = []byte("SOIS")
	recMarker  = []byte("SREC")
	crcTable   = crc32.IEEETable
	errBadSync = fmt.Errorf("%w: bad frame", ErrCorrupt)
)

// fileHeader returns a fresh file header for the given record kind.
func fileHeader(kind byte) []byte {
	h := make([]byte, 0, headerLen)
	h = append(h, fileMagic...)
	h = append(h, formatVersion, kind, 0, 0)
	return h
}

// checkHeader validates magic, version and kind.
func checkHeader(b []byte, kind byte) error {
	if len(b) < headerLen || !bytes.Equal(b[:4], fileMagic) {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if b[4] != formatVersion {
		return fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, b[4])
	}
	if b[5] != kind {
		return fmt.Errorf("%w: wrong record kind %d", ErrCorrupt, b[5])
	}
	return nil
}

// appendFrame appends one framed record to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = append(dst, recMarker...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// readFrame validates and returns the first frame's payload and the
// total bytes it consumed.
func readFrame(b []byte) (payload []byte, consumed int, err error) {
	if len(b) < frameMinLen || !bytes.Equal(b[:4], recMarker) {
		return nil, 0, errBadSync
	}
	n := binary.BigEndian.Uint32(b[4:])
	if n > maxPayload || int(n) > len(b)-frameMinLen {
		return nil, 0, fmt.Errorf("%w: truncated frame", ErrCorrupt)
	}
	want := binary.BigEndian.Uint32(b[8:])
	payload = b[frameMinLen : frameMinLen+int(n)]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, frameMinLen + int(n), nil
}

// scanFrames walks a byte stream of frames, calling emit for each valid
// payload. At a bad frame it resynchronizes: scan forward byte by byte
// for the next marker that heads a fully valid frame, reporting the
// skipped span as one torn region. Returns the torn-region count and
// total bytes skipped.
func scanFrames(b []byte, emit func(payload []byte)) (tornRegions, tornBytes int) {
	for len(b) > 0 {
		payload, n, err := readFrame(b)
		if err == nil {
			emit(payload)
			b = b[n:]
			continue
		}
		// Tear: hunt for the next marker that starts a valid frame.
		skip := len(b) // default: tail is garbage
		for off := 1; off+frameMinLen <= len(b); off++ {
			if !bytes.Equal(b[off:off+4], recMarker) {
				continue
			}
			if _, _, err := readFrame(b[off:]); err == nil {
				skip = off
				break
			}
		}
		tornRegions++
		tornBytes += skip
		b = b[skip:]
	}
	return tornRegions, tornBytes
}
