package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"soidomino/internal/faultpoint"
)

func appendAll(t *testing.T, j *Journal, recs ...JobRecord) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(context.Background(), r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep, err := OpenJournal(dir, SyncAlways)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(rep.Records) != 0 || rep.TornRegions != 0 {
		t.Fatalf("fresh replay = %+v", rep)
	}
	recs := []JobRecord{
		{Type: RecAccepted, ID: "j1", Key: "k1", Request: json.RawMessage(`{"circuit":"mux"}`), UnixMS: 1},
		{Type: RecRunning, ID: "j1", Key: "k1", UnixMS: 2},
		{Type: RecDone, ID: "j1", Key: "k1", UnixMS: 3},
		{Type: RecAccepted, ID: "j2", Key: "k2", Request: json.RawMessage(`{"circuit":"z4ml"}`), UnixMS: 4},
	}
	appendAll(t, j, recs...)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rep2, err := OpenJournal(dir, SyncAlways)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(rep2.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(rep2.Records), len(recs))
	}
	for i, got := range rep2.Records {
		want, _ := json.Marshal(recs[i])
		g, _ := json.Marshal(got)
		if string(g) != string(want) {
			t.Fatalf("record %d = %s, want %s", i, g, want)
		}
	}
	if rep2.TornRegions != 0 || rep2.BadRecords != 0 {
		t.Fatalf("clean journal replay reported damage: %+v", rep2)
	}
}

func TestJournalSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j,
		JobRecord{Type: RecAccepted, ID: "j1", UnixMS: 1},
		JobRecord{Type: RecDone, ID: "j1", UnixMS: 2},
	)
	j.Close()

	// Tear the tail: chop the last record mid-frame.
	path := filepath.Join(dir, journalName)
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-7], 0o644)

	_, rep, err := OpenJournal(dir, SyncOff)
	if err != nil {
		t.Fatalf("reopen torn journal: %v", err)
	}
	if len(rep.Records) != 1 || rep.Records[0].Type != RecAccepted {
		t.Fatalf("torn replay records = %+v, want just the accepted record", rep.Records)
	}
	if rep.TornRegions != 1 {
		t.Fatalf("TornRegions = %d, want 1", rep.TornRegions)
	}
	if _, err := os.Stat(filepath.Join(dir, journalTornName)); err != nil {
		t.Fatalf("torn bytes not preserved: %v", err)
	}
}

func TestJournalResyncsPastMidFileTear(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, JobRecord{Type: RecAccepted, ID: "j1", UnixMS: 1})
	// Tear the middle record via the journal-partial flip, then write a
	// good one after it.
	reg := faultpoint.New(1)
	reg.Arm(PointJournalPartial, faultpoint.Fault{Kind: faultpoint.Flip, Prob: 1, Times: 1})
	ctx := faultpoint.With(context.Background(), reg)
	if err := j.Append(ctx, JobRecord{Type: RecAccepted, ID: "j2", UnixMS: 2}); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, JobRecord{Type: RecAccepted, ID: "j3", UnixMS: 3})
	j.Close()

	_, rep, err := OpenJournal(dir, SyncOff)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var ids []string
	for _, r := range rep.Records {
		ids = append(ids, r.ID)
	}
	if len(ids) != 2 || ids[0] != "j1" || ids[1] != "j3" {
		t.Fatalf("resync replay ids = %v, want [j1 j3]", ids)
	}
	if rep.TornRegions != 1 || rep.TornBytes == 0 {
		t.Fatalf("resync damage = %+v, want one torn region", rep)
	}
}

func TestJournalHealedOnReopen(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := OpenJournal(dir, SyncOff)
	appendAll(t, j, JobRecord{Type: RecAccepted, ID: "j1", UnixMS: 1})
	reg := faultpoint.New(1)
	reg.Arm(PointJournalPartial, faultpoint.Fault{Kind: faultpoint.Flip, Prob: 1})
	j.Append(faultpoint.With(context.Background(), reg), JobRecord{Type: RecAccepted, ID: "j2", UnixMS: 2})
	j.Close()

	// First reopen heals (rewrites compacted); second is clean.
	j2, rep, err := OpenJournal(dir, SyncOff)
	if err != nil || rep.TornRegions != 1 {
		t.Fatalf("first reopen = (%+v, %v)", rep, err)
	}
	j2.Close()
	_, rep2, err := OpenJournal(dir, SyncOff)
	if err != nil || rep2.TornRegions != 0 || len(rep2.Records) != 1 {
		t.Fatalf("healed reopen = (%+v, %v), want clean single record", rep2, err)
	}
}

func TestJournalCompactDropsDeadJobs(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j,
		JobRecord{Type: RecAccepted, ID: "j1", UnixMS: 1},
		JobRecord{Type: RecDone, ID: "j1", UnixMS: 2},
		JobRecord{Type: RecAccepted, ID: "j2", UnixMS: 3},
	)
	dropped, err := j.Compact(func(id string) bool { return id == "j2" })
	if err != nil || dropped != 2 {
		t.Fatalf("Compact = (%d, %v), want (2, nil)", dropped, err)
	}
	// The journal stays appendable after the fd swap.
	appendAll(t, j, JobRecord{Type: RecRunning, ID: "j2", UnixMS: 4})
	j.Close()

	_, rep, err := OpenJournal(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, r := range rep.Records {
		ids = append(ids, r.ID+":"+r.Type)
	}
	if len(ids) != 2 || ids[0] != "j2:accepted" || ids[1] != "j2:running" {
		t.Fatalf("post-compact replay = %v", ids)
	}
}

func TestJournalAbortStopsAppends(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, SyncInterval)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, JobRecord{Type: RecAccepted, ID: "j1", UnixMS: 1})
	j.Abort()
	if err := j.Append(context.Background(), JobRecord{Type: RecDone, ID: "j1", UnixMS: 2}); err != nil {
		t.Fatalf("post-abort Append should be a silent no-op, got %v", err)
	}
	j.Abort() // idempotent
	j.Close() // safe after abort

	_, rep, err := OpenJournal(dir, SyncInterval)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 1 || rep.Records[0].Type != RecAccepted {
		t.Fatalf("post-abort replay = %+v, want only the pre-abort record", rep.Records)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "off": SyncOff, "": SyncInterval,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy(bogus) succeeded")
	}
}
