package store

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRecordEncodingGolden pins the v1 on-disk encoding — header magic,
// version byte, kind bytes, frame marker, length and CRC fields — so
// any change to the format is a deliberate, versioned bump that shows
// up as a golden diff, never an accidental drift that silently
// invalidates every state dir in the field.
func TestRecordEncodingGolden(t *testing.T) {
	var buf []byte

	// Result record with a fixed key and value.
	buf = append(buf, fileHeader(kindResult)...)
	buf = appendFrame(buf, encodeResultPayload("soi:v1:demo-key", []byte("{\n  \"circuit\": \"demo\"\n}\n")))

	// Journal file with one record of each type, fixed timestamps.
	buf = append(buf, fileHeader(kindJournal)...)
	for i, typ := range []string{RecAccepted, RecRunning, RecDone, RecFailed, RecCanceled} {
		rec := JobRecord{Type: typ, ID: "j7", Key: "soi:v1:demo-key", UnixMS: 1700000000000 + int64(i)}
		if typ == RecAccepted {
			rec.Request = json.RawMessage(`{"circuit":"demo","algorithm":"soi"}`)
		}
		if typ == RecFailed {
			rec.Error = "injected fault"
		}
		p, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = appendFrame(buf, p)
	}

	got := hex.Dump(buf)
	golden := filepath.Join("testdata", "record_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("on-disk record encoding drifted from %s.\nThis is a format change: bump formatVersion and regenerate with -update.\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestGoldenFileStillReadable proves the pinned bytes decode with the
// current reader: version compatibility, not just byte stability.
func TestGoldenFileStillReadable(t *testing.T) {
	// Reconstruct the result portion exactly as the golden test does.
	buf := fileHeader(kindResult)
	buf = appendFrame(buf, encodeResultPayload("soi:v1:demo-key", []byte("value")))
	if err := checkHeader(buf, kindResult); err != nil {
		t.Fatal(err)
	}
	payload, _, err := readFrame(buf[headerLen:])
	if err != nil {
		t.Fatal(err)
	}
	key, val, err := decodeResultPayload(payload)
	if err != nil || key != "soi:v1:demo-key" || string(val) != "value" {
		t.Fatalf("decode = (%q, %q, %v)", key, val, err)
	}
}
