package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"soidomino/internal/faultpoint"
)

// Record types of the job journal: a job's life is one accepted record,
// usually a running record, and one terminal record (done, failed or
// canceled). A job whose last record is non-terminal at replay was in
// flight when the process died and is re-admitted by the service.
const (
	RecAccepted = "accepted"
	RecRunning  = "running"
	RecDone     = "done"
	RecFailed   = "failed"
	RecCanceled = "canceled"
)

// JobRecord is one journal entry. Request rides only on accepted
// records (it is what re-admission replays); Error only on failed or
// canceled ones.
type JobRecord struct {
	Type    string          `json:"type"`
	ID      string          `json:"id"`
	Key     string          `json:"key,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	Error   string          `json:"error,omitempty"`
	UnixMS  int64           `json:"unix_ms"`
}

// Terminal reports whether the record ends a job's life.
func (r JobRecord) Terminal() bool {
	return r.Type == RecDone || r.Type == RecFailed || r.Type == RecCanceled
}

// SyncPolicy selects the durability barrier applied to journal appends.
type SyncPolicy uint8

const (
	// SyncInterval fsyncs dirty journal bytes from a background ticker
	// (~100ms): bounded loss window, negligible append latency. The
	// default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs every append before it returns.
	SyncAlways
	// SyncOff never fsyncs; the OS flushes when it pleases.
	SyncOff
)

// ParseSyncPolicy maps the -journal-fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return SyncInterval, fmt.Errorf("unknown journal fsync policy %q (want always, interval or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	}
	return "interval"
}

const (
	journalName     = "journal.soij"
	journalTornName = "journal.torn"
	syncEvery       = 100 * time.Millisecond
)

// Journal is the append-only job journal at <state-dir>/journal.soij.
// Appends are framed and checksummed; replay survives a torn tail or a
// mid-file tear by resynchronizing on the record marker.
type Journal struct {
	path   string
	policy SyncPolicy

	mu      sync.Mutex
	f       *os.File
	dirty   bool
	aborted bool

	syncStop chan struct{}
	syncDone chan struct{}
	stopOnce sync.Once
}

// Replay is what a journal held when it was opened.
type Replay struct {
	// Records are the valid records in append order.
	Records []JobRecord
	// TornRegions counts spans of unreadable bytes skipped by marker
	// resync; TornBytes is their total size. Torn bytes are preserved at
	// <state-dir>/journal.torn for postmortems.
	TornRegions int
	TornBytes   int
	// BadRecords counts frames whose checksum passed but whose JSON
	// payload did not decode — format skew, not a torn write.
	BadRecords int
}

// OpenJournal opens (creating as needed) the journal under root,
// replays it, and — if the replay found tears or bad records — rewrites
// it compacted so damage is paid for once, not on every boot. Like the
// result store it refuses to start only on an unusable file, never on
// bad records.
func OpenJournal(root string, policy SyncPolicy) (*Journal, *Replay, error) {
	j := &Journal{
		path:   filepath.Join(root, journalName),
		policy: policy,
	}
	rep := &Replay{}

	b, err := os.ReadFile(j.path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh journal.
	case err != nil:
		return nil, nil, err
	case len(b) > 0:
		if err := checkHeader(b, kindJournal); err != nil {
			// The whole file is unreadable; preserve it and start over.
			rep.TornRegions++
			rep.TornBytes = len(b)
			os.Rename(j.path, filepath.Join(root, journalTornName))
		} else {
			var torn []byte
			regions, bytes := scanFrames(b[headerLen:], func(p []byte) {
				var rec JobRecord
				if json.Unmarshal(p, &rec) != nil || rec.ID == "" {
					rep.BadRecords++
					return
				}
				rep.Records = append(rep.Records, rec)
			})
			rep.TornRegions, rep.TornBytes = regions, bytes
			if regions > 0 {
				torn = b // keep the damaged original whole for postmortems
			}
			if regions > 0 || rep.BadRecords > 0 {
				if torn != nil {
					os.WriteFile(filepath.Join(root, journalTornName), torn, 0o644)
				}
				if err := rewriteJournal(j.path, rep.Records); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j.f = f
	if info, err := f.Stat(); err == nil && info.Size() == 0 {
		if _, err := f.Write(fileHeader(kindJournal)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}

	if policy == SyncInterval {
		j.syncStop = make(chan struct{})
		j.syncDone = make(chan struct{})
		go j.syncLoop()
	}
	return j, rep, nil
}

// rewriteJournal atomically replaces the journal file with just the
// given records.
func rewriteJournal(path string, recs []JobRecord) error {
	data := fileHeader(kindJournal)
	for _, rec := range recs {
		p, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		data = appendFrame(data, p)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// syncLoop flushes dirty appends on a ticker under SyncInterval.
func (j *Journal) syncLoop() {
	defer close(j.syncDone)
	t := time.NewTicker(syncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if j.dirty && !j.aborted {
				j.f.Sync()
				j.dirty = false
			}
			j.mu.Unlock()
		case <-j.syncStop:
			return
		}
	}
}

// Append writes one record. A fired store.journal-partial flip writes
// only a prefix of the frame — the crash-shaped tear that replay's
// marker resync exists to survive. After Abort, appends are silent
// no-ops: a crash-stopped process writes nothing more.
func (j *Journal) Append(ctx context.Context, rec JobRecord) error {
	p, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	frame := appendFrame(nil, p)

	reg := faultpoint.From(ctx)
	if reg.Flip(PointJournalPartial) {
		frame = frame[:len(frame)/2]
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.aborted {
		return nil
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	switch j.policy {
	case SyncAlways:
		if err := reg.Check(ctx, PointFsyncFail); err != nil {
			return fmt.Errorf("%w: %v", ErrSync, err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("%w: %v", ErrSync, err)
		}
	case SyncInterval:
		j.dirty = true
	}
	return nil
}

// Compact rewrites the journal keeping only records of jobs the live
// predicate admits, returning how many records were dropped. The
// retention janitor calls this after evicting terminal jobs so the
// journal tracks the job table instead of growing without bound.
func (j *Journal) Compact(live func(id string) bool) (dropped int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.aborted || j.f == nil {
		return 0, nil
	}
	if err := j.f.Sync(); err != nil && j.policy != SyncOff {
		return 0, err
	}
	b, err := os.ReadFile(j.path)
	if err != nil {
		return 0, err
	}
	var keep []JobRecord
	total := 0
	if len(b) >= headerLen {
		scanFrames(b[headerLen:], func(p []byte) {
			var rec JobRecord
			if json.Unmarshal(p, &rec) != nil {
				total++ // undecodable records are dropped too
				return
			}
			total++
			if live(rec.ID) {
				keep = append(keep, rec)
			}
		})
	}
	dropped = total - len(keep)
	if dropped == 0 {
		return 0, nil
	}
	if err := rewriteJournal(j.path, keep); err != nil {
		return 0, err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	j.f.Close()
	j.f = f
	j.dirty = false
	return dropped, nil
}

// Close stops the sync loop, flushes, and closes the file.
func (j *Journal) Close() error {
	j.stopSyncLoop()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.aborted {
		return nil
	}
	if j.policy != SyncOff {
		j.f.Sync()
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Abort is the crash-stop close used by chaos harnesses: no final
// flush, and every later Append is a no-op, so the on-disk journal
// looks exactly as it would had the process been SIGKILLed at this
// instant.
func (j *Journal) Abort() {
	j.mu.Lock()
	if j.aborted {
		j.mu.Unlock()
		return
	}
	j.aborted = true
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.mu.Unlock()
	j.stopSyncLoop()
}

func (j *Journal) stopSyncLoop() {
	if j.syncStop == nil {
		return
	}
	j.stopOnce.Do(func() { close(j.syncStop) })
	<-j.syncDone
}
