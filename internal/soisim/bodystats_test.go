package soisim

import (
	"strings"
	"testing"

	"soidomino/internal/mapper"
)

func TestBodyStatsUnprotectedExposure(t *testing.T) {
	_, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	cfg := DefaultConfig()
	cfg.DisableDischarge = true
	sim := New(c, cfg)
	for _, vec := range fig2Sequence() {
		if _, _, err := sim.Cycle(vec); err != nil {
			t.Fatal(err)
		}
	}
	bs := sim.BodyStats()
	if bs.HighPhases == 0 || bs.ChargedDevices < 2 {
		t.Errorf("unprotected exposure missing: %s", bs)
	}
	if bs.Corrupted != 1 {
		t.Errorf("corrupted = %d, want 1", bs.Corrupted)
	}
	// 4 pulldown devices x 8 phases.
	if bs.DevicePhases != 32 {
		t.Errorf("device-phases = %d, want 32", bs.DevicePhases)
	}
	if bs.HighRatio() <= 0 || bs.HighRatio() > 1 {
		t.Errorf("ratio = %v", bs.HighRatio())
	}
	if !strings.Contains(bs.String(), "body-high") {
		t.Errorf("String = %q", bs.String())
	}
}

// TestBodyStatsProtectedIsZero: both of the paper's defenses keep body
// exposure at exactly zero through the fig. 2 sequence.
func TestBodyStatsProtectedIsZero(t *testing.T) {
	for _, tc := range []struct {
		label string
		soi   bool
	}{{"protected baseline", false}, {"soi mapping", true}} {
		algo := mapper.DominoMap
		if tc.soi {
			algo = mapper.SOIDominoMap
		}
		_, c := buildCircuit(t, fig2Network(), algo)
		sim := New(c, DefaultConfig())
		for _, vec := range fig2Sequence() {
			if _, _, err := sim.Cycle(vec); err != nil {
				t.Fatal(err)
			}
		}
		bs := sim.BodyStats()
		if bs.HighPhases != 0 || bs.ChargedDevices != 0 || bs.Events != 0 {
			t.Errorf("%s: exposure should be zero: %s", tc.label, bs)
		}
	}
}

func TestBodyStatsEmpty(t *testing.T) {
	_, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	sim := New(c, DefaultConfig())
	bs := sim.BodyStats()
	if bs.DevicePhases != 0 || bs.HighRatio() != 0 {
		t.Errorf("fresh simulator stats = %s", bs)
	}
}
