package soisim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/unate"
)

func fig2Network() *logic.Network {
	n := logic.New("fig2")
	a := n.AddInput("A")
	b := n.AddInput("B")
	c := n.AddInput("C")
	d := n.AddInput("D")
	or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
	n.AddOutput("f", n.AddGate(logic.And, or3, d))
	return n
}

func buildCircuit(t *testing.T, n *logic.Network,
	algo func(*logic.Network, mapper.Options) (*mapper.Result, error)) (*mapper.Result, *netlist.Circuit) {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algo(u.Network, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := netlist.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, c
}

// fig2Sequence is the paper's §III-B failure scenario: A held high with
// B=C=D low long enough to charge the bodies of B and C, then A drops and
// D rises in the same cycle.
func fig2Sequence() []map[string]bool {
	v := func(a, b, c, d bool) map[string]bool {
		return map[string]bool{"A": a, "B": b, "C": c, "D": d}
	}
	return []map[string]bool{
		v(true, false, false, false),
		v(true, false, false, false),
		v(true, false, false, false),
		v(false, false, false, true), // the PBE strike
	}
}

// TestFigure2UnprotectedFails reproduces the paper's central failure: the
// bulk-style gate with its discharge device disconnected evaluates f=1
// even though A=B=C=0.
func TestFigure2UnprotectedFails(t *testing.T) {
	_, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	cfg := DefaultConfig()
	cfg.DisableDischarge = true
	sim := New(c, cfg)
	seq := fig2Sequence()
	var last map[string]bool
	for i, vec := range seq {
		out, _, err := sim.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		last = out
		if i < len(seq)-1 && out["f"] != false {
			t.Errorf("cycle %d: f=%v, want false", i, out["f"])
		}
	}
	if last["f"] != true {
		t.Errorf("final cycle: f=%v; expected the PBE to corrupt the output to true", last["f"])
	}
	events := sim.Events()
	if len(events) == 0 {
		t.Fatal("no PBE events recorded")
	}
	corrupted := false
	for _, e := range events {
		if e.Corrupted {
			corrupted = true
			if len(e.Devices) < 2 {
				t.Errorf("expected bipolar current through both B and C, got devices %v", e.Devices)
			}
		}
	}
	if !corrupted {
		t.Error("no corrupting event recorded")
	}
}

// TestFigure2ProtectedSafe: with the p-discharge device active the same
// sequence is harmless (paper fig. 2(c)).
func TestFigure2ProtectedSafe(t *testing.T) {
	res, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	if res.Stats.TDisch != 1 {
		t.Fatalf("expected 1 discharge device, got %d", res.Stats.TDisch)
	}
	sim := New(c, DefaultConfig())
	for i, vec := range fig2Sequence() {
		out, events, err := sim.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) > 0 {
			t.Errorf("cycle %d: unexpected events %v", i, events)
		}
		want, err := res.Eval(vec)
		if err != nil {
			t.Fatal(err)
		}
		if out["f"] != want["f"] {
			t.Errorf("cycle %d: f=%v, want %v", i, out["f"], want["f"])
		}
	}
}

// TestFigure2SOISafeWithoutDischarges: the SOI mapping grounds the
// parallel stack, so it survives the same sequence with zero discharge
// devices.
func TestFigure2SOISafeWithoutDischarges(t *testing.T) {
	res, c := buildCircuit(t, fig2Network(), mapper.SOIDominoMap)
	if res.Stats.TDisch != 0 {
		t.Fatalf("SOI mapping should need no discharge devices, got %d", res.Stats.TDisch)
	}
	sim := New(c, DefaultConfig())
	for i, vec := range fig2Sequence() {
		out, events, err := sim.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Corrupted {
				t.Errorf("cycle %d: corrupted output: %v", i, e)
			}
		}
		want, _ := res.Eval(vec)
		if out["f"] != want["f"] {
			t.Errorf("cycle %d: f=%v, want %v", i, out["f"], want["f"])
		}
	}
}

// TestSimulatorMatchesLogic: protected circuits under random sequences
// track the mapped network's function cycle by cycle.
func TestSimulatorMatchesLogic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := randomCircuit(rng)
	for _, algo := range []func(*logic.Network, mapper.Options) (*mapper.Result, error){
		mapper.DominoMap, mapper.RSMap, mapper.SOIDominoMap,
	} {
		res, c := buildCircuit(t, n, algo)
		sim := New(c, DefaultConfig())
		for cyc, vec := range RandomVectors(c, rand.New(rand.NewSource(7)), 50) {
			got, events, err := sim.Cycle(vec)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events {
				if e.Corrupted {
					t.Fatalf("%s: protected circuit corrupted at cycle %d: %v", res.Algorithm, cyc, e)
				}
			}
			want, err := res.Eval(vec)
			if err != nil {
				t.Fatal(err)
			}
			for name, v := range want {
				if got[name] != v {
					t.Fatalf("%s cycle %d: output %q = %v, want %v", res.Algorithm, cyc, name, got[name], v)
				}
			}
		}
	}
}

// holdingVectors generates stressful sequences: inputs hold for several
// cycles then switch, maximizing body-charging opportunities.
func holdingVectors(c *netlist.Circuit, rng *rand.Rand, cycles int) []map[string]bool {
	var vecs []map[string]bool
	cur := make(map[string]bool, len(c.Inputs))
	for _, in := range c.Inputs {
		cur[in] = rng.Intn(2) == 1
	}
	for len(vecs) < cycles {
		hold := 2 + rng.Intn(4)
		for i := 0; i < hold && len(vecs) < cycles; i++ {
			cp := make(map[string]bool, len(cur))
			for k, v := range cur {
				cp[k] = v
			}
			vecs = append(vecs, cp)
		}
		// Flip a random subset.
		for _, in := range c.Inputs {
			if rng.Intn(3) == 0 {
				cur[in] = !cur[in]
			}
		}
	}
	return vecs
}

// Property: mapped-and-protected circuits never corrupt under holding
// stress patterns, for all three algorithms; the unprotected baseline
// realization of the same circuits is allowed to (and the comparison is
// reported when it does).
func TestProtectedNeverCorruptsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(3))}
	algos := []func(*logic.Network, mapper.Options) (*mapper.Result, error){
		mapper.DominoMap, mapper.RSMap, mapper.SOIDominoMap,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomCircuit(rng)
		d, err := decompose.Decompose(n)
		if err != nil {
			return false
		}
		u, err := unate.Convert(d)
		if err != nil {
			return false
		}
		for _, algo := range algos {
			res, err := algo(u.Network, mapper.DefaultOptions())
			if err != nil {
				return false
			}
			c, err := netlist.Build(res)
			if err != nil {
				return false
			}
			sim := New(c, DefaultConfig())
			vecs := holdingVectors(c, rand.New(rand.NewSource(seed+1)), 60)
			for _, vec := range vecs {
				got, events, err := sim.Cycle(vec)
				if err != nil {
					return false
				}
				for _, e := range events {
					if e.Corrupted {
						return false
					}
				}
				want, err := res.Eval(vec)
				if err != nil {
					return false
				}
				for name, v := range want {
					if got[name] != v {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestUnprotectedStressFindsPBE: a circuit rich in PBE-prone structure,
// realized without discharge devices, must show corrupted outputs under
// holding stress. This is the software analogue of the paper's claim that
// ignoring the PBE "will possibly obtain circuits that do not function
// correctly".
func TestUnprotectedStressFindsPBE(t *testing.T) {
	// Several (A+B+C)*D-shaped cones.
	n := logic.New("prone")
	var outs []int
	for k := 0; k < 4; k++ {
		a := n.AddInput("a" + string(rune('0'+k)))
		b := n.AddInput("b" + string(rune('0'+k)))
		c := n.AddInput("c" + string(rune('0'+k)))
		d := n.AddInput("d" + string(rune('0'+k)))
		or3 := n.AddGate(logic.Or, n.AddGate(logic.Or, a, b), c)
		outs = append(outs, n.AddGate(logic.And, or3, d))
	}
	for i, o := range outs {
		n.AddOutput("f"+string(rune('0'+i)), o)
	}
	res, c := buildCircuit(t, n, mapper.DominoMap)
	if res.Stats.TDisch == 0 {
		t.Fatal("test circuit should demand discharge devices under the baseline")
	}
	cfg := DefaultConfig()
	cfg.DisableDischarge = true
	sim := New(c, cfg)
	corrupted := 0
	for _, vec := range holdingVectors(c, rand.New(rand.NewSource(13)), 300) {
		_, events, err := sim.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Corrupted {
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Error("expected corrupted evaluations in the unprotected circuit under stress")
	}
}

func TestMissingInput(t *testing.T) {
	_, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	sim := New(c, DefaultConfig())
	if _, _, err := sim.Cycle(map[string]bool{"A": true}); err == nil {
		t.Error("Cycle with missing inputs should fail")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 3, Gate: 1, Devices: []int{4, 5}, Corrupted: true}
	if s := e.String(); !strings.Contains(s, "CORRUPTED") {
		t.Errorf("Event.String = %q", s)
	}
	e.Corrupted = false
	if s := e.String(); !strings.Contains(s, "subcritical") {
		t.Errorf("Event.String = %q", s)
	}
}

func TestRandomVectorsShape(t *testing.T) {
	_, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	vecs := RandomVectors(c, rand.New(rand.NewSource(1)), 10)
	if len(vecs) != 10 || len(vecs[0]) != len(c.Inputs) {
		t.Errorf("vectors shape wrong: %d x %d", len(vecs), len(vecs[0]))
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	_, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	sim := New(c, Config{})
	if sim.cfg.BodyChargeThreshold != DefaultConfig().BodyChargeThreshold {
		t.Error("zero config should adopt defaults")
	}
	if sim.cfg.MinBipolarWidth != DefaultConfig().MinBipolarWidth {
		t.Error("zero MinBipolarWidth should adopt default")
	}
}

func randomCircuit(rng *rand.Rand) *logic.Network {
	n := logic.New("rnd")
	nin := 4 + rng.Intn(4)
	var pool []int
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	ops := []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i, ngates := 0, 6+rng.Intn(18); i < ngates; i++ {
		op := ops[rng.Intn(len(ops))]
		k := 1
		if op.MaxFanin() != 1 {
			k = 2 + rng.Intn(2)
		}
		fanin := make([]int, k)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, n.AddGate(op, fanin...))
	}
	n.AddOutput("f", pool[len(pool)-1])
	n.AddOutput("g", pool[len(pool)-2])
	return n
}
