package soisim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
	"soidomino/internal/unate"
)

// These tests validate the sequence-aware discharge pruning (paper §VII,
// mapper.Options.SequenceAware) against the simulator's independent
// floating-body model: circuits that dropped "unexcitable" discharge
// devices must still never corrupt under stress.

func mapSeq(t *testing.T, n *logic.Network, algo func(*logic.Network, mapper.Options) (*mapper.Result, error),
	seq bool) (*mapper.Result, *netlist.Circuit) {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.DefaultOptions()
	opt.SequenceAware = seq
	res, err := algo(u.Network, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Audit(); err != nil {
		t.Fatal(err)
	}
	c, err := netlist.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Audit(); err != nil {
		t.Fatal(err)
	}
	return res, c
}

// muxTree is mux(s, a, b) AND e: in source order the baseline stacks the
// multiplexer's parallel pair above e, creating discharge points whose
// charging scenario needs s and !s at once — the sequence-prunable shape.
func muxTree() *logic.Network {
	n := logic.New("muxAnd")
	a := n.AddInput("a")
	b := n.AddInput("b")
	s := n.AddInput("s")
	e := n.AddInput("e")
	mux := n.AddGate(logic.Or,
		n.AddGate(logic.And, n.AddGate(logic.Not, s), a),
		n.AddGate(logic.And, s, b))
	n.AddOutput("y", n.AddGate(logic.And, mux, e))
	return n
}

func TestSequenceAwarePrunesMux(t *testing.T) {
	full, _ := mapSeq(t, muxTree(), mapper.DominoMap, false)
	if full.Stats.TDisch == 0 {
		t.Fatalf("precondition: baseline should need discharges\n%s", full.Dump())
	}
	pruned, _ := mapSeq(t, muxTree(), mapper.DominoMap, true)
	if pruned.Stats.TDisch >= full.Stats.TDisch {
		t.Fatalf("sequence analysis should prune mux discharges: %d -> %d",
			full.Stats.TDisch, pruned.Stats.TDisch)
	}
}

func TestSequenceAwarePrunedMuxSurvivesStress(t *testing.T) {
	res, c := mapSeq(t, muxTree(), mapper.DominoMap, true)
	sim := New(c, DefaultConfig())
	for cyc, vec := range holdingVectors(c, rand.New(rand.NewSource(77)), 600) {
		got, events, err := sim.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Corrupted {
				t.Fatalf("pruned mux corrupted at cycle %d: %v", cyc, e)
			}
		}
		want, err := res.Eval(vec)
		if err != nil {
			t.Fatal(err)
		}
		if got["y"] != want["y"] {
			t.Fatalf("cycle %d: output mismatch", cyc)
		}
	}
	if bs := sim.BodyStats(); bs.Corrupted != 0 {
		t.Errorf("exposure: %s", bs)
	}
}

// Property: sequence-aware mappings of random circuits never corrupt
// under holding stress, for the baseline and SOI mappers. A pruning
// unsoundness would surface here as a corrupted evaluation.
func TestSequenceAwareSoundQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(11))}
	algos := []func(*logic.Network, mapper.Options) (*mapper.Result, error){
		mapper.DominoMap, mapper.SOIDominoMap,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomCircuit(rng)
		d, err := decompose.Decompose(n)
		if err != nil {
			return false
		}
		u, err := unate.Convert(d)
		if err != nil {
			return false
		}
		opt := mapper.DefaultOptions()
		opt.BaselineStackOrder = mapper.OrderHashed
		opt.SequenceAware = true
		for _, algo := range algos {
			res, err := algo(u.Network, opt)
			if err != nil || res.Audit() != nil {
				return false
			}
			c, err := netlist.Build(res)
			if err != nil || c.Audit() != nil {
				return false
			}
			sim := New(c, DefaultConfig())
			for _, vec := range holdingVectors(c, rand.New(rand.NewSource(seed+5)), 80) {
				got, events, err := sim.Cycle(vec)
				if err != nil {
					return false
				}
				for _, e := range events {
					if e.Corrupted {
						return false
					}
				}
				want, err := res.Eval(vec)
				if err != nil {
					return false
				}
				for name, v := range want {
					if got[name] != v {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSequenceAwareNeverAddsDevices: pruning is monotone.
func TestSequenceAwareNeverAddsDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := randomCircuit(rng)
		full, _ := mapSeq(t, n, mapper.SOIDominoMap, false)
		pruned, _ := mapSeq(t, n, mapper.SOIDominoMap, true)
		if pruned.Stats.TDisch > full.Stats.TDisch {
			t.Fatalf("trial %d: pruning added devices (%d -> %d)",
				trial, full.Stats.TDisch, pruned.Stats.TDisch)
		}
		if pruned.Stats.TLogic != full.Stats.TLogic {
			t.Fatalf("trial %d: pruning changed logic transistors", trial)
		}
	}
}
