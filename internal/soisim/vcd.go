package soisim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// TraceLevel selects which nets a trace records.
type TraceLevel uint8

const (
	// TraceIO records primary inputs and outputs.
	TraceIO TraceLevel = iota
	// TraceGates adds every gate output and dynamic node.
	TraceGates
	// TraceAll adds the internal pulldown junctions.
	TraceAll
)

// vcdChange is one recorded value change.
type vcdChange struct {
	time int
	id   int
	val  bool
}

type tracer struct {
	names   []string // net index -> key in the simulator's value map
	display []string // net index -> name shown in the VCD
	index   map[string]int
	last    []bool
	valid   []bool
	changes []vcdChange
	time    int
	eventID int // synthetic 1-bit net pulsing on PBE events
}

// EnableTrace starts waveform recording at the given level. It must be
// called before the first Cycle; the trace covers everything simulated
// afterwards. Time advances 5 (nominal nanoseconds) per phase: precharge
// and evaluate each get a tick, so one clock cycle spans 10 time units.
func (s *Simulator) EnableTrace(level TraceLevel) {
	tr := &tracer{index: make(map[string]int)}
	addAs := func(name, display string) {
		if _, dup := tr.index[name]; dup {
			return
		}
		tr.index[name] = len(tr.names)
		tr.names = append(tr.names, name)
		tr.display = append(tr.display, display)
	}
	add := func(name string) { addAs(name, name) }
	for _, in := range s.c.Inputs {
		add(in)
	}
	outs := make([]string, 0, len(s.c.Outputs))
	for name := range s.c.Outputs {
		outs = append(outs, name)
	}
	sort.Strings(outs)
	for _, o := range outs {
		// Display primary outputs under their own names rather than the
		// driving gate's internal signal name.
		addAs(s.c.Outputs[o], o)
	}
	if level >= TraceGates {
		for _, g := range s.c.Gates {
			add(g.Output)
			for _, dyn := range g.Dyns {
				add(dyn)
			}
		}
	}
	if level >= TraceAll {
		for _, g := range s.c.Gates {
			for _, n := range g.Internal {
				add(n)
			}
			for _, foot := range g.Foots {
				if foot != "GND" {
					add(foot)
				}
			}
		}
	}
	add("pbe_event")
	tr.eventID = tr.index["pbe_event"]
	tr.last = make([]bool, len(tr.names))
	tr.valid = make([]bool, len(tr.names))
	s.trace = tr
}

// recordPhase snapshots the watched nets after one phase has been solved.
func (s *Simulator) recordPhase(eventsThisPhase bool) {
	tr := s.trace
	if tr == nil {
		return
	}
	for id, name := range tr.names {
		var v bool
		if id == tr.eventID {
			v = eventsThisPhase
		} else {
			v = s.values[name]
		}
		if !tr.valid[id] || tr.last[id] != v {
			tr.changes = append(tr.changes, vcdChange{time: tr.time, id: id, val: v})
			tr.last[id] = v
			tr.valid[id] = true
		}
	}
	tr.time += 5
}

// WriteVCD renders the recorded trace as a Value Change Dump file
// readable by GTKWave and friends.
func (s *Simulator) WriteVCD(w io.Writer) error {
	tr := s.trace
	if tr == nil {
		return fmt.Errorf("soisim: no trace recorded; call EnableTrace before simulating")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "$date reproduced SOI domino simulation $end")
	fmt.Fprintln(bw, "$version soidomino soisim $end")
	fmt.Fprintln(bw, "$timescale 1ns $end")
	fmt.Fprintf(bw, "$scope module %s $end\n", sanitizeVCD(s.c.Name))
	for id := range tr.names {
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", vcdID(id), sanitizeVCD(tr.display[id]))
	}
	fmt.Fprintln(bw, "$upscope $end")
	fmt.Fprintln(bw, "$enddefinitions $end")

	lastTime := -1
	for _, ch := range tr.changes {
		if ch.time != lastTime {
			fmt.Fprintf(bw, "#%d\n", ch.time)
			lastTime = ch.time
		}
		v := '0'
		if ch.val {
			v = '1'
		}
		fmt.Fprintf(bw, "%c%s\n", v, vcdID(ch.id))
	}
	fmt.Fprintf(bw, "#%d\n", tr.time)
	return bw.Flush()
}

// vcdID maps a net index to a compact VCD identifier over the printable
// range '!'..'~'.
func vcdID(id int) string {
	const base = 94
	var buf [8]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('!' + id%base)
		id /= base
		if id == 0 {
			break
		}
	}
	return string(buf[i:])
}

// sanitizeVCD replaces characters VCD identifiers dislike.
func sanitizeVCD(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
