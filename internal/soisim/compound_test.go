package soisim

import (
	"math/rand"
	"testing"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
)

// stackedStacks is (a*b*c + d*e*f + g*h*i) * (j*k*l + m*n*o + p*q*r): two
// wide parallel stacks in series, the structure the paper's solution 7
// (compound domino) exists for.
func stackedStacks() *logic.Network {
	n := logic.New("stacked")
	stack := func(base byte) int {
		var branches []int
		for b := 0; b < 3; b++ {
			x := n.AddInput(string(base + byte(3*b)))
			y := n.AddInput(string(base + byte(3*b+1)))
			z := n.AddInput(string(base + byte(3*b+2)))
			branches = append(branches, n.AddGate(logic.And, n.AddGate(logic.And, x, y), z))
		}
		return n.AddGate(logic.Or, n.AddGate(logic.Or, branches[0], branches[1]), branches[2])
	}
	p1 := stack('a')
	p2 := stack('j')
	n.AddOutput("f", n.AddGate(logic.And, p1, p2))
	return n
}

// pbeStrikeSequence charges the body of transistor d (top of the second
// branch, held off while e and f conduct and the first branch drives the
// inter-stack node high), then pulls the inter-stack node low through the
// second stack. In the single-gate realization without discharge devices,
// d's parasitic bipolar discharges the dynamic node through e and f.
func pbeStrikeSequence() []map[string]bool {
	all := "abcdefghijklmnopqr"
	vec := func(on string) map[string]bool {
		m := make(map[string]bool, len(all))
		for _, c := range all {
			m[string(c)] = false
		}
		for _, c := range on {
			m[string(c)] = true
		}
		return m
	}
	hold := vec("abcef") // branch1 on, e,f on, d off: d's S/D both driven high
	return []map[string]bool{hold, hold, hold, vec("efjkl")}
}

func buildStacked(t *testing.T, compound bool) (*mapper.Result, *netlist.Circuit) {
	t.Helper()
	res, err := mapper.DominoMap(stackedStacks(), mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if compound {
		cs, err := mapper.CompoundTransform(res, mapper.DefaultCompoundOptions())
		if err != nil {
			t.Fatal(err)
		}
		if cs.Converted != 1 || res.Stats.TDisch != 0 {
			t.Fatalf("compound preconditions: %+v, %s", cs, res.Stats)
		}
	}
	if err := res.Audit(); err != nil {
		t.Fatal(err)
	}
	c, err := netlist.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Audit(); err != nil {
		t.Fatalf("netlist audit: %v\n%s", err, c.Dump())
	}
	if err := c.CrossCheck(res); err != nil {
		t.Fatal(err)
	}
	return res, c
}

// TestCompoundNetlistShape checks the device-level realization of the
// compound pair: two dynamic stages with their own precharge/keeper/foot
// and a 4-device static NOR output.
func TestCompoundNetlistShape(t *testing.T) {
	_, c := buildStacked(t, true)
	if len(c.Gates) != 1 {
		t.Fatalf("%d gates", len(c.Gates))
	}
	g := c.Gates[0]
	if g.OutKind != netlist.OutNOR || len(g.Dyns) != 2 {
		t.Fatalf("out=%v dyns=%v", g.OutKind, g.Dyns)
	}
	byType := map[netlist.DeviceType]int{}
	for _, id := range append(append([]int{}, g.Overhead...), g.Discharge...) {
		byType[c.Devices[id].Type]++
	}
	if byType[netlist.PPrecharge] != 2 || byType[netlist.PKeeper] != 2 {
		t.Errorf("per-stage overhead: %v", byType)
	}
	if byType[netlist.OutP] != 2 || byType[netlist.OutN] != 2 {
		t.Errorf("static NOR devices: %v", byType)
	}
	if byType[netlist.InvP] != 0 || byType[netlist.PDischarge] != 0 {
		t.Errorf("unexpected devices: %v", byType)
	}
}

// TestCompoundStrike is the paper's solution-7 claim, demonstrated on the
// simulator: the single-gate realization without its discharge devices is
// corrupted by the strike sequence; the protected single gate survives
// with 7 discharge devices; the compound pair survives with none.
func TestCompoundStrike(t *testing.T) {
	seq := pbeStrikeSequence()

	// 1. Unprotected single gate: must corrupt.
	res, c := buildStacked(t, false)
	if res.Stats.TDisch != 7 {
		t.Fatalf("single-gate discharges = %d, want 7", res.Stats.TDisch)
	}
	cfg := DefaultConfig()
	cfg.DisableDischarge = true
	sim := New(c, cfg)
	corrupted := false
	var lastOut bool
	for _, vec := range seq {
		out, events, err := sim.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		lastOut = out["f"]
		for _, e := range events {
			corrupted = corrupted || e.Corrupted
		}
	}
	if !corrupted || lastOut != true {
		t.Fatalf("unprotected gate should corrupt (corrupted=%v, f=%v)", corrupted, lastOut)
	}

	// 2. Protected single gate: survives.
	_, c2 := buildStacked(t, false)
	sim2 := New(c2, DefaultConfig())
	for i, vec := range seq {
		out, events, err := sim2.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Corrupted {
				t.Fatalf("protected gate corrupted at cycle %d: %v", i, e)
			}
		}
		if i == len(seq)-1 && out["f"] != false {
			t.Fatalf("protected gate final f=%v, want false", out["f"])
		}
	}

	// 3. Compound pair with zero discharge devices: survives.
	_, c3 := buildStacked(t, true)
	sim3 := New(c3, DefaultConfig())
	for i, vec := range seq {
		out, events, err := sim3.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Corrupted {
				t.Fatalf("compound pair corrupted at cycle %d: %v", i, e)
			}
		}
		if i == len(seq)-1 && out["f"] != false {
			t.Fatalf("compound pair final f=%v, want false", out["f"])
		}
	}
}

// TestCompoundSimMatchesLogic: the compound circuit tracks the mapped
// function cycle by cycle under random stimuli.
func TestCompoundSimMatchesLogic(t *testing.T) {
	res, c := buildStacked(t, true)
	sim := New(c, DefaultConfig())
	for cyc, vec := range RandomVectors(c, rand.New(rand.NewSource(17)), 200) {
		got, events, err := sim.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Corrupted {
				t.Fatalf("cycle %d: %v", cyc, e)
			}
		}
		want, err := res.Eval(vec)
		if err != nil {
			t.Fatal(err)
		}
		if got["f"] != want["f"] {
			t.Fatalf("cycle %d: f=%v want %v", cyc, got["f"], want["f"])
		}
	}
}

// TestCompoundHoldStress: the compound pair survives the same holding
// stress patterns used for the protected-never-corrupts property.
func TestCompoundHoldStress(t *testing.T) {
	res, c := buildStacked(t, true)
	sim := New(c, DefaultConfig())
	for cyc, vec := range holdingVectors(c, rand.New(rand.NewSource(23)), 400) {
		got, events, err := sim.Cycle(vec)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Corrupted {
				t.Fatalf("cycle %d: %v", cyc, e)
			}
		}
		want, _ := res.Eval(vec)
		if got["f"] != want["f"] {
			t.Fatalf("cycle %d: f mismatch", cyc)
		}
	}
}
