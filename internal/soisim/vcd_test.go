package soisim

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"soidomino/internal/mapper"
	"soidomino/internal/netlist"
)

func runFig2Trace(t *testing.T, level TraceLevel, disable bool) (*Simulator, string) {
	t.Helper()
	_, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	cfg := DefaultConfig()
	cfg.DisableDischarge = disable
	sim := New(c, cfg)
	sim.EnableTrace(level)
	for _, vec := range fig2Sequence() {
		if _, _, err := sim.Cycle(vec); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sim.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	return sim, buf.String()
}

func TestVCDHeaderAndVars(t *testing.T) {
	_, out := runFig2Trace(t, TraceIO, false)
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module fig2_unate $end",
		"$enddefinitions $end",
		"$var wire 1",
		" f $end", // the primary output under its own name
		"pbe_event",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
}

// parseVCD extracts var count and the sequence of (time, id, value)
// changes, checking basic well-formedness.
func parseVCD(t *testing.T, out string) (vars int, changes []string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(out))
	time := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "$var"):
			vars++
		case strings.HasPrefix(line, "#"):
			time++
		case line == "" || strings.HasPrefix(line, "$"):
		default:
			if time < 0 {
				t.Fatalf("value change %q before any timestamp", line)
			}
			if line[0] != '0' && line[0] != '1' {
				t.Fatalf("bad value change %q", line)
			}
			changes = append(changes, line)
		}
	}
	return vars, changes
}

func TestVCDWellFormedAndEventful(t *testing.T) {
	// Unprotected run: the PBE event must appear as a pbe_event pulse and
	// the corrupted output as a change on f.
	_, out := runFig2Trace(t, TraceAll, true)
	vars, changes := parseVCD(t, out)
	if vars < 6 { // 4 inputs + f + pbe_event at least
		t.Errorf("only %d vars traced", vars)
	}
	if len(changes) == 0 {
		t.Fatal("no value changes recorded")
	}
	// Some change must set the event wire high; find its id first.
	sc := bufio.NewScanner(strings.NewReader(out))
	eventID := ""
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) == 6 && f[0] == "$var" && f[5] == "$end" && f[4] == "pbe_event" {
			eventID = f[3]
		}
	}
	if eventID == "" {
		t.Fatal("pbe_event var not declared")
	}
	found := false
	for _, ch := range changes {
		if ch == "1"+eventID {
			found = true
		}
	}
	if !found {
		t.Error("PBE event never pulsed in the unprotected trace")
	}
}

func TestVCDTraceLevels(t *testing.T) {
	_, io := runFig2Trace(t, TraceIO, false)
	_, gates := runFig2Trace(t, TraceGates, false)
	_, all := runFig2Trace(t, TraceAll, false)
	vio, _ := parseVCD(t, io)
	vg, _ := parseVCD(t, gates)
	va, _ := parseVCD(t, all)
	if !(vio < vg && vg < va) {
		t.Errorf("trace levels not monotone: %d, %d, %d vars", vio, vg, va)
	}
	if !strings.Contains(all, "g0_n0") {
		t.Error("TraceAll missing internal junction")
	}
}

func TestVCDWithoutTraceFails(t *testing.T) {
	_, c := buildCircuit(t, fig2Network(), mapper.DominoMap)
	sim := New(c, DefaultConfig())
	var buf bytes.Buffer
	if err := sim.WriteVCD(&buf); err == nil {
		t.Error("WriteVCD without EnableTrace should fail")
	}
}

func TestVCDIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("vcdID(%d) = %q not unique", i, id)
		}
		for j := 0; j < len(id); j++ {
			if id[j] < '!' || id[j] > '~' {
				t.Fatalf("vcdID(%d) contains non-printable %q", i, id)
			}
		}
		seen[id] = true
	}
}

func TestVCDTimeAdvances(t *testing.T) {
	_, out := runFig2Trace(t, TraceIO, false)
	// 4 cycles = 8 phases = final timestamp 40.
	if !strings.Contains(out, "#40") {
		t.Errorf("trace should end at #40:\n%s", out)
	}
	var _ = netlist.GND // keep import if helpers change
}
