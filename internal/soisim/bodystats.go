package soisim

import "fmt"

// BodyStats quantifies floating-body exposure over a simulation run: the
// paper argues (§I) that controlling the PBE "yields an added side benefit
// of reducing the timing hysteresis exhibited by SOI circuits due to
// variations in the body voltage. In narrowing the range of permissible
// voltages for the body ... we make the timing behavior of the circuit
// more predictable." High-body device-phases are exactly the state the
// discharge devices and the SOI stack ordering exist to prevent, so the
// occupancy ratio is a direct hysteresis-exposure metric.
type BodyStats struct {
	// DevicePhases is the number of (pulldown device, phase) observations.
	DevicePhases int
	// HighPhases counts observations with the body floating high.
	HighPhases int
	// ChargedDevices counts distinct devices whose body ever went high.
	ChargedDevices int
	// Events and Corrupted summarize the recorded bipolar episodes.
	Events    int
	Corrupted int
}

// HighRatio is the fraction of device-phases spent with a high body.
func (b BodyStats) HighRatio() float64 {
	if b.DevicePhases == 0 {
		return 0
	}
	return float64(b.HighPhases) / float64(b.DevicePhases)
}

func (b BodyStats) String() string {
	return fmt.Sprintf("body-high %d/%d device-phases (%.4f%%), %d devices ever charged, %d events (%d corrupted)",
		b.HighPhases, b.DevicePhases, 100*b.HighRatio(), b.ChargedDevices, b.Events, b.Corrupted)
}

// BodyStats returns the exposure accumulated since the simulator was
// created.
func (s *Simulator) BodyStats() BodyStats {
	b := BodyStats{
		DevicePhases: s.bodyObservations,
		HighPhases:   s.bodyHighPhases,
	}
	for _, id := range s.everCharged {
		if id {
			b.ChargedDevices++
		}
	}
	for _, e := range s.events {
		b.Events++
		if e.Corrupted {
			b.Corrupted++
		}
	}
	return b
}
