// Package soisim is a switch-level simulator for domino circuits on an SOI
// substrate, with a discrete floating-body model of the Parasitic Bipolar
// Effect. It stands in for the physical SOI silicon the paper's circuits
// would run on (see DESIGN.md §4):
//
//   - Each clock cycle has a precharge phase (CLK=0: p-precharge and
//     p-discharge devices conduct) and an evaluate phase (CLK=1: n-clock
//     feet conduct). Node values are solved by connected-component
//     analysis: a component containing GND is low (the pulldown overpowers
//     the keeper, which is exactly the PBE failure mode), a component
//     containing VDD is high, and isolated components retain charge.
//   - The body of a pulldown nMOS charges while the device is off with
//     both source and drain *driven* high (floating-high nodes leak too
//     slowly to charge a body, which is why the paper's safe structures
//     are safe); after BodyChargeThreshold such phases the body is high.
//     A conducting or switching gate terminal, or a low source/drain,
//     resets it — the paper's "capacitive coupling" reset.
//   - When an off device with a high body sees its source pulled from
//     high to low while its drain was high, the lateral bipolar device
//     conducts (paper §III-B). If the resulting conduction discharges the
//     dynamic node of a gate whose pulldown is logically off, the output
//     evaluates incorrectly: a PBE failure, which the keeper only repairs
//     at the next precharge.
//
// The simulator demonstrates in software what the paper argues in silicon:
// bulk-style mappings without discharge devices mis-evaluate under the
// fig. 2 switching sequence, while post-processed and SOI-mapped circuits
// never do.
package soisim

import (
	"fmt"
	"math/rand"

	"soidomino/internal/netlist"
)

// Config tunes the body model.
type Config struct {
	// BodyChargeThreshold is the number of phases an off device must see
	// driven-high source and drain before its body floats high. The paper
	// only says "a sufficiently large period of time"; 4 phases (two
	// cycles) keeps demonstrations short while still requiring sustained
	// stress.
	BodyChargeThreshold int
	// MinBipolarWidth is how many simultaneously-triggered bipolar
	// devices it takes to disturb a dynamic node. 1 is the paper's
	// worst-case stance.
	MinBipolarWidth int
	// DisableDischarge simulates the circuit with its p-discharge devices
	// disconnected, to demonstrate the unprotected failure.
	DisableDischarge bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{BodyChargeThreshold: 4, MinBipolarWidth: 1}
}

// Event records one parasitic-bipolar episode.
type Event struct {
	Cycle   int
	Gate    int   // gate id
	Devices []int // triggered device ids
	// Corrupted is true when the bipolar current discharged the dynamic
	// node of a gate whose pulldown was logically off: the output is
	// wrong for the rest of the cycle.
	Corrupted bool
}

func (e Event) String() string {
	state := "subcritical"
	if e.Corrupted {
		state = "CORRUPTED OUTPUT"
	}
	return fmt.Sprintf("cycle %d gate %d: bipolar via devices %v (%s)", e.Cycle, e.Gate, e.Devices, state)
}

type bodyState struct {
	counter  int
	high     bool
	lastGate bool
	seen     bool // lastGate is valid
}

// Simulator holds the evolving state of one circuit.
type Simulator struct {
	c   *netlist.Circuit
	cfg Config

	values map[string]bool // node and signal values
	body   map[int]*bodyState

	cycle  int
	events []Event
	trace  *tracer // nil unless EnableTrace was called

	// Body-exposure accounting (see BodyStats).
	bodyObservations int
	bodyHighPhases   int
	everCharged      map[int]bool
}

// New creates a simulator with all nodes low and all bodies discharged.
func New(c *netlist.Circuit, cfg Config) *Simulator {
	if cfg.BodyChargeThreshold <= 0 {
		cfg.BodyChargeThreshold = DefaultConfig().BodyChargeThreshold
	}
	if cfg.MinBipolarWidth <= 0 {
		cfg.MinBipolarWidth = DefaultConfig().MinBipolarWidth
	}
	s := &Simulator{
		c:           c,
		cfg:         cfg,
		values:      make(map[string]bool),
		body:        make(map[int]*bodyState),
		everCharged: make(map[int]bool),
	}
	for _, g := range c.Gates {
		for _, id := range g.Pulldown {
			s.body[id] = &bodyState{}
		}
	}
	return s
}

// Events returns every event recorded so far.
func (s *Simulator) Events() []Event { return s.events }

// Cycle advances one full clock cycle (precharge then evaluate) with the
// given primary-input values and returns the primary-output values plus
// any events raised this cycle.
func (s *Simulator) Cycle(inputs map[string]bool) (map[string]bool, []Event, error) {
	for _, in := range s.c.Inputs {
		if _, ok := inputs[in]; !ok {
			return nil, nil, fmt.Errorf("soisim: missing value for input %q", in)
		}
		s.values[in] = inputs[in]
	}
	before := len(s.events)

	// Precharge: every domino output is low, so internal gates see low
	// inputs; primary inputs hold their new values.
	for _, g := range s.c.Gates {
		s.values[g.Output] = false
	}
	for gi := range s.c.Gates {
		s.solveGate(&s.c.Gates[gi], true)
	}
	s.recordPhase(false)
	// Evaluate, in topological order so the domino cascade resolves in a
	// single pass.
	beforeEval := len(s.events)
	for gi := range s.c.Gates {
		s.solveGate(&s.c.Gates[gi], false)
	}
	s.recordPhase(len(s.events) > beforeEval)
	s.cycle++

	outs := make(map[string]bool, len(s.c.Outputs)+len(s.c.ConstOutputs))
	for name, node := range s.c.Outputs {
		outs[name] = s.values[node]
	}
	for name, v := range s.c.ConstOutputs {
		outs[name] = v
	}
	return outs, s.events[before:], nil
}

// Run simulates a sequence of input vectors and returns the output vector
// per cycle.
func (s *Simulator) Run(vectors []map[string]bool) ([]map[string]bool, error) {
	outs := make([]map[string]bool, len(vectors))
	for i, v := range vectors {
		o, _, err := s.Cycle(v)
		if err != nil {
			return nil, err
		}
		outs[i] = o
	}
	return outs, nil
}

// RandomVectors builds deterministic random input sequences for stress
// tests and benchmarks.
func RandomVectors(c *netlist.Circuit, rng *rand.Rand, cycles int) []map[string]bool {
	vecs := make([]map[string]bool, cycles)
	for i := range vecs {
		v := make(map[string]bool, len(c.Inputs))
		for _, in := range c.Inputs {
			v[in] = rng.Intn(2) == 1
		}
		vecs[i] = v
	}
	return vecs
}

// signalValue resolves a device's gate terminal.
func (s *Simulator) signalValue(d netlist.Device) bool {
	v := s.values[d.Signal]
	if d.Negated {
		return !v
	}
	return v
}

// conducts reports whether a device's channel is on in the given phase.
// Bipolar conduction is handled separately by the caller.
func (s *Simulator) conducts(d netlist.Device, precharge bool) bool {
	switch d.Type {
	case netlist.NPulldown:
		return s.signalValue(d)
	case netlist.NFoot:
		return !precharge
	case netlist.PPrecharge:
		return precharge
	case netlist.PDischarge:
		// Handled as a weak local pulldown in solveGate, never as a
		// channel edge: a small discharge device holds its junction low
		// without fighting the precharge for the dynamic node through
		// conducting pulldown transistors.
		return false
	case netlist.PKeeper:
		// The keeper conducts while the output is low, i.e. while the
		// dynamic node is (still) high at the start of the phase.
		return s.values[d.Drain]
	default: // inverter devices are modeled functionally
		return false
	}
}

// gateDevices returns the ids of the channel devices of a gate (inverter
// devices excluded; the inverter is evaluated functionally).
func gateDevices(g *netlist.GateRealization) []int {
	ids := make([]int, 0, len(g.Pulldown)+len(g.Discharge)+len(g.Overhead))
	ids = append(ids, g.Pulldown...)
	ids = append(ids, g.Discharge...)
	ids = append(ids, g.Overhead...)
	return ids
}

// solveGate computes the new node values of one gate for one phase,
// detects bipolar events during evaluate, and updates body state.
func (s *Simulator) solveGate(g *netlist.GateRealization, precharge bool) {
	ids := gateDevices(g)
	prev := make(map[string]bool, len(g.Internal)+2*len(g.Dyns))
	for _, dyn := range g.Dyns {
		prev[dyn] = s.values[dyn]
	}
	for _, foot := range g.Foots {
		prev[foot] = s.values[foot]
	}
	for _, n := range g.Internal {
		prev[n] = s.values[n]
	}

	extra := map[int]bool{} // devices forced on (bipolar)
	vals, driven := s.relax(g, ids, precharge, extra)
	s.applyDischarge(g, precharge, vals, driven)

	if !precharge {
		// First-order bipolar triggers: off devices with a high body whose
		// source fell from high to low while the drain was high.
		var trig []int
		for _, id := range g.Pulldown {
			d := s.c.Devices[id]
			bs := s.body[id]
			if bs.high && !s.signalValue(d) &&
				prev[d.Source] && !vals[d.Source] && prev[d.Drain] {
				trig = append(trig, id)
			}
		}
		if len(trig) >= s.cfg.MinBipolarWidth {
			for _, id := range trig {
				extra[id] = true
				s.body[id].counter = 0
				s.body[id].high = false // the episode discharges the body
			}
			bip, bipDriven := s.relax(g, ids, precharge, extra)
			s.applyDischarge(g, precharge, bip, bipDriven)
			corrupted := false
			for _, dyn := range g.Dyns {
				if prev[dyn] && vals[dyn] && !bip[dyn] {
					corrupted = true
				}
			}
			s.events = append(s.events, Event{
				Cycle: s.cycle, Gate: g.ID, Devices: trig, Corrupted: corrupted,
			})
			if corrupted {
				vals, driven = bip, bipDriven
			}
		} else if len(trig) > 0 {
			// Below the disturbance threshold: record, no electrical effect.
			s.events = append(s.events, Event{Cycle: s.cycle, Gate: g.ID, Devices: trig})
		}
	}

	for n, v := range vals {
		s.values[n] = v
	}
	// Static output stage: an inverter for plain domino, a NAND/NOR over
	// the stage dynamic nodes for compound gates.
	switch g.OutKind {
	case netlist.OutNAND:
		all := true
		for _, dyn := range g.Dyns {
			all = all && vals[dyn]
		}
		s.values[g.Output] = !all
	case netlist.OutNOR:
		any := false
		for _, dyn := range g.Dyns {
			any = any || vals[dyn]
		}
		s.values[g.Output] = !any
	default:
		s.values[g.Output] = !vals[g.Dyn]
	}

	// Body model update at the end of the phase.
	for _, id := range g.Pulldown {
		d := s.c.Devices[id]
		bs := s.body[id]
		gv := s.signalValue(d)
		switch {
		case bs.seen && gv != bs.lastGate, gv:
			// A switching or conducting gate terminal resets the body.
			bs.counter, bs.high = 0, false
		case vals[d.Source] && driven[d.Source] && vals[d.Drain] && driven[d.Drain]:
			// Leakage from strongly-held high junctions charges the body.
			bs.counter++
			if bs.counter >= s.cfg.BodyChargeThreshold {
				bs.high = true
			}
		case vals[d.Source] && vals[d.Drain]:
			// Floating-high terminals neither charge the body further nor
			// bleed it: an isolated body holds its charge (the hysteresis
			// the paper describes).
		default:
			// A low source or drain forward-biases the junction and bleeds
			// the body off.
			bs.counter, bs.high = 0, false
		}
		bs.lastGate, bs.seen = gv, true
		s.bodyObservations++
		if bs.high {
			s.bodyHighPhases++
			s.everCharged[id] = true
		}
	}
}

// applyDischarge models the p-discharge devices after relaxation: during
// precharge each active discharge device holds its junction low. The low
// is local — it is not propagated through conducting neighbours — because
// the small discharge device only needs to sink the junction's own charge,
// while the precharge pMOS keeps the dynamic node high through any
// conducting charge-up path (the "minor cost" contention the paper accepts
// in §VI).
func (s *Simulator) applyDischarge(g *netlist.GateRealization, precharge bool, vals, driven map[string]bool) {
	if !precharge || s.cfg.DisableDischarge {
		return
	}
	for _, id := range g.Discharge {
		d := s.c.Devices[id]
		vals[d.Drain] = false
		driven[d.Drain] = true
	}
}

// relax solves node values for one gate in one phase by connected
// components over conducting channels. Components containing GND go low
// (ratioed fight: the pulldown wins over keeper/precharge), components
// containing VDD go high, isolated components keep their charge (any high
// member keeps the component high: worst case for PBE hazards).
func (s *Simulator) relax(g *netlist.GateRealization, ids []int, precharge bool, extra map[int]bool) (vals, driven map[string]bool) {
	local := make([]string, 0, len(g.Internal)+4)
	local = append(local, netlist.GND, netlist.VDD)
	local = append(local, g.Dyns...)
	for _, foot := range g.Foots {
		if foot != netlist.GND {
			local = append(local, foot)
		}
	}
	local = append(local, g.Internal...)

	// Pass 1: union conducting channels between internal nodes. The power
	// rails are NOT union endpoints — a rail supplies its component but
	// does not conduct between otherwise separate components (two gates'
	// keepers both reach VDD without shorting their dynamic nodes).
	uf := newUnionFind(local)
	type railEdge struct {
		node string
		gnd  bool
	}
	var rails []railEdge
	isRail := func(n string) bool { return n == netlist.GND || n == netlist.VDD }
	for _, id := range ids {
		d := s.c.Devices[id]
		switch d.Type {
		case netlist.InvP, netlist.InvN, netlist.OutP, netlist.OutN:
			// The static output stage is evaluated functionally.
			continue
		}
		if !s.conducts(d, precharge) && !extra[id] {
			continue
		}
		switch {
		case isRail(d.Drain) && isRail(d.Source):
			// Degenerate; nothing to record.
		case isRail(d.Drain):
			rails = append(rails, railEdge{node: d.Source, gnd: d.Drain == netlist.GND})
		case isRail(d.Source):
			rails = append(rails, railEdge{node: d.Drain, gnd: d.Source == netlist.GND})
		default:
			uf.union(d.Drain, d.Source)
		}
	}

	vals = make(map[string]bool, len(local))
	driven = make(map[string]bool, len(local))
	// Pass 2: classify components (rail supplies, then retained charge).
	type compInfo struct{ hasGND, hasVDD, anyHigh bool }
	comps := make(map[string]*compInfo)
	info := func(n string) *compInfo {
		root := uf.find(n)
		ci := comps[root]
		if ci == nil {
			ci = &compInfo{}
			comps[root] = ci
		}
		return ci
	}
	for _, re := range rails {
		ci := info(re.node)
		if re.gnd {
			ci.hasGND = true
		} else {
			ci.hasVDD = true
		}
	}
	for _, n := range local {
		if isRail(n) {
			continue
		}
		if s.values[n] {
			info(n).anyHigh = true
		}
	}
	// Pass 3: assign values.
	for _, n := range local {
		if isRail(n) {
			continue
		}
		ci := info(n)
		switch {
		case ci.hasGND:
			vals[n], driven[n] = false, true
		case ci.hasVDD:
			vals[n], driven[n] = true, true
		default:
			vals[n], driven[n] = ci.anyHigh, false
		}
	}
	return vals, driven
}

// unionFind over node names, sized for the handful of nodes in one gate.
type unionFind struct {
	parent map[string]string
}

func newUnionFind(nodes []string) *unionFind {
	uf := &unionFind{parent: make(map[string]string, len(nodes))}
	for _, n := range nodes {
		uf.parent[n] = n
	}
	return uf
}

func (uf *unionFind) find(n string) string {
	p, ok := uf.parent[n]
	if !ok {
		uf.parent[n] = n
		return n
	}
	if p == n {
		return n
	}
	root := uf.find(p)
	uf.parent[n] = root
	return root
}

func (uf *unionFind) union(a, b string) {
	ra, rb := uf.find(a), uf.find(b)
	if ra != rb {
		uf.parent[ra] = rb
	}
}
