// Package verify checks functional equivalence between a source logic
// network and its mapped domino implementation: exhaustively for small
// input counts, by seeded random simulation above that. Every benchmark
// run in the experiment harness passes through this gate, so a mapper bug
// cannot silently produce good-looking transistor counts.
package verify

import (
	"fmt"
	"math/rand"

	"soidomino/internal/logic"
	"soidomino/internal/mapper"
)

// Options tunes the equivalence check.
type Options struct {
	// MaxExhaustiveInputs bounds exhaustive enumeration (2^k vectors).
	MaxExhaustiveInputs int
	// RandomVectors is the sample size used above the exhaustive bound.
	RandomVectors int
	// Seed makes the random sample reproducible.
	Seed int64
	// MaxMismatches stops the search after this many counterexamples.
	MaxMismatches int
}

// DefaultOptions is the configuration used by the experiment harness.
func DefaultOptions() Options {
	return Options{
		MaxExhaustiveInputs: 12,
		RandomVectors:       512,
		Seed:                1,
		MaxMismatches:       5,
	}
}

// Mismatch is one counterexample.
type Mismatch struct {
	Inputs map[string]bool
	Output string
	Got    bool // mapped circuit
	Want   bool // source network
}

func (m Mismatch) String() string {
	return fmt.Sprintf("output %q: got %v, want %v under %v", m.Output, m.Got, m.Want, m.Inputs)
}

// Report summarizes an equivalence check.
type Report struct {
	Vectors    int
	Exhaustive bool
	Mismatches []Mismatch
}

// OK reports whether no counterexample was found.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// Equivalent compares the mapped result against the source network. The
// networks are matched by input and output names, so it works across the
// decompose/unate pipeline (which preserves both).
func Equivalent(orig *logic.Network, res *mapper.Result, opt Options) (*Report, error) {
	if opt.MaxExhaustiveInputs <= 0 || opt.RandomVectors <= 0 {
		opt = DefaultOptions()
	}
	if opt.MaxMismatches <= 0 {
		opt.MaxMismatches = 1
	}
	k := len(orig.Inputs)
	names := make([]string, k)
	for i, id := range orig.Inputs {
		names[i] = orig.Nodes[id].Name
	}
	rep := &Report{}
	check := func(in []bool) error {
		vals := make(map[string]bool, k)
		for i, name := range names {
			vals[name] = in[i]
		}
		want, err := orig.Eval(in)
		if err != nil {
			return err
		}
		got, err := res.Eval(vals)
		if err != nil {
			return err
		}
		rep.Vectors++
		for oi, out := range orig.Outputs {
			g, ok := got[out.Name]
			if !ok {
				return fmt.Errorf("verify: mapped circuit missing output %q", out.Name)
			}
			if g != want[oi] {
				cp := make(map[string]bool, k)
				for n, v := range vals {
					cp[n] = v
				}
				rep.Mismatches = append(rep.Mismatches, Mismatch{
					Inputs: cp, Output: out.Name, Got: g, Want: want[oi],
				})
			}
		}
		return nil
	}

	if k <= opt.MaxExhaustiveInputs {
		rep.Exhaustive = true
		in := make([]bool, k)
		for i := 0; i < 1<<k; i++ {
			for j := 0; j < k; j++ {
				in[j] = i&(1<<j) != 0
			}
			if err := check(in); err != nil {
				return nil, err
			}
			if len(rep.Mismatches) >= opt.MaxMismatches {
				return rep, nil
			}
		}
		return rep, nil
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	in := make([]bool, k)
	for v := 0; v < opt.RandomVectors; v++ {
		for j := range in {
			in[j] = rng.Intn(2) == 1
		}
		if err := check(in); err != nil {
			return nil, err
		}
		if len(rep.Mismatches) >= opt.MaxMismatches {
			return rep, nil
		}
	}
	// Directed corners: all-zero, all-one, one-hot and one-cold patterns
	// catch the wide-gate mistakes (a dropped AND or OR input) that random
	// sampling essentially never hits on large input counts.
	corners := [][]bool{make([]bool, k), make([]bool, k)}
	for j := range corners[1] {
		corners[1][j] = true
	}
	for j := 0; j < k && j < 64; j++ {
		oneHot := make([]bool, k)
		oneHot[j] = true
		corners = append(corners, oneHot)
		oneCold := make([]bool, k)
		for i := range oneCold {
			oneCold[i] = i != j
		}
		corners = append(corners, oneCold)
	}
	for _, in := range corners {
		if err := check(in); err != nil {
			return nil, err
		}
		if len(rep.Mismatches) >= opt.MaxMismatches {
			return rep, nil
		}
	}
	return rep, nil
}

// NotEquivalentError is the machine-readable failure of MustBeEquivalent:
// it carries the full report so callers (the fuzzing oracles in
// particular) can extract counterexample vectors instead of re-parsing an
// error string.
type NotEquivalentError struct {
	Algorithm string
	Name      string
	Report    *Report
}

func (e *NotEquivalentError) Error() string {
	return fmt.Sprintf("verify: %s is NOT equivalent to %s: %s (%d mismatches)",
		e.Algorithm, e.Name, e.Report.Mismatches[0], len(e.Report.Mismatches))
}

// MustBeEquivalent is Equivalent that converts counterexamples into an
// error (a *NotEquivalentError), for use in harnesses.
func MustBeEquivalent(orig *logic.Network, res *mapper.Result, opt Options) error {
	rep, err := Equivalent(orig, res, opt)
	if err != nil {
		return err
	}
	if !rep.OK() {
		return &NotEquivalentError{Algorithm: res.Algorithm, Name: orig.Name, Report: rep}
	}
	return nil
}
