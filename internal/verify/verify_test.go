package verify

import (
	"strings"
	"testing"

	"soidomino/internal/decompose"
	"soidomino/internal/logic"
	"soidomino/internal/mapper"
	"soidomino/internal/unate"
)

func mapNetwork(t *testing.T, n *logic.Network) *mapper.Result {
	t.Helper()
	d, err := decompose.Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	u, err := unate.Convert(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapper.SOIDominoMap(u.Network, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func smallNetwork() *logic.Network {
	n := logic.New("small")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	n.AddOutput("f", n.AddGate(logic.Xor, n.AddGate(logic.And, a, b), c))
	return n
}

func wideNetwork() *logic.Network {
	n := logic.New("wide")
	var ins []int
	for i := 0; i < 20; i++ {
		ins = append(ins, n.AddInput(string(rune('a'+i))))
	}
	n.AddOutput("all", n.AddGate(logic.And, ins...))
	n.AddOutput("any", n.AddGate(logic.Or, ins...))
	n.AddOutput("par", n.AddGate(logic.Xor, ins[:8]...))
	return n
}

func TestEquivalentExhaustive(t *testing.T) {
	n := smallNetwork()
	res := mapNetwork(t, n)
	rep, err := Equivalent(n, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || !rep.Exhaustive || rep.Vectors != 8 {
		t.Errorf("report = %+v", rep)
	}
}

func TestEquivalentRandomWide(t *testing.T) {
	n := wideNetwork()
	res := mapNetwork(t, n)
	rep, err := Equivalent(n, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("mismatches: %v", rep.Mismatches)
	}
	if rep.Exhaustive {
		t.Error("20-input check should not be exhaustive")
	}
	// random + corners (all0, all1, 20 one-hot)
	if rep.Vectors != DefaultOptions().RandomVectors+42 {
		t.Errorf("vectors = %d", rep.Vectors)
	}
}

func TestDetectsBrokenCircuit(t *testing.T) {
	n := smallNetwork()
	res := mapNetwork(t, n)
	// Sabotage: negate a leaf of the first gate.
	for _, leaf := range res.Gates[0].Tree.Leaves() {
		if leaf.FromPI {
			leaf.Negated = !leaf.Negated
			break
		}
	}
	rep, err := Equivalent(n, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("sabotaged circuit reported equivalent")
	}
	if err := MustBeEquivalent(n, res, DefaultOptions()); err == nil {
		t.Error("MustBeEquivalent should fail")
	} else if !strings.Contains(err.Error(), "NOT equivalent") {
		t.Errorf("error = %v", err)
	}
	if rep.Mismatches[0].String() == "" {
		t.Error("Mismatch.String empty")
	}
}

func TestDetectsBrokenWideCircuitViaCorners(t *testing.T) {
	// An AND missing one input is nearly invisible to random vectors over
	// 20 inputs (only the all-ones row differs); the corner patterns must
	// catch it.
	n := wideNetwork()
	res := mapNetwork(t, n)
	broken := wideNetwork()
	// Rebuild "all" as AND of only 19 inputs.
	var ins []int
	for _, id := range broken.Inputs {
		ins = append(ins, id)
	}
	brokenAll := broken.AddGate(logic.And, ins[:19]...)
	broken.Outputs[0].Node = brokenAll
	rep, err := Equivalent(broken, res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("corner patterns failed to catch the missing AND input")
	}
}

func TestMismatchCap(t *testing.T) {
	n := smallNetwork()
	res := mapNetwork(t, n)
	for _, leaf := range res.Gates[0].Tree.Leaves() {
		leaf.Negated = !leaf.Negated
	}
	opt := DefaultOptions()
	opt.MaxMismatches = 2
	rep, err := Equivalent(n, res, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 2 {
		t.Errorf("mismatch cap not honored: %d", len(rep.Mismatches))
	}
}

func TestZeroOptionsAdoptDefaults(t *testing.T) {
	n := smallNetwork()
	res := mapNetwork(t, n)
	rep, err := Equivalent(n, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Vectors == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestMustBeEquivalentOK(t *testing.T) {
	n := smallNetwork()
	res := mapNetwork(t, n)
	if err := MustBeEquivalent(n, res, DefaultOptions()); err != nil {
		t.Error(err)
	}
}
