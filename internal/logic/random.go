package logic

import "math/rand"

// RandomVectors returns count input assignments drawn from rng, each of
// length len(n.Inputs). It is deterministic for a seeded rng, which the
// benchmark harness relies on.
func (n *Network) RandomVectors(rng *rand.Rand, count int) [][]bool {
	vecs := make([][]bool, count)
	for i := range vecs {
		v := make([]bool, len(n.Inputs))
		for j := range v {
			v[j] = rng.Intn(2) == 1
		}
		vecs[i] = v
	}
	return vecs
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := New(n.Name)
	c.Nodes = make([]Node, len(n.Nodes))
	for i, node := range n.Nodes {
		cp := node
		cp.Fanin = append([]int(nil), node.Fanin...)
		c.Nodes[i] = cp
		if cp.Name != "" {
			c.registerName(cp.Name, i)
		}
	}
	c.Inputs = append([]int(nil), n.Inputs...)
	c.Outputs = append([]Output(nil), n.Outputs...)
	return c
}
