package logic

import (
	"strings"
	"testing"
)

// twoCones builds a network with two independent output cones plus a dead
// gate.
func twoCones(t *testing.T) *Network {
	t.Helper()
	n := New("cones")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	f := n.AddGate(And, a, b)
	g := n.AddGate(Or, c, d)
	n.AddGate(Xor, a, d) // dead
	n.AddOutput("f", f)
	n.AddOutput("g", g)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConeExtraction(t *testing.T) {
	n := twoCones(t)
	cone, err := n.Cone("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := cone.Check(); err != nil {
		t.Fatal(err)
	}
	s := cone.Stats()
	if s.Outputs != 1 || s.Gates != 1 || s.Inputs != 2 {
		t.Errorf("cone stats = %+v", s)
	}
	// Function preserved: f = a & b over the remaining inputs.
	out, err := cone.Eval([]bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Error("cone function wrong")
	}
}

func TestConeUnknownOutput(t *testing.T) {
	n := twoCones(t)
	if _, err := n.Cone("nope"); err == nil {
		t.Error("unknown output should fail")
	}
}

func TestConeMultipleOutputs(t *testing.T) {
	n := twoCones(t)
	cone, err := n.Cone("f", "g")
	if err != nil {
		t.Fatal(err)
	}
	if s := cone.Stats(); s.Outputs != 2 || s.Gates != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSweepRemovesDeadLogic(t *testing.T) {
	n := twoCones(t)
	swept := n.Sweep()
	if err := swept.Check(); err != nil {
		t.Fatal(err)
	}
	if s := swept.Stats(); s.Gates != 2 {
		t.Errorf("sweep left %d gates, want 2", s.Gates)
	}
	// Inputs survive even when unused by the kept logic.
	if len(swept.Inputs) != 4 {
		t.Errorf("sweep dropped inputs: %d", len(swept.Inputs))
	}
	// Function identical.
	t1, _ := n.TruthTable()
	t2, _ := swept.TruthTable()
	for i := range t1 {
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				t.Fatal("sweep changed function")
			}
		}
	}
}

func TestHistograms(t *testing.T) {
	n := twoCones(t)
	h := n.Histograms()
	if h.FaninCounts[2] != 3 {
		t.Errorf("fanin histogram = %v", h.FaninCounts)
	}
	if h.LevelCounts[1] != 3 {
		t.Errorf("level histogram = %v", h.LevelCounts)
	}
	// a and d feed two gates each (one dead).
	if h.FanoutCounts[2] != 2 {
		t.Errorf("fanout histogram = %v", h.FanoutCounts)
	}
}

func TestWriteDot(t *testing.T) {
	n := twoCones(t)
	var sb strings.Builder
	if err := n.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{
		"digraph \"cones\"", "shape=box", "doublecircle", "n0 -> n4", "out_f", "out_g", "}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
	// Deterministic.
	var sb2 strings.Builder
	if err := n.WriteDot(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("dot output not deterministic")
	}
}

func TestSanitizeDot(t *testing.T) {
	if sanitizeDot("a[3].x") != "a_3__x" {
		t.Errorf("sanitizeDot = %q", sanitizeDot("a[3].x"))
	}
	if sanitizeDot("") != "_" {
		t.Error("empty name should sanitize to _")
	}
}
