package logic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Cone extracts the transitive fanin cone of the named outputs into a new
// network (a standard prelude to per-output analysis). Unknown output
// names are reported as an error.
func (n *Network) Cone(outputs ...string) (*Network, error) {
	want := make(map[string]bool, len(outputs))
	for _, o := range outputs {
		want[o] = true
	}
	keep := make([]bool, len(n.Nodes))
	var roots []Output
	found := make(map[string]bool, len(outputs))
	for _, out := range n.Outputs {
		if !want[out.Name] {
			continue
		}
		found[out.Name] = true
		roots = append(roots, out)
		mark(n, out.Node, keep)
	}
	for _, o := range outputs {
		if !found[o] {
			return nil, fmt.Errorf("logic: output %q not found", o)
		}
	}
	return n.extract(keep, roots), nil
}

// Sweep removes nodes that reach no primary output (dead logic), keeping
// input declarations intact so the interface is unchanged.
func (n *Network) Sweep() *Network {
	keep := make([]bool, len(n.Nodes))
	for _, out := range n.Outputs {
		mark(n, out.Node, keep)
	}
	for _, id := range n.Inputs {
		keep[id] = true // the interface survives even if unused
	}
	return n.extract(keep, n.Outputs)
}

func mark(n *Network, id int, keep []bool) {
	if keep[id] {
		return
	}
	keep[id] = true
	for _, f := range n.Nodes[id].Fanin {
		mark(n, f, keep)
	}
}

// extract copies the kept nodes (which must be closed under fanin) into a
// fresh network with the given outputs.
func (n *Network) extract(keep []bool, outputs []Output) *Network {
	out := New(n.Name)
	remap := make([]int, len(n.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	for id, node := range n.Nodes {
		if !keep[id] {
			continue
		}
		fanin := make([]int, len(node.Fanin))
		for i, f := range node.Fanin {
			fanin[i] = remap[f]
		}
		cp := Node{Op: node.Op, Name: node.Name, Fanin: fanin}
		nid := out.add(cp)
		remap[id] = nid
		if node.Op == Input {
			out.Inputs = append(out.Inputs, nid)
		}
	}
	for _, o := range outputs {
		out.AddOutput(o.Name, remap[o.Node])
	}
	return out
}

// Histogram summarizes structural distributions of a network.
type Histogram struct {
	FanoutCounts map[int]int // fanout -> number of nodes
	LevelCounts  map[int]int // level -> number of gates
	FaninCounts  map[int]int // fanin arity -> number of gates
}

// Histograms computes structure distributions (gates only; inputs and
// constants excluded from level/fanin counts).
func (n *Network) Histograms() Histogram {
	h := Histogram{
		FanoutCounts: make(map[int]int),
		LevelCounts:  make(map[int]int),
		FaninCounts:  make(map[int]int),
	}
	fanout := n.ComputeFanout()
	levels := n.Levels()
	for id, node := range n.Nodes {
		h.FanoutCounts[fanout[id]]++
		switch node.Op {
		case Input, Const0, Const1:
		default:
			h.LevelCounts[levels[id]]++
			h.FaninCounts[len(node.Fanin)]++
		}
	}
	return h
}

// WriteDot renders the network in Graphviz dot format: inputs as boxes,
// gates labeled with their operation, primary outputs as double circles.
func (n *Network) WriteDot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", n.Name)
	outNodes := make(map[int][]string)
	for _, out := range n.Outputs {
		outNodes[out.Node] = append(outNodes[out.Node], out.Name)
	}
	for id, node := range n.Nodes {
		label := node.Op.String()
		if node.Name != "" {
			label = fmt.Sprintf("%s\\n%s", node.Name, node.Op)
		}
		shape := "ellipse"
		if node.Op == Input {
			shape = "box"
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\", shape=%s];\n", id, label, shape)
		for _, f := range node.Fanin {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", f, id)
		}
	}
	names := make([]string, 0, len(n.Outputs))
	byName := make(map[string]int, len(n.Outputs))
	for _, out := range n.Outputs {
		names = append(names, out.Name)
		byName[out.Name] = out.Node
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(bw, "  out_%s [label=%q, shape=doublecircle];\n", sanitizeDot(name), name)
		fmt.Fprintf(bw, "  n%d -> out_%s;\n", byName[name], sanitizeDot(name))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func sanitizeDot(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
